file(REMOVE_RECURSE
  "CMakeFiles/tracelab.dir/tracelab.cpp.o"
  "CMakeFiles/tracelab.dir/tracelab.cpp.o.d"
  "tracelab"
  "tracelab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracelab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
