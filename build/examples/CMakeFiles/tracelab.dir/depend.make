# Empty dependencies file for tracelab.
# This may be replaced when dependencies are built.
