# Empty dependencies file for optimizer_lab.
# This may be replaced when dependencies are built.
