file(REMOVE_RECURSE
  "CMakeFiles/parrot_cli.dir/parrot_cli.cpp.o"
  "CMakeFiles/parrot_cli.dir/parrot_cli.cpp.o.d"
  "parrot_cli"
  "parrot_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parrot_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
