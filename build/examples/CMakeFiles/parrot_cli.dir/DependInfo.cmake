
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/parrot_cli.cpp" "examples/CMakeFiles/parrot_cli.dir/parrot_cli.cpp.o" "gcc" "examples/CMakeFiles/parrot_cli.dir/parrot_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/parrot_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/parrot_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/parrot_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/parrot_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/parrot_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/tracecache/CMakeFiles/parrot_tracecache.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/parrot_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/parrot_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/parrot_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/parrot_power.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/parrot_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
