# Empty compiler generated dependencies file for parrot_cli.
# This may be replaced when dependencies are built.
