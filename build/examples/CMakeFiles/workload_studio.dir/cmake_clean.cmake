file(REMOVE_RECURSE
  "CMakeFiles/workload_studio.dir/workload_studio.cpp.o"
  "CMakeFiles/workload_studio.dir/workload_studio.cpp.o.d"
  "workload_studio"
  "workload_studio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_studio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
