# Empty dependencies file for workload_studio.
# This may be replaced when dependencies are built.
