file(REMOVE_RECURSE
  "CMakeFiles/test_optimizer.dir/optimizer/dep_graph_test.cc.o"
  "CMakeFiles/test_optimizer.dir/optimizer/dep_graph_test.cc.o.d"
  "CMakeFiles/test_optimizer.dir/optimizer/memory_passes_test.cc.o"
  "CMakeFiles/test_optimizer.dir/optimizer/memory_passes_test.cc.o.d"
  "CMakeFiles/test_optimizer.dir/optimizer/optimizer_property_test.cc.o"
  "CMakeFiles/test_optimizer.dir/optimizer/optimizer_property_test.cc.o.d"
  "CMakeFiles/test_optimizer.dir/optimizer/passes_test.cc.o"
  "CMakeFiles/test_optimizer.dir/optimizer/passes_test.cc.o.d"
  "test_optimizer"
  "test_optimizer.pdb"
  "test_optimizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
