file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/config_file_test.cc.o"
  "CMakeFiles/test_sim.dir/sim/config_file_test.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/machine_property_test.cc.o"
  "CMakeFiles/test_sim.dir/sim/machine_property_test.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/model_config_test.cc.o"
  "CMakeFiles/test_sim.dir/sim/model_config_test.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/reproduction_shapes_test.cc.o"
  "CMakeFiles/test_sim.dir/sim/reproduction_shapes_test.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/simulator_test.cc.o"
  "CMakeFiles/test_sim.dir/sim/simulator_test.cc.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
