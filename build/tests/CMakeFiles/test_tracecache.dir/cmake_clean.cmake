file(REMOVE_RECURSE
  "CMakeFiles/test_tracecache.dir/tracecache/constructor_test.cc.o"
  "CMakeFiles/test_tracecache.dir/tracecache/constructor_test.cc.o.d"
  "CMakeFiles/test_tracecache.dir/tracecache/filter_test.cc.o"
  "CMakeFiles/test_tracecache.dir/tracecache/filter_test.cc.o.d"
  "CMakeFiles/test_tracecache.dir/tracecache/predictor_test.cc.o"
  "CMakeFiles/test_tracecache.dir/tracecache/predictor_test.cc.o.d"
  "CMakeFiles/test_tracecache.dir/tracecache/selector_property_test.cc.o"
  "CMakeFiles/test_tracecache.dir/tracecache/selector_property_test.cc.o.d"
  "CMakeFiles/test_tracecache.dir/tracecache/selector_test.cc.o"
  "CMakeFiles/test_tracecache.dir/tracecache/selector_test.cc.o.d"
  "CMakeFiles/test_tracecache.dir/tracecache/trace_cache_test.cc.o"
  "CMakeFiles/test_tracecache.dir/tracecache/trace_cache_test.cc.o.d"
  "test_tracecache"
  "test_tracecache.pdb"
  "test_tracecache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tracecache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
