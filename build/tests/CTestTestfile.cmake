# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_memory[1]_include.cmake")
include("/root/repo/build/tests/test_frontend[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_tracecache[1]_include.cmake")
include("/root/repo/build/tests/test_optimizer[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_bench_util[1]_include.cmake")
