file(REMOVE_RECURSE
  "CMakeFiles/parrot_common.dir/logging.cc.o"
  "CMakeFiles/parrot_common.dir/logging.cc.o.d"
  "libparrot_common.a"
  "libparrot_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parrot_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
