file(REMOVE_RECURSE
  "libparrot_common.a"
)
