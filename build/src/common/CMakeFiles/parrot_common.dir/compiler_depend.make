# Empty compiler generated dependencies file for parrot_common.
# This may be replaced when dependencies are built.
