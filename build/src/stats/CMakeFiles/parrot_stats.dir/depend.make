# Empty dependencies file for parrot_stats.
# This may be replaced when dependencies are built.
