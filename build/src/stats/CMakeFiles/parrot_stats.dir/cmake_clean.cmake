file(REMOVE_RECURSE
  "CMakeFiles/parrot_stats.dir/stats.cc.o"
  "CMakeFiles/parrot_stats.dir/stats.cc.o.d"
  "CMakeFiles/parrot_stats.dir/table.cc.o"
  "CMakeFiles/parrot_stats.dir/table.cc.o.d"
  "libparrot_stats.a"
  "libparrot_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parrot_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
