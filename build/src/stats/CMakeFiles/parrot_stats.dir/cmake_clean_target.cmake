file(REMOVE_RECURSE
  "libparrot_stats.a"
)
