# Empty compiler generated dependencies file for parrot_workload.
# This may be replaced when dependencies are built.
