file(REMOVE_RECURSE
  "CMakeFiles/parrot_workload.dir/apps.cc.o"
  "CMakeFiles/parrot_workload.dir/apps.cc.o.d"
  "CMakeFiles/parrot_workload.dir/executor.cc.o"
  "CMakeFiles/parrot_workload.dir/executor.cc.o.d"
  "CMakeFiles/parrot_workload.dir/generator.cc.o"
  "CMakeFiles/parrot_workload.dir/generator.cc.o.d"
  "CMakeFiles/parrot_workload.dir/program.cc.o"
  "CMakeFiles/parrot_workload.dir/program.cc.o.d"
  "libparrot_workload.a"
  "libparrot_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parrot_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
