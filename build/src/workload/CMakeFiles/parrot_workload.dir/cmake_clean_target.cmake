file(REMOVE_RECURSE
  "libparrot_workload.a"
)
