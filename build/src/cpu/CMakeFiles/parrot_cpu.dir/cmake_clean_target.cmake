file(REMOVE_RECURSE
  "libparrot_cpu.a"
)
