file(REMOVE_RECURSE
  "CMakeFiles/parrot_cpu.dir/ooo_core.cc.o"
  "CMakeFiles/parrot_cpu.dir/ooo_core.cc.o.d"
  "libparrot_cpu.a"
  "libparrot_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parrot_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
