# Empty compiler generated dependencies file for parrot_cpu.
# This may be replaced when dependencies are built.
