file(REMOVE_RECURSE
  "libparrot_sim.a"
)
