file(REMOVE_RECURSE
  "CMakeFiles/parrot_sim.dir/config_file.cc.o"
  "CMakeFiles/parrot_sim.dir/config_file.cc.o.d"
  "CMakeFiles/parrot_sim.dir/model_config.cc.o"
  "CMakeFiles/parrot_sim.dir/model_config.cc.o.d"
  "CMakeFiles/parrot_sim.dir/result.cc.o"
  "CMakeFiles/parrot_sim.dir/result.cc.o.d"
  "CMakeFiles/parrot_sim.dir/runner.cc.o"
  "CMakeFiles/parrot_sim.dir/runner.cc.o.d"
  "CMakeFiles/parrot_sim.dir/simulator.cc.o"
  "CMakeFiles/parrot_sim.dir/simulator.cc.o.d"
  "libparrot_sim.a"
  "libparrot_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parrot_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
