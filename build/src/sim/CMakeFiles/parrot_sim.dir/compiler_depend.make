# Empty compiler generated dependencies file for parrot_sim.
# This may be replaced when dependencies are built.
