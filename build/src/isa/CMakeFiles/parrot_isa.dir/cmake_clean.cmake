file(REMOVE_RECURSE
  "CMakeFiles/parrot_isa.dir/arch_state.cc.o"
  "CMakeFiles/parrot_isa.dir/arch_state.cc.o.d"
  "CMakeFiles/parrot_isa.dir/opcodes.cc.o"
  "CMakeFiles/parrot_isa.dir/opcodes.cc.o.d"
  "CMakeFiles/parrot_isa.dir/uop.cc.o"
  "CMakeFiles/parrot_isa.dir/uop.cc.o.d"
  "libparrot_isa.a"
  "libparrot_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parrot_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
