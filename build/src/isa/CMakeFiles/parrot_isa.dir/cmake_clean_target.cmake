file(REMOVE_RECURSE
  "libparrot_isa.a"
)
