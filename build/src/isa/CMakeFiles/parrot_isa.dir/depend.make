# Empty dependencies file for parrot_isa.
# This may be replaced when dependencies are built.
