file(REMOVE_RECURSE
  "CMakeFiles/parrot_power.dir/energy_model.cc.o"
  "CMakeFiles/parrot_power.dir/energy_model.cc.o.d"
  "CMakeFiles/parrot_power.dir/events.cc.o"
  "CMakeFiles/parrot_power.dir/events.cc.o.d"
  "libparrot_power.a"
  "libparrot_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parrot_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
