# Empty compiler generated dependencies file for parrot_power.
# This may be replaced when dependencies are built.
