file(REMOVE_RECURSE
  "libparrot_power.a"
)
