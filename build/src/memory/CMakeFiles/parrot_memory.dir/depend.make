# Empty dependencies file for parrot_memory.
# This may be replaced when dependencies are built.
