file(REMOVE_RECURSE
  "libparrot_memory.a"
)
