file(REMOVE_RECURSE
  "CMakeFiles/parrot_memory.dir/cache.cc.o"
  "CMakeFiles/parrot_memory.dir/cache.cc.o.d"
  "CMakeFiles/parrot_memory.dir/hierarchy.cc.o"
  "CMakeFiles/parrot_memory.dir/hierarchy.cc.o.d"
  "libparrot_memory.a"
  "libparrot_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parrot_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
