file(REMOVE_RECURSE
  "CMakeFiles/parrot_optimizer.dir/dep_graph.cc.o"
  "CMakeFiles/parrot_optimizer.dir/dep_graph.cc.o.d"
  "CMakeFiles/parrot_optimizer.dir/equivalence.cc.o"
  "CMakeFiles/parrot_optimizer.dir/equivalence.cc.o.d"
  "CMakeFiles/parrot_optimizer.dir/optimizer.cc.o"
  "CMakeFiles/parrot_optimizer.dir/optimizer.cc.o.d"
  "CMakeFiles/parrot_optimizer.dir/passes.cc.o"
  "CMakeFiles/parrot_optimizer.dir/passes.cc.o.d"
  "libparrot_optimizer.a"
  "libparrot_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parrot_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
