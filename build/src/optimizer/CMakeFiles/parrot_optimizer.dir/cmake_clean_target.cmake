file(REMOVE_RECURSE
  "libparrot_optimizer.a"
)
