# Empty dependencies file for parrot_optimizer.
# This may be replaced when dependencies are built.
