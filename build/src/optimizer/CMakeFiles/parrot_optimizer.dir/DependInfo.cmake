
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optimizer/dep_graph.cc" "src/optimizer/CMakeFiles/parrot_optimizer.dir/dep_graph.cc.o" "gcc" "src/optimizer/CMakeFiles/parrot_optimizer.dir/dep_graph.cc.o.d"
  "/root/repo/src/optimizer/equivalence.cc" "src/optimizer/CMakeFiles/parrot_optimizer.dir/equivalence.cc.o" "gcc" "src/optimizer/CMakeFiles/parrot_optimizer.dir/equivalence.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/optimizer/CMakeFiles/parrot_optimizer.dir/optimizer.cc.o" "gcc" "src/optimizer/CMakeFiles/parrot_optimizer.dir/optimizer.cc.o.d"
  "/root/repo/src/optimizer/passes.cc" "src/optimizer/CMakeFiles/parrot_optimizer.dir/passes.cc.o" "gcc" "src/optimizer/CMakeFiles/parrot_optimizer.dir/passes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parrot_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/parrot_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/tracecache/CMakeFiles/parrot_tracecache.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/parrot_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/parrot_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
