file(REMOVE_RECURSE
  "CMakeFiles/parrot_tracecache.dir/constructor.cc.o"
  "CMakeFiles/parrot_tracecache.dir/constructor.cc.o.d"
  "CMakeFiles/parrot_tracecache.dir/predictor.cc.o"
  "CMakeFiles/parrot_tracecache.dir/predictor.cc.o.d"
  "CMakeFiles/parrot_tracecache.dir/selector.cc.o"
  "CMakeFiles/parrot_tracecache.dir/selector.cc.o.d"
  "CMakeFiles/parrot_tracecache.dir/trace_cache.cc.o"
  "CMakeFiles/parrot_tracecache.dir/trace_cache.cc.o.d"
  "libparrot_tracecache.a"
  "libparrot_tracecache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parrot_tracecache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
