# Empty dependencies file for parrot_tracecache.
# This may be replaced when dependencies are built.
