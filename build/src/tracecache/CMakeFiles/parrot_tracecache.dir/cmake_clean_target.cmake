file(REMOVE_RECURSE
  "libparrot_tracecache.a"
)
