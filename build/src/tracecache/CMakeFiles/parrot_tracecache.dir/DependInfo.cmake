
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tracecache/constructor.cc" "src/tracecache/CMakeFiles/parrot_tracecache.dir/constructor.cc.o" "gcc" "src/tracecache/CMakeFiles/parrot_tracecache.dir/constructor.cc.o.d"
  "/root/repo/src/tracecache/predictor.cc" "src/tracecache/CMakeFiles/parrot_tracecache.dir/predictor.cc.o" "gcc" "src/tracecache/CMakeFiles/parrot_tracecache.dir/predictor.cc.o.d"
  "/root/repo/src/tracecache/selector.cc" "src/tracecache/CMakeFiles/parrot_tracecache.dir/selector.cc.o" "gcc" "src/tracecache/CMakeFiles/parrot_tracecache.dir/selector.cc.o.d"
  "/root/repo/src/tracecache/trace_cache.cc" "src/tracecache/CMakeFiles/parrot_tracecache.dir/trace_cache.cc.o" "gcc" "src/tracecache/CMakeFiles/parrot_tracecache.dir/trace_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parrot_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/parrot_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/parrot_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/parrot_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
