# Empty compiler generated dependencies file for parrot_frontend.
# This may be replaced when dependencies are built.
