file(REMOVE_RECURSE
  "libparrot_frontend.a"
)
