file(REMOVE_RECURSE
  "CMakeFiles/parrot_frontend.dir/branch_predictor.cc.o"
  "CMakeFiles/parrot_frontend.dir/branch_predictor.cc.o.d"
  "libparrot_frontend.a"
  "libparrot_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parrot_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
