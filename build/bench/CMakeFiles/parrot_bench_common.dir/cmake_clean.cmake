file(REMOVE_RECURSE
  "CMakeFiles/parrot_bench_common.dir/common/bench_util.cc.o"
  "CMakeFiles/parrot_bench_common.dir/common/bench_util.cc.o.d"
  "libparrot_bench_common.a"
  "libparrot_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parrot_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
