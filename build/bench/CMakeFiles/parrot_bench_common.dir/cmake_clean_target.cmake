file(REMOVE_RECURSE
  "libparrot_bench_common.a"
)
