file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tcsize.dir/bench_ablation_tcsize.cc.o"
  "CMakeFiles/bench_ablation_tcsize.dir/bench_ablation_tcsize.cc.o.d"
  "bench_ablation_tcsize"
  "bench_ablation_tcsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tcsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
