# Empty dependencies file for bench_ablation_tcsize.
# This may be replaced when dependencies are built.
