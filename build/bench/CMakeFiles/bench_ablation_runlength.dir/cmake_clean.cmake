file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_runlength.dir/bench_ablation_runlength.cc.o"
  "CMakeFiles/bench_ablation_runlength.dir/bench_ablation_runlength.cc.o.d"
  "bench_ablation_runlength"
  "bench_ablation_runlength.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_runlength.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
