# Empty dependencies file for bench_ablation_runlength.
# This may be replaced when dependencies are built.
