/** @file Unit tests for saturating counters and history registers. */

#include <gtest/gtest.h>

#include "common/counters.hh"

namespace
{

using parrot::HistoryRegister;
using parrot::SatCounter;

TEST(SatCounterTest, SaturatesHigh)
{
    SatCounter c(2);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.read(), 3u);
    EXPECT_TRUE(c.isMax());
}

TEST(SatCounterTest, SaturatesLow)
{
    SatCounter c(2, 1);
    c.decrement();
    c.decrement();
    c.decrement();
    EXPECT_EQ(c.read(), 0u);
}

TEST(SatCounterTest, IsSetThreshold)
{
    SatCounter c(2); // values 0..3; set when > 1
    EXPECT_FALSE(c.isSet());
    c.increment();
    EXPECT_FALSE(c.isSet());
    c.increment();
    EXPECT_TRUE(c.isSet());
}

TEST(SatCounterTest, WidthOne)
{
    SatCounter c(1);
    c.increment();
    EXPECT_TRUE(c.isMax());
    EXPECT_EQ(c.max(), 1u);
}

TEST(SatCounterTest, ResetClears)
{
    SatCounter c(3, 5);
    c.reset();
    EXPECT_EQ(c.read(), 0u);
}

TEST(HistoryRegisterTest, PushAndMask)
{
    HistoryRegister h(4);
    h.push(true);
    h.push(false);
    h.push(true);
    h.push(true);
    EXPECT_EQ(h.value(), 0b1011u);
    h.push(false);
    EXPECT_EQ(h.value(), 0b0110u); // oldest bit shifted out
}

TEST(HistoryRegisterTest, FullWidth64)
{
    HistoryRegister h(64);
    for (int i = 0; i < 64; ++i)
        h.push(true);
    EXPECT_EQ(h.value(), ~0ull);
}

TEST(HistoryRegisterTest, ResetClears)
{
    HistoryRegister h(8);
    h.push(true);
    h.reset();
    EXPECT_EQ(h.value(), 0u);
}

} // namespace
