/** @file Unit tests for the shared strict CLI argument parsers. */

#include <gtest/gtest.h>

#include "common/cli.hh"

namespace
{

using namespace parrot;

TEST(CliParseTest, U64AcceptsPlainIntegers)
{
    EXPECT_EQ(cli::parseU64("--insts", "0"), 0u);
    EXPECT_EQ(cli::parseU64("--insts", "600000"), 600000u);
    EXPECT_EQ(cli::parseU64("--insts", "18446744073709551615"),
              UINT64_MAX);
}

TEST(CliParseDeathTest, U64RejectsMalformedValues)
{
    EXPECT_EXIT(cli::parseU64("--insts", ""),
                testing::ExitedWithCode(2), "bad value");
    EXPECT_EXIT(cli::parseU64("--insts", "12x"),
                testing::ExitedWithCode(2), "--insts");
    EXPECT_EXIT(cli::parseU64("--insts", "1e6"),
                testing::ExitedWithCode(2), "bad value");
    EXPECT_EXIT(cli::parseU64("--insts", "-3"),
                testing::ExitedWithCode(2), "non-negative");
    EXPECT_EXIT(cli::parseU64("--insts", "99999999999999999999999"),
                testing::ExitedWithCode(2), "bad value");
}

TEST(CliParseTest, U32AcceptsInRangeValues)
{
    EXPECT_EQ(cli::parseU32("--jobs", "4"), 4u);
    EXPECT_EQ(cli::parseU32("--jobs", "4294967295"), 4294967295u);
}

TEST(CliParseDeathTest, U32RejectsOutOfRange)
{
    EXPECT_EXIT(cli::parseU32("--jobs", "4294967296"),
                testing::ExitedWithCode(2), "32 bits");
    EXPECT_EXIT(cli::parseU32("--jobs", "banana"),
                testing::ExitedWithCode(2), "--jobs");
}

TEST(CliParseTest, F64AcceptsNumbers)
{
    EXPECT_DOUBLE_EQ(cli::parseF64("--pmax", "2.5"), 2.5);
    EXPECT_DOUBLE_EQ(cli::parseF64("--pmax", "-1.5"), -1.5);
    EXPECT_DOUBLE_EQ(cli::parseF64("--pmax", "1e3"), 1000.0);
}

TEST(CliParseDeathTest, F64RejectsTrailingJunk)
{
    EXPECT_EXIT(cli::parseF64("--pmax", "1.5x"),
                testing::ExitedWithCode(2), "bad value");
    EXPECT_EXIT(cli::parseF64("--pmax", ""),
                testing::ExitedWithCode(2), "a number");
}

TEST(CliParseTest, NeedValueReturnsNextArgAndAdvances)
{
    char flag[] = "--jobs";
    char value[] = "8";
    char *argv[] = {flag, flag, value};
    int i = 1;
    EXPECT_STREQ(cli::needValue(3, argv, i), "8");
    EXPECT_EQ(i, 2);
}

TEST(CliParseDeathTest, NeedValueAtEndOfArgvExits)
{
    char flag[] = "--jobs";
    char *argv[] = {flag, flag};
    int i = 1;
    EXPECT_EXIT(cli::needValue(2, argv, i), testing::ExitedWithCode(2),
                "missing value for --jobs");
}

// The full truth table of the pinned exit-code precedence
// (2 usage > 1 alarm > 3 degraded > 0 ok): every driver composes its
// final status through this helper, so co-occurring conditions (a
// rejected trace AND tombstoned cells, say) report deterministically.
TEST(CombinedExitTest, PrecedenceMatrix)
{
    // usage, alarm, degraded -> expected
    const struct
    {
        bool usage, alarm, degraded;
        int expected;
    } matrix[] = {
        {false, false, false, cli::kExitOk},
        {false, false, true, cli::kExitDegraded},
        {false, true, false, cli::kExitAlarm},
        {false, true, true, cli::kExitAlarm},
        {true, false, false, cli::kExitUsage},
        {true, false, true, cli::kExitUsage},
        {true, true, false, cli::kExitUsage},
        {true, true, true, cli::kExitUsage},
    };
    for (const auto &row : matrix) {
        EXPECT_EQ(cli::combinedExit(row.usage, row.alarm, row.degraded),
                  row.expected)
            << "usage=" << row.usage << " alarm=" << row.alarm
            << " degraded=" << row.degraded;
    }
}

TEST(CombinedExitTest, CodesAreDistinctAndConventional)
{
    EXPECT_EQ(cli::kExitOk, 0);
    EXPECT_EQ(cli::kExitAlarm, 1);
    EXPECT_EQ(cli::kExitUsage, 2);
    EXPECT_EQ(cli::kExitDegraded, 3);
}

} // namespace
