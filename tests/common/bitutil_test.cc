/** @file Unit tests for bit utilities. */

#include <gtest/gtest.h>

#include "common/bitutil.hh"

namespace
{

using namespace parrot;

TEST(BitUtilTest, IsPowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ull << 63));
    EXPECT_FALSE(isPowerOfTwo((1ull << 63) + 1));
}

TEST(BitUtilTest, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(1ull << 63), 63u);
}

TEST(BitUtilTest, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(BitUtilTest, BitsExtraction)
{
    EXPECT_EQ(bits(0xff00, 15, 8), 0xffull);
    EXPECT_EQ(bits(0xdeadbeef, 7, 0), 0xefull);
    EXPECT_EQ(bits(~0ull, 63, 0), ~0ull);
}

TEST(BitUtilTest, Mix64Distributes)
{
    // Consecutive inputs must map to well-separated outputs.
    EXPECT_NE(mix64(1), mix64(2));
    EXPECT_EQ(mix64(0), 0u) << "0 is the murmur finalizer's fixed point";
    EXPECT_NE(mix64(1), 1u);
    std::uint64_t x = mix64(100), y = mix64(101);
    int differing = __builtin_popcountll(x ^ y);
    EXPECT_GT(differing, 16);
}

TEST(BitUtilTest, HashCombineOrderSensitive)
{
    auto a = hashCombine(hashCombine(0, 1), 2);
    auto b = hashCombine(hashCombine(0, 2), 1);
    EXPECT_NE(a, b);
}

} // namespace
