/** @file Unit tests for the deterministic PRNG. */

#include <gtest/gtest.h>

#include "common/random.hh"

namespace
{

using parrot::Rng;

TEST(RngTest, DeterministicFromSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(RngTest, ReseedRestartsSequence)
{
    Rng a(7);
    std::uint64_t first = a.next();
    a.next();
    a.reseed(7);
    EXPECT_EQ(a.next(), first);
}

TEST(RngTest, BelowRespectsBound)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(RngTest, BelowCoversRange)
{
    Rng rng(5);
    bool seen[8] = {};
    for (int i = 0; i < 1000; ++i)
        seen[rng.below(8)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(RngTest, RangeInclusive)
{
    Rng rng(11);
    bool lo = false, hi = false;
    for (int i = 0; i < 5000; ++i) {
        auto v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        lo |= (v == -3);
        hi |= (v == 3);
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(13);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(RngTest, ChanceMatchesProbability)
{
    Rng rng(17);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, PositiveAroundMeanAndCap)
{
    Rng rng(19);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        int v = rng.positiveAround(8.0, 32);
        ASSERT_GE(v, 1);
        ASSERT_LE(v, 32);
        sum += v;
    }
    EXPECT_NEAR(sum / 20000.0, 8.0, 1.0);
}

TEST(RngTest, PositiveAroundHugeMeanHitsCap)
{
    Rng rng(23);
    // A mean far beyond the cap must not overflow and must return cap.
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.positiveAround(1e12, 1000), 1000);
}

} // namespace
