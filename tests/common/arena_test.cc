/**
 * @file
 * Unit tests for the bump arena, the typed node pool and the ring
 * buffer backing the simulator's hot-path storage.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "common/arena.hh"
#include "common/ring_buffer.hh"

namespace
{

using namespace parrot;

TEST(ArenaTest, BumpAllocationsShareAChunk)
{
    Arena arena(4096);
    const auto before = arena.stats();
    void *a = arena.allocate(64);
    void *b = arena.allocate(64);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_NE(a, b);
    const auto &after = arena.stats();
    EXPECT_EQ(after.allocCalls, before.allocCalls + 2);
    EXPECT_EQ(after.bytesRequested, before.bytesRequested + 128);
    EXPECT_EQ(after.chunkAllocs, 1u); // both fit in the first chunk
}

TEST(ArenaTest, AllocationsAreAligned)
{
    Arena arena(4096);
    arena.allocate(1, 1);
    void *p = arena.allocate(8, 64);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
}

TEST(ArenaTest, OversizedRequestGetsDedicatedChunk)
{
    Arena arena(1024);
    void *small = arena.allocate(16);
    void *big = arena.allocate(64 * 1024);
    ASSERT_NE(big, nullptr);
    // The big block is writable end to end and the bump chunk still
    // serves small allocations afterwards.
    std::memset(big, 0xab, 64 * 1024);
    void *small2 = arena.allocate(16);
    ASSERT_NE(small2, nullptr);
    EXPECT_NE(small, small2);
    EXPECT_EQ(arena.stats().chunkAllocs, 2u);
}

TEST(ArenaTest, ChunkRollsOverWhenFull)
{
    Arena arena(512);
    arena.allocate(400);
    arena.allocate(400); // does not fit: second chunk
    EXPECT_EQ(arena.stats().chunkAllocs, 2u);
}

struct PoolNode
{
    std::uint64_t payload = 0;
    std::int32_t next = -1;
};

TEST(NodePoolTest, AcquireReleaseRecycles)
{
    Arena arena;
    NodePool<PoolNode> pool(arena, 4);

    std::int32_t a = pool.acquire();
    std::int32_t b = pool.acquire();
    EXPECT_NE(a, b);
    EXPECT_EQ(pool.live(), 2u);

    pool.at(a).payload = 42;
    pool.release(a);
    EXPECT_EQ(pool.live(), 1u);

    // LIFO freelist: the released index comes back first, reset.
    std::int32_t c = pool.acquire();
    EXPECT_EQ(c, a);
    EXPECT_EQ(pool.at(c).payload, 0u);
    EXPECT_EQ(pool.at(c).next, -1);
}

TEST(NodePoolTest, GrowsBeyondOneChunkWithStableIndices)
{
    Arena arena;
    NodePool<PoolNode> pool(arena, 4);
    std::int32_t idx[13];
    for (int i = 0; i < 13; ++i) {
        idx[i] = pool.acquire();
        pool.at(idx[i]).payload = static_cast<std::uint64_t>(i) * 7;
    }
    EXPECT_EQ(pool.live(), 13u);
    for (int i = 0; i < 13; ++i)
        EXPECT_EQ(pool.at(idx[i]).payload,
                  static_cast<std::uint64_t>(i) * 7)
            << "index " << i;
}

TEST(RingBufferTest, FifoOrderAcrossWraparound)
{
    Arena arena;
    RingBuffer<int> ring(arena, 4);
    for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 3; ++i)
            ring.emplaceBack() = round * 10 + i;
        ASSERT_EQ(ring.size(), 3u);
        for (int i = 0; i < 3; ++i)
            EXPECT_EQ(ring[i], round * 10 + i);
        ring.popFront(3);
        EXPECT_TRUE(ring.empty());
    }
}

TEST(RingBufferTest, GrowsPastInitialCapacity)
{
    Arena arena;
    RingBuffer<int> ring(arena, 4);
    ring.emplaceBack() = -1;
    ring.popFront(); // offset the head so growth has to unwrap
    for (int i = 0; i < 100; ++i)
        ring.emplaceBack() = i;
    ASSERT_EQ(ring.size(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(ring[i], i);
}

TEST(RingBufferTest, PopBackDiscardsNewest)
{
    Arena arena;
    RingBuffer<int> ring(arena, 8);
    ring.emplaceBack() = 1;
    ring.emplaceBack() = 2;
    ring.popBack();
    ASSERT_EQ(ring.size(), 1u);
    EXPECT_EQ(ring[0], 1);
}

} // namespace
