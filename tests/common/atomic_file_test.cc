/** @file Unit tests for crash-safe file output (atomic_file.hh). */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/atomic_file.hh"

namespace
{

using namespace parrot;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

TEST(WriteFileAtomicTest, ReplacesContentCompletely)
{
    const std::string path = "test_atomic_file.tmp";
    ASSERT_TRUE(atomic_file::writeFileAtomic(path, "first version\n"));
    EXPECT_EQ(slurp(path), "first version\n");
    // Shorter second write: stale tail bytes would prove a non-atomic
    // in-place truncate-and-rewrite.
    ASSERT_TRUE(atomic_file::writeFileAtomic(path, "v2\n"));
    EXPECT_EQ(slurp(path), "v2\n");
    // The sibling temp file must not survive a successful write.
    std::ifstream tmp(path + ".tmp." + std::to_string(::getpid()));
    EXPECT_FALSE(tmp.good());
    std::remove(path.c_str());
}

TEST(WriteFileAtomicTest, FailureReportsErrorAndLeavesTargetAlone)
{
    const std::string path =
        "/nonexistent_parrot_dir_xyz/test_atomic_file.tmp";
    std::string err;
    EXPECT_FALSE(atomic_file::writeFileAtomic(path, "data", &err));
    EXPECT_FALSE(err.empty());
    EXPECT_NE(err.find(path), std::string::npos);
}

TEST(AppendJournalTest, AppendsLinesDurably)
{
    const std::string path = "test_append_journal.tmp";
    std::remove(path.c_str());
    atomic_file::AppendJournal journal;
    ASSERT_TRUE(journal.open(path));
    EXPECT_TRUE(journal.isOpen());
    EXPECT_EQ(journal.size(), 0);
    ASSERT_TRUE(journal.appendLine("alpha"));
    ASSERT_TRUE(journal.appendLine("beta"));
    EXPECT_EQ(journal.size(), 11); // "alpha\nbeta\n"
    journal.close();
    EXPECT_FALSE(journal.isOpen());
    EXPECT_EQ(slurp(path), "alpha\nbeta\n");
    std::remove(path.c_str());
}

TEST(AppendJournalTest, ReopenContinuesAppending)
{
    const std::string path = "test_append_journal2.tmp";
    std::remove(path.c_str());
    {
        atomic_file::AppendJournal journal;
        ASSERT_TRUE(journal.open(path));
        ASSERT_TRUE(journal.appendLine("one"));
    } // destructor closes
    {
        atomic_file::AppendJournal journal;
        ASSERT_TRUE(journal.open(path));
        EXPECT_EQ(journal.size(), 4);
        ASSERT_TRUE(journal.appendLine("two"));
    }
    EXPECT_EQ(slurp(path), "one\ntwo\n");
    std::remove(path.c_str());
}

TEST(AppendJournalTest, ErrorsAreDetectedNotSilent)
{
    atomic_file::AppendJournal journal;
    EXPECT_FALSE(journal.appendLine("nowhere"));
    EXPECT_FALSE(journal.error().empty());
    EXPECT_FALSE(
        journal.open("/nonexistent_parrot_dir_xyz/journal.tmp"));
    EXPECT_NE(journal.error().find("nonexistent_parrot_dir_xyz"),
              std::string::npos);
}

TEST(AppendJournalTest, ReopenIfRenamedFollowsACompaction)
{
    const std::string path = "test_append_journal3.tmp";
    std::remove(path.c_str());
    atomic_file::AppendJournal journal;
    ASSERT_TRUE(journal.open(path));
    ASSERT_TRUE(journal.appendLine("old"));

    // Another process compacts: a fresh file is renamed over `path`,
    // orphaning the journal's inode. The next append must land in the
    // new file, not the unlinked ghost.
    ASSERT_TRUE(atomic_file::writeFileAtomic(path, "compacted\n"));
    ASSERT_TRUE(journal.reopenIfRenamed());
    ASSERT_TRUE(journal.appendLine("new"));
    journal.close();
    EXPECT_EQ(slurp(path), "compacted\nnew\n");
    std::remove(path.c_str());
}

TEST(AppendJournalTest, ReopenIfRenamedIsANoOpOnTheLiveInode)
{
    const std::string path = "test_append_journal4.tmp";
    std::remove(path.c_str());
    atomic_file::AppendJournal journal;
    ASSERT_TRUE(journal.open(path));
    ASSERT_TRUE(journal.appendLine("one"));
    ASSERT_TRUE(journal.reopenIfRenamed()); // same inode: keep the fd
    ASSERT_TRUE(journal.appendLine("two"));
    journal.close();
    EXPECT_EQ(slurp(path), "one\ntwo\n");
    std::remove(path.c_str());
}

TEST(FileLockTest, GuardsAcquireAndReleaseWithoutDeadlock)
{
    const std::string lock_path = "test_file_lock.tmp.lock";
    std::remove(lock_path.c_str());

    atomic_file::FileLock lock;
    ASSERT_TRUE(lock.open(lock_path));
    EXPECT_TRUE(lock.isOpen());
    {
        atomic_file::FileLock::Guard g(lock,
                                       atomic_file::FileLock::Shared);
        // Shared locks are compatible: a second locker (another
        // process in real use) can hold one concurrently.
        atomic_file::FileLock other;
        ASSERT_TRUE(other.open(lock_path));
        atomic_file::FileLock::Guard g2(other,
                                        atomic_file::FileLock::Shared);
    }
    {
        // Upgrade shared -> exclusive; with no other holder this must
        // complete immediately.
        atomic_file::FileLock::Guard g(lock,
                                       atomic_file::FileLock::Shared);
        g.upgrade();
    }
    {
        atomic_file::FileLock::Guard g(lock,
                                       atomic_file::FileLock::Exclusive);
    }
    lock.close();
    EXPECT_FALSE(lock.isOpen());
    std::remove(lock_path.c_str());
}

TEST(FileLockTest, GuardsAreNoOpsOnAnUnopenedLock)
{
    // A lock whose sidecar could not be created (read-only dir) must
    // degrade to no locking, not crash the run.
    atomic_file::FileLock lock;
    EXPECT_FALSE(
        lock.open("/nonexistent_parrot_dir_xyz/cache.lock"));
    EXPECT_FALSE(lock.isOpen());
    atomic_file::FileLock::Guard g(lock,
                                   atomic_file::FileLock::Exclusive);
    g.upgrade();
}

} // namespace
