/** @file Unit tests for strength reduction and in-trace memory
 * forwarding. */

#include <gtest/gtest.h>

#include "optimizer/equivalence.hh"
#include "optimizer/passes.hh"

namespace
{

using namespace parrot;
using namespace parrot::optimizer;
using namespace parrot::isa;
using tracecache::TraceUop;

TraceUop
tu(const Uop &uop)
{
    TraceUop t;
    t.uop = uop;
    return t;
}

void
expectEquivalent(const UopVec &before, const UopVec &after)
{
    for (std::uint64_t seed : {3ull, 77ull, 0xfeedull}) {
        std::string why;
        EXPECT_TRUE(equivalent(before, after, seed, &why)) << why;
    }
}

TEST(StrengthTest, MulByPowerOfTwoBecomesShift)
{
    UopVec uops{
        tu(makeMovImm(2, 8)),
        tu(makeAlu(UopKind::Mul, 3, 4, 2)),
    };
    UopVec before = uops;
    EXPECT_TRUE(reduceStrength(uops));
    EXPECT_EQ(uops[1].uop.kind, UopKind::ShlImm);
    EXPECT_EQ(uops[1].uop.imm, 3);
    EXPECT_EQ(uops[1].uop.src1, 4);
    expectEquivalent(before, uops);
}

TEST(StrengthTest, ConstOnEitherSide)
{
    UopVec uops{
        tu(makeMovImm(2, 16)),
        tu(makeAlu(UopKind::Mul, 3, 2, 5)), // const on the left
    };
    UopVec before = uops;
    EXPECT_TRUE(reduceStrength(uops));
    EXPECT_EQ(uops[1].uop.kind, UopKind::ShlImm);
    EXPECT_EQ(uops[1].uop.src1, 5);
    expectEquivalent(before, uops);
}

TEST(StrengthTest, NonPowerOfTwoUntouched)
{
    UopVec uops{
        tu(makeMovImm(2, 12)),
        tu(makeAlu(UopKind::Mul, 3, 4, 2)),
    };
    EXPECT_FALSE(reduceStrength(uops));
    EXPECT_EQ(uops[1].uop.kind, UopKind::Mul);
}

TEST(StrengthTest, StaleConstNotUsed)
{
    UopVec uops{
        tu(makeMovImm(2, 8)),
        tu(makeLoad(2, 5, 0)), // clobbers the constant
        tu(makeAlu(UopKind::Mul, 3, 4, 2)),
    };
    EXPECT_FALSE(reduceStrength(uops));
}

TEST(StrengthTest, NegativeValuesExact)
{
    // -5 * 8 must equal -5 << 3 under wraparound semantics.
    UopVec uops{
        tu(makeMovImm(4, -5)),
        tu(makeMovImm(2, 8)),
        tu(makeAlu(UopKind::Mul, 3, 4, 2)),
    };
    UopVec before = uops;
    reduceStrength(uops);
    expectEquivalent(before, uops);
}

TEST(MemForwardTest, StoreToLoadForwarding)
{
    UopVec uops{
        tu(makeStore(3, 8, 16)),  // mem[r8+16] = r3
        tu(makeLoad(4, 8, 16)),   // r4 = mem[r8+16]
    };
    UopVec before = uops;
    EXPECT_TRUE(forwardMemory(uops));
    EXPECT_EQ(uops[1].uop.kind, UopKind::Mov);
    EXPECT_EQ(uops[1].uop.src1, 3);
    expectEquivalent(before, uops);
}

TEST(MemForwardTest, RedundantLoadElimination)
{
    UopVec uops{
        tu(makeLoad(4, 8, 16)),
        tu(makeLoad(5, 8, 16)), // same word, no intervening store
    };
    UopVec before = uops;
    EXPECT_TRUE(forwardMemory(uops));
    EXPECT_EQ(uops[1].uop.kind, UopKind::Mov);
    EXPECT_EQ(uops[1].uop.src1, 4);
    expectEquivalent(before, uops);
}

TEST(MemForwardTest, DifferentDisplacementNotForwarded)
{
    UopVec uops{
        tu(makeStore(3, 8, 16)),
        tu(makeLoad(4, 8, 24)),
    };
    EXPECT_FALSE(forwardMemory(uops));
    EXPECT_EQ(uops[1].uop.kind, UopKind::Load);
}

TEST(MemForwardTest, BaseRedefinitionKillsKnowledge)
{
    UopVec uops{
        tu(makeStore(3, 8, 16)),
        tu(makeAluImm(UopKind::AddImm, 8, 8, 64)), // base moves
        tu(makeLoad(4, 8, 16)),                    // different address!
    };
    UopVec before = uops;
    EXPECT_FALSE(forwardMemory(uops));
    expectEquivalent(before, uops);
}

TEST(MemForwardTest, AliasingStoreKills)
{
    UopVec uops{
        tu(makeStore(3, 8, 16)),
        tu(makeStore(5, 9, 0)), // unknown address: may alias
        tu(makeLoad(4, 8, 16)),
    };
    EXPECT_FALSE(forwardMemory(uops));
    EXPECT_EQ(uops[2].uop.kind, UopKind::Load);
}

TEST(MemForwardTest, SameBaseDifferentOffsetStoreDoesNotKill)
{
    UopVec uops{
        tu(makeStore(3, 8, 16)),
        tu(makeStore(5, 8, 24)), // provably distinct word
        tu(makeLoad(4, 8, 16)),
    };
    UopVec before = uops;
    EXPECT_TRUE(forwardMemory(uops));
    EXPECT_EQ(uops[2].uop.kind, UopKind::Mov);
    EXPECT_EQ(uops[2].uop.src1, 3);
    expectEquivalent(before, uops);
}

TEST(MemForwardTest, StaleValueRegisterNotForwarded)
{
    UopVec uops{
        tu(makeStore(3, 8, 16)),
        tu(makeMovImm(3, 99)), // the stored value's register changed
        tu(makeLoad(4, 8, 16)),
    };
    UopVec before = uops;
    EXPECT_FALSE(forwardMemory(uops));
    expectEquivalent(before, uops);
}

TEST(MemForwardTest, ChaseLoadNotRecorded)
{
    // ld r8, [r8+0]; ld r4, [r8+0] — the second load uses the NEW r8;
    // forwarding the first result would be wrong.
    UopVec uops{
        tu(makeLoad(8, 8, 0)),
        tu(makeLoad(4, 8, 0)),
    };
    UopVec before = uops;
    EXPECT_FALSE(forwardMemory(uops));
    expectEquivalent(before, uops);
}

TEST(MemForwardTest, ForwardingFeedsDownstreamPasses)
{
    // After forwarding, the load's result is a copy that propagation
    // can chase and DCE can clean up.
    UopVec uops{
        tu(makeStore(3, 8, 16)),
        tu(makeLoad(4, 8, 16)),
        tu(makeAlu(UopKind::Add, 5, 4, 4)),
        tu(makeMovImm(4, 0)), // kills r4: the Mov becomes dead
    };
    UopVec before = uops;
    forwardMemory(uops);
    propagateAndSimplify(uops);
    eliminateDeadCode(uops);
    EXPECT_EQ(uops.size(), 3u) << "forward + propagate + DCE";
    expectEquivalent(before, uops);
}

} // namespace
