/** @file Unit tests for individual optimizer passes. */

#include <gtest/gtest.h>

#include "optimizer/equivalence.hh"
#include "optimizer/passes.hh"

namespace
{

using namespace parrot;
using namespace parrot::optimizer;
using namespace parrot::isa;
using tracecache::TraceUop;

TraceUop
tu(const Uop &uop)
{
    TraceUop t;
    t.uop = uop;
    return t;
}

/** Every pass must preserve semantics; check with multiple seeds. */
void
expectEquivalent(const UopVec &before, const UopVec &after)
{
    for (std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
        std::string why;
        EXPECT_TRUE(equivalent(before, after, seed, &why)) << why;
    }
}

TEST(PropagateTest, FoldsConstantChain)
{
    UopVec uops{
        tu(makeMovImm(2, 10)),
        tu(makeAluImm(UopKind::AddImm, 3, 2, 5)),
        tu(makeAlu(UopKind::Add, 4, 2, 3)),
    };
    UopVec before = uops;
    EXPECT_TRUE(propagateAndSimplify(uops));
    EXPECT_EQ(uops[1].uop.kind, UopKind::MovImm);
    EXPECT_EQ(uops[1].uop.imm, 15);
    EXPECT_EQ(uops[2].uop.kind, UopKind::MovImm);
    EXPECT_EQ(uops[2].uop.imm, 25);
    expectEquivalent(before, uops);
}

TEST(PropagateTest, XorSelfBecomesZero)
{
    UopVec uops{tu(makeAlu(UopKind::Xor, 3, 5, 5))};
    UopVec before = uops;
    EXPECT_TRUE(propagateAndSimplify(uops));
    EXPECT_EQ(uops[0].uop.kind, UopKind::MovImm);
    EXPECT_EQ(uops[0].uop.imm, 0);
    expectEquivalent(before, uops);
}

TEST(PropagateTest, AndSelfBecomesMov)
{
    UopVec uops{tu(makeAlu(UopKind::And, 3, 5, 5))};
    UopVec before = uops;
    EXPECT_TRUE(propagateAndSimplify(uops));
    EXPECT_EQ(uops[0].uop.kind, UopKind::Mov);
    EXPECT_EQ(uops[0].uop.src1, 5);
    expectEquivalent(before, uops);
}

TEST(PropagateTest, AddZeroImmBecomesMov)
{
    UopVec uops{tu(makeAluImm(UopKind::AddImm, 3, 5, 0))};
    UopVec before = uops;
    EXPECT_TRUE(propagateAndSimplify(uops));
    EXPECT_EQ(uops[0].uop.kind, UopKind::Mov);
    expectEquivalent(before, uops);
}

TEST(PropagateTest, MulByConstantOneAndZero)
{
    UopVec uops{
        tu(makeMovImm(2, 1)),
        tu(makeAlu(UopKind::Mul, 3, 4, 2)), // x*1 -> mov
        tu(makeMovImm(5, 0)),
        tu(makeAlu(UopKind::Mul, 6, 4, 5)), // x*0 -> 0
    };
    UopVec before = uops;
    EXPECT_TRUE(propagateAndSimplify(uops));
    EXPECT_EQ(uops[1].uop.kind, UopKind::Mov);
    EXPECT_EQ(uops[3].uop.kind, UopKind::MovImm);
    EXPECT_EQ(uops[3].uop.imm, 0);
    expectEquivalent(before, uops);
}

TEST(PropagateTest, CopyPropagationRewiresSources)
{
    UopVec uops{
        tu(makeMov(3, 2)),
        tu(makeAlu(UopKind::Add, 4, 3, 3)),
    };
    UopVec before = uops;
    EXPECT_TRUE(propagateAndSimplify(uops));
    EXPECT_EQ(uops[1].uop.src1, 2);
    EXPECT_EQ(uops[1].uop.src2, 2);
    expectEquivalent(before, uops);
}

TEST(PropagateTest, CopyInvalidatedByRedefinition)
{
    UopVec uops{
        tu(makeMov(3, 2)),
        tu(makeMovImm(2, 99)),             // kills the copy source
        tu(makeAlu(UopKind::Add, 4, 3, 3)), // must NOT become r2+r2
    };
    UopVec before = uops;
    propagateAndSimplify(uops);
    EXPECT_EQ(uops[2].uop.src1, 3);
    expectEquivalent(before, uops);
}

TEST(PropagateTest, LoadBlocksConstness)
{
    UopVec uops{
        tu(makeMovImm(2, 8)),
        tu(makeLoad(2, 3, 0)),              // overwrites const
        tu(makeAluImm(UopKind::AddImm, 4, 2, 1)), // must not fold
    };
    UopVec before = uops;
    propagateAndSimplify(uops);
    EXPECT_EQ(uops[2].uop.kind, UopKind::AddImm);
    expectEquivalent(before, uops);
}

TEST(DceTest, RemovesOverwrittenValue)
{
    UopVec uops{
        tu(makeMovImm(2, 1)), // dead: overwritten before any read
        tu(makeMovImm(2, 2)),
    };
    UopVec before = uops;
    EXPECT_TRUE(eliminateDeadCode(uops));
    ASSERT_EQ(uops.size(), 1u);
    EXPECT_EQ(uops[0].uop.imm, 2);
    expectEquivalent(before, uops);
}

TEST(DceTest, KeepsLiveOutValues)
{
    UopVec uops{tu(makeMovImm(2, 1))};
    EXPECT_FALSE(eliminateDeadCode(uops));
    EXPECT_EQ(uops.size(), 1u) << "live-out registers are conservative";
}

TEST(DceTest, KeepsStoresAndCtis)
{
    UopVec uops{
        tu(makeStore(2, 3, 0)),
        tu(makeAssert(true, 0)),
    };
    EXPECT_FALSE(eliminateDeadCode(uops));
    EXPECT_EQ(uops.size(), 2u);
}

TEST(DceTest, FlagsDeadAtTraceExit)
{
    // A cmp whose flags nobody reads is removable.
    UopVec uops{tu(makeCmpImm(2, 5))};
    EXPECT_TRUE(eliminateDeadCode(uops));
    EXPECT_TRUE(uops.empty());
}

TEST(DceTest, FlagsLiveWhenAssertReads)
{
    UopVec uops{
        tu(makeCmpImm(2, 5)),
        tu(makeAssert(true, 0)),
    };
    EXPECT_FALSE(eliminateDeadCode(uops));
    EXPECT_EQ(uops.size(), 2u);
}

TEST(DceTest, RemovesDeadLoad)
{
    UopVec uops{
        tu(makeLoad(2, 3, 8)),
        tu(makeMovImm(2, 1)),
    };
    UopVec before = uops;
    EXPECT_TRUE(eliminateDeadCode(uops));
    ASSERT_EQ(uops.size(), 1u);
    expectEquivalent(before, uops);
}

TEST(DceTest, TransitiveDeadChain)
{
    // b feeds only a dead value; two DCE rounds remove both.
    UopVec uops{
        tu(makeMovImm(2, 7)),               // read only by dead op
        tu(makeAlu(UopKind::Add, 3, 2, 2)), // dead: overwritten
        tu(makeMovImm(3, 1)),
        tu(makeMovImm(2, 1)),
    };
    eliminateDeadCode(uops);
    eliminateDeadCode(uops);
    EXPECT_EQ(uops.size(), 2u);
}

TEST(PromoteTest, RemovesInternalJumpsAndNops)
{
    UopVec uops{
        tu(makeMovImm(2, 1)),
        tu(makeJump()),
        tu(makeNop()),
        tu(makeMovImm(3, 2)),
    };
    EXPECT_TRUE(removeInternalJumps(uops));
    EXPECT_EQ(uops.size(), 2u);
}

TEST(FuseCmpTest, FusesSingleUseCompare)
{
    UopVec uops{
        tu(makeCmpImm(2, 5)),
        tu(makeAssert(true, 0x40)),
    };
    UopVec before = uops;
    EXPECT_TRUE(fuseCmpAssert(uops));
    ASSERT_EQ(uops.size(), 1u);
    EXPECT_EQ(uops[0].uop.kind, UopKind::AssertCmpTaken);
    EXPECT_EQ(uops[0].uop.imm, 5);
    EXPECT_EQ(uops[0].uop.assertTarget, 0x40u);
    expectEquivalent(before, uops);
}

TEST(FuseCmpTest, DoesNotFuseDoubleReader)
{
    UopVec uops{
        tu(makeCmp(2, 3)),
        tu(makeAssert(true, 0)),
        tu(makeBranch()), // second flags reader
    };
    EXPECT_FALSE(fuseCmpAssert(uops));
}

TEST(FuseCmpTest, FusesAcrossInterveningWork)
{
    UopVec uops{
        tu(makeCmp(2, 3)),
        tu(makeAlu(UopKind::Add, 4, 5, 6)),
        tu(makeAssert(false, 0x99)),
    };
    UopVec before = uops;
    EXPECT_TRUE(fuseCmpAssert(uops));
    ASSERT_EQ(uops.size(), 2u);
    EXPECT_EQ(uops[0].uop.kind, UopKind::AssertCmpNotTaken);
    expectEquivalent(before, uops);
}

TEST(FuseFpTest, FusesMulIntoAdd)
{
    UopVec uops{
        tu(makeFp(UopKind::FpMul, 18, 16, 17)),
        tu(makeFp(UopKind::FpAdd, 18, 18, 19)), // product dies here
    };
    UopVec before = uops;
    EXPECT_TRUE(fuseMulAdd(uops));
    ASSERT_EQ(uops.size(), 1u);
    EXPECT_EQ(uops[0].uop.kind, UopKind::FpMulAdd);
    expectEquivalent(before, uops);
}

TEST(FuseFpTest, KeepsMulWithSecondUse)
{
    UopVec uops{
        tu(makeFp(UopKind::FpMul, 18, 16, 17)),
        tu(makeFp(UopKind::FpAdd, 20, 18, 19)),
        tu(makeFp(UopKind::FpAdd, 21, 18, 19)), // second use of product
    };
    EXPECT_FALSE(fuseMulAdd(uops));
}

TEST(FuseFpTest, KeepsLiveOutProduct)
{
    UopVec uops{
        tu(makeFp(UopKind::FpMul, 18, 16, 17)),
        tu(makeFp(UopKind::FpAdd, 20, 18, 19)), // product still live-out
    };
    EXPECT_FALSE(fuseMulAdd(uops));
}

TEST(SimdTest, PacksIndependentPair)
{
    UopVec uops{
        tu(makeAlu(UopKind::Add, 4, 2, 3)),
        tu(makeAlu(UopKind::Add, 7, 5, 6)),
    };
    UopVec before = uops;
    EXPECT_TRUE(simdifyPairs(uops));
    ASSERT_EQ(uops.size(), 1u);
    EXPECT_EQ(uops[0].uop.kind, UopKind::SimdInt);
    expectEquivalent(before, uops);
}

TEST(SimdTest, RefusesDependentPair)
{
    UopVec uops{
        tu(makeAlu(UopKind::Add, 4, 2, 3)),
        tu(makeAlu(UopKind::Add, 5, 4, 3)), // reads lane-a's dst
    };
    EXPECT_FALSE(simdifyPairs(uops));
}

TEST(SimdTest, RefusesWhenIntermediateReadsLaneB)
{
    UopVec uops{
        tu(makeAlu(UopKind::Add, 4, 2, 3)),
        tu(makeAlu(UopKind::Sub, 8, 7, 2)), // reads r7 = b's OLD value
        tu(makeAlu(UopKind::Add, 7, 5, 6)),
    };
    // Packing b at a's position would make the Sub read the new r7.
    UopVec before = uops;
    simdifyPairs(uops);
    expectEquivalent(before, uops);
}

TEST(SimdTest, RefusesMixedCriticality)
{
    // Lane b waits on a long divide; lane a is ready immediately.
    UopVec uops{
        tu(makeAlu(UopKind::Div, 9, 2, 3)),
        tu(makeAlu(UopKind::Add, 4, 2, 3)),
        tu(makeAlu(UopKind::Add, 7, 9, 6)), // depends on the divide
    };
    EXPECT_FALSE(simdifyPairs(uops))
        << "lanes of very different readiness must not be packed";
}

TEST(ScheduleTest, PreservesSemantics)
{
    UopVec uops{
        tu(makeMovImm(2, 1)),
        tu(makeAlu(UopKind::Div, 3, 2, 2)),
        tu(makeMovImm(4, 7)),
        tu(makeAlu(UopKind::Add, 5, 3, 4)),
        tu(makeStore(5, 2, 0)),
        tu(makeLoad(6, 2, 0)),
    };
    UopVec before = uops;
    scheduleCriticalPath(uops);
    EXPECT_EQ(uops.size(), before.size());
    expectEquivalent(before, uops);
}

TEST(ScheduleTest, CriticalChainMovesForward)
{
    // The long dependence chain should be scheduled ahead of the
    // independent filler that originally preceded it.
    UopVec uops{
        tu(makeMovImm(8, 1)),               // independent filler
        tu(makeMovImm(9, 2)),               // independent filler
        tu(makeMovImm(2, 3)),               // chain head
        tu(makeAlu(UopKind::Mul, 3, 2, 2)),
        tu(makeAlu(UopKind::Mul, 4, 3, 3)),
        tu(makeAlu(UopKind::Mul, 5, 4, 4)),
    };
    UopVec before = uops;
    scheduleCriticalPath(uops);
    EXPECT_EQ(uops[0].uop.dst, 2) << "chain head should lead";
    expectEquivalent(before, uops);
}

} // namespace
