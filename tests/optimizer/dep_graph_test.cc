/** @file Unit tests for the trace dependence graph. */

#include <gtest/gtest.h>

#include "optimizer/dep_graph.hh"

namespace
{

using namespace parrot;
using namespace parrot::optimizer;
using namespace parrot::isa;
using tracecache::TraceUop;

TraceUop
tu(const Uop &uop)
{
    TraceUop t;
    t.uop = uop;
    return t;
}

TEST(DepGraphTest, RawEdge)
{
    std::vector<TraceUop> uops{
        tu(makeMovImm(2, 1)),
        tu(makeAluImm(UopKind::AddImm, 3, 2, 1)),
    };
    DependencyGraph g(uops);
    ASSERT_EQ(g.numNodes(), 2u);
    ASSERT_EQ(g.succs(0).size(), 1u);
    EXPECT_EQ(g.succs(0)[0], 1u);
    EXPECT_EQ(g.preds(1)[0], 0u);
}

TEST(DepGraphTest, WawEdge)
{
    std::vector<TraceUop> uops{
        tu(makeMovImm(2, 1)),
        tu(makeMovImm(2, 5)),
    };
    DependencyGraph g(uops);
    ASSERT_EQ(g.succs(0).size(), 1u);
    EXPECT_EQ(g.succs(0)[0], 1u);
}

TEST(DepGraphTest, WarEdge)
{
    std::vector<TraceUop> uops{
        tu(makeAluImm(UopKind::AddImm, 3, 2, 1)), // reads r2
        tu(makeMovImm(2, 5)),                     // writes r2 after
    };
    DependencyGraph g(uops);
    ASSERT_EQ(g.succs(0).size(), 1u);
    EXPECT_EQ(g.succs(0)[0], 1u);
}

TEST(DepGraphTest, IndependentNodesNoEdges)
{
    std::vector<TraceUop> uops{
        tu(makeMovImm(2, 1)),
        tu(makeMovImm(3, 2)),
    };
    DependencyGraph g(uops);
    EXPECT_TRUE(g.succs(0).empty());
    EXPECT_TRUE(g.preds(1).empty());
}

TEST(DepGraphTest, MemoryChainIsTotalOrder)
{
    std::vector<TraceUop> uops{
        tu(makeLoad(2, 8, 0)),
        tu(makeStore(3, 9, 0)),
        tu(makeLoad(4, 10, 0)),
    };
    DependencyGraph g(uops);
    ASSERT_GE(g.succs(0).size(), 1u);
    EXPECT_EQ(g.succs(0)[0], 1u);
    ASSERT_GE(g.succs(1).size(), 1u);
    EXPECT_EQ(g.succs(1)[0], 2u);
}

TEST(DepGraphTest, HeightsAreChainLengths)
{
    std::vector<TraceUop> uops{
        tu(makeMovImm(2, 1)),
        tu(makeAluImm(UopKind::AddImm, 2, 2, 1)),
        tu(makeAluImm(UopKind::AddImm, 2, 2, 1)),
        tu(makeMovImm(9, 0)), // independent
    };
    DependencyGraph g(uops);
    EXPECT_EQ(g.height(0), 3u);
    EXPECT_EQ(g.height(1), 2u);
    EXPECT_EQ(g.height(2), 1u);
    EXPECT_EQ(g.height(3), 1u);
}

TEST(DepGraphTest, IsTopologicalAcceptsIdentity)
{
    std::vector<TraceUop> uops{
        tu(makeMovImm(2, 1)),
        tu(makeAluImm(UopKind::AddImm, 3, 2, 1)),
        tu(makeMovImm(4, 9)),
    };
    DependencyGraph g(uops);
    EXPECT_TRUE(g.isTopological({0, 1, 2}));
    EXPECT_TRUE(g.isTopological({0, 2, 1}));
    EXPECT_TRUE(g.isTopological({2, 0, 1}));
}

TEST(DepGraphTest, IsTopologicalRejectsViolations)
{
    std::vector<TraceUop> uops{
        tu(makeMovImm(2, 1)),
        tu(makeAluImm(UopKind::AddImm, 3, 2, 1)),
    };
    DependencyGraph g(uops);
    EXPECT_FALSE(g.isTopological({1, 0}));
    EXPECT_FALSE(g.isTopological({0}));
    EXPECT_FALSE(g.isTopological({0, 0}));
}

} // namespace
