/**
 * @file
 * Property tests for the dynamic optimizer: for every application in
 * the suite, harvest real trace candidates from the workload stream,
 * optimize them, and verify the invariants that every pass must uphold:
 *
 *  1. semantic equivalence (registers except flags + memory) under
 *     multiple random initial states;
 *  2. the uop count never grows;
 *  3. Load/Store provenance stays valid (dynamic addresses recoverable);
 *  4. stores are never added or removed;
 *  5. optimization is idempotent in effect (re-optimizing an optimized
 *     trace keeps semantics).
 */

#include <gtest/gtest.h>

#include <map>

#include "optimizer/equivalence.hh"
#include "optimizer/optimizer.hh"
#include "tracecache/constructor.hh"
#include "tracecache/selector.hh"
#include "workload/apps.hh"
#include "workload/executor.hh"
#include "workload/generator.hh"

namespace
{

using namespace parrot;
using namespace parrot::optimizer;
using namespace parrot::tracecache;

/** Harvested candidates plus the program that owns their pointers. */
struct Harvest
{
    std::shared_ptr<workload::Program> program;
    std::vector<TraceCandidate> candidates;

    std::size_t size() const { return candidates.size(); }
    auto begin() const { return candidates.begin(); }
    auto end() const { return candidates.end(); }
    bool empty() const { return candidates.empty(); }
    const TraceCandidate &front() const { return candidates.front(); }
};

/** Harvest up to n distinct trace candidates from an application. */
Harvest
harvest(const workload::AppProfile &profile, std::size_t max_candidates,
        std::uint64_t insts)
{
    std::shared_ptr<workload::Program> prog =
        workload::generateProgram(profile);
    workload::Executor ex(*prog, profile);
    TraceSelector sel;
    std::map<std::uint64_t, TraceCandidate> unique;
    workload::DynInst d;
    TraceCandidate c;
    for (std::uint64_t i = 0; i < insts; ++i) {
        ex.next(d);
        sel.feed(d);
        while (sel.pop(c)) {
            if (unique.size() < max_candidates)
                unique.emplace(c.tid.hash(), c);
        }
    }
    Harvest out;
    out.program = std::move(prog);
    for (auto &[hash, cand] : unique)
        out.candidates.push_back(std::move(cand));
    return out;
}

unsigned
countStores(const std::vector<TraceUop> &uops)
{
    unsigned n = 0;
    for (const auto &tu : uops)
        n += (tu.uop.kind == isa::UopKind::Store);
    return n;
}

class OptimizerPropertyTest
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(OptimizerPropertyTest, OptimizationPreservesSemantics)
{
    auto entry = workload::findApp(GetParam());
    auto candidates = harvest(entry.profile, 60, 40000);
    ASSERT_GT(candidates.size(), 5u);

    TraceOptimizer opt{OptimizerConfig{}};
    unsigned optimized_count = 0;
    for (const auto &cand : candidates) {
        Trace trace = constructTrace(cand);
        const auto original = trace.uops;
        const unsigned stores_before = countStores(original);

        auto result = opt.optimize(trace);
        ++optimized_count;

        // (1) semantics under a sweep of random initial states; the
        // failing seed is surfaced so a mismatch is reproducible with
        // equivalent(original, optimized, failing_seed).
        {
            std::string why;
            std::uint64_t failing_seed = 0;
            ASSERT_TRUE(equivalentSweep(original, trace.uops, 7,
                                        defaultEquivalenceSeeds, &why,
                                        &failing_seed))
                << entry.profile.name << " trace @0x" << std::hex
                << cand.tid.startPc << std::dec << " (failing seed "
                << failing_seed << "): " << why;
        }

        // (2) never grows.
        EXPECT_LE(trace.uops.size(), original.size());
        EXPECT_EQ(result.uopsAfter, trace.uops.size());

        // (3) provenance of memory uops remains valid.
        for (const auto &tu : trace.uops) {
            if (tu.uop.kind == isa::UopKind::Load ||
                tu.uop.kind == isa::UopKind::Store) {
                ASSERT_GE(tu.instIdx, 0);
                ASSERT_LT(static_cast<std::size_t>(tu.instIdx),
                          trace.path.size());
                const auto &inst = *trace.path[tu.instIdx].inst;
                ASSERT_GE(tu.uopIdx, 0);
                ASSERT_LT(static_cast<std::size_t>(tu.uopIdx),
                          inst.uops.size());
                auto orig_kind = inst.uops[tu.uopIdx].kind;
                EXPECT_EQ(orig_kind, tu.uop.kind)
                    << "memory uops must keep their original identity";
            }
        }

        // (4) stores preserved exactly.
        EXPECT_EQ(countStores(trace.uops), stores_before);

        // (5) re-optimization keeps semantics.
        Trace twice = trace;
        opt.optimize(twice);
        std::string why;
        std::uint64_t failing_seed = 0;
        EXPECT_TRUE(equivalentSweep(original, twice.uops, 31337,
                                    defaultEquivalenceSeeds, &why,
                                    &failing_seed))
            << "(failing seed " << failing_seed << "): " << why;
    }
    EXPECT_GT(optimized_count, 0u);
}

TEST_P(OptimizerPropertyTest, ReductionWithinPlausibleBand)
{
    auto entry = workload::findApp(GetParam());
    auto candidates = harvest(entry.profile, 40, 40000);
    ASSERT_GT(candidates.size(), 3u);

    TraceOptimizer opt{OptimizerConfig{}};
    double total_before = 0, total_after = 0;
    for (const auto &cand : candidates) {
        Trace trace = constructTrace(cand);
        auto result = opt.optimize(trace);
        total_before += result.uopsBefore;
        total_after += result.uopsAfter;
        // Dependence height essentially never increases (SIMD lane
        // merging may add a node to an off-critical chain within its
        // bounded skew).
        EXPECT_LE(result.depAfter, result.depBefore + 3)
            << "passes must not materially lengthen the critical path";
    }
    double reduction = 1.0 - total_after / total_before;
    EXPECT_GT(reduction, 0.02) << "optimizer should find planted slack";
    EXPECT_LT(reduction, 0.55) << "reduction beyond this is suspicious";
}

TEST_P(OptimizerPropertyTest, GenericSubsetOfFull)
{
    // The generic-only configuration must reduce no more than the full
    // one on aggregate (core-specific passes only remove more).
    auto entry = workload::findApp(GetParam());
    auto candidates = harvest(entry.profile, 30, 30000);
    TraceOptimizer full{OptimizerConfig{}};
    TraceOptimizer generic{OptimizerConfig::genericOnly()};
    double full_after = 0, generic_after = 0, before = 0;
    for (const auto &cand : candidates) {
        Trace a = constructTrace(cand);
        Trace b = a;
        before += a.uops.size();
        full.optimize(a);
        generic.optimize(b);
        full_after += a.uops.size();
        generic_after += b.uops.size();
        // And generic alone is also semantics-preserving.
        std::string why;
        std::uint64_t failing_seed = 0;
        Trace original = constructTrace(cand);
        EXPECT_TRUE(optimizer::equivalentSweep(
            original.uops, b.uops, 5, optimizer::defaultEquivalenceSeeds,
            &why, &failing_seed))
            << "(failing seed " << failing_seed << "): " << why;
    }
    EXPECT_LE(full_after, generic_after);
}

INSTANTIATE_TEST_SUITE_P(
    Apps, OptimizerPropertyTest,
    ::testing::Values("gcc", "gzip", "perlbench", "swim", "wupwise",
                      "lucas", "word", "excel", "flash", "quake3",
                      "dotnet-num-a", "dotnet-phong-b"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(OptimizerConfigTest, DisabledDoesNothing)
{
    auto entry = workload::findApp("swim");
    auto candidates = harvest(entry.profile, 5, 20000);
    ASSERT_FALSE(candidates.empty());
    TraceOptimizer off{OptimizerConfig::disabled()};
    Trace trace = constructTrace(candidates.front());
    auto before = trace.uops.size();
    auto result = off.optimize(trace);
    EXPECT_EQ(trace.uops.size(), before);
    EXPECT_EQ(result.passesRun, 0u);
    EXPECT_TRUE(trace.optimized) << "still marked to avoid re-queueing";
}

} // namespace
