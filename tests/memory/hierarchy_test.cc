/** @file Unit tests for the L1/L2/memory hierarchy. */

#include <gtest/gtest.h>

#include "memory/hierarchy.hh"

namespace
{

using namespace parrot;
using namespace parrot::memory;

TEST(HierarchyTest, DefaultConfigValidates)
{
    HierarchyConfig cfg;
    cfg.validate();
    EXPECT_DOUBLE_EQ(cfg.l2MegaBytes(), 1.0);
}

TEST(HierarchyTest, InstFetchLatencies)
{
    HierarchyConfig cfg;
    Hierarchy mem(cfg);
    // Cold: L1 miss, L2 miss -> full path.
    auto first = mem.fetchInst(0x400000);
    EXPECT_FALSE(first.l1Hit);
    EXPECT_FALSE(first.l2Hit);
    EXPECT_EQ(first.latency,
              cfg.l1i.hitLatency + cfg.l2.hitLatency + cfg.memLatency);
    // Warm: L1 hit.
    auto second = mem.fetchInst(0x400000);
    EXPECT_TRUE(second.l1Hit);
    EXPECT_EQ(second.latency, cfg.l1i.hitLatency);
}

TEST(HierarchyTest, L2CatchesL1Evictions)
{
    HierarchyConfig cfg;
    cfg.l1d = CacheConfig{"l1d", 1024, 4, 64, 3};
    Hierarchy mem(cfg);
    // Touch enough lines to overflow L1D (16 lines) but not L2.
    for (Addr a = 0; a < 64 * 64; a += 64)
        mem.accessData(0x100000 + a, false);
    // Re-touch the first line: L1 miss but L2 hit.
    auto access = mem.accessData(0x100000, false);
    EXPECT_FALSE(access.l1Hit);
    EXPECT_TRUE(access.l2Hit);
    EXPECT_EQ(access.latency, cfg.l1d.hitLatency + cfg.l2.hitLatency);
}

TEST(HierarchyTest, MemAccessCounted)
{
    HierarchyConfig cfg;
    Hierarchy mem(cfg);
    EXPECT_EQ(mem.memAccesses(), 0u);
    mem.accessData(0x5000, false);
    EXPECT_EQ(mem.memAccesses(), 1u);
    mem.accessData(0x5000, false);
    EXPECT_EQ(mem.memAccesses(), 1u) << "second access hits L1";
}

TEST(HierarchyTest, InstAndDataShareL2)
{
    HierarchyConfig cfg;
    Hierarchy mem(cfg);
    mem.fetchInst(0x400000);
    // The same line fetched as data must now hit in the shared L2.
    auto access = mem.accessData(0x400000, false);
    EXPECT_FALSE(access.l1Hit);
    EXPECT_TRUE(access.l2Hit);
}

TEST(HierarchyTest, StatsResetClearsCounters)
{
    Hierarchy mem(HierarchyConfig{});
    mem.accessData(0x1000, true);
    mem.resetStats();
    EXPECT_EQ(mem.l1d().accesses(), 0u);
    EXPECT_EQ(mem.memAccesses(), 0u);
}

} // namespace
