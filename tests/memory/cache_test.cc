/** @file Unit tests for the set-associative cache model. */

#include <gtest/gtest.h>

#include "memory/cache.hh"
#include "memory/hierarchy.hh"

namespace
{

using namespace parrot;
using namespace parrot::memory;

CacheConfig
smallConfig()
{
    CacheConfig cfg;
    cfg.name = "test";
    cfg.sizeBytes = 1024; // 4 sets x 4 ways x 64B
    cfg.assoc = 4;
    cfg.lineBytes = 64;
    cfg.hitLatency = 2;
    return cfg;
}

TEST(CacheTest, GeometryDerivation)
{
    CacheConfig cfg = smallConfig();
    EXPECT_EQ(cfg.numSets(), 4u);
    cfg.validate();
}

TEST(CacheTest, ColdMissThenHit)
{
    Cache cache(smallConfig());
    EXPECT_FALSE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1000, false).hit);
    EXPECT_EQ(cache.missCount(), 1u);
    EXPECT_EQ(cache.hitCount(), 1u);
}

TEST(CacheTest, SameLineDifferentBytesHit)
{
    Cache cache(smallConfig());
    cache.access(0x1000, false);
    EXPECT_TRUE(cache.access(0x103f, false).hit) << "same 64B line";
    EXPECT_FALSE(cache.access(0x1040, false).hit) << "next line";
}

TEST(CacheTest, LruEviction)
{
    Cache cache(smallConfig());
    // Fill one set (set stride = 4 sets * 64B = 256B).
    for (int w = 0; w < 4; ++w)
        cache.access(0x1000 + w * 256, false);
    // Touch way 0 so way 1 becomes LRU.
    cache.access(0x1000, false);
    // A fifth line in the set must evict the LRU (0x1100).
    cache.access(0x1000 + 4 * 256, false);
    EXPECT_TRUE(cache.contains(0x1000));
    EXPECT_FALSE(cache.contains(0x1100));
    EXPECT_TRUE(cache.contains(0x1200));
}

TEST(CacheTest, DirtyWritebackOnEviction)
{
    Cache cache(smallConfig());
    cache.access(0x1000, true); // dirty
    for (int w = 1; w <= 4; ++w)
        cache.access(0x1000 + w * 256, false);
    EXPECT_EQ(cache.writebackCount(), 1u);
}

TEST(CacheTest, CleanEvictionNoWriteback)
{
    Cache cache(smallConfig());
    for (int w = 0; w <= 4; ++w)
        cache.access(0x1000 + w * 256, false);
    EXPECT_EQ(cache.writebackCount(), 0u);
}

TEST(CacheTest, FlushInvalidatesEverything)
{
    Cache cache(smallConfig());
    cache.access(0x1000, false);
    cache.flush();
    EXPECT_FALSE(cache.contains(0x1000));
}

TEST(CacheTest, MissRatio)
{
    Cache cache(smallConfig());
    cache.access(0x0, false);
    cache.access(0x0, false);
    cache.access(0x0, false);
    cache.access(0x0, false);
    EXPECT_DOUBLE_EQ(cache.missRatio(), 0.25);
    cache.resetStats();
    EXPECT_DOUBLE_EQ(cache.missRatio(), 0.0);
}

TEST(CacheTest, FullyAssociativeWorks)
{
    CacheConfig cfg = smallConfig();
    cfg.assoc = 16;
    cfg.sizeBytes = 16 * 64;
    Cache cache(cfg);
    for (int i = 0; i < 16; ++i)
        cache.access(i * 64, false);
    for (int i = 0; i < 16; ++i)
        EXPECT_TRUE(cache.contains(i * 64));
}

TEST(CacheTest, WorkingSetLargerThanCacheThrashes)
{
    Cache cache(smallConfig()); // 1KB
    for (int pass = 0; pass < 4; ++pass)
        for (Addr a = 0; a < 8 * 1024; a += 64)
            cache.access(a, false);
    EXPECT_GT(cache.missRatio(), 0.9);
}

} // namespace

namespace
{

using namespace parrot;
using namespace parrot::memory;

TEST(PrefetchTest, FillAllocatesWithoutStats)
{
    CacheConfig cfg{"pf", 1024, 4, 64, 2};
    Cache cache(cfg);
    EXPECT_TRUE(cache.fill(0x1000));
    EXPECT_TRUE(cache.contains(0x1000));
    EXPECT_EQ(cache.accesses(), 0u) << "fills are not demand accesses";
    EXPECT_FALSE(cache.fill(0x1000)) << "already present";
}

TEST(PrefetchTest, HierarchyNextLinePrefetch)
{
    HierarchyConfig cfg;
    cfg.l1dNextLinePrefetch = true;
    Hierarchy mem(cfg);
    mem.accessData(0x10000, false); // miss: prefetches 0x10040
    EXPECT_EQ(mem.prefetches(), 1u);
    auto next = mem.accessData(0x10040, false);
    EXPECT_TRUE(next.l1Hit) << "next line must have been prefetched";
}

TEST(PrefetchTest, DisabledByDefault)
{
    Hierarchy mem{HierarchyConfig{}};
    mem.accessData(0x10000, false);
    EXPECT_EQ(mem.prefetches(), 0u);
    EXPECT_FALSE(mem.l1d().contains(0x10040));
}

TEST(PrefetchTest, InstructionSidePrefetch)
{
    HierarchyConfig cfg;
    cfg.l1iNextLinePrefetch = true;
    Hierarchy mem(cfg);
    mem.fetchInst(0x400000);
    EXPECT_TRUE(mem.l1i().contains(0x400040));
}

} // namespace
