/** @file Unit tests for the variable-length decode bandwidth model. */

#include <gtest/gtest.h>

#include "frontend/decoder.hh"
#include "isa/uop.hh"

namespace
{

using namespace parrot;
using namespace parrot::frontend;

isa::MacroInst
makeInst(unsigned length, unsigned uops)
{
    isa::MacroInst inst;
    inst.length = static_cast<std::uint8_t>(length);
    for (unsigned i = 0; i < uops; ++i)
        inst.uops.push_back(isa::makeMovImm(2, 1));
    return inst;
}

TEST(DecoderTest, SimpleInstsFillWidth)
{
    Decoder dec(DecoderConfig{4, 6, 16});
    auto a = makeInst(3, 1);
    std::vector<const isa::MacroInst *> window{&a, &a, &a, &a, &a};
    EXPECT_EQ(dec.throughput(window), 4u);
}

TEST(DecoderTest, WeightLimitThrottlesComplexInsts)
{
    Decoder dec(DecoderConfig{4, 6, 64});
    auto complex = makeInst(10, 3); // weight 1+1+1 = 3
    std::vector<const isa::MacroInst *> window{&complex, &complex,
                                               &complex};
    // 3 + 3 = 6 fits; a third would exceed the weight limit.
    EXPECT_EQ(dec.throughput(window), 2u);
}

TEST(DecoderTest, FetchWindowLimitsBytes)
{
    Decoder dec(DecoderConfig{8, 64, 16});
    auto fat = makeInst(7, 1);
    std::vector<const isa::MacroInst *> window{&fat, &fat, &fat, &fat};
    // 7 + 7 = 14 <= 16; adding a third (21) exceeds the fetch window.
    EXPECT_EQ(dec.throughput(window), 2u);
}

TEST(DecoderTest, FirstInstructionAlwaysDecodes)
{
    Decoder dec(DecoderConfig{4, 2, 4});
    auto huge = makeInst(15, 4); // weight exceeds any limit
    std::vector<const isa::MacroInst *> window{&huge, &huge};
    EXPECT_EQ(dec.throughput(window), 1u)
        << "a lone oversized instruction must not stall forever";
}

TEST(DecoderTest, EmptyWindowDecodesNothing)
{
    Decoder dec(DecoderConfig{});
    EXPECT_EQ(dec.throughput({}), 0u);
}

TEST(DecoderTest, DecodeWeightReflectsComplexity)
{
    auto simple = makeInst(3, 1);
    auto long_inst = makeInst(12, 1);
    auto multi = makeInst(3, 3);
    EXPECT_EQ(Decoder::cost(simple), 1u);
    EXPECT_EQ(Decoder::cost(long_inst), 2u);
    EXPECT_EQ(Decoder::cost(multi), 2u);
}

} // namespace
