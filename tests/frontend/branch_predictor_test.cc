/** @file Unit tests for the tournament branch predictor, BTB and RAS. */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "frontend/branch_predictor.hh"

namespace
{

using namespace parrot;
using namespace parrot::frontend;

BranchPredictorConfig
smallConfig()
{
    BranchPredictorConfig cfg;
    cfg.numEntries = 256;
    cfg.historyBits = 8;
    cfg.btbEntries = 64;
    cfg.rasEntries = 4;
    return cfg;
}

TEST(BranchPredictorTest, LearnsAlwaysTaken)
{
    BranchPredictor bp(smallConfig());
    for (int i = 0; i < 64; ++i) {
        bool p = bp.predict(0x4000);
        bp.update(0x4000, true);
        if (i > 4)
            EXPECT_TRUE(p) << "iteration " << i;
    }
}

TEST(BranchPredictorTest, LearnsAlwaysNotTaken)
{
    BranchPredictor bp(smallConfig());
    for (int i = 0; i < 64; ++i) {
        bool p = bp.predict(0x4000);
        bp.update(0x4000, false);
        if (i > 4)
            EXPECT_FALSE(p);
    }
}

TEST(BranchPredictorTest, HighAccuracyOnBiasedBranches)
{
    BranchPredictor bp(smallConfig());
    Rng rng(99);
    for (int i = 0; i < 20000; ++i) {
        Addr pc = 0x4000 + (rng.below(16) * 8);
        bool taken = rng.chance(0.95);
        bp.predict(pc);
        bp.update(pc, taken);
    }
    EXPECT_LT(bp.mispredictRatio(), 0.10);
}

TEST(BranchPredictorTest, GshareLearnsGlobalPattern)
{
    // A single branch alternating T/NT is perfectly predictable with
    // history; the tournament must beat the bimodal-only floor (~50%).
    BranchPredictor bp(smallConfig());
    for (int i = 0; i < 4000; ++i) {
        bool taken = (i % 2) == 0;
        bp.predict(0x4000);
        bp.update(0x4000, taken);
    }
    EXPECT_LT(bp.mispredictRatio(), 0.10);
}

TEST(BranchPredictorTest, StatsCountPredictions)
{
    BranchPredictor bp(smallConfig());
    for (int i = 0; i < 10; ++i) {
        bp.predict(0x10);
        bp.update(0x10, true);
    }
    EXPECT_EQ(bp.predictions(), 10u);
    EXPECT_EQ(bp.mispredictions(),
              bp.predictions() -
                  (bp.predictions() - bp.mispredictions()));
}

TEST(BtbTest, MissThenHitAfterInsert)
{
    BranchPredictor bp(smallConfig());
    Addr target = 0;
    EXPECT_FALSE(bp.btbLookup(0x4000, target));
    bp.btbInsert(0x4000, 0x5000);
    ASSERT_TRUE(bp.btbLookup(0x4000, target));
    EXPECT_EQ(target, 0x5000u);
}

TEST(BtbTest, TagMismatchMisses)
{
    BranchPredictorConfig cfg = smallConfig();
    BranchPredictor bp(cfg);
    bp.btbInsert(0x4000, 0x5000);
    Addr target = 0;
    // A pc aliasing to another index (or same index, different tag)
    // must not produce a false hit.
    EXPECT_FALSE(bp.btbLookup(0x4001, target));
}

TEST(RasTest, LifoOrder)
{
    BranchPredictor bp(smallConfig());
    bp.rasPush(0x100);
    bp.rasPush(0x200);
    EXPECT_EQ(bp.rasPop(), 0x200u);
    EXPECT_EQ(bp.rasPop(), 0x100u);
}

TEST(RasTest, UnderflowReturnsZero)
{
    BranchPredictor bp(smallConfig());
    EXPECT_EQ(bp.rasPop(), 0u);
}

TEST(RasTest, OverflowDropsOldest)
{
    BranchPredictor bp(smallConfig()); // 4 entries
    for (Addr a = 1; a <= 5; ++a)
        bp.rasPush(a * 0x10);
    EXPECT_EQ(bp.rasPop(), 0x50u);
    EXPECT_EQ(bp.rasPop(), 0x40u);
    EXPECT_EQ(bp.rasPop(), 0x30u);
    EXPECT_EQ(bp.rasPop(), 0x20u);
    EXPECT_EQ(bp.rasPop(), 0u) << "oldest entry was dropped";
}

} // namespace
