/** @file Unit tests for the hybrid trace predictor. */

#include <gtest/gtest.h>

#include "tracecache/predictor.hh"

namespace
{

using namespace parrot;
using namespace parrot::tracecache;

Tid
tidOf(Addr pc, std::uint64_t dirs = 0, unsigned n = 0)
{
    Tid t;
    t.startPc = pc;
    t.dirBits = dirs;
    t.numDirs = static_cast<std::uint8_t>(n);
    return t;
}

class TracePredictorTest : public ::testing::Test
{
  protected:
    TracePredictorTest() : tp(TracePredictorConfig{256, 3}) {}

    /** Train the same transition n times. */
    void
    trainN(const Tid &prev, const Tid &next, int n)
    {
        for (int i = 0; i < n; ++i)
            tp.train(prev, next.startPc, next);
    }

    TracePredictor tp;
};

TEST_F(TracePredictorTest, UntrainedDoesNotPredict)
{
    Tid out;
    EXPECT_FALSE(tp.predict(tidOf(0x100), 0x200, out));
}

TEST_F(TracePredictorTest, SingleTrainingIsNotTrusted)
{
    Tid prev = tidOf(0x100), next = tidOf(0x200, 0b1, 1);
    tp.train(prev, next.startPc, next);
    Tid out;
    EXPECT_FALSE(tp.predict(prev, 0x200, out))
        << "one occurrence must not reach prediction confidence";
}

TEST_F(TracePredictorTest, RepetitionBuildsConfidence)
{
    Tid prev = tidOf(0x100), next = tidOf(0x200, 0b1, 1);
    trainN(prev, next, 8);
    Tid out;
    ASSERT_TRUE(tp.predict(prev, 0x200, out));
    EXPECT_EQ(out, next);
    EXPECT_EQ(tp.predictions(), 1u);
}

TEST_F(TracePredictorTest, PredictionRequiresMatchingStartPc)
{
    Tid prev = tidOf(0x100), next = tidOf(0x200, 0b1, 1);
    trainN(prev, next, 8);
    Tid out;
    EXPECT_FALSE(tp.predict(prev, 0x300, out));
}

TEST_F(TracePredictorTest, AnchorCatchesVaryingPredecessors)
{
    // Train the same successor after many different predecessors: the
    // contextual entries fragment, but the pc-anchored component
    // accumulates confidence.
    Tid next = tidOf(0x200, 0b11, 2);
    for (int i = 0; i < 12; ++i)
        tp.train(tidOf(0x1000 + i * 0x40), next.startPc, next);
    Tid out;
    EXPECT_TRUE(tp.predict(tidOf(0x9999), 0x200, out))
        << "anchor component must predict for an unseen predecessor";
    EXPECT_EQ(out, next);
}

TEST_F(TracePredictorTest, ContextDistinguishesPaths)
{
    // After A the successor is X; after B it is Y. With enough
    // training the contextual component should keep them apart even
    // though both start at the same pc.
    Tid a = tidOf(0x100, 0b0, 1), b = tidOf(0x100, 0b1, 1);
    Tid x = tidOf(0x200, 0b0, 1), y = tidOf(0x200, 0b1, 1);
    for (int i = 0; i < 16; ++i) {
        tp.train(a, 0x200, x);
        tp.train(b, 0x200, y);
    }
    Tid out;
    ASSERT_TRUE(tp.predict(a, 0x200, out));
    EXPECT_EQ(out, x);
    ASSERT_TRUE(tp.predict(b, 0x200, out));
    EXPECT_EQ(out, y);
}

TEST_F(TracePredictorTest, MispredictSuppressesRePrediction)
{
    Tid prev = tidOf(0x100), next = tidOf(0x200, 0b1, 1);
    trainN(prev, next, 10);
    Tid out;
    ASSERT_TRUE(tp.predict(prev, 0x200, out));
    tp.mispredict(prev, 0x200);
    EXPECT_FALSE(tp.predict(prev, 0x200, out))
        << "an abort must drop confidence below the prediction bar";
}

TEST_F(TracePredictorTest, RecoversAfterMispredict)
{
    Tid prev = tidOf(0x100), next = tidOf(0x200, 0b1, 1);
    trainN(prev, next, 10);
    tp.mispredict(prev, 0x200);
    trainN(prev, next, 4);
    Tid out;
    EXPECT_TRUE(tp.predict(prev, 0x200, out));
}

TEST_F(TracePredictorTest, HysteresisProtectsEstablishedPaths)
{
    Tid prev = tidOf(0x100);
    Tid stable = tidOf(0x200, 0b1, 1);
    Tid intruder = tidOf(0x200, 0b0, 1);
    trainN(prev, stable, 10);
    // A couple of stray occurrences of another path must not displace
    // the established prediction.
    tp.train(prev, 0x200, intruder);
    tp.train(prev, 0x200, intruder);
    trainN(prev, stable, 3);
    Tid out;
    ASSERT_TRUE(tp.predict(prev, 0x200, out));
    EXPECT_EQ(out, stable);
}

TEST(TracePredictorConfigTest, ValidatesPowerOfTwo)
{
    TracePredictorConfig cfg;
    cfg.numEntries = 2048;
    cfg.validate();
}

} // namespace
