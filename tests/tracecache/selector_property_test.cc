/**
 * @file
 * Property tests for trace selection over *real* workload streams: for
 * a spread of applications, every emitted candidate must satisfy the
 * §2.2 selection rules, and the concatenated candidates must exactly
 * re-tile the committed instruction stream.
 */

#include <gtest/gtest.h>

#include "tracecache/selector.hh"
#include "workload/apps.hh"
#include "workload/executor.hh"
#include "workload/generator.hh"

namespace
{

using namespace parrot;
using namespace parrot::tracecache;

class SelectorPropertyTest : public ::testing::TestWithParam<const char *>
{
};

TEST_P(SelectorPropertyTest, CandidatesSatisfySelectionRules)
{
    auto entry = workload::findApp(GetParam());
    auto program = workload::generateProgram(entry.profile);
    workload::Executor ex(*program, entry.profile);
    TraceSelector sel;

    workload::DynInst d;
    TraceCandidate c;
    unsigned checked = 0;
    for (int i = 0; i < 60000; ++i) {
        ex.next(d);
        sel.feed(d);
        while (sel.pop(c)) {
            ++checked;
            SCOPED_TRACE("candidate @" + std::to_string(c.tid.startPc));

            // Capacity limit.
            ASSERT_LE(c.uopCount, maxTraceUops);
            ASSERT_FALSE(c.path.empty());
            ASSERT_EQ(c.tid.startPc, c.path.front().inst->pc);

            unsigned uops = 0, dirs = 0;
            int context = 0;
            for (std::size_t k = 0; k < c.path.size(); ++k) {
                const auto &ref = c.path[k];
                uops += ref.inst->uops.size();
                const bool is_last = (k + 1 == c.path.size());
                switch (ref.inst->cti) {
                  case isa::CtiType::CondBranch: {
                    ++dirs;
                    // Backward-taken branches terminate traces.
                    bool backward_taken =
                        ref.taken &&
                        ref.inst->takenTarget <= ref.inst->pc;
                    if (backward_taken && !is_last) {
                        // ...unless this is a join boundary of an
                        // unrolled trace (the next path entry restarts
                        // the unit at the trace's start pc).
                        ASSERT_EQ(c.path[k + 1].inst->pc,
                                  c.tid.startPc)
                            << "internal backward-taken branch that is "
                               "not an unroll seam";
                    }
                    break;
                  }
                  case isa::CtiType::JumpInd:
                    ASSERT_TRUE(is_last)
                        << "indirect jumps must terminate traces";
                    break;
                  case isa::CtiType::Call:
                    ++context;
                    break;
                  case isa::CtiType::Return:
                    if (context > 0) {
                        --context; // inlined
                    } else {
                        ASSERT_TRUE(is_last)
                            << "outermost return must terminate";
                    }
                    break;
                  default:
                    break;
                }
            }
            ASSERT_EQ(uops, c.uopCount);
            ASSERT_EQ(dirs, c.tid.numDirs);
            // Unused direction bits must be zero (TID compaction).
            if (c.tid.numDirs < 64) {
                ASSERT_EQ(c.tid.dirBits >> c.tid.numDirs, 0u);
            }
        }
    }
    EXPECT_GT(checked, 100u);
}

TEST_P(SelectorPropertyTest, CandidatesTileTheStreamExactly)
{
    auto entry = workload::findApp(GetParam());
    auto program = workload::generateProgram(entry.profile);

    // Reference stream.
    workload::Executor ref(*program, entry.profile);
    std::vector<const isa::MacroInst *> stream;
    std::vector<bool> taken;
    workload::DynInst d;
    const int n = 30000;
    for (int i = 0; i < n; ++i) {
        ref.next(d);
        stream.push_back(d.inst);
        taken.push_back(d.taken);
    }

    // Selected candidates, concatenated, must reproduce the stream.
    workload::Executor ex(*program, entry.profile);
    TraceSelector sel;
    std::size_t pos = 0;
    TraceCandidate c;
    for (int i = 0; i < n; ++i) {
        ex.next(d);
        sel.feed(d);
        while (sel.pop(c)) {
            for (const auto &ref_inst : c.path) {
                ASSERT_LT(pos, stream.size());
                ASSERT_EQ(ref_inst.inst, stream[pos]);
                ASSERT_EQ(ref_inst.taken, taken[pos]);
                ++pos;
            }
        }
    }
    sel.flush();
    while (sel.pop(c)) {
        for (const auto &ref_inst : c.path) {
            ASSERT_LT(pos, stream.size());
            ASSERT_EQ(ref_inst.inst, stream[pos]);
            ++pos;
        }
    }
    EXPECT_EQ(pos, stream.size())
        << "selection must partition the committed stream exactly";
}

INSTANTIATE_TEST_SUITE_P(
    Apps, SelectorPropertyTest,
    ::testing::Values("gcc", "gzip", "swim", "word", "flash",
                      "dotnet-phong-a", "eon", "lucas"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (char &ch : name)
            if (ch == '-')
                ch = '_';
        return name;
    });

} // namespace
