/** @file Unit tests for the trace cache. */

#include <gtest/gtest.h>

#include "tracecache/trace_cache.hh"

namespace
{

using namespace parrot;
using namespace parrot::tracecache;

Trace
makeTrace(Addr pc, unsigned n_uops = 4, std::uint64_t dirs = 0,
          unsigned n_dirs = 0)
{
    Trace t;
    t.tid.startPc = pc;
    t.tid.dirBits = dirs;
    t.tid.numDirs = static_cast<std::uint8_t>(n_dirs);
    for (unsigned i = 0; i < n_uops; ++i) {
        TraceUop tu;
        tu.uop = isa::makeMovImm(2, i);
        t.uops.push_back(tu);
    }
    t.originalUopCount = static_cast<std::uint16_t>(n_uops);
    return t;
}

TEST(TraceCacheTest, InsertLookupRoundTrip)
{
    TraceCache tc(TraceCacheConfig{64, 4});
    Trace t = makeTrace(0x100);
    tc.insert(t);
    auto found = tc.lookup(t.tid);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->tid, t.tid);
    EXPECT_EQ(found->numUops(), 4u);
}

TEST(TraceCacheTest, LookupMissReturnsNull)
{
    TraceCache tc(TraceCacheConfig{64, 4});
    Tid t;
    t.startPc = 0xabc;
    EXPECT_EQ(tc.lookup(t), nullptr);
    EXPECT_EQ(tc.hits(), 0u);
    EXPECT_EQ(tc.lookups(), 1u);
}

TEST(TraceCacheTest, PathVariantsCoexist)
{
    TraceCache tc(TraceCacheConfig{64, 4});
    tc.insert(makeTrace(0x100, 4, 0b0, 1));
    tc.insert(makeTrace(0x100, 4, 0b1, 1));
    Tid a;
    a.startPc = 0x100;
    a.dirBits = 0;
    a.numDirs = 1;
    Tid b = a;
    b.dirBits = 1;
    EXPECT_NE(tc.lookup(a), nullptr);
    EXPECT_NE(tc.lookup(b), nullptr);
    EXPECT_EQ(tc.occupancy(), 2u);
}

TEST(TraceCacheTest, SameTidReplacesInPlace)
{
    TraceCache tc(TraceCacheConfig{64, 4});
    tc.insert(makeTrace(0x100, 8));
    Trace optimized = makeTrace(0x100, 5);
    optimized.optimized = true;
    tc.insert(optimized);
    EXPECT_EQ(tc.occupancy(), 1u);
    EXPECT_EQ(tc.optimizedReplacements(), 1u);
    auto found = tc.lookup(optimized.tid);
    ASSERT_NE(found, nullptr);
    EXPECT_TRUE(found->optimized);
    EXPECT_EQ(found->numUops(), 5u);
}

TEST(TraceCacheTest, InFlightTraceSurvivesRewrite)
{
    TraceCache tc(TraceCacheConfig{64, 4});
    tc.insert(makeTrace(0x100, 8));
    Tid tid = makeTrace(0x100).tid;
    auto in_flight = tc.lookup(tid);
    ASSERT_NE(in_flight, nullptr);
    Trace optimized = makeTrace(0x100, 5);
    optimized.optimized = true;
    tc.insert(optimized);
    // The old shared_ptr still sees the pre-rewrite version.
    EXPECT_EQ(in_flight->numUops(), 8u);
    EXPECT_FALSE(in_flight->optimized);
}

TEST(TraceCacheTest, EvictionWhenSetFull)
{
    TraceCache tc(TraceCacheConfig{4, 4}); // one set
    for (Addr pc = 0x100; pc < 0x100 + 5 * 0x40; pc += 0x40)
        tc.insert(makeTrace(pc));
    EXPECT_EQ(tc.occupancy(), 4u);
    EXPECT_EQ(tc.evictions(), 1u);
}

TEST(TraceCacheTest, UopReductionAccounting)
{
    Trace t = makeTrace(0x100, 6);
    t.originalUopCount = 8;
    EXPECT_NEAR(t.uopReduction(), 0.25, 1e-12);
}

TEST(TraceCacheTest, ForEachVisitsAll)
{
    TraceCache tc(TraceCacheConfig{64, 4});
    tc.insert(makeTrace(0x100));
    tc.insert(makeTrace(0x200));
    unsigned count = 0;
    tc.forEach([&](const Trace &) { ++count; });
    EXPECT_EQ(count, 2u);
}

} // namespace
