/** @file Unit tests for the deterministic trace selector (§2.2 rules). */

#include <gtest/gtest.h>

#include "tracecache/selector.hh"
#include "stream_helper.hh"

namespace
{

using namespace parrot;
using namespace parrot::tracecache;
using testhelper::MiniProgram;

class SelectorTest : public ::testing::Test
{
  protected:
    /** Feed a list of dyninsts, flush, and collect all candidates. */
    std::vector<TraceCandidate>
    collect(const std::vector<workload::DynInst> &stream)
    {
        for (const auto &d : stream)
            selector.feed(d);
        selector.flush();
        std::vector<TraceCandidate> out;
        TraceCandidate c;
        while (selector.pop(c))
            out.push_back(c);
        return out;
    }

    MiniProgram prog;
    TraceSelector selector;
};

TEST_F(SelectorTest, BackwardTakenBranchTerminates)
{
    auto *a = prog.addAlu(0x100);
    auto *br = prog.addBranch(0x104, 0x100); // backward
    auto candidates = collect({
        MiniProgram::dyn(a), MiniProgram::dyn(br, true),
        MiniProgram::dyn(a), MiniProgram::dyn(br, false),
        MiniProgram::dyn(a),
    });
    // Iteration 1 terminates at the backward-taken branch; the exit
    // iteration (not-taken) continues and is flushed separately.
    ASSERT_EQ(candidates.size(), 2u);
    EXPECT_EQ(candidates[0].path.size(), 2u);
    EXPECT_EQ(candidates[0].tid.startPc, 0x100u);
    EXPECT_EQ(candidates[0].tid.numDirs, 1u);
    EXPECT_EQ(candidates[0].tid.dirBits, 1u);
    EXPECT_EQ(candidates[1].path.size(), 3u);
}

TEST_F(SelectorTest, ForwardTakenBranchDoesNotTerminate)
{
    auto *a = prog.addAlu(0x100);
    auto *br = prog.addBranch(0x104, 0x200); // forward
    auto *b = prog.addAlu(0x200);
    auto candidates = collect({
        MiniProgram::dyn(a), MiniProgram::dyn(br, true),
        MiniProgram::dyn(b),
    });
    ASSERT_EQ(candidates.size(), 1u);
    EXPECT_EQ(candidates[0].path.size(), 3u)
        << "forward taken branches extend the trace";
}

TEST_F(SelectorTest, IndirectJumpTerminates)
{
    auto *a = prog.addAlu(0x100);
    auto *ind = prog.addJumpInd(0x104);
    auto *b = prog.addAlu(0x300);
    auto candidates = collect({
        MiniProgram::dyn(a), MiniProgram::dyn(ind, true),
        MiniProgram::dyn(b),
    });
    ASSERT_EQ(candidates.size(), 2u);
    EXPECT_EQ(candidates[0].path.size(), 2u);
}

TEST_F(SelectorTest, ReturnTerminatesOnlyOutermostContext)
{
    // call f; (in f) ret  -> inlined, trace continues.
    // A bare ret (no call seen in this trace) terminates.
    auto *a = prog.addAlu(0x100);
    auto *call = prog.addCall(0x104, 0x500);
    auto *f_body = prog.addAlu(0x500);
    auto *f_ret = prog.addReturn(0x504);
    auto *b = prog.addAlu(0x108);
    auto *outer_ret = prog.addReturn(0x10c);
    auto *c = prog.addAlu(0x700);

    auto candidates = collect({
        MiniProgram::dyn(a), MiniProgram::dyn(call, true),
        MiniProgram::dyn(f_body), MiniProgram::dyn(f_ret, true),
        MiniProgram::dyn(b), MiniProgram::dyn(outer_ret, true),
        MiniProgram::dyn(c),
    });
    ASSERT_EQ(candidates.size(), 2u);
    EXPECT_EQ(candidates[0].path.size(), 6u)
        << "call/ret pair must be inlined into one trace";
    EXPECT_EQ(candidates[0].path.back().inst, outer_ret);
}

TEST_F(SelectorTest, CapacityLimitSplitsLargeBlocks)
{
    // 20 four-uop instructions = 80 uops > 64: must split.
    auto *fat = prog.addMultiUop(0x100, 4);
    std::vector<workload::DynInst> stream;
    for (int i = 0; i < 20; ++i)
        stream.push_back(MiniProgram::dyn(fat));
    auto candidates = collect(stream);
    ASSERT_GE(candidates.size(), 2u);
    for (const auto &cand : candidates)
        EXPECT_LE(cand.uopCount, maxTraceUops);
}

TEST_F(SelectorTest, ConsecutiveIdenticalTracesJoin)
{
    // A 2-inst loop body iterated 4 times: the 3 backward-taken
    // iterations join into one unrolled candidate.
    auto *a = prog.addAlu(0x100);
    auto *br = prog.addBranch(0x104, 0x100);
    std::vector<workload::DynInst> stream;
    for (int i = 0; i < 3; ++i) {
        stream.push_back(MiniProgram::dyn(a));
        stream.push_back(MiniProgram::dyn(br, true));
    }
    stream.push_back(MiniProgram::dyn(a));
    stream.push_back(MiniProgram::dyn(br, false)); // exit
    auto candidates = collect(stream);
    ASSERT_EQ(candidates.size(), 2u);
    EXPECT_EQ(candidates[0].unrollFactor, 3u);
    EXPECT_EQ(candidates[0].path.size(), 6u);
    EXPECT_EQ(candidates[0].tid.numDirs, 3u);
    EXPECT_EQ(candidates[0].tid.dirBits, 0b111u);
}

TEST_F(SelectorTest, JoiningStopsAtCapacity)
{
    // 24-uop iterations: only two fit in a 64-uop frame.
    auto *fat = prog.addMultiUop(0x100, 4);
    auto *fat2 = prog.addMultiUop(0x106, 4);
    auto *fat3 = prog.addMultiUop(0x10c, 4);
    auto *fat4 = prog.addMultiUop(0x112, 4);
    auto *fat5 = prog.addMultiUop(0x118, 4);
    auto *fat6 = prog.addMultiUop(0x11e, 4);
    auto *br = prog.addBranch(0x124, 0x100);
    std::vector<workload::DynInst> stream;
    for (int i = 0; i < 6; ++i) {
        for (auto *inst : {fat, fat2, fat3, fat4, fat5, fat6})
            stream.push_back(MiniProgram::dyn(inst));
        stream.push_back(MiniProgram::dyn(br, true));
    }
    auto candidates = collect(stream);
    for (const auto &cand : candidates) {
        EXPECT_LE(cand.uopCount, maxTraceUops);
        EXPECT_LE(cand.unrollFactor, 2u);
    }
    ASSERT_GE(candidates.size(), 2u);
    EXPECT_EQ(candidates[0].unrollFactor, 2u);
}

TEST_F(SelectorTest, DifferentDirectionsDoNotJoin)
{
    auto *a = prog.addAlu(0x100);
    auto *br = prog.addBranch(0x104, 0x100);
    auto candidates = collect({
        MiniProgram::dyn(a), MiniProgram::dyn(br, true),
        MiniProgram::dyn(a), MiniProgram::dyn(br, true),
        MiniProgram::dyn(a), MiniProgram::dyn(br, false),
        MiniProgram::dyn(a), MiniProgram::dyn(br, true),
    });
    // Joined 2x (taken,taken), then the exit path, then the new
    // iteration.
    ASSERT_GE(candidates.size(), 2u);
    EXPECT_EQ(candidates[0].unrollFactor, 2u);
}

TEST_F(SelectorTest, TidsDifferForDifferentPaths)
{
    auto *a = prog.addAlu(0x100);
    auto *br = prog.addBranch(0x104, 0x100);
    auto c1 = collect({MiniProgram::dyn(a), MiniProgram::dyn(br, true)});
    TraceSelector other;
    other.feed(MiniProgram::dyn(a));
    other.feed(MiniProgram::dyn(br, false));
    other.flush();
    TraceCandidate c2;
    ASSERT_TRUE(other.pop(c2));
    ASSERT_EQ(c1.size(), 1u);
    EXPECT_NE(c1[0].tid, c2.tid);
    EXPECT_NE(c1[0].tid.hash(), c2.tid.hash());
}

TEST_F(SelectorTest, FlushEmitsPartialTrace)
{
    auto *a = prog.addAlu(0x100);
    selector.feed(MiniProgram::dyn(a));
    selector.flush();
    TraceCandidate c;
    ASSERT_TRUE(selector.pop(c));
    EXPECT_EQ(c.path.size(), 1u);
    EXPECT_EQ(selector.emitted(), 1u);
}

} // namespace
