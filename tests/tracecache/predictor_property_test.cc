/**
 * @file
 * Property tests for the trace predictor's confidence machinery. The
 * hot pipeline pays dearly for a wrong prediction (a full trace abort),
 * so the properties all bound WHEN the predictor is allowed to speak:
 * never without training, never below full confidence, and not again
 * right after an abort.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/random.hh"
#include "tracecache/predictor.hh"

namespace
{

using namespace parrot::tracecache;

Tid
tidOf(parrot::Addr pc, std::uint64_t dirs = 0, unsigned n = 0)
{
    Tid t;
    t.startPc = pc;
    t.dirBits = dirs;
    t.numDirs = static_cast<std::uint8_t>(n);
    return t;
}

/** Trainings needed from scratch until a prediction may fire: the
 * fresh-entry confidence is maxConfidence/2 and each confirming
 * training adds one, so 1 (allocate) + ceil(max - max/2) more. */
unsigned
trainingsToConfidence(const TracePredictorConfig &cfg)
{
    unsigned max = (1u << cfg.counterBits) - 1;
    return 1 + (max - max / 2);
}

TEST(PredictorPropertyTest, UntrainedNeverPredicts)
{
    TracePredictor pred(TracePredictorConfig{});
    parrot::Rng rng(11);
    Tid out;
    for (unsigned i = 0; i < 5000; ++i) {
        Tid prev = tidOf(0x1000 + rng.below(256) * 0x10, rng.below(8), 3);
        parrot::Addr pc = 0x8000 + rng.below(1024) * 0x4;
        ASSERT_FALSE(pred.predict(prev, pc, out));
    }
    EXPECT_EQ(pred.predictions(), 0u);
}

TEST(PredictorPropertyTest, ConfidenceMustBuildBeforePrediction)
{
    // Training the same (context -> actual) pair: no prediction may
    // appear before the hysteresis counter saturates, and once it does
    // the predicted TID is exactly the trained one.
    TracePredictorConfig cfg;
    TracePredictor pred(cfg);
    const unsigned needed = trainingsToConfidence(cfg);
    Tid prev = tidOf(0x1000, 0b11, 2);
    Tid actual = tidOf(0x2000, 0b1, 1);
    const parrot::Addr pc = actual.startPc;
    Tid out;
    for (unsigned n = 1; n <= needed + 4; ++n) {
        pred.train(prev, pc, actual);
        bool predicted = pred.predict(prev, pc, out);
        if (n < needed) {
            ASSERT_FALSE(predicted)
                << "predicted after only " << n << " trainings";
        } else {
            ASSERT_TRUE(predicted) << "still silent after " << n;
            ASSERT_TRUE(out == actual);
        }
    }
}

TEST(PredictorPropertyTest, PredictionOnlyForTrainedFetchAddress)
{
    TracePredictorConfig cfg;
    TracePredictor pred(cfg);
    Tid prev = tidOf(0x1000);
    Tid actual = tidOf(0x2000, 0b10, 2);
    for (unsigned n = 0; n < 2 * trainingsToConfidence(cfg); ++n)
        pred.train(prev, actual.startPc, actual);
    Tid out;
    EXPECT_TRUE(pred.predict(prev, actual.startPc, out));
    // A different fetch address must stay silent even though it aliases
    // nothing: the stored startPc is checked, not just the table index.
    EXPECT_FALSE(pred.predict(prev, actual.startPc + 0x40, out));
}

TEST(PredictorPropertyTest, MispredictSuppressesImmediateReprediction)
{
    // After an abort the same context must fall cold again and re-earn
    // its confidence over several confirming occurrences.
    TracePredictorConfig cfg;
    TracePredictor pred(cfg);
    Tid prev = tidOf(0x1000);
    Tid actual = tidOf(0x3000, 0b101, 3);
    const parrot::Addr pc = actual.startPc;
    for (unsigned n = 0; n < 2 * trainingsToConfidence(cfg); ++n)
        pred.train(prev, pc, actual);
    Tid out;
    ASSERT_TRUE(pred.predict(prev, pc, out));

    pred.mispredict(prev, pc);
    EXPECT_FALSE(pred.predict(prev, pc, out))
        << "an aborted path must not be re-predicted immediately";

    // Re-earning: strictly more than one confirmation is required (the
    // penalty is stronger than one training step), and confidence does
    // come back under a steady path.
    unsigned recoveries = 0;
    while (!pred.predict(prev, pc, out)) {
        pred.train(prev, pc, actual);
        ASSERT_LT(++recoveries, 16u) << "never recovered";
    }
    EXPECT_GT(recoveries, 1u);
    ASSERT_TRUE(out == actual);
}

TEST(PredictorPropertyTest, AlternatingPathsStaySilent)
{
    // A context that alternates between two successors has no stable
    // hot path; hysteresis must keep the predictor quiet rather than
    // ping-ponging the hot pipeline into repeated aborts. This is the
    // selectivity property at the heart of PARROT's power story.
    TracePredictor pred(TracePredictorConfig{});
    Tid prev = tidOf(0x1000);
    const parrot::Addr pc = 0x2000;
    Tid a = tidOf(pc, 0b0, 1);
    Tid b = tidOf(pc, 0b1, 1);
    Tid out;
    for (unsigned n = 0; n < 200; ++n) {
        pred.train(prev, pc, n & 1 ? a : b);
        ASSERT_FALSE(pred.predict(prev, pc, out))
            << "alternating path predicted at step " << n;
    }
    EXPECT_EQ(pred.predictions(), 0u);
}

TEST(PredictorPropertyTest, RandomStreamNeverPredictsUnseenTid)
{
    // Fuzz-style sweep: whatever interleaving of train/mispredict the
    // stream produces, a fired prediction must be a TID that was
    // actually trained for that fetch address at some point.
    TracePredictor pred(TracePredictorConfig{256, 3});
    parrot::Rng rng(0x5eed);
    std::vector<Tid> tids;
    for (unsigned i = 0; i < 8; ++i)
        tids.push_back(tidOf(0x4000 + i * 0x100, i, i % 4));
    std::set<std::uint64_t> trained;
    Tid out;
    for (unsigned step = 0; step < 20000; ++step) {
        const Tid &prev = tids[rng.below(tids.size())];
        const Tid &actual = tids[rng.below(tids.size())];
        if (pred.predict(prev, actual.startPc, out)) {
            ASSERT_EQ(out.startPc, actual.startPc)
                << "prediction for a fetch address it was not made for";
            ASSERT_TRUE(trained.count(out.hash()))
                << "predicted a TID that was never trained";
        }
        if (rng.chance(0.1)) {
            pred.mispredict(prev, actual.startPc);
        } else {
            pred.train(prev, actual.startPc, actual);
            trained.insert(actual.hash());
        }
    }
}

} // namespace
