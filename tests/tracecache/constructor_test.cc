/** @file Unit tests for trace construction (assert conversion,
 * provenance, dependence height). */

#include <gtest/gtest.h>

#include "tracecache/constructor.hh"
#include "stream_helper.hh"

namespace
{

using namespace parrot;
using namespace parrot::tracecache;
using testhelper::MiniProgram;

TraceCandidate
candidateFrom(const std::vector<workload::DynInst> &stream)
{
    TraceSelector sel;
    for (const auto &d : stream)
        sel.feed(d);
    sel.flush();
    TraceCandidate c;
    EXPECT_TRUE(sel.pop(c));
    return c;
}

TEST(ConstructorTest, CopiesUopsWithProvenance)
{
    MiniProgram prog;
    auto *a = prog.addMultiUop(0x100, 3);
    auto *b = prog.addAlu(0x106);
    auto cand = candidateFrom({MiniProgram::dyn(a), MiniProgram::dyn(b)});
    Trace trace = constructTrace(cand);
    ASSERT_EQ(trace.numUops(), 4u);
    EXPECT_EQ(trace.uops[0].instIdx, 0);
    EXPECT_EQ(trace.uops[0].uopIdx, 0);
    EXPECT_EQ(trace.uops[2].instIdx, 0);
    EXPECT_EQ(trace.uops[2].uopIdx, 2);
    EXPECT_EQ(trace.uops[3].instIdx, 1);
    EXPECT_EQ(trace.originalUopCount, 4u);
}

TEST(ConstructorTest, InternalBranchesBecomeAsserts)
{
    // Two unrolled iterations: the first backward branch is internal
    // (assert), the second terminates the trace (plain branch — its
    // direction only steers the next fetch, so no atomic protection
    // is needed).
    MiniProgram prog;
    auto *a = prog.addAlu(0x100);
    auto *br = prog.addBranch(0x104, 0x100);
    auto cand = candidateFrom({
        MiniProgram::dyn(a), MiniProgram::dyn(br, true),
        MiniProgram::dyn(a), MiniProgram::dyn(br, true),
    });
    Trace trace = constructTrace(cand);
    ASSERT_EQ(trace.numUops(), 4u);
    EXPECT_EQ(trace.uops[1].uop.kind, isa::UopKind::AssertTaken);
    EXPECT_EQ(trace.uops[1].uop.assertTarget, 0x100u);
    EXPECT_EQ(trace.uops[3].uop.kind, isa::UopKind::Branch)
        << "the trace-final CTI must stay a plain branch";
}

TEST(ConstructorTest, NotTakenBranchesBecomeNotTakenAsserts)
{
    MiniProgram prog;
    auto *a = prog.addAlu(0x100);
    auto *br = prog.addBranch(0x104, 0x100);
    auto *b = prog.addAlu(0x106);
    auto *ind = prog.addJumpInd(0x10a);
    auto cand = candidateFrom({
        MiniProgram::dyn(a), MiniProgram::dyn(br, false),
        MiniProgram::dyn(b), MiniProgram::dyn(ind, true),
    });
    Trace trace = constructTrace(cand);
    EXPECT_EQ(trace.uops[1].uop.kind, isa::UopKind::AssertNotTaken);
    // The terminating indirect jump is kept as-is.
    EXPECT_EQ(trace.uops.back().uop.kind, isa::UopKind::JumpInd);
}

TEST(DepHeightTest, SerialChain)
{
    std::vector<TraceUop> uops;
    for (int i = 0; i < 5; ++i) {
        TraceUop tu;
        tu.uop = isa::makeAluImm(isa::UopKind::AddImm, 2, 2, 1);
        uops.push_back(tu);
    }
    EXPECT_EQ(computeDepHeight(uops), 5u);
}

TEST(DepHeightTest, IndependentOpsHeightOne)
{
    std::vector<TraceUop> uops;
    for (int i = 0; i < 5; ++i) {
        TraceUop tu;
        tu.uop = isa::makeMovImm(static_cast<RegId>(2 + i), i);
        uops.push_back(tu);
    }
    EXPECT_EQ(computeDepHeight(uops), 1u);
}

TEST(DepHeightTest, FlagsChainCounted)
{
    std::vector<TraceUop> uops(3);
    uops[0].uop = isa::makeMovImm(2, 1);
    uops[1].uop = isa::makeCmpImm(2, 0);
    uops[2].uop = isa::makeBranch();
    EXPECT_EQ(computeDepHeight(uops), 3u);
}

TEST(DepHeightTest, EmptyTraceIsZero)
{
    EXPECT_EQ(computeDepHeight({}), 0u);
}

} // namespace
