/** @file Helpers to build tiny synthetic instruction streams for
 * trace-selection tests. */

#ifndef PARROT_TESTS_TRACECACHE_STREAM_HELPER_HH
#define PARROT_TESTS_TRACECACHE_STREAM_HELPER_HH

#include <memory>
#include <vector>

#include "isa/inst.hh"
#include "isa/uop.hh"
#include "workload/dyninst.hh"

namespace testhelper
{

using parrot::Addr;
using parrot::isa::CtiType;
using parrot::isa::MacroInst;

/** Owns a small static "program" of hand-built instructions. */
class MiniProgram
{
  public:
    /** Append a plain single-uop ALU instruction. */
    const MacroInst *
    addAlu(Addr pc, unsigned length = 4)
    {
        return add(pc, length, CtiType::None, 0,
                   {parrot::isa::makeAluImm(parrot::isa::UopKind::AddImm,
                                            2, 3, 1)});
    }

    /** Append a multi-uop instruction. */
    const MacroInst *
    addMultiUop(Addr pc, unsigned n_uops, unsigned length = 6)
    {
        std::vector<parrot::isa::Uop> uops;
        for (unsigned i = 0; i < n_uops; ++i)
            uops.push_back(parrot::isa::makeMovImm(2, i));
        return add(pc, length, CtiType::None, 0, uops);
    }

    /** Append a conditional branch (cmp omitted for brevity). */
    const MacroInst *
    addBranch(Addr pc, Addr target, unsigned length = 2)
    {
        return add(pc, length, CtiType::CondBranch, target,
                   {parrot::isa::makeBranch()});
    }

    const MacroInst *
    addJumpInd(Addr pc)
    {
        return add(pc, 2, CtiType::JumpInd, 0,
                   {parrot::isa::makeJumpInd(3)});
    }

    const MacroInst *
    addCall(Addr pc, Addr target)
    {
        return add(pc, 3, CtiType::Call, target,
                   {parrot::isa::makeCall()});
    }

    const MacroInst *
    addReturn(Addr pc)
    {
        return add(pc, 1, CtiType::Return, 0,
                   {parrot::isa::makeReturn()});
    }

    /** Make a DynInst executing the given instruction. */
    static parrot::workload::DynInst
    dyn(const MacroInst *inst, bool taken = false)
    {
        parrot::workload::DynInst d;
        d.inst = inst;
        d.taken = taken;
        d.nextPc = (taken && inst->takenTarget) ? inst->takenTarget
                                                : inst->nextPc();
        return d;
    }

  private:
    const MacroInst *
    add(Addr pc, unsigned length, CtiType cti, Addr target,
        std::vector<parrot::isa::Uop> uops)
    {
        auto inst = std::make_unique<MacroInst>();
        inst->pc = pc;
        inst->length = static_cast<std::uint8_t>(length);
        inst->cti = cti;
        inst->takenTarget = target;
        inst->uops = std::move(uops);
        insts.push_back(std::move(inst));
        return insts.back().get();
    }

    std::vector<std::unique_ptr<MacroInst>> insts;
};

} // namespace testhelper

#endif
