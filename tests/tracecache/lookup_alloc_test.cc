/**
 * @file
 * Allocation-freedom guarantee for the fetch path: TraceCache::lookup
 * must perform zero heap allocations on both hits and misses, and the
 * TraceRef it returns must be refcount-free (trivially copyable — the
 * static_assert in trace_cache.hh enforces that half at compile time).
 *
 * This test lives in its own binary because it replaces the global
 * operator new/delete with counting versions; sharing a binary with
 * other tests would make their allocations indistinguishable.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "tracecache/trace_cache.hh"

namespace
{

std::atomic<std::uint64_t> g_heapAllocs{0};
std::atomic<bool> g_tracking{false};

void *
countedAlloc(std::size_t n)
{
    if (g_tracking.load(std::memory_order_relaxed))
        g_heapAllocs.fetch_add(1, std::memory_order_relaxed);
    void *p = std::malloc(n ? n : 1);
    if (!p)
        throw std::bad_alloc();
    return p;
}

/** RAII window: allocations are counted only while one is alive. */
struct TrackingScope
{
    TrackingScope()
    {
        g_heapAllocs.store(0, std::memory_order_relaxed);
        g_tracking.store(true, std::memory_order_relaxed);
    }
    ~TrackingScope() { g_tracking.store(false, std::memory_order_relaxed); }
    std::uint64_t count() const
    {
        return g_heapAllocs.load(std::memory_order_relaxed);
    }
};

} // namespace

void *operator new(std::size_t n) { return countedAlloc(n); }
void *operator new[](std::size_t n) { return countedAlloc(n); }
void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace
{

using namespace parrot;
using namespace parrot::tracecache;

Trace
makeTrace(Addr pc)
{
    Trace t;
    t.tid.startPc = pc;
    for (unsigned i = 0; i < 4; ++i) {
        TraceUop tu;
        tu.uop = isa::makeMovImm(2, i);
        t.uops.push_back(tu);
    }
    t.originalUopCount = 4;
    return t;
}

TEST(LookupAllocTest, HitPathIsAllocationFree)
{
    TraceCache tc(TraceCacheConfig{64, 4});
    Trace t = makeTrace(0x100);
    tc.insert(t);

    TraceRef ref;
    TrackingScope scope;
    for (int i = 0; i < 1000; ++i) {
        ref = tc.lookup(t.tid);
        TraceRef copy = ref; // two-word copy, no refcount
        ASSERT_TRUE(copy);
    }
    EXPECT_EQ(scope.count(), 0u);
    EXPECT_EQ(ref->tid, t.tid);
}

TEST(LookupAllocTest, MissPathIsAllocationFree)
{
    TraceCache tc(TraceCacheConfig{64, 4});
    tc.insert(makeTrace(0x100));
    Tid absent;
    absent.startPc = 0xdead;

    TrackingScope scope;
    for (int i = 0; i < 1000; ++i)
        ASSERT_FALSE(tc.lookup(absent));
    EXPECT_EQ(scope.count(), 0u);
}

TEST(LookupAllocTest, PeekIsAllocationFree)
{
    TraceCache tc(TraceCacheConfig{64, 4});
    Trace t = makeTrace(0x200);
    tc.insert(t);

    TrackingScope scope;
    for (int i = 0; i < 1000; ++i)
        ASSERT_NE(tc.peek(t.tid), nullptr);
    EXPECT_EQ(scope.count(), 0u);
}

} // namespace
