/** @file Unit tests for the hot/blazing counter filters. */

#include <gtest/gtest.h>

#include <map>

#include "common/random.hh"
#include "tracecache/filter.hh"

namespace
{

using namespace parrot::tracecache;

Tid
tidOf(parrot::Addr pc, std::uint64_t dirs = 0, unsigned n = 0)
{
    Tid t;
    t.startPc = pc;
    t.dirBits = dirs;
    t.numDirs = static_cast<std::uint8_t>(n);
    return t;
}

TEST(FilterTest, CountsAccumulate)
{
    CounterFilter filter(FilterConfig{64, 4, 8});
    Tid t = tidOf(0x100);
    for (unsigned i = 1; i <= 10; ++i)
        EXPECT_EQ(filter.bump(t), i);
    EXPECT_EQ(filter.read(t), 10u);
}

TEST(FilterTest, ThresholdPromotion)
{
    CounterFilter filter(FilterConfig{64, 4, 3});
    Tid t = tidOf(0x200);
    EXPECT_FALSE(filter.promoted(filter.bump(t)));
    EXPECT_FALSE(filter.promoted(filter.bump(t)));
    EXPECT_TRUE(filter.promoted(filter.bump(t)));
}

TEST(FilterTest, DistinctTidsDistinctCounters)
{
    CounterFilter filter(FilterConfig{64, 4, 8});
    Tid a = tidOf(0x100, 0b01, 2);
    Tid b = tidOf(0x100, 0b10, 2); // same pc, different path
    filter.bump(a);
    filter.bump(a);
    EXPECT_EQ(filter.bump(b), 1u) << "path variants count separately";
}

TEST(FilterTest, ResetClearsCount)
{
    CounterFilter filter(FilterConfig{64, 4, 4});
    Tid t = tidOf(0x300);
    for (int i = 0; i < 4; ++i)
        filter.bump(t);
    filter.reset(t);
    EXPECT_EQ(filter.read(t), 0u);
    EXPECT_EQ(filter.bump(t), 1u);
}

TEST(FilterTest, MissingTidReadsZero)
{
    CounterFilter filter(FilterConfig{64, 4, 4});
    EXPECT_EQ(filter.read(tidOf(0xdead)), 0u);
}

TEST(FilterTest, LruEvictionUnderPressure)
{
    // A tiny 1-set filter: flooding it with many TIDs evicts old ones.
    CounterFilter filter(FilterConfig{4, 4, 100});
    Tid victim = tidOf(0x1000);
    filter.bump(victim);
    for (parrot::Addr pc = 0x2000; pc < 0x2000 + 0x40 * 64; pc += 0x40)
        filter.bump(tidOf(pc));
    EXPECT_EQ(filter.read(victim), 0u) << "victim must have been evicted";
}

TEST(FilterTest, HotEntriesSurviveWhenRetouched)
{
    CounterFilter filter(FilterConfig{4, 4, 100});
    Tid hot = tidOf(0x1000);
    for (int wave = 0; wave < 16; ++wave) {
        filter.bump(hot); // keep it most-recently used
        filter.bump(tidOf(0x2000 + wave * 0x40));
        filter.bump(tidOf(0x8000 + wave * 0x40));
    }
    EXPECT_GE(filter.read(hot), 10u);
}

// ---------------------------------------------------------------------
// Promotion invariants. The filter gates trace-cache insertion, so the
// load-bearing property is one-sided: whatever eviction pressure does,
// a TID must NEVER look promoted before it truly recurred `threshold`
// times. (The converse — a genuinely hot TID may be delayed by
// eviction — is an allowed, power-motivated under-approximation.)
// ---------------------------------------------------------------------

TEST(FilterPropertyTest, NeverPromotedBeforeThresholdOccurrences)
{
    // A deliberately tiny filter (heavy conflict pressure) hammered by
    // a random TID stream drawn from a pool larger than its capacity.
    const unsigned threshold = 5;
    CounterFilter filter(FilterConfig{8, 2, threshold});
    parrot::Rng rng(0xf117e5);
    std::map<std::uint64_t, unsigned> occurrences; // ground truth
    for (unsigned step = 0; step < 20000; ++step) {
        Tid t = tidOf(0x1000 + rng.below(48) * 0x40, rng.below(4), 2);
        unsigned truth = ++occurrences[t.hash()];
        unsigned count = filter.bump(t);
        // The cached count can lag the true recurrence count (an
        // eviction restarts it at 1) but can never lead it.
        ASSERT_LE(count, truth);
        if (filter.promoted(count)) {
            ASSERT_GE(truth, threshold)
                << "TID promoted after only " << truth << " occurrences";
        }
    }
}

TEST(FilterPropertyTest, PromotionMonotoneWhileResident)
{
    // Once a resident TID reaches the threshold, every further bump
    // keeps it promoted: counts only move up while the entry lives, so
    // promotion cannot flap without an explicit reset() or eviction.
    const unsigned threshold = 4;
    CounterFilter filter(FilterConfig{64, 4, threshold});
    parrot::Rng rng(0xcafe);
    Tid t = tidOf(0x4000, 0b101, 3);
    bool was_promoted = false;
    unsigned prev_count = 0;
    for (unsigned step = 0; step < 64; ++step) {
        unsigned count = filter.bump(t);
        ASSERT_EQ(count, prev_count + 1) << "resident counts are exact";
        prev_count = count;
        bool now = filter.promoted(count);
        ASSERT_TRUE(!was_promoted || now)
            << "promotion regressed at count " << count;
        was_promoted = now;
        // Unrelated traffic in other sets must not disturb this entry.
        filter.bump(tidOf(0x9000 + rng.below(16) * 0x40));
    }
    EXPECT_TRUE(was_promoted);
    filter.reset(t);
    EXPECT_FALSE(filter.promoted(filter.read(t)))
        << "reset must demote (the promotion was acted upon)";
}

TEST(FilterPropertyTest, EvictionOnlyLowersCounts)
{
    // Random interleaving of bumps, resets and flood-evictions: read()
    // must never exceed the true occurrence count, for any TID, at any
    // point. This is the safety half of LRU replacement: losing an
    // entry may only delay promotion, never fabricate hotness.
    const unsigned threshold = 6;
    CounterFilter filter(FilterConfig{16, 4, threshold});
    parrot::Rng rng(0xbeefcafe);
    std::map<std::uint64_t, unsigned> occurrences;
    std::vector<Tid> pool;
    for (unsigned i = 0; i < 24; ++i)
        pool.push_back(tidOf(0x100 + i * 0x80, i & 1, i & 1));
    for (unsigned step = 0; step < 30000; ++step) {
        const Tid &t = pool[rng.below(pool.size())];
        if (rng.chance(0.02)) {
            filter.reset(t);
            occurrences[t.hash()] = 0;
        } else {
            ++occurrences[t.hash()];
            filter.bump(t);
        }
        const Tid &probe = pool[rng.below(pool.size())];
        ASSERT_LE(filter.read(probe), occurrences[probe.hash()]);
    }
}

} // namespace
