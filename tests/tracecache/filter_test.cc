/** @file Unit tests for the hot/blazing counter filters. */

#include <gtest/gtest.h>

#include "tracecache/filter.hh"

namespace
{

using namespace parrot::tracecache;

Tid
tidOf(parrot::Addr pc, std::uint64_t dirs = 0, unsigned n = 0)
{
    Tid t;
    t.startPc = pc;
    t.dirBits = dirs;
    t.numDirs = static_cast<std::uint8_t>(n);
    return t;
}

TEST(FilterTest, CountsAccumulate)
{
    CounterFilter filter(FilterConfig{64, 4, 8});
    Tid t = tidOf(0x100);
    for (unsigned i = 1; i <= 10; ++i)
        EXPECT_EQ(filter.bump(t), i);
    EXPECT_EQ(filter.read(t), 10u);
}

TEST(FilterTest, ThresholdPromotion)
{
    CounterFilter filter(FilterConfig{64, 4, 3});
    Tid t = tidOf(0x200);
    EXPECT_FALSE(filter.promoted(filter.bump(t)));
    EXPECT_FALSE(filter.promoted(filter.bump(t)));
    EXPECT_TRUE(filter.promoted(filter.bump(t)));
}

TEST(FilterTest, DistinctTidsDistinctCounters)
{
    CounterFilter filter(FilterConfig{64, 4, 8});
    Tid a = tidOf(0x100, 0b01, 2);
    Tid b = tidOf(0x100, 0b10, 2); // same pc, different path
    filter.bump(a);
    filter.bump(a);
    EXPECT_EQ(filter.bump(b), 1u) << "path variants count separately";
}

TEST(FilterTest, ResetClearsCount)
{
    CounterFilter filter(FilterConfig{64, 4, 4});
    Tid t = tidOf(0x300);
    for (int i = 0; i < 4; ++i)
        filter.bump(t);
    filter.reset(t);
    EXPECT_EQ(filter.read(t), 0u);
    EXPECT_EQ(filter.bump(t), 1u);
}

TEST(FilterTest, MissingTidReadsZero)
{
    CounterFilter filter(FilterConfig{64, 4, 4});
    EXPECT_EQ(filter.read(tidOf(0xdead)), 0u);
}

TEST(FilterTest, LruEvictionUnderPressure)
{
    // A tiny 1-set filter: flooding it with many TIDs evicts old ones.
    CounterFilter filter(FilterConfig{4, 4, 100});
    Tid victim = tidOf(0x1000);
    filter.bump(victim);
    for (parrot::Addr pc = 0x2000; pc < 0x2000 + 0x40 * 64; pc += 0x40)
        filter.bump(tidOf(pc));
    EXPECT_EQ(filter.read(victim), 0u) << "victim must have been evicted";
}

TEST(FilterTest, HotEntriesSurviveWhenRetouched)
{
    CounterFilter filter(FilterConfig{4, 4, 100});
    Tid hot = tidOf(0x1000);
    for (int wave = 0; wave < 16; ++wave) {
        filter.bump(hot); // keep it most-recently used
        filter.bump(tidOf(0x2000 + wave * 0x40));
        filter.bump(tidOf(0x8000 + wave * 0x40));
    }
    EXPECT_GE(filter.read(hot), 10u);
}

} // namespace
