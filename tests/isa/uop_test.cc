/** @file Unit tests for uop construction and introspection. */

#include <gtest/gtest.h>

#include "isa/uop.hh"

namespace
{

using namespace parrot::isa;
using parrot::invalidReg;
using parrot::RegId;

TEST(UopTest, AluBuilder)
{
    Uop u = makeAlu(UopKind::Add, 3, 1, 2);
    EXPECT_EQ(u.kind, UopKind::Add);
    EXPECT_EQ(u.dst, 3);
    EXPECT_EQ(u.src1, 1);
    EXPECT_EQ(u.src2, 2);
    EXPECT_TRUE(u.hasDst());
    EXPECT_EQ(u.effectiveDst(), 3);
}

TEST(UopTest, CmpWritesFlagsAsEffectiveDst)
{
    Uop u = makeCmp(1, 2);
    EXPECT_EQ(u.dst, invalidReg);
    EXPECT_TRUE(u.hasDst());
    EXPECT_EQ(u.effectiveDst(), regFlags);
}

TEST(UopTest, BranchReadsFlags)
{
    Uop u = makeBranch();
    RegId srcs[4];
    ASSERT_EQ(u.sources(srcs), 1u);
    EXPECT_EQ(srcs[0], regFlags);
    EXPECT_FALSE(u.hasDst());
}

TEST(UopTest, LoadStoreShape)
{
    Uop ld = makeLoad(4, 5, 16);
    EXPECT_EQ(ld.kind, UopKind::Load);
    EXPECT_EQ(ld.numSources(), 1u);
    Uop st = makeStore(4, 5, 16);
    EXPECT_EQ(st.kind, UopKind::Store);
    EXPECT_EQ(st.numSources(), 2u);
    EXPECT_FALSE(st.hasDst());
}

TEST(UopTest, FpMulAddReadsThreeSources)
{
    Uop u = makeFpMulAdd(16, 17, 18, 19);
    EXPECT_EQ(u.numSources(), 3u);
    EXPECT_EQ(u.dst, 16);
}

TEST(UopTest, SimdPairCarriesBothLanes)
{
    Uop a = makeAlu(UopKind::Add, 3, 1, 2);
    Uop b = makeAlu(UopKind::Add, 6, 4, 5);
    Uop s = makeSimdPair(UopKind::Add, a, b);
    EXPECT_EQ(s.kind, UopKind::SimdInt);
    EXPECT_EQ(s.laneKind, UopKind::Add);
    EXPECT_EQ(s.dst, 3);
    EXPECT_EQ(s.dst2, 6);
    EXPECT_EQ(s.numSources(), 4u);
}

TEST(UopTest, SimdPairFpClassification)
{
    Uop a = makeFp(UopKind::FpMul, 16, 17, 18);
    Uop b = makeFp(UopKind::FpMul, 19, 20, 21);
    Uop s = makeSimdPair(UopKind::FpMul, a, b);
    EXPECT_EQ(s.kind, UopKind::SimdFp);
}

TEST(UopTest, AssertCarriesTargetAndDirection)
{
    Uop t = makeAssert(true, 0x1234);
    EXPECT_EQ(t.kind, UopKind::AssertTaken);
    EXPECT_EQ(t.assertTarget, 0x1234u);
    Uop nt = makeAssert(false, 0);
    EXPECT_EQ(nt.kind, UopKind::AssertNotTaken);
}

TEST(UopTest, ToStringContainsMnemonic)
{
    Uop u = makeAluImm(UopKind::AddImm, 2, 3, 42);
    auto s = u.toString();
    EXPECT_NE(s.find("addi"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
}

} // namespace
