/** @file Unit tests for opcode classification. */

#include <gtest/gtest.h>

#include "isa/opcodes.hh"

namespace
{

using namespace parrot::isa;

TEST(OpcodesTest, ExecClassMapping)
{
    EXPECT_EQ(execClassOf(UopKind::Add), ExecClass::IntAlu);
    EXPECT_EQ(execClassOf(UopKind::Mul), ExecClass::IntMul);
    EXPECT_EQ(execClassOf(UopKind::Div), ExecClass::IntDiv);
    EXPECT_EQ(execClassOf(UopKind::Load), ExecClass::MemLoad);
    EXPECT_EQ(execClassOf(UopKind::Store), ExecClass::MemStore);
    EXPECT_EQ(execClassOf(UopKind::Branch), ExecClass::Ctrl);
    EXPECT_EQ(execClassOf(UopKind::FpMulAdd), ExecClass::FpMul);
    EXPECT_EQ(execClassOf(UopKind::SimdInt), ExecClass::Simd);
    EXPECT_EQ(execClassOf(UopKind::AssertTaken), ExecClass::Ctrl);
}

TEST(OpcodesTest, EveryKindHasAClassAndName)
{
    for (int k = 0; k < static_cast<int>(UopKind::NumKinds); ++k) {
        auto kind = static_cast<UopKind>(k);
        EXPECT_NE(std::string(uopKindName(kind)), "<bad>")
            << "kind " << k;
        ExecClass cls = execClassOf(kind);
        EXPECT_LT(static_cast<int>(cls),
                  static_cast<int>(ExecClass::NumClasses));
        EXPECT_GE(execLatency(cls), 1u);
    }
}

TEST(OpcodesTest, CtiClassification)
{
    EXPECT_TRUE(isCti(UopKind::Branch));
    EXPECT_TRUE(isCti(UopKind::Return));
    EXPECT_TRUE(isCti(UopKind::AssertNotTaken));
    EXPECT_FALSE(isCti(UopKind::Add));
    EXPECT_FALSE(isCti(UopKind::Load));
}

TEST(OpcodesTest, AssertClassification)
{
    EXPECT_TRUE(isAssert(UopKind::AssertTaken));
    EXPECT_TRUE(isAssert(UopKind::AssertCmpNotTaken));
    EXPECT_FALSE(isAssert(UopKind::Branch));
}

TEST(OpcodesTest, FlagsDataflow)
{
    EXPECT_TRUE(writesFlags(UopKind::Cmp));
    EXPECT_TRUE(writesFlags(UopKind::CmpImm));
    EXPECT_FALSE(writesFlags(UopKind::Add));
    EXPECT_TRUE(readsFlags(UopKind::Branch));
    EXPECT_TRUE(readsFlags(UopKind::AssertTaken));
    EXPECT_FALSE(readsFlags(UopKind::AssertCmpTaken))
        << "fused compare-asserts read registers, not flags";
}

TEST(OpcodesTest, LatencyOrdering)
{
    EXPECT_LT(execLatency(ExecClass::IntAlu), execLatency(ExecClass::IntMul));
    EXPECT_LT(execLatency(ExecClass::IntMul), execLatency(ExecClass::IntDiv));
    EXPECT_LT(execLatency(ExecClass::FpMul), execLatency(ExecClass::FpDiv));
}

} // namespace
