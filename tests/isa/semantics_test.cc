/** @file Unit tests for functional uop semantics. */

#include <gtest/gtest.h>

#include "isa/arch_state.hh"
#include "isa/uop.hh"

namespace
{

using namespace parrot::isa;
using parrot::RegId;

class SemanticsTest : public ::testing::Test
{
  protected:
    ArchState st;
};

TEST_F(SemanticsTest, AddSubAndOrXor)
{
    st.setReg(1, 10);
    st.setReg(2, 3);
    executeUop(makeAlu(UopKind::Add, 3, 1, 2), st);
    EXPECT_EQ(st.reg(3), 13);
    executeUop(makeAlu(UopKind::Sub, 4, 1, 2), st);
    EXPECT_EQ(st.reg(4), 7);
    executeUop(makeAlu(UopKind::And, 5, 1, 2), st);
    EXPECT_EQ(st.reg(5), 2);
    executeUop(makeAlu(UopKind::Or, 6, 1, 2), st);
    EXPECT_EQ(st.reg(6), 11);
    executeUop(makeAlu(UopKind::Xor, 7, 1, 2), st);
    EXPECT_EQ(st.reg(7), 9);
}

TEST_F(SemanticsTest, Shifts)
{
    st.setReg(1, 0b1010);
    executeUop(makeAluImm(UopKind::ShlImm, 2, 1, 2), st);
    EXPECT_EQ(st.reg(2), 0b101000);
    executeUop(makeAluImm(UopKind::ShrImm, 3, 1, 1), st);
    EXPECT_EQ(st.reg(3), 0b101);
}

TEST_F(SemanticsTest, ShrIsLogical)
{
    st.setReg(1, -1);
    executeUop(makeAluImm(UopKind::ShrImm, 2, 1, 1), st);
    EXPECT_EQ(static_cast<std::uint64_t>(st.reg(2)), ~0ull >> 1);
}

TEST_F(SemanticsTest, MovAndMovImm)
{
    executeUop(makeMovImm(1, -99), st);
    EXPECT_EQ(st.reg(1), -99);
    executeUop(makeMov(2, 1), st);
    EXPECT_EQ(st.reg(2), -99);
}

TEST_F(SemanticsTest, LeaCombinesThreeTerms)
{
    st.setReg(1, 100);
    st.setReg(2, 20);
    executeUop(makeLea(3, 1, 2, 3), st);
    EXPECT_EQ(st.reg(3), 123);
}

TEST_F(SemanticsTest, MulDivAndDivByZero)
{
    st.setReg(1, 6);
    st.setReg(2, 7);
    executeUop(makeAlu(UopKind::Mul, 3, 1, 2), st);
    EXPECT_EQ(st.reg(3), 42);
    executeUop(makeAlu(UopKind::Div, 4, 3, 1), st);
    EXPECT_EQ(st.reg(4), 7);
    st.setReg(5, 0);
    executeUop(makeAlu(UopKind::Div, 6, 3, 5), st);
    EXPECT_EQ(st.reg(6), 0) << "div-by-zero must yield 0, not trap";
}

TEST_F(SemanticsTest, CmpSetsFlagsSign)
{
    st.setReg(1, 5);
    st.setReg(2, 9);
    executeUop(makeCmp(1, 2), st);
    EXPECT_EQ(st.reg(regFlags), -1);
    executeUop(makeCmp(2, 1), st);
    EXPECT_EQ(st.reg(regFlags), 1);
    executeUop(makeCmp(1, 1), st);
    EXPECT_EQ(st.reg(regFlags), 0);
    executeUop(makeCmpImm(1, 5), st);
    EXPECT_EQ(st.reg(regFlags), 0);
}

TEST_F(SemanticsTest, LoadStoreRoundTrip)
{
    st.setReg(1, 0x1000);
    st.setReg(2, 777);
    auto info = executeUop(makeStore(2, 1, 8), st);
    EXPECT_TRUE(info.accessedMem);
    EXPECT_TRUE(info.isStore);
    EXPECT_EQ(info.addr, 0x1008u);
    info = executeUop(makeLoad(3, 1, 8), st);
    EXPECT_TRUE(info.accessedMem);
    EXPECT_FALSE(info.isStore);
    EXPECT_EQ(st.reg(3), 777);
}

TEST_F(SemanticsTest, UntouchedMemoryIsDeterministicHash)
{
    SparseMemory m;
    auto v1 = m.read(0x4242);
    auto v2 = m.read(0x4242);
    EXPECT_EQ(v1, v2);
    EXPECT_NE(m.read(0x4242), m.read(0x4243));
    EXPECT_EQ(m.writtenWords(), 0u);
}

TEST_F(SemanticsTest, CtiUopsDoNotTouchState)
{
    st.setReg(1, 11);
    ArchState before = st;
    executeUop(makeBranch(), st);
    executeUop(makeJump(), st);
    executeUop(makeCall(), st);
    executeUop(makeReturn(), st);
    executeUop(makeAssert(true, 0x10), st);
    for (unsigned r = 0; r < numArchRegs; ++r)
        EXPECT_EQ(st.reg(r), before.reg(r));
}

TEST_F(SemanticsTest, AssertCmpDoesNotWriteFlags)
{
    st.setReg(regFlags, 42);
    st.setReg(1, 1);
    st.setReg(2, 2);
    executeUop(makeAssertCmp(true, 1, 2, 0), st);
    EXPECT_EQ(st.reg(regFlags), 42);
}

TEST_F(SemanticsTest, FpMulAddFusedResult)
{
    st.setReg(16, 3);
    st.setReg(17, 4);
    st.setReg(18, 5);
    executeUop(makeFpMulAdd(19, 16, 17, 18), st);
    EXPECT_EQ(st.reg(19), 17);
}

TEST_F(SemanticsTest, SimdPairExecutesBothLanes)
{
    st.setReg(1, 10);
    st.setReg(2, 1);
    st.setReg(3, 20);
    st.setReg(4, 2);
    Uop a = makeAlu(UopKind::Add, 5, 1, 2);
    Uop b = makeAlu(UopKind::Add, 6, 3, 4);
    executeUop(makeSimdPair(UopKind::Add, a, b), st);
    EXPECT_EQ(st.reg(5), 11);
    EXPECT_EQ(st.reg(6), 22);
}

TEST_F(SemanticsTest, SimdEquivalentToScalarSequence)
{
    ArchState s1, s2;
    for (RegId r = 0; r < 8; ++r) {
        s1.setReg(r, r * 3 + 1);
        s2.setReg(r, r * 3 + 1);
    }
    Uop a = makeAlu(UopKind::Xor, 5, 1, 2);
    Uop b = makeAlu(UopKind::Xor, 6, 3, 4);
    executeUop(a, s1);
    executeUop(b, s1);
    executeUop(makeSimdPair(UopKind::Xor, a, b), s2);
    for (unsigned r = 0; r < numArchRegs; ++r)
        EXPECT_EQ(s1.reg(r), s2.reg(r));
}

} // namespace
