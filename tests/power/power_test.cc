/** @file Unit tests for the energy model, accounting and metrics. */

#include <gtest/gtest.h>

#include <type_traits>

#include "power/account.hh"
#include "power/energy_model.hh"
#include "power/events.hh"

namespace
{

using namespace parrot;
using namespace parrot::power;

TEST(EventsTest, EveryEventHasNameAndUnit)
{
    for (unsigned i = 0; i < numPowerEvents; ++i) {
        auto e = static_cast<PowerEvent>(i);
        EXPECT_NE(std::string(powerEventName(e)), "<bad>") << i;
        auto u = unitOf(e);
        EXPECT_LT(static_cast<unsigned>(u), numPowerUnits);
        EXPECT_NE(std::string(powerUnitName(u)), "<bad>");
    }
}

TEST(EnergyModelTest, AllEnergiesPositive)
{
    EnergyModel model(CoreScaling{});
    for (unsigned i = 0; i < numPowerEvents; ++i)
        EXPECT_GT(model.energyOf(static_cast<PowerEvent>(i)), 0.0) << i;
}

TEST(EnergyModelTest, WidthScalingMonotonic)
{
    EnergyModel narrow(CoreScaling{4, 128, 32});
    EnergyModel wide(CoreScaling{8, 128, 32});
    // Ported structures get more expensive with width...
    EXPECT_GT(wide.energyOf(PowerEvent::Rename),
              narrow.energyOf(PowerEvent::Rename));
    EXPECT_GT(wide.energyOf(PowerEvent::IqSelect),
              narrow.energyOf(PowerEvent::IqSelect));
    EXPECT_GT(wide.energyOf(PowerEvent::DecodeWeight),
              narrow.energyOf(PowerEvent::DecodeWeight));
    // ...while workload-proportional events stay put.
    EXPECT_DOUBLE_EQ(wide.energyOf(PowerEvent::AluOp),
                     narrow.energyOf(PowerEvent::AluOp));
    EXPECT_DOUBLE_EQ(wide.energyOf(PowerEvent::DcacheRead),
                     narrow.energyOf(PowerEvent::DcacheRead));
}

TEST(EnergyModelTest, StructureSizeScaling)
{
    EnergyModel small(CoreScaling{4, 128, 32});
    EnergyModel big_rob(CoreScaling{4, 512, 32});
    EnergyModel big_iq(CoreScaling{4, 128, 128});
    EXPECT_GT(big_rob.energyOf(PowerEvent::RobWrite),
              small.energyOf(PowerEvent::RobWrite));
    EXPECT_GT(big_iq.energyOf(PowerEvent::IqWakeup),
              small.energyOf(PowerEvent::IqWakeup));
}

TEST(EnergyModelTest, MemoryHierarchyOrdering)
{
    EnergyModel model(CoreScaling{});
    EXPECT_LT(model.energyOf(PowerEvent::DcacheRead),
              model.energyOf(PowerEvent::L2Access));
    EXPECT_LT(model.energyOf(PowerEvent::L2Access),
              model.energyOf(PowerEvent::MemAccess));
}

TEST(AccountTest, RecordAndCount)
{
    EnergyAccount acct;
    acct.record(PowerEvent::AluOp);
    acct.record(PowerEvent::AluOp, 9);
    EXPECT_EQ(acct.count(PowerEvent::AluOp), 10u);
    EXPECT_EQ(acct.count(PowerEvent::FpOp), 0u);
}

TEST(AccountTest, DynamicEnergyIsDotProduct)
{
    EnergyAccount acct;
    EnergyModel model(CoreScaling{});
    acct.record(PowerEvent::AluOp, 3);
    acct.record(PowerEvent::Commit, 2);
    double expect = 3 * model.energyOf(PowerEvent::AluOp) +
                    2 * model.energyOf(PowerEvent::Commit);
    EXPECT_DOUBLE_EQ(acct.dynamicEnergy(model), expect);
}

TEST(AccountTest, UnitBreakdownSumsToTotal)
{
    EnergyAccount acct;
    EnergyModel model(CoreScaling{});
    for (unsigned i = 0; i < numPowerEvents; ++i)
        acct.record(static_cast<PowerEvent>(i), i + 1);
    auto units = acct.unitBreakdown(model);
    double sum = 0;
    for (double v : units)
        sum += v;
    EXPECT_NEAR(sum, acct.dynamicEnergy(model), 1e-9);
    EXPECT_DOUBLE_EQ(
        units[static_cast<unsigned>(PowerUnit::Leakage)], 0.0)
        << "dynamic breakdown must not include leakage";
}

TEST(AccountTest, MergeAdds)
{
    EnergyAccount a, b;
    a.record(PowerEvent::AluOp, 2);
    b.record(PowerEvent::AluOp, 3);
    b.record(PowerEvent::FpOp, 1);
    a.merge(b);
    EXPECT_EQ(a.count(PowerEvent::AluOp), 5u);
    EXPECT_EQ(a.count(PowerEvent::FpOp), 1u);
}

TEST(AccountTest, ResetZeroes)
{
    EnergyAccount acct;
    acct.record(PowerEvent::Commit, 5);
    acct.reset();
    EXPECT_EQ(acct.count(PowerEvent::Commit), 0u);
}

TEST(LeakageTest, PaperFormula)
{
    // LE = Pmax * (0.05*M + 0.4*K) * CYC
    LeakageModel leak;
    leak.pmaxPerCycle = 100.0;
    leak.l2MegaBytes = 2.0;
    leak.coreAreaFactor = 1.5;
    double expect = 100.0 * (0.05 * 2.0 + 0.4 * 1.5) * 1000.0;
    EXPECT_DOUBLE_EQ(leak.leakageEnergy(1000.0), expect);
}

TEST(LeakageTest, ZeroPmaxMeansNoLeakage)
{
    // 0.0 is the *explicit* "leakage disabled" value; the default is
    // NaN (uncalibrated) and evaluating it is fatal (see death test).
    LeakageModel leak;
    leak.pmaxPerCycle = 0.0;
    EXPECT_DOUBLE_EQ(leak.leakageEnergy(1e6), 0.0);
}

TEST(LeakageDeathTest, UncalibratedPmaxIsFatal)
{
    LeakageModel leak; // pmaxPerCycle left at its NaN default
    EXPECT_EXIT(leak.leakageEnergy(1e6),
                ::testing::ExitedWithCode(1), "never calibrated");
    EXPECT_EXIT(leak.leakageSaved(10.0),
                ::testing::ExitedWithCode(1), "never calibrated");
}

TEST(LeakageTest, ZeroGatedAreaCyclesSavesNothingEvenUncalibrated)
{
    // leakageSaved(0) must short-circuit before touching Pmax so the
    // gating-off path never evaluates an uncalibrated model.
    LeakageModel leak;
    EXPECT_DOUBLE_EQ(leak.leakageSaved(0.0), 0.0);
}

TEST(LeakageTest, DvfsScalesLeakageByWallTime)
{
    // Leakage accrues per wall-clock second, so at fixed cycle count a
    // faster clock leaks proportionally less: LE(f) = LE(1 GHz) / f.
    LeakageModel nominal;
    nominal.pmaxPerCycle = 50.0;
    nominal.l2MegaBytes = 1.0;
    nominal.coreAreaFactor = 1.0;
    LeakageModel fast = nominal;
    fast.freqGHz = 2.0;
    LeakageModel slow = nominal;
    slow.freqGHz = 0.5;
    const double cycles = 1e6;
    EXPECT_DOUBLE_EQ(fast.leakageEnergy(cycles),
                     nominal.leakageEnergy(cycles) / 2.0);
    EXPECT_DOUBLE_EQ(slow.leakageEnergy(cycles),
                     nominal.leakageEnergy(cycles) * 2.0);
    EXPECT_DOUBLE_EQ(fast.leakageSaved(1000.0),
                     nominal.leakageSaved(1000.0) / 2.0);
}

TEST(LeakageTest, SavedNeverExceedsCoreLeakage)
{
    LeakageModel leak;
    leak.pmaxPerCycle = 80.0;
    leak.l2MegaBytes = 2.0;
    leak.coreAreaFactor = 1.35;
    const double cycles = 1e5;
    // Even with every gated unit asleep the whole run, the saved
    // leakage (area shares sum < 1 of the core term) stays below the
    // gross core+L2 leakage.
    EXPECT_LT(leak.leakageSaved(cycles * 0.999),
              leak.leakageEnergy(cycles));
}

TEST(AccountTest, AccountsArePinned)
{
    // EnergyAccount::regStats() hands the stats tree closures that
    // capture `this`; a copy would silently decouple recording from
    // reporting. The type is deliberately neither copyable nor movable.
    static_assert(!std::is_copy_constructible_v<EnergyAccount>);
    static_assert(!std::is_copy_assignable_v<EnergyAccount>);
    static_assert(!std::is_move_constructible_v<EnergyAccount>);
    static_assert(!std::is_move_assignable_v<EnergyAccount>);
}

TEST(CmpwTest, ScalesAsCube)
{
    // Doubling MIPS at equal power multiplies CMPW by 8.
    double base = cubicMipsPerWatt(1e6, 1e6, 1e9);
    double fast = cubicMipsPerWatt(2e6, 1e6, 2e9);
    // fast: 2x MIPS, 2x power -> 8/2 = 4x CMPW.
    EXPECT_NEAR(fast / base, 4.0, 1e-9);
}

TEST(CmpwTest, LowerEnergyIsBetter)
{
    double hungry = cubicMipsPerWatt(1e6, 1e6, 2e9);
    double frugal = cubicMipsPerWatt(1e6, 1e6, 1e9);
    EXPECT_GT(frugal, hungry);
}

TEST(CmpwTest, FrequencyNormalizationConsistent)
{
    // Same IPC and same energy-per-instruction at twice the length run
    // yields identical CMPW.
    double a = cubicMipsPerWatt(1e6, 2e6, 1e9);
    double b = cubicMipsPerWatt(2e6, 4e6, 2e9);
    EXPECT_NEAR(a / b, 1.0, 1e-9);
}

TEST(CmpwTest, DefaultFrequencyIsNominal)
{
    EXPECT_DOUBLE_EQ(cubicMipsPerWatt(1e6, 1e6, 1e9),
                     cubicMipsPerWatt(1e6, 1e6, 1e9, 1.0));
}

TEST(CmpwTest, HigherClockShortensWallTime)
{
    // At 2 GHz the same cycle count takes half the wall time: MIPS
    // doubles and average power doubles (same energy, half the time),
    // so CMPW scales by 2^3 / 2 = 4.
    double nominal = cubicMipsPerWatt(1e6, 1e6, 1e9, 1.0);
    double fast = cubicMipsPerWatt(1e6, 1e6, 1e9, 2.0);
    EXPECT_NEAR(fast / nominal, 4.0, 1e-9);
}

} // namespace
