/** @file Unit tests for the power-state (gating) layer. */

#include <gtest/gtest.h>

#include "power/account.hh"
#include "power/power_state.hh"
#include "stats/group.hh"

namespace
{

using namespace parrot;
using namespace parrot::power;

TEST(GateModeTest, NamesRoundTrip)
{
    for (GateMode m : {GateMode::Off, GateMode::ClockGate,
                       GateMode::PowerGate}) {
        GateMode parsed;
        ASSERT_TRUE(parseGateMode(gateModeName(m), parsed))
            << gateModeName(m);
        EXPECT_EQ(parsed, m);
    }
    GateMode dummy;
    EXPECT_FALSE(parseGateMode("sideways", dummy));
    EXPECT_FALSE(parseGateMode("", dummy));
}

TEST(GatedUnitTest, NamesRoundTrip)
{
    for (unsigned i = 0; i < numGatedUnits; ++i) {
        auto u = static_cast<GatedUnit>(i);
        GatedUnit parsed;
        ASSERT_TRUE(parseGatedUnit(gatedUnitName(u), parsed))
            << gatedUnitName(u);
        EXPECT_EQ(parsed, u);
    }
    GatedUnit dummy;
    EXPECT_FALSE(parseGatedUnit("warp_core", dummy));
}

TEST(GatePolicyTest, PresetsMatchModes)
{
    EXPECT_FALSE(defaultPolicyFor(GateMode::Off).enabled());
    GatePolicy clock = defaultPolicyFor(GateMode::ClockGate);
    GatePolicy rail = defaultPolicyFor(GateMode::PowerGate);
    EXPECT_EQ(clock.mode, GateMode::ClockGate);
    EXPECT_EQ(rail.mode, GateMode::PowerGate);
    // Power gating is the deeper state: slower to enter, slower to
    // wake.
    EXPECT_GT(rail.sleepThreshold, clock.sleepThreshold);
    EXPECT_GT(rail.wakeLatency, clock.wakeLatency);
}

TEST(GatePolicyDeathTest, DegenerateValuesAreFatal)
{
    GatePolicy p = defaultPolicyFor(GateMode::ClockGate);
    p.sleepThreshold = 0;
    EXPECT_EXIT(p.validate("decoder"), ::testing::ExitedWithCode(1),
                "decoder");
}

TEST(PowerStateConfigTest, ApplyAllAndAnyEnabled)
{
    PowerStateConfig ps;
    EXPECT_FALSE(ps.anyEnabled());
    ps.applyAll(GateMode::ClockGate);
    EXPECT_TRUE(ps.anyEnabled());
    for (const auto &p : ps.unit)
        EXPECT_EQ(p.mode, GateMode::ClockGate);
    ps.applyAll(GateMode::Off);
    EXPECT_FALSE(ps.anyEnabled());
    // One enabled unit is enough.
    ps.of(GatedUnit::TcPort) = defaultPolicyFor(GateMode::PowerGate);
    EXPECT_TRUE(ps.anyEnabled());
}

/** A gate configured with a 3-cycle threshold, 2-cycle wake. */
PowerGate
makeGate(GateMode mode, unsigned threshold = 3, unsigned wake = 2,
         double area_share = 0.1)
{
    GatePolicy p = defaultPolicyFor(mode);
    p.sleepThreshold = threshold;
    p.wakeLatency = wake;
    PowerGate g;
    g.configure(GatedUnit::Decoder, p, /*clock_weight=*/2, area_share);
    return g;
}

TEST(PowerGateTest, OffPolicyIsInert)
{
    PowerGate g = makeGate(GateMode::Off);
    EnergyAccount acct;
    for (int i = 0; i < 100; ++i)
        g.idleCycle(acct);
    EXPECT_FALSE(g.asleep());
    EXPECT_EQ(g.demand(acct), 0u);
    EXPECT_EQ(acct.count(PowerEvent::GateIdleClock), 0u);
    EXPECT_EQ(g.gatedCycles(), 0u);
    EXPECT_EQ(g.sleepEntries(), 0u);
}

TEST(PowerGateTest, SleepsAfterThresholdIdleCycles)
{
    PowerGate g = makeGate(GateMode::ClockGate, /*threshold=*/3);
    EnergyAccount acct;
    g.idleCycle(acct);
    g.idleCycle(acct);
    EXPECT_FALSE(g.asleep());
    g.idleCycle(acct); // third consecutive idle cycle: sleep
    EXPECT_TRUE(g.asleep());
    EXPECT_EQ(g.sleepEntries(), 1u);
    // Idle-ungated cycles charged the clock tree (weight 2 each);
    // nothing more accrues while asleep.
    EXPECT_EQ(acct.count(PowerEvent::GateIdleClock), 6u);
    g.idleCycle(acct);
    EXPECT_EQ(acct.count(PowerEvent::GateIdleClock), 6u);
    EXPECT_EQ(g.gatedCycles(), 1u);
}

TEST(PowerGateTest, DemandResetsIdleRun)
{
    PowerGate g = makeGate(GateMode::ClockGate, /*threshold=*/3);
    EnergyAccount acct;
    for (int round = 0; round < 10; ++round) {
        g.idleCycle(acct);
        g.idleCycle(acct);
        EXPECT_EQ(g.demand(acct), 0u); // used before the third cycle
        EXPECT_FALSE(g.asleep());
    }
    EXPECT_EQ(g.sleepEntries(), 0u);
}

TEST(PowerGateTest, WakeChargesEventAndReturnsLatency)
{
    PowerGate g = makeGate(GateMode::ClockGate, 3, /*wake=*/2);
    EnergyAccount acct;
    for (int i = 0; i < 3; ++i)
        g.idleCycle(acct);
    ASSERT_TRUE(g.asleep());
    EXPECT_EQ(g.demand(acct), 2u);
    EXPECT_FALSE(g.asleep());
    EXPECT_EQ(acct.count(PowerEvent::GateClockWake), 1u);
    EXPECT_EQ(acct.count(PowerEvent::GatePowerWake), 0u);
    EXPECT_EQ(g.wakeStalls(), 2u);
    // Second demand in a row: already awake, no charge.
    EXPECT_EQ(g.demand(acct), 0u);
    EXPECT_EQ(acct.count(PowerEvent::GateClockWake), 1u);
}

TEST(PowerGateTest, PowerGateWakeUsesRailEvent)
{
    PowerGate g = makeGate(GateMode::PowerGate, 3, 6);
    EnergyAccount acct;
    for (int i = 0; i < 3; ++i)
        g.idleCycle(acct);
    ASSERT_TRUE(g.asleep());
    EXPECT_EQ(g.demand(acct), 6u);
    EXPECT_EQ(acct.count(PowerEvent::GatePowerWake), 1u);
    EXPECT_EQ(acct.count(PowerEvent::GateClockWake), 0u);
}

TEST(PowerGateTest, WakeStallIdleCyclesDoNotRelapse)
{
    // While the wake stall drains, the unit still looks idle to the
    // per-cycle scan; those cycles must not re-enter sleep or the unit
    // livelocks (sleep -> demand -> stall -> sleep -> ...).
    PowerGate g = makeGate(GateMode::ClockGate, /*threshold=*/2,
                           /*wake=*/5);
    EnergyAccount acct;
    g.idleCycle(acct);
    g.idleCycle(acct);
    ASSERT_TRUE(g.asleep());
    ASSERT_EQ(g.demand(acct), 5u);
    // 5 stall cycles: idle every one of them, far past the threshold.
    for (int i = 0; i < 5; ++i)
        g.idleCycle(acct);
    EXPECT_FALSE(g.asleep());
    EXPECT_EQ(g.sleepEntries(), 1u);
    // Once actually used, the idle run restarts from zero.
    g.activeCycle();
    g.idleCycle(acct);
    EXPECT_FALSE(g.asleep());
    g.idleCycle(acct);
    EXPECT_TRUE(g.asleep());
    EXPECT_EQ(g.sleepEntries(), 2u);
}

TEST(PowerGateTest, GatedAreaCyclesOnlyUnderPowerGate)
{
    PowerGate clock = makeGate(GateMode::ClockGate, 2, 1, 0.25);
    PowerGate rail = makeGate(GateMode::PowerGate, 2, 1, 0.25);
    EnergyAccount acct;
    for (int i = 0; i < 10; ++i) {
        clock.idleCycle(acct);
        rail.idleCycle(acct);
    }
    // 2 cycles to fall asleep, 8 gated.
    EXPECT_EQ(clock.gatedCycles(), 8u);
    EXPECT_EQ(rail.gatedCycles(), 8u);
    EXPECT_DOUBLE_EQ(clock.gatedAreaCycles(), 0.0);
    EXPECT_DOUBLE_EQ(rail.gatedAreaCycles(), 0.25 * 8);
}

TEST(PowerGateTest, RegStatsExposesCounters)
{
    PowerGate g = makeGate(GateMode::ClockGate, 2, 1);
    stats::Group root;
    g.regStats(root.subgroup("decoder"));
    EnergyAccount acct;
    for (int i = 0; i < 4; ++i)
        g.idleCycle(acct);
    auto snap = root.snapshot();
    EXPECT_DOUBLE_EQ(snap.get("decoder.idle_cycles"), 4.0);
    EXPECT_DOUBLE_EQ(snap.get("decoder.gated_cycles"), 2.0);
    EXPECT_DOUBLE_EQ(snap.get("decoder.sleep_entries"), 1.0);
    EXPECT_DOUBLE_EQ(snap.get("decoder.wake_stalls"), 0.0);
}

TEST(PowerGateTest, WakeStallsMonotoneInWakeLatency)
{
    // Satellite property: with the same idle/demand trace, total wake
    // stall cycles never decrease as the configured wake latency grows.
    Counter prev_stalls = 0;
    for (unsigned wake = 0; wake <= 8; ++wake) {
        PowerGate g = makeGate(GateMode::ClockGate, /*threshold=*/2,
                               wake);
        EnergyAccount acct;
        for (int round = 0; round < 20; ++round) {
            for (int i = 0; i < 4; ++i)
                g.idleCycle(acct);
            g.demand(acct);
            g.activeCycle();
        }
        EXPECT_GE(g.wakeStalls(), prev_stalls) << "wake=" << wake;
        prev_stalls = g.wakeStalls();
    }
}

} // namespace
