/** @file Unit tests for the bench result store (cache round-trip). */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "bench_util.hh"
#include "sim/result.hh"

namespace
{

using namespace parrot;
using namespace parrot::bench;

/** The v2 header line the store writes (version + ordered keys). */
std::string
expectedHeader()
{
    std::string h = "# parrot-bench-cache v2";
    for (const auto &f : sim::resultFields()) {
        h += ' ';
        h += f.key;
    }
    return h;
}

TEST(ResultStoreTest, MemoizesAcrossInstances)
{
    const std::string path = "test_bench_cache.tmp";
    std::remove(path.c_str());
    setenv("PARROT_BENCH_INSTS", "20000", 1);

    auto entry = workload::findApp("word");
    sim::SimResult first;
    {
        ResultStore store(path);
        first = store.get("N", entry);
        EXPECT_GT(first.ipc, 0.0);
    }
    // A fresh instance must read the same result from disk (without
    // re-simulating: every field identical to the last bit).
    {
        ResultStore store(path);
        sim::SimResult second = store.get("N", entry);
        EXPECT_EQ(second.model, "N");
        EXPECT_EQ(second.app, "word");
        for (const auto &f : sim::resultFields())
            EXPECT_EQ(f.get(second), f.get(first)) << f.key;
    }
    std::remove(path.c_str());
    unsetenv("PARROT_BENCH_INSTS");
}

TEST(ResultStoreTest, StaleHeaderDiscardsWholeCache)
{
    const std::string path = "test_bench_cache3.tmp";
    {
        std::ofstream out(path);
        out << "# parrot-bench-cache v1 some old field list\n";
        out << "N/word/20000\tperf.insts=1\n";
    }
    setenv("PARROT_BENCH_INSTS", "20000", 1);
    ResultStore store(path);
    // The mismatched file must be gone, not partially salvaged.
    std::ifstream in(path);
    EXPECT_FALSE(in.good());
    unsetenv("PARROT_BENCH_INSTS");
    std::remove(path.c_str());
}

TEST(ResultStoreTest, SelfDescribingRecordParsesInAnyOrder)
{
    const std::string path = "test_bench_cache4.tmp";
    const auto &fields = sim::resultFields();
    {
        std::ofstream out(path);
        out << expectedHeader() << '\n';
        // Synthetic record with field i carrying value i+1, written in
        // REVERSE key order: the reader must go by name, not position.
        out << "N/word/20000\t";
        for (std::size_t i = fields.size(); i-- > 0;) {
            out << fields[i].key << '=' << (i + 1);
            if (i > 0)
                out << ' ';
        }
        out << '\n';
    }
    setenv("PARROT_BENCH_INSTS", "20000", 1);
    ResultStore store(path);
    sim::SimResult r = store.get("N", workload::findApp("word"));
    EXPECT_EQ(r.model, "N");
    EXPECT_EQ(r.app, "word");
    for (std::size_t i = 0; i < fields.size(); ++i) {
        // cosim.enabled is a bool: any non-zero stores as 1.
        double expect = fields[i].key == "cosim.enabled"
            ? 1.0 : static_cast<double>(i + 1);
        EXPECT_EQ(fields[i].get(r), expect) << fields[i].key;
    }
    unsetenv("PARROT_BENCH_INSTS");
    std::remove(path.c_str());
}

TEST(ResultStoreTest, TruncatedRecordIgnored)
{
    const std::string path = "test_bench_cache5.tmp";
    {
        std::ofstream out(path);
        out << expectedHeader() << '\n';
        // A record cut short (e.g. by a killed run) must not produce a
        // half-filled result; the store re-simulates instead.
        out << "N/word/20000\tperf.insts=1 perf.uops=2\n";
    }
    setenv("PARROT_BENCH_INSTS", "20000", 1);
    ResultStore store(path);
    sim::SimResult r = store.get("N", workload::findApp("word"));
    EXPECT_GT(r.cycles, 2u); // a real simulation, not the stub line
    unsetenv("PARROT_BENCH_INSTS");
    std::remove(path.c_str());
}

TEST(ResultStoreTest, CorruptLinesIgnored)
{
    const std::string path = "test_bench_cache2.tmp";
    {
        std::ofstream out(path);
        out << "garbage line without tab\n";
        out << "key/with/tab\tnot numbers at all\n";
    }
    setenv("PARROT_BENCH_INSTS", "20000", 1);
    ResultStore store(path); // must not crash
    auto entry = workload::findApp("word");
    sim::SimResult r = store.get("N", entry);
    EXPECT_GT(r.ipc, 0.0);
    std::remove(path.c_str());
    unsetenv("PARROT_BENCH_INSTS");
}

TEST(ResultStoreTest, StalePmaxMarkerIsRecalibrated)
{
    const std::string path = "test_bench_cache6.tmp";
    const auto &fields = sim::resultFields();
    {
        // A crashed calibration (or a hand-edited cache) can leave a
        // pmax marker of 0: trusting it would silently zero every
        // leakage figure in every later run.
        std::ofstream out(path);
        out << expectedHeader() << '\n';
        out << "_pmax/swim/20000\t";
        for (std::size_t i = 0; i < fields.size(); ++i) {
            out << fields[i].key << "=0";
            if (i + 1 < fields.size())
                out << ' ';
        }
        out << '\n';
    }
    setenv("PARROT_BENCH_INSTS", "20000", 1);
    {
        ResultStore store(path);
        EXPECT_GT(store.pmax(), 0.0)
            << "a zero cached pmax must trigger recalibration";
    }
    // And the repaired marker must have been persisted.
    {
        ResultStore store(path);
        EXPECT_GT(store.pmax(), 0.0);
    }
    unsetenv("PARROT_BENCH_INSTS");
    std::remove(path.c_str());
}

TEST(BenchBudgetTest, EnvOverride)
{
    setenv("PARROT_BENCH_INSTS", "12345", 1);
    EXPECT_EQ(benchInstBudget(), 12345u);
    unsetenv("PARROT_BENCH_INSTS");
    EXPECT_EQ(benchInstBudget(), 600000u);
}

} // namespace
