/** @file Unit tests for the bench result store (cache round-trip). */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "bench_util.hh"

namespace
{

using namespace parrot;
using namespace parrot::bench;

TEST(ResultStoreTest, MemoizesAcrossInstances)
{
    const std::string path = "test_bench_cache.tmp";
    std::remove(path.c_str());
    setenv("PARROT_BENCH_INSTS", "20000", 1);

    auto entry = workload::findApp("word");
    sim::SimResult first;
    {
        ResultStore store(path);
        first = store.get("N", entry);
        EXPECT_GT(first.ipc, 0.0);
    }
    // A fresh instance must read the same result from disk (without
    // re-simulating: identical to the last digit).
    {
        ResultStore store(path);
        sim::SimResult second = store.get("N", entry);
        EXPECT_EQ(second.cycles, first.cycles);
        EXPECT_DOUBLE_EQ(second.ipc, first.ipc);
        EXPECT_DOUBLE_EQ(second.totalEnergy, first.totalEnergy);
        EXPECT_DOUBLE_EQ(second.cmpw, first.cmpw);
        EXPECT_EQ(second.model, "N");
        EXPECT_EQ(second.app, "word");
        for (unsigned u = 0; u < power::numPowerUnits; ++u)
            EXPECT_DOUBLE_EQ(second.unitEnergy[u], first.unitEnergy[u]);
    }
    std::remove(path.c_str());
    unsetenv("PARROT_BENCH_INSTS");
}

TEST(ResultStoreTest, CorruptLinesIgnored)
{
    const std::string path = "test_bench_cache2.tmp";
    {
        std::ofstream out(path);
        out << "garbage line without tab\n";
        out << "key/with/tab\tnot numbers at all\n";
    }
    setenv("PARROT_BENCH_INSTS", "20000", 1);
    ResultStore store(path); // must not crash
    auto entry = workload::findApp("word");
    sim::SimResult r = store.get("N", entry);
    EXPECT_GT(r.ipc, 0.0);
    std::remove(path.c_str());
    unsetenv("PARROT_BENCH_INSTS");
}

TEST(BenchBudgetTest, EnvOverride)
{
    setenv("PARROT_BENCH_INSTS", "12345", 1);
    EXPECT_EQ(benchInstBudget(), 12345u);
    unsetenv("PARROT_BENCH_INSTS");
    EXPECT_EQ(benchInstBudget(), 600000u);
}

} // namespace
