/**
 * @file
 * Crash-recovery and fault-injection tests for the resilient bench
 * layer: kill -9 mid-suite, truncated cache lines, exhausted retries
 * (tombstones), transient-fault retry, and disk-failure handling.
 *
 * All tests pin PARROT_JOBS=1 so the process-wide cell numbering the
 * PARROT_FAULT_* plan targets follows suite order. The death test uses
 * gtest's default "fast" (fork-only) style deliberately: the
 * "threadsafe" style would re-exec the whole binary with the crash
 * variables set and kill the re-run's prelude instead of the armed
 * statement. Forking is safe here because jobs=1 keeps the suite
 * runner on its serial, thread-free path.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/fault.hh"
#include "sim/result.hh"

namespace
{

using namespace parrot;
using namespace parrot::bench;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

std::size_t
countLines(const std::string &text)
{
    std::size_t n = 0;
    for (char c : text)
        n += (c == '\n');
    return n;
}

std::size_t
countOccurrences(const std::string &text, const std::string &needle)
{
    std::size_t n = 0;
    for (auto pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + needle.size()))
        ++n;
    return n;
}

std::vector<workload::SuiteEntry>
tinySuite()
{
    return {workload::findApp("swim"), workload::findApp("word"),
            workload::findApp("gcc"), workload::findApp("bzip")};
}

/** Pin the bench environment and scrub every fault variable, so each
 * test arms exactly the plan it means to. */
class ResilienceTest : public testing::Test
{
  protected:
    void SetUp() override
    {
        setenv("PARROT_BENCH_INSTS", "20000", 1);
        setenv("PARROT_JOBS", "1", 1);
        setenv("PARROT_RETRY_BACKOFF_MS", "1", 1);
        clearFaults();
    }

    void TearDown() override
    {
        clearFaults();
        unsetenv("PARROT_BENCH_INSTS");
        unsetenv("PARROT_JOBS");
        unsetenv("PARROT_RETRY_BACKOFF_MS");
    }

    static void clearFaults()
    {
        unsetenv("PARROT_FAULT_CRASH_AT_CELL");
        unsetenv("PARROT_FAULT_ENOSPC_AT_CELL");
        unsetenv("PARROT_FAULT_FAIL_CELL");
        unsetenv("PARROT_FAULT_FAIL_COUNT");
        unsetenv("PARROT_FAULT_SLOW_CELL");
        unsetenv("PARROT_FAULT_SLOW_MS");
        unsetenv("PARROT_RETRIES");
        unsetenv("PARROT_DEADLINE_MS");
        unsetenv("PARROT_BENCH_NO_CACHE");
        fault::resetForTest();
    }
};

using ResilienceDeathTest = ResilienceTest;

TEST_F(ResilienceDeathTest, KillNineRecoveryIsByteIdentical)
{
    const std::string ref_path = "test_resil_ref.tmp";
    const std::string crash_path = "test_resil_crash.tmp";
    std::remove(ref_path.c_str());
    std::remove(crash_path.c_str());

    // Reference: one uninterrupted run, compacted on destruction.
    {
        ResultStore store(ref_path);
        store.getSuite("TN", tinySuite());
    }
    const std::string ref_bytes = slurp(ref_path);
    ASSERT_FALSE(ref_bytes.empty());

    // Same suite, but the forked child SIGKILLs itself right after the
    // third row (Pmax marker + two cells) reaches stable storage — a
    // literal kill -9 with a deterministic cut point.
    EXPECT_EXIT(
        {
            setenv("PARROT_FAULT_CRASH_AT_CELL", "3", 1);
            fault::resetForTest();
            ResultStore store(crash_path);
            store.getSuite("TN", tinySuite());
        },
        testing::KilledBySignal(SIGKILL), "");

    // The journal kept everything the dead run had finished...
    const std::string partial = slurp(crash_path);
    ASSERT_FALSE(partial.empty());
    EXPECT_LT(countLines(partial), countLines(ref_bytes));

    // ...and a rerun completes only the missing cells, then compacts
    // to the exact bytes of the never-killed run.
    {
        ResultStore store(crash_path);
        auto results = store.getSuite("TN", tinySuite());
        for (const auto &r : results)
            EXPECT_FALSE(r.tombstone);
    }
    EXPECT_EQ(slurp(crash_path), ref_bytes);

    std::remove(ref_path.c_str());
    std::remove(crash_path.c_str());
}

TEST_F(ResilienceTest, TruncatedCacheLineWarnsAndHeals)
{
    const std::string path = "test_resil_trunc.tmp";
    std::remove(path.c_str());
    {
        ResultStore store(path);
        store.getSuite("TN", tinySuite());
    }
    const std::string ref_bytes = slurp(path);
    ASSERT_GT(ref_bytes.size(), 30u);

    // Chop into the last cell record (TN/word — the compacted file
    // ends with the _pmax marker row), the way a crash mid-write
    // would: the clipped row must be discarded and everything after it
    // is gone.
    const std::size_t pmax_row = ref_bytes.rfind("\n_pmax");
    ASSERT_NE(pmax_row, std::string::npos);
    ASSERT_GT(pmax_row, 25u);
    {
        std::ofstream out(path, std::ios::trunc);
        out << ref_bytes.substr(0, pmax_row - 25);
    }

    testing::internal::CaptureStderr();
    {
        ResultStore store(path);
        auto results = store.getSuite("TN", tinySuite());
        for (const auto &r : results)
            EXPECT_FALSE(r.tombstone);
    }
    const std::string log = testing::internal::GetCapturedStderr();
    EXPECT_NE(log.find("discarded 1 malformed"), std::string::npos)
        << log;
    // The rerun re-simulated the clipped cell and compacted back to
    // the uncorrupted bytes.
    EXPECT_EQ(slurp(path), ref_bytes);
    std::remove(path.c_str());
}

TEST_F(ResilienceTest, TombstonePersistsAndRendersDash)
{
    const std::string path = "test_resil_tomb.tmp";
    std::remove(path.c_str());
    setenv("PARROT_FAULT_FAIL_CELL", "1", 1); // swim, every attempt
    setenv("PARROT_RETRIES", "1", 1);
    fault::resetForTest();
    {
        ResultStore store(path);
        auto results = store.getSuite("TN", tinySuite());
        ASSERT_EQ(results.size(), 4u);
        EXPECT_TRUE(results[0].tombstone);
        EXPECT_EQ(results[0].attempts, 2u);
        EXPECT_FALSE(results[1].tombstone);
        EXPECT_TRUE(store.hadFailures());
        EXPECT_EQ(store.exitCode(), 3);
    }
    EXPECT_NE(slurp(path).find("!failed attempts=2"),
              std::string::npos);

    // A fresh store loads the tombstone from disk as-is (no re-run)
    // and the figure printer renders its group as "-".
    clearFaults();
    ResultStore store(path);
    EXPECT_TRUE(store.get("TN", workload::findApp("swim")).tombstone);
    EXPECT_EQ(store.exitCode(), 3);

    testing::internal::CaptureStdout();
    printAbsoluteFigure("tombstone figure", {"TN"}, store, tinySuite(),
                        [](const sim::SimResult &r) { return r.ipc; },
                        3);
    const std::string fig = testing::internal::GetCapturedStdout();
    // swim is the suite's only SpecFP app, so the TN row's SpecFP cell
    // must be a dash while SpecInt (gcc, bzip) stays numeric.
    std::istringstream lines(fig);
    std::string line, tn_row;
    while (std::getline(lines, line)) {
        if (line.rfind("TN", 0) == 0)
            tn_row = line;
    }
    ASSERT_FALSE(tn_row.empty()) << fig;
    EXPECT_NE(tn_row.find(" -"), std::string::npos) << tn_row;
    std::remove(path.c_str());
}

TEST_F(ResilienceTest, RetryRecoversAfterTransientFault)
{
    // Cell 1 fails on its first attempt only; the retry must succeed
    // and report attempts=2 with a real result.
    setenv("PARROT_FAULT_FAIL_CELL", "1", 1);
    setenv("PARROT_FAULT_FAIL_COUNT", "1", 1);
    fault::resetForTest();

    sim::RunOptions opts;
    opts.instBudget = 20'000;
    opts.noLeakage = true;
    opts.jobs = 1;
    opts.maxRetries = 2;
    opts.retryBackoffMs = 1;
    sim::SuiteRunner runner(opts);
    sim::SimResult r = runner.runOne("TN", workload::findApp("swim"));
    EXPECT_FALSE(r.tombstone);
    EXPECT_EQ(r.attempts, 2u);
    EXPECT_GT(r.ipc, 0.0);
}

TEST_F(ResilienceTest, WriteFailureDisablesCacheAndWarnsOnce)
{
    const std::string path = "test_resil_enospc.tmp";
    std::remove(path.c_str());
    setenv("PARROT_FAULT_ENOSPC_AT_CELL", "1", 1); // every row write
    fault::resetForTest();

    testing::internal::CaptureStderr();
    {
        ResultStore store(path);
        auto results = store.getSuite("TN", tinySuite());
        // A dead disk degrades persistence, never correctness.
        for (const auto &r : results) {
            EXPECT_FALSE(r.tombstone);
            EXPECT_GT(r.ipc, 0.0);
        }
    }
    const std::string log = testing::internal::GetCapturedStderr();
    EXPECT_EQ(countOccurrences(log, "caching disabled"), 1u) << log;
    // Nothing was durably written and compaction must not run either.
    EXPECT_TRUE(slurp(path).empty());
    std::remove(path.c_str());
}

TEST_F(ResilienceTest, UnopenableCachePathDisablesCache)
{
    testing::internal::CaptureStderr();
    ResultStore store("/nonexistent_parrot_dir_xyz/cache.txt");
    sim::SimResult r = store.get("TN", workload::findApp("word"));
    EXPECT_FALSE(r.tombstone);
    EXPECT_GT(r.ipc, 0.0);
    const std::string log = testing::internal::GetCapturedStderr();
    EXPECT_EQ(countOccurrences(log, "caching disabled"), 1u) << log;
}

} // namespace
