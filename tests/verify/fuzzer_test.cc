/**
 * @file
 * Tests for the coverage-guided optimizer fuzzer and the corpus
 * machinery. The central acceptance property lives here: against a
 * deliberately broken dead-code-elimination pass the fuzzer must find
 * the bug, minimize the reproducer to a handful of uops, and the
 * written corpus file must keep failing on replay until the bug is
 * gone — at which point the committed corpus becomes a regression
 * guard that always passes.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "verify/corpus.hh"
#include "verify/fuzzer.hh"

namespace
{

using namespace parrot;
using namespace parrot::verify;

tracecache::TraceUop
tuOf(const isa::Uop &u)
{
    return tracecache::TraceUop{u, -1, -1};
}

TEST(FuzzerTest, CleanOptimizerSurvivesCampaign)
{
    FuzzOptions opts;
    opts.iterations = 200;
    opts.seed = 7;
    TraceFuzzer fuzzer(opts);
    FuzzStats stats = fuzzer.run();
    EXPECT_TRUE(stats.clean())
        << "first failure: "
        << (stats.failures.empty() ? "" : stats.failures[0].why);
    EXPECT_EQ(stats.iterations, 200u);
    EXPECT_GT(stats.equivalenceChecks, 200u);
    // The campaign must actually explore: all three generation modes
    // used, and coverage accumulated.
    EXPECT_GT(stats.harvested, 0u);
    EXPECT_GT(stats.synthesized, 0u);
    EXPECT_GT(stats.mutated, 0u);
    EXPECT_GT(stats.opcodePairsCovered, 20u);
    EXPECT_GT(stats.passOutcomesCovered, 9u);
    EXPECT_GT(stats.poolSize, 0u);
}

TEST(FuzzerTest, CampaignIsDeterministic)
{
    FuzzOptions opts;
    opts.iterations = 60;
    opts.seed = 99;
    FuzzStats a = TraceFuzzer(opts).run();
    FuzzStats b = TraceFuzzer(opts).run();
    EXPECT_EQ(a.equivalenceChecks, b.equivalenceChecks);
    EXPECT_EQ(a.opcodePairsCovered, b.opcodePairsCovered);
    EXPECT_EQ(a.passOutcomesCovered, b.passOutcomesCovered);
    EXPECT_EQ(a.coverageInputs, b.coverageInputs);
    EXPECT_EQ(a.failures.size(), b.failures.size());
}

TEST(FuzzerTest, InjectedDceBugIsFoundAndMinimized)
{
    // The acceptance gate of the whole subsystem: break dead-code
    // elimination (r3 treated dead at trace exit) and the fuzzer must
    // catch it and shrink the reproducer to <= 8 uops.
    FuzzOptions opts;
    opts.iterations = 400;
    opts.seed = 1;
    opts.base.debugBreakDce = true;
    TraceFuzzer fuzzer(opts);
    FuzzStats stats = fuzzer.run();
    ASSERT_FALSE(stats.clean()) << "fuzzer missed an injected bug";
    for (const FuzzFailure &fail : stats.failures) {
        EXPECT_LE(fail.entry.uops.size(), 8u)
            << "reproducer not minimal: " << renderCorpus(fail.entry);
        EXPECT_LE(fail.entry.uops.size(), fail.originalUops);
        EXPECT_FALSE(fail.why.empty());
        // The minimized entry still reproduces under the same fuzzer.
        std::string why;
        EXPECT_FALSE(fuzzer.replay(fail.entry, &why))
            << "minimized reproducer no longer fails";
    }
    // And the same entries PASS once the bug is fixed — the property
    // that makes the dumped corpus a meaningful regression suite.
    FuzzOptions fixed = opts;
    fixed.base.debugBreakDce = false;
    TraceFuzzer fixed_fuzzer(fixed);
    for (const FuzzFailure &fail : stats.failures)
        EXPECT_TRUE(fixed_fuzzer.replay(fail.entry));
}

TEST(FuzzerTest, MinimizeShrinksToTheEssentialUop)
{
    // Hand-built input for the injected bug: only the final write to
    // r3 matters; padding around it must be stripped.
    FuzzOptions opts;
    opts.base.debugBreakDce = true;
    TraceFuzzer fuzzer(opts);
    std::vector<tracecache::TraceUop> uops = {
        tuOf(isa::makeMovImm(1, 4)),
        tuOf(isa::makeAlu(isa::UopKind::Add, 2, 1, 1)),
        tuOf(isa::makeMovImm(3, 17)),
        tuOf(isa::makeAlu(isa::UopKind::Xor, 5, 2, 1)),
        tuOf(isa::makeAluImm(isa::UopKind::AddImm, 6, 5, 1)),
    };
    const unsigned dce_only = 1u << 2; // pass-mask bit 2 = DCE
    std::string why;
    ASSERT_FALSE(fuzzer.check(uops, dce_only, 42, &why))
        << "injected DCE bug should delete the live r3 write";
    auto minimal = fuzzer.minimize(uops, dce_only, 42);
    ASSERT_EQ(minimal.size(), 1u);
    EXPECT_EQ(minimal[0].uop.kind, isa::UopKind::MovImm);
    EXPECT_EQ(minimal[0].uop.dst, 3);
    EXPECT_FALSE(fuzzer.check(minimal, dce_only, 42));
}

// ---------------------------------------------------------------------
// Corpus format.
// ---------------------------------------------------------------------

TEST(CorpusTest, RenderParseRoundTrip)
{
    CorpusEntry entry;
    entry.passMask = 0x1ff;
    entry.seed = 1234567;
    entry.comment = "round-trip fixture";
    entry.uops.push_back(tuOf(isa::makeMovImm(3, -9)));
    entry.uops.push_back(tuOf(isa::makeLoad(4, 3, 16)));
    entry.uops.push_back(tuOf(isa::makeStore(4, 3, 24)));
    entry.uops.push_back(tuOf(isa::makeFpMulAdd(17, 16, 17, 18)));
    entry.uops.push_back(tuOf(isa::makeSimdPair(
        isa::UopKind::Add, isa::makeAlu(isa::UopKind::Add, 5, 1, 2),
        isa::makeAlu(isa::UopKind::Add, 6, 2, 1))));

    CorpusEntry parsed;
    std::string error;
    ASSERT_TRUE(parseCorpus(renderCorpus(entry), parsed, &error)) << error;
    EXPECT_EQ(parsed.passMask, entry.passMask);
    EXPECT_EQ(parsed.seed, entry.seed);
    ASSERT_EQ(parsed.uops.size(), entry.uops.size());
    for (std::size_t i = 0; i < entry.uops.size(); ++i) {
        const isa::Uop &a = entry.uops[i].uop;
        const isa::Uop &b = parsed.uops[i].uop;
        EXPECT_EQ(a.kind, b.kind) << "uop " << i;
        EXPECT_EQ(a.dst, b.dst);
        EXPECT_EQ(a.src1, b.src1);
        EXPECT_EQ(a.src2, b.src2);
        EXPECT_EQ(a.imm, b.imm);
        EXPECT_EQ(a.dst2, b.dst2);
        EXPECT_EQ(a.src1b, b.src1b);
        EXPECT_EQ(a.src2b, b.src2b);
        EXPECT_EQ(a.laneKind, b.laneKind);
    }
}

TEST(CorpusTest, ParseRejectsGarbage)
{
    CorpusEntry out;
    std::string error;
    EXPECT_FALSE(parseCorpus("", out, &error));
    EXPECT_FALSE(parseCorpus("not-a-corpus\n", out, &error));
    EXPECT_NE(error.find("header"), std::string::npos) << error;
    EXPECT_FALSE(parseCorpus("parrot-trace-corpus v1\n"
                             "uop frobnicate 0 0 0 0 0 0 0 nop 0\n",
                             out, &error));
    EXPECT_NE(error.find("unknown uop kind"), std::string::npos) << error;
    EXPECT_FALSE(parseCorpus("parrot-trace-corpus v1\nuop add 1\n", out));
    EXPECT_FALSE(
        parseCorpus("parrot-trace-corpus v1\nwibble = 3\n", out, &error));
    EXPECT_NE(error.find("unknown directive"), std::string::npos);
}

TEST(CorpusTest, FileRoundTripAndDirectoryReplay)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::path(::testing::TempDir()) / "parrot-corpus-test";
    fs::create_directories(dir);

    CorpusEntry entry;
    entry.passMask = 1u << 2; // DCE only
    entry.seed = 42;
    entry.uops.push_back(tuOf(isa::makeMovImm(3, 17)));
    ASSERT_TRUE(writeCorpusFile((dir / "r3.trace").string(), entry));

    CorpusEntry loaded;
    std::string error;
    ASSERT_TRUE(loadCorpusFile((dir / "r3.trace").string(), loaded, &error))
        << error;
    ASSERT_EQ(loaded.uops.size(), 1u);

    // Replay against a sound optimizer: the regression guard passes.
    optimizer::OptimizerConfig sound;
    ReplayResult good = replayCorpusDir(dir.string(), sound);
    EXPECT_EQ(good.total, 1u);
    EXPECT_EQ(good.failed, 0u);

    // Replay against the broken one: the guard trips.
    optimizer::OptimizerConfig broken;
    broken.debugBreakDce = true;
    ReplayResult bad = replayCorpusDir(dir.string(), broken);
    EXPECT_EQ(bad.total, 1u);
    EXPECT_EQ(bad.failed, 1u);
    ASSERT_EQ(bad.reports.size(), 1u);

    // Unparseable corpus files count as failures, loudly.
    ASSERT_TRUE([&] {
        std::ofstream junk(dir / "junk.trace");
        junk << "parrot-trace-corpus v0\n";
        return static_cast<bool>(junk);
    }());
    ReplayResult with_junk = replayCorpusDir(dir.string(), sound);
    EXPECT_EQ(with_junk.total, 2u);
    EXPECT_EQ(with_junk.failed, 1u);

    fs::remove_all(dir);
}

TEST(CorpusTest, CommittedCorpusReplaysClean)
{
    // The corpus checked into the repository must pass under the
    // production optimizer configuration — this is the "once found,
    // never again" regression property, also enforced in CI via
    // `parrot_fuzz --replay`.
    ReplayResult r =
        replayCorpusDir(PARROT_CORPUS_DIR, optimizer::OptimizerConfig{});
    EXPECT_GT(r.total, 0u) << "seed corpus missing from " PARROT_CORPUS_DIR;
    EXPECT_EQ(r.failed, 0u);
    for (const auto &line : r.reports)
        ADD_FAILURE() << line;
}

TEST(FuzzerTest, ApplyPassMaskTogglesEachPass)
{
    optimizer::OptimizerConfig base;
    base.debugBreakDce = true; // non-pass knob: must survive masking
    auto none = applyPassMask(base, 0);
    EXPECT_FALSE(none.propagate);
    EXPECT_FALSE(none.dce);
    EXPECT_FALSE(none.schedule);
    EXPECT_TRUE(none.debugBreakDce);
    auto all = applyPassMask(base, fullPassMask);
    EXPECT_TRUE(all.propagate);
    EXPECT_TRUE(all.memForward);
    EXPECT_TRUE(all.dce);
    EXPECT_TRUE(all.promote);
    EXPECT_TRUE(all.strength);
    EXPECT_TRUE(all.fuseCmp);
    EXPECT_TRUE(all.fuseFp);
    EXPECT_TRUE(all.simdify);
    EXPECT_TRUE(all.schedule);
    auto dce_only = applyPassMask(base, 1u << 2);
    EXPECT_FALSE(dce_only.propagate);
    EXPECT_TRUE(dce_only.dce);
    EXPECT_FALSE(dce_only.simdify);
}

} // namespace
