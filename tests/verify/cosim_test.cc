/**
 * @file
 * Tests for the differential co-simulation oracle: unit-level checks
 * that it accepts transparent traces, rejects corrupted ones and
 * recovers after a divergence — then the integration property the
 * subsystem exists for: full timing runs of every hot model stay
 * mismatch-free while actually exercising both commit paths.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <tuple>

#include "isa/registers.hh"
#include "sim/simulator.hh"
#include "verify/cosim.hh"
#include "workload/apps.hh"

namespace
{

using namespace parrot;
using namespace parrot::verify;

/** Build a static macro-instruction from bare uops. */
isa::MacroInst
makeInst(Addr pc, std::vector<isa::Uop> uops)
{
    isa::MacroInst inst;
    inst.pc = pc;
    inst.uops = std::move(uops);
    return inst;
}

workload::DynInst
dynOf(const isa::MacroInst &inst)
{
    workload::DynInst d;
    d.inst = &inst;
    d.nextPc = inst.pc + inst.length;
    return d;
}

tracecache::Trace
traceOf(Addr start_pc, const std::vector<isa::Uop> &uops)
{
    tracecache::Trace t;
    t.tid.startPc = start_pc;
    for (const auto &u : uops)
        t.uops.push_back(tracecache::TraceUop{u, -1, -1});
    t.optimized = true;
    return t;
}

TEST(CosimOracleTest, IdenticalColdStreamIsClean)
{
    CosimOracle oracle;
    auto a = makeInst(0x100, {isa::makeMovImm(1, 5),
                              isa::makeAlu(isa::UopKind::Add, 2, 1, 1)});
    auto b = makeInst(0x104, {isa::makeStore(2, 1, 8)});
    oracle.onColdCommit(dynOf(a));
    oracle.onColdCommit(dynOf(b));
    EXPECT_TRUE(oracle.clean());
    EXPECT_EQ(oracle.stats().coldCommits, 2u);
    EXPECT_EQ(oracle.stats().uopsExecuted, 6u);
    EXPECT_EQ(oracle.referenceState().reg(2), 10);
}

TEST(CosimOracleTest, TransparentOptimizedTraceIsClean)
{
    // A constant-propagated trace: different uops, same architectural
    // effect. The window carries the original two instructions.
    CosimOracle oracle;
    auto i0 = makeInst(0x200, {isa::makeMovImm(1, 7)});
    auto i1 = makeInst(0x204, {isa::makeMov(2, 1)});
    tracecache::Trace trace = traceOf(
        0x200, {isa::makeMovImm(1, 7), isa::makeMovImm(2, 7)});
    oracle.onTraceCommit(trace, {dynOf(i0), dynOf(i1)});
    EXPECT_TRUE(oracle.clean());
    EXPECT_EQ(oracle.stats().traceCommits, 1u);
    EXPECT_EQ(oracle.machineState().reg(2), 7);
}

TEST(CosimOracleTest, DeadFlagsAtTraceBoundaryAreForgiven)
{
    // The optimizer may kill a compare whose flags die inside the
    // trace (e.g. Cmp+Assert fusion); the boundary comparison must
    // ignore flags and then resync them so later cold commits compare
    // exactly.
    CosimOracle oracle;
    auto i0 = makeInst(0x300, {isa::makeCmpImm(1, 3)});
    auto i1 = makeInst(0x304, {isa::makeMovImm(4, 9)});
    tracecache::Trace trace = traceOf(0x300, {isa::makeMovImm(4, 9)});
    oracle.onTraceCommit(trace, {dynOf(i0), dynOf(i1)});
    EXPECT_TRUE(oracle.clean());
    // Post-resync, an exact cold boundary stays clean too.
    auto i2 = makeInst(0x308, {isa::makeAluImm(isa::UopKind::Add, 5, 4, 1)});
    oracle.onColdCommit(dynOf(i2));
    EXPECT_TRUE(oracle.clean());
}

TEST(CosimOracleTest, RegisterCorruptionIsDetectedOnce)
{
    // An unsound "optimization" (wrong constant) must be flagged at
    // the trace boundary it commits, and — thanks to the resync — be
    // counted as ONE divergence event, not re-reported forever.
    CosimOracle oracle;
    auto i0 = makeInst(0x400, {isa::makeMovImm(3, 11)});
    tracecache::Trace bad = traceOf(0x400, {isa::makeMovImm(3, 12)});
    oracle.onTraceCommit(bad, {dynOf(i0)});
    EXPECT_FALSE(oracle.clean());
    EXPECT_EQ(oracle.stats().mismatches, 1u);
    EXPECT_NE(oracle.stats().firstMismatch.find("r3"), std::string::npos)
        << oracle.stats().firstMismatch;

    auto i1 = makeInst(0x404, {isa::makeMov(4, 3)});
    oracle.onColdCommit(dynOf(i1));
    EXPECT_EQ(oracle.stats().mismatches, 1u)
        << "resync must stop the divergence from echoing";
}

TEST(CosimOracleTest, MemoryCorruptionIsDetected)
{
    // A dropped (or value-corrupted) store diverges memory, not
    // registers; the touched-address comparison must catch it.
    CosimOracle oracle;
    auto setup = makeInst(
        0x500, {isa::makeMovImm(1, 0x1000), isa::makeMovImm(2, 42)});
    oracle.onColdCommit(dynOf(setup));
    ASSERT_TRUE(oracle.clean());

    auto store = makeInst(0x508, {isa::makeStore(2, 1, 0)});
    tracecache::Trace bad = traceOf(0x508, {isa::makeNop()});
    oracle.onTraceCommit(bad, {dynOf(store)});
    EXPECT_FALSE(oracle.clean());
    EXPECT_NE(oracle.stats().firstMismatch.find("mem"), std::string::npos)
        << oracle.stats().firstMismatch;
}

// ---------------------------------------------------------------------
// Integration: the oracle rides along full timing simulations.
// ---------------------------------------------------------------------

class CosimIntegrationTest
    : public ::testing::TestWithParam<std::tuple<const char *, const char *>>
{
};

TEST_P(CosimIntegrationTest, FullRunHasNoMismatches)
{
    const auto [model, app] = GetParam();
    auto entry = workload::findApp(app);
    sim::Workload w = sim::loadWorkload(entry);
    sim::ModelConfig cfg = sim::ModelConfig::make(model);
    cfg.cosim = true;
    sim::ParrotSimulator s(cfg, w);
    sim::SimResult r = s.run(80000, 0.0);

    ASSERT_TRUE(r.cosimEnabled);
    EXPECT_EQ(r.cosimMismatches, 0u);
    EXPECT_GT(r.cosimColdCommits, 0u) << "oracle saw no cold commits";
    if (cfg.hasTraceCache)
        EXPECT_GT(r.cosimTraceCommits, 0u)
            << "hot model never exercised the trace-commit check";
    else
        EXPECT_EQ(r.cosimTraceCommits, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ModelsTimesApps, CosimIntegrationTest,
    ::testing::Combine(::testing::Values("N", "TN", "TON", "TOS"),
                       ::testing::Values("swim", "gcc", "word")),
    [](const auto &info) {
        return std::string(std::get<0>(info.param)) + "_" +
               std::get<1>(info.param);
    });

TEST(CosimIntegrationTest, EnvVarEnablesOracle)
{
    auto entry = workload::findApp("swim");
    sim::Workload w = sim::loadWorkload(entry);
    setenv("PARROT_COSIM", "1", 1);
    sim::ParrotSimulator s(sim::ModelConfig::make("TON"), w);
    unsetenv("PARROT_COSIM");
    sim::SimResult r = s.run(30000, 0.0);
    EXPECT_TRUE(r.cosimEnabled);
    EXPECT_EQ(r.cosimMismatches, 0u);
}

TEST(CosimIntegrationTest, DisabledByDefault)
{
    auto entry = workload::findApp("word");
    sim::Workload w = sim::loadWorkload(entry);
    sim::ParrotSimulator s(sim::ModelConfig::make("TON"), w);
    sim::SimResult r = s.run(20000, 0.0);
    EXPECT_FALSE(r.cosimEnabled);
    EXPECT_EQ(r.cosimColdCommits, 0u);
}

} // namespace
