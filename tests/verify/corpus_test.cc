/** @file Write-then-load identity for the optimizer-fuzzer corpus
 * files through the atomic-file layer — including on odd paths
 * (spaces, doubled dots, deep fresh directories), the case a
 * re-mounted or unusual corpus location exercises. The fuzzer itself
 * only ever wrote corpus files; nothing proved a written file loads
 * back identical until now. */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "tracecache/trace.hh"
#include "verify/corpus.hh"

namespace
{

using namespace parrot;
using namespace parrot::verify;

tracecache::TraceUop
makeUop(isa::UopKind kind, RegId dst, RegId src1, RegId src2,
        std::int64_t imm)
{
    tracecache::TraceUop tu;
    tu.uop.kind = kind;
    tu.uop.dst = dst;
    tu.uop.src1 = src1;
    tu.uop.src2 = src2;
    tu.uop.imm = imm;
    return tu;
}

CorpusEntry
sampleEntry()
{
    CorpusEntry entry;
    entry.uops.push_back(makeUop(isa::UopKind::Add, 3, 1, 2, 0));
    entry.uops.push_back(makeUop(isa::UopKind::Load, 4, 3, invalidReg,
                                 16));
    entry.uops.push_back(
        makeUop(isa::UopKind::Store, invalidReg, 4, 3, -8));
    entry.passMask = 0x1ABu;
    entry.seed = 987654321u;
    entry.comment = "write-then-load identity fixture";
    return entry;
}

void
expectEntriesEqual(const CorpusEntry &a, const CorpusEntry &b)
{
    EXPECT_EQ(a.passMask, b.passMask);
    EXPECT_EQ(a.seed, b.seed);
    ASSERT_EQ(a.uops.size(), b.uops.size());
    for (std::size_t i = 0; i < a.uops.size(); ++i) {
        const isa::Uop &ua = a.uops[i].uop;
        const isa::Uop &ub = b.uops[i].uop;
        EXPECT_EQ(ua.kind, ub.kind) << "uop " << i;
        EXPECT_EQ(ua.dst, ub.dst) << "uop " << i;
        EXPECT_EQ(ua.src1, ub.src1) << "uop " << i;
        EXPECT_EQ(ua.src2, ub.src2) << "uop " << i;
        EXPECT_EQ(ua.imm, ub.imm) << "uop " << i;
        EXPECT_EQ(ua.dst2, ub.dst2) << "uop " << i;
        EXPECT_EQ(ua.src1b, ub.src1b) << "uop " << i;
        EXPECT_EQ(ua.src2b, ub.src2b) << "uop " << i;
        EXPECT_EQ(ua.laneKind, ub.laneKind) << "uop " << i;
        EXPECT_EQ(ua.assertTarget, ub.assertTarget) << "uop " << i;
    }
}

TEST(CorpusFileTest, WriteThenLoadIdentityOnOddPath)
{
    const auto dir = std::filesystem::temp_directory_path() /
                     "parrot corpus..dir with spaces" / "nested sub";
    ASSERT_TRUE(std::filesystem::create_directories(dir));
    const std::string path =
        (dir / "odd name..with spaces.trace").string();

    const CorpusEntry written = sampleEntry();
    ASSERT_TRUE(writeCorpusFile(path, written));

    CorpusEntry loaded;
    std::string error;
    ASSERT_TRUE(loadCorpusFile(path, loaded, &error)) << error;
    expectEntriesEqual(written, loaded);

    // Idempotence: re-writing the loaded entry reproduces the exact
    // file bytes (render is canonical; the parser intentionally drops
    // free-form comments, so compare comment-stripped renders).
    CorpusEntry canonical = written;
    canonical.comment.clear();
    EXPECT_EQ(renderCorpus(canonical), renderCorpus(loaded));

    std::filesystem::remove_all(dir.parent_path());
}

TEST(CorpusFileTest, WriteToUnwritablePathFailsCleanly)
{
    EXPECT_FALSE(writeCorpusFile(
        "/nonexistent-dir-xyz/deeper/corpus.trace", sampleEntry()));
}

TEST(CorpusFileTest, LoadOfMissingFileFailsWithMessage)
{
    CorpusEntry out;
    std::string error;
    EXPECT_FALSE(loadCorpusFile("/nonexistent-dir-xyz/nope.trace", out,
                                &error));
    EXPECT_FALSE(error.empty());
}

} // namespace
