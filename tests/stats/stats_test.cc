/** @file Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include <limits>

#include "stats/stats.hh"

namespace
{

using namespace parrot::stats;

TEST(ScalarTest, AddAndReset)
{
    Scalar s("x");
    s.add();
    s.add(4);
    EXPECT_EQ(s.value(), 5u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
    EXPECT_EQ(s.name(), "x");
}

TEST(RatioTest, SampleBasedRatio)
{
    Ratio r("hit");
    r.sample(true);
    r.sample(true);
    r.sample(false);
    r.sample(false);
    EXPECT_DOUBLE_EQ(r.value(), 0.5);
    EXPECT_EQ(r.numerator(), 2u);
    EXPECT_EQ(r.denominator(), 4u);
}

TEST(RatioTest, EmptyRatioIsZero)
{
    Ratio r;
    EXPECT_DOUBLE_EQ(r.value(), 0.0);
}

TEST(RatioTest, ExplicitAdd)
{
    Ratio r;
    r.add(3, 10);
    r.add(1, 10);
    EXPECT_DOUBLE_EQ(r.value(), 0.2);
}

TEST(HistogramTest, BucketsAndOverflow)
{
    Histogram h("lat", 4, 10); // buckets [0,10) [10,20) [20,30) [30,40) +ovf
    h.sample(0);
    h.sample(9);
    h.sample(10);
    h.sample(39);
    h.sample(1000);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.bucket(4), 1u); // overflow
    EXPECT_EQ(h.totalSamples(), 5u);
    EXPECT_EQ(h.maxValue(), 1000u);
}

// Pin the fixed-range contract: every sample at or past
// buckets*bucketWidth lands in the overflow bucket — none dropped, no
// index past the counts array.
TEST(HistogramTest, OutOfRangeClampsIntoOverflowBucket)
{
    Histogram h("lat", 4, 10); // range [0, 40) + overflow bucket 4
    h.sample(40);              // first value past the range
    h.sample(41);
    h.sample(std::numeric_limits<std::uint64_t>::max());
    EXPECT_EQ(h.bucket(4), 3u);
    EXPECT_EQ(h.totalSamples(), 3u);
    for (unsigned b = 0; b < 4; ++b)
        EXPECT_EQ(h.bucket(b), 0u);
}

TEST(HistogramTest, MeanTracksSamples)
{
    Histogram h("x", 8, 1);
    h.sample(2);
    h.sample(4);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
    h.reset();
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.totalSamples(), 0u);
}

TEST(RegistryTest, SetGetHas)
{
    Registry reg;
    EXPECT_FALSE(reg.has("ipc"));
    reg.set("ipc", 1.5);
    EXPECT_TRUE(reg.has("ipc"));
    EXPECT_DOUBLE_EQ(reg.get("ipc"), 1.5);
    reg.set("ipc", 2.0); // overwrite
    EXPECT_DOUBLE_EQ(reg.get("ipc"), 2.0);
    EXPECT_EQ(reg.all().size(), 1u);
}

TEST(AggregateTest, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(AggregateTest, Mean)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

} // namespace

namespace
{

using parrot::stats::Histogram;

TEST(HistogramPercentileTest, EmptyIsZero)
{
    Histogram h("x", 8, 10);
    EXPECT_EQ(h.percentile(0.5), 0u);
}

TEST(HistogramPercentileTest, MedianOfUniform)
{
    Histogram h("x", 10, 10);
    for (int v = 0; v < 100; ++v)
        h.sample(v);
    // Median falls in the [50,60) bucket -> upper edge 60.
    EXPECT_EQ(h.percentile(0.5), 60u);
    EXPECT_EQ(h.percentile(0.0), 10u);
    EXPECT_EQ(h.percentile(1.0), 100u);
}

TEST(HistogramPercentileTest, OverflowBucketReportsMax)
{
    Histogram h("x", 4, 10);
    h.sample(5);
    h.sample(5000);
    EXPECT_EQ(h.percentile(1.0), 5000u);
}

} // namespace
