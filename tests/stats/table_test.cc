/** @file Unit tests for the text table formatter. */

#include <gtest/gtest.h>

#include "stats/table.hh"

namespace
{

using parrot::stats::TextTable;

TEST(TextTableTest, EmptyRendersEmpty)
{
    TextTable t;
    EXPECT_EQ(t.render(), "");
}

TEST(TextTableTest, HeaderRuleAndAlignment)
{
    TextTable t;
    t.addRow({"model", "ipc"});
    t.addRow({"N", "1.25"});
    t.addRow({"TON", "1.50"});
    std::string out = t.render();
    EXPECT_NE(out.find("model"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
    // Numbers right-aligned under the same column.
    auto pos_ipc = out.find("ipc");
    auto pos_125 = out.find("1.25");
    EXPECT_NE(pos_ipc, std::string::npos);
    EXPECT_NE(pos_125, std::string::npos);
}

TEST(TextTableTest, NumFormatting)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(TextTableTest, PctFormatting)
{
    EXPECT_EQ(TextTable::pct(0.171, 1), "+17.1%");
    EXPECT_EQ(TextTable::pct(-0.05, 1), "-5.0%");
}

TEST(TextTableTest, RaggedRowsHandled)
{
    TextTable t;
    t.addRow({"a", "b", "c"});
    t.addRow({"only-one"});
    EXPECT_FALSE(t.render().empty());
}

} // namespace
