/** @file Unit tests for the hierarchical stats tree. */

#include <gtest/gtest.h>

#include "stats/group.hh"
#include "stats/stats.hh"

namespace
{

using namespace parrot::stats;

TEST(GroupTest, DottedPathsFollowNesting)
{
    Group root;
    Scalar committed{"committed_uops"};
    committed.add(7);
    root.subgroup("core").subgroup("cold").add(&committed);

    Snapshot snap = root.snapshot();
    EXPECT_TRUE(snap.has("core.cold.committed_uops"));
    EXPECT_DOUBLE_EQ(snap.get("core.cold.committed_uops"), 7.0);
}

TEST(GroupTest, RegistrationNameOverride)
{
    Group root;
    Scalar s{"internal_name"};
    s.add(3);
    root.add(&s, "public_name");

    Snapshot snap = root.snapshot();
    EXPECT_TRUE(snap.has("public_name"));
    EXPECT_FALSE(snap.has("internal_name"));
}

TEST(GroupTest, RatioContributesRawCounters)
{
    Group root;
    Ratio hits{"hit_ratio"};
    hits.add(3, 4);
    root.add(&hits);

    Snapshot snap = root.snapshot();
    EXPECT_DOUBLE_EQ(snap.get("hit_ratio"), 0.75);
    EXPECT_DOUBLE_EQ(snap.get("hit_ratio.num"), 3.0);
    EXPECT_DOUBLE_EQ(snap.get("hit_ratio.den"), 4.0);
}

TEST(GroupTest, HistogramContributesSummary)
{
    Group root;
    Histogram h{"latency", 4, 10};
    h.sample(5);
    h.sample(15);
    root.add(&h);

    Snapshot snap = root.snapshot();
    EXPECT_DOUBLE_EQ(snap.get("latency.samples"), 2.0);
    EXPECT_DOUBLE_EQ(snap.get("latency.mean"), 10.0);
    EXPECT_DOUBLE_EQ(snap.get("latency.max"), 15.0);
}

TEST(GroupTest, FormulaEvaluatedAtSnapshotTime)
{
    Group root;
    Scalar n{"n"};
    root.add(&n);
    root.addFormula("twice_n", [&n] { return 2.0 * n.value(); });

    n.add(5);
    EXPECT_DOUBLE_EQ(root.snapshot().get("twice_n"), 10.0);
    n.add(5);
    EXPECT_DOUBLE_EQ(root.snapshot().get("twice_n"), 20.0);
}

TEST(GroupTest, SnapshotPreservesRegistrationOrder)
{
    Group root;
    Scalar a{"a"}, b{"b"}, c{"c"};
    root.add(&b);
    root.subgroup("sub").add(&c);
    root.add(&a); // own stats still precede child groups

    Snapshot snap = root.snapshot();
    const auto &entries = snap.all();
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0].first, "b");
    EXPECT_EQ(entries[1].first, "a");
    EXPECT_EQ(entries[2].first, "sub.c");
}

TEST(GroupTest, DeltaComputesWindowDifference)
{
    Group root;
    Scalar n{"n"};
    root.add(&n);

    n.add(10);
    Snapshot before = root.snapshot();
    n.add(32);
    Snapshot after = root.snapshot();
    EXPECT_DOUBLE_EQ(after.delta(before, "n"), 32.0);
}

TEST(GroupDeathTest, DuplicateNameIsFatal)
{
    Group root;
    Scalar a{"x"}, b{"x"};
    root.add(&a);
    EXPECT_DEATH(root.add(&b), "x");
}

TEST(GroupDeathTest, SubgroupNameWithDotIsFatal)
{
    Group root;
    EXPECT_DEATH(root.subgroup("a.b"), ".");
}

TEST(GroupDeathTest, SnapshotGetMissingPathIsFatal)
{
    Group root;
    Snapshot snap = root.snapshot();
    EXPECT_DEATH(snap.get("no.such.path"), "no.such.path");
}

TEST(GroupTest, DumpRendersUnsampledRatioAsDash)
{
    Group root;
    Ratio r{"abort_rate"};
    root.add(&r);

    // Zero samples: "-", not a misleading 0.
    EXPECT_NE(root.dump().find("abort_rate -"), std::string::npos);

    // One miss out of one sample: a genuine 0.0, rendered numerically.
    r.sample(false);
    std::string dumped = root.dump();
    EXPECT_EQ(dumped.find("abort_rate -"), std::string::npos);
    EXPECT_NE(dumped.find("abort_rate 0"), std::string::npos);
}

TEST(RatioTest, ValidDistinguishesUnsampledFromZero)
{
    Ratio r{"r"};
    EXPECT_FALSE(r.valid());
    EXPECT_DOUBLE_EQ(r.value(), 0.0);

    r.sample(false);
    EXPECT_TRUE(r.valid());
    EXPECT_DOUBLE_EQ(r.value(), 0.0); // a real zero now
}

} // namespace
