/** @file Unit tests for the out-of-order backend. */

#include <gtest/gtest.h>

#include "cpu/ooo_core.hh"
#include "isa/uop.hh"
#include "memory/hierarchy.hh"
#include "power/account.hh"

namespace
{

using namespace parrot;
using namespace parrot::cpu;

class OooCoreTest : public ::testing::Test
{
  protected:
    OooCoreTest()
        : mem(memory::HierarchyConfig{}),
          core(CoreConfig::narrow(), &mem, &energy)
    {
    }

    /** Tick until the token completes (bounded). */
    void
    runUntilComplete(UopToken token, unsigned bound = 1000)
    {
        for (unsigned i = 0; i < bound && !core.completed(token); ++i)
            core.tick();
        ASSERT_TRUE(core.completed(token));
    }

    /** Tick until everything drains. */
    void
    drain(unsigned bound = 2000)
    {
        for (unsigned i = 0; i < bound && !core.drained(); ++i)
            core.tick();
        ASSERT_TRUE(core.drained());
    }

    memory::Hierarchy mem;
    power::EnergyAccount energy;
    OooCore core;
};

TEST_F(OooCoreTest, SingleUopExecutesAndCommits)
{
    UopToken t = core.dispatch(isa::makeMovImm(1, 42), 0, true, false);
    runUntilComplete(t);
    drain();
    EXPECT_EQ(core.committedUops(), 1u);
    EXPECT_EQ(core.committedInsts(), 1u);
}

TEST_F(OooCoreTest, PoisonedUopsDoNotCountAsWork)
{
    core.dispatch(isa::makeMovImm(1, 1), 0, true, true);
    core.dispatch(isa::makeMovImm(2, 2), 0, true, false);
    drain();
    EXPECT_EQ(core.committedUops(), 1u);
    EXPECT_EQ(core.committedInsts(), 1u);
}

TEST_F(OooCoreTest, DependentChainSerializes)
{
    // A chain of N dependent ALU ops takes at least N cycles.
    const int n = 20;
    UopToken last = 0;
    for (int i = 0; i < n; ++i)
        last = core.dispatch(isa::makeAluImm(isa::UopKind::AddImm, 1, 1, 1),
                             0, true, false);
    Cycle start = core.now();
    runUntilComplete(last);
    EXPECT_GE(core.now() - start, static_cast<Cycle>(n));
}

TEST_F(OooCoreTest, IndependentUopsOverlap)
{
    // Independent single-cycle ops on distinct registers finish far
    // faster than a serial chain would.
    const int n = 24;
    UopToken last = 0;
    for (int i = 0; i < n; ++i) {
        while (!core.canDispatch())
            core.tick();
        last = core.dispatch(
            isa::makeMovImm(static_cast<RegId>(2 + (i % 8)), i), 0, true,
            false);
    }
    Cycle start = core.now();
    runUntilComplete(last);
    EXPECT_LE(core.now() - start, static_cast<Cycle>(n / 2));
}

TEST_F(OooCoreTest, IssueRespectsUnitPools)
{
    // Only one mul/div unit: two divs serialize even if independent.
    UopToken a = core.dispatch(isa::makeAlu(isa::UopKind::Div, 2, 1, 1),
                               0, true, false);
    UopToken b = core.dispatch(isa::makeAlu(isa::UopKind::Div, 3, 1, 1),
                               0, true, false);
    runUntilComplete(a);
    Cycle t_a = core.now();
    runUntilComplete(b);
    Cycle t_b = core.now();
    EXPECT_GE(t_b, t_a + 1) << "second div must wait for the unit";
}

TEST_F(OooCoreTest, LoadLatencyIncludesCache)
{
    UopToken t = core.dispatch(isa::makeLoad(2, 1, 0), 0x10000, true,
                               false);
    Cycle start = core.now();
    runUntilComplete(t);
    // Cold load goes to main memory: must take far longer than an ALU.
    EXPECT_GT(core.now() - start, 50u);

    // Second load to the same line is an L1 hit.
    UopToken t2 = core.dispatch(isa::makeLoad(3, 1, 0), 0x10000, true,
                                false);
    start = core.now();
    runUntilComplete(t2);
    EXPECT_LT(core.now() - start, 10u);
}

TEST_F(OooCoreTest, StoreWritesCacheAtCommit)
{
    UopToken t = core.dispatch(isa::makeStore(1, 2, 0), 0x20000, true,
                               false);
    runUntilComplete(t);
    drain();
    EXPECT_TRUE(mem.l1d().contains(0x20000));
}

TEST_F(OooCoreTest, PoisonedStoreDoesNotTouchCache)
{
    UopToken t = core.dispatch(isa::makeStore(1, 2, 0), 0x30000, true,
                               true);
    runUntilComplete(t);
    drain();
    EXPECT_FALSE(mem.l1d().contains(0x30000))
        << "wrong-path stores must not commit to memory";
}

TEST_F(OooCoreTest, InOrderCommit)
{
    // A long-latency op at the head blocks commit of younger completed
    // work.
    UopToken div = core.dispatch(isa::makeAlu(isa::UopKind::Div, 2, 1, 1),
                                 0, true, false);
    UopToken mov = core.dispatch(isa::makeMovImm(3, 7), 0, true, false);
    runUntilComplete(mov);
    EXPECT_EQ(core.committedUops(), 0u)
        << "younger uop must not commit before the older div";
    runUntilComplete(div);
    drain();
    EXPECT_EQ(core.committedUops(), 2u);
}

TEST_F(OooCoreTest, CapacityBackpressure)
{
    CoreConfig cfg = CoreConfig::narrow();
    // Fill the IQ with waiting uops dependent on a slow producer.
    UopToken producer = core.dispatch(
        isa::makeAlu(isa::UopKind::Div, 2, 1, 1), 0, true, false);
    (void)producer;
    unsigned dispatched = 1;
    while (core.canDispatch()) {
        core.dispatch(isa::makeAlu(isa::UopKind::Add, 3, 2, 2), 0, true,
                      false);
        ++dispatched;
    }
    EXPECT_LE(dispatched, cfg.iqSize + 1);
    // Progress resumes once the producer completes.
    drain();
    EXPECT_EQ(core.committedUops(), dispatched);
}

TEST_F(OooCoreTest, FlagsDependencyEnforced)
{
    // cmp -> branch chain through the flags register.
    core.dispatch(isa::makeAlu(isa::UopKind::Div, 1, 1, 1), 0, true,
                  false);
    core.dispatch(isa::makeCmp(1, 2), 0, true, false);
    UopToken br = core.dispatch(isa::makeBranch(), 0, true, false);
    // The branch depends (via flags) on cmp which depends on the div.
    for (int i = 0; i < 5; ++i)
        core.tick();
    EXPECT_FALSE(core.completed(br));
    runUntilComplete(br, 200);
}

TEST_F(OooCoreTest, RetiredVsCompleted)
{
    UopToken t = core.dispatch(isa::makeMovImm(1, 5), 0, true, false);
    EXPECT_FALSE(core.retired(t));
    runUntilComplete(t);
    drain();
    EXPECT_TRUE(core.retired(t));
}

TEST(OooCoreConfigTest, NarrowAndWidePresets)
{
    CoreConfig narrow = CoreConfig::narrow();
    CoreConfig wide = CoreConfig::wide();
    narrow.validate();
    wide.validate();
    EXPECT_EQ(narrow.width, 4u);
    EXPECT_EQ(wide.width, 8u);
    EXPECT_GT(wide.numAlu, narrow.numAlu);
}

TEST(OooCoreConfigTest, PoolMapping)
{
    EXPECT_EQ(poolOf(isa::ExecClass::IntAlu), UnitPool::Alu);
    EXPECT_EQ(poolOf(isa::ExecClass::Ctrl), UnitPool::Alu);
    EXPECT_EQ(poolOf(isa::ExecClass::IntDiv), UnitPool::MulDiv);
    EXPECT_EQ(poolOf(isa::ExecClass::Simd), UnitPool::Fp);
    EXPECT_EQ(poolOf(isa::ExecClass::MemStore), UnitPool::Mem);
}

} // namespace

namespace
{

using namespace parrot;
using namespace parrot::cpu;

TEST(MshrTest, MissesSerializeWithOneMshr)
{
    memory::Hierarchy mem{memory::HierarchyConfig{}};
    power::EnergyAccount energy;
    CoreConfig cfg = CoreConfig::narrow();
    cfg.numMshrs = 1;
    OooCore core(cfg, &mem, &energy);

    // Two independent loads to distinct cold lines.
    UopToken a = core.dispatch(isa::makeLoad(2, 1, 0), 0x100000, true,
                               false);
    UopToken b = core.dispatch(isa::makeLoad(3, 1, 0), 0x200000, true,
                               false);
    unsigned guard = 0;
    while (!core.completed(a) && ++guard < 2000)
        core.tick();
    Cycle t_a = core.now();
    while (!core.completed(b) && ++guard < 4000)
        core.tick();
    Cycle t_b = core.now();
    // With a single MSHR the second miss cannot overlap the first.
    EXPECT_GE(t_b, t_a + 80) << "misses must serialize with 1 MSHR";
}

TEST(MshrTest, MissesOverlapWithManyMshrs)
{
    memory::Hierarchy mem{memory::HierarchyConfig{}};
    power::EnergyAccount energy;
    CoreConfig cfg = CoreConfig::narrow();
    cfg.numMshrs = 8;
    OooCore core(cfg, &mem, &energy);

    UopToken a = core.dispatch(isa::makeLoad(2, 1, 0), 0x100000, true,
                               false);
    UopToken b = core.dispatch(isa::makeLoad(3, 1, 0), 0x200000, true,
                               false);
    unsigned guard = 0;
    while (!core.completed(a) && ++guard < 2000)
        core.tick();
    Cycle t_a = core.now();
    while (!core.completed(b) && ++guard < 4000)
        core.tick();
    Cycle t_b = core.now();
    EXPECT_LE(t_b, t_a + 10) << "independent misses should overlap";
}

TEST(MshrTest, HitsUnaffectedByFullMshrs)
{
    memory::Hierarchy mem{memory::HierarchyConfig{}};
    power::EnergyAccount energy;
    CoreConfig cfg = CoreConfig::narrow();
    cfg.numMshrs = 1;
    OooCore core(cfg, &mem, &energy);

    // Warm a line, then issue one miss plus one hit: the hit must not
    // wait for the MSHR.
    mem.accessData(0x300000, false);
    core.dispatch(isa::makeLoad(2, 1, 0), 0x400000, true, false); // miss
    UopToken hit = core.dispatch(isa::makeLoad(3, 1, 0), 0x300000, true,
                                 false);
    unsigned guard = 0;
    while (!core.completed(hit) && ++guard < 2000)
        core.tick();
    EXPECT_LT(core.now(), 20u) << "cache hits bypass the MSHR limit";
}

} // namespace
