/** @file Unit tests for the `.ptrace` codec: encode/decode fidelity,
 * replay identity, and the hostile-input rejection matrix. */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "verify/trace_fuzz.hh"
#include "workload/apps.hh"
#include "workload/executor.hh"
#include "workload/generator.hh"
#include "workload/trace_codec.hh"

namespace
{

using namespace parrot;
using namespace parrot::workload;

AppProfile
tinyProfile()
{
    AppProfile p;
    p.name = "tiny";
    p.seed = 77;
    p.numHotProcs = 2;
    p.numColdProcs = 4;
    p.blocksPerProc = 8;
    return p;
}

/** Encode `records` committed instructions of the tiny app. */
std::string
tinyTraceBytes(std::uint64_t records = 500)
{
    auto prog = generateProgram(tinyProfile());
    Executor ex(*prog, tinyProfile());
    TraceWriter writer(*prog, tinyProfile(), records);
    DynInst d;
    for (std::uint64_t i = 0; i < records; ++i) {
        EXPECT_TRUE(ex.next(d));
        writer.append(d);
    }
    return writer.finish();
}

/** A unique temp path (gtest runs tests in one process; a counter is
 * enough to avoid collisions). */
std::string
tempPath(const std::string &leaf)
{
    static int counter = 0;
    return (std::filesystem::temp_directory_path() /
            ("parrot_codec_" + std::to_string(++counter) + "_" + leaf))
        .string();
}

TEST(TraceCodecTest, ProgramSurvivesEncodeDecodeDeepEqual)
{
    auto prog = generateProgram(tinyProfile());
    const std::string bytes = tinyTraceBytes(64);
    auto trace = decodeTraceBytes(bytes);
    const Program &got = *trace->program;

    ASSERT_EQ(got.procs.size(), prog->procs.size());
    for (std::size_t pi = 0; pi < got.procs.size(); ++pi) {
        const auto &gp = got.procs[pi];
        const auto &wp = prog->procs[pi];
        EXPECT_EQ(gp.isHot, wp.isHot);
        ASSERT_EQ(gp.blocks.size(), wp.blocks.size());
        for (std::size_t bi = 0; bi < gp.blocks.size(); ++bi) {
            const auto &gb = gp.blocks[bi];
            const auto &wb = wp.blocks[bi];
            ASSERT_EQ(gb.insts.size(), wb.insts.size());
            for (std::size_t ii = 0; ii < gb.insts.size(); ++ii) {
                const auto &gi = gb.insts[ii];
                const auto &wi = wb.insts[ii];
                EXPECT_EQ(gi.pc, wi.pc);
                EXPECT_EQ(gi.length, wi.length);
                EXPECT_EQ(gi.cti, wi.cti);
                EXPECT_EQ(gi.takenTarget, wi.takenTarget);
                ASSERT_EQ(gi.uops.size(), wi.uops.size());
                for (std::size_t ui = 0; ui < gi.uops.size(); ++ui) {
                    const auto &gu = gi.uops[ui];
                    const auto &wu = wi.uops[ui];
                    EXPECT_EQ(gu.kind, wu.kind);
                    EXPECT_EQ(gu.dst, wu.dst);
                    EXPECT_EQ(gu.src1, wu.src1);
                    EXPECT_EQ(gu.src2, wu.src2);
                    EXPECT_EQ(gu.imm, wu.imm);
                    EXPECT_EQ(gu.dst2, wu.dst2);
                    EXPECT_EQ(gu.src1b, wu.src1b);
                    EXPECT_EQ(gu.src2b, wu.src2b);
                    EXPECT_EQ(gu.laneKind, wu.laneKind);
                    EXPECT_EQ(gu.assertTarget, wu.assertTarget);
                }
                // The decoded program's memoized decode weight must
                // match what buildIndex computes for the original.
                EXPECT_EQ(gi.cachedDecodeWeight,
                          wi.computeDecodeWeight());
            }
            const auto &gt = gb.term;
            const auto &wt = wb.term;
            EXPECT_EQ(gt.kind, wt.kind);
            EXPECT_EQ(gt.takenBlock, wt.takenBlock);
            EXPECT_EQ(gt.fallBlock, wt.fallBlock);
            EXPECT_EQ(gt.calleeProc, wt.calleeProc);
            EXPECT_EQ(gt.takenBias, wt.takenBias);
            EXPECT_EQ(gt.avgTrips, wt.avgTrips);
            EXPECT_EQ(gt.patternLen, wt.patternLen);
            EXPECT_EQ(gt.patternBits, wt.patternBits);
            EXPECT_EQ(gt.switchTargets, wt.switchTargets);
        }
    }
}

TEST(TraceCodecTest, ReplayMatchesExecutorStreamExactly)
{
    constexpr std::uint64_t kRecords = 5000;
    auto prog = generateProgram(tinyProfile());
    auto trace = decodeTraceBytes(tinyTraceBytes(kRecords));
    EXPECT_EQ(trace->numRecords, kRecords);

    Executor ex(*prog, tinyProfile());
    TraceReplaySource replay(trace);
    DynInst de, dr;
    for (std::uint64_t i = 0; i < kRecords; ++i) {
        ASSERT_TRUE(ex.next(de));
        ASSERT_TRUE(replay.next(dr)) << "replay dry at " << i;
        ASSERT_EQ(dr.pc(), de.pc()) << "record " << i;
        ASSERT_EQ(dr.seq, de.seq);
        ASSERT_EQ(dr.taken, de.taken) << "record " << i;
        ASSERT_EQ(dr.nextPc, de.nextPc) << "record " << i;
        ASSERT_EQ(dr.memAddr, de.memAddr) << "record " << i;
        ASSERT_EQ(dr.inst->uops.size(), de.inst->uops.size());
    }
    // A finite recording then runs dry, unlike the generator.
    EXPECT_FALSE(replay.next(dr));
    EXPECT_EQ(replay.produced(), kRecords);
}

TEST(TraceCodecTest, ResetReplaysIdentically)
{
    auto trace = decodeTraceBytes(tinyTraceBytes(800));
    TraceReplaySource replay(trace);
    std::vector<Addr> first;
    DynInst d;
    while (replay.next(d))
        first.push_back(d.pc() ^ (d.nextPc << 1) ^ d.memAddr[0]);
    replay.reset();
    std::size_t i = 0;
    while (replay.next(d)) {
        ASSERT_LT(i, first.size());
        ASSERT_EQ(first[i], d.pc() ^ (d.nextPc << 1) ^ d.memAddr[0]);
        ++i;
    }
    EXPECT_EQ(i, first.size());
}

TEST(TraceCodecTest, HeaderIdentityFields)
{
    auto trace = decodeTraceBytes(tinyTraceBytes(100));
    EXPECT_EQ(trace->appName, "tiny");
    EXPECT_EQ(trace->group, BenchGroup::SpecInt);
    EXPECT_EQ(trace->seed, 77u);
    EXPECT_EQ(trace->intendedBudget, 100u);
    EXPECT_EQ(trace->numRecords, 100u);

    const AppProfile p = traceProfile(*trace);
    EXPECT_EQ(p.name, "tiny");
    EXPECT_EQ(p.seed, 77u);
}

// ---------------------------------------------------------------------
// The corrupt-input matrix. Every named corruption must be rejected
// with its own category and its own message — and parrot_cli / the
// tools map TraceFormatError to exit 2 (covered by the CI smoke).
// ---------------------------------------------------------------------

TEST(TraceCodecCorruptTest, EveryCategoryRejectsDistinctly)
{
    const std::string valid = tinyTraceBytes(64);
    const auto seeds = verify::craftRejectionSeeds(valid);

    // One crafted input per byte-reachable category (all but Io).
    std::set<TraceError> covered;
    std::map<std::string, std::string> message_to_category;
    for (const auto &seed : seeds) {
        try {
            decodeTraceBytes(seed.bytes);
            FAIL() << "corrupt input accepted: " << seed.comment;
        } catch (const TraceFormatError &e) {
            EXPECT_EQ(e.category(), seed.category)
                << seed.comment << " rejected as "
                << traceErrorName(e.category()) << ": " << e.what();
            covered.insert(e.category());
            // Distinct messages: two different corruption classes must
            // never produce the same diagnostic.
            auto [it, fresh] = message_to_category.emplace(
                e.what(), traceErrorName(seed.category));
            EXPECT_TRUE(fresh)
                << "duplicate message '" << e.what() << "' for "
                << traceErrorName(seed.category) << " and "
                << it->second;
        }
    }
    // Everything except the file-level Io category.
    EXPECT_EQ(covered.size(),
              static_cast<std::size_t>(TraceError::NumErrors) - 1);
    EXPECT_EQ(covered.count(TraceError::Io), 0u);
}

TEST(TraceCodecCorruptTest, NamedMatrixCases)
{
    const std::string valid = tinyTraceBytes(64);
    auto categoryOf = [](const std::string &bytes) {
        try {
            decodeTraceBytes(bytes);
            return TraceError::NumErrors;
        } catch (const TraceFormatError &e) {
            return e.category();
        }
    };

    // Zero-length file.
    EXPECT_EQ(categoryOf(""), TraceError::Empty);
    // Truncated header (mid fixed prelude and mid section framing).
    EXPECT_EQ(categoryOf(valid.substr(0, 5)),
              TraceError::TruncatedHeader);
    EXPECT_EQ(categoryOf(valid.substr(0, 11)),
              TraceError::TruncatedHeader);
    // Bad magic.
    {
        std::string b = valid;
        b[1] = 'X';
        EXPECT_EQ(categoryOf(b), TraceError::BadMagic);
    }
    // Bad (future) version: forward-compat policy is to reject.
    {
        std::string b = valid;
        b[4] = 2;
        EXPECT_EQ(categoryOf(b), TraceError::BadVersion);
    }
    // Flipped CRC byte (stored CRC corrupted, payload intact).
    {
        std::string b = valid;
        b[12] = static_cast<char>(b[12] ^ 0x40); // header CRC field
        EXPECT_EQ(categoryOf(b), TraceError::HeaderCrc);
    }
    // Mid-record EOF: cut inside the last record block's payload.
    EXPECT_EQ(categoryOf(valid.substr(0, valid.size() - 1)),
              TraceError::TruncatedRecords);

    // The craft helper covers varint overrun and uop over-declaration;
    // pin their exact messages here since the matrix calls them out.
    for (const auto &seed : verify::craftRejectionSeeds(valid)) {
        try {
            decodeTraceBytes(seed.bytes);
            FAIL() << "accepted: " << seed.comment;
        } catch (const TraceFormatError &e) {
            if (seed.category == TraceError::VarintOverrun) {
                EXPECT_NE(std::string(e.what()).find("varint"),
                          std::string::npos);
            } else if (seed.category == TraceError::CountMismatch) {
                EXPECT_NE(std::string(e.what()).find("uops"),
                          std::string::npos)
                    << e.what();
            }
        }
    }
}

TEST(TraceCodecCorruptTest, MissingFileIsIoError)
{
    try {
        loadTraceFile("/nonexistent/definitely/not/here.ptrace");
        FAIL() << "expected TraceFormatError";
    } catch (const TraceFormatError &e) {
        EXPECT_EQ(e.category(), TraceError::Io);
    }
}

TEST(TraceCodecCorruptTest, CategoryNamesRoundTrip)
{
    for (unsigned i = 0;
         i < static_cast<unsigned>(TraceError::NumErrors); ++i) {
        const auto cat = static_cast<TraceError>(i);
        EXPECT_EQ(traceErrorFromName(traceErrorName(cat)), cat);
    }
    EXPECT_EQ(traceErrorFromName("NotACategory"),
              TraceError::NumErrors);
}

// ---------------------------------------------------------------------
// File round trip through the atomic-file layer, on an odd path.
// ---------------------------------------------------------------------

TEST(TraceCodecFileTest, RecordWriteThenLoadIdentityOnOddPath)
{
    const std::string dir =
        tempPath("odd dir.with spaces && dots");
    ASSERT_TRUE(std::filesystem::create_directories(dir));
    const std::string path = dir + "/re mounted..trace file.ptrace";

    auto entry = findApp("crafty");
    const auto stats = recordTrace(entry, 2000, path);
    EXPECT_EQ(stats.intendedBudget, 2000u);
    EXPECT_EQ(stats.records, 2000u + ptraceRecordMargin);
    EXPECT_GT(stats.fileBytes, 0u);

    // Loaded bytes must be exactly what the writer produced.
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::string on_disk((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(on_disk.size(), stats.fileBytes);

    auto trace = loadTraceFile(path);
    EXPECT_EQ(trace->appName, "crafty");
    EXPECT_EQ(trace->numRecords, stats.records);
    EXPECT_EQ(trace->numUops, stats.uops);
    EXPECT_EQ(trace->numCtis, stats.ctis);

    const SuiteEntry cell = traceSuiteEntry(path);
    EXPECT_EQ(cell.profile.name, "crafty");
    EXPECT_EQ(cell.defaultInstBudget, 2000u);
    EXPECT_EQ(cell.tracePath, path);

    std::filesystem::remove_all(dir);
}

TEST(TraceCodecFileTest, UnwritablePathIsIoError)
{
    auto entry = findApp("swim");
    try {
        recordTrace(entry, 100, "/nonexistent-dir-xyz/out.ptrace");
        FAIL() << "expected TraceFormatError";
    } catch (const TraceFormatError &e) {
        EXPECT_EQ(e.category(), TraceError::Io);
    }
}

} // namespace
