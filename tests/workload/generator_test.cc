/** @file Unit tests for the synthetic program generator. */

#include <gtest/gtest.h>

#include "isa/registers.hh"
#include "workload/apps.hh"
#include "workload/generator.hh"

namespace
{

using namespace parrot;
using namespace parrot::workload;

AppProfile
tinyProfile()
{
    AppProfile p;
    p.name = "tiny";
    p.seed = 1234;
    p.numHotProcs = 2;
    p.numColdProcs = 4;
    p.blocksPerProc = 8;
    return p;
}

TEST(GeneratorTest, DeterministicFromSeed)
{
    auto a = generateProgram(tinyProfile());
    auto b = generateProgram(tinyProfile());
    ASSERT_EQ(a->procs.size(), b->procs.size());
    EXPECT_EQ(a->numStaticInsts(), b->numStaticInsts());
    EXPECT_EQ(a->codeBytes(), b->codeBytes());
    // Compare instruction streams structurally.
    for (std::size_t p = 0; p < a->procs.size(); ++p) {
        ASSERT_EQ(a->procs[p].blocks.size(), b->procs[p].blocks.size());
        for (std::size_t blk = 0; blk < a->procs[p].blocks.size(); ++blk) {
            const auto &ba = a->procs[p].blocks[blk];
            const auto &bb = b->procs[p].blocks[blk];
            ASSERT_EQ(ba.insts.size(), bb.insts.size());
            for (std::size_t i = 0; i < ba.insts.size(); ++i) {
                EXPECT_EQ(ba.insts[i].pc, bb.insts[i].pc);
                EXPECT_EQ(ba.insts[i].uops.size(),
                          bb.insts[i].uops.size());
            }
        }
    }
}

TEST(GeneratorTest, ProcedureCountMatchesProfile)
{
    auto prog = generateProgram(tinyProfile());
    EXPECT_EQ(prog->procs.size(), 1u + 2u + 4u);
    EXPECT_TRUE(prog->procs[0].isHot);  // main
    EXPECT_TRUE(prog->procs[1].isHot);
    EXPECT_FALSE(prog->procs[3].isHot);
}

TEST(GeneratorTest, AddressesContiguousWithinProcedure)
{
    auto prog = generateProgram(tinyProfile());
    for (const auto &proc : prog->procs) {
        Addr expect = proc.blocks.front().insts.front().pc;
        for (const auto &block : proc.blocks) {
            for (const auto &inst : block.insts) {
                EXPECT_EQ(inst.pc, expect);
                expect = inst.pc + inst.length;
            }
        }
    }
}

TEST(GeneratorTest, AddressesGloballyUnique)
{
    auto prog = generateProgram(tinyProfile());
    std::unordered_map<Addr, int> seen;
    for (const auto &proc : prog->procs)
        for (const auto &block : proc.blocks)
            for (const auto &inst : block.insts)
                EXPECT_EQ(seen[inst.pc]++, 0) << "duplicate pc";
}

TEST(GeneratorTest, InstLengthsWithinIsaBounds)
{
    auto prog = generateProgram(tinyProfile());
    for (const auto &proc : prog->procs) {
        for (const auto &block : proc.blocks) {
            for (const auto &inst : block.insts) {
                EXPECT_GE(inst.length, 1);
                EXPECT_LE(inst.length, isa::maxInstBytes);
                EXPECT_GE(inst.uops.size(), 1u);
                EXPECT_LE(inst.uops.size(), isa::maxUopsPerInst);
            }
        }
    }
}

TEST(GeneratorTest, CtiOnlyAsBlockTerminator)
{
    auto prog = generateProgram(tinyProfile());
    for (const auto &proc : prog->procs) {
        for (const auto &block : proc.blocks) {
            for (std::size_t i = 0; i + 1 < block.insts.size(); ++i)
                EXPECT_FALSE(block.insts[i].isCti())
                    << "CTI in the middle of a block";
        }
    }
}

TEST(GeneratorTest, TerminatorMetadataConsistent)
{
    auto prog = generateProgram(tinyProfile());
    for (const auto &proc : prog->procs) {
        int n = static_cast<int>(proc.blocks.size());
        for (const auto &block : proc.blocks) {
            const auto &t = block.term;
            switch (t.kind) {
              case TermKind::Cond:
              case TermKind::LoopBack:
                EXPECT_EQ(block.insts.back().cti, isa::CtiType::CondBranch);
                EXPECT_GE(t.takenBlock, 0);
                EXPECT_LT(t.takenBlock, n);
                EXPECT_GE(t.fallBlock, 0);
                EXPECT_LT(t.fallBlock, n);
                break;
              case TermKind::Call:
                EXPECT_EQ(block.insts.back().cti, isa::CtiType::Call);
                EXPECT_GT(t.calleeProc, 0);
                EXPECT_LT(t.calleeProc,
                          static_cast<int>(prog->procs.size()));
                break;
              case TermKind::Switch:
                EXPECT_EQ(block.insts.back().cti, isa::CtiType::JumpInd);
                EXPECT_GE(t.switchTargets.size(), 2u);
                for (int tgt : t.switchTargets) {
                    EXPECT_GE(tgt, 0);
                    EXPECT_LT(tgt, n);
                }
                break;
              case TermKind::Ret:
                EXPECT_EQ(block.insts.back().cti, isa::CtiType::Return);
                break;
              case TermKind::Jump:
                EXPECT_EQ(block.insts.back().cti, isa::CtiType::Jump);
                break;
              case TermKind::FallThrough:
                EXPECT_FALSE(block.insts.back().isCti());
                EXPECT_GE(t.fallBlock, 0);
                EXPECT_LT(t.fallBlock, n);
                break;
            }
        }
    }
}

TEST(GeneratorTest, LoopBackBranchesAreBackward)
{
    auto prog = generateProgram(tinyProfile());
    for (const auto &proc : prog->procs) {
        for (const auto &block : proc.blocks) {
            if (block.term.kind == TermKind::LoopBack) {
                const auto &br = block.insts.back();
                EXPECT_LT(br.takenTarget, br.pc)
                    << "loop-back branch must target backward";
            }
            if (block.term.kind == TermKind::Cond &&
                block.term.takenBlock != block.term.fallBlock) {
                const auto &br = block.insts.back();
                EXPECT_GT(br.takenTarget, br.pc)
                    << "diamond branches must target forward";
            }
        }
    }
}

TEST(GeneratorTest, TakenTargetsResolveToBlockStarts)
{
    auto prog = generateProgram(tinyProfile());
    for (const auto &proc : prog->procs) {
        for (const auto &block : proc.blocks) {
            const auto &t = block.term;
            const auto &last = block.insts.back();
            if (t.kind == TermKind::Cond || t.kind == TermKind::LoopBack ||
                t.kind == TermKind::Jump) {
                EXPECT_EQ(last.takenTarget,
                          proc.blocks[t.takenBlock].startPc());
            } else if (t.kind == TermKind::Call) {
                EXPECT_EQ(last.takenTarget,
                          prog->procs[t.calleeProc].entryPc());
            }
        }
    }
}

TEST(GeneratorTest, PcIndexFindsEveryInstruction)
{
    auto prog = generateProgram(tinyProfile());
    for (const auto &proc : prog->procs)
        for (const auto &block : proc.blocks)
            for (const auto &inst : block.insts)
                EXPECT_EQ(prog->instAt(inst.pc), &inst);
    EXPECT_EQ(prog->instAt(0xdeadbeef), nullptr);
}

TEST(GeneratorTest, ScratchRegistersNeverRead)
{
    // The dead-code guarantee: generated code never reads the scratch
    // registers, so intra-trace overwrites are provably dead.
    auto prog = generateProgram(findApp("gcc").profile);
    for (const auto &proc : prog->procs) {
        for (const auto &block : proc.blocks) {
            for (const auto &inst : block.insts) {
                for (const auto &uop : inst.uops) {
                    RegId srcs[4];
                    unsigned n = uop.sources(srcs);
                    for (unsigned i = 0; i < n; ++i) {
                        EXPECT_NE(srcs[i], regconv::regScratch0);
                        EXPECT_NE(srcs[i], regconv::regScratch1);
                    }
                }
            }
        }
    }
}

TEST(GeneratorTest, MainCallsBothHotAndColdProcs)
{
    auto prog = generateProgram(tinyProfile());
    const auto &main_proc = prog->procs[0];
    bool calls_hot = false, calls_cold = false;
    for (const auto &block : main_proc.blocks) {
        if (block.term.kind == TermKind::Call) {
            if (prog->procs[block.term.calleeProc].isHot)
                calls_hot = true;
            else
                calls_cold = true;
        }
    }
    EXPECT_TRUE(calls_hot);
    EXPECT_TRUE(calls_cold);
}

} // namespace
