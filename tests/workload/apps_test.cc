/** @file Unit tests for the 44-application benchmark suite. */

#include <gtest/gtest.h>

#include <set>

#include "workload/apps.hh"
#include "workload/executor.hh"
#include "workload/generator.hh"

namespace
{

using namespace parrot::workload;

TEST(AppsTest, SuiteHas44Applications)
{
    auto suite = fullSuite();
    EXPECT_EQ(suite.size(), 44u);
}

TEST(AppsTest, GroupSizesMatchPaper)
{
    EXPECT_EQ(groupSuite(BenchGroup::SpecInt).size(), 11u);
    EXPECT_EQ(groupSuite(BenchGroup::SpecFp).size(), 11u);
    EXPECT_EQ(groupSuite(BenchGroup::Office).size(), 6u);
    EXPECT_EQ(groupSuite(BenchGroup::Multimedia).size(), 11u);
    EXPECT_EQ(groupSuite(BenchGroup::DotNet).size(), 5u);
}

TEST(AppsTest, NamesUnique)
{
    std::set<std::string> names;
    for (const auto &entry : fullSuite())
        EXPECT_TRUE(names.insert(entry.profile.name).second)
            << "duplicate app " << entry.profile.name;
}

TEST(AppsTest, AllProfilesValidate)
{
    for (const auto &entry : fullSuite()) {
        SCOPED_TRACE(entry.profile.name);
        entry.profile.validate(); // fatal()s on failure
        EXPECT_GT(entry.defaultInstBudget, 0u);
    }
}

TEST(AppsTest, SeedsAreDistinct)
{
    std::set<std::uint64_t> seeds;
    for (const auto &entry : fullSuite())
        EXPECT_TRUE(seeds.insert(entry.profile.seed).second);
}

TEST(AppsTest, KillerAppsPresent)
{
    auto killers = killerApps();
    ASSERT_EQ(killers.size(), 3u);
    EXPECT_EQ(killers[0].profile.name, "flash");
    EXPECT_EQ(killers[1].profile.name, "wupwise");
    EXPECT_EQ(killers[2].profile.name, "perlbench");
}

TEST(AppsTest, FindAppReturnsRequested)
{
    EXPECT_EQ(findApp("swim").profile.name, "swim");
    EXPECT_EQ(findApp("swim").profile.group, BenchGroup::SpecFp);
}

TEST(AppsTest, SmallSuiteCoversEveryGroup)
{
    std::set<BenchGroup> groups;
    for (const auto &entry : smallSuite())
        groups.insert(entry.profile.group);
    EXPECT_EQ(groups.size(), 5u);
}

TEST(AppsTest, FpGroupMoreRegularThanInt)
{
    // The paper's key workload asymmetry: FP code is more predictable,
    // loopier and hotter than INT code.
    auto fp = groupSuite(BenchGroup::SpecFp);
    auto in = groupSuite(BenchGroup::SpecInt);
    double fp_bias = 0, in_bias = 0, fp_hot = 0, in_hot = 0;
    double fp_trips = 0, in_trips = 0;
    for (const auto &e : fp) {
        fp_bias += e.profile.branchBias;
        fp_hot += e.profile.hotness;
        fp_trips += e.profile.avgLoopTrips;
    }
    for (const auto &e : in) {
        in_bias += e.profile.branchBias;
        in_hot += e.profile.hotness;
        in_trips += e.profile.avgLoopTrips;
    }
    EXPECT_GT(fp_bias / fp.size(), in_bias / in.size());
    EXPECT_GT(fp_hot / fp.size(), in_hot / in.size());
    EXPECT_GT(fp_trips / fp.size(), in_trips / in.size());
}

TEST(AppsTest, EveryAppGeneratesAndRuns)
{
    // Smoke: all 44 apps generate and stream without panicking.
    for (const auto &entry : fullSuite()) {
        SCOPED_TRACE(entry.profile.name);
        auto prog = generateProgram(entry.profile);
        ASSERT_GT(prog->numStaticInsts(), 100u);
        Executor ex(*prog, entry.profile);
        DynInst d;
        for (int i = 0; i < 3000; ++i)
            ASSERT_TRUE(ex.next(d));
    }
}

} // namespace

namespace
{

using namespace parrot::workload;

class HotnessCalibrationTest
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(HotnessCalibrationTest, MeasuredHotFractionTracksProfile)
{
    auto entry = findApp(GetParam());
    auto prog = generateProgram(entry.profile);
    Executor ex(*prog, entry.profile);
    DynInst d;
    for (int i = 0; i < 150000; ++i)
        ex.next(d);
    // The work-based call-site calibration should land the measured
    // hot fraction near the profile target (generous band: trip-count
    // draws and 150K-instruction sampling add noise; overshoot is
    // bounded by construction).
    EXPECT_GT(ex.hotFraction(), entry.profile.hotness - 0.15)
        << "hotness undershoot";
    EXPECT_LT(ex.hotFraction(), std::min(1.01, entry.profile.hotness
                                                   + 0.15))
        << "hotness overshoot";
}

INSTANTIATE_TEST_SUITE_P(
    Apps, HotnessCalibrationTest,
    ::testing::Values("gcc", "gzip", "vortex", "swim", "lucas", "word",
                      "excel", "flash", "quake3", "dotnet-num-a"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
