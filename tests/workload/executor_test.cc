/** @file Unit tests for the functional workload executor. */

#include <gtest/gtest.h>

#include "workload/apps.hh"
#include "workload/executor.hh"
#include "workload/generator.hh"

namespace
{

using namespace parrot;
using namespace parrot::workload;

AppProfile
tinyProfile()
{
    AppProfile p;
    p.name = "tiny";
    p.seed = 77;
    p.numHotProcs = 2;
    p.numColdProcs = 4;
    p.blocksPerProc = 8;
    return p;
}

TEST(ExecutorTest, StreamsRequestedInstructions)
{
    auto prog = generateProgram(tinyProfile());
    Executor ex(*prog, tinyProfile());
    DynInst d;
    for (int i = 0; i < 5000; ++i)
        ASSERT_TRUE(ex.next(d));
    EXPECT_EQ(ex.instsExecuted(), 5000u);
    EXPECT_GE(ex.uopsExecuted(), 5000u);
}

TEST(ExecutorTest, DeterministicStream)
{
    auto prog = generateProgram(tinyProfile());
    Executor a(*prog, tinyProfile());
    Executor b(*prog, tinyProfile());
    DynInst da, db;
    for (int i = 0; i < 20000; ++i) {
        a.next(da);
        b.next(db);
        ASSERT_EQ(da.pc(), db.pc());
        ASSERT_EQ(da.taken, db.taken);
        ASSERT_EQ(da.nextPc, db.nextPc);
        ASSERT_EQ(da.memAddr, db.memAddr);
    }
}

TEST(ExecutorTest, ResetReplaysIdentically)
{
    auto prog = generateProgram(tinyProfile());
    Executor ex(*prog, tinyProfile());
    std::vector<Addr> first;
    DynInst d;
    for (int i = 0; i < 3000; ++i) {
        ex.next(d);
        first.push_back(d.pc());
    }
    ex.reset();
    for (int i = 0; i < 3000; ++i) {
        ex.next(d);
        ASSERT_EQ(d.pc(), first[i]);
    }
}

TEST(ExecutorTest, StreamIsSequentiallyConsistent)
{
    // Each instruction's nextPc must equal the pc of the instruction
    // that actually follows it in the stream.
    auto prog = generateProgram(tinyProfile());
    Executor ex(*prog, tinyProfile());
    DynInst d;
    ex.next(d);
    Addr expected = d.nextPc;
    for (int i = 0; i < 50000; ++i) {
        ex.next(d);
        ASSERT_EQ(d.pc(), expected)
            << "discontinuity at dynamic instruction " << i;
        expected = d.nextPc;
    }
}

TEST(ExecutorTest, NotTakenCtiFallsThrough)
{
    auto prog = generateProgram(tinyProfile());
    Executor ex(*prog, tinyProfile());
    DynInst d;
    int checked = 0;
    for (int i = 0; i < 50000 && checked < 100; ++i) {
        ex.next(d);
        if (d.isCti() && !d.taken) {
            EXPECT_EQ(d.nextPc, d.inst->nextPc());
            ++checked;
        }
    }
    EXPECT_GT(checked, 0);
}

TEST(ExecutorTest, TakenBranchGoesToStaticTarget)
{
    auto prog = generateProgram(tinyProfile());
    Executor ex(*prog, tinyProfile());
    DynInst d;
    int checked = 0;
    for (int i = 0; i < 50000 && checked < 200; ++i) {
        ex.next(d);
        if (d.taken && (d.inst->cti == isa::CtiType::CondBranch ||
                        d.inst->cti == isa::CtiType::Jump ||
                        d.inst->cti == isa::CtiType::Call)) {
            EXPECT_EQ(d.nextPc, d.inst->takenTarget);
            ++checked;
        }
    }
    EXPECT_GT(checked, 0);
}

TEST(ExecutorTest, MemoryAddressesOnlyOnMemUops)
{
    auto prog = generateProgram(tinyProfile());
    Executor ex(*prog, tinyProfile());
    DynInst d;
    for (int i = 0; i < 20000; ++i) {
        ex.next(d);
        for (unsigned u = 0; u < d.numUops(); ++u) {
            auto kind = d.inst->uops[u].kind;
            bool is_mem = (kind == isa::UopKind::Load ||
                           kind == isa::UopKind::Store);
            if (is_mem)
                EXPECT_NE(d.memAddr[u], 0u);
        }
    }
}

TEST(ExecutorTest, DataAddressesLandInDataRegion)
{
    auto prog = generateProgram(tinyProfile());
    Executor ex(*prog, tinyProfile());
    DynInst d;
    std::uint64_t in_region = 0, total = 0;
    for (int i = 0; i < 50000; ++i) {
        ex.next(d);
        for (unsigned u = 0; u < d.numUops(); ++u) {
            auto kind = d.inst->uops[u].kind;
            if (kind != isa::UopKind::Load && kind != isa::UopKind::Store)
                continue;
            ++total;
            // Region plus a small slack band (base-register offsets).
            if (d.memAddr[u] >= dataRegionBase &&
                d.memAddr[u] < dataRegionBase + (4u << 20)) {
                ++in_region;
            }
        }
    }
    ASSERT_GT(total, 0u);
    EXPECT_GT(static_cast<double>(in_region) / total, 0.95);
}

TEST(ExecutorTest, HotFractionApproximatesProfile)
{
    auto entry = findApp("swim");
    auto prog = generateProgram(entry.profile);
    Executor ex(*prog, entry.profile);
    DynInst d;
    for (int i = 0; i < 200000; ++i)
        ex.next(d);
    // swim is personalized to hotness 0.97; allow generous tolerance
    // since main/cold structure adds overhead.
    EXPECT_GT(ex.hotFraction(), 0.75);
}

TEST(ExecutorTest, IntAppsHaveNoFpUops)
{
    auto entry = findApp("gzip");
    auto prog = generateProgram(entry.profile);
    Executor ex(*prog, entry.profile);
    DynInst d;
    for (int i = 0; i < 20000; ++i) {
        ex.next(d);
        for (unsigned u = 0; u < d.numUops(); ++u) {
            auto cls = d.inst->uops[u].execClass();
            EXPECT_NE(cls, isa::ExecClass::FpAdd);
            EXPECT_NE(cls, isa::ExecClass::FpMul);
            EXPECT_NE(cls, isa::ExecClass::FpDiv);
        }
    }
}

TEST(ExecutorTest, FpAppsContainFpWork)
{
    auto entry = findApp("swim");
    auto prog = generateProgram(entry.profile);
    Executor ex(*prog, entry.profile);
    DynInst d;
    std::uint64_t fp = 0, total = 0;
    for (int i = 0; i < 50000; ++i) {
        ex.next(d);
        for (unsigned u = 0; u < d.numUops(); ++u) {
            ++total;
            auto cls = d.inst->uops[u].execClass();
            if (cls == isa::ExecClass::FpAdd ||
                cls == isa::ExecClass::FpMul ||
                cls == isa::ExecClass::FpDiv) {
                ++fp;
            }
        }
    }
    EXPECT_GT(static_cast<double>(fp) / total, 0.10);
}

TEST(ExecutorTest, LoopsActuallyIterate)
{
    // A backward-taken branch must appear repeatedly at the same pc.
    auto prog = generateProgram(tinyProfile());
    Executor ex(*prog, tinyProfile());
    DynInst d;
    std::unordered_map<Addr, int> backward_taken;
    for (int i = 0; i < 100000; ++i) {
        ex.next(d);
        if (d.taken && d.inst->isCondBranch() &&
            d.inst->takenTarget < d.pc()) {
            backward_taken[d.pc()]++;
        }
    }
    int max_repeats = 0;
    for (auto &[pc, count] : backward_taken)
        max_repeats = std::max(max_repeats, count);
    EXPECT_GT(max_repeats, 50);
}

} // namespace

namespace
{

using namespace parrot;
using namespace parrot::workload;

TEST(ExecutorBehaviorTest, StableLoopTripsWithoutJitter)
{
    AppProfile p;
    p.name = "stable";
    p.seed = 404;
    p.numHotProcs = 2;
    p.numColdProcs = 3;
    p.blocksPerProc = 10;
    p.loopTripJitter = 0.0;
    p.loopFraction = 0.8;
    auto prog = generateProgram(p);
    Executor ex(*prog, p);
    // Count consecutive taken-streak lengths per backward branch; with
    // zero jitter every visit of a loop must iterate identically.
    std::unordered_map<Addr, std::vector<int>> streaks;
    std::unordered_map<Addr, int> current;
    DynInst d;
    for (int i = 0; i < 150000; ++i) {
        ex.next(d);
        if (!d.inst->isCondBranch() || d.inst->takenTarget > d.pc())
            continue;
        if (d.taken) {
            ++current[d.pc()];
        } else {
            streaks[d.pc()].push_back(current[d.pc()]);
            current[d.pc()] = 0;
        }
    }
    int loops_checked = 0;
    for (const auto &[pc, lengths] : streaks) {
        if (lengths.size() < 3)
            continue;
        ++loops_checked;
        for (std::size_t k = 1; k < lengths.size(); ++k)
            EXPECT_EQ(lengths[k], lengths[0])
                << "loop @" << std::hex << pc
                << " changed trip count without jitter";
    }
    EXPECT_GT(loops_checked, 2);
}

TEST(ExecutorBehaviorTest, PatternBranchesFollowTheirPattern)
{
    // With patternFraction = 1 every non-loop conditional branch cycles
    // through a fixed direction pattern: its outcome stream must be
    // periodic with period <= 6.
    AppProfile p;
    p.name = "patterned";
    p.seed = 505;
    p.numHotProcs = 2;
    p.numColdProcs = 3;
    p.blocksPerProc = 10;
    p.patternFraction = 1.0;
    p.steadyBranchFraction = 0.0;
    auto prog = generateProgram(p);
    Executor ex(*prog, p);
    std::unordered_map<Addr, std::vector<bool>> outcomes;
    DynInst d;
    for (int i = 0; i < 120000; ++i) {
        ex.next(d);
        if (d.inst->isCondBranch() && d.inst->takenTarget > d.pc())
            outcomes[d.pc()].push_back(d.taken);
    }
    int checked = 0;
    for (const auto &[pc, seq] : outcomes) {
        if (seq.size() < 24)
            continue;
        bool periodic = false;
        for (unsigned period = 1; period <= 6 && !periodic; ++period) {
            bool ok = true;
            for (std::size_t k = period; k < seq.size() && ok; ++k)
                ok = (seq[k] == seq[k - period]);
            periodic = ok;
        }
        // Diamond branches get patterns with probability patternFraction;
        // loop-internal "skip" branches may be biased instead, so only
        // count the periodic ones — but most must be.
        checked += periodic ? 1 : 0;
    }
    EXPECT_GT(checked, 0) << "no periodic branch found";
}

} // namespace
