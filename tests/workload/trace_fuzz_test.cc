/** @file Tests for the `.ptrace` decoder fuzzer and the committed
 * rejection corpus (replayed here on every run). */

#include <gtest/gtest.h>

#include <array>
#include <filesystem>
#include <string>

#include "verify/trace_fuzz.hh"

namespace
{

using namespace parrot;
using namespace parrot::verify;
using workload::TraceError;

TEST(TraceFuzzTest, ValidTraceIsAccepted)
{
    const std::string bytes = makeTinyTraceBytes(3, 48);
    const TraceProbe p = probeTraceBytes(bytes);
    EXPECT_EQ(p.outcome, TraceProbeOutcome::Accepted) << p.message;
}

TEST(TraceFuzzTest, SmallCampaignRunsClean)
{
    TraceFuzzOptions opts;
    opts.iterations = 200;
    opts.seed = 42;
    opts.records = 32;
    TraceDecoderFuzzer fuzzer(opts);
    const TraceFuzzStats stats = fuzzer.run();
    EXPECT_TRUE(stats.clean())
        << (stats.failures.empty() ? std::string()
                                   : stats.failures.front().why);
    EXPECT_EQ(stats.iterations, 200u);
    // The targeted seeds alone cover every byte-reachable category.
    EXPECT_EQ(stats.categoriesCovered,
              static_cast<std::size_t>(TraceError::NumErrors) - 1);
}

TEST(TraceFuzzTest, CampaignIsDeterministic)
{
    TraceFuzzOptions opts;
    opts.iterations = 120;
    opts.seed = 9;
    opts.records = 24;
    const TraceFuzzStats a = TraceDecoderFuzzer(opts).run();
    const TraceFuzzStats b = TraceDecoderFuzzer(opts).run();
    EXPECT_EQ(a.accepted, b.accepted);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.byCategory, b.byCategory);
}

TEST(TraceFuzzTest, DdminShrinksAndPreservesCategory)
{
    const std::string base = makeTinyTraceBytes(5, 32);
    // Corrupt the magic: almost every byte is irrelevant to that
    // rejection, so ddmin should shrink the input dramatically.
    std::string corrupt = base;
    corrupt[0] = 'X';
    const std::string minimized =
        ddminReject(corrupt, TraceError::BadMagic);
    EXPECT_LT(minimized.size(), corrupt.size() / 4);
    const TraceProbe p = probeTraceBytes(minimized);
    EXPECT_EQ(p.outcome, TraceProbeOutcome::Rejected);
    EXPECT_EQ(p.category, TraceError::BadMagic);
}

TEST(TraceFuzzTest, CorpusTextRoundTrips)
{
    TraceCorpusEntry entry;
    entry.category = TraceError::RecordCrc;
    entry.bytes = std::string("\x00\x01\xff PTRC\x7f", 9);
    entry.comment = "first line\nsecond line";
    const std::string text = renderTraceCorpus(entry);

    TraceCorpusEntry parsed;
    std::string error;
    ASSERT_TRUE(parseTraceCorpus(text, parsed, &error)) << error;
    EXPECT_EQ(parsed.category, entry.category);
    EXPECT_EQ(parsed.bytes, entry.bytes);
    EXPECT_EQ(parsed.comment, entry.comment);
}

TEST(TraceFuzzTest, CorpusParserRejectsGarbage)
{
    TraceCorpusEntry out;
    std::string error;
    EXPECT_FALSE(parseTraceCorpus("not a corpus file", out, &error));
    EXPECT_FALSE(parseTraceCorpus(
        "parrot-ptrace-corpus v1\nerror NotACategory\nbytes 00\n", out,
        &error));
    EXPECT_FALSE(parseTraceCorpus(
        "parrot-ptrace-corpus v1\nerror BadMagic\nbytes 0g\n", out,
        &error));
    EXPECT_FALSE(parseTraceCorpus(
        "parrot-ptrace-corpus v1\nerror BadMagic\n", out, &error));
}

TEST(TraceFuzzTest, CraftedSeedsCoverEveryByteCategory)
{
    const auto seeds = craftRejectionSeeds(makeTinyTraceBytes(1, 32));
    std::size_t distinct = 0;
    std::array<bool, static_cast<std::size_t>(TraceError::NumErrors)>
        seen{};
    for (const auto &seed : seeds) {
        auto &flag = seen[static_cast<std::size_t>(seed.category)];
        if (!flag) {
            flag = true;
            ++distinct;
        }
    }
    EXPECT_EQ(distinct,
              static_cast<std::size_t>(TraceError::NumErrors) - 1);
}

// ---------------------------------------------------------------------
// The committed corpus under tests/workload/corpus/ replays on every
// run: each exemplar must still be rejected with its recorded
// category. A decoder change that accepts (or crashes on) one of
// these inputs fails here before it ships.
// ---------------------------------------------------------------------

TEST(TraceCorpusReplayTest, CommittedCorpusStillRejects)
{
    const std::string dir = PARROT_TRACE_CORPUS_DIR;
    ASSERT_TRUE(std::filesystem::is_directory(dir))
        << "missing corpus dir " << dir;
    const TraceReplayResult result = replayTraceCorpusDir(dir);
    EXPECT_GT(result.total, 0u) << "no corpus files under " << dir;
    EXPECT_EQ(result.failed, 0u);
    for (const auto &report : result.reports)
        ADD_FAILURE() << report;
}

} // namespace
