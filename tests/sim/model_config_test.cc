/** @file Unit tests for the seven machine-model configurations. */

#include <gtest/gtest.h>

#include "sim/model_config.hh"

namespace
{

using namespace parrot::sim;

TEST(ModelConfigTest, AllSevenModelsExist)
{
    auto names = ModelConfig::allNames();
    ASSERT_EQ(names.size(), 7u);
    for (const auto &name : names) {
        ModelConfig cfg = ModelConfig::make(name);
        EXPECT_EQ(cfg.name, name);
        cfg.validate();
    }
}

TEST(ModelConfigTest, TableThreeOneDimensions)
{
    // The T dimension.
    EXPECT_FALSE(ModelConfig::make("N").hasTraceCache);
    EXPECT_FALSE(ModelConfig::make("W").hasTraceCache);
    EXPECT_TRUE(ModelConfig::make("TN").hasTraceCache);
    EXPECT_TRUE(ModelConfig::make("TW").hasTraceCache);
    // The O dimension.
    EXPECT_FALSE(ModelConfig::make("TN").hasOptimizer);
    EXPECT_FALSE(ModelConfig::make("TW").hasOptimizer);
    EXPECT_TRUE(ModelConfig::make("TON").hasOptimizer);
    EXPECT_TRUE(ModelConfig::make("TOW").hasOptimizer);
    // The split dimension.
    EXPECT_TRUE(ModelConfig::make("TOS").splitCore);
    EXPECT_FALSE(ModelConfig::make("TOW").splitCore);
}

TEST(ModelConfigTest, WidthsPerModel)
{
    EXPECT_EQ(ModelConfig::make("N").coldCore.width, 4u);
    EXPECT_EQ(ModelConfig::make("W").coldCore.width, 8u);
    EXPECT_EQ(ModelConfig::make("TON").coldCore.width, 4u);
    EXPECT_EQ(ModelConfig::make("TOW").coldCore.width, 8u);
    auto tos = ModelConfig::make("TOS");
    EXPECT_EQ(tos.coldCore.width, 4u);
    EXPECT_EQ(tos.hotCore.width, 8u);
}

TEST(ModelConfigTest, PredictorSizesMatchPaper)
{
    // §4.2: baseline 4K-entry branch predictor; PARROT models use 2K
    // branch + 2K trace predictor.
    EXPECT_EQ(ModelConfig::make("N").branchPredictor.numEntries, 4096u);
    auto ton = ModelConfig::make("TON");
    EXPECT_EQ(ton.branchPredictor.numEntries, 2048u);
    EXPECT_EQ(ton.tracePredictor.numEntries, 2048u);
}

TEST(ModelConfigTest, AreaFactorsOrdered)
{
    // Leakage area: N < TN <= TON < W < TW <= TOW <= TOS.
    double n = ModelConfig::make("N").coreAreaFactor;
    double tn = ModelConfig::make("TN").coreAreaFactor;
    double ton = ModelConfig::make("TON").coreAreaFactor;
    double w = ModelConfig::make("W").coreAreaFactor;
    double tow = ModelConfig::make("TOW").coreAreaFactor;
    double tos = ModelConfig::make("TOS").coreAreaFactor;
    EXPECT_LT(n, tn);
    EXPECT_LE(tn, ton);
    EXPECT_LT(ton, w);
    EXPECT_LT(w, tow);
    EXPECT_LE(tow, tos);
}

TEST(ModelConfigTest, UnknownModelIsFatal)
{
    EXPECT_DEATH(ModelConfig::make("X"), "unknown model");
}

TEST(ModelConfigTest, FilterThresholdsGradual)
{
    auto cfg = ModelConfig::make("TON");
    EXPECT_LT(cfg.hotFilter.threshold, cfg.blazeFilter.threshold)
        << "blazing promotion must be rarer than hot promotion";
}

TEST(ModelConfigTest, WideFetchWiderThanNarrow)
{
    EXPECT_GT(ModelConfig::make("W").decoder.fetchBytes,
              ModelConfig::make("N").decoder.fetchBytes);
}

} // namespace
