/** @file Unit tests for the model configuration file format. */

#include <gtest/gtest.h>

#include "power/power_state.hh"
#include "sim/config_file.hh"

namespace
{

using namespace parrot::sim;
using parrot::power::GateMode;
using parrot::power::GatedUnit;

TEST(ConfigFileTest, EmptyTextIsBaselineN)
{
    ModelConfig cfg = parseModelConfig("");
    EXPECT_EQ(cfg.coldCore.width, 4u);
    EXPECT_FALSE(cfg.hasTraceCache);
}

TEST(ConfigFileTest, BaseDirectiveSelectsModel)
{
    ModelConfig cfg = parseModelConfig("base = TON\n");
    EXPECT_TRUE(cfg.hasTraceCache);
    EXPECT_TRUE(cfg.hasOptimizer);
    EXPECT_EQ(cfg.name, "TON");
}

TEST(ConfigFileTest, OverridesApply)
{
    ModelConfig cfg = parseModelConfig(
        "base = TON\n"
        "name = TON-big\n"
        "trace_cache.entries = 2048\n"
        "hot_filter.threshold = 8\n"
        "core.width = 4\n"
        "l2.kb = 2048\n");
    EXPECT_EQ(cfg.name, "TON-big");
    EXPECT_EQ(cfg.traceCache.numEntries, 2048u);
    EXPECT_EQ(cfg.hotFilter.threshold, 8u);
    EXPECT_DOUBLE_EQ(cfg.memory.l2MegaBytes(), 2.0);
}

TEST(ConfigFileTest, CommentsAndBlankLines)
{
    ModelConfig cfg = parseModelConfig(
        "# a comment\n"
        "\n"
        "base = W   # trailing comment\n"
        "   \n"
        "core.rob = 256\n");
    EXPECT_EQ(cfg.coldCore.width, 8u);
    EXPECT_EQ(cfg.coldCore.robSize, 256u);
}

TEST(ConfigFileTest, WidthAlsoSetsIssueWidth)
{
    ModelConfig cfg = parseModelConfig("core.width = 8\ncore.alu = 6\n");
    EXPECT_EQ(cfg.coldCore.issueWidth, 8u);
}

TEST(ConfigFileTest, UnknownKeyIsFatal)
{
    EXPECT_DEATH(parseModelConfig("core.widht = 4\n"), "unknown key");
}

TEST(ConfigFileTest, MalformedValueIsFatal)
{
    EXPECT_DEATH(parseModelConfig("core.rob = many\n"), "bad unsigned");
}

TEST(ConfigFileTest, MissingEqualsIsFatal)
{
    EXPECT_DEATH(parseModelConfig("core.rob 128\n"), "expected");
}

TEST(ConfigFileTest, LateBaseIsFatal)
{
    EXPECT_DEATH(parseModelConfig("core.rob = 128\nbase = W\n"),
                 "must be the first");
}

TEST(ConfigFileTest, InvalidResultingConfigIsFatal)
{
    // A trace-cache set count that is not a power of two fails the
    // final validation.
    EXPECT_DEATH(parseModelConfig("base = TON\ntrace_cache.entries = 100\n"),
                 "power of two");
}

// ---------------------------------------------------------------------
// Error-path coverage: every rejection names the offending key/value so
// a bad experiment config dies loudly rather than silently simulating
// the wrong machine.
// ---------------------------------------------------------------------

TEST(ConfigFileErrorTest, UnknownKeyNamesTheKey)
{
    EXPECT_DEATH(parseModelConfig("trace_cache.entires = 512\n"),
                 "unknown key 'trace_cache.entires'");
}

TEST(ConfigFileErrorTest, MalformedUnsignedNamesValueAndKey)
{
    EXPECT_DEATH(parseModelConfig("core.width = wide\n"),
                 "bad unsigned value 'wide' for key 'core.width'");
    // Trailing junk after the number is not silently dropped.
    EXPECT_DEATH(parseModelConfig("core.rob = 128x\n"), "bad unsigned");
}

TEST(ConfigFileErrorTest, MalformedDoubleIsFatal)
{
    EXPECT_DEATH(parseModelConfig("area_factor = big\n"),
                 "bad number 'big' for key");
}

TEST(ConfigFileErrorTest, MalformedBooleanIsFatal)
{
    EXPECT_DEATH(parseModelConfig("cosim = maybe\n"),
                 "bad boolean 'maybe' for key 'cosim'");
    EXPECT_DEATH(parseModelConfig("trace_cache.enabled = 2\n"),
                 "bad boolean");
}

TEST(ConfigFileErrorTest, CosimKeyParses)
{
    EXPECT_FALSE(parseModelConfig("base = TON\n").cosim);
    EXPECT_TRUE(parseModelConfig("base = TON\ncosim = true\n").cosim);
    EXPECT_FALSE(parseModelConfig("cosim = false\n").cosim);
}

TEST(ConfigFileErrorTest, OutOfRangeWidthFailsValidation)
{
    // width = 0 parses fine but must die in the final machine
    // validation, not produce a zero-wide core.
    EXPECT_DEATH(parseModelConfig("core.width = 0\n"),
                 "width must be >= 1");
}

TEST(ConfigFileErrorTest, RobTooSmallForWidthFailsValidation)
{
    EXPECT_DEATH(parseModelConfig("core.width = 8\ncore.rob = 4\n"),
                 "ROB/IQ too small for width");
}

TEST(ConfigFileErrorTest, ZeroFilterThresholdFailsValidation)
{
    EXPECT_DEATH(parseModelConfig("base = TON\nhot_filter.threshold = 0\n"),
                 "threshold must be >= 1");
}

TEST(ConfigFileErrorTest, MissingFileIsFatal)
{
    EXPECT_DEATH(loadModelConfig("/nonexistent/parrot-model.conf"),
                 "cannot open config file");
}

// ---------------------------------------------------------------------
// Power-state and DVFS keys.
// ---------------------------------------------------------------------

TEST(ConfigFilePowerTest, FreqKeyParses)
{
    ModelConfig cfg = parseModelConfig("freq_ghz = 1.5\n");
    EXPECT_DOUBLE_EQ(cfg.freqGHz, 1.5);
    EXPECT_DOUBLE_EQ(parseModelConfig("").freqGHz, 1.0);
}

TEST(ConfigFilePowerTest, OutOfRangeFreqFailsValidation)
{
    EXPECT_DEATH(parseModelConfig("freq_ghz = 9.0\n"),
                 "outside \\[0.25, 4.0\\]");
}

TEST(ConfigFilePowerTest, GlobalGateModeAppliesPresetToEveryUnit)
{
    ModelConfig cfg = parseModelConfig("base = TON\ngate.mode = power\n");
    for (const auto &p : cfg.powerState.unit) {
        EXPECT_EQ(p.mode, GateMode::PowerGate);
        EXPECT_EQ(p.sleepThreshold,
                  parrot::power::defaultPolicyFor(GateMode::PowerGate)
                      .sleepThreshold);
    }
}

TEST(ConfigFilePowerTest, GlobalThresholdAndWakeOverridePreset)
{
    ModelConfig cfg = parseModelConfig(
        "base = TON\n"
        "gate.mode = clock\n"
        "gate.threshold = 7\n"
        "gate.wake_latency = 3\n");
    for (const auto &p : cfg.powerState.unit) {
        EXPECT_EQ(p.mode, GateMode::ClockGate);
        EXPECT_EQ(p.sleepThreshold, 7u);
        EXPECT_EQ(p.wakeLatency, 3u);
    }
}

TEST(ConfigFilePowerTest, PerUnitKeysOverrideGlobal)
{
    ModelConfig cfg = parseModelConfig(
        "base = TON\n"
        "gate.mode = clock\n"
        "gate.decoder.mode = power\n"
        "gate.decoder.threshold = 12\n"
        "gate.tc_port.wake_latency = 5\n");
    EXPECT_EQ(cfg.powerState.of(GatedUnit::Decoder).mode,
              GateMode::PowerGate);
    EXPECT_EQ(cfg.powerState.of(GatedUnit::Decoder).sleepThreshold, 12u);
    EXPECT_EQ(cfg.powerState.of(GatedUnit::TcPort).mode,
              GateMode::ClockGate);
    EXPECT_EQ(cfg.powerState.of(GatedUnit::TcPort).wakeLatency, 5u);
    EXPECT_EQ(cfg.powerState.of(GatedUnit::BranchPred).mode,
              GateMode::ClockGate);
}

TEST(ConfigFilePowerTest, BadGateModeIsFatal)
{
    EXPECT_DEATH(parseModelConfig("gate.mode = sideways\n"),
                 "bad gate mode 'sideways'");
    EXPECT_DEATH(parseModelConfig("gate.decoder.mode = on\n"),
                 "bad gate mode");
}

TEST(ConfigFilePowerTest, DegenerateGatePolicyFailsValidation)
{
    EXPECT_DEATH(parseModelConfig(
                     "gate.mode = clock\ngate.threshold = 0\n"),
                 "sleep");
}

TEST(ConfigFilePowerTest, GateKeysRoundTripThroughRender)
{
    ModelConfig original = ModelConfig::make("TON");
    original.freqGHz = 1.2;
    original.powerState.applyAll(GateMode::PowerGate);
    original.powerState.of(GatedUnit::Decoder).sleepThreshold = 11;
    original.powerState.of(GatedUnit::TcPort).wakeLatency = 9;
    ModelConfig reparsed = parseModelConfig(
        "base = TON\n" + renderModelConfig(original));
    EXPECT_DOUBLE_EQ(reparsed.freqGHz, 1.2);
    for (unsigned i = 0; i < parrot::power::numGatedUnits; ++i) {
        const auto u = static_cast<GatedUnit>(i);
        EXPECT_EQ(reparsed.powerState.of(u).mode,
                  original.powerState.of(u).mode)
            << parrot::power::gatedUnitName(u);
        EXPECT_EQ(reparsed.powerState.of(u).sleepThreshold,
                  original.powerState.of(u).sleepThreshold);
        EXPECT_EQ(reparsed.powerState.of(u).wakeLatency,
                  original.powerState.of(u).wakeLatency);
    }
}

TEST(ConfigFilePowerTest, DisabledGatingRendersNoGateKeys)
{
    std::string text = renderModelConfig(ModelConfig::make("TON"));
    EXPECT_EQ(text.find("gate."), std::string::npos);
    EXPECT_NE(text.find("freq_ghz = 1"), std::string::npos);
}

TEST(ConfigFileTest, RenderRoundTrips)
{
    for (const auto &name : ModelConfig::allNames()) {
        ModelConfig original = ModelConfig::make(name);
        std::string text = renderModelConfig(original);
        ModelConfig reparsed = parseModelConfig(
            "base = " + name + "\n" + text);
        EXPECT_EQ(reparsed.coldCore.width, original.coldCore.width);
        EXPECT_EQ(reparsed.coldCore.robSize, original.coldCore.robSize);
        EXPECT_EQ(reparsed.decoder.fetchBytes,
                  original.decoder.fetchBytes);
        EXPECT_EQ(reparsed.hasTraceCache, original.hasTraceCache);
        EXPECT_EQ(reparsed.hasOptimizer, original.hasOptimizer);
        EXPECT_DOUBLE_EQ(reparsed.coreAreaFactor,
                         original.coreAreaFactor);
        if (original.hasTraceCache) {
            EXPECT_EQ(reparsed.traceCache.numEntries,
                      original.traceCache.numEntries);
            EXPECT_EQ(reparsed.hotFilter.threshold,
                      original.hotFilter.threshold);
        }
    }
}

} // namespace
