/** @file Unit tests for the model configuration file format. */

#include <gtest/gtest.h>

#include "sim/config_file.hh"

namespace
{

using namespace parrot::sim;

TEST(ConfigFileTest, EmptyTextIsBaselineN)
{
    ModelConfig cfg = parseModelConfig("");
    EXPECT_EQ(cfg.coldCore.width, 4u);
    EXPECT_FALSE(cfg.hasTraceCache);
}

TEST(ConfigFileTest, BaseDirectiveSelectsModel)
{
    ModelConfig cfg = parseModelConfig("base = TON\n");
    EXPECT_TRUE(cfg.hasTraceCache);
    EXPECT_TRUE(cfg.hasOptimizer);
    EXPECT_EQ(cfg.name, "TON");
}

TEST(ConfigFileTest, OverridesApply)
{
    ModelConfig cfg = parseModelConfig(
        "base = TON\n"
        "name = TON-big\n"
        "trace_cache.entries = 2048\n"
        "hot_filter.threshold = 8\n"
        "core.width = 4\n"
        "l2.kb = 2048\n");
    EXPECT_EQ(cfg.name, "TON-big");
    EXPECT_EQ(cfg.traceCache.numEntries, 2048u);
    EXPECT_EQ(cfg.hotFilter.threshold, 8u);
    EXPECT_DOUBLE_EQ(cfg.memory.l2MegaBytes(), 2.0);
}

TEST(ConfigFileTest, CommentsAndBlankLines)
{
    ModelConfig cfg = parseModelConfig(
        "# a comment\n"
        "\n"
        "base = W   # trailing comment\n"
        "   \n"
        "core.rob = 256\n");
    EXPECT_EQ(cfg.coldCore.width, 8u);
    EXPECT_EQ(cfg.coldCore.robSize, 256u);
}

TEST(ConfigFileTest, WidthAlsoSetsIssueWidth)
{
    ModelConfig cfg = parseModelConfig("core.width = 8\ncore.alu = 6\n");
    EXPECT_EQ(cfg.coldCore.issueWidth, 8u);
}

TEST(ConfigFileTest, UnknownKeyIsFatal)
{
    EXPECT_DEATH(parseModelConfig("core.widht = 4\n"), "unknown key");
}

TEST(ConfigFileTest, MalformedValueIsFatal)
{
    EXPECT_DEATH(parseModelConfig("core.rob = many\n"), "bad unsigned");
}

TEST(ConfigFileTest, MissingEqualsIsFatal)
{
    EXPECT_DEATH(parseModelConfig("core.rob 128\n"), "expected");
}

TEST(ConfigFileTest, LateBaseIsFatal)
{
    EXPECT_DEATH(parseModelConfig("core.rob = 128\nbase = W\n"),
                 "must be the first");
}

TEST(ConfigFileTest, InvalidResultingConfigIsFatal)
{
    // A trace-cache set count that is not a power of two fails the
    // final validation.
    EXPECT_DEATH(parseModelConfig("base = TON\ntrace_cache.entries = 100\n"),
                 "power of two");
}

TEST(ConfigFileTest, RenderRoundTrips)
{
    for (const auto &name : ModelConfig::allNames()) {
        ModelConfig original = ModelConfig::make(name);
        std::string text = renderModelConfig(original);
        ModelConfig reparsed = parseModelConfig(
            "base = " + name + "\n" + text);
        EXPECT_EQ(reparsed.coldCore.width, original.coldCore.width);
        EXPECT_EQ(reparsed.coldCore.robSize, original.coldCore.robSize);
        EXPECT_EQ(reparsed.decoder.fetchBytes,
                  original.decoder.fetchBytes);
        EXPECT_EQ(reparsed.hasTraceCache, original.hasTraceCache);
        EXPECT_EQ(reparsed.hasOptimizer, original.hasOptimizer);
        EXPECT_DOUBLE_EQ(reparsed.coreAreaFactor,
                         original.coreAreaFactor);
        if (original.hasTraceCache) {
            EXPECT_EQ(reparsed.traceCache.numEntries,
                      original.traceCache.numEntries);
            EXPECT_EQ(reparsed.hotFilter.threshold,
                      original.hotFilter.threshold);
        }
    }
}

} // namespace
