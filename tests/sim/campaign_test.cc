/**
 * @file
 * Integration tests for the multi-process sharded campaign runner:
 * byte-identity of serial / threaded / multi-process cache files,
 * SIGKILL-and-resume convergence, and worker-scoped fault injection.
 *
 * These tests set PARROT_FAULT_* variables and fork worker processes,
 * so they live in their own test binary (each gtest case runs in its
 * own process via ctest discovery, keeping the fault plans isolated).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/fault.hh"
#include "sim/campaign.hh"
#include "sim/result.hh"
#include "workload/apps.hh"

namespace
{

using namespace parrot;

sim::CampaignOptions
tinyCampaign(const std::string &cache, unsigned workers, unsigned jobs)
{
    sim::CampaignOptions opts;
    opts.cachePath = cache;
    opts.models = {"N", "TON"};
    opts.suite = {workload::findApp("swim"), workload::findApp("gcc")};
    opts.workers = workers;
    opts.run.instBudget = 20000;
    opts.run.jobs = jobs;
    opts.run.noLeakage = true;
    opts.run.maxRetries = 0;
    opts.run.retryBackoffMs = 1;
    opts.verbose = false;
    return opts;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

void
cleanup(const std::string &path)
{
    std::remove(path.c_str());
    std::remove((path + ".lock").c_str());
    for (unsigned w = 1; w <= 16; ++w) {
        std::remove((path + ".w" + std::to_string(w)).c_str());
        std::remove((path + ".w" + std::to_string(w) + ".lock").c_str());
    }
}

/**
 * The headline property: a campaign's compacted cache file is
 * byte-identical whether the grid was computed serially, on an
 * in-process thread pool, or sharded across worker processes.
 */
TEST(CampaignTest, SerialThreadedAndMultiProcessCachesAreByteIdentical)
{
    const std::string serial = "test_campaign_serial.tmp";
    const std::string threaded = "test_campaign_threaded.tmp";
    const std::string multi = "test_campaign_multi.tmp";
    cleanup(serial);
    cleanup(threaded);
    cleanup(multi);

    auto r1 = sim::runCampaign(tinyCampaign(serial, 1, 1));
    auto r2 = sim::runCampaign(tinyCampaign(threaded, 1, 2));
    auto r3 = sim::runCampaign(tinyCampaign(multi, 2, 1));

    EXPECT_TRUE(r1.converged);
    EXPECT_TRUE(r2.converged);
    EXPECT_TRUE(r3.converged);
    EXPECT_EQ(r1.exitCode(), 0);
    EXPECT_EQ(r3.ranCells, 4u);

    const std::string golden = slurp(serial);
    ASSERT_FALSE(golden.empty());
    EXPECT_EQ(slurp(threaded), golden) << "threaded run diverged";
    EXPECT_EQ(slurp(multi), golden) << "multi-process run diverged";

    cleanup(serial);
    cleanup(threaded);
    cleanup(multi);
}

/**
 * A worker SIGKILLed mid-campaign (via fault injection, after its
 * first journaled row) must not cost anything but its in-flight cell:
 * the next round respawns a replacement with a fresh worker index
 * (which the fault plan no longer matches) and the campaign converges
 * to the exact serial bytes.
 */
TEST(CampaignTest, KilledWorkerIsRespawnedAndConverges)
{
    const std::string serial = "test_campaign_kserial.tmp";
    const std::string killed = "test_campaign_killed.tmp";
    cleanup(serial);
    cleanup(killed);

    auto rs = sim::runCampaign(tinyCampaign(serial, 1, 1));
    ASSERT_TRUE(rs.converged);

    setenv("PARROT_FAULT_CRASH_AT_CELL", "1", 1); // SIGKILL after row 1
    setenv("PARROT_FAULT_WORKER", "1", 1);
    fault::resetForTest();
    auto rk = sim::runCampaign(tinyCampaign(killed, 2, 1));
    unsetenv("PARROT_FAULT_CRASH_AT_CELL");
    unsetenv("PARROT_FAULT_WORKER");
    fault::resetForTest();

    EXPECT_TRUE(rk.converged);
    EXPECT_EQ(rk.workerDeaths, 1u);
    EXPECT_GE(rk.rounds, 2u);
    EXPECT_EQ(rk.tombstones, 0u);
    EXPECT_EQ(rk.exitCode(), 0);
    EXPECT_EQ(slurp(killed), slurp(serial))
        << "killed-and-resumed campaign diverged from serial bytes";

    cleanup(serial);
    cleanup(killed);
}

/** A fault plan without PARROT_FAULT_WORKER targets worker index 0 —
 * the coordinator (or any plain single process) — so spawned workers
 * inheriting the environment must NOT trip it. */
TEST(CampaignTest, FaultPlansDefaultToCoordinatorScopeOnly)
{
    const std::string cache = "test_campaign_scope.tmp";
    cleanup(cache);

    setenv("PARROT_FAULT_FAIL_CELL", "1", 1); // would tombstone cell 1
    fault::resetForTest();
    auto report = sim::runCampaign(tinyCampaign(cache, 2, 1));
    unsetenv("PARROT_FAULT_FAIL_CELL");
    fault::resetForTest();

    EXPECT_TRUE(report.converged);
    EXPECT_EQ(report.tombstones, 0u)
        << "a coordinator-scoped fault leaked into a worker process";
    EXPECT_EQ(report.exitCode(), 0);
    cleanup(cache);
}

/** The converse: a plan scoped to worker 1 fires in worker 1 (its
 * first claimed cell tombstones) and nowhere else; the campaign still
 * converges and reports degraded (exit 3). */
TEST(CampaignTest, WorkerScopedFaultTombstonesOnlyThatWorker)
{
    const std::string cache = "test_campaign_wscope.tmp";
    cleanup(cache);

    setenv("PARROT_FAULT_FAIL_CELL", "1", 1);
    setenv("PARROT_FAULT_WORKER", "1", 1);
    fault::resetForTest();
    auto report = sim::runCampaign(tinyCampaign(cache, 2, 1));
    unsetenv("PARROT_FAULT_FAIL_CELL");
    unsetenv("PARROT_FAULT_WORKER");
    fault::resetForTest();

    EXPECT_TRUE(report.converged);
    EXPECT_EQ(report.tombstones, 1u);
    EXPECT_EQ(report.exitCode(), 3);
    cleanup(cache);
}

/** Journal shards left behind by a killed campaign are adopted at
 * startup: their cells count as cached and are not re-simulated. */
TEST(CampaignTest, AdoptsLeftoverShardsFromKilledCampaign)
{
    const std::string cache = "test_campaign_leftover.tmp";
    cleanup(cache);

    {
        // A dead campaign's worker shard holding one finished cell.
        std::ofstream out(cache + ".w7");
        out << sim::cacheHeaderLine() << '\n';
        sim::SimResult r;
        r.ipc = 1.5;
        out << sim::serializeCacheLine("N/swim/20000", r) << '\n';
    }

    auto opts = tinyCampaign(cache, 1, 1);
    auto report = sim::runCampaign(opts);
    EXPECT_TRUE(report.converged);
    EXPECT_EQ(report.cachedCells, 1u);
    EXPECT_EQ(report.ranCells, 3u);
    // The shard was consumed.
    std::ifstream shard(cache + ".w7");
    EXPECT_FALSE(shard.good());
    cleanup(cache);
}

/** A fully cached campaign is a no-op: nothing runs, nothing rewrites. */
TEST(CampaignTest, FullyCachedCampaignRunsNothing)
{
    const std::string cache = "test_campaign_cached.tmp";
    cleanup(cache);

    auto first = sim::runCampaign(tinyCampaign(cache, 1, 1));
    ASSERT_TRUE(first.converged);
    const std::string bytes = slurp(cache);

    auto second = sim::runCampaign(tinyCampaign(cache, 4, 2));
    EXPECT_TRUE(second.converged);
    EXPECT_EQ(second.ranCells, 0u);
    EXPECT_EQ(second.cachedCells, second.totalCells);
    EXPECT_EQ(second.rounds, 0u);
    EXPECT_EQ(slurp(cache), bytes);
    cleanup(cache);
}

TEST(CampaignTest, ExitCodeTruthTable)
{
    // Exit-code contract over the (converged, tombstones) plane. Code
    // 1 is reserved for correctness alarms (cosim mismatches): a grid
    // that merely exhausted --max-rounds with cells missing is
    // degraded output (3), never an alarm — and never a silent 0.
    sim::CampaignReport r;

    r.converged = true;
    r.tombstones = 0;
    EXPECT_EQ(r.exitCode(), 0);

    r.converged = true;
    r.tombstones = 2;
    EXPECT_EQ(r.exitCode(), 3);

    r.converged = false;
    r.tombstones = 0;
    EXPECT_EQ(r.exitCode(), 3)
        << "a non-converged campaign must report degraded results, "
           "not a correctness alarm";

    r.converged = false;
    r.tombstones = 1;
    EXPECT_EQ(r.exitCode(), 3);
}

TEST(CampaignTest, ExhaustedRoundsExitDegraded)
{
    // End-to-end: worker 1 is SIGKILLed mid-campaign, its in-flight
    // cell never reaches the cache, and --max-rounds 1 forbids the
    // respawn round that would finish it. The campaign exhausts its
    // rounds with cells missing — an incomplete grid that must exit
    // degraded (3), never the correctness-alarm code (1) that pre-fix
    // non-convergence mapped to, and never a silent 0.
    const std::string cache = "test_campaign_degraded.tmp";
    cleanup(cache);
    setenv("PARROT_FAULT_CRASH_AT_CELL", "1", 1);
    setenv("PARROT_FAULT_WORKER", "1", 1);
    fault::resetForTest();

    auto opts = tinyCampaign(cache, 2, 1);
    opts.maxRounds = 1;
    auto report = sim::runCampaign(opts);

    EXPECT_FALSE(report.converged);
    EXPECT_GT(report.missingCells, 0u);
    EXPECT_EQ(report.exitCode(), 3)
        << "an exhausted-rounds grid must exit degraded, not alarm";

    unsetenv("PARROT_FAULT_CRASH_AT_CELL");
    unsetenv("PARROT_FAULT_WORKER");
    fault::resetForTest();
    cleanup(cache);
}

} // namespace
