/**
 * @file
 * Warm-state checkpoint tests: the resume oracle and the hostile-input
 * matrix.
 *
 * The correctness contract is segmented identity: `run(M);
 * saveCheckpoint; loadCheckpoint (fresh process); run(N)` must produce
 * a SimResult bit-identical to the same simulator running `run(M);
 * run(N)` in one process — for trace-cache models, cosim-clean, across
 * applications. The container itself treats input as hostile: every
 * structural violation must be rejected with a stable
 * CheckpointError category and a distinct message (mirroring the
 * `.ptrace` corrupt-input matrix), never a crash or a silent
 * mis-resume.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "sim/checkpoint.hh"
#include "sim/result.hh"
#include "sim/simulator.hh"
#include "workload/apps.hh"

namespace
{

using namespace parrot;
using namespace parrot::sim;

constexpr std::uint64_t kMid = 30000;  //!< checkpoint position
constexpr std::uint64_t kFull = 60000; //!< final budget
constexpr double kPmax = 2.5;

class CheckpointTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        dir = (std::filesystem::temp_directory_path() /
               "parrot_checkpoint_tests")
                  .string();
        std::filesystem::create_directories(dir);
    }

    static void TearDownTestSuite()
    {
        std::filesystem::remove_all(dir);
        dir.clear();
    }

    static ModelConfig
    cosimConfig(const std::string &model)
    {
        ModelConfig cfg = ModelConfig::make(model);
        cfg.cosim = true; // resume must stay oracle-clean
        return cfg;
    }

    static Workload
    app(const std::string &name)
    {
        return loadWorkload(workload::findApp(name));
    }

    static void
    expectBitIdentical(const SimResult &a, const SimResult &b,
                       const std::string &what)
    {
        for (const auto &field : resultFields()) {
            const double x = field.get(a);
            const double y = field.get(b);
            std::uint64_t xb, yb;
            static_assert(sizeof x == sizeof xb);
            std::memcpy(&xb, &x, sizeof xb);
            std::memcpy(&yb, &y, sizeof yb);
            EXPECT_EQ(xb, yb)
                << what << ": field '" << field.key << "' diverges ("
                << x << " vs " << y << ")";
        }
    }

    static std::string
    readFile(const std::string &path)
    {
        std::ifstream in(path, std::ios::binary);
        return std::string(std::istreambuf_iterator<char>(in), {});
    }

    static void
    writeFile(const std::string &path, const std::string &bytes)
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }

    static std::string dir;
};

std::string CheckpointTest::dir;

TEST_F(CheckpointTest, ResumeBitIdenticalAcrossAppsAndModels)
{
    for (const char *model : {"TON", "TOS"}) {
        for (const char *name : {"swim", "gzip", "word", "flash"}) {
            const std::string what =
                std::string(model) + "/" + name;
            const std::string path = dir + "/" + what + ".pckp";
            std::filesystem::create_directories(
                std::filesystem::path(path).parent_path());

            const ModelConfig cfg = cosimConfig(model);
            const Workload load = app(name);

            // Reference: the same simulator, segmented in-process.
            ParrotSimulator ref(cfg, load);
            ref.run(kMid, kPmax);
            SimResult want = ref.run(kFull, kPmax);

            // Checkpoint path: save at kMid, resume in a fresh
            // simulator (fresh workload, fresh stats tree), finish.
            ParrotSimulator saver(cfg, load);
            saver.run(kMid, kPmax);
            saver.saveCheckpoint(path);

            ParrotSimulator resumer(cfg, load);
            resumer.loadCheckpoint(path);
            // Budgets overshoot by the commit-granularity remainder, so
            // the resume position is "wherever the saver stopped", not
            // the nominal budget.
            EXPECT_EQ(resumer.position(), saver.position()) << what;
            EXPECT_GE(resumer.position(), kMid) << what;
            SimResult got = resumer.run(kFull, kPmax);

            EXPECT_EQ(got.cosimMismatches, 0u) << what;
            expectBitIdentical(want, got, what);
        }
    }
}

TEST_F(CheckpointTest, ResumeBitIdenticalInSampledMode)
{
    // The sampled fetch-state machine (fast-forward counters, window
    // bookkeeping, warm-only structures) must survive the round trip
    // exactly like the detailed one.
    ModelConfig cfg = ModelConfig::make("TON");
    cfg.sampleWindow = 4000;
    cfg.sampleStride = 20000;
    const Workload load = app("swim");
    const std::string path = dir + "/sampled.pckp";

    ParrotSimulator ref(cfg, load);
    ref.run(kMid, kPmax);
    SimResult want = ref.run(kFull, kPmax);

    ParrotSimulator saver(cfg, load);
    saver.run(kMid, kPmax);
    saver.saveCheckpoint(path);
    ParrotSimulator resumer(cfg, load);
    resumer.loadCheckpoint(path);
    SimResult got = resumer.run(kFull, kPmax);

    expectBitIdentical(want, got, "TON/swim sampled");
}

TEST_F(CheckpointTest, SaveIsDeterministic)
{
    // Two identical runs must publish byte-identical checkpoint files
    // (serialization cannot depend on hash-map iteration order).
    const std::string a = dir + "/det_a.pckp";
    const std::string b = dir + "/det_b.pckp";
    for (const std::string &path : {a, b}) {
        ParrotSimulator sim(cosimConfig("TOS"), app("word"));
        sim.run(kMid, kPmax);
        sim.saveCheckpoint(path);
    }
    EXPECT_EQ(readFile(a), readFile(b));
}

TEST_F(CheckpointTest, CorruptInputMatrixYieldsDistinctCategories)
{
    CheckpointMeta meta;
    meta.model = "TON";
    meta.app = "swim";
    meta.seed = 7;
    meta.position = 123;
    meta.instBudget = 456;
    const std::string good = encodeCheckpoint(meta, "state-payload");

    // Sanity: the untampered image decodes.
    std::string state;
    EXPECT_EQ(decodeCheckpoint(good, state).app, "swim");
    EXPECT_EQ(state, "state-payload");

    struct Case
    {
        const char *name;
        std::string bytes;
        CheckpointError want;
    };
    std::string bad_magic = good;
    bad_magic[0] = 'X';
    std::string bad_version = good;
    bad_version[4] = char(0x7f);
    std::string bad_reserved = good;
    bad_reserved[6] = 1;
    std::string crc_flip = good;
    crc_flip[12] ^= 0x40; // inside the META section framing/payload
    std::string trailing = good + "x";
    const std::vector<Case> cases = {
        {"empty", std::string(), CheckpointError::Empty},
        {"bad magic", bad_magic, CheckpointError::BadMagic},
        {"bad version", bad_version, CheckpointError::BadVersion},
        {"bad reserved", bad_reserved, CheckpointError::BadReserved},
        {"truncated header", good.substr(0, 6),
         CheckpointError::Truncated},
        {"truncated section", good.substr(0, good.size() - 1),
         CheckpointError::Truncated},
        {"crc flip", crc_flip, CheckpointError::SectionCrc},
        {"trailing bytes", trailing, CheckpointError::TrailingBytes},
    };

    std::map<std::string, std::string> messages;
    for (const auto &c : cases) {
        std::string out;
        try {
            decodeCheckpoint(c.bytes, out);
            FAIL() << c.name << ": corrupt input was accepted";
        } catch (const CheckpointFormatError &e) {
            EXPECT_EQ(e.category(), c.want)
                << c.name << " -> " << checkpointErrorName(e.category())
                << " (" << e.what() << ")";
            messages[c.name] = e.what();
        }
    }
    // Distinct messages: an operator must be able to tell the failure
    // modes apart from the CLI error line alone.
    std::map<std::string, std::string> byMessage;
    for (const auto &[name, msg] : messages) {
        EXPECT_TRUE(byMessage.emplace(msg, name).second)
            << "'" << name << "' and '" << byMessage[msg]
            << "' share the message: " << msg;
    }
}

TEST_F(CheckpointTest, StructurallyInvalidMetaRejected)
{
    CheckpointMeta meta;
    meta.model = ""; // the decoder must refuse an unnamed cell
    meta.app = "swim";
    std::string state;
    EXPECT_THROW(
        {
            try {
                decodeCheckpoint(encodeCheckpoint(meta, "s"), state);
            } catch (const CheckpointFormatError &e) {
                EXPECT_EQ(e.category(), CheckpointError::BadMeta);
                throw;
            }
        },
        CheckpointFormatError);
}

TEST_F(CheckpointTest, MismatchedCellRejectedBeforeStateLoad)
{
    const std::string path = dir + "/mismatch.pckp";
    ParrotSimulator saver(cosimConfig("TON"), app("swim"));
    saver.run(kMid, kPmax);
    saver.saveCheckpoint(path);

    ParrotSimulator wrong_model(cosimConfig("TOS"), app("swim"));
    try {
        wrong_model.loadCheckpoint(path);
        FAIL() << "model mismatch was accepted";
    } catch (const CheckpointFormatError &e) {
        EXPECT_EQ(e.category(), CheckpointError::ModelMismatch);
    }

    ParrotSimulator wrong_app(cosimConfig("TON"), app("gzip"));
    try {
        wrong_app.loadCheckpoint(path);
        FAIL() << "app mismatch was accepted";
    } catch (const CheckpointFormatError &e) {
        EXPECT_EQ(e.category(), CheckpointError::AppMismatch);
    }
}

TEST_F(CheckpointTest, GarbageStatePayloadRejectedAsBadState)
{
    // Valid container, matching META, nonsense STATE: the state
    // decoder must throw BadState, not crash or half-apply.
    auto entry = workload::findApp("swim");
    CheckpointMeta meta;
    meta.model = "TON";
    meta.app = "swim";
    meta.seed = entry.profile.seed;
    meta.position = 100;
    meta.instBudget = kFull;
    const std::string path = dir + "/badstate.pckp";
    writeFile(path, encodeCheckpoint(meta, "not a state blob"));

    ParrotSimulator sim(cosimConfig("TON"), app("swim"));
    try {
        sim.loadCheckpoint(path);
        FAIL() << "garbage state was accepted";
    } catch (const CheckpointFormatError &e) {
        EXPECT_EQ(e.category(), CheckpointError::BadState);
    }
}

TEST_F(CheckpointTest, UnreadableFileRejectedAsIo)
{
    std::string state;
    try {
        readCheckpointFile(dir + "/does_not_exist.pckp", state);
        FAIL() << "missing file was accepted";
    } catch (const CheckpointFormatError &e) {
        EXPECT_EQ(e.category(), CheckpointError::Io);
    }
}

} // namespace
