/**
 * @file
 * Machine-level property sweeps: invariants that must hold for every
 * (model, application) combination — budget reached, energy accounting
 * consistent, coverage only where a trace cache exists, committed work
 * conserved across models.
 */

#include <gtest/gtest.h>

#include <map>

#include "sim/simulator.hh"
#include "workload/apps.hh"

namespace
{

using namespace parrot;
using namespace parrot::sim;

constexpr std::uint64_t kBudget = 50000;

/** One shared workload per app (programs are expensive to generate). */
Workload &
workloadFor(const std::string &app)
{
    static std::map<std::string, Workload> cache;
    auto it = cache.find(app);
    if (it == cache.end()) {
        it = cache.emplace(app, loadWorkload(workload::findApp(app)))
                 .first;
    }
    return it->second;
}

using Combo = std::tuple<const char *, const char *>; // model, app

class MachinePropertyTest : public ::testing::TestWithParam<Combo>
{
};

TEST_P(MachinePropertyTest, UniversalInvariants)
{
    const auto &[model, app] = GetParam();
    ParrotSimulator sim(ModelConfig::make(model), workloadFor(app));
    SimResult r = sim.run(kBudget, 100.0);

    // Budget reached, sane rates.
    EXPECT_GE(r.insts, kBudget);
    EXPECT_GT(r.ipc, 0.2);
    EXPECT_LT(r.ipc, 8.0);

    // Work accounting: without the optimizer every instruction is at
    // least one uop; the optimizer legitimately pushes committed uops
    // *below* one per instruction on hot code — that is its point.
    if (!ModelConfig::make(model).hasOptimizer) {
        EXPECT_GE(r.uops, r.insts);
        EXPECT_GE(r.upc, r.ipc);
    } else {
        EXPECT_GT(r.uops, r.insts / 2);
    }

    // Energy accounting.
    EXPECT_GT(r.dynamicEnergy, 0.0);
    EXPECT_GT(r.leakageEnergy, 0.0);
    EXPECT_NEAR(r.totalEnergy, r.dynamicEnergy + r.leakageEnergy,
                r.totalEnergy * 1e-9);
    double unit_sum = 0.0;
    for (double v : r.unitEnergy)
        unit_sum += v;
    EXPECT_NEAR(unit_sum, r.totalEnergy, r.totalEnergy * 1e-9);
    EXPECT_GT(r.cmpw, 0.0);

    // Trace machinery only on trace models.
    ModelConfig cfg = ModelConfig::make(model);
    if (cfg.hasTraceCache) {
        EXPECT_LE(r.coverage, 1.0);
        EXPECT_LE(r.traceMispredicts, r.tracePredictions);
        EXPECT_LE(r.tpHits, r.tpLookups);
    } else {
        EXPECT_DOUBLE_EQ(r.coverage, 0.0);
        EXPECT_EQ(r.tracePredictions, 0u);
        EXPECT_EQ(r.tracesInserted, 0u);
        EXPECT_EQ(static_cast<std::uint64_t>(
                      r.unitEnergy[static_cast<unsigned>(
                          power::PowerUnit::TraceUnit)]),
                  0u);
    }
    if (!cfg.hasOptimizer) {
        EXPECT_EQ(r.tracesOptimized, 0u);
        EXPECT_DOUBLE_EQ(r.dynamicUopReduction, 0.0);
    }
}

TEST_P(MachinePropertyTest, DeterministicReplay)
{
    const auto &[model, app] = GetParam();
    ParrotSimulator a(ModelConfig::make(model), workloadFor(app));
    ParrotSimulator b(ModelConfig::make(model), workloadFor(app));
    SimResult ra = a.run(kBudget, 50.0);
    SimResult rb = b.run(kBudget, 50.0);
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.uops, rb.uops);
    EXPECT_DOUBLE_EQ(ra.totalEnergy, rb.totalEnergy);
    EXPECT_EQ(ra.traceMispredicts, rb.traceMispredicts);
    EXPECT_EQ(ra.coldBranchMispredicts, rb.coldBranchMispredicts);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MachinePropertyTest,
    ::testing::Combine(::testing::Values("N", "W", "TN", "TON", "TOW",
                                         "TOS"),
                       ::testing::Values("gzip", "swim", "word",
                                         "flash")),
    [](const ::testing::TestParamInfo<Combo> &info) {
        std::string name = std::string(std::get<0>(info.param)) + "_" +
                           std::get<1>(info.param);
        return name;
    });

/** Cross-model conservation: optimization must not create work. */
TEST(CrossModelTest, OptimizationOnlyRemovesUops)
{
    for (const char *app : {"swim", "word", "gzip"}) {
        ParrotSimulator n(ModelConfig::make("N"), workloadFor(app));
        ParrotSimulator ton(ModelConfig::make("TON"), workloadFor(app));
        SimResult rn = n.run(kBudget, 0.0);
        SimResult rton = ton.run(kBudget, 0.0);
        EXPECT_LE(rton.uops, rn.uops)
            << app << ": TON commits at most as many uops as N";
        EXPECT_NEAR(static_cast<double>(rton.insts),
                    static_cast<double>(rn.insts), 1500.0)
            << app << ": same committed instructions";
    }
}

/** Width dominance: W never slower than N on identical work. */
TEST(CrossModelTest, WideNeverSlower)
{
    for (const char *app : {"swim", "word", "gzip", "flash"}) {
        ParrotSimulator n(ModelConfig::make("N"), workloadFor(app));
        ParrotSimulator w(ModelConfig::make("W"), workloadFor(app));
        EXPECT_GE(w.run(kBudget, 0.0).ipc * 1.02,
                  n.run(kBudget, 0.0).ipc)
            << app;
    }
}

} // namespace
