/** @file Tests for the per-simulation wall-clock deadline watchdog. */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>

#include "common/fault.hh"
#include "sim/result.hh"
#include "sim/runner.hh"
#include "sim/simulator.hh"
#include "workload/apps.hh"

namespace
{

using namespace parrot;

TEST(DeadlineTest, ThrowsWhenWallClockBudgetExpires)
{
    auto entry = workload::findApp("swim");
    sim::Workload load = sim::loadWorkload(entry);
    sim::ParrotSimulator s(sim::ModelConfig::make("N"), load);
    // A budget far beyond what 1 ms of wall clock can simulate: the
    // watchdog must fire long before the instruction budget is met.
    EXPECT_THROW(s.run(/*inst_budget=*/20'000'000,
                       /*pmax_per_cycle=*/0.0, /*deadline_ms=*/1),
                 sim::DeadlineExceeded);
}

TEST(DeadlineTest, GenerousDeadlineIsObservationallyPure)
{
    auto entry = workload::findApp("swim");
    sim::Workload load = sim::loadWorkload(entry);
    // A deadline that never trips must not perturb a single metric:
    // the watchdog only reads the clock.
    sim::ParrotSimulator without(sim::ModelConfig::make("TON"), load);
    sim::SimResult a = without.run(50'000, 0.0);
    sim::ParrotSimulator with(sim::ModelConfig::make("TON"), load);
    sim::SimResult b = with.run(50'000, 0.0, /*deadline_ms=*/60'000);
    for (const auto &f : sim::resultFields())
        EXPECT_EQ(f.get(a), f.get(b)) << f.key;
}

TEST(DeadlineTest, InjectedStallIsSlicedAgainstTheDeadline)
{
    // The injected PARROT_FAULT_SLOW_CELL stall dwarfs the deadline by
    // 200x. Pre-fix the stall slept in one unbounded chunk, so the run
    // held the worker hostage for the full stall before the watchdog
    // could fire; sliced sleeping must abort within the deadline's
    // order of magnitude instead.
    setenv("PARROT_FAULT_SLOW_CELL", "1", 1);
    setenv("PARROT_FAULT_SLOW_MS", "10000", 1);
    fault::resetForTest();
    fault::armAttempt(/*cell=*/1, /*attempt=*/1);

    auto entry = workload::findApp("swim");
    sim::Workload load = sim::loadWorkload(entry);
    sim::ParrotSimulator s(sim::ModelConfig::make("N"), load);
    const auto start = std::chrono::steady_clock::now();
    EXPECT_THROW(s.run(/*inst_budget=*/50'000, /*pmax_per_cycle=*/0.0,
                       /*deadline_ms=*/50),
                 sim::DeadlineExceeded);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    // Generous bound: far below the 10 s stall, far above the 50 ms
    // deadline plus scheduler noise.
    EXPECT_LT(elapsed, 2000) << "stall was not sliced by the watchdog";

    unsetenv("PARROT_FAULT_SLOW_CELL");
    unsetenv("PARROT_FAULT_SLOW_MS");
    fault::resetForTest();
}

TEST(DeadlineTest, TimedOutCellTombstonesInsteadOfAbortingSuite)
{
    // Cell 1 (swim) stalls 400 ms per attempt against a 150 ms
    // deadline; cell 2 (word) is healthy. The suite must finish with a
    // tombstone in slot 0 and a real result in slot 1.
    setenv("PARROT_FAULT_SLOW_CELL", "1", 1);
    setenv("PARROT_FAULT_SLOW_MS", "400", 1);
    fault::resetForTest();

    sim::RunOptions opts;
    opts.instBudget = 50'000;
    opts.noLeakage = true;
    opts.jobs = 1; // cell indices must follow suite order
    opts.deadlineMs = 150;
    opts.maxRetries = 1;
    opts.retryBackoffMs = 1;
    sim::SuiteRunner runner(opts);
    std::vector<workload::SuiteEntry> suite{workload::findApp("swim"),
                                            workload::findApp("word")};
    auto results = runner.runSuite("TON", suite);

    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].tombstone);
    EXPECT_EQ(results[0].model, "TON");
    EXPECT_EQ(results[0].app, "swim");
    EXPECT_EQ(results[0].attempts, 2u); // initial try + one retry
    EXPECT_FALSE(results[1].tombstone);
    EXPECT_GT(results[1].ipc, 0.0);

    unsetenv("PARROT_FAULT_SLOW_CELL");
    unsetenv("PARROT_FAULT_SLOW_MS");
    fault::resetForTest();
}

} // namespace
