/** @file The round-trip oracle: generate → record → ingest → simulate
 * must be bit-identical in SimResult to the direct generator run, for
 * every app, on the full PARROT models, cosim-clean — and parallel
 * SuiteRunner execution over trace-file cells must match serial. */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "sim/result.hh"
#include "sim/runner.hh"
#include "sim/simulator.hh"
#include "workload/apps.hh"
#include "workload/trace_codec.hh"

namespace
{

using namespace parrot;
using namespace parrot::sim;

/** Budget small enough for 44 apps x 2 models x 2 runs to stay cheap,
 * large enough that the trace cache, optimizer and predictors all see
 * real traffic (hot traces build well before 10k insts). */
constexpr std::uint64_t kBudget = 10000;

/** Fixed Pmax so no calibration run is needed (value irrelevant for
 * identity: both sides use the same one). */
constexpr double kPmax = 2.5;

class TraceRoundTripTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        dir = (std::filesystem::temp_directory_path() /
               "parrot_roundtrip_traces")
                  .string();
        std::filesystem::create_directories(dir);
    }

    static void TearDownTestSuite()
    {
        std::filesystem::remove_all(dir);
        dir.clear();
    }

    /** Record (once) and return the trace cell for an app. */
    static workload::SuiteEntry
    traceCell(const workload::SuiteEntry &entry)
    {
        const std::string path =
            dir + "/" + entry.profile.name + ".ptrace";
        if (!std::filesystem::exists(path))
            workload::recordTrace(entry, kBudget, path);
        return workload::traceSuiteEntry(path);
    }

    static void
    expectBitIdentical(const SimResult &direct, const SimResult &replay,
                       const std::string &what)
    {
        for (const auto &field : resultFields()) {
            const double d = field.get(direct);
            const double r = field.get(replay);
            // Bitwise comparison: NaN == NaN, -0 != +0.
            std::uint64_t db, rb;
            static_assert(sizeof d == sizeof db);
            std::memcpy(&db, &d, sizeof db);
            std::memcpy(&rb, &r, sizeof rb);
            EXPECT_EQ(db, rb)
                << what << ": field '" << field.key
                << "' diverges (direct " << d << ", replay " << r
                << ")";
        }
    }

    static std::string dir;
};

std::string TraceRoundTripTest::dir;

TEST_F(TraceRoundTripTest, AllAppsBitIdenticalOnTONAndTOS)
{
    RunOptions opts;
    opts.instBudget = kBudget;
    opts.pmaxPerCycle = kPmax;
    opts.jobs = 0; // worker pool; identity must hold regardless

    const auto suite = workload::fullSuite();
    ASSERT_EQ(suite.size(), 44u);

    std::vector<workload::SuiteEntry> traced;
    traced.reserve(suite.size());
    for (const auto &entry : suite)
        traced.push_back(traceCell(entry));

    for (const char *model : {"TON", "TOS"}) {
        ModelConfig cfg = ModelConfig::make(model);
        cfg.cosim = true; // the oracle must stay clean on replay

        SuiteRunner direct_runner(opts);
        SuiteRunner replay_runner(opts);
        const auto direct = direct_runner.runSuite(cfg, suite);
        const auto replay = replay_runner.runSuite(cfg, traced);
        ASSERT_EQ(direct.size(), replay.size());

        for (std::size_t i = 0; i < direct.size(); ++i) {
            ASSERT_FALSE(direct[i].tombstone)
                << model << "/" << suite[i].profile.name;
            ASSERT_FALSE(replay[i].tombstone)
                << model << "/" << suite[i].profile.name;
            EXPECT_EQ(replay[i].app, direct[i].app);
            EXPECT_EQ(replay[i].cosimMismatches, 0u)
                << model << "/" << suite[i].profile.name;
            expectBitIdentical(direct[i], replay[i],
                               std::string(model) + "/" +
                                   suite[i].profile.name);
        }
    }
}

TEST_F(TraceRoundTripTest, ParallelTraceSuiteMatchesSerial)
{
    std::vector<workload::SuiteEntry> traced;
    for (const auto &entry : workload::smallSuite())
        traced.push_back(traceCell(entry));
    ASSERT_GE(traced.size(), 2u);

    ModelConfig cfg = ModelConfig::make("TON");

    RunOptions serial_opts;
    serial_opts.instBudget = kBudget;
    serial_opts.pmaxPerCycle = kPmax;
    serial_opts.jobs = 1;
    RunOptions parallel_opts = serial_opts;
    parallel_opts.jobs = 4;

    SuiteRunner serial(serial_opts);
    SuiteRunner parallel(parallel_opts);
    const auto a = serial.runSuite(cfg, traced);
    const auto b = parallel.runSuite(cfg, traced);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].app, b[i].app);
        expectBitIdentical(a[i], b[i],
                           "parallel/" + traced[i].profile.name);
    }
}

TEST_F(TraceRoundTripTest, ConfigTraceFileRedirectsEveryCell)
{
    // The config-level trace_file key routes any cell through the
    // recording, equivalent to naming the trace in the entry itself.
    auto swim = traceCell(workload::findApp("swim"));

    RunOptions opts;
    opts.instBudget = kBudget;
    opts.pmaxPerCycle = kPmax;

    ModelConfig plain = ModelConfig::make("TON");
    SuiteRunner entry_runner(opts);
    const auto via_entry = entry_runner.runOne(plain, swim);

    ModelConfig redirected = ModelConfig::make("TON");
    redirected.traceFile = swim.tracePath;
    SuiteRunner cfg_runner(opts);
    const auto via_config =
        cfg_runner.runOne(redirected, workload::findApp("swim"));

    expectBitIdentical(via_entry, via_config, "config trace_file");
}

TEST_F(TraceRoundTripTest, ExhaustedTraceFailsLoudly)
{
    // A budget beyond what the recording carries must abort the cell
    // (SuiteRunner turns this into a retry/tombstone), never silently
    // report a short run.
    auto swim = traceCell(workload::findApp("swim"));
    ModelConfig cfg = ModelConfig::make("TON");
    Workload w = loadWorkload(swim);
    ParrotSimulator sim(cfg, w);
    EXPECT_THROW(
        sim.run(kBudget + workload::ptraceRecordMargin + 1000, kPmax),
        std::runtime_error);
}

TEST_F(TraceRoundTripTest, MarginBoundaryDrainsGracefully)
{
    // The margin contract, exactly at the boundary: a recording holds
    // budget + ptraceRecordMargin records, so a run whose budget
    // equals the record count fetches the entire recording. The
    // source then runs dry while the tail is still committing — a
    // drain-phase exhaustion that must degrade gracefully (the budget
    // is still reachable from what was fetched), not abort the cell.
    auto swim = traceCell(workload::findApp("swim"));
    const std::uint64_t records =
        kBudget + workload::ptraceRecordMargin;

    for (const char *model : {"N", "TON"}) {
        ModelConfig cfg = ModelConfig::make(model);
        Workload w = loadWorkload(swim);
        ParrotSimulator sim(cfg, w);
        SimResult r;
        ASSERT_NO_THROW(r = sim.run(records, kPmax)) << model;
        EXPECT_GE(r.insts, records) << model;
    }

    // One record past the margin the budget is genuinely unreachable:
    // the loud failure contract still holds.
    ModelConfig cfg = ModelConfig::make("TON");
    Workload w = loadWorkload(swim);
    ParrotSimulator sim(cfg, w);
    EXPECT_THROW(sim.run(records + 1, kPmax), std::runtime_error);
}

} // namespace
