/**
 * @file
 * Power-state layer integration tests: observational purity when
 * disabled, real stalls and savings when enabled, and the DVFS axis.
 */

#include <gtest/gtest.h>

#include "power/power_state.hh"
#include "sim/result.hh"
#include "sim/simulator.hh"
#include "workload/apps.hh"

namespace
{

using namespace parrot;
using namespace parrot::sim;

constexpr std::uint64_t kBudget = 60000;

SimResult
runCfg(const ModelConfig &cfg, const std::string &app,
       std::uint64_t budget = kBudget, double pmax = 0.0)
{
    auto entry = workload::findApp(app);
    Workload w = loadWorkload(entry);
    ParrotSimulator sim(cfg, w);
    return sim.run(budget, pmax);
}

/** Every numeric result field, compared bit-for-bit. */
void
expectBitIdentical(const SimResult &a, const SimResult &b)
{
    for (const auto &f : resultFields()) {
        EXPECT_EQ(f.get(a), f.get(b)) << f.key;
    }
}

TEST(PowerStatePurityTest, DisabledLayerIsObservationallyPure)
{
    // An explicit all-Off, nominal-frequency config must be
    // bit-identical to the untouched default: the power-state layer
    // may not perturb timing or energy while disabled.
    ModelConfig base = ModelConfig::make("TON");
    ModelConfig explicit_off = ModelConfig::make("TON");
    explicit_off.freqGHz = 1.0;
    explicit_off.powerState.applyAll(power::GateMode::Off);
    SimResult a = runCfg(base, "swim", 120000, 200.0);
    SimResult b = runCfg(explicit_off, "swim", 120000, 200.0);
    expectBitIdentical(a, b);
    EXPECT_EQ(a.powerGatedCycles, 0u);
    EXPECT_EQ(a.powerWakeStalls, 0u);
    EXPECT_EQ(a.powerSleepEntries, 0u);
    EXPECT_DOUBLE_EQ(a.leakageSavedEnergy, 0.0);
}

TEST(PowerStatePurityTest, SplitCoreDisabledLayerIsPure)
{
    ModelConfig base = ModelConfig::make("TOS");
    ModelConfig explicit_off = ModelConfig::make("TOS");
    explicit_off.freqGHz = 1.0;
    explicit_off.powerState.applyAll(power::GateMode::Off);
    SimResult a = runCfg(base, "flash", 80000, 150.0);
    SimResult b = runCfg(explicit_off, "flash", 80000, 150.0);
    expectBitIdentical(a, b);
}

TEST(PowerStateSimTest, ClockGatingEngagesOnTraceModel)
{
    ModelConfig cfg = ModelConfig::make("TON");
    cfg.powerState.applyAll(power::GateMode::ClockGate);
    SimResult r = runCfg(cfg, "swim", 120000);
    EXPECT_GE(r.insts, 120000u);
    // A trace model alternates hot and cold fetch, so both the cold
    // front end and the trace-cache port accumulate gated time...
    EXPECT_GT(r.powerGatedCycles, 0u);
    EXPECT_GT(r.powerSleepEntries, 0u);
    // ...and waking them costs real stall cycles.
    EXPECT_GT(r.powerWakeStalls, 0u);
    // Clock gating saves no leakage (the rail stays up).
    EXPECT_DOUBLE_EQ(r.leakageSavedEnergy, 0.0);
}

TEST(PowerStateSimTest, GatingCostsCyclesButStaysCorrect)
{
    ModelConfig off = ModelConfig::make("TON");
    ModelConfig gated = ModelConfig::make("TON");
    gated.powerState.applyAll(power::GateMode::PowerGate);
    SimResult r_off = runCfg(off, "swim", 120000);
    SimResult r_on = runCfg(gated, "swim", 120000);
    // Wake stalls only ever add cycles.
    EXPECT_GE(r_on.cycles, r_off.cycles);
    // The committed work is the machine's architectural contract and
    // must not change.
    EXPECT_EQ(r_on.insts, r_off.insts);
}

TEST(PowerStateSimTest, PowerGatingSavesLeakage)
{
    ModelConfig cfg = ModelConfig::make("TON");
    cfg.powerState.applyAll(power::GateMode::PowerGate);
    const double pmax = 200.0;
    SimResult r = runCfg(cfg, "swim", 120000, pmax);
    EXPECT_GT(r.powerGatedCycles, 0u);
    EXPECT_GT(r.leakageSavedEnergy, 0.0);
    // Net leakage stays positive: the gated units are a minority of
    // the core area and sleep for a minority of the run.
    EXPECT_GT(r.leakageEnergy, 0.0);
    // And the reported leakage really is net of the savings.
    double gross = pmax *
                   (0.05 * cfg.memory.l2MegaBytes() +
                    0.4 * cfg.coreAreaFactor) *
                   static_cast<double>(r.cycles);
    EXPECT_NEAR(r.leakageEnergy + r.leakageSavedEnergy, gross,
                gross * 1e-12);
}

TEST(PowerStateSimTest, GatedRunIsCosimClean)
{
    ModelConfig cfg = ModelConfig::make("TON");
    cfg.cosim = true;
    cfg.powerState.applyAll(power::GateMode::PowerGate);
    SimResult r = runCfg(cfg, "gcc", 80000);
    EXPECT_TRUE(r.cosimEnabled);
    EXPECT_GT(r.cosimColdCommits + r.cosimTraceCommits, 0u);
    EXPECT_EQ(r.cosimMismatches, 0u)
        << "gating stalls must never corrupt architectural state";
}

TEST(PowerStateSimTest, WakeLatencyMonotonicallyCostsCycles)
{
    // Satellite property: a slower wake can only cost (wall-clock)
    // cycles, never win them back.
    std::uint64_t prev_cycles = 0;
    for (unsigned wake : {0u, 2u, 6u}) {
        ModelConfig cfg = ModelConfig::make("TON");
        cfg.powerState.applyAll(power::GateMode::ClockGate);
        for (auto &p : cfg.powerState.unit)
            p.wakeLatency = wake;
        SimResult r = runCfg(cfg, "swim", 120000);
        EXPECT_GE(r.cycles, prev_cycles) << "wake=" << wake;
        prev_cycles = r.cycles;
    }
}

TEST(PowerStateSimTest, GatingIsDeterministic)
{
    ModelConfig cfg = ModelConfig::make("TON");
    cfg.powerState.applyAll(power::GateMode::PowerGate);
    SimResult a = runCfg(cfg, "word", 80000, 100.0);
    SimResult b = runCfg(cfg, "word", 80000, 100.0);
    expectBitIdentical(a, b);
}

TEST(DvfsSimTest, NominalFrequencyIsExactIdentity)
{
    // freqGHz = 1.0 must take the guarded identity paths (no FP
    // multiplies sneak in): already covered by the purity tests above;
    // here pin the config default itself.
    ModelConfig cfg = ModelConfig::make("N");
    EXPECT_DOUBLE_EQ(cfg.freqGHz, 1.0);
}

TEST(DvfsSimTest, LeakageScalesWithWallTime)
{
    // At 2 GHz the same cycle count spans half the wall time, so the
    // paper's leakage term halves per cycle.
    ModelConfig fast = ModelConfig::make("N");
    fast.freqGHz = 2.0;
    const double pmax = 250.0;
    SimResult r = runCfg(fast, "gzip", kBudget, pmax);
    double expect = pmax *
                    (0.05 * fast.memory.l2MegaBytes() +
                     0.4 * fast.coreAreaFactor) *
                    static_cast<double>(r.cycles) / 2.0;
    EXPECT_NEAR(r.leakageEnergy, expect, expect * 1e-12);
}

TEST(DvfsSimTest, HigherFrequencyCostsDynamicEnergyAndMemoryCycles)
{
    ModelConfig nominal = ModelConfig::make("N");
    ModelConfig fast = ModelConfig::make("N");
    fast.freqGHz = 2.0;
    SimResult r1 = runCfg(nominal, "gcc", 80000);
    SimResult r2 = runCfg(fast, "gcc", 80000);
    // Memory latency doubles in cycles, so a memory-bound app loses
    // IPC...
    EXPECT_GT(r1.ipc, r2.ipc);
    // ...and every dynamic event costs V^2 more energy
    // (V = 0.6 + 0.4*2 = 1.4, so 1.96x per event; more events stall
    // longer so the total grows at least that much per cycle of work).
    EXPECT_GT(r2.dynamicEnergy, r1.dynamicEnergy * 1.5);
}

TEST(DvfsSimTest, FrequencyBoundsEnforced)
{
    ModelConfig cfg = ModelConfig::make("N");
    cfg.freqGHz = 10.0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "freq");
}

} // namespace
