/**
 * @file
 * Regression guards for the *reproduction itself*: the paper's
 * qualitative results (who wins, and in which direction) must keep
 * holding on a fast representative subset. If one of these fails after
 * a change, the repository no longer reproduces the paper — even if
 * every other unit test passes.
 */

#include <gtest/gtest.h>

#include "sim/runner.hh"
#include "stats/stats.hh"
#include "workload/apps.hh"

namespace
{

using namespace parrot;
using namespace parrot::sim;

/** Run the small suite once per model and cache across tests. */
class Shapes : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        RunOptions opts;
        opts.instBudget = 150000;
        runner = new SuiteRunner(opts);
        suite = new std::vector<workload::SuiteEntry>(
            workload::smallSuite());
        for (const char *model :
             {"N", "W", "TN", "TON", "TOW"}) {
            (*results)[model] = runner->runSuite(model, *suite);
        }
    }

    static void
    TearDownTestSuite()
    {
        delete runner;
        delete suite;
        results->clear();
    }

    static double
    geo(const std::string &model,
        const std::function<double(const SimResult &)> &metric)
    {
        std::vector<double> vals;
        for (const auto &r : (*results)[model])
            vals.push_back(metric(r));
        return stats::geomean(vals);
    }

    static SuiteRunner *runner;
    static std::vector<workload::SuiteEntry> *suite;
    static std::map<std::string, std::vector<SimResult>> *results;
};

SuiteRunner *Shapes::runner = nullptr;
std::vector<workload::SuiteEntry> *Shapes::suite = nullptr;
std::map<std::string, std::vector<SimResult>> *Shapes::results =
    new std::map<std::string, std::vector<SimResult>>();

double
ipcOf(const SimResult &r)
{
    return r.ipc;
}

double
energyOf(const SimResult &r)
{
    return r.totalEnergy;
}

double
cmpwOf(const SimResult &r)
{
    return r.cmpw;
}

TEST_F(Shapes, WideningHelpsPerformance)
{
    EXPECT_GT(geo("W", ipcOf), geo("N", ipcOf) * 1.03);
}

TEST_F(Shapes, WideningIsEnergyHungry)
{
    // Paper: W costs ~60-70% more energy than N.
    EXPECT_GT(geo("W", energyOf), geo("N", energyOf) * 1.35);
    EXPECT_LT(geo("W", energyOf), geo("N", energyOf) * 2.0);
}

TEST_F(Shapes, TraceCacheAloneIsRoughlyNeutralOnNarrow)
{
    // Paper: TN ~ +2% over N.
    double ratio = geo("TN", ipcOf) / geo("N", ipcOf);
    EXPECT_GT(ratio, 0.93);
    EXPECT_LT(ratio, 1.15);
}

TEST_F(Shapes, OptimizationIsTheDominantContributor)
{
    EXPECT_GT(geo("TON", ipcOf), geo("TN", ipcOf) * 1.04)
        << "TON must clearly beat TN (the optimizer's contribution)";
}

TEST_F(Shapes, TonRivalsWAtMuchLowerEnergy)
{
    // The paper's headline: comparable performance, far less energy.
    EXPECT_GT(geo("TON", ipcOf), geo("W", ipcOf) * 0.92);
    EXPECT_LT(geo("TON", energyOf), geo("W", energyOf) * 0.75);
}

TEST_F(Shapes, TonImprovesPowerAwareness)
{
    EXPECT_GT(geo("TON", cmpwOf), geo("N", cmpwOf) * 1.15);
    EXPECT_LT(geo("W", cmpwOf), geo("N", cmpwOf))
        << "mere widening must hurt CMPW";
}

TEST_F(Shapes, TowIsTheFastestMachine)
{
    for (const char *other : {"N", "W", "TN", "TON"})
        EXPECT_GT(geo("TOW", ipcOf), geo(other, ipcOf)) << other;
}

TEST_F(Shapes, FpCoverageFarAboveInt)
{
    double fp = 0, in = 0;
    int nfp = 0, nin = 0;
    for (const auto &r : (*results)["TON"]) {
        auto group = workload::findApp(r.app).profile.group;
        if (group == workload::BenchGroup::SpecFp) {
            fp += r.coverage;
            ++nfp;
        }
        if (group == workload::BenchGroup::SpecInt) {
            in += r.coverage;
            ++nin;
        }
    }
    ASSERT_GT(nfp, 0);
    ASSERT_GT(nin, 0);
    EXPECT_GT(fp / nfp, in / nin + 0.2)
        << "regular FP code must be far better covered";
}

TEST_F(Shapes, HotTracesMorePredictableThanColdResidue)
{
    std::uint64_t t_mis = 0, t_all = 0, b_mis = 0, b_all = 0;
    for (const auto &r : (*results)["TON"]) {
        t_mis += r.traceMispredicts;
        t_all += r.tracePredictions;
        b_mis += r.coldBranchMispredicts;
        b_all += r.coldCondBranches;
    }
    ASSERT_GT(t_all, 0u);
    ASSERT_GT(b_all, 0u);
    EXPECT_LT(static_cast<double>(t_mis) / t_all,
              static_cast<double>(b_mis) / b_all);
}

TEST_F(Shapes, OptimizerReductionInPaperBallpark)
{
    double red = 0;
    int n = 0;
    for (const auto &r : (*results)["TOW"]) {
        if (r.tracesOptimized > 0) {
            red += r.dynamicUopReduction;
            ++n;
        }
    }
    ASSERT_GT(n, 0);
    red /= n;
    EXPECT_GT(red, 0.10);
    EXPECT_LT(red, 0.55);
}

TEST_F(Shapes, RegistryExportExposesEverything)
{
    stats::Registry reg;
    exportToRegistry((*results)["TON"].front(), reg);
    EXPECT_TRUE(reg.has("perf.ipc"));
    EXPECT_TRUE(reg.has("trace.coverage"));
    EXPECT_TRUE(reg.has("energy.total"));
    EXPECT_TRUE(reg.has("power.cmpw"));
    EXPECT_TRUE(reg.has("energy.unit.front-end"));
    EXPECT_DOUBLE_EQ(reg.get("perf.ipc"),
                     (*results)["TON"].front().ipc);

    stats::Registry prefixed;
    exportToRegistry((*results)["TON"].front(), prefixed, true);
    const auto &r = (*results)["TON"].front();
    EXPECT_TRUE(prefixed.has(r.model + "." + r.app + ".perf.ipc"));
}

} // namespace
