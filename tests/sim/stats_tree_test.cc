/**
 * @file
 * Anti-drift tests binding SimResult, the stats tree and the
 * self-describing serialization together: every SimResult field must
 * be a live path in the tree, the key=value encoding must round-trip
 * bit-exactly, and turning on window sampling must not perturb the
 * simulation's results.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "sim/result.hh"
#include "sim/simulator.hh"
#include "workload/apps.hh"

namespace
{

using namespace parrot;
using sim::SimResult;

constexpr std::uint64_t kInsts = 20000;
constexpr double kPmax = 250.0;

SimResult
runModel(const std::string &model, unsigned stats_interval)
{
    sim::ModelConfig cfg = sim::ModelConfig::make(model);
    cfg.statsInterval = stats_interval;
    sim::Workload w = sim::loadWorkload(workload::findApp("word"));
    sim::ParrotSimulator s(cfg, w);
    return s.run(kInsts, kPmax);
}

TEST(StatsTreeTest, TreeCoversEveryResultField)
{
    for (const char *model : {"N", "TON"}) {
        sim::ModelConfig cfg = sim::ModelConfig::make(model);
        sim::Workload w = sim::loadWorkload(workload::findApp("word"));
        sim::ParrotSimulator s(cfg, w);
        s.run(kInsts, kPmax);

        stats::Snapshot snap = s.statsTree().snapshot();
        std::string dumped = s.statsTree().dump();
        for (const auto &f : sim::resultFields()) {
            EXPECT_TRUE(snap.has(f.key))
                << f.key << " missing from " << model << " stats tree";
            EXPECT_NE(dumped.find(f.key), std::string::npos)
                << f.key << " missing from " << model << " dump";
        }
    }
}

TEST(StatsTreeTest, KeyValueSerializationRoundTripsBitExactly)
{
    SimResult r = runModel("TON", 0);

    // Encode exactly the way the bench cache does: precision-17
    // key=value pairs in descriptor-table order.
    std::ostringstream out;
    out.precision(17);
    for (const auto &f : sim::resultFields())
        out << f.key << '=' << f.get(r) << ' ';

    SimResult parsed;
    std::istringstream in(out.str());
    std::string token;
    std::size_t seen = 0;
    while (in >> token) {
        auto eq = token.find('=');
        ASSERT_NE(eq, std::string::npos) << token;
        const sim::ResultField *f =
            sim::findResultField(token.substr(0, eq));
        ASSERT_NE(f, nullptr) << token;
        f->set(parsed, std::strtod(token.c_str() + eq + 1, nullptr));
        ++seen;
    }
    ASSERT_EQ(seen, sim::resultFields().size());

    for (const auto &f : sim::resultFields())
        EXPECT_EQ(f.get(parsed), f.get(r)) << f.key;
}

TEST(StatsTreeTest, SamplingDoesNotPerturbResults)
{
    SimResult off = runModel("TON", 0);
    SimResult on = runModel("TON", 2000);

    EXPECT_EQ(off.series, nullptr);
    ASSERT_NE(on.series, nullptr);
    EXPECT_GT(on.series->numWindows(), 1u);

    for (const auto &f : sim::resultFields())
        EXPECT_EQ(f.get(on), f.get(off)) << f.key;
}

TEST(StatsTreeTest, ArenaDebugAllocatorIsBitIdentical)
{
    // The arena only changes *where* hot-path objects live, never what
    // the simulation computes: a run with the one-chunk-per-allocation
    // debug fallback must match the bump-allocator run field-for-field.
    // Both simulators are constructed inside this test because arenas
    // sample PARROT_ARENA_DEBUG at construction.
    unsetenv("PARROT_ARENA_DEBUG");
    SimResult pooled = runModel("TON", 0);

    setenv("PARROT_ARENA_DEBUG", "1", 1);
    SimResult debug = runModel("TON", 0);
    unsetenv("PARROT_ARENA_DEBUG");

    for (const auto &f : sim::resultFields())
        EXPECT_EQ(f.get(debug), f.get(pooled)) << f.key;
}

TEST(StatsTreeTest, WindowSeriesShowsCoverageRamp)
{
    SimResult r = runModel("TON", 1000);
    ASSERT_NE(r.series, nullptr);
    const auto &ts = *r.series;
    ASSERT_GT(ts.numWindows(), 2u);

    // Cycle stamps strictly increase and the cumulative coverage
    // column ramps from cold (first window, nothing cached yet) to the
    // run's final coverage in the last window.
    for (std::size_t i = 1; i < ts.numWindows(); ++i)
        EXPECT_LT(ts.at(i - 1, "cycle"), ts.at(i, "cycle"));
    EXPECT_LT(ts.at(0, "coverage"),
              ts.at(ts.numWindows() - 1, "coverage"));
    EXPECT_DOUBLE_EQ(ts.at(ts.numWindows() - 1, "coverage"),
                     r.coverage);
}

} // namespace
