/**
 * @file
 * Unit tests for the concurrency-safe sim::ResultStore: the
 * two-writer compaction-clobber regression, the deterministic merge
 * policy, and journal-shard merging.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "sim/result.hh"
#include "sim/result_store.hh"
#include "workload/apps.hh"

namespace
{

using namespace parrot;

sim::RunOptions
tinyOptions()
{
    sim::RunOptions opts;
    opts.instBudget = 20000; // keep each simulated cell cheap
    opts.jobs = 1;
    opts.noLeakage = true;
    opts.maxRetries = 0;
    opts.retryBackoffMs = 1;
    return opts;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

void
cleanup(const std::string &path)
{
    std::remove(path.c_str());
    std::remove((path + ".lock").c_str());
    for (unsigned w = 1; w <= 8; ++w) {
        std::remove((path + ".w" + std::to_string(w)).c_str());
        std::remove((path + ".w" + std::to_string(w) + ".lock").c_str());
    }
}

/** Append one fabricated (all-zero but parseable) healthy row for
 * `key` to `file`, writing the header first when the file is new —
 * i.e. what another process's journal append looks like on disk. */
void
appendFabricatedRow(const std::string &file, const std::string &key,
                    double ipc = 0.0)
{
    const bool fresh = slurp(file).empty();
    std::ofstream out(file, std::ios::app);
    if (fresh)
        out << sim::cacheHeaderLine() << '\n';
    sim::SimResult r;
    r.ipc = ipc;
    out << sim::serializeCacheLine(key, r) << '\n';
}

/**
 * The compaction-clobber regression (two writers, one cache file).
 *
 * Store A loads the cache and stays alive while store B — a second
 * "process" pointed at the same path — computes a different cell and
 * destructs, compacting its row into the file. When A finally
 * destructs, it used to rewrite the file from its in-memory memo
 * alone, silently discarding B's row; the fixed compaction re-reads
 * the on-disk cache under the file lock and merges first. This test
 * fails on the pre-fix store.
 */
TEST(ResultStoreConcurrencyTest, SecondWriterSurvivesFirstsCompaction)
{
    const std::string path = "test_result_store_clobber.tmp";
    cleanup(path);

    auto swim = workload::findApp("swim");
    auto gcc = workload::findApp("gcc");
    {
        sim::ResultStore a(path, tinyOptions());
        a.get("N", swim); // A journals N/swim and stays open

        {
            sim::ResultStore b(path, tinyOptions());
            // B loaded A's journaled row, so it only computes gcc.
            EXPECT_TRUE(b.cached("N", "swim"));
            b.get("N", gcc);
        } // B compacts: file now holds swim + gcc

        // A (whose memo has never seen N/gcc) compacts at destruction.
    }

    sim::ResultStore check(path, tinyOptions());
    EXPECT_TRUE(check.cached("N", "swim"));
    EXPECT_TRUE(check.cached("N", "gcc"))
        << "first writer's compaction clobbered the second writer's row";
    cleanup(path);
}

TEST(ResultStoreConcurrencyTest, CompactionAdoptsRowsAppendedByOthers)
{
    const std::string path = "test_result_store_adopt.tmp";
    cleanup(path);

    auto swim = workload::findApp("swim");
    {
        sim::ResultStore store(path, tinyOptions());
        store.get("N", swim); // makes the store dirty
        // Another process journals a row for a key this store has
        // never seen, straight into the shared file.
        appendFabricatedRow(path, "W/fake/20000", 1.25);
    } // compaction must merge, not clobber

    sim::ResultStore check(path, tinyOptions());
    ASSERT_TRUE(check.cached("W", "fake"));
    EXPECT_DOUBLE_EQ(check.peek("W", "fake")->ipc, 1.25);
    cleanup(path);
}

TEST(ResultStoreConcurrencyTest, InMemoryResultWinsOverForeignRewrite)
{
    const std::string path = "test_result_store_wins.tmp";
    cleanup(path);

    auto swim = workload::findApp("swim");
    double computed_ipc = 0.0;
    {
        sim::ResultStore store(path, tinyOptions());
        computed_ipc = store.get("N", swim).ipc;
        ASSERT_GT(computed_ipc, 0.0);
        // Another process rewrites the same key with different bits;
        // our in-memory (healthy) result must win deterministically.
        appendFabricatedRow(path, store.cellKey("N", "swim"), 99.0);
    }

    sim::ResultStore check(path, tinyOptions());
    ASSERT_TRUE(check.cached("N", "swim"));
    EXPECT_DOUBLE_EQ(check.peek("N", "swim")->ipc, computed_ipc);
    cleanup(path);
}

TEST(ResultStoreConcurrencyTest, HealthyDiskRowReplacesMemoTombstone)
{
    const std::string path = "test_result_store_tomb.tmp";
    cleanup(path);

    const std::string key = "N/fake/20000";
    {
        // Seed the cache with a tombstone for the cell.
        std::ofstream out(path);
        out << sim::cacheHeaderLine() << '\n';
        sim::SimResult t;
        t.tombstone = true;
        t.attempts = 3;
        out << sim::serializeCacheLine(key, t) << '\n';
    }

    auto swim = workload::findApp("swim");
    {
        sim::ResultStore store(path, tinyOptions());
        ASSERT_TRUE(store.cached("N", "fake"));
        EXPECT_EQ(store.tombstoneCount(), 1u);
        store.get("N", swim); // dirty the store so it compacts
        // Another process's retry succeeded and journaled the healthy
        // row; compaction must prefer it over our stale tombstone.
        appendFabricatedRow(path, key, 2.5);
    }

    sim::ResultStore check(path, tinyOptions());
    ASSERT_TRUE(check.cached("N", "fake"));
    EXPECT_FALSE(check.peek("N", "fake")->tombstone);
    EXPECT_DOUBLE_EQ(check.peek("N", "fake")->ipc, 2.5);
    EXPECT_EQ(check.tombstoneCount(), 0u);
    cleanup(path);
}

TEST(ResultStoreShardTest, MergeShardsFoldsAndDeletesShards)
{
    const std::string path = "test_result_store_shards.tmp";
    cleanup(path);

    sim::ResultStore store(path, tinyOptions());
    const std::string w1 = store.shardPath(1);
    const std::string w2 = store.shardPath(2);
    EXPECT_EQ(w1, path + ".w1");
    appendFabricatedRow(w1, "N/fake_a/20000", 1.0);
    appendFabricatedRow(w2, "N/fake_b/20000", 2.0);
    // A row torn mid-write by a killed worker must be skipped, not
    // poison the merge.
    {
        std::ofstream out(w2, std::ios::app);
        out << "N/fake_c/20000\tperf.insts=1";
    }

    EXPECT_EQ(store.mergeShards(), 2u);
    EXPECT_TRUE(store.cached("N", "fake_a"));
    EXPECT_TRUE(store.cached("N", "fake_b"));
    EXPECT_FALSE(store.cached("N", "fake_c"));
    // Shards are consumed so they can never be double-merged.
    EXPECT_TRUE(slurp(w1).empty());
    EXPECT_TRUE(slurp(w2).empty());
    // The merged rows are already published to the main file.
    EXPECT_NE(slurp(path).find("fake_a"), std::string::npos);
    EXPECT_NE(slurp(path).find("fake_b"), std::string::npos);

    // Idempotent: nothing left to merge.
    EXPECT_EQ(store.mergeShards(), 0u);
    cleanup(path);
}

TEST(ResultStoreShardTest, MergeWithNothingToFoldTouchesNothing)
{
    const std::string path = "test_result_store_noop.tmp";
    cleanup(path);

    sim::ResultStore store(path, tinyOptions());
    EXPECT_EQ(store.mergeShards(), 0u);
    // A no-op merge must not conjure up a cache file.
    std::ifstream in(path);
    EXPECT_FALSE(in.good());
    cleanup(path);
}

TEST(ResultStoreShardTest, ShardDiscoveryIgnoresNonShardSuffixes)
{
    const std::string path = "test_result_store_sniff.tmp";
    cleanup(path);

    // Lock sidecars and other near-miss names must not be merged (or
    // deleted) as shards.
    appendFabricatedRow(path + ".w1.lock", "N/fake_x/20000", 1.0);
    appendFabricatedRow(path + ".wx", "N/fake_y/20000", 1.0);

    sim::ResultStore store(path, tinyOptions());
    EXPECT_EQ(store.mergeShards(), 0u);
    EXPECT_FALSE(store.cached("N", "fake_x"));
    EXPECT_FALSE(store.cached("N", "fake_y"));
    EXPECT_FALSE(slurp(path + ".w1.lock").empty());

    std::remove((path + ".wx").c_str());
    cleanup(path);
}

} // namespace
