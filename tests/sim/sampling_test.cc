/**
 * @file
 * Sampled-mode tests: the SMARTS-style fast-forward machinery, its
 * extrapolated results and confidence intervals, the sample.* config
 * plumbing, and the stats-series window regression (an empty final
 * window must never be appended when the run ends exactly on a
 * sampling boundary with nothing left to drain).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <sstream>
#include <string>

#include "sim/config_file.hh"
#include "sim/result.hh"
#include "sim/simulator.hh"
#include "stats/timeseries.hh"
#include "workload/apps.hh"

namespace
{

using namespace parrot;
using namespace parrot::sim;

constexpr double kPmax = 2.5;

SimResult
runConfigured(ModelConfig cfg, const std::string &app,
              std::uint64_t budget)
{
    Workload w = loadWorkload(workload::findApp(app));
    ParrotSimulator s(cfg, w);
    return s.run(budget, kPmax);
}

/** The time-series must never contain a zero-width window: every row
 * is sampled strictly later (in cycles) than the one before it. */
void
expectNoEmptyWindows(const SimResult &r, const std::string &what)
{
    ASSERT_NE(r.series, nullptr) << what;
    const stats::TimeSeries &series = *r.series;
    ASSERT_GT(series.numWindows(), 0u) << what;
    double prev_cycle = -1.0;
    for (std::size_t i = 0; i < series.numWindows(); ++i) {
        const double cycle = series.at(i, "cycle");
        EXPECT_GT(cycle, prev_cycle)
            << what << ": window " << i
            << " is empty (duplicate cycle boundary)";
        prev_cycle = cycle;
    }
    // The final row covers the drain; width zero means it duplicated
    // the last in-loop sample.
    EXPECT_GT(series.at(series.numWindows() - 1, "w_cycles"), 0.0)
        << what << ": final window has zero width";
}

// --- satellite: empty final stats-series window ----------------------

TEST(StatsSeriesWindowTest, NoEmptyFinalWindowAcrossBudgets)
{
    // interval=1 makes every cycle a sampling boundary, so any run
    // whose drain retires nothing would (pre-fix) append a zero-width
    // duplicate of the last in-loop row. Sweep a few budgets so at
    // least one run ends drained on the boundary.
    for (std::uint64_t budget = 2000; budget < 2008; ++budget) {
        ModelConfig cfg = ModelConfig::make("N");
        cfg.statsInterval = 1;
        SimResult r = runConfigured(cfg, "word", budget);
        expectNoEmptyWindows(r, "N/word/" + std::to_string(budget));
    }
}

TEST(StatsSeriesWindowTest, NoEmptyFinalWindowInSampledMode)
{
    // Sampled runs end every window with a full quiesce, so the run
    // can finish already-drained exactly on a sampling boundary — the
    // pre-fix reproduction of the duplicate empty window. This exact
    // cell (W/word, 2000:8000, budget 20000, interval 1) ends its last
    // window with the core empty at the commit boundary, so the
    // unconditional final append duplicated the last in-loop row.
    ModelConfig cfg = ModelConfig::make("W");
    cfg.statsInterval = 1;
    cfg.sampleWindow = 2000;
    cfg.sampleStride = 8000;
    SimResult r = runConfigured(cfg, "word", 20000);
    expectNoEmptyWindows(r, "W/word sampled");
}

TEST(StatsSeriesWindowTest, WindowCountMatchesIntervalGrid)
{
    // Pin the count law: one row per full interval inside the detailed
    // portion, plus exactly one drain row when the drain added cycles.
    ModelConfig cfg = ModelConfig::make("N");
    cfg.statsInterval = 100;
    SimResult r = runConfigured(cfg, "word", 20000);
    ASSERT_NE(r.series, nullptr);
    const stats::TimeSeries &series = *r.series;
    const double last_cycle =
        series.at(series.numWindows() - 1, "cycle");
    EXPECT_EQ(static_cast<std::uint64_t>(last_cycle), r.cycles);
    // Every interior row sits on the interval grid; only the final
    // drain row may fall off-grid.
    for (std::size_t i = 0; i + 1 < series.numWindows(); ++i) {
        const auto cycle =
            static_cast<std::uint64_t>(series.at(i, "cycle"));
        EXPECT_EQ(cycle % 100, 0u) << "row " << i;
    }
    const std::uint64_t on_grid = r.cycles / 100;
    EXPECT_GE(series.numWindows(), on_grid);
    EXPECT_LE(series.numWindows(), on_grid + 1);
}

// --- sampled simulation ----------------------------------------------

TEST(SamplingTest, SampledRunIsDeterministic)
{
    ModelConfig cfg = ModelConfig::make("TON");
    cfg.sampleWindow = 5000;
    cfg.sampleStride = 25000;
    SimResult a = runConfigured(cfg, "swim", 100000);
    SimResult b = runConfigured(cfg, "swim", 100000);
    for (const auto &f : resultFields()) {
        const double x = f.get(a), y = f.get(b);
        std::uint64_t xb, yb;
        std::memcpy(&xb, &x, sizeof xb);
        std::memcpy(&yb, &y, sizeof yb);
        EXPECT_EQ(xb, yb) << f.key;
    }
}

TEST(SamplingTest, DetailedRunCarriesTrivialSampleFields)
{
    SimResult r =
        runConfigured(ModelConfig::make("TON"), "swim", 50000);
    EXPECT_EQ(r.sampleWindows, 0u);
    EXPECT_DOUBLE_EQ(r.sampleCoverage, 1.0);
    EXPECT_DOUBLE_EQ(r.sampleCiIpc, 0.0);
    EXPECT_DOUBLE_EQ(r.sampleCiEnergy, 0.0);
}

TEST(SamplingTest, SampledRunExtrapolatesExtensiveFields)
{
    constexpr std::uint64_t kBudget = 200000;
    ModelConfig cfg = ModelConfig::make("TON");
    cfg.sampleWindow = 5000;
    cfg.sampleStride = 25000;
    SimResult r = runConfigured(cfg, "swim", kBudget);

    // Extensive counters are scaled up to the full stream position.
    EXPECT_GE(r.insts, kBudget);
    EXPECT_LT(r.insts, kBudget + cfg.sampleStride);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.dynamicEnergy, 0.0);

    // The sampled summary is populated and plausible.
    EXPECT_GE(r.sampleWindows, kBudget / cfg.sampleStride);
    EXPECT_GT(r.sampleCoverage, 0.1);
    EXPECT_LT(r.sampleCoverage, 0.5);
    EXPECT_GT(r.sampleCiIpc, 0.0);
    EXPECT_GT(r.sampleCiEnergy, 0.0);

    // Intensive metrics stay in physical range after extrapolation.
    EXPECT_GT(r.ipc, 0.1);
    EXPECT_LT(r.ipc, 8.0);
}

TEST(SamplingTest, SampleFieldsLiveInStatsTreeAndSchema)
{
    ModelConfig cfg = ModelConfig::make("TON");
    cfg.sampleWindow = 5000;
    cfg.sampleStride = 25000;
    Workload w = loadWorkload(workload::findApp("swim"));
    ParrotSimulator s(cfg, w);
    s.run(100000, kPmax);

    stats::Snapshot snap = s.statsTree().snapshot();
    for (const char *key : {"sample.windows", "sample.coverage",
                            "sample.ci_ipc", "sample.ci_energy"}) {
        EXPECT_TRUE(snap.has(key)) << key;
        ASSERT_NE(findResultField(key), nullptr) << key;
    }
    EXPECT_GT(snap.get("sample.windows"), 0.0);
}

TEST(SamplingTest, SampleConfigKeysParse)
{
    const std::string text = "base = TON\n"
                             "sample.window = 7000\n"
                             "sample.stride = 91000\n";
    ModelConfig cfg = parseModelConfig(text, "inline-test");
    EXPECT_EQ(cfg.sampleWindow, 7000u);
    EXPECT_EQ(cfg.sampleStride, 91000u);
}

TEST(SamplingDeathTest, StrideMustExceedWindow)
{
    ModelConfig cfg = ModelConfig::make("N");
    cfg.sampleWindow = 1000;
    cfg.sampleStride = 1000;
    EXPECT_EXIT(
        {
            Workload w = loadWorkload(workload::findApp("word"));
            ParrotSimulator s(cfg, w);
        },
        ::testing::ExitedWithCode(1), "sample.stride");
}

TEST(SamplingDeathTest, StrideWithoutWindowRejected)
{
    ModelConfig cfg = ModelConfig::make("N");
    cfg.sampleStride = 1000;
    EXPECT_EXIT(
        {
            Workload w = loadWorkload(workload::findApp("word"));
            ParrotSimulator s(cfg, w);
        },
        ::testing::ExitedWithCode(1), "sample.stride");
}

// --- the CI sampled-smoke cell ---------------------------------------

/** One cell run detailed and sampled (the recipe EXPERIMENTS.md
 * documents): the sampled estimates must land within the run's own
 * stated 95% confidence intervals, and those intervals must stay
 * under the configured reporting threshold. `ctest -R SamplingSmoke`
 * is the CI entry point. */
TEST(SamplingSmokeTest, SampledErrorWithinStatedCi)
{
    constexpr std::uint64_t kBudget = 6000000;
    constexpr double kCiThreshold = 0.30; // reported bounds above this
                                          // are useless for reporting

    ModelConfig detailed_cfg = ModelConfig::make("W");
    SimResult detailed = runConfigured(detailed_cfg, "swim", kBudget);

    ModelConfig sampled_cfg = ModelConfig::make("W");
    sampled_cfg.sampleWindow = 8000;
    sampled_cfg.sampleStride = 320000;
    SimResult sampled = runConfigured(sampled_cfg, "swim", kBudget);

    const double d_cpi = static_cast<double>(detailed.cycles) /
                         static_cast<double>(detailed.insts);
    const double s_cpi = static_cast<double>(sampled.cycles) /
                         static_cast<double>(sampled.insts);
    const double d_epi =
        detailed.dynamicEnergy / static_cast<double>(detailed.insts);
    const double s_epi =
        sampled.dynamicEnergy / static_cast<double>(sampled.insts);
    const double cpi_err = std::abs(s_cpi - d_cpi) / d_cpi;
    const double energy_err = std::abs(s_epi - d_epi) / d_epi;

    EXPECT_GE(sampled.sampleWindows, 4u);
    EXPECT_LT(sampled.sampleCoverage, 0.05);
    EXPECT_LE(sampled.sampleCiIpc, kCiThreshold);
    EXPECT_LE(sampled.sampleCiEnergy, kCiThreshold);
    EXPECT_LE(cpi_err, sampled.sampleCiIpc)
        << "sampled CPI misses the detailed value by more than the "
           "stated CI";
    EXPECT_LE(energy_err, sampled.sampleCiEnergy)
        << "sampled energy/inst misses the detailed value by more "
           "than the stated CI";
}

} // namespace
