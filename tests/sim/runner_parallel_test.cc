/**
 * @file
 * Determinism regression tests for the parallel suite runner: a
 * worker-pool run must be byte-identical to the serial path, and the
 * shared pmax/workload state must behave under concurrent callers.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/runner.hh"
#include "workload/apps.hh"

namespace
{

using namespace parrot;
using namespace parrot::sim;

constexpr std::uint64_t kBudget = 20000;

RunOptions
testOptions(unsigned jobs, bool no_leakage = true)
{
    RunOptions opts;
    opts.instBudget = kBudget;
    opts.noLeakage = no_leakage;
    opts.jobs = jobs;
    return opts;
}

/** Field-exact comparison (EXPECT_EQ on doubles is bitwise-strict). */
void
expectIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.model, b.model);
    EXPECT_EQ(a.app, b.app);
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_EQ(a.uops, b.uops);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.upc, b.upc);
    EXPECT_EQ(a.coverage, b.coverage);
    EXPECT_EQ(a.tracePredictions, b.tracePredictions);
    EXPECT_EQ(a.traceMispredicts, b.traceMispredicts);
    EXPECT_EQ(a.tracesInserted, b.tracesInserted);
    EXPECT_EQ(a.tracesOptimized, b.tracesOptimized);
    EXPECT_EQ(a.dynamicUopReduction, b.dynamicUopReduction);
    EXPECT_EQ(a.dynamicEnergy, b.dynamicEnergy);
    EXPECT_EQ(a.leakageEnergy, b.leakageEnergy);
    EXPECT_EQ(a.totalEnergy, b.totalEnergy);
    EXPECT_EQ(a.energyPerCycle, b.energyPerCycle);
    EXPECT_EQ(a.cmpw, b.cmpw);
    for (std::size_t u = 0; u < a.unitEnergy.size(); ++u)
        EXPECT_EQ(a.unitEnergy[u], b.unitEnergy[u]) << "unit " << u;
}

TEST(RunnerParallelTest, ParallelSuiteMatchesSerialBitExact)
{
    auto suite = workload::smallSuite();
    for (const char *model : {"N", "TON"}) {
        SuiteRunner serial(testOptions(1));
        SuiteRunner parallel(testOptions(4));
        auto a = serial.runSuite(model, suite);
        auto b = parallel.runSuite(model, suite);
        ASSERT_EQ(a.size(), suite.size());
        ASSERT_EQ(b.size(), suite.size());
        for (std::size_t i = 0; i < suite.size(); ++i) {
            SCOPED_TRACE(std::string(model) + "/" +
                         suite[i].profile.name);
            expectIdentical(a[i], b[i]);
        }
    }
}

TEST(RunnerParallelTest, ParallelMatchesSerialWithLeakageCalibration)
{
    // With leakage on, the calibration run (swim on N) feeds every
    // result; it must be computed once up front, not raced mid-suite.
    auto suite = workload::killerApps();
    SuiteRunner serial(testOptions(1, /*no_leakage=*/false));
    SuiteRunner parallel(testOptions(4, /*no_leakage=*/false));
    auto a = serial.runSuite("TON", suite);
    auto b = parallel.runSuite("TON", suite);
    EXPECT_EQ(serial.pmax(), parallel.pmax());
    EXPECT_GT(parallel.pmax(), 0.0);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(suite[i].profile.name);
        EXPECT_GT(a[i].leakageEnergy, 0.0);
        expectIdentical(a[i], b[i]);
    }
}

TEST(RunnerParallelTest, RepeatedSuitesReuseTheSamePmax)
{
    SuiteRunner runner(testOptions(2, /*no_leakage=*/false));
    auto suite = workload::killerApps();
    double before = runner.pmax();
    auto a = runner.runSuite("N", suite);
    auto b = runner.runSuite("N", suite);
    EXPECT_EQ(runner.pmax(), before);
    for (std::size_t i = 0; i < a.size(); ++i)
        expectIdentical(a[i], b[i]);
}

TEST(RunnerParallelTest, ConcurrentRunOneCallersAreSafe)
{
    // Hammer runOne from several external threads without a prior
    // prepare(); the runner must calibrate exactly once and serve the
    // shared workload cache without tearing.
    SuiteRunner runner(testOptions(1, /*no_leakage=*/false));
    auto entry = workload::findApp("word");
    constexpr int kThreads = 4;
    std::vector<SimResult> results(kThreads);
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
        pool.emplace_back([&, t] {
            results[t] = runner.runOne("TON", entry);
        });
    }
    for (auto &th : pool)
        th.join();
    for (int t = 1; t < kThreads; ++t)
        expectIdentical(results[0], results[t]);
}

TEST(RunnerParallelTest, ExplicitPmaxSkipsCalibration)
{
    SuiteRunner runner(testOptions(1, /*no_leakage=*/false));
    runner.setPmax(123.5);
    EXPECT_EQ(runner.pmax(), 123.5);
}

class ResolveJobsTest : public ::testing::Test
{
  protected:
    void SetUp() override { unsetenv("PARROT_JOBS"); }
    void TearDown() override { unsetenv("PARROT_JOBS"); }

    unsigned
    hw() const
    {
        unsigned n = std::thread::hardware_concurrency();
        return n > 0 ? n : 1;
    }
};

TEST_F(ResolveJobsTest, ZeroRequestDefaultsToHardwareConcurrency)
{
    EXPECT_EQ(resolveJobs(0), hw());
}

TEST_F(ResolveJobsTest, SaneRequestPassesThrough)
{
    EXPECT_EQ(resolveJobs(2), 2u);
}

TEST_F(ResolveJobsTest, AbsurdRequestClampsToHardwareConcurrency)
{
    // A thousand-worker pool is a config mistake, not a tuning choice.
    EXPECT_EQ(resolveJobs(100000), hw());
}

TEST_F(ResolveJobsTest, EnvOverrideIsHonoured)
{
    setenv("PARROT_JOBS", "3", 1);
    EXPECT_EQ(resolveJobs(0), 3u);
}

TEST_F(ResolveJobsTest, AbsurdEnvValueClampsToHardwareConcurrency)
{
    setenv("PARROT_JOBS", "99999", 1);
    EXPECT_EQ(resolveJobs(0), hw());
}

TEST_F(ResolveJobsTest, NonPositiveEnvValueFallsBackToHardware)
{
    setenv("PARROT_JOBS", "0", 1);
    EXPECT_EQ(resolveJobs(0), hw());
    setenv("PARROT_JOBS", "-4", 1);
    EXPECT_EQ(resolveJobs(0), hw());
}

TEST_F(ResolveJobsTest, GarbageEnvValueFallsBackToHardware)
{
    setenv("PARROT_JOBS", "lots", 1);
    EXPECT_EQ(resolveJobs(0), hw());
    setenv("PARROT_JOBS", "8threads", 1);
    EXPECT_EQ(resolveJobs(0), hw());
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce)
{
    constexpr std::size_t kCount = 257;
    std::vector<std::atomic<int>> hits(kCount);
    parallelFor(kCount, 4, [&](std::size_t i) { hits[i]++; });
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelForTest, SerialDegenerateCaseRunsInOrder)
{
    std::vector<std::size_t> order;
    parallelFor(5, 1, [&](std::size_t i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 5u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ParallelForTest, PropagatesBodyExceptions)
{
    EXPECT_THROW(parallelFor(8, 4,
                             [](std::size_t i) {
                                 if (i == 5)
                                     throw std::runtime_error("boom");
                             }),
                 std::runtime_error);
}

} // namespace
