/** @file Integration tests: the full PARROT machine end to end. */

#include <gtest/gtest.h>

#include "sim/runner.hh"
#include "sim/simulator.hh"
#include "workload/apps.hh"

namespace
{

using namespace parrot;
using namespace parrot::sim;

constexpr std::uint64_t kBudget = 60000;

SimResult
runModel(const std::string &model, const std::string &app,
         std::uint64_t budget = kBudget)
{
    auto entry = workload::findApp(app);
    Workload w = loadWorkload(entry);
    ParrotSimulator sim(ModelConfig::make(model), w);
    return sim.run(budget, 0.0);
}

TEST(SimulatorTest, BaselineReachesBudget)
{
    SimResult r = runModel("N", "gzip");
    EXPECT_GE(r.insts, kBudget);
    EXPECT_LT(r.insts, kBudget + 1000);
    EXPECT_GT(r.ipc, 0.3);
    EXPECT_LT(r.ipc, 4.0);
    EXPECT_DOUBLE_EQ(r.coverage, 0.0);
    EXPECT_EQ(r.tracePredictions, 0u);
}

TEST(SimulatorTest, DeterministicRuns)
{
    SimResult a = runModel("TON", "word");
    SimResult b = runModel("TON", "word");
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_EQ(a.uops, b.uops);
    EXPECT_DOUBLE_EQ(a.dynamicEnergy, b.dynamicEnergy);
    EXPECT_EQ(a.traceMispredicts, b.traceMispredicts);
}

TEST(SimulatorTest, TraceModelsDevelopCoverage)
{
    SimResult r = runModel("TON", "swim", 120000);
    EXPECT_GT(r.coverage, 0.5);
    EXPECT_GT(r.tracesInserted, 0u);
    EXPECT_GT(r.traceExecutions, 0u);
    EXPECT_GT(r.uopsFromTraceCache, 0u);
}

TEST(SimulatorTest, OptimizerOnlyRunsWhenEnabled)
{
    SimResult tn = runModel("TN", "swim", 120000);
    SimResult ton = runModel("TON", "swim", 120000);
    EXPECT_EQ(tn.tracesOptimized, 0u);
    EXPECT_DOUBLE_EQ(tn.dynamicUopReduction, 0.0);
    EXPECT_GT(ton.tracesOptimized, 0u);
    EXPECT_GT(ton.dynamicUopReduction, 0.02);
}

TEST(SimulatorTest, OptimizationReducesCommittedUops)
{
    SimResult n = runModel("N", "swim", 120000);
    SimResult ton = runModel("TON", "swim", 120000);
    // Same committed instructions, fewer committed uops.
    EXPECT_NEAR(static_cast<double>(ton.insts),
                static_cast<double>(n.insts), 2000.0);
    EXPECT_LT(ton.uops, n.uops);
}

TEST(SimulatorTest, WideMachineFasterAndHungrier)
{
    SimResult n = runModel("N", "flash");
    SimResult w = runModel("W", "flash");
    EXPECT_GT(w.ipc, n.ipc);
    EXPECT_GT(w.dynamicEnergy, n.dynamicEnergy * 1.3);
}

TEST(SimulatorTest, EnergyBreakdownConsistent)
{
    SimResult r = runModel("TON", "word");
    double sum = 0;
    for (double v : r.unitEnergy)
        sum += v;
    EXPECT_NEAR(sum, r.totalEnergy, r.totalEnergy * 1e-9);
    EXPECT_GT(r.dynamicEnergy, 0.0);
    EXPECT_DOUBLE_EQ(r.leakageEnergy, 0.0) << "pmax 0 disables leakage";
}

TEST(SimulatorTest, LeakageFollowsPaperFormula)
{
    auto entry = workload::findApp("gzip");
    Workload w = loadWorkload(entry);
    ModelConfig cfg = ModelConfig::make("N");
    ParrotSimulator sim(cfg, w);
    const double pmax = 250.0;
    SimResult r = sim.run(kBudget, pmax);
    double expect = pmax *
                    (0.05 * cfg.memory.l2MegaBytes() +
                     0.4 * cfg.coreAreaFactor) *
                    static_cast<double>(r.cycles);
    EXPECT_NEAR(r.leakageEnergy, expect, 1e-6);
    EXPECT_NEAR(r.totalEnergy, r.dynamicEnergy + r.leakageEnergy, 1e-6);
}

TEST(SimulatorTest, TraceUnitEnergyOnlyOnTraceModels)
{
    SimResult n = runModel("N", "swim");
    SimResult ton = runModel("TON", "swim", 120000);
    unsigned tu = static_cast<unsigned>(power::PowerUnit::TraceUnit);
    EXPECT_DOUBLE_EQ(n.unitEnergy[tu], 0.0);
    EXPECT_GT(ton.unitEnergy[tu], 0.0);
}

TEST(SimulatorTest, FrontEndEnergyShrinksWithCoverage)
{
    SimResult n = runModel("N", "swim", 120000);
    SimResult ton = runModel("TON", "swim", 120000);
    unsigned fe = static_cast<unsigned>(power::PowerUnit::FrontEnd);
    EXPECT_LT(ton.unitEnergy[fe], n.unitEnergy[fe] * 0.6)
        << "decoded trace fetch must slash decode energy";
}

TEST(SimulatorTest, ColdMispredictsTracked)
{
    SimResult r = runModel("N", "gcc");
    EXPECT_GT(r.coldCondBranches, 1000u);
    EXPECT_GT(r.coldBranchMispredRate, 0.0);
    EXPECT_LT(r.coldBranchMispredRate, 0.5);
}

TEST(SimulatorTest, SplitCoreModelRuns)
{
    SimResult r = runModel("TOS", "flash", 100000);
    EXPECT_GE(r.insts, 100000u);
    EXPECT_GT(r.ipc, 0.3);
    EXPECT_GT(r.coverage, 0.2);
    EXPECT_GT(r.dynamicEnergy, 0.0);
}

TEST(SimulatorTest, AbortsAreCountedAndBounded)
{
    SimResult r = runModel("TON", "gcc", 120000);
    EXPECT_GT(r.tracePredictions, 0u);
    EXPECT_LE(r.traceMispredicts, r.tracePredictions);
    EXPECT_LT(r.traceMispredRate, 0.5);
}

TEST(SimulatorTest, CyclesAdvanceReasonably)
{
    SimResult r = runModel("N", "word");
    // IPC between 0.25 and 4 implies cycles within sane bounds.
    EXPECT_GT(r.cycles, r.insts / 4);
    EXPECT_LT(r.cycles, r.insts * 4);
}

TEST(RunnerTest, PmaxCalibrationPositive)
{
    RunOptions opts;
    opts.instBudget = 40000;
    SuiteRunner runner(opts);
    EXPECT_GT(runner.pmax(), 0.0);
}

TEST(RunnerTest, SummaryCoversAllGroupsPlusOverall)
{
    RunOptions opts;
    opts.instBudget = 20000;
    opts.noLeakage = true;
    SuiteRunner runner(opts);
    auto results = runner.runSuite("N", workload::smallSuite());
    auto summary = summarizeByGroup(
        results, [](const SimResult &r) { return r.ipc; });
    ASSERT_EQ(summary.labels.size(), 6u);
    EXPECT_EQ(summary.labels.back(), "All");
    for (double v : summary.values)
        EXPECT_GT(v, 0.0);
}

TEST(RunnerTest, FindResultLocatesApp)
{
    RunOptions opts;
    opts.instBudget = 20000;
    opts.noLeakage = true;
    SuiteRunner runner(opts);
    auto results = runner.runSuite("N", workload::killerApps());
    EXPECT_EQ(findResult(results, "wupwise").app, "wupwise");
}

} // namespace
