/**
 * @file
 * Deterministic, seedable pseudo-random number generator.
 *
 * A xoshiro256** generator: fast, high quality, and — unlike std::mt19937
 * with library-defined distributions — bit-reproducible across standard
 * library implementations. All stochastic behaviour in the PARROT
 * workload generator and executor flows through this class so that every
 * experiment is exactly repeatable from its seed.
 */

#ifndef PARROT_COMMON_RANDOM_HH
#define PARROT_COMMON_RANDOM_HH

#include <cstdint>

#include "common/logging.hh"

namespace parrot
{

/**
 * Seedable xoshiro256** PRNG with simple distribution helpers.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed via splitmix64 state expansion. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-initialize the state from a new seed. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t x = seed;
        for (auto &word : state) {
            // splitmix64 step.
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        PARROT_ASSERT(bound > 0, "Rng::below requires a positive bound");
        // Rejection-free multiply-shift (Lemire) is fine for simulation use.
        return static_cast<std::uint64_t>(
            (static_cast<__uint128_t>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        PARROT_ASSERT(lo <= hi, "Rng::range requires lo <= hi");
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with success probability p. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Geometric-ish positive integer with the given mean, clamped to
     * [1, cap]. Used for block lengths, loop trip counts and similar
     * "mostly small, occasionally large" program-structure quantities.
     */
    int
    positiveAround(double mean, int cap)
    {
        PARROT_ASSERT(mean >= 1.0 && cap >= 1, "bad positiveAround params");
        // Sum of two uniforms approximates a triangular distribution
        // centred on the mean; cheap and bounded. Clamp in double space
        // first: the mean may exceed INT_MAX (e.g. "endless" loops).
        double v = (uniform() + uniform()) * mean;
        if (v >= static_cast<double>(cap))
            return cap;
        int out = static_cast<int>(v) + 1;
        if (out > cap)
            out = cap;
        return out;
    }

    /** Raw state word i (0..3) — checkpoint serialization only. */
    std::uint64_t stateWord(unsigned i) const { return state[i]; }

    /** Restore raw generator state — checkpoint resume only. */
    void
    restoreState(std::uint64_t s0, std::uint64_t s1, std::uint64_t s2,
                 std::uint64_t s3)
    {
        state[0] = s0;
        state[1] = s1;
        state[2] = s2;
        state[3] = s3;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

} // namespace parrot

#endif // PARROT_COMMON_RANDOM_HH
