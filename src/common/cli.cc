#include "common/cli.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace parrot::cli
{

namespace
{

[[noreturn]] void
badValue(const char *flag, const char *text, const char *expected)
{
    std::fprintf(stderr, "bad value '%s' for %s: expected %s\n", text,
                 flag, expected);
    std::exit(2);
}

} // namespace

const char *
needValue(int argc, char **argv, int &i)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
    }
    return argv[++i];
}

std::uint64_t
parseU64(const char *flag, const char *text)
{
    // strtoull silently wraps negatives and stops at the first junk
    // character; reject both so "--jobs -2" and "--insts 1e6" fail
    // loudly instead of becoming surprising numbers.
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || std::strchr(text, '-') ||
        errno == ERANGE) {
        badValue(flag, text, "a non-negative integer");
    }
    return v;
}

unsigned
parseU32(const char *flag, const char *text)
{
    std::uint64_t v = parseU64(flag, text);
    if (v > std::numeric_limits<unsigned>::max())
        badValue(flag, text, "an integer that fits in 32 bits");
    return static_cast<unsigned>(v);
}

double
parseF64(const char *flag, const char *text)
{
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(text, &end);
    if (end == text || *end != '\0' || errno == ERANGE)
        badValue(flag, text, "a number");
    return v;
}

int
combinedExit(bool usage_error, bool alarm, bool degraded)
{
    if (usage_error)
        return kExitUsage;
    if (alarm)
        return kExitAlarm;
    if (degraded)
        return kExitDegraded;
    return kExitOk;
}

} // namespace parrot::cli
