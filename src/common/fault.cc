#include "common/fault.hh"

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <mutex>

namespace parrot::fault
{

namespace
{

/** The parsed PARROT_FAULT_* plan; all-zero means "no faults". */
struct Plan
{
    unsigned long crashAfterRows = 0;
    unsigned long enospcAtRow = 0;
    unsigned long failCell = 0;
    unsigned long failCount = 0;
    unsigned long slowCell = 0;
    unsigned long slowMs = 0;
    unsigned long targetWorker = 0; //!< PARROT_FAULT_WORKER scope
};

unsigned long
envUl(const char *name)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return 0;
    char *end = nullptr;
    unsigned long x = std::strtoul(v, &end, 10);
    return (end != v && *end == '\0') ? x : 0;
}

std::mutex planMutex;
bool planParsed = false;
Plan activePlan;

std::atomic<unsigned long> cellCounter{0};
std::atomic<unsigned long> rowCounter{0};

/** Worker index of this process (0 until setWorkerIndex, i.e. the
 * coordinator or any plain single-process run). */
std::atomic<unsigned long> processWorker{0};

thread_local unsigned long armedCell = 0;
thread_local unsigned long armedAttempt = 0;

const Plan &
plan()
{
    std::lock_guard<std::mutex> lock(planMutex);
    if (!planParsed) {
        Plan p;
        p.crashAfterRows = envUl("PARROT_FAULT_CRASH_AT_CELL");
        p.enospcAtRow = envUl("PARROT_FAULT_ENOSPC_AT_CELL");
        p.failCell = envUl("PARROT_FAULT_FAIL_CELL");
        p.failCount = envUl("PARROT_FAULT_FAIL_COUNT");
        if (p.failCell != 0 && p.failCount == 0)
            p.failCount = ~0ul; // default: every attempt fails
        p.slowCell = envUl("PARROT_FAULT_SLOW_CELL");
        p.slowMs = envUl("PARROT_FAULT_SLOW_MS");
        if (p.slowCell != 0 && p.slowMs == 0)
            p.slowMs = 100;
        p.targetWorker = envUl("PARROT_FAULT_WORKER");
        activePlan = p;
        planParsed = true;
    }
    return activePlan;
}

/** Is the plan in scope for this process? Forked workers inherit the
 * PARROT_FAULT_* environment, so every hook gates on the worker index
 * the plan targets (default 0: coordinator-only). */
bool
planInScope(const Plan &p)
{
    return processWorker.load(std::memory_order_relaxed) ==
           p.targetWorker;
}

} // namespace

unsigned long
nextCellIndex()
{
    plan();
    return cellCounter.fetch_add(1, std::memory_order_relaxed) + 1;
}

void
armAttempt(unsigned long cell, unsigned long attempt)
{
    armedCell = cell;
    armedAttempt = attempt;
}

void
setWorkerIndex(unsigned long index)
{
    processWorker.store(index, std::memory_order_relaxed);
    // A forked worker inherits the parent's counters; restart them so
    // "crash after the k-th row" means k rows of THIS worker.
    cellCounter.store(0, std::memory_order_relaxed);
    rowCounter.store(0, std::memory_order_relaxed);
}

unsigned long
workerIndex()
{
    return processWorker.load(std::memory_order_relaxed);
}

bool
attemptShouldFail()
{
    const Plan &p = plan();
    return planInScope(p) && p.failCell != 0 && armedCell == p.failCell &&
           armedAttempt <= p.failCount;
}

unsigned long
attemptStallMs()
{
    const Plan &p = plan();
    if (!planInScope(p))
        return 0;
    return (p.slowCell != 0 && armedCell == p.slowCell) ? p.slowMs : 0;
}

bool
writesShouldFail()
{
    const Plan &p = plan();
    return planInScope(p) && p.enospcAtRow != 0 &&
           rowCounter.load(std::memory_order_relaxed) + 1 >= p.enospcAtRow;
}

void
rowPersisted()
{
    const Plan &p = plan();
    unsigned long n = rowCounter.fetch_add(1, std::memory_order_relaxed) + 1;
    if (planInScope(p) && p.crashAfterRows != 0 && n >= p.crashAfterRows)
        std::raise(SIGKILL); // the literal `kill -9` the tests recover from
}

void
resetForTest()
{
    std::lock_guard<std::mutex> lock(planMutex);
    planParsed = false;
    cellCounter.store(0, std::memory_order_relaxed);
    rowCounter.store(0, std::memory_order_relaxed);
    processWorker.store(0, std::memory_order_relaxed);
    armedCell = 0;
    armedAttempt = 0;
}

} // namespace parrot::fault
