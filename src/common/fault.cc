#include "common/fault.hh"

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <mutex>

namespace parrot::fault
{

namespace
{

/** The parsed PARROT_FAULT_* plan; all-zero means "no faults". */
struct Plan
{
    unsigned long crashAfterRows = 0;
    unsigned long enospcAtRow = 0;
    unsigned long failCell = 0;
    unsigned long failCount = 0;
    unsigned long slowCell = 0;
    unsigned long slowMs = 0;
};

unsigned long
envUl(const char *name)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return 0;
    char *end = nullptr;
    unsigned long x = std::strtoul(v, &end, 10);
    return (end != v && *end == '\0') ? x : 0;
}

std::mutex planMutex;
bool planParsed = false;
Plan activePlan;

std::atomic<unsigned long> cellCounter{0};
std::atomic<unsigned long> rowCounter{0};

thread_local unsigned long armedCell = 0;
thread_local unsigned long armedAttempt = 0;

const Plan &
plan()
{
    std::lock_guard<std::mutex> lock(planMutex);
    if (!planParsed) {
        Plan p;
        p.crashAfterRows = envUl("PARROT_FAULT_CRASH_AT_CELL");
        p.enospcAtRow = envUl("PARROT_FAULT_ENOSPC_AT_CELL");
        p.failCell = envUl("PARROT_FAULT_FAIL_CELL");
        p.failCount = envUl("PARROT_FAULT_FAIL_COUNT");
        if (p.failCell != 0 && p.failCount == 0)
            p.failCount = ~0ul; // default: every attempt fails
        p.slowCell = envUl("PARROT_FAULT_SLOW_CELL");
        p.slowMs = envUl("PARROT_FAULT_SLOW_MS");
        if (p.slowCell != 0 && p.slowMs == 0)
            p.slowMs = 100;
        activePlan = p;
        planParsed = true;
    }
    return activePlan;
}

} // namespace

unsigned long
nextCellIndex()
{
    plan();
    return cellCounter.fetch_add(1, std::memory_order_relaxed) + 1;
}

void
armAttempt(unsigned long cell, unsigned long attempt)
{
    armedCell = cell;
    armedAttempt = attempt;
}

bool
attemptShouldFail()
{
    const Plan &p = plan();
    return p.failCell != 0 && armedCell == p.failCell &&
           armedAttempt <= p.failCount;
}

unsigned long
attemptStallMs()
{
    const Plan &p = plan();
    return (p.slowCell != 0 && armedCell == p.slowCell) ? p.slowMs : 0;
}

bool
writesShouldFail()
{
    const Plan &p = plan();
    return p.enospcAtRow != 0 &&
           rowCounter.load(std::memory_order_relaxed) + 1 >= p.enospcAtRow;
}

void
rowPersisted()
{
    const Plan &p = plan();
    unsigned long n = rowCounter.fetch_add(1, std::memory_order_relaxed) + 1;
    if (p.crashAfterRows != 0 && n >= p.crashAfterRows)
        std::raise(SIGKILL); // the literal `kill -9` the tests recover from
}

void
resetForTest()
{
    std::lock_guard<std::mutex> lock(planMutex);
    planParsed = false;
    cellCounter.store(0, std::memory_order_relaxed);
    rowCounter.store(0, std::memory_order_relaxed);
    armedCell = 0;
    armedAttempt = 0;
}

} // namespace parrot::fault
