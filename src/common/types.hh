/**
 * @file
 * Fundamental scalar type aliases used across the PARROT libraries.
 */

#ifndef PARROT_COMMON_TYPES_HH
#define PARROT_COMMON_TYPES_HH

#include <cstdint>

namespace parrot
{

/** Simulation cycle count. */
using Cycle = std::uint64_t;

/** Virtual (code or data) address. */
using Addr = std::uint64_t;

/** Dense counter used by statistics and event accounting. */
using Counter = std::uint64_t;

/** Architectural or internal register identifier. */
using RegId = std::uint8_t;

/** Invalid / "no register" sentinel. */
inline constexpr RegId invalidReg = 0xff;

} // namespace parrot

#endif // PARROT_COMMON_TYPES_HH
