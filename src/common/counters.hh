/**
 * @file
 * Small hardware-style counters: saturating counters and shift-register
 * histories, the building blocks of predictors and filters.
 */

#ifndef PARROT_COMMON_COUNTERS_HH
#define PARROT_COMMON_COUNTERS_HH

#include <cstdint>

#include "common/logging.hh"

namespace parrot
{

/**
 * An n-bit saturating up/down counter, as used in branch predictors and
 * the PARROT hot/blazing filters.
 */
class SatCounter
{
  public:
    /** @param bits counter width in bits (1..16).
     *  @param initial initial counter value. */
    explicit SatCounter(unsigned bits = 2, unsigned initial = 0)
        : maxVal((1u << bits) - 1), value(initial)
    {
        PARROT_ASSERT(bits >= 1 && bits <= 16, "SatCounter width out of range");
        PARROT_ASSERT(initial <= maxVal, "SatCounter initial value too large");
    }

    /** Increment, saturating at the maximum. */
    void
    increment()
    {
        if (value < maxVal)
            ++value;
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        if (value > 0)
            --value;
    }

    /** Reset to zero. */
    void reset() { value = 0; }

    /** Current raw value. */
    unsigned read() const { return value; }

    /** True when in the upper half of the range (the "taken" half). */
    bool isSet() const { return value > maxVal / 2; }

    /** True when fully saturated high. */
    bool isMax() const { return value == maxVal; }

    /** Maximum representable value. */
    unsigned max() const { return maxVal; }

    /** Restore a checkpointed raw value (clamped to the range). */
    void
    restore(unsigned v)
    {
        value = v > maxVal ? maxVal : v;
    }

  private:
    unsigned maxVal;
    unsigned value;
};

/**
 * A fixed-width global history shift register (branch or trace history).
 */
class HistoryRegister
{
  public:
    explicit HistoryRegister(unsigned bits = 12)
        : mask((bits >= 64) ? ~0ull : ((1ull << bits) - 1)), bitsUsed(bits)
    {
        PARROT_ASSERT(bits >= 1 && bits <= 64,
                      "HistoryRegister width out of range");
    }

    /** Shift in one outcome bit. */
    void
    push(bool bit)
    {
        history = ((history << 1) | (bit ? 1ull : 0ull)) & mask;
    }

    /** Current packed history. */
    std::uint64_t value() const { return history; }

    /** Width in bits. */
    unsigned bits() const { return bitsUsed; }

    /** Clear all history. */
    void reset() { history = 0; }

    /** Restore a checkpointed packed history (masked to width). */
    void restore(std::uint64_t h) { history = h & mask; }

  private:
    std::uint64_t history = 0;
    std::uint64_t mask;
    unsigned bitsUsed;
};

} // namespace parrot

#endif // PARROT_COMMON_COUNTERS_HH
