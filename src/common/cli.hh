/**
 * @file
 * Strict command-line argument parsing shared by every driver binary
 * (parrot_cli and the figure benches). One definition of "what does
 * --jobs 0x take" so the tools cannot drift apart: a malformed value
 * is a usage error that exits with status 2 and a message naming the
 * flag, never a silent zero.
 */

#ifndef PARROT_COMMON_CLI_HH
#define PARROT_COMMON_CLI_HH

#include <cstdint>

namespace parrot::cli
{

/**
 * Return the value argument following the flag at argv[i], advancing
 * i past it. Exits with status 2 when the flag is the last argument.
 */
const char *needValue(int argc, char **argv, int &i);

/**
 * @name Strict numeric parsers.
 * The entire string must parse as a number of the requested type and
 * range; anything else ("", "12x", "-3" for unsigned, out-of-range)
 * prints a message naming `flag` and exits with status 2. `flag` is
 * only used for the message, so environment-variable names work too.
 * @{
 */
std::uint64_t parseU64(const char *flag, const char *text);
unsigned parseU32(const char *flag, const char *text);
double parseF64(const char *flag, const char *text);
/** @} */

/**
 * @name Exit-status taxonomy.
 * Every driver binary reports through the same four codes:
 *   0  clean run;
 *   1  correctness alarm (cosim mismatch);
 *   2  usage/input error (bad flag, unreadable config, rejected trace);
 *   3  degraded results (cells tombstoned after exhausting retries,
 *      or a campaign grid left incomplete when its rounds ran out).
 * @{
 */
constexpr int kExitOk = 0;
constexpr int kExitAlarm = 1;
constexpr int kExitUsage = 2;
constexpr int kExitDegraded = 3;

/**
 * Combine the conditions one run can hit into its deterministic exit
 * status. Precedence is pinned here, in one place: usage/input errors
 * (2) beat correctness alarms (1) beat degraded results (3) — a run
 * that both rejected a trace file and tombstoned cells reports 2, no
 * matter which happened first or in which order callers noticed.
 */
int combinedExit(bool usage_error, bool alarm, bool degraded);
/** @} */

} // namespace parrot::cli

#endif // PARROT_COMMON_CLI_HH
