/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated (simulator bug); aborts.
 * fatal()  — the user supplied an impossible configuration; exits cleanly.
 * warn()   — something is suspicious but the simulation can continue.
 */

#ifndef PARROT_COMMON_LOGGING_HH
#define PARROT_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace parrot
{

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);

/** Minimal printf-style formatter returning a std::string. */
std::string vformat(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace detail

} // namespace parrot

/** Abort with a message: simulator invariant broken. */
#define PARROT_PANIC(...) \
    ::parrot::detail::panicImpl(__FILE__, __LINE__, \
                                ::parrot::detail::vformat(__VA_ARGS__))

/** Exit with a message: user error (bad configuration, bad arguments). */
#define PARROT_FATAL(...) \
    ::parrot::detail::fatalImpl(__FILE__, __LINE__, \
                                ::parrot::detail::vformat(__VA_ARGS__))

/** Print a warning and continue. */
#define PARROT_WARN(...) \
    ::parrot::detail::warnImpl(__FILE__, __LINE__, \
                               ::parrot::detail::vformat(__VA_ARGS__))

/** Panic when a condition that must hold does not. */
#define PARROT_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            PARROT_PANIC("assertion '%s' failed: %s", #cond, \
                         ::parrot::detail::vformat(__VA_ARGS__).c_str()); \
        } \
    } while (0)

#endif // PARROT_COMMON_LOGGING_HH
