#include "common/logging.hh"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace parrot
{
namespace detail
{

std::string
vformat(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (needed < 0) {
        va_end(ap2);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

} // namespace detail
} // namespace parrot
