/**
 * @file
 * Bit-manipulation helpers shared by caches, predictors and hashers.
 */

#ifndef PARROT_COMMON_BITUTIL_HH
#define PARROT_COMMON_BITUTIL_HH

#include <bit>
#include <cstdint>

namespace parrot
{

/** True when x is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Floor of log2(x). @pre x > 0. */
constexpr unsigned
floorLog2(std::uint64_t x)
{
    return 63u - static_cast<unsigned>(std::countl_zero(x));
}

/** Ceiling of log2(x). @pre x > 0. */
constexpr unsigned
ceilLog2(std::uint64_t x)
{
    return isPowerOfTwo(x) ? floorLog2(x) : floorLog2(x) + 1;
}

/** Extract bits [lo, hi] (inclusive) of x. */
constexpr std::uint64_t
bits(std::uint64_t x, unsigned hi, unsigned lo)
{
    const std::uint64_t width = hi - lo + 1;
    const std::uint64_t mask = (width >= 64) ? ~0ull : ((1ull << width) - 1);
    return (x >> lo) & mask;
}

/**
 * Mix a 64-bit value into a well-distributed hash (finalizer from
 * MurmurHash3). Used to index predictor and filter tables.
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

/** Combine two hashes (boost::hash_combine style, 64-bit). */
constexpr std::uint64_t
hashCombine(std::uint64_t seed, std::uint64_t v)
{
    return seed ^ (mix64(v) + 0x9e3779b97f4a7c15ull + (seed << 6) +
                   (seed >> 2));
}

} // namespace parrot

#endif // PARROT_COMMON_BITUTIL_HH
