/**
 * @file
 * A power-of-two ring buffer over arena storage.
 *
 * Replaces the std::deque hot-loop buffers (committed-stream lookahead,
 * issue-queue age order): push/pop are index arithmetic on a flat
 * array, random access is one masked index, and the storage is a
 * single arena block, so steady-state operation does no heap traffic.
 */

#ifndef PARROT_COMMON_RING_BUFFER_HH
#define PARROT_COMMON_RING_BUFFER_HH

#include <cstddef>
#include <type_traits>

#include "common/arena.hh"
#include "common/bitutil.hh"
#include "common/logging.hh"

namespace parrot
{

/**
 * Fixed-policy FIFO with random access from the front. Capacity grows
 * by doubling (the abandoned buffer stays in the arena, which never
 * frees); sized generously at construction, growth never happens in
 * steady state.
 */
template <typename T>
class RingBuffer
{
    static_assert(std::is_trivially_destructible_v<T>,
                  "ring storage lives in an arena");

  public:
    RingBuffer(Arena &arena, std::size_t capacity)
        : mem(&arena)
    {
        cap = std::size_t{1} << ceilLog2(capacity < 2 ? 2 : capacity);
        buf = mem->allocArray<T>(cap);
    }

    std::size_t size() const { return count; }
    bool empty() const { return count == 0; }

    /** i-th element from the front (0 = oldest). */
    T &operator[](std::size_t i) { return buf[(head + i) & (cap - 1)]; }
    const T &
    operator[](std::size_t i) const
    {
        return buf[(head + i) & (cap - 1)];
    }

    T &front() { return (*this)[0]; }
    const T &front() const { return (*this)[0]; }
    T &back() { return (*this)[count - 1]; }

    /** Append a default-constructed slot and return it (fill in place). */
    T &
    emplaceBack()
    {
        if (count == cap)
            grow();
        T &slot = buf[(head + count) & (cap - 1)];
        slot = T{};
        ++count;
        return slot;
    }

    void
    pushBack(const T &v)
    {
        emplaceBack() = v;
    }

    void
    popFront(std::size_t n = 1)
    {
        PARROT_ASSERT(n <= count, "ring underflow");
        head = (head + n) & (cap - 1);
        count -= n;
    }

    /** Discard the newest element (failed in-place fill). */
    void
    popBack()
    {
        PARROT_ASSERT(count > 0, "ring underflow");
        --count;
    }

    void
    clear()
    {
        head = 0;
        count = 0;
    }

    std::size_t capacity() const { return cap; }

  private:
    void
    grow()
    {
        T *bigger = mem->allocArray<T>(cap * 2);
        for (std::size_t i = 0; i < count; ++i)
            bigger[i] = (*this)[i];
        buf = bigger;
        cap *= 2;
        head = 0;
    }

    Arena *mem;
    T *buf = nullptr;
    std::size_t cap = 0;
    std::size_t head = 0;
    std::size_t count = 0;
};

} // namespace parrot

#endif // PARROT_COMMON_RING_BUFFER_HH
