/**
 * @file
 * Per-simulation bump arena and typed node pool.
 *
 * The cycle loop used to pay a heap allocation (and later a free) for
 * every transient object it touched: ROB dependence links, lookahead
 * buffers, fetch windows. An Arena turns all of those into pointer
 * bumps inside chunks that live exactly as long as the simulation, so
 * the steady-state cycle loop performs no heap traffic at all.
 *
 * Lifetime rules (see DESIGN.md §11):
 *  - an Arena is owned by exactly one simulation component and is
 *    destroyed (releasing every chunk) with it;
 *  - arena memory is never freed individually — NodePool recycles
 *    nodes through an index freelist instead;
 *  - nothing allocated from an arena may outlive the owning component.
 *
 * Debug mode: setting PARROT_ARENA_DEBUG=1 makes every allocation its
 * own heap chunk, so ASan sees each object individually (overflow into
 * a neighbouring bump slot becomes a detectable heap overflow). The
 * allocation pattern is the only thing that changes: simulation
 * results are bit-identical in both modes, and a regression test pins
 * that (tests/sim/stats_tree_test.cc).
 */

#ifndef PARROT_COMMON_ARENA_HH
#define PARROT_COMMON_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "common/logging.hh"

namespace parrot
{

/** True when PARROT_ARENA_DEBUG requests one-chunk-per-allocation. */
inline bool
arenaDebugMode()
{
    const char *env = std::getenv("PARROT_ARENA_DEBUG");
    return env && env[0] != '\0' && env[0] != '0';
}

/** Round `p` up to the next multiple of power-of-two `align`. */
inline std::byte *
alignPtr(std::byte *p, std::size_t align)
{
    auto addr = reinterpret_cast<std::uintptr_t>(p);
    std::uintptr_t aligned = (addr + align - 1) & ~(align - 1);
    return p + (aligned - addr);
}

/** Smallest offset >= `off` making base+offset `align`-aligned. */
inline std::size_t
alignedOffset(const std::byte *base, std::size_t off, std::size_t align)
{
    auto addr = reinterpret_cast<std::uintptr_t>(base) + off;
    std::uintptr_t aligned = (addr + align - 1) & ~(align - 1);
    return off + static_cast<std::size_t>(aligned - addr);
}

/**
 * A chunked bump allocator. allocate() carves naturally-aligned blocks
 * out of fixed-size chunks; memory is reclaimed only by destroying the
 * arena (or reset(), which drops every chunk).
 */
class Arena
{
  public:
    /** Allocation accounting (drives the allocation-freedom tests). */
    struct Stats
    {
        std::uint64_t allocCalls = 0;     //!< allocate() invocations
        std::uint64_t bytesRequested = 0; //!< sum of requested sizes
        std::uint64_t chunkAllocs = 0;    //!< heap chunks obtained
    };

    explicit Arena(std::size_t chunk_bytes = 64 * 1024)
        : chunkBytes(chunk_bytes), debug(arenaDebugMode())
    {
        PARROT_ASSERT(chunkBytes >= 256, "arena chunk too small");
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Bump-allocate `bytes` with the given power-of-two alignment. */
    void *
    allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t))
    {
        ++stat.allocCalls;
        stat.bytesRequested += bytes;
        if (debug) {
            // One heap chunk per allocation: maximum ASan visibility.
            // Over-allocate so alignments beyond operator new's
            // guarantee still hold.
            chunks.emplace_back(new std::byte[bytes + align]);
            ++stat.chunkAllocs;
            return alignPtr(chunks.back().get(), align);
        }
        // Alignment must hold for the final ADDRESS, not the offset:
        // operator new only guarantees __STDCPP_DEFAULT_NEW_ALIGNMENT__
        // for the chunk base, so for larger alignments the offset math
        // alone would be right only by heap-layout luck.
        if (!chunks.empty()) {
            std::size_t off = alignedOffset(chunks.back().get(), cur,
                                            align);
            if (off + bytes <= chunkBytes) {
                cur = off + bytes;
                return chunks.back().get() + off;
            }
        }
        // Oversized requests get a dedicated chunk and leave the
        // current bump chunk in place for subsequent small ones.
        if (bytes + align > chunkBytes) {
            ++stat.chunkAllocs;
            std::unique_ptr<std::byte[]> big(
                new std::byte[bytes + align]);
            std::byte *p = alignPtr(big.get(), align);
            if (chunks.empty()) {
                chunks.push_back(std::move(big));
                cur = chunkBytes; // mark full: it is not a bump chunk
            } else {
                chunks.insert(chunks.end() - 1, std::move(big));
            }
            return p;
        }
        ++stat.chunkAllocs;
        chunks.emplace_back(new std::byte[chunkBytes]);
        std::size_t off = alignedOffset(chunks.back().get(), 0, align);
        cur = off + bytes;
        return chunks.back().get() + off;
    }

    /** Allocate an uninitialized array of n trivially-destructible Ts. */
    template <typename T>
    T *
    allocArray(std::size_t n)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena memory is never destructed");
        return static_cast<T *>(allocate(n * sizeof(T), alignof(T)));
    }

    /** Drop every chunk (invalidates all outstanding allocations). */
    void
    reset()
    {
        chunks.clear();
        cur = 0;
    }

    const Stats &stats() const { return stat; }
    bool debugMode() const { return debug; }

  private:
    std::size_t chunkBytes;
    bool debug;
    std::vector<std::unique_ptr<std::byte[]>> chunks;
    std::size_t cur = 0; //!< bump offset inside chunks.back()
    Stats stat;
};

/**
 * A typed node pool over an Arena: O(1) acquire/release through an
 * int32 index freelist, nodes addressed by index so links stay valid
 * across chunk growth. Used for the ROB dependence lists.
 */
template <typename T>
class NodePool
{
  public:
    static constexpr std::int32_t npos = -1;

    explicit NodePool(Arena &arena, std::size_t nodes_per_chunk = 1024)
        : mem(&arena), perChunk(nodes_per_chunk)
    {
        PARROT_ASSERT(perChunk > 0, "empty node pool chunk");
    }

    /** Acquire a default-constructed node; returns its index. */
    std::int32_t
    acquire()
    {
        if (freeHead == npos)
            grow();
        std::int32_t idx = freeHead;
        T &node = at(idx);
        freeHead = nextOf(node);
        node = T{};
        ++liveCount;
        return idx;
    }

    /** Return a node to the freelist. */
    void
    release(std::int32_t idx)
    {
        T &node = at(idx);
        nextOf(node) = freeHead;
        freeHead = idx;
        PARROT_ASSERT(liveCount > 0, "node pool release underflow");
        --liveCount;
    }

    T &
    at(std::int32_t idx)
    {
        return chunkTable[static_cast<std::size_t>(idx) / perChunk]
                         [static_cast<std::size_t>(idx) % perChunk];
    }

    const T &
    at(std::int32_t idx) const
    {
        return chunkTable[static_cast<std::size_t>(idx) / perChunk]
                         [static_cast<std::size_t>(idx) % perChunk];
    }

    std::size_t live() const { return liveCount; }

  private:
    /** Freelist linkage reuses the node's own `next` field. */
    static std::int32_t &nextOf(T &node) { return node.next; }

    void
    grow()
    {
        T *chunk = mem->allocArray<T>(perChunk);
        std::size_t base = chunkTable.size() * perChunk;
        for (std::size_t i = perChunk; i-- > 0;) {
            chunk[i] = T{};
            chunk[i].next = freeHead;
            freeHead = static_cast<std::int32_t>(base + i);
        }
        chunkTable.push_back(chunk);
    }

    Arena *mem;
    std::size_t perChunk;
    std::vector<T *> chunkTable;
    std::int32_t freeHead = npos;
    std::size_t liveCount = 0;
};

} // namespace parrot

#endif // PARROT_COMMON_ARENA_HH
