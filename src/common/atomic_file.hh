/**
 * @file
 * Crash-safe file output, POSIX-only (like the rest of the repo).
 *
 * Two disciplines cover every result file the project writes:
 *
 *  - writeFileAtomic(): whole-file replacement via write-temp + fsync +
 *    rename (+ best-effort directory fsync). A reader — including a
 *    rerun after `kill -9` — sees either the complete old file or the
 *    complete new file, never a truncated hybrid. Used for corpus
 *    files, JSON reports and bench-cache compaction.
 *
 *  - AppendJournal: line-granular O_APPEND journal whose appendLine()
 *    issues one write(2) per line and fsyncs before returning, so a
 *    crash loses at most the line being written — and every error
 *    (ENOSPC, read-only dir, yanked mount) is detected and reported
 *    instead of silently dropping rows. Used for incremental bench
 *    cache persistence.
 *
 *  - FileLock: an flock(2)-based advisory lock on a sidecar ".lock"
 *    file, shared by every process touching one result cache. Row
 *    appends take the lock shared; compaction (which re-reads, merges
 *    and atomically replaces the whole file) takes it exclusive, so a
 *    compactor can never rename the cache out from under a half-written
 *    row, and two compactors serialize instead of racing their
 *    read-merge-write cycles.
 *
 * All of them consult fault::writesShouldFail() so PARROT_FAULT_ENOSPC_*
 * can prove the error paths in tests.
 */

#ifndef PARROT_COMMON_ATOMIC_FILE_HH
#define PARROT_COMMON_ATOMIC_FILE_HH

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "common/fault.hh"

namespace parrot::atomic_file
{

namespace detail
{

/** write(2) the whole buffer, retrying short writes and EINTR. */
inline bool
writeAll(int fd, const char *data, std::size_t len)
{
    while (len > 0) {
        ssize_t n = ::write(fd, data, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

/** Best-effort fsync of the directory containing `path`, so the
 * rename that published a file survives a power cut too. */
inline void
fsyncDirOf(const std::string &path)
{
    auto slash = path.rfind('/');
    std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash);
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
}

inline std::string
errnoMessage(const char *what, const std::string &path)
{
    return std::string(what) + " " + path + ": " + std::strerror(errno);
}

} // namespace detail

/**
 * Atomically replace `path` with `content`: write a sibling temp file,
 * fsync it, rename over the target. On failure the temp file is
 * removed, `error` (when given) describes what went wrong, and the
 * previous file content is untouched.
 */
inline bool
writeFileAtomic(const std::string &path, const std::string &content,
                std::string *error = nullptr)
{
    auto fail = [&](const char *what) {
        if (error)
            *error = detail::errnoMessage(what, path);
        return false;
    };
    if (fault::writesShouldFail()) {
        errno = ENOSPC;
        return fail("write");
    }
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return fail("open");
    if (!detail::writeAll(fd, content.data(), content.size()) ||
        ::fsync(fd) != 0) {
        int saved = errno;
        ::close(fd);
        ::unlink(tmp.c_str());
        errno = saved;
        return fail("write");
    }
    if (::close(fd) != 0) {
        ::unlink(tmp.c_str());
        return fail("close");
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        int saved = errno;
        ::unlink(tmp.c_str());
        errno = saved;
        return fail("rename");
    }
    detail::fsyncDirOf(path);
    return true;
}

/**
 * Advisory cross-process lock (flock(2)) on a dedicated lock file.
 * Degrades gracefully: when the lock file cannot be created (read-only
 * directory, bogus path) every acquire is a no-op, matching the
 * "persistence failures degrade, never break" discipline of the rest
 * of this layer. Within one process, callers serialize Guard use with
 * their own mutex; across processes (or across two open() calls in one
 * process) flock provides real exclusion.
 */
class FileLock
{
  public:
    enum Mode { Shared, Exclusive };

    FileLock() = default;
    ~FileLock() { close(); }

    FileLock(const FileLock &) = delete;
    FileLock &operator=(const FileLock &) = delete;

    /** Open (creating if absent) the lock file. */
    bool open(const std::string &lock_path)
    {
        close();
        fd = ::open(lock_path.c_str(), O_RDWR | O_CREAT, 0644);
        return fd >= 0;
    }

    bool isOpen() const { return fd >= 0; }

    void close()
    {
        if (fd >= 0) {
            ::close(fd); // closing drops any held flock
            fd = -1;
        }
    }

    /** Scoped acquire/release; upgrade() re-locks exclusive in place
     * (flock may briefly release while converting — re-check any
     * condition observed under the shared lock afterwards). */
    class Guard
    {
      public:
        Guard(FileLock &file_lock, Mode mode) : lock(file_lock)
        {
            lock.acquire(mode);
        }
        ~Guard() { lock.release(); }
        Guard(const Guard &) = delete;
        Guard &operator=(const Guard &) = delete;

        void upgrade() { lock.acquire(Exclusive); }

      private:
        FileLock &lock;
    };

  private:
    void acquire(Mode mode)
    {
        if (fd < 0)
            return;
        int op = mode == Exclusive ? LOCK_EX : LOCK_SH;
        while (::flock(fd, op) != 0 && errno == EINTR) {
        }
    }

    void release()
    {
        if (fd >= 0)
            ::flock(fd, LOCK_UN);
    }

    int fd = -1;
};

/**
 * A line-granular append journal: one write(2) + fsync per line, every
 * failure detected. Non-copyable (owns the fd).
 */
class AppendJournal
{
  public:
    AppendJournal() = default;
    ~AppendJournal() { close(); }

    AppendJournal(const AppendJournal &) = delete;
    AppendJournal &operator=(const AppendJournal &) = delete;

    /** Open (creating if absent) for appending. */
    bool open(const std::string &journal_path)
    {
        close();
        fd = ::open(journal_path.c_str(),
                    O_WRONLY | O_CREAT | O_APPEND, 0644);
        if (fd < 0) {
            err = detail::errnoMessage("open", journal_path);
            return false;
        }
        path = journal_path;
        return true;
    }

    bool isOpen() const { return fd >= 0; }

    /** Current file size in bytes; -1 when not open. */
    long long size() const
    {
        struct stat st;
        if (fd < 0 || ::fstat(fd, &st) != 0)
            return -1;
        return static_cast<long long>(st.st_size);
    }

    /**
     * Reopen when the path no longer names the inode this journal
     * holds open — i.e. another process compacted (atomically renamed
     * over) or deleted the file. Without this, every later append
     * would land in the orphaned inode and vanish. Returns false only
     * when a needed reopen failed (error() says why).
     */
    bool reopenIfRenamed()
    {
        if (fd < 0)
            return false;
        struct stat fs, ps;
        if (::fstat(fd, &fs) == 0 && ::stat(path.c_str(), &ps) == 0 &&
            fs.st_ino == ps.st_ino && fs.st_dev == ps.st_dev)
            return true;
        return open(path);
    }

    /**
     * Append `line` plus a newline and fsync: when this returns true
     * the line is on stable storage; when it returns false nothing may
     * be assumed durable and error() says why.
     */
    bool appendLine(const std::string &line)
    {
        if (fd < 0) {
            err = "journal not open";
            return false;
        }
        if (fault::writesShouldFail()) {
            errno = ENOSPC;
            err = detail::errnoMessage("write", path);
            return false;
        }
        std::string buf = line;
        buf += '\n';
        if (!detail::writeAll(fd, buf.data(), buf.size()) ||
            ::fsync(fd) != 0) {
            err = detail::errnoMessage("write", path);
            return false;
        }
        return true;
    }

    void close()
    {
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
    }

    /** Description of the last failure. */
    const std::string &error() const { return err; }

  private:
    int fd = -1;
    std::string path;
    std::string err;
};

} // namespace parrot::atomic_file

#endif // PARROT_COMMON_ATOMIC_FILE_HH
