/**
 * @file
 * Fault-injection hooks for the resilience layer, driven entirely by
 * PARROT_FAULT_* environment variables so tests and CI can prove the
 * crash-recovery path without patching the binary:
 *
 *   PARROT_FAULT_CRASH_AT_CELL=k   raise(SIGKILL) — a literal `kill -9`
 *                                  — immediately after the k-th (1-based)
 *                                  result row has been durably persisted.
 *   PARROT_FAULT_ENOSPC_AT_CELL=k  every durable write fails with ENOSPC
 *                                  starting with the k-th row write.
 *   PARROT_FAULT_FAIL_CELL=k       attempts of the k-th simulation cell
 *                                  throw; PARROT_FAULT_FAIL_COUNT=n caps
 *                                  the injected failures at the first n
 *                                  attempts (default: every attempt).
 *   PARROT_FAULT_SLOW_CELL=k       every attempt of the k-th cell stalls
 *                                  PARROT_FAULT_SLOW_MS ms (default 100)
 *                                  inside the simulator loop, so a
 *                                  RunOptions::deadlineMs watchdog fires.
 *
 * "Cell" is one (model, application) simulation attempt group: the
 * SuiteRunner draws a process-wide 1-based index per cell via
 * nextCellIndex() and arms the calling thread before each attempt.
 * Persisted-row counting is likewise process-wide and includes the
 * Pmax marker row. With more than one worker thread the cell order is
 * scheduling-dependent; fault-injection tests pin PARROT_JOBS=1.
 *
 * Worker scoping: environment variables are inherited by the worker
 * processes a campaign coordinator forks, and an unscoped plan would
 * re-trigger the same injected fault in every worker (and again in
 * every respawned worker, so a crash fault could never converge).
 * The plan therefore targets exactly one process:
 *
 *   PARROT_FAULT_WORKER=n          the plan fires only in the process
 *                                  whose worker index is n. Index 0
 *                                  (the default, and the index of any
 *                                  process that never called
 *                                  setWorkerIndex()) is the
 *                                  coordinator / a plain single-process
 *                                  run. Campaign workers are numbered
 *                                  from 1 in spawn order, monotonically
 *                                  across respawn rounds, so a faulted
 *                                  worker's replacement is NOT
 *                                  re-faulted.
 *
 * All hooks are no-ops (a few relaxed atomic loads) when no
 * PARROT_FAULT_* variable is set.
 */

#ifndef PARROT_COMMON_FAULT_HH
#define PARROT_COMMON_FAULT_HH

namespace parrot::fault
{

/** Draw the next 1-based cell index (SuiteRunner, one per cell). */
unsigned long nextCellIndex();

/**
 * Declare this process's worker index (campaign workers call this
 * right after fork, with their 1-based spawn index) and restart the
 * cell/row counters so the plan's counts are per-worker deterministic.
 * Processes that never call this are index 0 — the coordinator scope
 * the PARROT_FAULT_* plan applies to by default.
 */
void setWorkerIndex(unsigned long index);

/** This process's worker index (0 = coordinator / plain process). */
unsigned long workerIndex();

/** Arm the calling thread's fault state for one attempt of a cell. */
void armAttempt(unsigned long cell, unsigned long attempt);

/** Should the current thread's armed attempt throw an injected fault? */
bool attemptShouldFail();

/** Injected stall (ms) for the current thread's armed attempt; 0 = none.
 * The simulator sleeps this long so the deadline watchdog trips. */
unsigned long attemptStallMs();

/** Should durable writes fail with an injected ENOSPC right now? */
bool writesShouldFail();

/** Record that one result row reached stable storage; SIGKILLs the
 * process when the configured crash point is reached. */
void rowPersisted();

/** Re-read the environment and zero all counters (tests only). */
void resetForTest();

} // namespace parrot::fault

#endif // PARROT_COMMON_FAULT_HH
