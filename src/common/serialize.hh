/**
 * @file
 * Binary serialization primitives for warm-state checkpoints.
 *
 * A deliberately tiny, dependency-free layer: a `Writer` appends
 * little-endian primitives to a growing byte buffer, a `Reader`
 * consumes them back and throws `serial::Error` the moment the stream
 * is shorter than a read demands, and `crc32()` is the same IEEE
 * CRC-32 the `.ptrace` codec frames its sections with. The checkpoint
 * layer (sim/checkpoint.hh) builds its versioned, CRC-framed file
 * format on top of these; individual components implement
 * `saveState(Writer&)` / `loadState(Reader&)` pairs that must write
 * and read the exact same sequence of primitives.
 *
 * Determinism contract: everything written here must be a pure
 * function of simulation state — no pointers, no host addresses, no
 * unordered-container iteration order. Hash-map state is serialized
 * in sorted key order so two identical simulations always produce
 * byte-identical checkpoints.
 */

#ifndef PARROT_COMMON_SERIALIZE_HH
#define PARROT_COMMON_SERIALIZE_HH

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

namespace parrot::serial
{

/** IEEE 802.3 CRC-32 (reflected, init/xorout 0xffffffff) — the same
 * polynomial discipline the trace codec uses for its section frames. */
inline std::uint32_t
crc32(const void *data, std::size_t len)
{
    static const auto table = [] {
        struct { std::uint32_t t[256]; } tbl{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            tbl.t[i] = c;
        }
        return tbl;
    }();
    std::uint32_t crc = 0xffffffffu;
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i)
        crc = table.t[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

/** Raised by Reader on a truncated or malformed stream. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {
    }
};

/** Append-only little-endian primitive writer. */
class Writer
{
  public:
    void u8(std::uint8_t v) { buf.push_back(static_cast<char>(v)); }

    void
    u16(std::uint16_t v)
    {
        u8(static_cast<std::uint8_t>(v));
        u8(static_cast<std::uint8_t>(v >> 8));
    }

    void
    u32(std::uint32_t v)
    {
        u16(static_cast<std::uint16_t>(v));
        u16(static_cast<std::uint16_t>(v >> 16));
    }

    void
    u64(std::uint64_t v)
    {
        u32(static_cast<std::uint32_t>(v));
        u32(static_cast<std::uint32_t>(v >> 32));
    }

    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

    void
    f64(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void boolean(bool v) { u8(v ? 1 : 0); }

    void
    str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        buf.append(s);
    }

    const std::string &bytes() const { return buf; }
    std::string takeBytes() { return std::move(buf); }

  private:
    std::string buf;
};

/** Bounds-checked little-endian primitive reader over a byte view. */
class Reader
{
  public:
    Reader(const char *data, std::size_t len) : p(data), end(data + len)
    {
    }

    explicit Reader(const std::string &data)
        : Reader(data.data(), data.size())
    {
    }

    std::uint8_t
    u8()
    {
        need(1);
        return static_cast<std::uint8_t>(*p++);
    }

    std::uint16_t
    u16()
    {
        std::uint16_t lo = u8();
        return static_cast<std::uint16_t>(lo |
                                          (std::uint16_t(u8()) << 8));
    }

    std::uint32_t
    u32()
    {
        std::uint32_t lo = u16();
        return lo | (std::uint32_t(u16()) << 16);
    }

    std::uint64_t
    u64()
    {
        std::uint64_t lo = u32();
        return lo | (std::uint64_t(u32()) << 32);
    }

    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    double
    f64()
    {
        std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    bool boolean() { return u8() != 0; }

    std::string
    str()
    {
        std::uint32_t len = u32();
        need(len);
        std::string s(p, len);
        p += len;
        return s;
    }

    /** Bytes not yet consumed. */
    std::size_t remaining() const
    {
        return static_cast<std::size_t>(end - p);
    }

    bool atEnd() const { return p == end; }

  private:
    void
    need(std::size_t n)
    {
        if (static_cast<std::size_t>(end - p) < n)
            throw Error("serialized stream truncated");
    }

    const char *p;
    const char *end;
};

} // namespace parrot::serial

#endif // PARROT_COMMON_SERIALIZE_HH
