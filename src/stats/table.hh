/**
 * @file
 * Plain-text table formatter used by benches and examples to print
 * paper-style rows (one row per model/benchmark-group, one column per
 * metric).
 */

#ifndef PARROT_STATS_TABLE_HH
#define PARROT_STATS_TABLE_HH

#include <string>
#include <vector>

namespace parrot::stats
{

/**
 * A simple column-aligned text table. Collect rows of strings, then
 * render with aligned columns. The first added row is treated as the
 * header and separated by a rule.
 */
class TextTable
{
  public:
    /** Add a row of cells; rows may have differing lengths. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 3);

    /** Convenience: format a value as a signed percentage ("+12.3%"). */
    static std::string pct(double fraction, int precision = 1);

    /** Render the table to a string. */
    std::string render() const;

  private:
    std::vector<std::vector<std::string>> rows;
};

} // namespace parrot::stats

#endif // PARROT_STATS_TABLE_HH
