/**
 * @file
 * Hierarchical statistics: a gem5-style tree of named groups, each
 * owning references to the component-resident Scalar/Ratio/Histogram
 * stats plus derived Formula stats, addressable by dotted path
 * ("core.cold.committed_uops", "trace.optimizer.uop_reduction").
 *
 * Ownership model: the *components* own their counters (so the hot
 * paths touch plain members); a Group holds non-owning pointers plus
 * the registration name. Formulas (arbitrary double-valued closures
 * over those counters) are owned by the group. The per-simulation root
 * group is the single source of truth every reporting layer —
 * SimResult materialization, the bench cache, the CLI printers and the
 * time-series sampler — reads through `snapshot()`.
 */

#ifndef PARROT_STATS_GROUP_HH
#define PARROT_STATS_GROUP_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "stats/stats.hh"

namespace parrot::stats
{

/**
 * A flattened, ordered view of a stats tree: (dotted path, value)
 * pairs in registration order, with an index for name addressing.
 * Scalars and formulas contribute one entry; a Ratio contributes its
 * value plus ".num" / ".den" raw counters (so window deltas can
 * recompute the ratio over any interval); a Histogram contributes
 * ".samples", ".mean" and ".max".
 */
class Snapshot
{
  public:
    void
    add(const std::string &path, double v)
    {
        index.emplace(path, entries.size());
        entries.emplace_back(path, v);
    }

    bool has(const std::string &path) const { return index.count(path); }

    /** Value by path; panics when absent (a wiring bug). */
    double get(const std::string &path) const;

    /** This snapshot's value minus an earlier snapshot's (window
     * delta). The path must exist in both. */
    double delta(const Snapshot &earlier, const std::string &path) const;

    const std::vector<std::pair<std::string, double>> &all() const
    {
        return entries;
    }

    bool empty() const { return entries.empty(); }

  private:
    std::vector<std::pair<std::string, double>> entries;
    std::map<std::string, std::size_t> index;
};

/**
 * One node of the stats tree. Groups form a tree by name; stats are
 * registered into a group and visited depth-first in registration
 * order. Non-copyable: components hand out pointers to their counters.
 */
class Group
{
  public:
    /** Construct a root group (empty path). */
    Group() = default;

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    /**
     * Find or create the named child group. The name must be non-empty
     * and free of '.' (paths are built by nesting, not by punning).
     */
    Group &subgroup(const std::string &name);

    /** @name Registration.
     * The stat object must outlive the group. The registered name
     * defaults to the stat's own name and must be unique within the
     * group (duplicate registration is a wiring bug and fatal()s).
     * @{ */
    void add(const Scalar *s, const std::string &name = "");
    void add(const Ratio *r, const std::string &name = "");
    void add(const Histogram *h, const std::string &name = "");
    /** @} */

    /** Register a derived stat: `fn` is evaluated at visit/snapshot
     * time. The closure must outlive-safely capture its inputs. */
    void addFormula(const std::string &name, std::function<double()> fn);

    /** Depth-first visitation: own stats in registration order, then
     * child groups in creation order. */
    struct Visitor
    {
        virtual ~Visitor() = default;
        virtual void onScalar(const std::string &path, const Scalar &s) = 0;
        virtual void onRatio(const std::string &path, const Ratio &r) = 0;
        virtual void onHistogram(const std::string &path,
                                 const Histogram &h) = 0;
        virtual void onFormula(const std::string &path, double value) = 0;
    };
    void visit(Visitor &v) const;

    /** Flatten the subtree into a Snapshot (see Snapshot docs). */
    Snapshot snapshot() const;

    /**
     * Human-readable dump, one "path value" line per stat. Ratios with
     * no samples render as "-" (unsampled, not zero); sampled ratios
     * also show the raw numerator/denominator.
     */
    std::string dump() const;

    const std::string &name() const { return groupName; }

  private:
    Group(Group *parent_group, std::string group_name)
        : groupName(std::move(group_name)), parent(parent_group)
    {
    }

    /** Full dotted path of this group ("" for the root). */
    std::string path() const;

    /** Join this group's path with a stat name. */
    std::string pathOf(const std::string &stat_name) const;

    void visitImpl(Visitor &v, const std::string &prefix) const;

    /** Reject empty/duplicate names. */
    void checkName(const std::string &name) const;

    enum class Kind { ScalarStat, RatioStat, HistogramStat, FormulaStat };
    struct Registered
    {
        Kind kind;
        std::string name;
        const Scalar *scalar = nullptr;
        const Ratio *ratio = nullptr;
        const Histogram *histogram = nullptr;
        std::function<double()> formula;
    };

    std::string groupName; //!< empty for the root
    Group *parent = nullptr;
    std::vector<Registered> stats;
    std::vector<std::unique_ptr<Group>> children;
};

} // namespace parrot::stats

#endif // PARROT_STATS_GROUP_HH
