#include "stats/timeseries.hh"

#include <cmath>
#include <cstdint>
#include <ostream>

#include "common/logging.hh"

namespace parrot::stats
{

namespace
{

/** Print a double as JSON (no NaN/Inf in JSON: emit null). */
void
jsonNumber(std::ostream &out, double v)
{
    if (!std::isfinite(v)) {
        out << "null";
        return;
    }
    // Integral values print without exponent noise; the rest with
    // round-trippable precision.
    if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
        v >= -9.0e15 && v <= 9.0e15) {
        out << static_cast<std::int64_t>(v);
        return;
    }
    auto old = out.precision(17);
    out << v;
    out.precision(old);
}

} // namespace

TimeSeries::TimeSeries(std::vector<std::string> column_names)
    : cols(std::move(column_names))
{
    PARROT_ASSERT(!cols.empty(), "time series needs columns");
}

void
TimeSeries::append(const std::vector<double> &row)
{
    PARROT_ASSERT(row.size() == cols.size(),
                  "time series row has %zu cells, schema has %zu",
                  row.size(), cols.size());
    rows.push_back(row);
}

std::size_t
TimeSeries::columnIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < cols.size(); ++i) {
        if (cols[i] == name)
            return i;
    }
    PARROT_FATAL("time series has no column '%s'", name.c_str());
}

void
TimeSeries::writeJson(std::ostream &out, const std::string &model,
                      const std::string &app,
                      std::uint64_t interval) const
{
    out << "{\"model\":\"" << model << "\",\"app\":\"" << app
        << "\",\"interval\":" << interval << ",\"columns\":[";
    for (std::size_t i = 0; i < cols.size(); ++i)
        out << (i ? "," : "") << "\"" << cols[i] << "\"";
    out << "],\"windows\":[";
    for (std::size_t r = 0; r < rows.size(); ++r) {
        out << (r ? ",[" : "[");
        for (std::size_t c = 0; c < rows[r].size(); ++c) {
            if (c)
                out << ",";
            jsonNumber(out, rows[r][c]);
        }
        out << "]";
    }
    out << "]}";
}

void
TimeSeries::writeCsv(std::ostream &out, const std::string &model,
                     const std::string &app, bool with_header) const
{
    if (with_header) {
        out << "model,app";
        for (const auto &c : cols)
            out << "," << c;
        out << "\n";
    }
    for (const auto &row : rows) {
        out << model << "," << app;
        for (double v : row) {
            out << ",";
            jsonNumber(out, v);
        }
        out << "\n";
    }
}

} // namespace parrot::stats
