/**
 * @file
 * Windowed time-series of simulation metrics.
 *
 * The sampling layer of the stats architecture: every N cycles the
 * simulator snapshots its stats tree, turns the snapshot delta into
 * one row of derived per-window metrics, and appends it here. A
 * TimeSeries is just named columns plus rows of doubles; the writers
 * emit machine-readable JSON or CSV so the cold -> hot -> blazed
 * coverage and energy ramp can be plotted per window.
 */

#ifndef PARROT_STATS_TIMESERIES_HH
#define PARROT_STATS_TIMESERIES_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace parrot::stats
{

/** A fixed-column table of per-window samples. */
class TimeSeries
{
  public:
    TimeSeries() = default;

    /** @param column_names the row schema (fixed at construction). */
    explicit TimeSeries(std::vector<std::string> column_names);

    /** Append one row; must match the column count. */
    void append(const std::vector<double> &row);

    const std::vector<std::string> &columns() const { return cols; }
    std::size_t numWindows() const { return rows.size(); }
    bool empty() const { return rows.empty(); }

    /** Row by window index. */
    const std::vector<double> &window(std::size_t i) const
    {
        return rows.at(i);
    }

    /** Column index by name; fatal()s when unknown. */
    std::size_t columnIndex(const std::string &name) const;

    /** One cell. */
    double at(std::size_t window_idx, const std::string &column) const
    {
        return rows.at(window_idx).at(columnIndex(column));
    }

    /**
     * Write one JSON object:
     *   {"model":..,"app":..,"interval":N,
     *    "columns":[..],"windows":[[..],..]}
     * Doubles are printed with enough precision to round-trip.
     */
    void writeJson(std::ostream &out, const std::string &model,
                   const std::string &app, std::uint64_t interval) const;

    /** Write CSV: "model,app" prefix columns, then the series columns,
     * one header line then one line per window. */
    void writeCsv(std::ostream &out, const std::string &model,
                  const std::string &app, bool with_header) const;

  private:
    std::vector<std::string> cols;
    std::vector<std::vector<double>> rows;
};

} // namespace parrot::stats

#endif // PARROT_STATS_TIMESERIES_HH
