#include "stats/stats.hh"

#include <cmath>

namespace parrot::stats
{

double
geomean(const std::vector<double> &xs)
{
    PARROT_ASSERT(!xs.empty(), "geomean of empty vector");
    double log_sum = 0.0;
    for (double x : xs) {
        PARROT_ASSERT(x > 0.0, "geomean requires positive values, got %f", x);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
mean(const std::vector<double> &xs)
{
    PARROT_ASSERT(!xs.empty(), "mean of empty vector");
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

} // namespace parrot::stats
