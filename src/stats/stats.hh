/**
 * @file
 * Lightweight statistics package: named scalars, ratios and histograms
 * collected into a registry, plus aggregate helpers (geometric mean)
 * used by the benchmark harness to report per-group numbers the way the
 * paper does.
 */

#ifndef PARROT_STATS_STATS_HH
#define PARROT_STATS_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace parrot::stats
{

/** A named monotonically increasing scalar counter. */
class Scalar
{
  public:
    Scalar() = default;
    explicit Scalar(std::string stat_name) : statName(std::move(stat_name)) {}

    /** Increment by n (default 1). */
    void add(Counter n = 1) { total += n; }

    /** Current value. */
    Counter value() const { return total; }

    /** Reset to zero. */
    void reset() { total = 0; }

    /** Restore a checkpointed value (checkpoint resume only). */
    void restore(Counter v) { total = v; }

    /** Stat name (may be empty for anonymous counters). */
    const std::string &name() const { return statName; }

  private:
    std::string statName;
    Counter total = 0;
};

/** A numerator/denominator pair reported as a ratio. */
class Ratio
{
  public:
    Ratio() = default;
    explicit Ratio(std::string stat_name) : statName(std::move(stat_name)) {}

    /** Record one observation: hit increments both, miss only the base. */
    void
    sample(bool success)
    {
        ++denomCount;
        if (success)
            ++numerCount;
    }

    /** Add to numerator and denominator explicitly. */
    void
    add(Counter numer, Counter denom)
    {
        numerCount += numer;
        denomCount += denom;
    }

    Counter numerator() const { return numerCount; }
    Counter denominator() const { return denomCount; }

    /**
     * True when at least one sample has been recorded. An unsampled
     * ratio has no meaningful value — printers must render it as "-"
     * rather than conflating it with a true 0.0 (e.g. an abort rate of
     * zero aborts out of many predictions).
     */
    bool valid() const { return denomCount > 0; }

    /** Ratio value; 0 when no samples have been recorded — check
     * valid() to distinguish that case from a genuine 0.0. */
    double
    value() const
    {
        return denomCount == 0
            ? 0.0
            : static_cast<double>(numerCount) / static_cast<double>(denomCount);
    }

    void reset() { numerCount = denomCount = 0; }

    /** Restore checkpointed counts (checkpoint resume only). */
    void
    restore(Counter numer, Counter denom)
    {
        numerCount = numer;
        denomCount = denom;
    }

    const std::string &name() const { return statName; }

  private:
    std::string statName;
    Counter numerCount = 0;
    Counter denomCount = 0;
};

/** A fixed-bucket histogram over [0, buckets*bucketWidth). */
class Histogram
{
  public:
    Histogram() : Histogram("", 16, 1) {}

    /**
     * @param stat_name stat name.
     * @param num_buckets number of buckets; an extra overflow bucket is kept.
     * @param bucket_width width of each bucket.
     */
    Histogram(std::string stat_name, unsigned num_buckets,
              std::uint64_t bucket_width)
        : statName(std::move(stat_name)),
          counts(num_buckets + 1, 0),
          width(bucket_width)
    {
        PARROT_ASSERT(num_buckets >= 1 && bucket_width >= 1,
                      "Histogram needs at least one bucket of width >= 1");
    }

    /** Record one sample. */
    void
    sample(std::uint64_t v)
    {
        std::uint64_t idx = v / width;
        if (idx >= counts.size() - 1)
            idx = counts.size() - 1; // overflow bucket
        ++counts[idx];
        sum += v;
        ++samples;
        if (v > maxSeen)
            maxSeen = v;
    }

    Counter totalSamples() const { return samples; }
    std::uint64_t maxValue() const { return maxSeen; }

    /** Exact sum of all samples (checkpoint serialization). */
    std::uint64_t sumValue() const { return sum; }

    /** Restore checkpointed per-bucket counts and aggregates; the
     * bucket vector must match this histogram's shape. */
    void
    restore(const std::vector<Counter> &bucket_counts,
            std::uint64_t sample_sum, Counter sample_count,
            std::uint64_t max_seen)
    {
        PARROT_ASSERT(bucket_counts.size() == counts.size(),
                      "Histogram::restore shape mismatch");
        counts = bucket_counts;
        sum = sample_sum;
        samples = sample_count;
        maxSeen = max_seen;
    }

    /** Mean of all samples (0 when empty). */
    double
    mean() const
    {
        return samples == 0
            ? 0.0 : static_cast<double>(sum) / static_cast<double>(samples);
    }

    /** Count in bucket i (the last bucket collects overflow). */
    Counter bucket(unsigned i) const { return counts.at(i); }

    /**
     * Approximate p-quantile (p in [0,1]): the upper edge of the first
     * bucket whose cumulative count reaches p of all samples. Returns 0
     * when empty.
     */
    std::uint64_t
    percentile(double p) const
    {
        PARROT_ASSERT(p >= 0.0 && p <= 1.0, "percentile out of range");
        if (samples == 0)
            return 0;
        const Counter target = static_cast<Counter>(
            p * static_cast<double>(samples));
        Counter seen = 0;
        for (unsigned i = 0; i < counts.size(); ++i) {
            seen += counts[i];
            if (seen > target || (p >= 1.0 && seen == samples))
                return (i + 1 == counts.size()) ? maxSeen
                                                : (i + 1) * width;
        }
        return maxSeen;
    }

    unsigned numBuckets() const { return counts.size(); }
    std::uint64_t bucketWidth() const { return width; }

    void
    reset()
    {
        std::fill(counts.begin(), counts.end(), 0);
        sum = samples = maxSeen = 0;
    }

    const std::string &name() const { return statName; }

  private:
    std::string statName;
    std::vector<Counter> counts;
    std::uint64_t width;
    std::uint64_t sum = 0;
    Counter samples = 0;
    std::uint64_t maxSeen = 0;
};

/**
 * A registry of named double-valued results; the simulator publishes final
 * metrics here and harnesses query them generically.
 */
class Registry
{
  public:
    /** Publish (or overwrite) a named value. */
    void set(const std::string &key, double v) { values[key] = v; }

    /** True when the key has been published. */
    bool has(const std::string &key) const { return values.count(key) > 0; }

    /** Fetch a value; panics when missing (indicates a harness bug). */
    double
    get(const std::string &key) const
    {
        auto it = values.find(key);
        PARROT_ASSERT(it != values.end(), "missing stat '%s'", key.c_str());
        return it->second;
    }

    /** All published values, sorted by key. */
    const std::map<std::string, double> &all() const { return values; }

  private:
    std::map<std::string, double> values;
};

/** Geometric mean of strictly positive values. @pre xs non-empty. */
double geomean(const std::vector<double> &xs);

/** Arithmetic mean. @pre xs non-empty. */
double mean(const std::vector<double> &xs);

} // namespace parrot::stats

#endif // PARROT_STATS_STATS_HH
