#include "stats/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace parrot::stats
{

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%+.*f%%", precision, fraction * 100.0);
    return buf;
}

std::string
TextTable::render() const
{
    if (rows.empty())
        return "";

    size_t num_cols = 0;
    for (const auto &row : rows)
        num_cols = std::max(num_cols, row.size());

    std::vector<size_t> widths(num_cols, 0);
    for (const auto &row : rows) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream out;
    for (size_t r = 0; r < rows.size(); ++r) {
        const auto &row = rows[r];
        for (size_t c = 0; c < row.size(); ++c) {
            // Left-align the first column, right-align the rest.
            if (c == 0) {
                out << row[c]
                    << std::string(widths[c] - row[c].size(), ' ');
            } else {
                out << "  "
                    << std::string(widths[c] - row[c].size(), ' ')
                    << row[c];
            }
        }
        out << '\n';
        if (r == 0) {
            size_t total = 0;
            for (size_t c = 0; c < num_cols; ++c)
                total += widths[c] + (c ? 2 : 0);
            out << std::string(total, '-') << '\n';
        }
    }
    return out.str();
}

} // namespace parrot::stats
