#include "stats/group.hh"

#include <sstream>

#include "common/logging.hh"

namespace parrot::stats
{

double
Snapshot::get(const std::string &path) const
{
    auto it = index.find(path);
    PARROT_ASSERT(it != index.end(), "snapshot: no stat at path '%s'",
                  path.c_str());
    return entries[it->second].second;
}

double
Snapshot::delta(const Snapshot &earlier, const std::string &path) const
{
    return get(path) - earlier.get(path);
}

Group &
Group::subgroup(const std::string &name)
{
    PARROT_ASSERT(!name.empty() && name.find('.') == std::string::npos,
                  "subgroup name '%s' must be non-empty and dot-free",
                  name.c_str());
    for (auto &child : children) {
        if (child->groupName == name)
            return *child;
    }
    children.emplace_back(new Group(this, name));
    return *children.back();
}

std::string
Group::path() const
{
    if (parent == nullptr)
        return groupName; // root: usually ""
    std::string prefix = parent->path();
    return prefix.empty() ? groupName : prefix + "." + groupName;
}

std::string
Group::pathOf(const std::string &stat_name) const
{
    std::string p = path();
    return p.empty() ? stat_name : p + "." + stat_name;
}

void
Group::checkName(const std::string &name) const
{
    PARROT_ASSERT(!name.empty(),
                  "stat registered into group '%s' needs a name",
                  path().c_str());
    for (const auto &reg : stats) {
        PARROT_ASSERT(reg.name != name,
                      "duplicate stat '%s' in group '%s'", name.c_str(),
                      path().c_str());
    }
}

void
Group::add(const Scalar *s, const std::string &name)
{
    Registered reg;
    reg.kind = Kind::ScalarStat;
    reg.name = name.empty() ? s->name() : name;
    reg.scalar = s;
    checkName(reg.name);
    stats.push_back(std::move(reg));
}

void
Group::add(const Ratio *r, const std::string &name)
{
    Registered reg;
    reg.kind = Kind::RatioStat;
    reg.name = name.empty() ? r->name() : name;
    reg.ratio = r;
    checkName(reg.name);
    stats.push_back(std::move(reg));
}

void
Group::add(const Histogram *h, const std::string &name)
{
    Registered reg;
    reg.kind = Kind::HistogramStat;
    reg.name = name.empty() ? h->name() : name;
    reg.histogram = h;
    checkName(reg.name);
    stats.push_back(std::move(reg));
}

void
Group::addFormula(const std::string &name, std::function<double()> fn)
{
    Registered reg;
    reg.kind = Kind::FormulaStat;
    reg.name = name;
    reg.formula = std::move(fn);
    checkName(reg.name);
    stats.push_back(std::move(reg));
}

void
Group::visitImpl(Visitor &v, const std::string &prefix) const
{
    auto join = [&](const std::string &name) {
        return prefix.empty() ? name : prefix + "." + name;
    };
    for (const auto &reg : stats) {
        const std::string p = join(reg.name);
        switch (reg.kind) {
          case Kind::ScalarStat:
            v.onScalar(p, *reg.scalar);
            break;
          case Kind::RatioStat:
            v.onRatio(p, *reg.ratio);
            break;
          case Kind::HistogramStat:
            v.onHistogram(p, *reg.histogram);
            break;
          case Kind::FormulaStat:
            v.onFormula(p, reg.formula());
            break;
        }
    }
    for (const auto &child : children)
        child->visitImpl(v, join(child->groupName));
}

void
Group::visit(Visitor &v) const
{
    visitImpl(v, groupName);
}

Snapshot
Group::snapshot() const
{
    struct Flattener : Visitor
    {
        Snapshot snap;

        void
        onScalar(const std::string &path, const Scalar &s) override
        {
            snap.add(path, static_cast<double>(s.value()));
        }

        void
        onRatio(const std::string &path, const Ratio &r) override
        {
            snap.add(path, r.value());
            snap.add(path + ".num",
                     static_cast<double>(r.numerator()));
            snap.add(path + ".den",
                     static_cast<double>(r.denominator()));
        }

        void
        onHistogram(const std::string &path, const Histogram &h) override
        {
            snap.add(path + ".samples",
                     static_cast<double>(h.totalSamples()));
            snap.add(path + ".mean", h.mean());
            snap.add(path + ".max",
                     static_cast<double>(h.maxValue()));
        }

        void
        onFormula(const std::string &path, double value) override
        {
            snap.add(path, value);
        }
    };

    Flattener flat;
    visit(flat);
    return std::move(flat.snap);
}

std::string
Group::dump() const
{
    struct Printer : Visitor
    {
        std::ostringstream out;

        Printer() { out.precision(6); }

        void
        onScalar(const std::string &path, const Scalar &s) override
        {
            out << path << " " << s.value() << "\n";
        }

        void
        onRatio(const std::string &path, const Ratio &r) override
        {
            // An unsampled ratio is unknown, not zero.
            if (!r.valid()) {
                out << path << " -\n";
            } else {
                out << path << " " << r.value() << " (" << r.numerator()
                    << "/" << r.denominator() << ")\n";
            }
        }

        void
        onHistogram(const std::string &path, const Histogram &h) override
        {
            out << path << " samples=" << h.totalSamples()
                << " mean=" << h.mean() << " max=" << h.maxValue()
                << "\n";
        }

        void
        onFormula(const std::string &path, double value) override
        {
            out << path << " " << value << "\n";
        }
    };

    Printer printer;
    visit(printer);
    return printer.out.str();
}

} // namespace parrot::stats
