/**
 * @file
 * Individual optimization passes over a trace's uop sequence.
 *
 * Classification follows §2.4 of the paper:
 *  - general purpose: constant/copy propagation, logic simplification,
 *    dead-code elimination;
 *  - core-specific: uop fusion (compare+assert, multiply+add),
 *    SIMDification and dynamic-critical-path scheduling.
 *
 * All passes preserve the trace's sequential architectural semantics on
 * every register except flags, which are dead at atomic trace
 * boundaries by trace-semantics convention, plus all memory stores.
 */

#ifndef PARROT_OPTIMIZER_PASSES_HH
#define PARROT_OPTIMIZER_PASSES_HH

#include <vector>

#include "tracecache/trace.hh"

namespace parrot::optimizer
{

using UopVec = std::vector<tracecache::TraceUop>;

/**
 * Forward dataflow pass combining copy propagation, constant folding
 * and algebraic simplification (x^x, x&x, +0, <<0, *1, *0 ...).
 * @return true when anything changed.
 */
bool propagateAndSimplify(UopVec &uops);

/**
 * Backward dead-code elimination. Live-out is every architectural
 * register except flags; stores and control uops are side effects.
 *
 * @param debug_drop_live test hook for the fuzzer's oracle validation:
 *        when true, register r3 is (incorrectly) treated as dead at the
 *        trace exit, making the pass delete live code. Never set
 *        outside tests — it exists so `parrot_fuzz --inject-dce-bug`
 *        can prove the differential oracle and the minimizer work.
 * @return true when uops were removed.
 */
bool eliminateDeadCode(UopVec &uops, bool debug_drop_live = false);

/**
 * Branch promotion for unconditional flow: internal direct jumps (and
 * nops left by earlier passes) carry no information inside an atomic
 * trace and are removed.
 * @return true when uops were removed.
 */
bool removeInternalJumps(UopVec &uops);

/**
 * Fuse Cmp/CmpImm with its unique Assert consumer into a single
 * compare-and-assert uop (placed at the compare's position, where its
 * sources are guaranteed current).
 * @return true when fusions happened.
 */
bool fuseCmpAssert(UopVec &uops);

/**
 * Fuse FpMul feeding a single FpAdd into FpMulAdd when the product
 * register is provably dead after the addition.
 * @return true when fusions happened.
 */
bool fuseMulAdd(UopVec &uops);

/**
 * Strength reduction: multiplications by power-of-two constants become
 * shifts (exact under two's-complement wraparound semantics).
 * @return true when anything changed.
 */
bool reduceStrength(UopVec &uops);

/**
 * Memory redundancy elimination within the trace: a load that provably
 * reads the address of an earlier store (same base-register value and
 * displacement, no possibly-aliasing store in between) becomes a
 * register move; a load that repeats an earlier load likewise reuses
 * the first result. Aliasing is judged conservatively: any intervening
 * store with a different base value kills all memory knowledge.
 * @return true when loads were eliminated.
 */
bool forwardMemory(UopVec &uops);

/**
 * Pack pairs of independent, same-operation ALU/FP uops into two-lane
 * SIMD uops within a small window.
 * @return true when pairs were packed.
 */
bool simdifyPairs(UopVec &uops);

/**
 * Dynamic-critical-path list scheduling: reorder uops (topologically
 * w.r.t. the dependence graph) so the longest chains issue first.
 * @return true (always reorders deterministically).
 */
bool scheduleCriticalPath(UopVec &uops);

} // namespace parrot::optimizer

#endif // PARROT_OPTIMIZER_PASSES_HH
