/**
 * @file
 * The dynamic trace optimizer driver (§2.4, §3.1 of the paper).
 *
 * Modelled as a non-pipelined unit: each blazing trace occupies the
 * optimizer for roughly latencyCycles (the paper models ~100 cycles),
 * runs the enabled passes over the static dependence structure and
 * writes the rewritten trace back to the trace cache.
 */

#ifndef PARROT_OPTIMIZER_OPTIMIZER_HH
#define PARROT_OPTIMIZER_OPTIMIZER_HH

#include "stats/group.hh"
#include "stats/stats.hh"
#include "tracecache/constructor.hh"
#include "tracecache/trace.hh"

namespace parrot::optimizer
{

/** Which passes run, and the modelled cost of running them. */
struct OptimizerConfig
{
    bool propagate = true;  //!< copy/const propagation + simplification
    bool memForward = true; //!< store-to-load forwarding / load reuse
    bool dce = true;        //!< dead-code elimination
    bool promote = true;    //!< internal jump removal
    bool strength = true;   //!< mul-by-power-of-two -> shift
    bool fuseCmp = true;    //!< compare+assert fusion
    bool fuseFp = true;     //!< multiply+add fusion
    bool simdify = true;    //!< two-lane SIMD packing
    bool schedule = true;   //!< critical-path list scheduling

    unsigned latencyCycles = 100; //!< occupancy per optimized trace
    unsigned propagateRounds = 2; //!< propagation fixpoint iterations

    /** Test hook: make DCE unsound (drops live r3 writes) so the
     * fuzzer/oracle layer can prove it detects real bugs. Never set in
     * production configurations. */
    bool debugBreakDce = false;

    /** Generic-only configuration (the paper's general-purpose class). */
    static OptimizerConfig genericOnly();

    /** Everything off (for ablation baselines). */
    static OptimizerConfig disabled();
};

/** Outcome summary of optimizing one trace. */
struct OptimizeResult
{
    unsigned uopsBefore = 0;
    unsigned uopsAfter = 0;
    unsigned depBefore = 0;
    unsigned depAfter = 0;
    unsigned passesRun = 0;

    double
    uopReduction() const
    {
        return uopsBefore == 0
            ? 0.0 : 1.0 - static_cast<double>(uopsAfter) / uopsBefore;
    }

    double
    depReduction() const
    {
        return depBefore == 0
            ? 0.0 : 1.0 - static_cast<double>(depAfter) / depBefore;
    }
};

/**
 * The optimizer. Stateless between traces apart from the cumulative
 * statistics below (the sim models occupancy).
 */
class TraceOptimizer
{
  public:
    explicit TraceOptimizer(const OptimizerConfig &config) : cfg(config) {}

    /**
     * Optimize the trace in place; sets trace.optimized and the
     * dependence-height bookkeeping.
     */
    OptimizeResult optimize(tracecache::Trace &trace);

    /** @name Cumulative statistics over all optimize() calls. @{ */
    Counter tracesOptimized() const { return nOptimized.value(); }
    Counter uopsRemoved() const { return nUopsRemoved.value(); }
    Counter passesRun() const { return nPassesRun.value(); }
    /** @} */

    /** Register cumulative optimization counters into a stats group. */
    void
    regStats(stats::Group &group)
    {
        group.add(&nOptimized);
        group.add(&nUopsRemoved);
        group.add(&nPassesRun);
    }

    const OptimizerConfig &config() const { return cfg; }

  private:
    OptimizerConfig cfg;

    stats::Scalar nOptimized{"traces_optimized"};
    stats::Scalar nUopsRemoved{"uops_removed"};
    stats::Scalar nPassesRun{"passes_run"};
};

} // namespace parrot::optimizer

#endif // PARROT_OPTIMIZER_OPTIMIZER_HH
