#include "optimizer/dep_graph.hh"

#include <algorithm>

#include "common/logging.hh"
#include "isa/registers.hh"

namespace parrot::optimizer
{

using tracecache::TraceUop;

DependencyGraph::DependencyGraph(const std::vector<TraceUop> &uops)
    : n(uops.size()), predList(n), succList(n), heights(n, 0)
{
    // Per-register def/use bookkeeping (indices into uops, -1 = none).
    int lastDef[isa::numArchRegs];
    std::fill(std::begin(lastDef), std::end(lastDef), -1);
    std::vector<std::vector<unsigned>> readersSinceDef(isa::numArchRegs);
    int lastMem = -1;

    auto add_edge = [&](unsigned from, unsigned to) {
        if (from == to)
            return;
        succList[from].push_back(to);
        predList[to].push_back(from);
    };

    for (unsigned i = 0; i < n; ++i) {
        const isa::Uop &uop = uops[i].uop;

        // RAW edges from each source's last definition.
        RegId srcs[4];
        unsigned n_srcs = uop.sources(srcs);
        for (unsigned s = 0; s < n_srcs; ++s) {
            RegId r = srcs[s];
            if (lastDef[r] >= 0)
                add_edge(static_cast<unsigned>(lastDef[r]), i);
            readersSinceDef[r].push_back(i);
        }

        // WAW + WAR edges for each destination.
        RegId dsts[2] = {invalidReg, invalidReg};
        unsigned n_dsts = 0;
        if (uop.hasDst())
            dsts[n_dsts++] = uop.effectiveDst();
        if (uop.dst2 != invalidReg)
            dsts[n_dsts++] = uop.dst2;
        for (unsigned d = 0; d < n_dsts; ++d) {
            RegId r = dsts[d];
            if (lastDef[r] >= 0)
                add_edge(static_cast<unsigned>(lastDef[r]), i); // WAW
            for (unsigned reader : readersSinceDef[r])
                add_edge(reader, i); // WAR
            lastDef[r] = static_cast<int>(i);
            readersSinceDef[r].clear();
        }

        // Conservative memory chain.
        if (uop.kind == isa::UopKind::Load ||
            uop.kind == isa::UopKind::Store) {
            if (lastMem >= 0)
                add_edge(static_cast<unsigned>(lastMem), i);
            lastMem = static_cast<int>(i);
        }
    }

    // Dedup edge lists (a node pair can accrue several hazards).
    for (unsigned i = 0; i < n; ++i) {
        auto dedup = [](std::vector<unsigned> &v) {
            std::sort(v.begin(), v.end());
            v.erase(std::unique(v.begin(), v.end()), v.end());
        };
        dedup(predList[i]);
        dedup(succList[i]);
    }

    // Heights: reverse order works because edges always point forward.
    for (unsigned i = n; i-- > 0;) {
        unsigned h = 0;
        for (unsigned s : succList[i])
            h = std::max(h, heights[s]);
        heights[i] = h + 1;
    }
}

bool
DependencyGraph::isTopological(const std::vector<unsigned> &order) const
{
    if (order.size() != n)
        return false;
    std::vector<unsigned> position(n, 0);
    std::vector<bool> seen(n, false);
    for (unsigned pos = 0; pos < n; ++pos) {
        unsigned node = order[pos];
        if (node >= n || seen[node])
            return false;
        seen[node] = true;
        position[node] = pos;
    }
    for (unsigned i = 0; i < n; ++i) {
        for (unsigned s : succList[i]) {
            if (position[i] >= position[s])
                return false;
        }
    }
    return true;
}

} // namespace parrot::optimizer
