/**
 * @file
 * Semantic-equivalence checking between a trace's uop sequences.
 *
 * The contract every optimizer pass must uphold: executed sequentially
 * from the same initial state, original and optimized uops produce
 * identical values in every architectural register except flags (dead
 * at atomic trace boundaries) and identical memory contents. This is
 * the property the test suite sweeps across thousands of random traces.
 */

#ifndef PARROT_OPTIMIZER_EQUIVALENCE_HH
#define PARROT_OPTIMIZER_EQUIVALENCE_HH

#include <string>
#include <vector>

#include "isa/arch_state.hh"
#include "tracecache/trace.hh"

namespace parrot::optimizer
{

/** Execute a uop sequence on the given state (asserts are no-ops). */
void runSequence(const std::vector<tracecache::TraceUop> &uops,
                 isa::ArchState &state);

/**
 * Compare two uop sequences from a common seeded initial state.
 *
 * @param a first sequence (e.g. the original trace).
 * @param b second sequence (e.g. the optimized trace).
 * @param seed seeds the random initial register file.
 * @param why when non-null, receives a human-readable mismatch report.
 * @return true when final states agree on all registers except flags
 *         and on all written memory words.
 */
bool equivalent(const std::vector<tracecache::TraceUop> &a,
                const std::vector<tracecache::TraceUop> &b,
                std::uint64_t seed, std::string *why = nullptr);

/**
 * Compare two uop sequences across a sweep of derived seeds.
 *
 * A single seed can mask value-dependent bugs (e.g. constant folding
 * that happens to agree with one lucky initial register file), so the
 * property tests and the trace fuzzer sweep at least
 * `defaultEquivalenceSeeds` initial states per comparison.
 *
 * @param base_seed the sweep derives its seeds deterministically from
 *        this value.
 * @param num_seeds how many initial states to try (>= 1).
 * @param why when non-null, receives the mismatch report of the first
 *        failing seed, prefixed with that seed.
 * @param failing_seed when non-null, receives the first failing seed.
 * @return true when every seed agrees.
 */
bool equivalentSweep(const std::vector<tracecache::TraceUop> &a,
                     const std::vector<tracecache::TraceUop> &b,
                     std::uint64_t base_seed, unsigned num_seeds,
                     std::string *why = nullptr,
                     std::uint64_t *failing_seed = nullptr);

/** The sweep width used by the fuzzer and the property tests. */
inline constexpr unsigned defaultEquivalenceSeeds = 8;

} // namespace parrot::optimizer

#endif // PARROT_OPTIMIZER_EQUIVALENCE_HH
