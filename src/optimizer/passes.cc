#include "optimizer/passes.hh"

#include <algorithm>
#include <optional>

#include "common/logging.hh"
#include "isa/registers.hh"
#include "optimizer/dep_graph.hh"

namespace parrot::optimizer
{

using isa::Uop;
using isa::UopKind;
using tracecache::TraceUop;

namespace
{

/** Dataflow lattice value for one register. */
struct RegVal
{
    enum Kind { Unknown, Const, Copy } kind = Unknown;
    std::int64_t constant = 0;
    RegId copyOf = invalidReg;
    std::uint32_t copyVersion = 0;
};

/** True for ALU kinds the folding pass can evaluate. */
bool
foldable(UopKind k)
{
    switch (k) {
      case UopKind::Add:
      case UopKind::AddImm:
      case UopKind::Sub:
      case UopKind::And:
      case UopKind::Or:
      case UopKind::Xor:
      case UopKind::ShlImm:
      case UopKind::ShrImm:
      case UopKind::Mov:
      case UopKind::Lea:
      case UopKind::Mul:
      case UopKind::Div:
        return true;
      default:
        return false;
    }
}

/** Evaluate a foldable op on constants (mirrors isa semantics). */
std::int64_t
evalConst(UopKind k, std::int64_t a, std::int64_t b, std::int64_t imm)
{
    switch (k) {
      case UopKind::Add:    return a + b;
      case UopKind::AddImm: return a + imm;
      case UopKind::Sub:    return a - b;
      case UopKind::And:    return a & b;
      case UopKind::Or:     return a | b;
      case UopKind::Xor:    return a ^ b;
      case UopKind::ShlImm:
        return static_cast<std::int64_t>(
            static_cast<std::uint64_t>(a) << (imm & 63));
      case UopKind::ShrImm:
        return static_cast<std::int64_t>(
            static_cast<std::uint64_t>(a) >> (imm & 63));
      case UopKind::Mov:    return a;
      case UopKind::Lea:    return a + b + imm;
      case UopKind::Mul:    return a * b;
      case UopKind::Div:    return (b == 0) ? 0 : a / b;
      default:
        PARROT_PANIC("evalConst: kind not foldable");
    }
}

} // namespace

bool
propagateAndSimplify(UopVec &uops)
{
    bool changed = false;

    RegVal vals[isa::numArchRegs];
    std::uint32_t version[isa::numArchRegs] = {};

    auto substitute = [&](RegId &field) {
        if (field == invalidReg)
            return;
        const RegVal &v = vals[field];
        if (v.kind == RegVal::Copy && version[v.copyOf] == v.copyVersion) {
            field = v.copyOf;
            changed = true;
        }
    };

    auto const_of = [&](RegId r) -> std::optional<std::int64_t> {
        if (r == invalidReg)
            return std::nullopt;
        if (vals[r].kind == RegVal::Const)
            return vals[r].constant;
        return std::nullopt;
    };

    auto write_reg = [&](RegId r, RegVal v) {
        if (r == invalidReg)
            return;
        ++version[r];
        vals[r] = v;
    };

    for (TraceUop &tu : uops) {
        Uop &uop = tu.uop;

        // Copy propagation never applies to SIMD/fused lanes: those
        // kinds are created by later passes, but stay defensive.
        substitute(uop.src1);
        substitute(uop.src2);
        substitute(uop.src1b);
        substitute(uop.src2b);

        switch (uop.kind) {
          case UopKind::MovImm:
            write_reg(uop.dst, RegVal{RegVal::Const, uop.imm, invalidReg, 0});
            continue;

          case UopKind::Mov: {
            if (auto c = const_of(uop.src1)) {
                uop = isa::makeMovImm(uop.dst, *c);
                write_reg(uop.dst,
                          RegVal{RegVal::Const, *c, invalidReg, 0});
                changed = true;
            } else {
                RegId src = uop.src1;
                write_reg(uop.dst,
                          RegVal{RegVal::Copy, 0, src, version[src]});
            }
            continue;
          }

          case UopKind::Cmp:
          case UopKind::CmpImm:
            // Flags become statically known only with const sources; we
            // still keep the compare (branch directions in the workload
            // are profile-driven, so asserts are never promoted away).
            write_reg(isa::regFlags, RegVal{});
            continue;

          case UopKind::Load:
            write_reg(uop.dst, RegVal{});
            continue;

          case UopKind::Store:
          case UopKind::Branch:
          case UopKind::Jump:
          case UopKind::JumpInd:
          case UopKind::Call:
          case UopKind::Return:
          case UopKind::AssertTaken:
          case UopKind::AssertNotTaken:
          case UopKind::AssertCmpTaken:
          case UopKind::AssertCmpNotTaken:
          case UopKind::Nop:
            continue;

          default:
            break;
        }

        if (!foldable(uop.kind)) {
            // FP ops and anything else: destination becomes unknown.
            write_reg(uop.dst, RegVal{});
            if (uop.dst2 != invalidReg)
                write_reg(uop.dst2, RegVal{});
            continue;
        }

        auto c1 = const_of(uop.src1);
        auto c2 = const_of(uop.src2);
        const bool unary = (uop.src2 == invalidReg);

        // Full constant folding.
        if (c1 && (unary || c2)) {
            std::int64_t result =
                evalConst(uop.kind, *c1, c2.value_or(0), uop.imm);
            uop = isa::makeMovImm(uop.dst, result);
            write_reg(uop.dst,
                      RegVal{RegVal::Const, result, invalidReg, 0});
            changed = true;
            continue;
        }

        // Algebraic simplification to Mov/MovImm.
        auto to_mov = [&](RegId src) {
            uop = isa::makeMov(uop.dst, src);
            write_reg(uop.dst, RegVal{RegVal::Copy, 0, src, version[src]});
            changed = true;
        };
        auto to_movimm = [&](std::int64_t v) {
            uop = isa::makeMovImm(uop.dst, v);
            write_reg(uop.dst, RegVal{RegVal::Const, v, invalidReg, 0});
            changed = true;
        };

        switch (uop.kind) {
          case UopKind::Xor:
          case UopKind::Sub:
            if (uop.src1 == uop.src2) {
                to_movimm(0);
                continue;
            }
            break;
          case UopKind::And:
          case UopKind::Or:
            if (uop.src1 == uop.src2) {
                to_mov(uop.src1);
                continue;
            }
            if (uop.kind == UopKind::And && ((c1 && *c1 == 0) ||
                                             (c2 && *c2 == 0))) {
                to_movimm(0);
                continue;
            }
            break;
          case UopKind::Add:
            if (c1 && *c1 == 0) {
                to_mov(uop.src2);
                continue;
            }
            if (c2 && *c2 == 0) {
                to_mov(uop.src1);
                continue;
            }
            break;
          case UopKind::AddImm:
          case UopKind::ShlImm:
          case UopKind::ShrImm:
            if (uop.imm == 0) {
                to_mov(uop.src1);
                continue;
            }
            break;
          case UopKind::Mul:
            if ((c1 && *c1 == 0) || (c2 && *c2 == 0)) {
                to_movimm(0);
                continue;
            }
            if (c1 && *c1 == 1) {
                to_mov(uop.src2);
                continue;
            }
            if (c2 && *c2 == 1) {
                to_mov(uop.src1);
                continue;
            }
            break;
          default:
            break;
        }

        write_reg(uop.dst, RegVal{});
    }
    return changed;
}

bool
eliminateDeadCode(UopVec &uops, bool debug_drop_live)
{
    bool live[isa::numArchRegs];
    std::fill(std::begin(live), std::end(live), true);
    // Trace semantics: flags are dead at atomic boundaries.
    live[isa::regFlags] = false;
    if (debug_drop_live)
        live[3] = false; // deliberate soundness bug (fuzzer test hook)

    std::vector<bool> keep(uops.size(), true);
    bool changed = false;

    for (std::size_t i = uops.size(); i-- > 0;) {
        const Uop &uop = uops[i].uop;

        const bool side_effect =
            uop.kind == UopKind::Store || isa::isCti(uop.kind);

        RegId dsts[2] = {invalidReg, invalidReg};
        unsigned n_dsts = 0;
        if (uop.hasDst())
            dsts[n_dsts++] = uop.effectiveDst();
        if (uop.dst2 != invalidReg)
            dsts[n_dsts++] = uop.dst2;

        bool any_dst_live = (n_dsts == 0); // dst-less uops stay via
                                           // side_effect check below
        for (unsigned d = 0; d < n_dsts; ++d)
            any_dst_live |= live[dsts[d]];

        if (!side_effect && n_dsts > 0 && !any_dst_live) {
            keep[i] = false;
            changed = true;
            continue; // removed: neither kills nor uses anything
        }

        for (unsigned d = 0; d < n_dsts; ++d)
            live[dsts[d]] = false;

        RegId srcs[4];
        unsigned n_srcs = uop.sources(srcs);
        for (unsigned s = 0; s < n_srcs; ++s)
            live[srcs[s]] = true;
    }

    if (changed) {
        UopVec kept;
        kept.reserve(uops.size());
        for (std::size_t i = 0; i < uops.size(); ++i) {
            if (keep[i])
                kept.push_back(uops[i]);
        }
        uops = std::move(kept);
    }
    return changed;
}

bool
removeInternalJumps(UopVec &uops)
{
    auto is_removable = [](const TraceUop &tu) {
        return tu.uop.kind == UopKind::Jump ||
               tu.uop.kind == UopKind::Nop;
    };
    std::size_t before = uops.size();
    uops.erase(std::remove_if(uops.begin(), uops.end(), is_removable),
               uops.end());
    return uops.size() != before;
}

bool
fuseCmpAssert(UopVec &uops)
{
    bool changed = false;
    // For each flags definition, collect its reader indices.
    int def_idx = -1;
    std::vector<int> readers;
    std::vector<std::pair<int, int>> fusable; // (cmp index, assert index)

    auto consider = [&]() {
        if (def_idx < 0 || readers.size() != 1)
            return;
        const Uop &def = uops[def_idx].uop;
        const Uop &use = uops[readers[0]].uop;
        if ((def.kind == UopKind::Cmp || def.kind == UopKind::CmpImm) &&
            (use.kind == UopKind::AssertTaken ||
             use.kind == UopKind::AssertNotTaken)) {
            fusable.emplace_back(def_idx, readers[0]);
        }
    };

    for (std::size_t i = 0; i < uops.size(); ++i) {
        const Uop &uop = uops[i].uop;
        if (isa::readsFlags(uop.kind))
            readers.push_back(static_cast<int>(i));
        if (isa::writesFlags(uop.kind)) {
            consider();
            def_idx = static_cast<int>(i);
            readers.clear();
        }
    }
    consider();

    if (fusable.empty())
        return false;

    std::vector<bool> remove(uops.size(), false);
    for (auto [cmp_idx, assert_idx] : fusable) {
        const Uop cmp = uops[cmp_idx].uop;
        const Uop asrt = uops[assert_idx].uop;
        const bool taken = (asrt.kind == UopKind::AssertTaken);
        // The fused uop evaluates the comparison at the compare's
        // original position, where its sources are live.
        Uop fused;
        fused.kind = taken ? UopKind::AssertCmpTaken
                           : UopKind::AssertCmpNotTaken;
        fused.src1 = cmp.src1;
        fused.src2 = cmp.src2;
        fused.imm = cmp.imm;
        fused.assertTarget = asrt.assertTarget;
        uops[cmp_idx].uop = fused;
        remove[assert_idx] = true;
        changed = true;
    }

    UopVec kept;
    kept.reserve(uops.size());
    for (std::size_t i = 0; i < uops.size(); ++i) {
        if (!remove[i])
            kept.push_back(uops[i]);
    }
    uops = std::move(kept);
    return changed;
}

bool
fuseMulAdd(UopVec &uops)
{
    const std::size_t n = uops.size();
    if (n < 2)
        return false;

    // def-use over plain registers: for each position, where is each
    // register's current definition and how many readers has it had.
    std::vector<int> def_of(n, -1);       // for FpAdd i: index of FpMul def
    std::vector<int> reader_count(n, 0);  // readers of each def
    std::vector<bool> src_invalidated(n, false); // mul srcs redefined?
    std::vector<int> redefined_after(n, -1); // next redefinition of dst

    int cur_def[isa::numArchRegs];
    std::fill(std::begin(cur_def), std::end(cur_def), -1);

    for (std::size_t i = 0; i < n; ++i) {
        const Uop &uop = uops[i].uop;
        RegId srcs[4];
        unsigned n_srcs = uop.sources(srcs);
        for (unsigned s = 0; s < n_srcs; ++s) {
            int d = cur_def[srcs[s]];
            if (d >= 0)
                ++reader_count[d];
        }

        if (uop.kind == UopKind::FpAdd && uop.src1 != invalidReg &&
            uop.src2 != invalidReg) {
            // Candidate: one operand produced by a live FpMul def.
            for (RegId operand : {uop.src1, uop.src2}) {
                int d = cur_def[operand];
                if (d >= 0 && uops[d].uop.kind == UopKind::FpMul) {
                    def_of[i] = d;
                    break;
                }
            }
        }

        RegId dsts[2] = {invalidReg, invalidReg};
        unsigned n_dsts = 0;
        if (uop.hasDst())
            dsts[n_dsts++] = uop.effectiveDst();
        if (uop.dst2 != invalidReg)
            dsts[n_dsts++] = uop.dst2;
        for (unsigned d = 0; d < n_dsts; ++d) {
            int old = cur_def[dsts[d]];
            if (old >= 0 && redefined_after[old] < 0)
                redefined_after[old] = static_cast<int>(i);
            cur_def[dsts[d]] = static_cast<int>(i);
        }

        // Invalidate muls whose sources are being redefined: they can
        // no longer be recomputed later at the add's position.
        for (std::size_t m = 0; m < i; ++m) {
            if (uops[m].uop.kind != UopKind::FpMul)
                continue;
            for (unsigned d = 0; d < n_dsts; ++d) {
                if (dsts[d] == uops[m].uop.src1 ||
                    dsts[d] == uops[m].uop.src2) {
                    src_invalidated[m] = true;
                }
            }
        }
    }

    std::vector<bool> remove(n, false);
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
        int d = def_of[i];
        if (d < 0 || remove[d] || src_invalidated[d])
            continue;
        const Uop add = uops[i].uop;
        const Uop mul = uops[d].uop;
        // The product must have exactly one reader (this add) and be
        // dead afterwards (redefined later, possibly by the add itself).
        if (reader_count[d] != 1)
            continue;
        // The def is still current at i, so any recorded redefinition
        // necessarily comes after the add (or is the add itself).
        const bool product_dead =
            (add.dst == mul.dst) || (redefined_after[d] >= 0);
        if (!product_dead)
            continue;
        if (src_invalidated[d])
            continue;

        RegId addend = (add.src1 == mul.dst) ? add.src2 : add.src1;
        if (addend == mul.dst)
            continue; // add of product with itself: leave alone
        uops[i].uop = isa::makeFpMulAdd(add.dst, mul.src1, mul.src2,
                                        addend);
        remove[d] = true;
        changed = true;
    }

    if (changed) {
        UopVec kept;
        kept.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            if (!remove[i])
                kept.push_back(uops[i]);
        }
        uops = std::move(kept);
    }
    return changed;
}

bool
reduceStrength(UopVec &uops)
{
    bool changed = false;
    // Constant values of registers, tracked from MovImm definitions.
    bool is_const[isa::numArchRegs] = {};
    std::int64_t const_val[isa::numArchRegs] = {};

    auto pow2_exp = [](std::int64_t v) -> int {
        if (v < 2)
            return -1;
        auto u = static_cast<std::uint64_t>(v);
        if ((u & (u - 1)) != 0)
            return -1;
        int k = 0;
        while (u > 1) {
            u >>= 1;
            ++k;
        }
        return k;
    };

    for (TraceUop &tu : uops) {
        Uop &uop = tu.uop;
        if (uop.kind == UopKind::Mul) {
            // x * 2^k == x << k exactly, under two's-complement
            // wraparound (both mod 2^64).
            int k = -1;
            RegId other = invalidReg;
            if (uop.src2 != invalidReg && is_const[uop.src2] &&
                (k = pow2_exp(const_val[uop.src2])) >= 0) {
                other = uop.src1;
            } else if (uop.src1 != invalidReg && is_const[uop.src1] &&
                       (k = pow2_exp(const_val[uop.src1])) >= 0) {
                other = uop.src2;
            }
            if (k >= 0 && other != invalidReg) {
                uop = isa::makeAluImm(UopKind::ShlImm, uop.dst, other, k);
                changed = true;
            }
        }

        RegId dsts[2] = {invalidReg, invalidReg};
        unsigned n_dsts = 0;
        if (uop.hasDst())
            dsts[n_dsts++] = uop.effectiveDst();
        if (uop.dst2 != invalidReg)
            dsts[n_dsts++] = uop.dst2;
        for (unsigned d = 0; d < n_dsts; ++d)
            is_const[dsts[d]] = false;
        if (uop.kind == UopKind::MovImm) {
            is_const[uop.dst] = true;
            const_val[uop.dst] = uop.imm;
        }
    }
    return changed;
}

bool
forwardMemory(UopVec &uops)
{
    bool changed = false;

    // Register value versions (bumped on every write).
    std::uint32_t version[isa::numArchRegs] = {};

    // Known memory words: (base reg, base version, displacement) holds
    // the value of (value reg @ value version).
    struct Known
    {
        RegId base;
        std::uint32_t baseVersion;
        std::int64_t imm;
        RegId valueReg;
        std::uint32_t valueVersion;
    };
    std::vector<Known> known;

    auto bump = [&](RegId r) {
        if (r != invalidReg)
            ++version[r];
    };

    for (TraceUop &tu : uops) {
        Uop &uop = tu.uop;

        if (uop.kind == UopKind::Store) {
            const RegId base = uop.src2;
            // Kill everything that may alias: only same-base-value
            // entries with a *different* displacement provably don't.
            known.erase(
                std::remove_if(known.begin(), known.end(),
                               [&](const Known &k) {
                                   bool same_base =
                                       k.base == base &&
                                       k.baseVersion == version[base];
                                   return !(same_base && k.imm != uop.imm);
                               }),
                known.end());
            known.push_back(Known{base, version[base], uop.imm, uop.src1,
                                  version[uop.src1]});
            continue;
        }

        if (uop.kind == UopKind::Load) {
            const RegId base = uop.src1;
            const std::uint32_t base_ver = version[base];
            bool forwarded = false;
            for (const Known &k : known) {
                if (k.base == base && k.baseVersion == base_ver &&
                    k.imm == uop.imm &&
                    version[k.valueReg] == k.valueVersion) {
                    uop = isa::makeMov(uop.dst, k.valueReg);
                    bump(uop.dst);
                    forwarded = true;
                    changed = true;
                    break;
                }
            }
            if (!forwarded) {
                RegId dst = uop.dst;
                bump(dst);
                // A pointer-chase load (dst == base) clobbers its own
                // address register; its word is not re-addressable.
                if (dst != base) {
                    known.push_back(Known{base, base_ver, uop.imm, dst,
                                          version[dst]});
                }
            }
            continue;
        }

        if (uop.hasDst())
            bump(uop.effectiveDst());
        if (uop.dst2 != invalidReg)
            bump(uop.dst2);
    }
    return changed;
}

bool
simdifyPairs(UopVec &uops)
{
    static constexpr unsigned window = 6;
    /** Maximum ASAP-time skew between packed lanes: pairing uops of
     * different criticality drags the earlier lane's consumers onto
     * the later lane's input chain; across an unrolled loop body that
     * compounds per iteration, so only near-equal-readiness lanes may
     * pack. */
    static constexpr unsigned maxLaneSkew = 1;
    const std::size_t n = uops.size();
    std::vector<bool> remove(n, false);
    std::vector<bool> packed(n, false);
    bool changed = false;

    // Latency-weighted ASAP issue times on the original order.
    std::vector<unsigned> asap(n, 0);
    {
        unsigned ready_at[isa::numArchRegs] = {};
        for (std::size_t i = 0; i < n; ++i) {
            const Uop &uop = uops[i].uop;
            unsigned t = 0;
            RegId srcs[4];
            unsigned n_srcs = uop.sources(srcs);
            for (unsigned s = 0; s < n_srcs; ++s)
                t = std::max(t, ready_at[srcs[s]]);
            asap[i] = t;
            unsigned done = t + isa::uopLatency(uop);
            if (uop.hasDst())
                ready_at[uop.effectiveDst()] = done;
            if (uop.dst2 != invalidReg)
                ready_at[uop.dst2] = done;
        }
    }

    auto eligible = [](const Uop &uop) {
        switch (uop.kind) {
          case UopKind::Add:
          case UopKind::Sub:
          case UopKind::And:
          case UopKind::Or:
          case UopKind::Xor:
          case UopKind::AddImm:
          case UopKind::ShlImm:
          case UopKind::ShrImm:
          case UopKind::FpAdd:
          case UopKind::FpMul:
            return uop.dst != invalidReg;
          default:
            return false;
        }
    };

    auto writes_reg = [](const Uop &uop, RegId r) {
        return (uop.hasDst() && uop.effectiveDst() == r) ||
               (uop.dst2 != invalidReg && uop.dst2 == r);
    };
    auto reads_reg = [](const Uop &uop, RegId r) {
        RegId srcs[4];
        unsigned n_srcs = uop.sources(srcs);
        for (unsigned s = 0; s < n_srcs; ++s) {
            if (srcs[s] == r)
                return true;
        }
        return false;
    };

    for (std::size_t i = 0; i < n; ++i) {
        if (remove[i] || packed[i] || !eligible(uops[i].uop))
            continue;
        const Uop a = uops[i].uop;

        for (std::size_t j = i + 1; j < n && j <= i + window; ++j) {
            if (remove[j] || packed[j])
                continue;
            const Uop b = uops[j].uop;
            if (b.kind != a.kind || b.imm != a.imm)
                continue;
            if (b.dst == a.dst)
                continue;
            // Only pack lanes of comparable criticality.
            unsigned skew = asap[i] > asap[j] ? asap[i] - asap[j]
                                              : asap[j] - asap[i];
            if (skew > maxLaneSkew)
                continue;

            // Lane b must be movable to position i: nothing in [i, j)
            // may write b's sources, and nothing in (i, j) may read or
            // write b's destination; b itself must not read a's dst.
            bool movable = !reads_reg(b, a.dst);
            for (std::size_t k = i; movable && k < j; ++k) {
                if (remove[k])
                    continue;
                const Uop &mid = uops[k].uop;
                RegId b_srcs[4];
                unsigned nb = b.sources(b_srcs);
                for (unsigned s = 0; s < nb && movable; ++s) {
                    if (writes_reg(mid, b_srcs[s]))
                        movable = false;
                }
                if (k > i && (writes_reg(mid, b.dst) ||
                              reads_reg(mid, b.dst))) {
                    movable = false;
                }
            }
            if (!movable)
                continue;

            uops[i].uop = isa::makeSimdPair(a.kind, a, b);
            packed[i] = true;
            remove[j] = true;
            changed = true;
            break;
        }
    }

    if (changed) {
        UopVec kept;
        kept.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            if (!remove[i])
                kept.push_back(uops[i]);
        }
        uops = std::move(kept);
    }
    return changed;
}

bool
scheduleCriticalPath(UopVec &uops)
{
    const std::size_t n = uops.size();
    if (n < 2)
        return false;

    DependencyGraph graph(uops);

    std::vector<unsigned> preds_left(n);
    for (unsigned i = 0; i < n; ++i)
        preds_left[i] = graph.preds(i).size();

    // Greedy list scheduling: among ready nodes pick the most critical
    // (greatest height), breaking ties by original order.
    std::vector<unsigned> order;
    order.reserve(n);
    std::vector<bool> scheduled(n, false);

    for (std::size_t step = 0; step < n; ++step) {
        int best = -1;
        for (unsigned i = 0; i < n; ++i) {
            if (scheduled[i] || preds_left[i] != 0)
                continue;
            if (best < 0 || graph.height(i) >
                                graph.height(static_cast<unsigned>(best)))
                best = static_cast<int>(i);
        }
        PARROT_ASSERT(best >= 0, "scheduler: no ready node (cycle?)");
        unsigned node = static_cast<unsigned>(best);
        scheduled[node] = true;
        order.push_back(node);
        for (unsigned s : graph.succs(node)) {
            PARROT_ASSERT(preds_left[s] > 0, "scheduler bookkeeping");
            --preds_left[s];
        }
    }

    PARROT_ASSERT(graph.isTopological(order),
                  "scheduler produced a non-topological order");

    UopVec reordered;
    reordered.reserve(n);
    for (unsigned idx : order)
        reordered.push_back(uops[idx]);
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
        if (order[i] != i) {
            changed = true;
            break;
        }
    }
    uops = std::move(reordered);
    return changed;
}

} // namespace parrot::optimizer
