#include "optimizer/equivalence.hh"

#include <cstdio>

#include "common/random.hh"
#include "isa/registers.hh"

namespace parrot::optimizer
{

void
runSequence(const std::vector<tracecache::TraceUop> &uops,
            isa::ArchState &state)
{
    for (const auto &tu : uops)
        isa::executeUop(tu.uop, state);
}

bool
equivalent(const std::vector<tracecache::TraceUop> &a,
           const std::vector<tracecache::TraceUop> &b, std::uint64_t seed,
           std::string *why)
{
    isa::ArchState sa, sb;
    Rng rng(seed);
    for (unsigned r = 0; r < isa::numArchRegs; ++r) {
        // Small-ish values keep load/store addresses well-behaved while
        // still exercising non-trivial dataflow.
        auto v = static_cast<std::int64_t>(rng.below(1u << 20));
        sa.setReg(static_cast<RegId>(r), v);
        sb.setReg(static_cast<RegId>(r), v);
    }

    runSequence(a, sa);
    runSequence(b, sb);

    for (unsigned r = 0; r < isa::numArchRegs; ++r) {
        if (r == isa::regFlags)
            continue; // dead at atomic trace boundaries
        if (sa.reg(static_cast<RegId>(r)) != sb.reg(static_cast<RegId>(r))) {
            if (why) {
                char buf[128];
                std::snprintf(buf, sizeof(buf),
                              "register r%u differs: %lld vs %lld", r,
                              static_cast<long long>(
                                  sa.reg(static_cast<RegId>(r))),
                              static_cast<long long>(
                                  sb.reg(static_cast<RegId>(r))));
                *why = buf;
            }
            return false;
        }
    }

    // Memory: every word either wrote must agree between both runs
    // (reads of unwritten words are a deterministic address hash, so
    // comparing through read() covers removed dead stores as well).
    auto compare_mem = [&](const isa::SparseMemory &x,
                           const isa::SparseMemory &y,
                           const char *label) {
        for (const auto &[addr, value] : x.writtenEntries()) {
            if (y.read(addr) != value) {
                if (why) {
                    char buf[128];
                    std::snprintf(buf, sizeof(buf),
                                  "%s memory @0x%llx differs", label,
                                  static_cast<unsigned long long>(addr));
                    *why = buf;
                }
                return false;
            }
        }
        return true;
    };
    return compare_mem(sa.mem, sb.mem, "a-side") &&
           compare_mem(sb.mem, sa.mem, "b-side");
}

bool
equivalentSweep(const std::vector<tracecache::TraceUop> &a,
                const std::vector<tracecache::TraceUop> &b,
                std::uint64_t base_seed, unsigned num_seeds,
                std::string *why, std::uint64_t *failing_seed)
{
    for (unsigned i = 0; i < num_seeds; ++i) {
        // Decorrelate the sweep: neighbouring base seeds must not
        // produce overlapping initial register files.
        const std::uint64_t seed =
            mix64(base_seed + i * 0x9e3779b97f4a7c15ull);
        std::string inner;
        if (!equivalent(a, b, seed, why ? &inner : nullptr)) {
            if (why) {
                char buf[64];
                std::snprintf(buf, sizeof(buf), "seed %llu: ",
                              static_cast<unsigned long long>(seed));
                *why = buf + inner;
            }
            if (failing_seed)
                *failing_seed = seed;
            return false;
        }
    }
    return true;
}

} // namespace parrot::optimizer
