/**
 * @file
 * Static dependence graph over a trace's uops (§3.1: "the optimizer
 * maintains a static dependency graph, which is used across different
 * optimization passes").
 *
 * Edges cover register RAW/WAR/WAW hazards plus a conservative total
 * order over memory operations (addresses are dynamic, so loads and
 * stores may not be reordered with respect to each other). Any
 * topological order of this graph preserves the trace's sequential
 * semantics.
 */

#ifndef PARROT_OPTIMIZER_DEP_GRAPH_HH
#define PARROT_OPTIMIZER_DEP_GRAPH_HH

#include <cstdint>
#include <vector>

#include "tracecache/trace.hh"

namespace parrot::optimizer
{

/**
 * Dependence graph with per-node criticality heights.
 */
class DependencyGraph
{
  public:
    /** Build the graph for the given uop sequence. */
    explicit DependencyGraph(const std::vector<tracecache::TraceUop> &uops);

    unsigned numNodes() const { return n; }

    /** Predecessors (must execute before) of node i. */
    const std::vector<unsigned> &preds(unsigned i) const
    {
        return predList[i];
    }

    /** Successors of node i. */
    const std::vector<unsigned> &succs(unsigned i) const
    {
        return succList[i];
    }

    /**
     * Criticality of node i: the number of nodes on the longest
     * dependence chain from i to any leaf (i included).
     */
    unsigned height(unsigned i) const { return heights[i]; }

    /** True when `order` is a topological order of the graph. */
    bool isTopological(const std::vector<unsigned> &order) const;

  private:
    unsigned n;
    std::vector<std::vector<unsigned>> predList;
    std::vector<std::vector<unsigned>> succList;
    std::vector<unsigned> heights;
};

} // namespace parrot::optimizer

#endif // PARROT_OPTIMIZER_DEP_GRAPH_HH
