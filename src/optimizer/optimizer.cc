#include "optimizer/optimizer.hh"

#include "optimizer/passes.hh"

namespace parrot::optimizer
{

OptimizerConfig
OptimizerConfig::genericOnly()
{
    OptimizerConfig cfg;
    cfg.fuseCmp = false;
    cfg.fuseFp = false;
    cfg.simdify = false;
    cfg.schedule = false;
    return cfg;
}

OptimizerConfig
OptimizerConfig::disabled()
{
    OptimizerConfig cfg;
    cfg.propagate = false;
    cfg.memForward = false;
    cfg.dce = false;
    cfg.promote = false;
    cfg.strength = false;
    cfg.fuseCmp = false;
    cfg.fuseFp = false;
    cfg.simdify = false;
    cfg.schedule = false;
    return cfg;
}

OptimizeResult
TraceOptimizer::optimize(tracecache::Trace &trace)
{
    OptimizeResult result;
    result.uopsBefore = trace.uops.size();
    result.depBefore = tracecache::computeDepHeight(trace.uops);

    // General-purpose passes first: propagation enables DCE, DCE
    // shrinks the work the core-specific passes see.
    if (cfg.propagate) {
        for (unsigned round = 0; round < cfg.propagateRounds; ++round) {
            ++result.passesRun;
            if (!propagateAndSimplify(trace.uops))
                break;
        }
    }
    if (cfg.memForward) {
        ++result.passesRun;
        forwardMemory(trace.uops);
        if (cfg.propagate)
            propagateAndSimplify(trace.uops); // chase the new copies
    }
    if (cfg.dce) {
        ++result.passesRun;
        eliminateDeadCode(trace.uops, cfg.debugBreakDce);
    }
    if (cfg.promote) {
        ++result.passesRun;
        removeInternalJumps(trace.uops);
    }
    if (cfg.strength) {
        ++result.passesRun;
        reduceStrength(trace.uops);
    }

    // Core-specific transformations.
    if (cfg.fuseCmp) {
        ++result.passesRun;
        fuseCmpAssert(trace.uops);
    }
    if (cfg.fuseFp) {
        ++result.passesRun;
        fuseMulAdd(trace.uops);
    }
    if (cfg.simdify) {
        ++result.passesRun;
        simdifyPairs(trace.uops);
    }
    if (cfg.schedule) {
        ++result.passesRun;
        scheduleCriticalPath(trace.uops);
    }

    result.uopsAfter = trace.uops.size();
    result.depAfter = tracecache::computeDepHeight(trace.uops);

    trace.optimized = true;
    trace.depHeight = static_cast<std::uint16_t>(result.depAfter);
    // originalUopCount / originalDepHeight were set at construction.

    nOptimized.add();
    if (result.uopsAfter < result.uopsBefore)
        nUopsRemoved.add(result.uopsBefore - result.uopsAfter);
    nPassesRun.add(result.passesRun);
    return result;
}

} // namespace parrot::optimizer
