/**
 * @file
 * Cold-pipeline front-end predictors: a gshare direction predictor, a
 * branch target buffer and a return-address stack.
 */

#ifndef PARROT_FRONTEND_BRANCH_PREDICTOR_HH
#define PARROT_FRONTEND_BRANCH_PREDICTOR_HH

#include <vector>

#include "common/bitutil.hh"
#include "common/counters.hh"
#include "common/serialize.hh"
#include "common/types.hh"
#include "stats/group.hh"
#include "stats/stats.hh"

namespace parrot::frontend
{

/** Configuration of the branch-prediction structures. */
struct BranchPredictorConfig
{
    unsigned numEntries = 4096; //!< direction table entries (paper: 4K/2K)
    unsigned historyBits = 12;
    unsigned btbEntries = 1024;
    unsigned rasEntries = 16;
    unsigned counterBits = 2;

    /** Relative clock-tree size for idle-clock power accounting
     * (power::PowerGate): a 4K-entry predictor clocks more array than
     * the halved PARROT one. */
    unsigned clockWeight() const { return numEntries >= 4096 ? 2 : 1; }
};

/**
 * A tournament conditional-branch direction predictor (bimodal +
 * gshare with a per-pc chooser, in the style of the Alpha 21264),
 * backed by a BTB and a return-address stack.
 *
 * Interface is split into predict / update so the pipeline can model
 * speculative prediction at fetch and training at commit. Since the
 * simulators are trace-driven, history is updated with actual outcomes
 * immediately after each prediction.
 */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const BranchPredictorConfig &config);

    /** Predict the direction of the conditional branch at pc. */
    bool predict(Addr pc);

    /** Train with the actual outcome and update global history. */
    void update(Addr pc, bool taken);

    /**
     * Warm-state training for sampled fast-forward: trains the
     * direction tables, chooser and global history exactly like
     * update() but records no accuracy sample — warm phases keep the
     * predictor hot without diluting the measured window's ratio.
     */
    void warmUpdate(Addr pc, bool taken);

    /** @name BTB — taken-target cache for direct CTIs. @{ */
    bool btbLookup(Addr pc, Addr &target) const;
    void btbInsert(Addr pc, Addr target);
    /** @} */

    /** @name RAS — return address stack. @{ */
    void rasPush(Addr return_addr);
    Addr rasPop();
    /** @} */

    /** Direction misprediction ratio so far. */
    double mispredictRatio() const { return 1.0 - correct.value(); }

    /** Total predictions and mispredictions (for figures). */
    Counter predictions() const { return correct.denominator(); }
    Counter mispredictions() const
    {
        return correct.denominator() - correct.numerator();
    }

    const BranchPredictorConfig &config() const { return cfg; }

    void resetStats() { correct.reset(); }

    /** Register the direction-accuracy ratio into a stats-tree group. */
    void
    regStats(stats::Group &group)
    {
        group.add(&correct);
        group.addFormula("mispredict_ratio",
                         [this] { return mispredictRatio(); });
    }

    /** Serialize tables, history, BTB, RAS and counters. */
    void saveState(serial::Writer &out) const;

    /** Restore checkpointed state (geometry must match). */
    void loadState(serial::Reader &in);

  private:
    void train(Addr pc, bool taken, bool record_sample);

    std::uint64_t bimodalIndex(Addr pc) const;
    std::uint64_t gshareIndex(Addr pc) const;

    BranchPredictorConfig cfg;
    std::vector<SatCounter> bimodal;
    std::vector<SatCounter> gshare;
    std::vector<SatCounter> chooser;
    HistoryRegister history;

    struct BtbEntry
    {
        Addr pc = 0;
        Addr target = 0;
        bool valid = false;
    };
    std::vector<BtbEntry> btb;
    std::vector<Addr> ras;

    stats::Ratio correct{"direction_correct"};
};

} // namespace parrot::frontend

#endif // PARROT_FRONTEND_BRANCH_PREDICTOR_HH
