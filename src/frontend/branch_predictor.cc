#include "frontend/branch_predictor.hh"

#include "common/logging.hh"

namespace parrot::frontend
{

BranchPredictor::BranchPredictor(const BranchPredictorConfig &config)
    : cfg(config), history(config.historyBits)
{
    if (!isPowerOfTwo(cfg.numEntries) || !isPowerOfTwo(cfg.btbEntries))
        PARROT_FATAL("branch predictor tables must be powers of two");
    bimodal.assign(cfg.numEntries, SatCounter(cfg.counterBits, 1));
    gshare.assign(cfg.numEntries, SatCounter(cfg.counterBits, 1));
    // Chooser starts leaning toward the bimodal component, which
    // learns fastest on the heavily biased branches that dominate.
    chooser.assign(cfg.numEntries, SatCounter(2, 1));
    btb.resize(cfg.btbEntries);
    ras.reserve(cfg.rasEntries);
}

std::uint64_t
BranchPredictor::bimodalIndex(Addr pc) const
{
    return mix64(pc) & (cfg.numEntries - 1);
}

std::uint64_t
BranchPredictor::gshareIndex(Addr pc) const
{
    return (mix64(pc) ^ history.value()) & (cfg.numEntries - 1);
}

bool
BranchPredictor::predict(Addr pc)
{
    const bool use_gshare = chooser[bimodalIndex(pc)].isSet();
    return use_gshare ? gshare[gshareIndex(pc)].isSet()
                      : bimodal[bimodalIndex(pc)].isSet();
}

void
BranchPredictor::update(Addr pc, bool taken)
{
    const std::uint64_t bi = bimodalIndex(pc);
    const std::uint64_t gi = gshareIndex(pc);
    SatCounter &b = bimodal[bi];
    SatCounter &g = gshare[gi];
    SatCounter &c = chooser[bi];

    const bool b_correct = (b.isSet() == taken);
    const bool g_correct = (g.isSet() == taken);
    const bool used_gshare = c.isSet();
    correct.sample(used_gshare ? g_correct : b_correct);

    // Chooser trains toward whichever component was right.
    if (g_correct && !b_correct)
        c.increment();
    else if (b_correct && !g_correct)
        c.decrement();

    if (taken) {
        b.increment();
        g.increment();
    } else {
        b.decrement();
        g.decrement();
    }
    history.push(taken);
}

bool
BranchPredictor::btbLookup(Addr pc, Addr &target) const
{
    const BtbEntry &entry = btb[mix64(pc) & (cfg.btbEntries - 1)];
    if (entry.valid && entry.pc == pc) {
        target = entry.target;
        return true;
    }
    return false;
}

void
BranchPredictor::btbInsert(Addr pc, Addr target)
{
    BtbEntry &entry = btb[mix64(pc) & (cfg.btbEntries - 1)];
    entry.pc = pc;
    entry.target = target;
    entry.valid = true;
}

void
BranchPredictor::rasPush(Addr return_addr)
{
    if (ras.size() >= cfg.rasEntries)
        ras.erase(ras.begin()); // overwrite the oldest entry
    ras.push_back(return_addr);
}

Addr
BranchPredictor::rasPop()
{
    if (ras.empty())
        return 0;
    Addr top = ras.back();
    ras.pop_back();
    return top;
}

} // namespace parrot::frontend
