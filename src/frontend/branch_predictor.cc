#include "frontend/branch_predictor.hh"

#include "common/logging.hh"

namespace parrot::frontend
{

BranchPredictor::BranchPredictor(const BranchPredictorConfig &config)
    : cfg(config), history(config.historyBits)
{
    if (!isPowerOfTwo(cfg.numEntries) || !isPowerOfTwo(cfg.btbEntries))
        PARROT_FATAL("branch predictor tables must be powers of two");
    bimodal.assign(cfg.numEntries, SatCounter(cfg.counterBits, 1));
    gshare.assign(cfg.numEntries, SatCounter(cfg.counterBits, 1));
    // Chooser starts leaning toward the bimodal component, which
    // learns fastest on the heavily biased branches that dominate.
    chooser.assign(cfg.numEntries, SatCounter(2, 1));
    btb.resize(cfg.btbEntries);
    ras.reserve(cfg.rasEntries);
}

std::uint64_t
BranchPredictor::bimodalIndex(Addr pc) const
{
    return mix64(pc) & (cfg.numEntries - 1);
}

std::uint64_t
BranchPredictor::gshareIndex(Addr pc) const
{
    return (mix64(pc) ^ history.value()) & (cfg.numEntries - 1);
}

bool
BranchPredictor::predict(Addr pc)
{
    const bool use_gshare = chooser[bimodalIndex(pc)].isSet();
    return use_gshare ? gshare[gshareIndex(pc)].isSet()
                      : bimodal[bimodalIndex(pc)].isSet();
}

void
BranchPredictor::update(Addr pc, bool taken)
{
    train(pc, taken, true);
}

void
BranchPredictor::warmUpdate(Addr pc, bool taken)
{
    train(pc, taken, false);
}

void
BranchPredictor::train(Addr pc, bool taken, bool record_sample)
{
    const std::uint64_t bi = bimodalIndex(pc);
    const std::uint64_t gi = gshareIndex(pc);
    SatCounter &b = bimodal[bi];
    SatCounter &g = gshare[gi];
    SatCounter &c = chooser[bi];

    const bool b_correct = (b.isSet() == taken);
    const bool g_correct = (g.isSet() == taken);
    const bool used_gshare = c.isSet();
    if (record_sample)
        correct.sample(used_gshare ? g_correct : b_correct);

    // Chooser trains toward whichever component was right.
    if (g_correct && !b_correct)
        c.increment();
    else if (b_correct && !g_correct)
        c.decrement();

    if (taken) {
        b.increment();
        g.increment();
    } else {
        b.decrement();
        g.decrement();
    }
    history.push(taken);
}

bool
BranchPredictor::btbLookup(Addr pc, Addr &target) const
{
    const BtbEntry &entry = btb[mix64(pc) & (cfg.btbEntries - 1)];
    if (entry.valid && entry.pc == pc) {
        target = entry.target;
        return true;
    }
    return false;
}

void
BranchPredictor::btbInsert(Addr pc, Addr target)
{
    BtbEntry &entry = btb[mix64(pc) & (cfg.btbEntries - 1)];
    entry.pc = pc;
    entry.target = target;
    entry.valid = true;
}

void
BranchPredictor::rasPush(Addr return_addr)
{
    if (ras.size() >= cfg.rasEntries)
        ras.erase(ras.begin()); // overwrite the oldest entry
    ras.push_back(return_addr);
}

Addr
BranchPredictor::rasPop()
{
    if (ras.empty())
        return 0;
    Addr top = ras.back();
    ras.pop_back();
    return top;
}

void
BranchPredictor::saveState(serial::Writer &out) const
{
    auto save_table = [&](const std::vector<SatCounter> &table) {
        out.u32(static_cast<std::uint32_t>(table.size()));
        for (const SatCounter &c : table)
            out.u8(static_cast<std::uint8_t>(c.read()));
    };
    save_table(bimodal);
    save_table(gshare);
    save_table(chooser);
    out.u64(history.value());
    out.u32(static_cast<std::uint32_t>(btb.size()));
    for (const BtbEntry &entry : btb) {
        out.u64(entry.pc);
        out.u64(entry.target);
        out.boolean(entry.valid);
    }
    out.u32(static_cast<std::uint32_t>(ras.size()));
    for (Addr a : ras)
        out.u64(a);
    out.u64(correct.numerator());
    out.u64(correct.denominator());
}

void
BranchPredictor::loadState(serial::Reader &in)
{
    auto load_table = [&](std::vector<SatCounter> &table) {
        if (in.u32() != table.size())
            throw serial::Error(
                "branch predictor: checkpoint table size mismatch");
        for (SatCounter &c : table)
            c.restore(in.u8());
    };
    load_table(bimodal);
    load_table(gshare);
    load_table(chooser);
    history.restore(in.u64());
    if (in.u32() != btb.size())
        throw serial::Error("branch predictor: checkpoint BTB mismatch");
    for (BtbEntry &entry : btb) {
        entry.pc = in.u64();
        entry.target = in.u64();
        entry.valid = in.boolean();
    }
    const std::uint32_t ras_depth = in.u32();
    if (ras_depth > cfg.rasEntries)
        throw serial::Error("branch predictor: checkpoint RAS overflow");
    ras.clear();
    for (std::uint32_t i = 0; i < ras_depth; ++i)
        ras.push_back(in.u64());
    const Counter numer = in.u64();
    correct.restore(numer, in.u64());
}

} // namespace parrot::frontend
