/**
 * @file
 * Variable-length decode model.
 *
 * Decoding a variable-length CISC stream is essentially serial: the
 * length of instruction k must be known before instruction k+1 can be
 * located. Real IA32 decoders parallelize this with expensive
 * length-marking hardware; we model the effect as a per-cycle decode
 * *weight* budget on top of the instruction-count width, so long or
 * multi-uop instructions consume more of the cycle's decode capacity.
 * This is the cost the PARROT decoded trace cache avoids.
 */

#ifndef PARROT_FRONTEND_DECODER_HH
#define PARROT_FRONTEND_DECODER_HH

#include <vector>

#include "isa/inst.hh"
#include "stats/stats.hh"

namespace parrot::frontend
{

/** Decoder bandwidth configuration. */
struct DecoderConfig
{
    unsigned width = 4;        //!< macro-instructions per cycle
    unsigned weightLimit = 6;  //!< total decode weight per cycle
    /** Bytes the fetch stage can pull per cycle (one aligned fetch
     * window); variable-length instructions make this the front-end's
     * binding constraint — exactly what the decoded trace cache
     * bypasses. */
    unsigned fetchBytes = 16;

    /** Relative clock-tree size for idle-clock power accounting
     * (power::PowerGate): the length-marking and steering logic grows
     * with decode width, so a wider decoder burns more clock power
     * while idle. */
    unsigned clockWeight() const { return 2 + width / 2; }
};

/**
 * Stateless bandwidth model: given the next instructions in fetch
 * order, decide how many decode in one cycle.
 */
class Decoder
{
  public:
    explicit Decoder(const DecoderConfig &config) : cfg(config)
    {
        if (cfg.width < 1 || cfg.weightLimit < 1)
            PARROT_FATAL("decoder width/weight must be >= 1");
    }

    /**
     * How many of the given instructions fit in one decode cycle.
     * Always at least 1 when the list is non-empty (a single
     * instruction never stalls decode forever).
     */
    unsigned
    throughput(const isa::MacroInst *const *window, std::size_t count) const
    {
        unsigned taken = 0;
        unsigned weight = 0;
        unsigned bytes = 0;
        for (std::size_t i = 0; i < count; ++i) {
            const isa::MacroInst *inst = window[i];
            if (taken >= cfg.width)
                break;
            unsigned w = inst->decodeWeight();
            if (taken > 0 && weight + w > cfg.weightLimit)
                break;
            if (taken > 0 && bytes + inst->length > cfg.fetchBytes)
                break;
            weight += w;
            bytes += inst->length;
            ++taken;
        }
        return taken;
    }

    /** Convenience overload over a vector window. */
    unsigned
    throughput(const std::vector<const isa::MacroInst *> &window) const
    {
        return throughput(window.data(), window.size());
    }

    /** Total decode weight of one instruction (power accounting). */
    static unsigned cost(const isa::MacroInst &inst)
    {
        return inst.decodeWeight();
    }

    const DecoderConfig &config() const { return cfg; }

  private:
    DecoderConfig cfg;
};

} // namespace parrot::frontend

#endif // PARROT_FRONTEND_DECODER_HH
