/**
 * @file
 * Text configuration files for machine models.
 *
 * Format: one `key = value` per line, `#` comments, blank lines
 * ignored. A `base = <model>` line (first, optional) starts from one of
 * the named models; every other key overrides one field. Example:
 *
 * ```
 * # ton_bigtc.cfg — TON with a 4x trace cache
 * base = TON
 * name = TON-big
 * trace_cache.entries = 2048
 * hot_filter.threshold = 8
 * core.width = 4
 * ```
 *
 * Unknown keys and malformed values are hard errors (fatal), so a typo
 * cannot silently run the wrong experiment.
 */

#ifndef PARROT_SIM_CONFIG_FILE_HH
#define PARROT_SIM_CONFIG_FILE_HH

#include <string>

#include "sim/model_config.hh"

namespace parrot::sim
{

/** Parse a model configuration from file contents (fatal on errors). */
ModelConfig parseModelConfig(const std::string &text,
                             const std::string &origin = "<string>");

/** Load and parse a model configuration file (fatal on errors). */
ModelConfig loadModelConfig(const std::string &path);

/** Render a configuration back to the file format (round-trippable for
 * all keys the parser understands). */
std::string renderModelConfig(const ModelConfig &cfg);

} // namespace parrot::sim

#endif // PARROT_SIM_CONFIG_FILE_HH
