/**
 * @file
 * The PARROT machine simulator: cold pipeline (fetch/decode/dispatch
 * from the instruction cache), hot pipeline (trace fetch from the trace
 * cache with atomic assert semantics), the fetch selector between them,
 * and the background post-processing phases (trace selection, hot and
 * blazing filtering, trace construction, dynamic optimization).
 *
 * Trace-driven: the committed instruction stream comes from the
 * functional workload executor; control mispredictions are modelled by
 * stalling dispatch until the resolving uop executes plus a refill
 * penalty, and trace aborts additionally execute the poisoned prefix.
 */

#ifndef PARROT_SIM_SIMULATOR_HH
#define PARROT_SIM_SIMULATOR_HH

#include <chrono>
#include <deque>
#include <memory>
#include <optional>
#include <stdexcept>

#include "common/arena.hh"
#include "common/ring_buffer.hh"
#include "common/serialize.hh"
#include "cpu/ooo_core.hh"
#include "frontend/branch_predictor.hh"
#include "frontend/decoder.hh"
#include "memory/hierarchy.hh"
#include "optimizer/optimizer.hh"
#include "power/account.hh"
#include "power/power_state.hh"
#include "sim/model_config.hh"
#include "sim/result.hh"
#include "stats/group.hh"
#include "stats/timeseries.hh"
#include "tracecache/constructor.hh"
#include "tracecache/filter.hh"
#include "tracecache/predictor.hh"
#include "tracecache/selector.hh"
#include "tracecache/trace_cache.hh"
#include "verify/cosim.hh"
#include "workload/apps.hh"
#include "workload/executor.hh"
#include "workload/generator.hh"
#include "workload/source.hh"
#include "workload/trace_codec.hh"

namespace parrot::sim
{

/** An application ready to simulate (program is shareable). */
struct Workload
{
    workload::AppProfile profile;
    std::shared_ptr<workload::Program> program;

    /** Set for recorded-trace cells: the validated `.ptrace` image the
     * simulation replays instead of running the generator. `program`
     * then aliases trace->program. */
    std::shared_ptr<const workload::TraceData> trace;
};

/** Generate the program for a suite entry — or, when the entry names a
 * trace file, load and validate the recording. */
Workload loadWorkload(const workload::SuiteEntry &entry);

/**
 * Thrown by ParrotSimulator::run when its wall-clock deadline expires:
 * the one (model, application) cell is abandoned mid-flight so the
 * caller (SuiteRunner) can retry or tombstone it instead of a
 * pathological configuration hanging the whole worker pool.
 */
class DeadlineExceeded : public std::runtime_error
{
  public:
    DeadlineExceeded(const std::string &model, const std::string &app,
                     std::uint64_t deadline_ms)
        : std::runtime_error("deadline of " +
                             std::to_string(deadline_ms) +
                             " ms exceeded simulating " + app + " on " +
                             model)
    {}
};

/**
 * One (model, application) simulation.
 */
class ParrotSimulator
{
  public:
    ParrotSimulator(const ModelConfig &config, const Workload &workload);

    /**
     * Simulate until the given number of macro-instructions commit.
     * @param inst_budget committed-instruction target (> 0).
     * @param pmax_per_cycle Pmax for the leakage formula; pass 0 to
     *        skip leakage (used during the calibration run itself).
     * @param deadline_ms wall-clock watchdog: when > 0 and this much
     *        host time elapses, the run throws DeadlineExceeded at a
     *        commit boundary (checked every few thousand cycles). The
     *        watchdog is purely observational — a run that finishes
     *        within the deadline is bit-identical to one without it.
     */
    SimResult run(std::uint64_t inst_budget, double pmax_per_cycle,
                  std::uint64_t deadline_ms = 0);

    /** The per-simulation stats tree. Every metric SimResult carries is
     * a path in this tree; reporting layers read it via snapshot(). */
    const stats::Group &statsTree() const { return statsRoot; }

    /** Stream position: committed macro-instructions plus instructions
     * consumed by sampled-mode fast-forward. This is the coordinate
     * run() budgets against and checkpoints record. */
    std::uint64_t position() const;

    /**
     * Save the complete warm + architectural simulation state to a
     * versioned, CRC-framed `.pckp` checkpoint (sim/checkpoint.hh).
     * Call only after run() returned (cores drained at a commit
     * boundary). A later process simulating the same (model, app) cell
     * can loadCheckpoint() and continue run() bit-identically to the
     * segmented in-process run `run(M); run(N)`.
     * @throws CheckpointFormatError (category Io) on write failure.
     */
    void saveCheckpoint(const std::string &path) const;

    /**
     * Restore a checkpoint into this freshly constructed simulator.
     * The checkpoint must name the same model and application.
     * @throws CheckpointFormatError on malformed or mismatched input.
     */
    void loadCheckpoint(const std::string &path);

  private:
    enum class Mode { Cold, Hot };

    /** @name Cycle phases. @{ */
    void stepCycle();
    void coldCycle();
    void hotDispatchCycle();
    bool tryStartHotTrace();
    void processBackground();
    void reapTraceCommits();
    /** @} */

    /** Top up the committed-stream lookahead buffer. */
    void refillLookahead(std::size_t target = 96);

    /** Feed one committed instruction to trace selection + training. */
    void feedSelector(const workload::DynInst &dyn);

    /** Handle an emitted trace candidate (train, filter, construct). */
    void onCandidate(const tracecache::TraceCandidate &cand);

    /** Warm-phase candidate handling: trains the trace predictor, hot
     * filter and trace cache exactly like onCandidate but records no
     * simulator stats and no power events (fast-forwarded work is
     * extrapolated, not measured). */
    void onCandidateWarm(const tracecache::TraceCandidate &cand);

    /** Consecutive same-line skip state for the warm phase: repeated
     * accesses to the line just touched are exact no-ops on warm cache
     * state (the line is already MRU; a read never changes dirty), so
     * the fast-forward loop elides them. Local to each fastForward()
     * call so a segment behaves identically after a checkpoint resume. */
    struct WarmCursor
    {
        Addr iline = ~Addr{0};        //!< last instruction line warmed
        Addr dline = ~Addr{0};        //!< last data line warmed
        bool dlineWritten = false;    //!< that access was a store
    };

    /** Warm one fast-forwarded instruction through every warm
     * structure: cache tags, branch predictor, BTB/RAS, cosim oracle
     * and the trace-selection path. Stats- and energy-silent. */
    void warmInstruction(const workload::DynInst &dyn, WarmCursor &cur);

    /** Sampled mode: functionally fast-forward up to `n` instructions
     * between detailed windows (architectural + warm state only). */
    void fastForward(std::uint64_t n);

    /** Finish the in-flight hot trace (if any) and drain both cores to
     * a commit boundary, honouring the wall-clock deadline. Used at
     * run() exit and between sampled-mode windows. */
    void quiesce(std::uint64_t cycle_cap);

    /** Throw DeadlineExceeded when the run's wall-clock budget is
     * spent (no-op when the run has no deadline). */
    void checkDeadline() const;

    /** Account a trace execution (blazing filter, optimizer trigger). */
    void onTraceExecuted(tracecache::Trace &trace);

    /** Record data-side events for a hierarchy access result. */
    void recordFrontEndFetch(Addr pc);

    /** Begin a misprediction-style stall resolved by a uop token. */
    void stallOnToken(cpu::OooCore &core, cpu::UopToken token,
                      unsigned penalty);

    /** The core hot uops run on (hot core when split, else unified). */
    cpu::OooCore &hotCore() { return splitMode ? *hotCorePtr : *coldCorePtr; }
    cpu::OooCore &coldCore() { return *coldCorePtr; }

    /** Power account for hot-side / trace-unit events. */
    power::EnergyAccount &hotAccount()
    {
        return splitMode ? hotAcct : coldAcct;
    }

    /** The sleep/wake state machine of one gated unit. */
    power::PowerGate &gate(power::GatedUnit u)
    {
        return gates[static_cast<unsigned>(u)];
    }

    /**
     * Per-cycle idle detection for the power-state layer (called from
     * stepCycle before dispatch, only when psEnabled): during hot-trace
     * fetch the cold front end idles (and on the split core, the
     * drained cold backend); during cold fetch the trace-cache port
     * idles. Demands at the use sites (coldCycle, tryStartHotTrace)
     * wake sleeping units and convert the wake latency into fetch
     * stalls.
     */
    void powerStateCycle();

    ModelConfig cfg;
    Workload load;

    /** Per-simulation arena: lookahead ring storage and the reusable
     * fetch window live here, so the cycle loop does no heap traffic. */
    Arena simArena;

    std::unique_ptr<workload::WorkloadSource> source;
    /** Committed-stream lookahead; refilled in place (no copies). */
    RingBuffer<workload::DynInst> lookahead{simArena, 256};

    /** Instructions pulled from the source so far (lookahead fills and
     * fast-forward combined): the stream coordinate exhaustion is
     * judged against. */
    std::uint64_t fetchedInsts = 0;
    /** A finite recorded trace ran dry; the remaining lookahead and
     * in-flight work can still finish the run. */
    bool sourceDry = false;
    /** Instructions consumed by sampled-mode fast-forward (never
     * dispatched, counted into position()). */
    std::uint64_t ffInsts = 0;
    /** Budget of the current/last run() (exhaustion + checkpoints). */
    std::uint64_t lastInstBudget = 0;

    /** Wall-clock watchdog state for the current run(). */
    std::chrono::steady_clock::time_point runWallStart;
    std::uint64_t runDeadlineMs = 0;

    std::unique_ptr<memory::Hierarchy> hierarchy;
    power::EnergyAccount coldAcct;
    power::EnergyAccount hotAcct; //!< used only in split mode

    /** One gate per power::GatedUnit; inert (policy Off) units never
     * touch timing or energy. psEnabled caches anyEnabled() so the
     * cycle loop pays nothing when the whole layer is off. */
    power::PowerGate gates[power::numGatedUnits];
    bool psEnabled = false;
    std::unique_ptr<cpu::OooCore> coldCorePtr;
    std::unique_ptr<cpu::OooCore> hotCorePtr; //!< split mode only
    bool splitMode = false;

    std::unique_ptr<frontend::BranchPredictor> branchPredictor;
    std::unique_ptr<frontend::Decoder> decoder;

    // Trace unit (present when cfg.hasTraceCache).
    std::unique_ptr<tracecache::TraceSelector> selector;
    std::unique_ptr<tracecache::CounterFilter> hotFilter;
    std::unique_ptr<tracecache::CounterFilter> blazeFilter;
    std::unique_ptr<tracecache::TraceCache> traceCache;
    std::unique_ptr<tracecache::TracePredictor> tracePredictor;
    std::unique_ptr<optimizer::TraceOptimizer> traceOptimizer;

    /** Differential oracle (enabled by ModelConfig::cosim or the
     * PARROT_COSIM environment variable). */
    std::unique_ptr<verify::CosimOracle> cosim;

    /** Split-core state tracking: which pipeline dispatched last and
     * which architectural registers were written since the last
     * cross-core switch (those are the values the switch mechanism of
     * §2.3 must forward to the other core). */
    enum class Side { None, ColdSide, HotSide };
    Side lastSide = Side::None;
    bool dirtySinceSwitch[isa::numArchRegs] = {};
    unsigned dirtyCount = 0;

    /** Note a register write for split-core switch accounting. */
    void markDirty(const isa::Uop &uop);

    /** Charge a cross-core switch if the dispatch side changes. */
    void chargeSideSwitch(Side side);

    // --- fetch state ---
    Mode mode = Mode::Cold;
    Cycle cycle = 0;
    Cycle resumeAt = 0; //!< fetch bubble / refill end
    struct PendingResolve
    {
        cpu::OooCore *core;
        cpu::UopToken token;
        unsigned penalty;
    };
    std::optional<PendingResolve> pendingResolve;

    // --- active hot trace ---
    /** Non-owning: the trace cache parks displaced traces in limbo
     * until reclaimLimbo(), which stepCycle only calls while cold with
     * no active trace — so this never dangles. */
    tracecache::TraceRef activeTrace;
    std::vector<workload::DynInst> activeWindow; //!< matched stream insts
    /** Reused cold-fetch decode window (cleared, never reallocated). */
    std::vector<const isa::MacroInst *> fetchWindow;
    std::size_t hotUopIdx = 0;
    std::size_t hotUopLimit = 0;
    bool hotAborted = false;
    /** The trace fully matched except its final branch direction: it
     * commits, but the next fetch must wait for that branch to
     * resolve (ordinary misprediction, not an atomic abort). */
    bool hotEndRedirect = false;
    cpu::UopToken hotEndBranchToken = 0;
    bool hotEndBranchSeen = false;
    cpu::UopToken lastHotToken = 0;

    // --- deferred instruction credit for atomic traces ---
    struct TraceCommit
    {
        cpu::UopToken lastToken;
        std::uint64_t insts;
    };
    std::deque<TraceCommit> pendingTraceCommits;
    std::uint64_t hotInstsCommitted = 0;

    // --- optimizer occupancy ---
    struct OptJob
    {
        tracecache::Trace trace;
        Cycle doneAt;
    };
    std::optional<OptJob> optJob;

    /** Predictor context. Candidate emission lags execution by one
     * candidate (the selector's joining stage holds one pending trace),
     * so at the moment a trace's start address is *fetched*, the last
     * emitted candidate is the one TWO before it in program order.
     * Lookups therefore key on the last emitted candidate, and training
     * keys each candidate on its predecessor's predecessor. */
    tracecache::Tid trainPrevTid;     //!< last emitted candidate
    tracecache::Tid trainPrevPrevTid; //!< the one before that

    // --- statistics ---
    /** Simulator-owned counters, registered into the stats tree by
     * regStats(). Derived metrics (rates, energy, IPC) live in the tree
     * as formulas over these and the component-owned stats. */
    struct SimStats
    {
        stats::Scalar coldCondBranches{"cold_branches"};
        stats::Scalar coldBranchMispredicts{"cold_mispredicts"};
        stats::Scalar tracePredictionsMade{"predictions"};
        stats::Scalar traceMispredictsSeen{"aborts"};
        stats::Scalar traceEndRedirects{"end_redirects"};
        stats::Scalar tpLookupCount{"tp_lookups"};
        stats::Scalar tpHitCount{"tp_hits"};
        stats::Scalar tcMissAfterPredictCount{"tc_miss_after_predict"};
        stats::Scalar candidateCount{"candidates"};
        stats::Scalar instsFromTraceCache{"insts_from_tc"};
        stats::Scalar uopsFromTraceCacheDispatched{"uops_from_tc"};
        stats::Scalar uopsFromColdDispatched{"uops_from_cold"};
        stats::Scalar tracesInsertedCount{"inserted"};
        stats::Scalar tracesOptimizedCount{"traces"};
        stats::Scalar traceExecutionsCount{"executions"};
        stats::Scalar optimizedTraceExecs{"optimized_executions"};
        stats::Scalar hotExecUops{"hot_exec_uops"};
        stats::Scalar hotExecOrigUops{"hot_exec_orig_uops"};
        double sumUopReduction = 0.0;
        double sumDepReduction = 0.0;
    };
    SimStats st;

    /** Sampled-simulation summary, exported as the sample.* stats
     * group. Detailed (unsampled) runs keep the defaults: zero
     * windows, full coverage, zero confidence interval. */
    struct SampleStats
    {
        std::uint64_t windows = 0; //!< detailed windows measured
        double coverage = 1.0;     //!< detailed / total instructions
        double ciIpc = 0.0;        //!< relative 95% CI of window CPI
        double ciEnergy = 0.0;     //!< relative 95% CI of energy/inst
    };
    SampleStats sampleSt;

    /** Serialize every live member + component into one state blob. */
    void saveStateBlob(serial::Writer &out) const;

    /** Mirror of saveStateBlob. @throws serial::Error on bad input. */
    void loadStateBlob(serial::Reader &in);

    /** Total committed macro-instructions (cold core + atomic traces). */
    std::uint64_t committedInsts() const;

    /** Build the stats tree: register every component's stats plus the
     * derived formulas SimResult is materialized from. Called once at
     * the end of construction. */
    void regStats();

    /** Append one window row (deltas against `prev`) to `series`. */
    void sampleWindow(stats::Snapshot &prev, stats::TimeSeries &series);

    stats::Group statsRoot;
    power::EnergyModel coldModel;
    power::EnergyModel hotModel;
    /** Pmax for the leakage formulas; set by run() before sampling. */
    double pmaxPerCycle = 0.0;
};

} // namespace parrot::sim

#endif // PARROT_SIM_SIMULATOR_HH
