#include "sim/result.hh"

#include <cstdlib>
#include <map>
#include <sstream>
#include <string>

#include "common/logging.hh"

namespace parrot::sim
{

namespace
{

/** Descriptor for a double field. */
ResultField
fieldOf(const char *key, double SimResult::*member)
{
    return ResultField{
        key,
        [member](const SimResult &r) { return r.*member; },
        [member](SimResult &r, double v) { r.*member = v; },
    };
}

/** Descriptor for a uint64 field (doubles are exact to 2^53, far
 * beyond any counter a simulation run produces). */
ResultField
fieldOf(const char *key, std::uint64_t SimResult::*member)
{
    return ResultField{
        key,
        [member](const SimResult &r) {
            return static_cast<double>(r.*member);
        },
        [member](SimResult &r, double v) {
            r.*member = static_cast<std::uint64_t>(v);
        },
    };
}

/** Descriptor for one unit-energy array slot. */
ResultField
unitFieldOf(unsigned u)
{
    return ResultField{
        std::string("energy.unit.") +
            power::powerUnitName(static_cast<power::PowerUnit>(u)),
        [u](const SimResult &r) { return r.unitEnergy[u]; },
        [u](SimResult &r, double v) { r.unitEnergy[u] = v; },
    };
}

/** Mark a descriptor extensive (extrapolated by sampled runs). */
ResultField
ext(ResultField f)
{
    f.extensive = true;
    return f;
}

std::vector<ResultField>
buildFields()
{
    std::vector<ResultField> f;

    f.push_back(ext(fieldOf("perf.insts", &SimResult::insts)));
    f.push_back(ext(fieldOf("perf.uops", &SimResult::uops)));
    f.push_back(ext(fieldOf("perf.cycles", &SimResult::cycles)));
    f.push_back(fieldOf("perf.ipc", &SimResult::ipc));
    f.push_back(fieldOf("perf.upc", &SimResult::upc));

    f.push_back(ext(fieldOf("trace.uops_from_tc",
                            &SimResult::uopsFromTraceCache)));
    f.push_back(ext(fieldOf("trace.uops_from_cold",
                            &SimResult::uopsFromColdPipe)));
    f.push_back(fieldOf("trace.coverage", &SimResult::coverage));
    f.push_back(ext(fieldOf("trace.predictions",
                            &SimResult::tracePredictions)));
    f.push_back(ext(fieldOf("trace.aborts",
                            &SimResult::traceMispredicts)));
    f.push_back(fieldOf("trace.abort_rate", &SimResult::traceMispredRate));
    f.push_back(fieldOf("trace.inserted", &SimResult::tracesInserted));
    f.push_back(ext(fieldOf("trace.executions",
                            &SimResult::traceExecutions)));

    f.push_back(ext(fieldOf("frontend.cold_branches",
                            &SimResult::coldCondBranches)));
    f.push_back(ext(fieldOf("frontend.cold_mispredicts",
                            &SimResult::coldBranchMispredicts)));
    f.push_back(fieldOf("frontend.cold_mispredict_rate",
                        &SimResult::coldBranchMispredRate));
    f.push_back(ext(fieldOf("frontend.tp_lookups", &SimResult::tpLookups)));
    f.push_back(ext(fieldOf("frontend.tp_hits", &SimResult::tpHits)));
    f.push_back(ext(fieldOf("frontend.tc_miss_after_predict",
                            &SimResult::tcMissAfterPredict)));
    f.push_back(ext(fieldOf("frontend.candidates",
                            &SimResult::candidatesSeen)));

    f.push_back(fieldOf("optimizer.traces", &SimResult::tracesOptimized));
    f.push_back(fieldOf("optimizer.static_uop_reduction",
                        &SimResult::avgUopReduction));
    f.push_back(fieldOf("optimizer.static_dep_reduction",
                        &SimResult::avgDepReduction));
    f.push_back(ext(fieldOf("optimizer.optimized_executions",
                            &SimResult::optimizedTraceExecutions)));
    f.push_back(fieldOf("optimizer.utilization",
                        &SimResult::optimizerUtilization));
    f.push_back(fieldOf("optimizer.dynamic_uop_reduction",
                        &SimResult::dynamicUopReduction));

    f.push_back(ext(fieldOf("energy.dynamic", &SimResult::dynamicEnergy)));
    f.push_back(ext(fieldOf("energy.leakage", &SimResult::leakageEnergy)));
    f.push_back(ext(fieldOf("energy.leakage_saved",
                            &SimResult::leakageSavedEnergy)));
    f.push_back(ext(fieldOf("energy.total", &SimResult::totalEnergy)));
    f.push_back(fieldOf("energy.per_cycle", &SimResult::energyPerCycle));
    for (unsigned u = 0; u < power::numPowerUnits; ++u)
        f.push_back(ext(unitFieldOf(u)));

    f.push_back(fieldOf("power.cmpw", &SimResult::cmpw));
    f.push_back(ext(fieldOf("power.gated_cycles",
                            &SimResult::powerGatedCycles)));
    f.push_back(ext(fieldOf("power.wake_stalls",
                            &SimResult::powerWakeStalls)));
    f.push_back(ext(fieldOf("power.sleep_entries",
                            &SimResult::powerSleepEntries)));

    f.push_back(fieldOf("memory.l1i.miss_ratio", &SimResult::l1iMissRate));
    f.push_back(fieldOf("memory.l1d.miss_ratio", &SimResult::l1dMissRate));
    f.push_back(fieldOf("memory.l2.miss_ratio", &SimResult::l2MissRate));

    f.push_back(ResultField{
        "cosim.enabled",
        [](const SimResult &r) { return r.cosimEnabled ? 1.0 : 0.0; },
        [](SimResult &r, double v) { r.cosimEnabled = v != 0.0; },
    });
    f.push_back(fieldOf("cosim.cold_commits", &SimResult::cosimColdCommits));
    f.push_back(fieldOf("cosim.trace_commits",
                        &SimResult::cosimTraceCommits));
    f.push_back(fieldOf("cosim.mismatches", &SimResult::cosimMismatches));

    // Sampled-simulation summary (appended last so older cache rows
    // migrate by appending the trivial detailed-run values). All
    // intensive: they describe the sampling itself, never scale.
    f.push_back(fieldOf("sample.windows", &SimResult::sampleWindows));
    f.push_back(fieldOf("sample.coverage", &SimResult::sampleCoverage));
    f.push_back(fieldOf("sample.ci_ipc", &SimResult::sampleCiIpc));
    f.push_back(fieldOf("sample.ci_energy", &SimResult::sampleCiEnergy));

    return f;
}

} // namespace

const std::vector<ResultField> &
resultFields()
{
    static const std::vector<ResultField> fields = buildFields();
    return fields;
}

const ResultField *
findResultField(const std::string &key)
{
    static const std::map<std::string, const ResultField *> index = [] {
        std::map<std::string, const ResultField *> m;
        for (const auto &f : resultFields())
            m.emplace(f.key, &f);
        return m;
    }();
    auto it = index.find(key);
    return it == index.end() ? nullptr : it->second;
}

void
materializeResult(SimResult &out, const stats::Snapshot &snap)
{
    // Snapshot::get() fatals on a missing path, so any SimResult field
    // whose tree path was never wired up fails loudly here.
    for (const auto &f : resultFields())
        f.set(out, snap.get(f.key));
}

void
extrapolateResult(SimResult &r, double scale)
{
    for (const auto &f : resultFields()) {
        if (f.extensive)
            f.set(r, f.get(r) * scale);
    }
}

void
exportToRegistry(const SimResult &result, stats::Registry &registry,
                 bool prefix_identity)
{
    const std::string prefix = prefix_identity
        ? result.model + "." + result.app + "." : "";
    for (const auto &f : resultFields()) {
        if (!result.cosimEnabled && f.key.rfind("cosim.", 0) == 0)
            continue;
        registry.set(prefix + f.key, f.get(result));
    }
}

namespace
{

/** Tombstone cache-row payload (the part after the key's tab). */
constexpr const char *kTombstoneTag = "!failed";

/** Serialize a healthy SimResult as self-describing key=value pairs. */
std::string
serializeRecord(const SimResult &r)
{
    std::ostringstream out;
    out.precision(17); // round-trips doubles exactly
    bool first = true;
    for (const auto &f : resultFields()) {
        if (!first)
            out << ' ';
        first = false;
        out << f.key << '=' << f.get(r);
    }
    return out.str();
}

bool
deserializeRecord(const std::string &line, SimResult &r)
{
    std::istringstream in(line);
    std::string token;
    std::size_t seen = 0;
    while (in >> token) {
        auto eq = token.find('=');
        if (eq == std::string::npos)
            return false;
        const ResultField *f = findResultField(token.substr(0, eq));
        if (!f)
            return false;
        const std::string text = token.substr(eq + 1);
        char *end = nullptr;
        double v = std::strtod(text.c_str(), &end);
        if (end == text.c_str() || *end != '\0')
            return false;
        f->set(r, v);
        ++seen;
    }
    // The header pins the field set, but a line can still be cut short
    // by a killed run; demand every field rather than half a result.
    return seen == resultFields().size();
}

/** Parse a tombstone payload; false when `text` is not one. */
bool
deserializeTombstone(const std::string &text, SimResult &r)
{
    std::istringstream in(text);
    std::string tag;
    if (!(in >> tag) || tag != kTombstoneTag)
        return false;
    r.tombstone = true;
    std::string token;
    while (in >> token) {
        if (token.rfind("attempts=", 0) == 0)
            r.attempts = static_cast<unsigned>(
                std::strtoul(token.c_str() + 9, nullptr, 10));
    }
    return true;
}

} // namespace

std::string
cacheHeaderLine()
{
    std::string h = "# parrot-bench-cache v2";
    for (const auto &f : resultFields()) {
        h += ' ';
        h += f.key;
    }
    return h;
}

std::string
resultCacheKey(const std::string &model, const std::string &app,
               std::uint64_t insts)
{
    return model + "/" + app + "/" + std::to_string(insts);
}

std::string
serializeCacheLine(const std::string &key, const SimResult &r)
{
    if (r.tombstone) {
        return key + '\t' + kTombstoneTag + " attempts=" +
               std::to_string(r.attempts);
    }
    return key + '\t' + serializeRecord(r);
}

bool
parseCachePayload(const std::string &payload, SimResult &r)
{
    return deserializeTombstone(payload, r) ||
           deserializeRecord(payload, r);
}

bool
splitCacheKey(const std::string &key, std::string &model,
              std::string &app)
{
    auto slash1 = key.find('/');
    auto slash2 = key.rfind('/');
    if (slash1 == std::string::npos || slash2 <= slash1)
        return false;
    model = key.substr(0, slash1);
    app = key.substr(slash1 + 1, slash2 - slash1 - 1);
    return true;
}

} // namespace parrot::sim
