#include "sim/result.hh"

#include <map>
#include <string>

#include "common/logging.hh"

namespace parrot::sim
{

namespace
{

/** Descriptor for a double field. */
ResultField
fieldOf(const char *key, double SimResult::*member)
{
    return ResultField{
        key,
        [member](const SimResult &r) { return r.*member; },
        [member](SimResult &r, double v) { r.*member = v; },
    };
}

/** Descriptor for a uint64 field (doubles are exact to 2^53, far
 * beyond any counter a simulation run produces). */
ResultField
fieldOf(const char *key, std::uint64_t SimResult::*member)
{
    return ResultField{
        key,
        [member](const SimResult &r) {
            return static_cast<double>(r.*member);
        },
        [member](SimResult &r, double v) {
            r.*member = static_cast<std::uint64_t>(v);
        },
    };
}

/** Descriptor for one unit-energy array slot. */
ResultField
unitFieldOf(unsigned u)
{
    return ResultField{
        std::string("energy.unit.") +
            power::powerUnitName(static_cast<power::PowerUnit>(u)),
        [u](const SimResult &r) { return r.unitEnergy[u]; },
        [u](SimResult &r, double v) { r.unitEnergy[u] = v; },
    };
}

std::vector<ResultField>
buildFields()
{
    std::vector<ResultField> f;

    f.push_back(fieldOf("perf.insts", &SimResult::insts));
    f.push_back(fieldOf("perf.uops", &SimResult::uops));
    f.push_back(fieldOf("perf.cycles", &SimResult::cycles));
    f.push_back(fieldOf("perf.ipc", &SimResult::ipc));
    f.push_back(fieldOf("perf.upc", &SimResult::upc));

    f.push_back(fieldOf("trace.uops_from_tc",
                        &SimResult::uopsFromTraceCache));
    f.push_back(fieldOf("trace.uops_from_cold",
                        &SimResult::uopsFromColdPipe));
    f.push_back(fieldOf("trace.coverage", &SimResult::coverage));
    f.push_back(fieldOf("trace.predictions",
                        &SimResult::tracePredictions));
    f.push_back(fieldOf("trace.aborts", &SimResult::traceMispredicts));
    f.push_back(fieldOf("trace.abort_rate", &SimResult::traceMispredRate));
    f.push_back(fieldOf("trace.inserted", &SimResult::tracesInserted));
    f.push_back(fieldOf("trace.executions", &SimResult::traceExecutions));

    f.push_back(fieldOf("frontend.cold_branches",
                        &SimResult::coldCondBranches));
    f.push_back(fieldOf("frontend.cold_mispredicts",
                        &SimResult::coldBranchMispredicts));
    f.push_back(fieldOf("frontend.cold_mispredict_rate",
                        &SimResult::coldBranchMispredRate));
    f.push_back(fieldOf("frontend.tp_lookups", &SimResult::tpLookups));
    f.push_back(fieldOf("frontend.tp_hits", &SimResult::tpHits));
    f.push_back(fieldOf("frontend.tc_miss_after_predict",
                        &SimResult::tcMissAfterPredict));
    f.push_back(fieldOf("frontend.candidates", &SimResult::candidatesSeen));

    f.push_back(fieldOf("optimizer.traces", &SimResult::tracesOptimized));
    f.push_back(fieldOf("optimizer.static_uop_reduction",
                        &SimResult::avgUopReduction));
    f.push_back(fieldOf("optimizer.static_dep_reduction",
                        &SimResult::avgDepReduction));
    f.push_back(fieldOf("optimizer.optimized_executions",
                        &SimResult::optimizedTraceExecutions));
    f.push_back(fieldOf("optimizer.utilization",
                        &SimResult::optimizerUtilization));
    f.push_back(fieldOf("optimizer.dynamic_uop_reduction",
                        &SimResult::dynamicUopReduction));

    f.push_back(fieldOf("energy.dynamic", &SimResult::dynamicEnergy));
    f.push_back(fieldOf("energy.leakage", &SimResult::leakageEnergy));
    f.push_back(fieldOf("energy.leakage_saved",
                        &SimResult::leakageSavedEnergy));
    f.push_back(fieldOf("energy.total", &SimResult::totalEnergy));
    f.push_back(fieldOf("energy.per_cycle", &SimResult::energyPerCycle));
    for (unsigned u = 0; u < power::numPowerUnits; ++u)
        f.push_back(unitFieldOf(u));

    f.push_back(fieldOf("power.cmpw", &SimResult::cmpw));
    f.push_back(fieldOf("power.gated_cycles",
                        &SimResult::powerGatedCycles));
    f.push_back(fieldOf("power.wake_stalls",
                        &SimResult::powerWakeStalls));
    f.push_back(fieldOf("power.sleep_entries",
                        &SimResult::powerSleepEntries));

    f.push_back(fieldOf("memory.l1i.miss_ratio", &SimResult::l1iMissRate));
    f.push_back(fieldOf("memory.l1d.miss_ratio", &SimResult::l1dMissRate));
    f.push_back(fieldOf("memory.l2.miss_ratio", &SimResult::l2MissRate));

    f.push_back(ResultField{
        "cosim.enabled",
        [](const SimResult &r) { return r.cosimEnabled ? 1.0 : 0.0; },
        [](SimResult &r, double v) { r.cosimEnabled = v != 0.0; },
    });
    f.push_back(fieldOf("cosim.cold_commits", &SimResult::cosimColdCommits));
    f.push_back(fieldOf("cosim.trace_commits",
                        &SimResult::cosimTraceCommits));
    f.push_back(fieldOf("cosim.mismatches", &SimResult::cosimMismatches));

    return f;
}

} // namespace

const std::vector<ResultField> &
resultFields()
{
    static const std::vector<ResultField> fields = buildFields();
    return fields;
}

const ResultField *
findResultField(const std::string &key)
{
    static const std::map<std::string, const ResultField *> index = [] {
        std::map<std::string, const ResultField *> m;
        for (const auto &f : resultFields())
            m.emplace(f.key, &f);
        return m;
    }();
    auto it = index.find(key);
    return it == index.end() ? nullptr : it->second;
}

void
materializeResult(SimResult &out, const stats::Snapshot &snap)
{
    // Snapshot::get() fatals on a missing path, so any SimResult field
    // whose tree path was never wired up fails loudly here.
    for (const auto &f : resultFields())
        f.set(out, snap.get(f.key));
}

void
exportToRegistry(const SimResult &result, stats::Registry &registry,
                 bool prefix_identity)
{
    const std::string prefix = prefix_identity
        ? result.model + "." + result.app + "." : "";
    for (const auto &f : resultFields()) {
        if (!result.cosimEnabled && f.key.rfind("cosim.", 0) == 0)
            continue;
        registry.set(prefix + f.key, f.get(result));
    }
}

} // namespace parrot::sim
