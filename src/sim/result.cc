#include "sim/result.hh"

#include <string>

namespace parrot::sim
{

void
exportToRegistry(const SimResult &result, stats::Registry &registry,
                 bool prefix_identity)
{
    const std::string prefix = prefix_identity
        ? result.model + "." + result.app + "." : "";
    auto put = [&](const char *key, double v) {
        registry.set(prefix + key, v);
    };

    put("perf.insts", static_cast<double>(result.insts));
    put("perf.uops", static_cast<double>(result.uops));
    put("perf.cycles", static_cast<double>(result.cycles));
    put("perf.ipc", result.ipc);
    put("perf.upc", result.upc);

    put("trace.coverage", result.coverage);
    put("trace.inserted", static_cast<double>(result.tracesInserted));
    put("trace.executions",
        static_cast<double>(result.traceExecutions));
    put("trace.predictions",
        static_cast<double>(result.tracePredictions));
    put("trace.aborts", static_cast<double>(result.traceMispredicts));
    put("trace.abort_rate", result.traceMispredRate);

    put("frontend.cold_branches",
        static_cast<double>(result.coldCondBranches));
    put("frontend.cold_mispredict_rate", result.coldBranchMispredRate);

    put("optimizer.traces", static_cast<double>(result.tracesOptimized));
    put("optimizer.uop_reduction", result.dynamicUopReduction);
    put("optimizer.dep_reduction", result.avgDepReduction);
    put("optimizer.utilization", result.optimizerUtilization);

    put("energy.dynamic", result.dynamicEnergy);
    put("energy.leakage", result.leakageEnergy);
    put("energy.total", result.totalEnergy);
    put("energy.per_cycle", result.energyPerCycle);
    put("power.cmpw", result.cmpw);
    for (unsigned u = 0; u < power::numPowerUnits; ++u) {
        registry.set(prefix + "energy.unit." +
                         power::powerUnitName(
                             static_cast<power::PowerUnit>(u)),
                     result.unitEnergy[u]);
    }

    put("cache.l1i_miss", result.l1iMissRate);
    put("cache.l1d_miss", result.l1dMissRate);
    put("cache.l2_miss", result.l2MissRate);

    if (result.cosimEnabled) {
        put("cosim.cold_commits",
            static_cast<double>(result.cosimColdCommits));
        put("cosim.trace_commits",
            static_cast<double>(result.cosimTraceCommits));
        put("cosim.mismatches",
            static_cast<double>(result.cosimMismatches));
    }
}

} // namespace parrot::sim
