#include "sim/model_config.hh"

#include "common/logging.hh"

namespace parrot::sim
{

namespace
{

/** Shared PARROT trace-unit settings (§2.3 defaults). */
void
applyTraceUnit(ModelConfig &cfg)
{
    cfg.hasTraceCache = true;
    cfg.traceCache.numEntries = 512;
    cfg.traceCache.assoc = 4;
    cfg.hotFilter.entries = 2048;
    cfg.hotFilter.assoc = 4;
    // Thresholds are scaled for the reproduction's shorter runs
    // (hundreds of thousands of instructions vs the paper's 30-100M):
    // the promotion *rate* relative to run length matches the paper's
    // regime; see DESIGN.md.
    cfg.hotFilter.threshold = 6;
    cfg.blazeFilter.entries = 1024;
    cfg.blazeFilter.assoc = 4;
    cfg.blazeFilter.threshold = 24;
    cfg.tracePredictor.numEntries = 2048;
    // PARROT models halve the branch predictor (2K + 2K trace
    // predictor vs the baseline's 4K — §4.2).
    cfg.branchPredictor.numEntries = 2048;
}

} // namespace

ModelConfig
ModelConfig::make(const std::string &model_name)
{
    ModelConfig cfg;
    cfg.name = model_name;

    cfg.coldCore = cpu::CoreConfig::narrow();
    cfg.hotCore = cpu::CoreConfig::wide();
    cfg.branchPredictor.numEntries = 4096;
    cfg.decoder.width = 4;
    cfg.decoder.weightLimit = 6;
    cfg.optimizer = optimizer::OptimizerConfig::disabled();

    if (model_name == "N") {
        cfg.coreAreaFactor = 1.0;
    } else if (model_name == "W") {
        cfg.coldCore = cpu::CoreConfig::wide();
        cfg.decoder.width = 8;
        cfg.decoder.weightLimit = 12;
        cfg.decoder.fetchBytes = 20;
        cfg.coreAreaFactor = 2.0;
    } else if (model_name == "TN") {
        applyTraceUnit(cfg);
        cfg.coreAreaFactor = 1.3;
    } else if (model_name == "TW") {
        applyTraceUnit(cfg);
        cfg.coldCore = cpu::CoreConfig::wide();
        cfg.decoder.width = 8;
        cfg.decoder.weightLimit = 12;
        cfg.decoder.fetchBytes = 20;
        cfg.coreAreaFactor = 2.3;
    } else if (model_name == "TON") {
        applyTraceUnit(cfg);
        cfg.hasOptimizer = true;
        cfg.optimizer = optimizer::OptimizerConfig{};
        cfg.coreAreaFactor = 1.35;
    } else if (model_name == "TOW") {
        applyTraceUnit(cfg);
        cfg.coldCore = cpu::CoreConfig::wide();
        cfg.decoder.width = 8;
        cfg.decoder.weightLimit = 12;
        cfg.decoder.fetchBytes = 20;
        cfg.hasOptimizer = true;
        cfg.optimizer = optimizer::OptimizerConfig{};
        cfg.coreAreaFactor = 2.35;
    } else if (model_name == "TOS") {
        applyTraceUnit(cfg);
        cfg.hasOptimizer = true;
        cfg.optimizer = optimizer::OptimizerConfig{};
        cfg.splitCore = true;
        // Split design: a narrow cold core with a narrow front end plus
        // a wide trace-fed hot core.
        cfg.coldCore = cpu::CoreConfig::narrow();
        cfg.hotCore = cpu::CoreConfig::wide();
        cfg.coreAreaFactor = 2.5;
    } else {
        PARROT_FATAL("unknown model '%s' (expected N W TN TW TON TOW TOS)",
                     model_name.c_str());
    }

    cfg.validate();
    return cfg;
}

std::vector<std::string>
ModelConfig::allNames()
{
    return {"N", "W", "TN", "TW", "TON", "TOW", "TOS"};
}

void
ModelConfig::validate() const
{
    coldCore.validate();
    if (splitCore)
        hotCore.validate();
    memory.validate();
    if (hasTraceCache) {
        traceCache.validate();
        hotFilter.validate();
        blazeFilter.validate();
        tracePredictor.validate();
    }
    if (hasOptimizer && !hasTraceCache)
        PARROT_FATAL("model %s: optimizer requires a trace cache",
                     name.c_str());
    if (coreAreaFactor <= 0.0)
        PARROT_FATAL("model %s: core area factor must be positive",
                     name.c_str());
    if (!(freqGHz >= 0.25 && freqGHz <= 4.0))
        PARROT_FATAL("model %s: freq_ghz %.3f outside [0.25, 4.0]",
                     name.c_str(), freqGHz);
    if (sampleWindow > 0 && sampleStride <= sampleWindow)
        PARROT_FATAL("model %s: sample.stride (%llu) must exceed "
                     "sample.window (%llu)",
                     name.c_str(),
                     static_cast<unsigned long long>(sampleStride),
                     static_cast<unsigned long long>(sampleWindow));
    if (sampleWindow == 0 && sampleStride > 0)
        PARROT_FATAL("model %s: sample.stride without sample.window",
                     name.c_str());
    powerState.validate();
}

} // namespace parrot::sim
