/**
 * @file
 * Suite runner: drives (model x application) simulations, handles the
 * Pmax leakage calibration (§3.2: Pmax is the per-cycle dynamic power
 * of the hottest application — swim — on the base N model) and
 * aggregates per-group geometric means the way the paper reports them.
 *
 * Suites run on a small worker pool (`RunOptions::jobs`, the
 * PARROT_JOBS environment variable, or hardware_concurrency): every
 * (model, application) simulation is independent, so the runner
 * calibrates Pmax and pre-generates the workloads up front
 * (prepare()), then dispatches simulations to worker threads that
 * write into pre-sized result slots. Output is therefore
 * bit-identical to the serial path regardless of the job count;
 * `jobs = 1` degenerates to the plain serial loop.
 */

#ifndef PARROT_SIM_RUNNER_HH
#define PARROT_SIM_RUNNER_HH

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sim/model_config.hh"
#include "sim/result.hh"
#include "sim/simulator.hh"

namespace parrot::sim
{

/** Options controlling a suite run. */
struct RunOptions
{
    std::uint64_t instBudget = 300000; //!< per application
    /** Pmax for leakage; 0 = calibrate automatically from swim on N. */
    double pmaxPerCycle = 0.0;
    /** Skip calibration entirely (leakage = 0). */
    bool noLeakage = false;
    /**
     * Worker threads for runSuite. 0 = take the PARROT_JOBS
     * environment variable, falling back to hardware_concurrency.
     */
    unsigned jobs = 0;
    /**
     * Wall-clock deadline per simulation in milliseconds; 0 = none.
     * A cell past its deadline aborts cleanly (DeadlineExceeded at a
     * commit boundary) instead of hanging the pool, then goes through
     * the retry/tombstone path below.
     */
    std::uint64_t deadlineMs = 0;
    /**
     * Extra attempts for a failed or timed-out cell before it is
     * recorded as a tombstone (SimResult::tombstone) instead of
     * aborting the whole suite.
     */
    unsigned maxRetries = 2;
    /** Backoff before the first retry; doubles per further attempt. */
    std::uint64_t retryBackoffMs = 100;
    /**
     * Directory for warm-state checkpoints; empty = checkpointing off.
     * When set, every cell saves a checkpoint after its run and a later
     * run of the same (model, app) cell resumes from it — so a long
     * budget can be simulated in budget increments, each increment
     * picking up exactly where the previous one stopped. Unreadable or
     * mismatched checkpoints are ignored with a warning (the cell runs
     * fresh); only the explicit CLI --checkpoint-in path treats a bad
     * checkpoint as an error.
     */
    std::string checkpointDir;
};

/**
 * Resolve a requested job count: a positive request wins, else the
 * PARROT_JOBS environment variable, else hardware_concurrency
 * (minimum 1).
 */
unsigned resolveJobs(unsigned requested);

/**
 * Overlay the resilience knobs from the environment onto `opts`:
 * PARROT_DEADLINE_MS, PARROT_RETRIES and PARROT_RETRY_BACKOFF_MS each
 * override their field when set. Shared by the bench drivers and the
 * campaign coordinator so spawned workers resolve the exact same
 * options as a serial run.
 */
void applyRunOptionsEnv(RunOptions &opts);

/**
 * Run body(0..count-1) on a pool of `jobs` worker threads (resolved
 * via resolveJobs; clamped to count). Indices are handed out through
 * an atomic counter, so the body must be safe to run concurrently for
 * distinct indices; jobs <= 1 runs the plain serial loop. Blocks until
 * every index completed; the first exception thrown by a body is
 * rethrown after the pool drains.
 */
void parallelFor(std::size_t count, unsigned jobs,
                 const std::function<void(std::size_t)> &body);

/**
 * Runs simulations and caches generated programs across models.
 *
 * Thread safety: prepare() / setPmax() / the implicit first pmax()
 * computation serialize internally, and the workload cache is
 * mutex-guarded, so concurrent runOne() calls are safe. runSuite()
 * prepares eagerly and then fans the suite out over its own worker
 * pool. The runner is intentionally non-copyable (it owns mutexes and
 * a workload cache); keep one per sweep.
 */
class SuiteRunner
{
  public:
    explicit SuiteRunner(RunOptions options = {});

    SuiteRunner(const SuiteRunner &) = delete;
    SuiteRunner &operator=(const SuiteRunner &) = delete;

    /**
     * Eagerly perform every shared-state mutation a run needs: the
     * Pmax calibration (one swim-on-N simulation, unless leakage is
     * disabled or an explicit Pmax was given) and generation of the
     * given suite's workloads into the program cache. Idempotent:
     * repeated or concurrent calls calibrate exactly once and reuse
     * cached workloads.
     */
    void prepare(const std::vector<workload::SuiteEntry> &suite = {});

    /**
     * Invoked (from the completing worker's thread) the moment one
     * suite cell finishes, with the suite index and its result. Lets
     * callers persist each cell durably as it lands instead of losing
     * the whole batch to a mid-suite crash; the callback must be
     * thread-safe under jobs > 1.
     */
    using CellCallback =
        std::function<void(std::size_t, const SimResult &)>;

    /**
     * Simulate one application on one model. Failures and deadline
     * timeouts are retried per RunOptions and, once exhausted, come
     * back as a tombstone result rather than an exception.
     */
    SimResult runOne(const std::string &model_name,
                     const workload::SuiteEntry &entry);

    /** Simulate one application on an explicit model configuration. */
    SimResult runOne(const ModelConfig &config,
                     const workload::SuiteEntry &entry);

    /** Simulate a set of applications on one model (worker pool). */
    std::vector<SimResult> runSuite(
        const std::string &model_name,
        const std::vector<workload::SuiteEntry> &suite,
        const CellCallback &on_cell_done = {});

    /** Same, for an explicit model configuration. */
    std::vector<SimResult> runSuite(
        const ModelConfig &config,
        const std::vector<workload::SuiteEntry> &suite,
        const CellCallback &on_cell_done = {});

    /**
     * The calibrated Pmax (model pJ per cycle). Triggers the
     * calibration run (via prepare()) on first use.
     */
    double pmax();

    /**
     * Inject an externally memoized Pmax, skipping the calibration
     * run (used by the bench result cache).
     */
    void setPmax(double pmax_per_cycle);

    const RunOptions &options() const { return opts; }

  private:
    Workload &workloadFor(const workload::SuiteEntry &entry);

    /** One simulation; requires prepare() to have run. */
    SimResult runPrepared(const ModelConfig &config,
                          const workload::SuiteEntry &entry);

    /**
     * One cell with the resilience wrapper: deadline plumbing, retry
     * with exponential backoff, tombstone on exhaustion. Never throws
     * for per-cell failures (std::exception), so one pathological cell
     * cannot take down the pool.
     */
    SimResult runCell(const ModelConfig &config,
                      const workload::SuiteEntry &entry);

    RunOptions opts;
    std::mutex pmaxMutex; //!< guards the calibration state below
    double pmaxValue = 0.0;
    bool pmaxReady = false;
    std::mutex cacheMutex; //!< guards programCache
    std::map<std::string, Workload> programCache;
};

/** Per-group (plus overall) geometric means of a metric. */
struct GroupSummary
{
    /** Ordered labels: the five groups then "All". */
    std::vector<std::string> labels;
    /** Geomean of the metric per label. */
    std::vector<double> values;
};

/**
 * Aggregate a per-app metric into per-group geometric means, paper
 * style (plus the overall mean as the final entry).
 *
 * @param results one result per application.
 * @param metric extracts the (strictly positive) metric.
 */
GroupSummary summarizeByGroup(
    const std::vector<SimResult> &results,
    const std::function<double(const SimResult &)> &metric);

/** Look up the result for one app name; fatal()s when missing. */
const SimResult &findResult(const std::vector<SimResult> &results,
                            const std::string &app);

} // namespace parrot::sim

#endif // PARROT_SIM_RUNNER_HH
