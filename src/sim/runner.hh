/**
 * @file
 * Suite runner: drives (model x application) simulations, handles the
 * Pmax leakage calibration (§3.2: Pmax is the per-cycle dynamic power
 * of the hottest application — swim — on the base N model) and
 * aggregates per-group geometric means the way the paper reports them.
 */

#ifndef PARROT_SIM_RUNNER_HH
#define PARROT_SIM_RUNNER_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/model_config.hh"
#include "sim/result.hh"
#include "sim/simulator.hh"

namespace parrot::sim
{

/** Options controlling a suite run. */
struct RunOptions
{
    std::uint64_t instBudget = 300000; //!< per application
    /** Pmax for leakage; 0 = calibrate automatically from swim on N. */
    double pmaxPerCycle = 0.0;
    /** Skip calibration entirely (leakage = 0). */
    bool noLeakage = false;
};

/**
 * Runs simulations and caches generated programs across models.
 */
class SuiteRunner
{
  public:
    explicit SuiteRunner(RunOptions options = {});

    /** Simulate one application on one model. */
    SimResult runOne(const std::string &model_name,
                     const workload::SuiteEntry &entry);

    /** Simulate a set of applications on one model. */
    std::vector<SimResult> runSuite(
        const std::string &model_name,
        const std::vector<workload::SuiteEntry> &suite);

    /**
     * The calibrated Pmax (model pJ per cycle). Triggers the
     * calibration run on first use.
     */
    double pmax();

    const RunOptions &options() const { return opts; }

  private:
    Workload &workloadFor(const workload::SuiteEntry &entry);

    RunOptions opts;
    double pmaxValue = 0.0;
    bool pmaxReady = false;
    std::map<std::string, Workload> programCache;
};

/** Per-group (plus overall) geometric means of a metric. */
struct GroupSummary
{
    /** Ordered labels: the five groups then "All". */
    std::vector<std::string> labels;
    /** Geomean of the metric per label. */
    std::vector<double> values;
};

/**
 * Aggregate a per-app metric into per-group geometric means, paper
 * style (plus the overall mean as the final entry).
 *
 * @param results one result per application.
 * @param metric extracts the (strictly positive) metric.
 */
GroupSummary summarizeByGroup(
    const std::vector<SimResult> &results,
    const std::function<double(const SimResult &)> &metric);

/** Look up the result for one app name; fatal()s when missing. */
const SimResult &findResult(const std::vector<SimResult> &results,
                            const std::string &app);

} // namespace parrot::sim

#endif // PARROT_SIM_RUNNER_HH
