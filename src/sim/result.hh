/**
 * @file
 * The metrics one simulation run produces — everything the paper's
 * figures need.
 */

#ifndef PARROT_SIM_RESULT_HH
#define PARROT_SIM_RESULT_HH

#include <array>
#include <string>

#include "power/energy_model.hh"
#include "power/events.hh"
#include "stats/stats.hh"

namespace parrot::sim
{

/** All measurements from one (model, application) simulation. */
struct SimResult
{
    std::string model;
    std::string app;

    // --- performance ---
    std::uint64_t insts = 0;   //!< committed macro-instructions
    std::uint64_t uops = 0;    //!< committed (useful) uops
    std::uint64_t cycles = 0;
    double ipc = 0.0;
    double upc = 0.0;          //!< uops per cycle

    // --- coverage (Figure 4.8) ---
    std::uint64_t uopsFromTraceCache = 0;
    std::uint64_t uopsFromColdPipe = 0;
    double coverage = 0.0; //!< fraction of work fed by the trace cache

    // --- front-end (Figure 4.7) ---
    std::uint64_t coldCondBranches = 0;
    std::uint64_t coldBranchMispredicts = 0;
    std::uint64_t tracePredictions = 0;
    std::uint64_t traceMispredicts = 0;
    std::uint64_t tpLookups = 0;      //!< fetch-time predictor consults
    std::uint64_t tpHits = 0;         //!< predictor produced a TID
    std::uint64_t tcMissAfterPredict = 0; //!< predicted TID absent in TC
    std::uint64_t candidatesSeen = 0; //!< selector emissions
    double coldBranchMispredRate = 0.0;
    double traceMispredRate = 0.0;

    // --- trace unit ---
    std::uint64_t tracesInserted = 0;
    std::uint64_t traceExecutions = 0;

    // --- optimizer (Figures 4.9 / 4.10) ---
    std::uint64_t tracesOptimized = 0;
    double avgUopReduction = 0.0;  //!< static, averaged over opt. traces
    double avgDepReduction = 0.0;
    std::uint64_t optimizedTraceExecutions = 0;
    double optimizerUtilization = 0.0; //!< executions per optimized trace
    double dynamicUopReduction = 0.0;  //!< weighted by execution counts

    // --- energy (Figures 4.2 / 4.5 / 4.11) ---
    double dynamicEnergy = 0.0;
    double leakageEnergy = 0.0;
    double totalEnergy = 0.0;
    double energyPerCycle = 0.0; //!< dynamic only (Pmax calibration)
    std::array<double, power::numPowerUnits> unitEnergy{};

    // --- power awareness (Figures 4.3 / 4.6) ---
    double cmpw = 0.0;

    // --- caches ---
    double l1iMissRate = 0.0;
    double l1dMissRate = 0.0;
    double l2MissRate = 0.0;

    // --- co-simulation oracle (present when the run had --cosim) ---
    bool cosimEnabled = false;
    std::uint64_t cosimColdCommits = 0;  //!< cold boundaries compared
    std::uint64_t cosimTraceCommits = 0; //!< trace boundaries compared
    std::uint64_t cosimMismatches = 0;   //!< divergence events
};

/**
 * Publish every SimResult metric into a stats registry under dotted
 * keys ("perf.ipc", "energy.total", "trace.coverage", ...), prefixed by
 * "<model>.<app>." when prefix_identity is true. Gives harnesses and
 * external tooling a uniform, name-addressable view of a run.
 */
void exportToRegistry(const SimResult &result,
                      class parrot::stats::Registry &registry,
                      bool prefix_identity = false);

} // namespace parrot::sim

#endif // PARROT_SIM_RESULT_HH
