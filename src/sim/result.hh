/**
 * @file
 * The metrics one simulation run produces — everything the paper's
 * figures need.
 *
 * SimResult is a thin typed view over the simulator's hierarchical
 * stats tree: every numeric field corresponds to one dotted stats-tree
 * path, listed in the resultFields() descriptor table. That table is
 * the single source of truth driving generic materialization from a
 * tree snapshot, the self-describing key=value bench-cache format and
 * the registry export — so a field added to SimResult without a
 * descriptor (or a descriptor without a tree path) is caught
 * structurally, not silently dropped.
 */

#ifndef PARROT_SIM_RESULT_HH
#define PARROT_SIM_RESULT_HH

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "power/energy_model.hh"
#include "power/events.hh"
#include "stats/group.hh"
#include "stats/stats.hh"
#include "stats/timeseries.hh"

namespace parrot::sim
{

/** All measurements from one (model, application) simulation. */
struct SimResult
{
    std::string model;
    std::string app;

    // --- performance ---
    std::uint64_t insts = 0;   //!< committed macro-instructions
    std::uint64_t uops = 0;    //!< committed (useful) uops
    std::uint64_t cycles = 0;
    double ipc = 0.0;
    double upc = 0.0;          //!< uops per cycle

    // --- coverage (Figure 4.8) ---
    std::uint64_t uopsFromTraceCache = 0;
    std::uint64_t uopsFromColdPipe = 0;
    double coverage = 0.0; //!< fraction of work fed by the trace cache

    // --- front-end (Figure 4.7) ---
    std::uint64_t coldCondBranches = 0;
    std::uint64_t coldBranchMispredicts = 0;
    std::uint64_t tracePredictions = 0;
    std::uint64_t traceMispredicts = 0;
    std::uint64_t tpLookups = 0;      //!< fetch-time predictor consults
    std::uint64_t tpHits = 0;         //!< predictor produced a TID
    std::uint64_t tcMissAfterPredict = 0; //!< predicted TID absent in TC
    std::uint64_t candidatesSeen = 0; //!< selector emissions
    double coldBranchMispredRate = 0.0;
    double traceMispredRate = 0.0;

    // --- trace unit ---
    std::uint64_t tracesInserted = 0;
    std::uint64_t traceExecutions = 0;

    // --- optimizer (Figures 4.9 / 4.10) ---
    std::uint64_t tracesOptimized = 0;
    double avgUopReduction = 0.0;  //!< static, averaged over opt. traces
    double avgDepReduction = 0.0;
    std::uint64_t optimizedTraceExecutions = 0;
    double optimizerUtilization = 0.0; //!< executions per optimized trace
    double dynamicUopReduction = 0.0;  //!< weighted by execution counts

    // --- energy (Figures 4.2 / 4.5 / 4.11) ---
    double dynamicEnergy = 0.0;
    double leakageEnergy = 0.0; //!< net of power-gating savings
    double leakageSavedEnergy = 0.0; //!< saved by power-gated units
    double totalEnergy = 0.0;
    double energyPerCycle = 0.0; //!< dynamic only (Pmax calibration)
    std::array<double, power::numPowerUnits> unitEnergy{};

    // --- power awareness (Figures 4.3 / 4.6) ---
    double cmpw = 0.0;

    // --- power-state modeling (zero when gating is off) ---
    std::uint64_t powerGatedCycles = 0; //!< summed over gated units
    std::uint64_t powerWakeStalls = 0;  //!< stall cycles paid to wake
    std::uint64_t powerSleepEntries = 0;

    // --- caches ---
    double l1iMissRate = 0.0;
    double l1dMissRate = 0.0;
    double l2MissRate = 0.0;

    // --- co-simulation oracle (present when the run had --cosim) ---
    bool cosimEnabled = false;
    std::uint64_t cosimColdCommits = 0;  //!< cold boundaries compared
    std::uint64_t cosimTraceCommits = 0; //!< trace boundaries compared
    std::uint64_t cosimMismatches = 0;   //!< divergence events

    // --- sampled simulation (trivial values on detailed runs) ---
    std::uint64_t sampleWindows = 0; //!< detailed windows measured
    double sampleCoverage = 1.0;     //!< detailed / total instructions
    double sampleCiIpc = 0.0;        //!< relative 95% CI of window CPI
    double sampleCiEnergy = 0.0;     //!< rel. 95% CI of energy per inst

    // --- resilience (deliberately NOT in resultFields(): tombstones
    // serialize as their own "!failed" cache-row form, and attempts is
    // per-run provenance, not a simulated metric) ---
    /** True when the cell failed every attempt (deadline, OOM, injected
     * fault): every metric above is meaningless and figure tables
     * render the cell as "-". */
    bool tombstone = false;
    /** Attempts it took to produce this result (1 = first try). */
    unsigned attempts = 1;

    /** Windowed time-series sampled every ModelConfig::statsInterval
     * cycles; null when sampling was off. Never serialized. */
    std::shared_ptr<const stats::TimeSeries> series;
};

/**
 * One entry of the SimResult field-descriptor table: the dotted
 * stats-tree path the field is materialized from (also its
 * serialization key and registry key) plus typed accessors.
 */
struct ResultField
{
    std::string key;
    std::function<double(const SimResult &)> get;
    std::function<void(SimResult &, double)> set;
    /** Extensive metrics grow with the amount of work simulated
     * (counts, cycles, joules); sampled runs extrapolate them over the
     * fast-forwarded gap. Intensive metrics (rates, ratios, IPC) are
     * reported as measured. */
    bool extensive = false;
};

/** The descriptor table: one entry per numeric SimResult field, in
 * declaration order. Built once; never mutated. */
const std::vector<ResultField> &resultFields();

/** Find a descriptor by key; nullptr when unknown. */
const ResultField *findResultField(const std::string &key);

/**
 * Fill every numeric field of `out` from a stats-tree snapshot. The
 * snapshot must contain every descriptor key (a missing path is a
 * wiring bug and fatal()s) — this is the structural anti-drift check
 * between SimResult and the stats tree.
 */
void materializeResult(SimResult &out, const stats::Snapshot &snap);

/**
 * Scale every extensive field of `r` by `scale` (> 1 for sampled runs
 * extrapolating over fast-forwarded instructions). Intensive fields
 * are untouched: ratios of extensive quantities (IPC, rates,
 * energy-per-cycle) are invariant under uniform scaling, so the
 * extrapolated result stays self-consistent.
 */
void extrapolateResult(SimResult &r, double scale);

/**
 * Publish every SimResult metric into a stats registry under its
 * descriptor key ("perf.ipc", "energy.total", "trace.coverage", ...),
 * prefixed by "<model>.<app>." when prefix_identity is true. The
 * cosim.* keys are published only when the run had the oracle enabled.
 */
void exportToRegistry(const SimResult &result,
                      class parrot::stats::Registry &registry,
                      bool prefix_identity = false);

/**
 * @name Result-cache wire format
 * The self-describing plain-text format every result cache (the bench
 * memo, campaign journal shards) speaks. One definition here so the
 * serial store, the multi-process campaign workers and the tests can
 * never drift apart:
 *
 *   line 0:  "# parrot-bench-cache v2 <ordered field keys>"
 *   line n:  "<model>/<app>/<insts>\t<key=value ...>"      (healthy)
 *            "<model>/<app>/<insts>\t!failed attempts=N"   (tombstone)
 * @{
 */

/** The header line: format version plus the full ordered field list.
 * Loaders compare it verbatim; any SimResult schema change invalidates
 * old caches wholesale (no mixed-format salvage). */
std::string cacheHeaderLine();

/** The canonical memo key for one cell. */
std::string resultCacheKey(const std::string &model,
                           const std::string &app, std::uint64_t insts);

/** One full cache line for `key`: key, tab, then either the
 * self-describing record or the tombstone payload. */
std::string serializeCacheLine(const std::string &key, const SimResult &r);

/** Parse the payload after the key's tab (healthy record or tombstone)
 * into `r`; false for malformed/truncated payloads. Does not set
 * r.model / r.app — recover those from the key via splitCacheKey(). */
bool parseCachePayload(const std::string &payload, SimResult &r);

/** Split "model/app/insts" back into identity parts; false when the
 * key is malformed. */
bool splitCacheKey(const std::string &key, std::string &model,
                   std::string &app);
/** @} */

} // namespace parrot::sim

#endif // PARROT_SIM_RESULT_HH
