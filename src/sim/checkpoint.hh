/**
 * @file
 * The `.pckp` warm-state checkpoint container.
 *
 * A checkpoint freezes one (model, application) simulation at a
 * committed-instruction boundary so a later process can resume it
 * byte-identically: architectural state, every warm structure (cache
 * tags, branch predictor tables, trace cache / selector / filter
 * contents), the drained core bookkeeping and the simulator's own
 * fetch-state machine all serialize through `serial::Writer` into one
 * opaque STATE payload. This header owns only the file container
 * around that payload, mirroring the `.ptrace` framing discipline:
 *
 * ```
 *   bytes 0-3   magic "PCKP"
 *   bytes 4-5   u16 LE format version (currently 1)
 *   bytes 6-7   u16 LE reserved, must be 0
 *   section     META   u32 LE payload length, u32 LE CRC32, payload
 *   section     STATE  u32 LE payload length, u32 LE CRC32, payload
 * ```
 *
 * The META section names the model, application, seed, saved position
 * and budget, so a resume against the wrong cell is rejected before
 * any state is deserialized. Every section is independently
 * CRC-protected and the decoder treats input as hostile: structural
 * violations raise CheckpointFormatError with a stable category
 * (never a crash or a silent mis-resume). Files are published through
 * the crash-safe atomic-file layer.
 */

#ifndef PARROT_SIM_CHECKPOINT_HH
#define PARROT_SIM_CHECKPOINT_HH

#include <cstdint>
#include <stdexcept>
#include <string>

namespace parrot::sim
{

/** Current checkpoint format version. */
inline constexpr std::uint16_t checkpointVersion = 1;

/**
 * Why a checkpoint input was rejected. Categories are stable (the
 * corrupt-input test matrix keys on them); messages add detail.
 */
enum class CheckpointError : std::uint8_t
{
    Io,            //!< cannot read/write the file at all
    Empty,         //!< zero-length input
    BadMagic,      //!< leading bytes are not "PCKP"
    BadVersion,    //!< unsupported format version
    BadReserved,   //!< reserved header bytes are non-zero
    Truncated,     //!< input ends inside a section
    SectionCrc,    //!< section payload CRC mismatch
    BadMeta,       //!< META fields are structurally invalid
    ModelMismatch, //!< checkpoint was saved for a different model
    AppMismatch,   //!< checkpoint was saved for a different app
    BadState,      //!< STATE payload inconsistent with the model
    TrailingBytes, //!< bytes remain after the STATE section
    NumErrors
};

/** Stable category name ("BadMagic", ...). */
const char *checkpointErrorName(CheckpointError e);

/** Thrown on any malformed or mismatched checkpoint input. */
class CheckpointFormatError : public std::runtime_error
{
  public:
    CheckpointFormatError(CheckpointError category,
                          const std::string &message)
        : std::runtime_error(message), cat(category)
    {}

    CheckpointError category() const { return cat; }

  private:
    CheckpointError cat;
};

/** Identity + position metadata framed ahead of the state payload. */
struct CheckpointMeta
{
    std::string model;            //!< ModelConfig::name at save time
    std::string app;              //!< application / trace name
    std::uint64_t seed = 0;       //!< workload seed
    std::uint64_t position = 0;   //!< committed insts when saved
    std::uint64_t instBudget = 0; //!< budget of the saving run
};

/** Frame meta + state payload into a complete checkpoint image. */
std::string encodeCheckpoint(const CheckpointMeta &meta,
                             const std::string &state);

/**
 * Parse and CRC-verify a checkpoint image; fills `state_out` with the
 * still-serialized STATE payload. @throws CheckpointFormatError.
 */
CheckpointMeta decodeCheckpoint(const std::string &bytes,
                                std::string &state_out);

/** Publish a checkpoint via writeFileAtomic.
 * @throws CheckpointFormatError (category Io) on write failure. */
void writeCheckpointFile(const std::string &path,
                         const CheckpointMeta &meta,
                         const std::string &state);

/** Read + decode a checkpoint file. @throws CheckpointFormatError. */
CheckpointMeta readCheckpointFile(const std::string &path,
                                  std::string &state_out);

} // namespace parrot::sim

#endif // PARROT_SIM_CHECKPOINT_HH
