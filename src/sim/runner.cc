#include "sim/runner.hh"

#include "common/logging.hh"
#include "stats/stats.hh"

namespace parrot::sim
{

SuiteRunner::SuiteRunner(RunOptions options) : opts(options) {}

Workload &
SuiteRunner::workloadFor(const workload::SuiteEntry &entry)
{
    auto it = programCache.find(entry.profile.name);
    if (it == programCache.end()) {
        it = programCache.emplace(entry.profile.name,
                                  loadWorkload(entry)).first;
    }
    return it->second;
}

double
SuiteRunner::pmax()
{
    if (pmaxReady)
        return pmaxValue;
    if (opts.noLeakage) {
        pmaxValue = 0.0;
    } else if (opts.pmaxPerCycle > 0.0) {
        pmaxValue = opts.pmaxPerCycle;
    } else {
        // §3.2: Pmax is the per-cycle dynamic power of the hottest
        // application (swim) on the base OOO model N.
        auto entry = workload::findApp("swim");
        ParrotSimulator sim(ModelConfig::make("N"), workloadFor(entry));
        SimResult r = sim.run(opts.instBudget, 0.0);
        pmaxValue = r.energyPerCycle;
    }
    pmaxReady = true;
    return pmaxValue;
}

SimResult
SuiteRunner::runOne(const std::string &model_name,
                    const workload::SuiteEntry &entry)
{
    double pmax_per_cycle = opts.noLeakage ? 0.0 : pmax();
    ParrotSimulator sim(ModelConfig::make(model_name), workloadFor(entry));
    return sim.run(opts.instBudget, pmax_per_cycle);
}

std::vector<SimResult>
SuiteRunner::runSuite(const std::string &model_name,
                      const std::vector<workload::SuiteEntry> &suite)
{
    std::vector<SimResult> out;
    out.reserve(suite.size());
    for (const auto &entry : suite)
        out.push_back(runOne(model_name, entry));
    return out;
}

GroupSummary
summarizeByGroup(const std::vector<SimResult> &results,
                 const std::function<double(const SimResult &)> &metric)
{
    GroupSummary summary;
    std::vector<double> all;

    for (unsigned g = 0;
         g < static_cast<unsigned>(workload::BenchGroup::NumGroups); ++g) {
        auto group = static_cast<workload::BenchGroup>(g);
        std::vector<double> vals;
        for (const auto &r : results) {
            // Group membership comes from the suite definition.
            auto entry_group =
                workload::findApp(r.app).profile.group;
            if (entry_group == group)
                vals.push_back(metric(r));
        }
        if (vals.empty())
            continue;
        summary.labels.push_back(workload::benchGroupName(group));
        summary.values.push_back(stats::geomean(vals));
        for (double v : vals)
            all.push_back(v);
    }

    PARROT_ASSERT(!all.empty(), "summarizeByGroup: no results");
    summary.labels.push_back("All");
    summary.values.push_back(stats::geomean(all));
    return summary;
}

const SimResult &
findResult(const std::vector<SimResult> &results, const std::string &app)
{
    for (const auto &r : results) {
        if (r.app == app)
            return r;
    }
    PARROT_FATAL("no result for application '%s'", app.c_str());
}

} // namespace parrot::sim
