#include "sim/runner.hh"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "common/cli.hh"
#include "common/fault.hh"
#include "common/logging.hh"
#include "sim/checkpoint.hh"
#include "stats/stats.hh"

namespace parrot::sim
{

unsigned
resolveJobs(unsigned requested)
{
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    // Anything past a few threads per hardware context is a config
    // mistake, not a tuning choice: clamp instead of spawning a
    // thousand-worker pool.
    const unsigned long cap = static_cast<unsigned long>(hw) * 4;

    if (requested > 0) {
        if (requested > cap) {
            PARROT_WARN("--jobs %u exceeds %lu (4x hardware "
                        "concurrency); clamping to %u",
                        requested, cap, hw);
            return hw;
        }
        return requested;
    }
    if (const char *env = std::getenv("PARROT_JOBS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end == env || *end != '\0' || v <= 0) {
            PARROT_WARN("ignoring invalid PARROT_JOBS='%s'; using %u",
                        env, hw);
            return hw;
        }
        if (static_cast<unsigned long>(v) > cap) {
            PARROT_WARN("PARROT_JOBS=%ld exceeds %lu (4x hardware "
                        "concurrency); clamping to %u",
                        v, cap, hw);
            return hw;
        }
        return static_cast<unsigned>(v);
    }
    return hw;
}

void
applyRunOptionsEnv(RunOptions &opts)
{
    if (const char *env = std::getenv("PARROT_DEADLINE_MS"))
        opts.deadlineMs = cli::parseU64("PARROT_DEADLINE_MS", env);
    if (const char *env = std::getenv("PARROT_RETRIES"))
        opts.maxRetries = cli::parseU32("PARROT_RETRIES", env);
    if (const char *env = std::getenv("PARROT_RETRY_BACKOFF_MS"))
        opts.retryBackoffMs =
            cli::parseU64("PARROT_RETRY_BACKOFF_MS", env);
    if (const char *env = std::getenv("PARROT_CHECKPOINT_DIR"))
        opts.checkpointDir = env;
}

namespace
{

/** The checkpoint file one cell reads and writes under `dir`. The
 * instruction budget is deliberately absent from the name: resuming a
 * larger budget from a smaller one's checkpoint is the point. */
std::string
checkpointPathFor(const std::string &dir, const ModelConfig &config,
                  const workload::SuiteEntry &entry)
{
    std::string leaf = config.name + "__" + entry.profile.name;
    if (!entry.tracePath.empty()) {
        // Recordings of the same app are distinct cells; fold the
        // trace path into the name (sanitized — it contains '/').
        leaf += "__";
        for (char c : entry.tracePath)
            leaf += std::isalnum(static_cast<unsigned char>(c))
                        ? c : '_';
    }
    return dir + "/" + leaf + ".pckp";
}

/**
 * Resume `sim` from `path` when a usable checkpoint is there: one that
 * reads cleanly, matches the cell, and is at or before `inst_budget`
 * (a checkpoint past the budget describes a longer run than the one
 * requested; resuming it would report metrics for the wrong budget).
 * Absent files are silently fresh runs; anything else warns — the
 * runner degrades to a fresh run instead of failing the cell.
 */
void
maybeResumeFromCheckpoint(ParrotSimulator &sim, const std::string &path,
                          std::uint64_t inst_budget)
{
    CheckpointMeta meta;
    try {
        std::string state;
        meta = readCheckpointFile(path, state);
    } catch (const CheckpointFormatError &e) {
        if (e.category() != CheckpointError::Io)
            PARROT_WARN("ignoring checkpoint %s: %s", path.c_str(),
                        e.what());
        return;
    }
    if (meta.position > inst_budget) {
        PARROT_WARN("ignoring checkpoint %s: position %llu is past the "
                    "requested budget %llu",
                    path.c_str(),
                    static_cast<unsigned long long>(meta.position),
                    static_cast<unsigned long long>(inst_budget));
        return;
    }
    try {
        sim.loadCheckpoint(path);
    } catch (const CheckpointFormatError &e) {
        PARROT_WARN("ignoring checkpoint %s: %s", path.c_str(),
                    e.what());
    }
}

} // namespace

void
parallelFor(std::size_t count, unsigned jobs,
            const std::function<void(std::size_t)> &body)
{
    std::size_t pool_size = resolveJobs(jobs);
    if (pool_size > count)
        pool_size = count;
    if (pool_size <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr error;
    auto worker = [&] {
        for (;;) {
            std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!error)
                    error = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(pool_size);
    for (std::size_t t = 0; t < pool_size; ++t)
        pool.emplace_back(worker);
    for (auto &thread : pool)
        thread.join();
    if (error)
        std::rethrow_exception(error);
}

SuiteRunner::SuiteRunner(RunOptions options) : opts(options) {}

Workload &
SuiteRunner::workloadFor(const workload::SuiteEntry &entry)
{
    // Generation happens under the lock so the same app is never
    // generated twice; std::map references stay valid across later
    // insertions, so handing the reference out is safe. Trace-file
    // cells key on the path: the same app name can exist both as a
    // generator cell and as one or more recordings.
    const std::string key = entry.tracePath.empty()
                                ? entry.profile.name
                                : "trace:" + entry.tracePath;
    std::lock_guard<std::mutex> lock(cacheMutex);
    auto it = programCache.find(key);
    if (it == programCache.end())
        it = programCache.emplace(key, loadWorkload(entry)).first;
    return it->second;
}

void
SuiteRunner::prepare(const std::vector<workload::SuiteEntry> &suite)
{
    {
        std::lock_guard<std::mutex> lock(pmaxMutex);
        if (!pmaxReady) {
            if (opts.noLeakage) {
                pmaxValue = 0.0;
            } else if (opts.pmaxPerCycle > 0.0) {
                pmaxValue = opts.pmaxPerCycle;
            } else {
                if (std::isnan(opts.pmaxPerCycle) ||
                    opts.pmaxPerCycle < 0.0)
                    PARROT_FATAL("invalid pmax override %f (must be a "
                                 "finite value >= 0)",
                                 opts.pmaxPerCycle);
                // §3.2: Pmax is the per-cycle dynamic power of the
                // hottest application (swim) on the base OOO model N.
                auto entry = workload::findApp("swim");
                ParrotSimulator sim(ModelConfig::make("N"),
                                    workloadFor(entry));
                SimResult r = sim.run(opts.instBudget, 0.0);
                if (!(r.energyPerCycle > 0.0))
                    PARROT_FATAL("pmax calibration produced %f pJ/cycle; "
                                 "a non-positive Pmax would silently "
                                 "zero every leakage figure",
                                 r.energyPerCycle);
                pmaxValue = r.energyPerCycle;
            }
            pmaxReady = true;
        }
    }
    for (const auto &entry : suite)
        workloadFor(entry);
}

double
SuiteRunner::pmax()
{
    prepare();
    return pmaxValue;
}

void
SuiteRunner::setPmax(double pmax_per_cycle)
{
    // A NaN or negative Pmax (a stale cache marker, a typo'd flag)
    // would poison every leakage figure downstream without tripping
    // anything: leakageEnergy() multiplies it straight in.
    if (!(pmax_per_cycle >= 0.0) ||
        !std::isfinite(pmax_per_cycle))
        PARROT_FATAL("setPmax(%f): Pmax must be finite and >= 0",
                     pmax_per_cycle);
    std::lock_guard<std::mutex> lock(pmaxMutex);
    pmaxValue = pmax_per_cycle;
    pmaxReady = true;
}

SimResult
SuiteRunner::runPrepared(const ModelConfig &config,
                         const workload::SuiteEntry &entry)
{
    double pmax_per_cycle = opts.noLeakage ? 0.0 : pmaxValue;
    // A config-level trace_file redirects every cell that doesn't
    // already carry its own recording.
    workload::SuiteEntry cell = entry;
    if (!config.traceFile.empty() && cell.tracePath.empty())
        cell.tracePath = config.traceFile;
    ParrotSimulator sim(config, workloadFor(cell));
    const std::string ckpt = opts.checkpointDir.empty()
        ? std::string{}
        : checkpointPathFor(opts.checkpointDir, config, cell);
    if (!ckpt.empty())
        maybeResumeFromCheckpoint(sim, ckpt, opts.instBudget);
    SimResult r = sim.run(opts.instBudget, pmax_per_cycle,
                          opts.deadlineMs);
    if (!ckpt.empty())
        sim.saveCheckpoint(ckpt);
    return r;
}

SimResult
SuiteRunner::runCell(const ModelConfig &config,
                     const workload::SuiteEntry &entry)
{
    const unsigned long cell = fault::nextCellIndex();
    const unsigned max_attempts = opts.maxRetries + 1;
    for (unsigned attempt = 1;; ++attempt) {
        fault::armAttempt(cell, attempt);
        try {
            if (fault::attemptShouldFail())
                throw std::runtime_error(
                    "injected cell failure (PARROT_FAULT_FAIL_CELL)");
            SimResult r = runPrepared(config, entry);
            r.attempts = attempt;
            return r;
        } catch (const std::exception &e) {
            // Deadline timeouts, OOM (bad_alloc) and injected faults
            // land here; PARROT_PANIC-style invariant violations abort
            // the process and are deliberately not retried.
            if (attempt >= max_attempts) {
                PARROT_WARN("%s/%s failed after %u attempt(s): %s; "
                            "recording tombstone",
                            config.name.c_str(),
                            entry.profile.name.c_str(), attempt,
                            e.what());
                SimResult t;
                t.model = config.name;
                t.app = entry.profile.name;
                t.tombstone = true;
                t.attempts = attempt;
                return t;
            }
            const std::uint64_t delay = opts.retryBackoffMs
                                        << (attempt - 1);
            PARROT_WARN("%s/%s attempt %u/%u failed (%s); retrying in "
                        "%llu ms",
                        config.name.c_str(), entry.profile.name.c_str(),
                        attempt, max_attempts, e.what(),
                        static_cast<unsigned long long>(delay));
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay));
        }
    }
}

SimResult
SuiteRunner::runOne(const std::string &model_name,
                    const workload::SuiteEntry &entry)
{
    return runOne(ModelConfig::make(model_name), entry);
}

SimResult
SuiteRunner::runOne(const ModelConfig &config,
                    const workload::SuiteEntry &entry)
{
    prepare();
    return runCell(config, entry);
}

std::vector<SimResult>
SuiteRunner::runSuite(const std::string &model_name,
                      const std::vector<workload::SuiteEntry> &suite,
                      const CellCallback &on_cell_done)
{
    return runSuite(ModelConfig::make(model_name), suite, on_cell_done);
}

std::vector<SimResult>
SuiteRunner::runSuite(const ModelConfig &config,
                      const std::vector<workload::SuiteEntry> &suite,
                      const CellCallback &on_cell_done)
{
    // All shared-state mutation (Pmax calibration, workload
    // generation) happens here, before any worker starts; the workers
    // then only read shared state and write their own result slot, so
    // the output is bit-identical to the serial path.
    prepare(suite);
    std::vector<SimResult> out(suite.size());
    parallelFor(suite.size(), opts.jobs, [&](std::size_t i) {
        out[i] = runCell(config, suite[i]);
        if (on_cell_done)
            on_cell_done(i, out[i]);
    });
    return out;
}

GroupSummary
summarizeByGroup(const std::vector<SimResult> &results,
                 const std::function<double(const SimResult &)> &metric)
{
    constexpr auto num_groups =
        static_cast<unsigned>(workload::BenchGroup::NumGroups);

    // Resolve each app's group once; findApp is a linear scan over
    // the full suite, so doing it per (group x result) pair is
    // quadratic in practice.
    std::map<std::string, workload::BenchGroup> group_of;
    for (const auto &entry : workload::fullSuite())
        group_of.emplace(entry.profile.name, entry.profile.group);

    std::vector<std::vector<double>> by_group(num_groups);
    for (const auto &r : results) {
        auto it = group_of.find(r.app);
        PARROT_ASSERT(it != group_of.end(),
                      "summarizeByGroup: unknown app '%s'",
                      r.app.c_str());
        by_group[static_cast<unsigned>(it->second)].push_back(metric(r));
    }

    GroupSummary summary;
    std::vector<double> all;
    for (unsigned g = 0; g < num_groups; ++g) {
        auto group = static_cast<workload::BenchGroup>(g);
        const auto &vals = by_group[g];
        if (vals.empty())
            continue;
        summary.labels.push_back(workload::benchGroupName(group));
        summary.values.push_back(stats::geomean(vals));
        for (double v : vals)
            all.push_back(v);
    }

    PARROT_ASSERT(!all.empty(), "summarizeByGroup: no results");
    summary.labels.push_back("All");
    summary.values.push_back(stats::geomean(all));
    return summary;
}

const SimResult &
findResult(const std::vector<SimResult> &results, const std::string &app)
{
    for (const auto &r : results) {
        if (r.app == app)
            return r;
    }
    PARROT_FATAL("no result for application '%s'", app.c_str());
}

} // namespace parrot::sim
