#include "sim/checkpoint.hh"

#include <cstring>
#include <fstream>
#include <sstream>

#include "common/atomic_file.hh"
#include "common/serialize.hh"

namespace parrot::sim
{

namespace
{

constexpr char checkpointMagic[4] = {'P', 'C', 'K', 'P'};

void
putU16(std::string &out, std::uint16_t v)
{
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putSection(std::string &out, const std::string &payload)
{
    putU32(out, static_cast<std::uint32_t>(payload.size()));
    putU32(out,
           serial::crc32(
               reinterpret_cast<const std::uint8_t *>(payload.data()),
               payload.size()));
    out += payload;
}

/** Cursor over a hostile byte image; all reads bounds-checked. */
struct Cursor
{
    const std::uint8_t *data;
    std::size_t len;
    std::size_t off = 0;

    void
    need(std::size_t n, const char *what)
    {
        if (len - off < n)
            throw CheckpointFormatError(
                CheckpointError::Truncated,
                std::string("checkpoint ends inside ") + what);
    }

    std::uint16_t
    u16(const char *what)
    {
        need(2, what);
        std::uint16_t v = static_cast<std::uint16_t>(
            data[off] | (data[off + 1] << 8));
        off += 2;
        return v;
    }

    std::uint32_t
    u32(const char *what)
    {
        need(4, what);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data[off + i]) << (8 * i);
        off += 4;
        return v;
    }

    std::string
    section(const char *what)
    {
        const std::uint32_t length = u32(what);
        const std::uint32_t want_crc = u32(what);
        need(length, what);
        const std::uint32_t got_crc = serial::crc32(data + off, length);
        if (got_crc != want_crc)
            throw CheckpointFormatError(
                CheckpointError::SectionCrc,
                std::string("checkpoint ") + what +
                    " section CRC mismatch");
        std::string payload(reinterpret_cast<const char *>(data + off),
                            length);
        off += length;
        return payload;
    }
};

} // namespace

const char *
checkpointErrorName(CheckpointError e)
{
    switch (e) {
      case CheckpointError::Io: return "Io";
      case CheckpointError::Empty: return "Empty";
      case CheckpointError::BadMagic: return "BadMagic";
      case CheckpointError::BadVersion: return "BadVersion";
      case CheckpointError::BadReserved: return "BadReserved";
      case CheckpointError::Truncated: return "Truncated";
      case CheckpointError::SectionCrc: return "SectionCrc";
      case CheckpointError::BadMeta: return "BadMeta";
      case CheckpointError::ModelMismatch: return "ModelMismatch";
      case CheckpointError::AppMismatch: return "AppMismatch";
      case CheckpointError::BadState: return "BadState";
      case CheckpointError::TrailingBytes: return "TrailingBytes";
      case CheckpointError::NumErrors: break;
    }
    return "Unknown";
}

std::string
encodeCheckpoint(const CheckpointMeta &meta, const std::string &state)
{
    serial::Writer mw;
    mw.str(meta.model);
    mw.str(meta.app);
    mw.u64(meta.seed);
    mw.u64(meta.position);
    mw.u64(meta.instBudget);

    std::string out;
    out.append(checkpointMagic, sizeof(checkpointMagic));
    putU16(out, checkpointVersion);
    putU16(out, 0); // reserved
    const auto &meta_bytes = mw.bytes();
    putSection(out,
               std::string(reinterpret_cast<const char *>(
                               meta_bytes.data()),
                           meta_bytes.size()));
    putSection(out, state);
    return out;
}

CheckpointMeta
decodeCheckpoint(const std::string &bytes, std::string &state_out)
{
    if (bytes.empty())
        throw CheckpointFormatError(CheckpointError::Empty,
                                    "checkpoint file is empty");
    Cursor cur{reinterpret_cast<const std::uint8_t *>(bytes.data()),
               bytes.size()};
    cur.need(4, "the magic number");
    if (std::memcmp(cur.data, checkpointMagic, 4) != 0)
        throw CheckpointFormatError(
            CheckpointError::BadMagic,
            "checkpoint magic is not \"PCKP\"");
    cur.off = 4;
    const std::uint16_t version = cur.u16("the version field");
    if (version != checkpointVersion)
        throw CheckpointFormatError(
            CheckpointError::BadVersion,
            "unsupported checkpoint version " + std::to_string(version));
    if (cur.u16("the reserved field") != 0)
        throw CheckpointFormatError(
            CheckpointError::BadReserved,
            "checkpoint reserved bytes are non-zero");

    const std::string meta_bytes = cur.section("META");
    const std::string state = cur.section("STATE");
    if (cur.off != cur.len)
        throw CheckpointFormatError(
            CheckpointError::TrailingBytes,
            "bytes remain after the checkpoint STATE section");

    CheckpointMeta meta;
    try {
        serial::Reader mr(meta_bytes);
        meta.model = mr.str();
        meta.app = mr.str();
        meta.seed = mr.u64();
        meta.position = mr.u64();
        meta.instBudget = mr.u64();
        if (!mr.atEnd())
            throw serial::Error("trailing META bytes");
    } catch (const serial::Error &e) {
        throw CheckpointFormatError(
            CheckpointError::BadMeta,
            std::string("checkpoint META section is invalid: ") +
                e.what());
    }
    if (meta.model.empty() || meta.app.empty())
        throw CheckpointFormatError(
            CheckpointError::BadMeta,
            "checkpoint META names an empty model or application");
    state_out = state;
    return meta;
}

void
writeCheckpointFile(const std::string &path, const CheckpointMeta &meta,
                    const std::string &state)
{
    std::string err;
    if (!atomic_file::writeFileAtomic(path, encodeCheckpoint(meta, state),
                                      &err))
        throw CheckpointFormatError(
            CheckpointError::Io,
            "cannot write checkpoint '" + path + "': " + err);
}

CheckpointMeta
readCheckpointFile(const std::string &path, std::string &state_out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw CheckpointFormatError(
            CheckpointError::Io,
            "cannot open checkpoint '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad())
        throw CheckpointFormatError(
            CheckpointError::Io,
            "cannot read checkpoint '" + path + "'");
    return decodeCheckpoint(buf.str(), state_out);
}

} // namespace parrot::sim
