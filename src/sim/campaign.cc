#include "sim/campaign.hh"

#include <sys/mman.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <utility>

#include "common/cli.hh"
#include "common/fault.hh"
#include "common/logging.hh"
#include "sim/model_config.hh"
#include "sim/result_store.hh"

namespace parrot::sim
{

namespace
{

/** One grid cell: a model name and an application entry. */
struct Cell
{
    std::string model;
    workload::SuiteEntry entry;
};

std::vector<Cell>
buildCells(const std::vector<std::string> &models,
           const std::vector<workload::SuiteEntry> &suite)
{
    std::vector<Cell> cells;
    cells.reserve(models.size() * suite.size());
    // Model-major order, matching the serial bench loop; the order
    // only affects scheduling, never the merged cache bytes.
    for (const auto &model : models)
        for (const auto &entry : suite)
            cells.push_back(Cell{model, entry});
    return cells;
}

std::vector<Cell>
missingCells(const ResultStore &store, const std::vector<Cell> &cells)
{
    std::vector<Cell> missing;
    for (const auto &cell : cells) {
        if (!store.cached(cell.model, cell.entry.profile.name))
            missing.push_back(cell);
    }
    return missing;
}

/**
 * Body of one worker process. Claims cells from the shared cursor
 * until the list is exhausted, journaling each finished cell into this
 * worker's private shard. Returns the process exit status; the caller
 * _exit()s with it.
 */
int
workerMain(unsigned worker_index, const std::string &shard_path,
           const CampaignOptions &opts, const std::vector<Cell> &cells,
           std::atomic<std::uint64_t> *cursor, double pmax_value)
{
    // Scope fault injection to this worker before anything can fail:
    // a PARROT_FAULT_* plan inherited from the coordinator's
    // environment only fires when PARROT_FAULT_WORKER selects us.
    fault::setWorkerIndex(worker_index);

    RunOptions wopts = opts.run;
    // The coordinator already calibrated (or loaded) Pmax; inject it
    // so no worker burns a calibration simulation of its own.
    if (!wopts.noLeakage && pmax_value > 0.0)
        wopts.pmaxPerCycle = pmax_value;

    ResultStore shard(shard_path, wopts);
    for (;;) {
        // Dynamic claiming doubles as work stealing: a worker that
        // drew cheap cells simply comes back for more while a slow
        // sibling is still grinding on one.
        std::uint64_t i = cursor->fetch_add(1, std::memory_order_relaxed);
        if (i >= cells.size())
            break;
        const Cell &cell = cells[i];
        if (opts.verbose)
            std::fprintf(stderr, "[campaign w%u] %s/%s\n", worker_index,
                         cell.model.c_str(),
                         cell.entry.profile.name.c_str());
        shard.get(cell.model, cell.entry);
    }
    return shard.hadFailures() ? cli::kExitDegraded : cli::kExitOk;
}

} // namespace

int
CampaignReport::exitCode() const
{
    // Running out of rounds with cells still missing is an incomplete
    // result grid, not a correctness alarm: both non-convergence and
    // tombstones report as degraded (3). Code 1 stays reserved for
    // genuine wrong-answer signals (cosim mismatches), so monitoring
    // that pages on 1 does not page on a grid that merely needs more
    // rounds.
    return cli::combinedExit(false, false,
                             !converged || tombstones > 0);
}

CampaignReport
runCampaign(const CampaignOptions &opts)
{
    CampaignReport report;

    const auto models =
        opts.models.empty() ? ModelConfig::allNames() : opts.models;
    const auto suite =
        opts.suite.empty() ? workload::fullSuite() : opts.suite;
    const auto cells = buildCells(models, suite);
    report.totalCells = cells.size();

    unsigned workers = opts.workers;
    if (workers > 1 && std::getenv("PARROT_BENCH_NO_CACHE")) {
        // Worker processes communicate results exclusively through the
        // cache file; without it there is nothing to merge.
        PARROT_WARN("PARROT_BENCH_NO_CACHE set; campaign falling back "
                    "to a single in-process worker");
        workers = 1;
    }

    ResultStore store(opts.cachePath, opts.run);
    // Adopt journal shards a previously killed campaign left behind
    // before deciding what is missing.
    store.mergeShards();

    auto missing = missingCells(store, cells);
    report.cachedCells = cells.size() - missing.size();

    if (missing.empty()) {
        report.converged = true;
        report.tombstones = store.tombstoneCount();
        return report;
    }

    // Calibrate (or load) Pmax once, in the coordinator, before any
    // fork: exactly the simulation a serial run would do, and the
    // marker row lands in the main cache either way.
    double pmax_value = 0.0;
    if (!opts.run.noLeakage)
        pmax_value = store.pmax();

    if (workers <= 1) {
        // In-process degenerate case: the plain serial/threaded bench
        // path (per-model suites on the runner's thread pool).
        report.rounds = 1;
        for (const auto &model : models)
            store.getSuite(model, suite);
    } else {
        // Shared claim cursor: fetch_add hands every cell to exactly
        // one worker across all processes.
        void *mem =
            ::mmap(nullptr, sizeof(std::atomic<std::uint64_t>),
                   PROT_READ | PROT_WRITE, MAP_SHARED | MAP_ANONYMOUS,
                   -1, 0);
        if (mem == MAP_FAILED)
            PARROT_FATAL("campaign: mmap for the claim cursor failed");
        auto *cursor = new (mem) std::atomic<std::uint64_t>(0);

        // Worker indices increase monotonically across rounds so the
        // respawned replacement of a faulted worker never matches a
        // PARROT_FAULT_WORKER plan again.
        unsigned next_worker_index = 1;
        for (unsigned round = 1; round <= opts.maxRounds; ++round) {
            ++report.rounds;
            cursor->store(0, std::memory_order_relaxed);
            const unsigned spawn = static_cast<unsigned>(
                std::min<std::size_t>(workers, missing.size()));
            if (opts.verbose)
                std::fprintf(stderr,
                             "[campaign] round %u: %zu cell(s) missing, "
                             "%u worker(s)\n",
                             round, missing.size(), spawn);

            std::vector<std::pair<pid_t, unsigned>> kids;
            kids.reserve(spawn);
            for (unsigned w = 0; w < spawn; ++w) {
                const unsigned widx = next_worker_index++;
                pid_t pid = ::fork();
                if (pid < 0)
                    PARROT_FATAL("campaign: fork failed");
                if (pid == 0) {
                    // _exit, not exit: the child must never run the
                    // coordinator's destructors (it inherited the open
                    // main-cache journal and lock fds).
                    ::_exit(workerMain(widx, store.shardPath(widx),
                                       opts, missing, cursor,
                                       pmax_value));
                }
                kids.emplace_back(pid, widx);
            }

            unsigned deaths_this_round = 0;
            for (const auto &[pid, widx] : kids) {
                int status = 0;
                while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
                }
                if (WIFSIGNALED(status)) {
                    ++deaths_this_round;
                    PARROT_WARN("campaign worker %u killed by signal "
                                "%d; its in-flight cell will re-run",
                                widx, WTERMSIG(status));
                } else if (WIFEXITED(status) &&
                           WEXITSTATUS(status) != cli::kExitOk &&
                           WEXITSTATUS(status) != cli::kExitDegraded) {
                    PARROT_WARN("campaign worker %u exited with "
                                "status %d",
                                widx, WEXITSTATUS(status));
                }
            }
            report.workerDeaths += deaths_this_round;

            // Fold every shard (including the partial shard of a
            // killed worker — complete rows survive, a torn last line
            // is discarded) into the main cache.
            store.mergeShards();
            for (const auto &[pid, widx] : kids)
                ::unlink((store.shardPath(widx) + ".lock").c_str());

            auto still = missingCells(store, cells);
            if (still.empty()) {
                missing.clear();
                break;
            }
            if (still.size() == missing.size() &&
                deaths_this_round == 0) {
                // A full round of healthy workers made zero progress;
                // another identical round would not either.
                PARROT_WARN("campaign stalled with %zu missing "
                            "cell(s); giving up",
                            still.size());
                missing = std::move(still);
                break;
            }
            missing = std::move(still);
        }
        cursor->~atomic();
        ::munmap(mem, sizeof(std::atomic<std::uint64_t>));
    }

    auto still = missingCells(store, cells);
    report.missingCells = still.size();
    report.ranCells =
        cells.size() - report.cachedCells - report.missingCells;
    report.tombstones = store.tombstoneCount();
    report.converged = still.empty();
    return report;
}

} // namespace parrot::sim

