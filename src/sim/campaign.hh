/**
 * @file
 * Multi-process sharded campaign runner.
 *
 * A campaign is the full (model x application) cell grid — by default
 * the paper's 7 models x 44 applications — computed once and persisted
 * into one result cache. The coordinator:
 *
 *  1. loads the cache (adopting any journal shards a previously killed
 *     campaign left behind) and computes the list of missing cells;
 *  2. fork()s `workers` worker processes, which claim missing cells
 *     dynamically from a shared atomic cursor (work stealing: a worker
 *     that lands on cheap cells simply claims more) and journal each
 *     finished cell into a private shard, `<cache>.w<N>`;
 *  3. reaps the workers, folds every shard back into the main cache
 *     under the exclusive file lock (sim::ResultStore::mergeShards),
 *     and republishes it atomically in canonical key order;
 *  4. repeats with fresh worker indices while cells remain missing
 *     (workers killed mid-cell lose only their in-flight cell), up to
 *     `maxRounds` rounds.
 *
 * Because the merged cache is rewritten in sorted key order from
 * deterministic simulation results, a campaign — serial, threaded,
 * multi-process, or killed-and-resumed — always converges to a cache
 * file byte-identical to a plain serial run.
 *
 * Process model notes:
 *  - The coordinator forks before creating any threads (the Pmax
 *    calibration runs on the coordinator's main thread), so fork()
 *    never duplicates a locked mutex.
 *  - Workers are numbered 1..N in spawn order, monotonically across
 *    respawn rounds, and call fault::setWorkerIndex() first thing; a
 *    PARROT_FAULT_* plan therefore hits only the process selected by
 *    PARROT_FAULT_WORKER (default 0 = coordinator), and the respawned
 *    replacement of a faulted worker is NOT re-faulted.
 *  - Workers exit via _exit(), never exit(), so they cannot run the
 *    coordinator's destructors (e.g. compact the main cache) through
 *    inherited state.
 */

#ifndef PARROT_SIM_CAMPAIGN_HH
#define PARROT_SIM_CAMPAIGN_HH

#include <cstddef>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "workload/apps.hh"

namespace parrot::sim
{

/** Configuration for one campaign. */
struct CampaignOptions
{
    /** The shared result cache all processes converge into. */
    std::string cachePath = "parrot_bench_cache.txt";
    /** Models to sweep; empty = all seven paper models. */
    std::vector<std::string> models;
    /** Applications to sweep; empty = the full 44-app suite. */
    std::vector<workload::SuiteEntry> suite;
    /** Worker processes. <= 1 runs the campaign in-process (still
     * using the runner's thread pool per RunOptions::jobs). */
    unsigned workers = 1;
    /** Per-worker run options (jobs = threads per worker process). */
    RunOptions run;
    /** Max spawn rounds before giving up on missing cells (> 1 only
     * matters when workers die; a clean round converges). */
    unsigned maxRounds = 5;
    /** Per-worker/round progress chatter on stderr. */
    bool verbose = true;
};

/** What one campaign did. */
struct CampaignReport
{
    std::size_t totalCells = 0;   //!< grid size (models x apps)
    std::size_t cachedCells = 0;  //!< already memoized at startup
    std::size_t ranCells = 0;     //!< computed (or re-tried) this run
    std::size_t missingCells = 0; //!< still absent at the end
    std::size_t tombstones = 0;   //!< failed cells in the final cache
    unsigned rounds = 0;          //!< spawn rounds used
    unsigned workerDeaths = 0;    //!< workers reaped abnormally
    /** Every cell memoized (healthy or tombstoned) at the end. */
    bool converged = false;

    /** Campaign exit status: 3 (degraded) when the grid is incomplete
     * — cells still missing after the rounds ran out, or present only
     * as tombstones — else 0. Composed via cli::combinedExit; code 1
     * is reserved for correctness alarms (cosim mismatches). */
    int exitCode() const;
};

/**
 * Run a campaign to convergence. Returns the report; all results land
 * in the cache file at CampaignOptions::cachePath.
 */
CampaignReport runCampaign(const CampaignOptions &opts);

} // namespace parrot::sim

#endif // PARROT_SIM_CAMPAIGN_HH
