/**
 * @file
 * The seven machine models of the paper's configuration space
 * (Tables 3.1/3.2): N, W, TN, TW, TON, TOW and the split-core TOS.
 */

#ifndef PARROT_SIM_MODEL_CONFIG_HH
#define PARROT_SIM_MODEL_CONFIG_HH

#include <string>
#include <vector>

#include "cpu/core_config.hh"
#include "frontend/branch_predictor.hh"
#include "frontend/decoder.hh"
#include "memory/hierarchy.hh"
#include "optimizer/optimizer.hh"
#include "power/power_state.hh"
#include "tracecache/filter.hh"
#include "tracecache/predictor.hh"
#include "tracecache/trace_cache.hh"

namespace parrot::sim
{

/** Complete description of one simulated machine. */
struct ModelConfig
{
    std::string name = "N";

    bool hasTraceCache = false; //!< the T dimension
    bool hasOptimizer = false;  //!< the O dimension
    bool splitCore = false;     //!< TOS only

    cpu::CoreConfig coldCore;   //!< also the unified core
    cpu::CoreConfig hotCore;    //!< used only when splitCore

    frontend::BranchPredictorConfig branchPredictor;
    frontend::DecoderConfig decoder;

    tracecache::TraceCacheConfig traceCache;
    tracecache::FilterConfig hotFilter;
    tracecache::FilterConfig blazeFilter;
    tracecache::TracePredictorConfig tracePredictor;
    optimizer::OptimizerConfig optimizer;

    memory::HierarchyConfig memory;

    /** Core area relative to the standard 4-wide core (leakage K). */
    double coreAreaFactor = 1.0;

    /**
     * DVFS operating point: clock frequency relative to the 1 GHz
     * nominal. Scales dynamic energy by the classic f·V² voltage term
     * (V = 0.6 + 0.4·f, so the nominal point is exactly 1.0), prices
     * leakage by wall time instead of cycle count, and stretches the
     * DRAM latency in cycles (the memory wall does not speed up with
     * the core). At exactly 1.0 every transformation is the arithmetic
     * identity: nominal results are bit-identical to a build without
     * the DVFS axis.
     */
    double freqGHz = 1.0;

    /** Per-unit sleep-state policies (power::PowerGate). All-Off (the
     * default) keeps the power-state layer fully inert. */
    power::PowerStateConfig powerState;

    /** Extra cycles charged on a taken CTI whose target misses in the
     * BTB (decode-stage redirect). */
    unsigned btbMissBubble = 3;

    /** Cycles to transfer live state between split cores. */
    unsigned stateSwitchPenalty = 2;

    /** Run the differential co-simulation oracle alongside the timing
     * simulation (verify/cosim.hh). Purely a checking feature: it never
     * changes timing or energy results. Also enabled by setting the
     * PARROT_COSIM environment variable to a non-zero value. */
    bool cosim = false;

    /** Sample the stats tree every this many cycles into a windowed
     * time-series (0 = sampling off). Purely observational: sampling
     * never changes timing, energy or end-of-run results. */
    unsigned statsInterval = 0;

    /**
     * @name Sampled (SMARTS-style) simulation
     * When sampleWindow > 0, run() simulates `sampleWindow`
     * instructions in detail out of every `sampleStride`, functionally
     * fast-forwarding the gap while keeping architectural and warm
     * state (cache tags, predictor tables, trace-cache contents)
     * up to date. Extensive end-of-run metrics are extrapolated from
     * the detailed windows and the result carries sample.* confidence
     * fields. 0 (the default) disables sampling: every instruction is
     * simulated in detail. @{
     */
    std::uint64_t sampleWindow = 0; //!< detailed insts per window
    std::uint64_t sampleStride = 0; //!< insts between window starts
    /** @} */

    /** When non-empty, every suite cell replays this recorded `.ptrace`
     * file instead of the synthetic generator (config key `trace_file`;
     * entries that already carry their own trace path win). */
    std::string traceFile;

    /** Build one of the named models: N W TN TW TON TOW TOS. */
    static ModelConfig make(const std::string &model_name);

    /** All seven model names in presentation order. */
    static std::vector<std::string> allNames();

    void validate() const;
};

} // namespace parrot::sim

#endif // PARROT_SIM_MODEL_CONFIG_HH
