#include "sim/result_store.hh"

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>

#include "common/cli.hh"
#include "common/fault.hh"
#include "common/logging.hh"
#include "sim/result.hh"

namespace parrot::sim
{

namespace
{

enum class ReadStatus { Ok, NoFile, BadHeader };

/**
 * Stream one cache file: verify the header, then hand every
 * well-formed row (identity already recovered from its key) to `fn`.
 * Malformed rows — e.g. a line cut short by a killed writer — bump
 * `discarded` and are skipped.
 */
ReadStatus
readCacheFile(const std::string &file,
              const std::function<void(std::string &&, SimResult &&)> &fn,
              std::size_t &discarded)
{
    std::ifstream in(file);
    if (!in)
        return ReadStatus::NoFile;
    std::string line;
    if (!std::getline(in, line))
        return ReadStatus::Ok; // empty file
    if (line != cacheHeaderLine())
        return ReadStatus::BadHeader;
    while (std::getline(in, line)) {
        auto tab = line.find('\t');
        if (tab == std::string::npos) {
            ++discarded;
            continue;
        }
        std::string key = line.substr(0, tab);
        SimResult r;
        if (!parseCachePayload(line.substr(tab + 1), r) ||
            !splitCacheKey(key, r.model, r.app)) {
            ++discarded;
            continue;
        }
        fn(std::move(key), std::move(r));
    }
    return ReadStatus::Ok;
}

} // namespace

ResultStore::ResultStore(const std::string &cache_path, RunOptions opts)
    : path(cache_path), runner(opts)
{
    if (std::getenv("PARROT_BENCH_NO_CACHE"))
        enabled = false;
    if (enabled)
        load();
}

ResultStore::~ResultStore()
{
    // Close before compacting: compact() renames a fresh file over
    // `path`, and an open O_APPEND fd would keep writing to the
    // orphaned inode.
    journal.close();
    // Only rewrite when this run actually changed something; read-only
    // figure reruns must leave the committed cache bytes untouched.
    if (enabled && (appendedRows > 0 || discardedLines > 0)) {
        std::lock_guard<std::mutex> lock(storeMutex);
        compact(false);
    }
}

std::string
ResultStore::cellKey(const std::string &model,
                     const std::string &app) const
{
    return resultCacheKey(model, app, runner.options().instBudget);
}

std::string
ResultStore::shardPath(unsigned index) const
{
    return path + ".w" + std::to_string(index);
}

void
ResultStore::load()
{
    // No lock needed: compaction replaces the file atomically, so a
    // concurrent reader sees either the old or the new complete file.
    auto adopt = [this](std::string &&key, SimResult &&r) {
        memo.emplace(std::move(key), std::move(r));
    };
    switch (readCacheFile(path, adopt, discardedLines)) {
      case ReadStatus::NoFile:
      case ReadStatus::Ok:
        break;
      case ReadStatus::BadHeader:
        // Stale version or foreign field set. Discard the whole file
        // and let the benches regenerate; salvaging lines from a
        // mixed-format cache risks figures built from stale metrics.
        std::fprintf(stderr,
                     "[bench cache] %s: format/version mismatch, "
                     "discarding and regenerating\n",
                     path.c_str());
        std::remove(path.c_str());
        return;
    }
    if (discardedLines > 0) {
        std::fprintf(stderr,
                     "[bench cache] %s: discarded %zu malformed "
                     "line(s); affected cells will re-run\n",
                     path.c_str(), discardedLines);
    }
}

void
ResultStore::append(const std::string &key, const SimResult &r)
{
    // Workers append from the suite runner's pool the moment each cell
    // completes; the whole journal interaction must be one critical
    // section so lines never interleave.
    std::lock_guard<std::mutex> lock(storeMutex);
    if (!enabled)
        return;
    if (!fileLock.isOpen())
        fileLock.open(path + ".lock"); // best effort; no-op guards if not
    if (!journal.isOpen() && !journal.open(path)) {
        disableCache(journal.error());
        return;
    }
    // Shared lock for ordinary appends: concurrent appenders are fine
    // (O_APPEND is atomic per write), but no compactor may rename the
    // file out from under us mid-row.
    atomic_file::FileLock::Guard guard(fileLock,
                                       atomic_file::FileLock::Shared);
    if (!journal.reopenIfRenamed()) {
        disableCache(journal.error());
        return;
    }
    if (journal.size() == 0) {
        // Header bootstrap needs exclusivity, or two processes racing
        // on a fresh file would both write the header line.
        guard.upgrade();
        if (!journal.reopenIfRenamed()) {
            disableCache(journal.error());
            return;
        }
        if (journal.size() == 0 &&
            !journal.appendLine(cacheHeaderLine())) {
            disableCache(journal.error());
            return;
        }
    }
    if (!journal.appendLine(serializeCacheLine(key, r))) {
        disableCache(journal.error());
        return;
    }
    ++appendedRows;
    fault::rowPersisted();
}

void
ResultStore::disableCache(const std::string &reason)
{
    enabled = false;
    journal.close();
    std::fprintf(stderr,
                 "[bench cache] %s: %s; caching disabled for this "
                 "run\n",
                 path.c_str(), reason.c_str());
}

std::vector<std::string>
ResultStore::findShards() const
{
    auto slash = path.rfind('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash);
    const std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    const std::string prefix = base + ".w";

    std::vector<std::string> shards;
    DIR *d = ::opendir(dir.c_str());
    if (!d)
        return shards;
    while (struct dirent *e = ::readdir(d)) {
        const std::string name = e->d_name;
        if (name.rfind(prefix, 0) != 0 || name.size() == prefix.size())
            continue;
        const std::string suffix = name.substr(prefix.size());
        if (suffix.find_first_not_of("0123456789") != std::string::npos)
            continue;
        shards.push_back(dir + "/" + name);
    }
    ::closedir(d);
    std::sort(shards.begin(), shards.end());
    return shards;
}

std::size_t
ResultStore::compact(bool merge_shards)
{
    // Caller holds storeMutex. The exclusive lock serializes the whole
    // read-merge-replace cycle against other appenders and compactors.
    if (!fileLock.isOpen())
        fileLock.open(path + ".lock");
    atomic_file::FileLock::Guard guard(fileLock,
                                       atomic_file::FileLock::Exclusive);

    // Re-read rows journaled by other processes since load(): rewriting
    // from in-memory state alone would clobber them. A disk row for an
    // unknown key is adopted; for a known key the in-memory result wins
    // unless it is a tombstone the other process's retry resolved.
    std::size_t adopted = 0;
    std::size_t junk = 0; // re-reads tolerate torn rows silently
    auto merge = [&](std::string &&key, SimResult &&r) {
        auto it = memo.find(key);
        if (it == memo.end()) {
            memo.emplace(std::move(key), std::move(r));
            ++adopted;
        } else if (it->second.tombstone && !r.tombstone) {
            it->second = std::move(r);
            ++adopted;
        }
    };
    readCacheFile(path, merge, junk);
    std::vector<std::string> shards;
    if (merge_shards) {
        shards = findShards();
        for (const auto &shard : shards)
            readCacheFile(shard, merge, junk);
        // Nothing to fold in: leave the published file untouched so a
        // read-only merge pass never rewrites (or creates) the cache.
        if (shards.empty() && adopted == 0)
            return 0;
    }

    // The memo is a std::map, so iteration is already in canonical
    // (sorted-key) order: every clean shutdown converges to the same
    // bytes regardless of which process journaled which row when.
    std::string content = cacheHeaderLine();
    content += '\n';
    for (const auto &[key, r] : memo) {
        content += serializeCacheLine(key, r);
        content += '\n';
    }
    std::string err;
    if (!atomic_file::writeFileAtomic(path, content, &err)) {
        std::fprintf(stderr,
                     "[bench cache] %s: compaction failed (%s); "
                     "journaled rows are still on disk\n",
                     path.c_str(), err.c_str());
        return adopted;
    }
    // Shard rows are now in the published cache; remove the shards so
    // they are never double-merged (idempotent, but tidy).
    for (const auto &shard : shards)
        ::unlink(shard.c_str());
    return adopted;
}

std::size_t
ResultStore::mergeShards()
{
    std::lock_guard<std::mutex> lock(storeMutex);
    if (!enabled)
        return 0;
    return compact(true);
}

bool
ResultStore::cached(const std::string &model,
                    const std::string &app) const
{
    return memo.count(cellKey(model, app)) > 0;
}

const SimResult *
ResultStore::peek(const std::string &model, const std::string &app) const
{
    auto it = memo.find(cellKey(model, app));
    return it == memo.end() ? nullptr : &it->second;
}

bool
ResultStore::hadFailures() const
{
    return tombstoneCount() > 0;
}

std::size_t
ResultStore::tombstoneCount() const
{
    std::size_t n = 0;
    for (const auto &[key, r] : memo)
        n += r.tombstone ? 1 : 0;
    return n;
}

int
ResultStore::exitCode() const
{
    return hadFailures() ? cli::kExitDegraded : cli::kExitOk;
}

double
ResultStore::pmax()
{
    if (pmaxReady)
        return pmaxValue;
    // Memoize Pmax as a pseudo-result under a reserved key.
    std::string key = cellKey("_pmax", "swim");
    auto it = memo.find(key);
    if (it != memo.end() && it->second.energyPerCycle > 0.0 &&
        std::isfinite(it->second.energyPerCycle)) {
        pmaxValue = it->second.energyPerCycle;
        // Skip the runner's own calibration run.
        runner.setPmax(pmaxValue);
    } else {
        if (it != memo.end()) {
            // A stale or corrupt marker (zero, NaN, negative — e.g. a
            // cache written by a crashed calibration) must not silently
            // zero every leakage figure: recalibrate and overwrite it.
            PARROT_WARN("ignoring stale pmax marker %f in result "
                        "cache; recalibrating",
                        it->second.energyPerCycle);
        }
        pmaxValue = runner.pmax();
        SimResult marker;
        marker.energyPerCycle = pmaxValue;
        memo[key] = marker;
        append(key, marker);
    }
    pmaxReady = true;
    return pmaxValue;
}

SimResult
ResultStore::get(const std::string &model,
                 const workload::SuiteEntry &entry)
{
    std::string key = cellKey(model, entry.profile.name);
    auto it = memo.find(key);
    if (it != memo.end())
        return it->second;

    // Ensure the leakage calibration happened (and is cached) first.
    pmax();
    SimResult r = runner.runOne(model, entry);
    memo.emplace(key, r);
    append(key, r);
    std::fprintf(stderr, "  [ran %s/%s]\n", model.c_str(),
                 entry.profile.name.c_str());
    return r;
}

std::vector<SimResult>
ResultStore::getSuite(const std::string &model,
                      const std::vector<workload::SuiteEntry> &suite)
{
    // Dispatch only the entries the memo doesn't cover onto the
    // runner's worker pool, then fold them back (and into the cache
    // file) in suite order so output stays deterministic.
    std::vector<workload::SuiteEntry> missing;
    for (const auto &entry : suite) {
        if (!memo.count(cellKey(model, entry.profile.name)))
            missing.push_back(entry);
    }
    if (!missing.empty()) {
        pmax();
        // Journal each cell the moment its worker finishes — a killed
        // run keeps everything but the in-flight cells. The journal
        // order is nondeterministic under jobs>1; compaction at
        // destruction restores the canonical order.
        auto fresh = runner.runSuite(
            model, missing,
            [&](std::size_t i, const SimResult &r) {
                append(cellKey(model, missing[i].profile.name), r);
            });
        for (std::size_t i = 0; i < missing.size(); ++i) {
            memo.emplace(cellKey(model, missing[i].profile.name),
                         fresh[i]);
            std::fprintf(stderr, "  [ran %s/%s]\n", model.c_str(),
                         missing[i].profile.name.c_str());
        }
    }

    std::vector<SimResult> out;
    out.reserve(suite.size());
    for (const auto &entry : suite)
        out.push_back(memo.at(cellKey(model, entry.profile.name)));
    return out;
}

} // namespace parrot::sim
