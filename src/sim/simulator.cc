#include "sim/simulator.hh"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hh"

namespace parrot::sim
{

using power::PowerEvent;
using tracecache::Tid;
using tracecache::Trace;
using tracecache::TraceCandidate;
using workload::DynInst;

Workload
loadWorkload(const workload::SuiteEntry &entry)
{
    Workload w;
    w.profile = entry.profile;
    w.program = workload::generateProgram(entry.profile);
    return w;
}

ParrotSimulator::ParrotSimulator(const ModelConfig &config,
                                 const Workload &workload)
    : cfg(config), load(workload)
{
    cfg.validate();
    PARROT_ASSERT(load.program != nullptr, "simulator: missing program");

    executor = std::make_unique<workload::Executor>(*load.program,
                                                    load.profile);
    hierarchy = std::make_unique<memory::Hierarchy>(cfg.memory);
    splitMode = cfg.splitCore;

    coldCorePtr = std::make_unique<cpu::OooCore>(cfg.coldCore,
                                                 hierarchy.get(),
                                                 &coldAcct);
    if (splitMode) {
        hotCorePtr = std::make_unique<cpu::OooCore>(cfg.hotCore,
                                                    hierarchy.get(),
                                                    &hotAcct);
    }

    branchPredictor =
        std::make_unique<frontend::BranchPredictor>(cfg.branchPredictor);
    decoder = std::make_unique<frontend::Decoder>(cfg.decoder);

    if (cfg.hasTraceCache) {
        selector = std::make_unique<tracecache::TraceSelector>();
        hotFilter = std::make_unique<tracecache::CounterFilter>(
            cfg.hotFilter);
        blazeFilter = std::make_unique<tracecache::CounterFilter>(
            cfg.blazeFilter);
        traceCache = std::make_unique<tracecache::TraceCache>(
            cfg.traceCache);
        tracePredictor = std::make_unique<tracecache::TracePredictor>(
            cfg.tracePredictor);
    }
    if (cfg.hasOptimizer) {
        traceOptimizer =
            std::make_unique<optimizer::TraceOptimizer>(cfg.optimizer);
    }

    const char *cosim_env = std::getenv("PARROT_COSIM");
    if (cfg.cosim ||
        (cosim_env && cosim_env[0] != '\0' && cosim_env[0] != '0')) {
        cosim = std::make_unique<verify::CosimOracle>();
    }
}

void
ParrotSimulator::refillLookahead(std::size_t target)
{
    while (lookahead.size() < target) {
        DynInst dyn;
        if (!executor->next(dyn))
            break;
        lookahead.push_back(dyn);
    }
}

void
ParrotSimulator::recordFrontEndFetch(Addr pc)
{
    auto access = hierarchy->fetchInst(pc);
    coldAcct.record(PowerEvent::IcacheRead);
    if (!access.l1Hit) {
        coldAcct.record(PowerEvent::IcacheMiss);
        coldAcct.record(PowerEvent::L2Access);
        if (!access.l2Hit)
            coldAcct.record(PowerEvent::MemAccess);
        // Fetch stalls for the time beyond the pipelined L1 access.
        Cycle stall_end = cycle + access.latency - cfg.memory.l1i.hitLatency;
        resumeAt = std::max(resumeAt, stall_end);
    }
}

void
ParrotSimulator::stallOnToken(cpu::OooCore &core, cpu::UopToken token,
                              unsigned penalty)
{
    pendingResolve = PendingResolve{&core, token, penalty};
}

void
ParrotSimulator::markDirty(const isa::Uop &uop)
{
    auto mark = [&](RegId r) {
        if (r != invalidReg && !dirtySinceSwitch[r]) {
            dirtySinceSwitch[r] = true;
            ++dirtyCount;
        }
    };
    if (uop.hasDst())
        mark(uop.effectiveDst());
    if (uop.dst2 != invalidReg)
        mark(uop.dst2);
}

void
ParrotSimulator::chargeSideSwitch(Side side)
{
    if (!splitMode)
        return;
    if (lastSide != side && lastSide != Side::None) {
        // Forward every register written since the last switch to the
        // other core (§2.3's writer/reader tracking), a few per cycle.
        const unsigned transfer_width = 8;
        unsigned beats = (dirtyCount + transfer_width - 1) /
                         transfer_width;
        if (beats == 0)
            beats = 1;
        hotAcct.record(PowerEvent::StateSwitch, beats);
        resumeAt = std::max(resumeAt,
                            cycle + cfg.stateSwitchPenalty + beats - 1);
        dirtyCount = 0;
        std::fill(std::begin(dirtySinceSwitch),
                  std::end(dirtySinceSwitch), false);
    }
    lastSide = side;
}

void
ParrotSimulator::feedSelector(const DynInst &dyn)
{
    if (!cfg.hasTraceCache)
        return;
    selector->feed(dyn);
    TraceCandidate cand;
    while (selector->pop(cand))
        onCandidate(cand);
}

void
ParrotSimulator::onCandidate(const TraceCandidate &cand)
{
    auto &acct = hotAccount();
    ++candidateCount;

    // Continuous trace-predictor training on the committed TID stream.
    // Key on the two-back candidate: that is exactly the context the
    // fetch selector will have when this TID's start address comes up.
    tracePredictor->train(trainPrevPrevTid, cand.tid.startPc, cand.tid);
    acct.record(PowerEvent::TpUpdate);
    trainPrevPrevTid = trainPrevTid;
    trainPrevTid = cand.tid;

    // Gradual filtering: only TIDs that pass the hot filter are
    // constructed and inserted into the trace cache.
    unsigned count = hotFilter->bump(cand.tid);
    acct.record(PowerEvent::HotFilter);
    if (!hotFilter->promoted(count))
        return;
    if (traceCache->peek(cand.tid) != nullptr)
        return; // already cached

    Trace trace = tracecache::constructTrace(cand);
    acct.record(PowerEvent::TraceBuildUop, trace.uops.size());
    acct.record(PowerEvent::TcWrite, trace.uops.size());
    traceCache->insert(std::move(trace));
    hotFilter->reset(cand.tid);
    ++tracesInsertedCount;
}

void
ParrotSimulator::onTraceExecuted(Trace &trace)
{
    auto &acct = hotAccount();
    ++trace.execCount;
    ++traceExecutionsCount;
    hotExecUops += trace.uops.size();
    hotExecOrigUops += trace.originalUopCount;
    if (trace.optimized)
        ++optimizedTraceExecs;

    if (!cfg.hasOptimizer || trace.optimized)
        return;

    unsigned count = blazeFilter->bump(trace.tid);
    acct.record(PowerEvent::BlazeFilter);
    if (!blazeFilter->promoted(count))
        return;
    if (optJob.has_value())
        return; // optimizer busy; the trace stays blazing and retries

    // Copy the trace into the (non-pipelined) optimizer; the rewritten
    // version is written back when the modelled latency elapses.
    OptJob job;
    job.trace = trace;
    job.doneAt = cycle + cfg.optimizer.latencyCycles;
    optJob = std::move(job);
    blazeFilter->reset(trace.tid);
}

void
ParrotSimulator::processBackground()
{
    if (optJob.has_value() && cycle >= optJob->doneAt) {
        Trace trace = std::move(optJob->trace);
        optJob.reset();
        auto result = traceOptimizer->optimize(trace);
        auto &acct = hotAccount();
        acct.record(PowerEvent::OptimizerUop,
                    static_cast<Counter>(result.uopsBefore) *
                        result.passesRun);
        acct.record(PowerEvent::TcWrite, trace.uops.size());
        ++tracesOptimizedCount;
        sumUopReduction += result.uopReduction();
        sumDepReduction += result.depReduction();
        traceCache->insert(std::move(trace));
    }
}

bool
ParrotSimulator::tryStartHotTrace()
{
    if (!cfg.hasTraceCache || lookahead.empty())
        return false;

    auto &acct = hotAccount();
    const Addr pc = lookahead.front().pc();
    Tid predicted;
    acct.record(PowerEvent::TpLookup);
    ++tpLookupCount;
    if (!tracePredictor->predict(trainPrevTid, pc, predicted))
        return false;
    ++tpHitCount;

    auto trace = traceCache->lookup(predicted);
    if (!trace) {
        ++tcMissAfterPredictCount;
        return false;
    }

    ++tracePredictionsMade;

    // Verify the predicted trace against the actual committed stream.
    const std::size_t path_len = trace->path.size();
    refillLookahead(std::max<std::size_t>(path_len + 8, 96));
    std::size_t match = 0;
    while (match < path_len && match < lookahead.size()) {
        const auto &ref = trace->path[match];
        const auto &dyn = lookahead[match];
        if (dyn.inst != ref.inst ||
            (ref.inst->isCti() && dyn.taken != ref.taken)) {
            break;
        }
        ++match;
    }

    activeTrace = trace;
    hotUopIdx = 0;
    mode = Mode::Hot;
    hotEndRedirect = false;
    hotEndBranchSeen = false;

    // Special case: everything matched except the *final* conditional
    // branch's direction (e.g. a loop exit). The trace still executes
    // and commits in full — only the subsequent fetch was mispredicted.
    if (match == path_len - 1) {
        const auto &ref = trace->path[match];
        const auto &dyn = lookahead[match];
        if (dyn.inst == ref.inst &&
            ref.inst->cti == isa::CtiType::CondBranch) {
            hotEndRedirect = true;
            ++traceEndRedirects;
            match = path_len;
        }
    }

    if (match == path_len) {
        // Full match: the trace executes and commits atomically.
        hotAborted = false;
        hotUopLimit = trace->uops.size();
        activeWindow.assign(lookahead.begin(),
                            lookahead.begin() +
                                static_cast<std::ptrdiff_t>(path_len));
        lookahead.erase(lookahead.begin(),
                        lookahead.begin() +
                            static_cast<std::ptrdiff_t>(path_len));
    } else {
        // Assert failure: execute the poisoned prefix, then flush and
        // restore — the stream is *not* consumed; the cold pipeline
        // re-executes from the trace's start address.
        ++traceMispredictsSeen;
        tracePredictor->mispredict(trainPrevTid, pc);
        ++trace->abortCount;
        // A trace that keeps aborting embeds an unstable path; evict
        // it so the fetch selector stops gambling on it (it can
        // re-earn admission through the hot filter later).
        if (trace->abortCount >= 4 &&
            trace->abortCount * 2 >= trace->execCount) {
            traceCache->remove(trace->tid);
            hotFilter->reset(trace->tid);
        }
        hotAborted = true;
        activeWindow.assign(lookahead.begin(),
                            lookahead.begin() +
                                static_cast<std::ptrdiff_t>(match));
        // The failing check is the assert carrying the diverging
        // instruction's direction. Work dispatched up to that point is
        // poisoned; everything younger is squashed at dispatch (it
        // never enters the machine). The abort resolves when the
        // failing assert executes.
        hotUopLimit = 0;
        for (std::size_t i = 0; i < trace->uops.size(); ++i) {
            if (static_cast<std::size_t>(trace->uops[i].instIdx) == match &&
                isa::isCti(trace->uops[i].uop.kind)) {
                hotUopLimit = i + 1;
                break;
            }
        }
        if (hotUopLimit == 0) {
            // Divergence without an assert (e.g. an inlined return
            // leaving for a different caller): charge the prefix up to
            // the diverging instruction.
            for (std::size_t i = 0; i < trace->uops.size(); ++i) {
                if (static_cast<std::size_t>(trace->uops[i].instIdx) <=
                        match) {
                    hotUopLimit = i + 1;
                }
            }
        }
        if (hotUopLimit == 0)
            hotUopLimit = std::min<std::size_t>(1, trace->uops.size());
    }
    return true;
}

void
ParrotSimulator::hotDispatchCycle()
{
    cpu::OooCore &core = hotCore();
    auto &acct = hotAccount();
    unsigned budget = core.config().width;

    if (hotUopIdx == 0) {
        chargeSideSwitch(Side::HotSide);
        if (cycle < resumeAt)
            return; // state transfer in progress
    }

    while (budget > 0 && hotUopIdx < hotUopLimit && core.canDispatch()) {
        const tracecache::TraceUop &tu = activeTrace->uops[hotUopIdx];
        Addr mem_addr = 0;
        if (tu.uop.kind == isa::UopKind::Load ||
            tu.uop.kind == isa::UopKind::Store) {
            const auto idx = static_cast<std::size_t>(tu.instIdx);
            if (idx < activeWindow.size()) {
                mem_addr = activeWindow[idx].memAddr[tu.uopIdx];
            } else {
                // Wrong-path access beyond the divergence point:
                // deterministic pseudo-address (cache pollution model).
                mem_addr = workload::dataRegionBase +
                           (mix64(tu.uop.imm + tu.instIdx * 64) &
                            0x3ffff & ~7ull);
            }
        }
        acct.record(PowerEvent::TcRead);
        if (splitMode)
            markDirty(tu.uop);
        lastHotToken = core.dispatch(tu.uop, mem_addr, false, hotAborted);
        if (hotEndRedirect && isa::isCti(tu.uop.kind) &&
            static_cast<std::size_t>(tu.instIdx) + 1 ==
                activeTrace->path.size()) {
            hotEndBranchToken = lastHotToken;
            hotEndBranchSeen = true;
        }
        ++hotUopIdx;
        --budget;
    }

    if (hotUopIdx < hotUopLimit)
        return; // continue next cycle

    // Dispatch finished: close out the trace.
    uopsFromTraceCacheDispatched += hotUopLimit;
    if (!hotAborted) {
        pendingTraceCommits.push_back(
            TraceCommit{lastHotToken, activeTrace->path.size()});
        instsFromTraceCache += activeTrace->path.size();
        if (cosim)
            cosim->onTraceCommit(*activeTrace, activeWindow);
        onTraceExecuted(*activeTrace);
        // Keep the cold front-end's return-address stack coherent with
        // the calls and returns the trace executed (otherwise every
        // cold return after a hot region would mispredict).
        for (const auto &ref : activeTrace->path) {
            if (ref.inst->cti == isa::CtiType::Call)
                branchPredictor->rasPush(ref.inst->nextPc());
            else if (ref.inst->cti == isa::CtiType::Return)
                branchPredictor->rasPop();
        }
        for (const auto &dyn : activeWindow)
            feedSelector(dyn);
        if (hotEndRedirect) {
            // Next-fetch misprediction: wait for the final branch to
            // resolve, then refill.
            cpu::UopToken token =
                hotEndBranchSeen ? hotEndBranchToken : lastHotToken;
            stallOnToken(core, token, core.config().mispredictPenalty);
        }
    } else {
        // Atomic abort: flush, restore, and redirect to cold.
        acct.record(PowerEvent::PipeFlush);
        stallOnToken(core, lastHotToken,
                     core.config().mispredictPenalty);
    }
    activeTrace.reset();
    activeWindow.clear();
    mode = Mode::Cold;
}

void
ParrotSimulator::coldCycle()
{
    if (lookahead.empty())
        return;
    if (tryStartHotTrace()) {
        if (cycle >= resumeAt)
            hotDispatchCycle();
        return;
    }

    cpu::OooCore &core = coldCore();
    auto &acct = coldAcct;

    // Assemble this cycle's fetch group: up to decoder throughput,
    // ending at the first taken CTI.
    std::vector<const isa::MacroInst *> window;
    for (const auto &dyn : lookahead) {
        window.push_back(dyn.inst);
        if (window.size() >= cfg.decoder.width * 2)
            break;
        if (dyn.isCti() && dyn.taken)
            break;
    }
    unsigned group = decoder->throughput(window);

    Addr last_line = ~0ull;
    const unsigned line_bytes = cfg.memory.l1i.lineBytes;

    unsigned dispatched_insts = 0;
    unsigned uop_budget = core.config().width;

    while (dispatched_insts < group && !lookahead.empty()) {
        const DynInst dyn = lookahead.front();
        const isa::MacroInst &inst = *dyn.inst;
        const unsigned n_uops = inst.uops.size();

        if (n_uops > uop_budget || !core.canDispatch(n_uops))
            break; // rename width or window space exhausted

        // Instruction-cache access, once per line.
        Addr line = inst.pc / line_bytes;
        if (line != last_line) {
            recordFrontEndFetch(inst.pc);
            last_line = line;
            if (resumeAt > cycle)
                break; // I-cache miss: group ends, fetch stalls
        }

        acct.record(PowerEvent::DecodeWeight, inst.decodeWeight());
        if (splitMode && dispatched_insts == 0) {
            chargeSideSwitch(Side::ColdSide);
            if (cycle < resumeAt)
                break; // state transfer in progress
        }

        // Dispatch the whole instruction.
        cpu::UopToken branch_token = 0;
        bool have_branch_token = false;
        for (unsigned u = 0; u < n_uops; ++u) {
            const isa::Uop &uop = inst.uops[u];
            if (splitMode)
                markDirty(uop);
            cpu::UopToken tok =
                core.dispatch(uop, dyn.memAddr[u],
                              /*counts_as_inst=*/u + 1 == n_uops,
                              /*poisoned=*/false);
            if (isa::isCti(uop.kind)) {
                branch_token = tok;
                have_branch_token = true;
            }
        }
        uop_budget -= n_uops;
        uopsFromColdDispatched += n_uops;
        ++dispatched_insts;
        lookahead.pop_front();
        if (cosim)
            cosim->onColdCommit(dyn);
        feedSelector(dyn);

        // Control handling on the cold pipeline.
        if (inst.isCondBranch()) {
            ++coldCondBranches;
            acct.record(PowerEvent::BpLookup);
            acct.record(PowerEvent::BpUpdate);
            bool pred = branchPredictor->predict(inst.pc);
            branchPredictor->update(inst.pc, dyn.taken);
            if (pred != dyn.taken) {
                ++coldBranchMispredicts;
                PARROT_ASSERT(have_branch_token, "branch without token");
                stallOnToken(core, branch_token,
                             core.config().mispredictPenalty);
                break;
            }
            if (dyn.taken) {
                acct.record(PowerEvent::BtbAccess);
                Addr target;
                if (!branchPredictor->btbLookup(inst.pc, target)) {
                    branchPredictor->btbInsert(inst.pc, inst.takenTarget);
                    resumeAt = std::max(resumeAt,
                                        cycle + cfg.btbMissBubble);
                    break;
                }
            }
        } else if (inst.cti == isa::CtiType::Jump) {
            acct.record(PowerEvent::BtbAccess);
            Addr target;
            if (!branchPredictor->btbLookup(inst.pc, target)) {
                branchPredictor->btbInsert(inst.pc, inst.takenTarget);
                resumeAt = std::max(resumeAt, cycle + cfg.btbMissBubble);
                break;
            }
        } else if (inst.cti == isa::CtiType::Call) {
            branchPredictor->rasPush(inst.nextPc());
            acct.record(PowerEvent::BtbAccess);
            Addr target;
            if (!branchPredictor->btbLookup(inst.pc, target)) {
                branchPredictor->btbInsert(inst.pc, inst.takenTarget);
                resumeAt = std::max(resumeAt, cycle + cfg.btbMissBubble);
                break;
            }
        } else if (inst.cti == isa::CtiType::Return) {
            Addr predicted = branchPredictor->rasPop();
            if (predicted != dyn.nextPc) {
                ++coldBranchMispredicts;
                PARROT_ASSERT(have_branch_token, "return without token");
                stallOnToken(core, branch_token,
                             core.config().mispredictPenalty);
                break;
            }
        } else if (inst.cti == isa::CtiType::JumpInd) {
            // Indirect jump: BTB provides the only target guess.
            acct.record(PowerEvent::BtbAccess);
            Addr target = 0;
            bool hit = branchPredictor->btbLookup(inst.pc, target);
            branchPredictor->btbInsert(inst.pc, dyn.nextPc);
            if (!hit || target != dyn.nextPc) {
                ++coldBranchMispredicts;
                PARROT_ASSERT(have_branch_token, "indirect without token");
                stallOnToken(core, branch_token,
                             core.config().mispredictPenalty);
                break;
            }
        }

        if (dyn.isCti() && dyn.taken)
            break; // taken CTI ends the fetch group
    }
}

void
ParrotSimulator::reapTraceCommits()
{
    while (!pendingTraceCommits.empty() &&
           hotCore().retired(pendingTraceCommits.front().lastToken)) {
        hotInstsCommitted += pendingTraceCommits.front().insts;
        pendingTraceCommits.pop_front();
    }
}

void
ParrotSimulator::stepCycle()
{
    refillLookahead();
    processBackground();

    // Resolve pending control stalls.
    if (pendingResolve.has_value()) {
        if (pendingResolve->core->completed(pendingResolve->token)) {
            resumeAt = std::max(resumeAt,
                                cycle + pendingResolve->penalty);
            pendingResolve.reset();
        }
    }

    if (!pendingResolve.has_value() && cycle >= resumeAt) {
        if (mode == Mode::Hot)
            hotDispatchCycle();
        else
            coldCycle();
    }

    coldCore().tick();
    if (splitMode)
        hotCorePtr->tick();
    ++cycle;
    reapTraceCommits();
}

SimResult
ParrotSimulator::run(std::uint64_t inst_budget, double pmax_per_cycle)
{
    PARROT_ASSERT(inst_budget > 0, "run: zero instruction budget");

    const std::uint64_t cycle_cap = inst_budget * 40 + 200000;
    auto committed = [&]() {
        std::uint64_t cold = coldCore().committedInsts();
        return cold + hotInstsCommitted;
    };

    while (committed() < inst_budget && cycle < cycle_cap)
        stepCycle();

    if (cycle >= cycle_cap)
        PARROT_WARN("model %s on %s hit the cycle cap (possible stall)",
                    cfg.name.c_str(), load.profile.name.c_str());

    // Drain in-flight work so commit counts are consistent.
    unsigned drain = 0;
    while ((!coldCore().drained() ||
            (splitMode && !hotCorePtr->drained())) &&
           drain++ < 4096) {
        coldCore().tick();
        if (splitMode)
            hotCorePtr->tick();
        ++cycle;
        reapTraceCommits();
    }

    // --- assemble the result ---
    SimResult r;
    r.model = cfg.name;
    r.app = load.profile.name;
    r.insts = committed();
    r.uops = coldCore().committedUops() +
             (splitMode ? hotCorePtr->committedUops() : 0);
    r.cycles = cycle;
    r.ipc = static_cast<double>(r.insts) / static_cast<double>(r.cycles);
    r.upc = static_cast<double>(r.uops) / static_cast<double>(r.cycles);

    r.uopsFromTraceCache = uopsFromTraceCacheDispatched;
    r.uopsFromColdPipe = uopsFromColdDispatched;
    r.coverage = (instsFromTraceCache == 0)
        ? 0.0
        : static_cast<double>(instsFromTraceCache) /
              static_cast<double>(r.insts);

    r.coldCondBranches = coldCondBranches;
    r.coldBranchMispredicts = coldBranchMispredicts;
    r.coldBranchMispredRate = coldCondBranches == 0
        ? 0.0
        : static_cast<double>(coldBranchMispredicts) / coldCondBranches;
    r.tracePredictions = tracePredictionsMade;
    r.traceMispredicts = traceMispredictsSeen;
    r.tpLookups = tpLookupCount;
    r.tpHits = tpHitCount;
    r.tcMissAfterPredict = tcMissAfterPredictCount;
    r.candidatesSeen = candidateCount;
    r.traceMispredRate = tracePredictionsMade == 0
        ? 0.0
        : static_cast<double>(traceMispredictsSeen) /
              tracePredictionsMade;

    r.tracesInserted = tracesInsertedCount;
    r.traceExecutions = traceExecutionsCount;
    r.tracesOptimized = tracesOptimizedCount;
    r.avgUopReduction = tracesOptimizedCount == 0
        ? 0.0 : sumUopReduction / tracesOptimizedCount;
    r.avgDepReduction = tracesOptimizedCount == 0
        ? 0.0 : sumDepReduction / tracesOptimizedCount;
    r.optimizedTraceExecutions = optimizedTraceExecs;
    r.optimizerUtilization = tracesOptimizedCount == 0
        ? 0.0
        : static_cast<double>(optimizedTraceExecs) / tracesOptimizedCount;
    r.dynamicUopReduction = hotExecOrigUops == 0
        ? 0.0
        : 1.0 - static_cast<double>(hotExecUops) /
                    static_cast<double>(hotExecOrigUops);

    // --- energy ---
    power::EnergyModel cold_model(cfg.coldCore.scaling());
    power::EnergyModel hot_model(splitMode ? cfg.hotCore.scaling()
                                           : cfg.coldCore.scaling());
    r.dynamicEnergy = coldAcct.dynamicEnergy(cold_model) +
                      hotAcct.dynamicEnergy(hot_model);
    r.energyPerCycle = r.dynamicEnergy / static_cast<double>(r.cycles);

    power::LeakageModel leak;
    leak.pmaxPerCycle = pmax_per_cycle;
    leak.l2MegaBytes = cfg.memory.l2MegaBytes();
    leak.coreAreaFactor = cfg.coreAreaFactor;
    r.leakageEnergy = leak.leakageEnergy(static_cast<double>(r.cycles));
    r.totalEnergy = r.dynamicEnergy + r.leakageEnergy;

    auto cold_units = coldAcct.unitBreakdown(cold_model);
    auto hot_units = hotAcct.unitBreakdown(hot_model);
    for (unsigned u = 0; u < power::numPowerUnits; ++u)
        r.unitEnergy[u] = cold_units[u] + hot_units[u];
    r.unitEnergy[static_cast<unsigned>(power::PowerUnit::Leakage)] =
        r.leakageEnergy;

    r.cmpw = power::cubicMipsPerWatt(static_cast<double>(r.insts),
                                     static_cast<double>(r.cycles),
                                     r.totalEnergy);

    r.l1iMissRate = hierarchy->l1i().missRatio();
    r.l1dMissRate = hierarchy->l1d().missRatio();
    r.l2MissRate = hierarchy->l2().missRatio();

    if (cosim) {
        r.cosimEnabled = true;
        r.cosimColdCommits = cosim->stats().coldCommits;
        r.cosimTraceCommits = cosim->stats().traceCommits;
        r.cosimMismatches = cosim->stats().mismatches;
    }
    return r;
}

} // namespace parrot::sim
