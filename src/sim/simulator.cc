#include "sim/simulator.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/fault.hh"
#include "common/logging.hh"

namespace parrot::sim
{

using power::PowerEvent;
using tracecache::Tid;
using tracecache::Trace;
using tracecache::TraceCandidate;
using workload::DynInst;

Workload
loadWorkload(const workload::SuiteEntry &entry)
{
    Workload w;
    if (!entry.tracePath.empty()) {
        w.trace = workload::loadTraceFile(entry.tracePath);
        w.profile = workload::traceProfile(*w.trace);
        w.program = w.trace->program;
    } else {
        w.profile = entry.profile;
        w.program = workload::generateProgram(entry.profile);
    }
    return w;
}

ParrotSimulator::ParrotSimulator(const ModelConfig &config,
                                 const Workload &workload)
    : cfg(config), load(workload),
      coldModel(config.coldCore.scaling()),
      hotModel(config.splitCore ? config.hotCore.scaling()
                                : config.coldCore.scaling())
{
    cfg.validate();
    PARROT_ASSERT(load.program != nullptr, "simulator: missing program");

    // DVFS: DRAM does not speed up with the core clock, so the memory
    // latency *in cycles* stretches with frequency. Applied to the
    // simulator's own config copy before the hierarchy is built; the
    // guard keeps the nominal point bit-identical (no round-trip
    // through floating point).
    if (cfg.freqGHz != 1.0) {
        const double scaled = cfg.memory.memLatency * cfg.freqGHz;
        cfg.memory.memLatency =
            std::max(1u, static_cast<unsigned>(scaled + 0.5));
    }

    if (load.trace) {
        source =
            std::make_unique<workload::TraceReplaySource>(load.trace);
    } else {
        source = std::make_unique<workload::Executor>(*load.program,
                                                      load.profile);
    }
    hierarchy = std::make_unique<memory::Hierarchy>(cfg.memory);
    splitMode = cfg.splitCore;

    coldCorePtr = std::make_unique<cpu::OooCore>(cfg.coldCore,
                                                 hierarchy.get(),
                                                 &coldAcct);
    if (splitMode) {
        hotCorePtr = std::make_unique<cpu::OooCore>(cfg.hotCore,
                                                    hierarchy.get(),
                                                    &hotAcct);
    }

    branchPredictor =
        std::make_unique<frontend::BranchPredictor>(cfg.branchPredictor);
    decoder = std::make_unique<frontend::Decoder>(cfg.decoder);

    if (cfg.hasTraceCache) {
        selector = std::make_unique<tracecache::TraceSelector>();
        hotFilter = std::make_unique<tracecache::CounterFilter>(
            cfg.hotFilter);
        blazeFilter = std::make_unique<tracecache::CounterFilter>(
            cfg.blazeFilter);
        traceCache = std::make_unique<tracecache::TraceCache>(
            cfg.traceCache);
        tracePredictor = std::make_unique<tracecache::TracePredictor>(
            cfg.tracePredictor);
    }
    if (cfg.hasOptimizer) {
        traceOptimizer =
            std::make_unique<optimizer::TraceOptimizer>(cfg.optimizer);
    }

    const char *cosim_env = std::getenv("PARROT_COSIM");
    if (cfg.cosim ||
        (cosim_env && cosim_env[0] != '\0' && cosim_env[0] != '0')) {
        cosim = std::make_unique<verify::CosimOracle>();
    }

    // Power-state gates. Units the model does not have are forced Off
    // (no trace cache -> no TC port; unified core -> no separable cold
    // backend), so a blanket policy like --gate power stays valid on
    // every model. Area shares pro-rate the leakage a power-gated unit
    // saves; clock weights size the idle-clock charge.
    {
        using power::GatedUnit;
        power::PowerStateConfig ps = cfg.powerState;
        if (!cfg.hasTraceCache)
            ps.of(GatedUnit::TcPort) = power::GatePolicy{};
        if (!splitMode)
            ps.of(GatedUnit::ColdBackend) = power::GatePolicy{};
        psEnabled = ps.anyEnabled();
        gate(GatedUnit::Decoder)
            .configure(GatedUnit::Decoder, ps.of(GatedUnit::Decoder),
                       cfg.decoder.clockWeight(), 0.08);
        gate(GatedUnit::BranchPred)
            .configure(GatedUnit::BranchPred,
                       ps.of(GatedUnit::BranchPred),
                       cfg.branchPredictor.clockWeight(), 0.04);
        gate(GatedUnit::IcachePort)
            .configure(GatedUnit::IcachePort,
                       ps.of(GatedUnit::IcachePort), 2, 0.03);
        gate(GatedUnit::TcPort)
            .configure(GatedUnit::TcPort, ps.of(GatedUnit::TcPort),
                       cfg.traceCache.portClockWeight(), 0.05);
        gate(GatedUnit::ColdBackend)
            .configure(GatedUnit::ColdBackend,
                       ps.of(GatedUnit::ColdBackend),
                       cfg.coldCore.width * 2, 0.40);
    }

    regStats();
}

std::uint64_t
ParrotSimulator::committedInsts() const
{
    return coldCorePtr->committedInsts() + hotInstsCommitted;
}

void
ParrotSimulator::regStats()
{
    // perf.* — top-level derived metrics. The formulas reproduce the
    // exact floating-point expressions the pre-tree result assembly
    // used, so materialized SimResults stay bit-identical.
    auto &perf = statsRoot.subgroup("perf");
    auto insts_fn = [this] {
        return static_cast<double>(committedInsts());
    };
    auto uops_fn = [this] {
        return static_cast<double>(
            coldCore().committedUops() +
            (splitMode ? hotCorePtr->committedUops() : 0));
    };
    auto cycles_fn = [this] { return static_cast<double>(cycle); };
    perf.addFormula("insts", insts_fn);
    perf.addFormula("uops", uops_fn);
    perf.addFormula("cycles", cycles_fn);
    perf.addFormula("ipc", [this, insts_fn, cycles_fn] {
        return cycle == 0 ? 0.0 : insts_fn() / cycles_fn();
    });
    perf.addFormula("upc", [this, uops_fn, cycles_fn] {
        return cycle == 0 ? 0.0 : uops_fn() / cycles_fn();
    });

    // core.cold / core.hot — per-core retirement counters and raw
    // power-event counts.
    auto &core_group = statsRoot.subgroup("core");
    auto &cold_group = core_group.subgroup("cold");
    coldCorePtr->regStats(cold_group);
    coldAcct.regStats(cold_group);
    if (splitMode) {
        auto &hot_group = core_group.subgroup("hot");
        hotCorePtr->regStats(hot_group);
        hotAcct.regStats(hot_group);
    }

    // frontend.* — cold fetch-side counters plus the branch predictor.
    auto &fe = statsRoot.subgroup("frontend");
    fe.add(&st.coldCondBranches);
    fe.add(&st.coldBranchMispredicts);
    fe.addFormula("cold_mispredict_rate", [this] {
        return st.coldCondBranches.value() == 0
            ? 0.0
            : static_cast<double>(st.coldBranchMispredicts.value()) /
                  st.coldCondBranches.value();
    });
    fe.add(&st.tpLookupCount);
    fe.add(&st.tpHitCount);
    fe.add(&st.tcMissAfterPredictCount);
    fe.add(&st.candidateCount);
    branchPredictor->regStats(fe.subgroup("bp"));

    // memory.* — the cache hierarchy.
    hierarchy->regStats(statsRoot.subgroup("memory"));

    // trace.* — trace-unit counters; component subgroups exist only on
    // models that have the trace unit, but the simulator-owned scalars
    // (and so every SimResult path) exist on every model.
    auto &tr = statsRoot.subgroup("trace");
    tr.add(&st.uopsFromTraceCacheDispatched);
    tr.add(&st.uopsFromColdDispatched);
    tr.add(&st.instsFromTraceCache);
    tr.addFormula("coverage", [this, insts_fn] {
        return st.instsFromTraceCache.value() == 0
            ? 0.0
            : static_cast<double>(st.instsFromTraceCache.value()) /
                  insts_fn();
    });
    tr.add(&st.tracePredictionsMade);
    tr.add(&st.traceMispredictsSeen);
    tr.addFormula("abort_rate", [this] {
        return st.tracePredictionsMade.value() == 0
            ? 0.0
            : static_cast<double>(st.traceMispredictsSeen.value()) /
                  st.tracePredictionsMade.value();
    });
    tr.add(&st.traceEndRedirects);
    tr.add(&st.tracesInsertedCount);
    tr.add(&st.traceExecutionsCount);
    if (cfg.hasTraceCache) {
        traceCache->regStats(tr.subgroup("cache"));
        tracePredictor->regStats(tr.subgroup("predictor"));
        selector->regStats(tr.subgroup("selector"));
        hotFilter->regStats(tr.subgroup("hot_filter"));
        blazeFilter->regStats(tr.subgroup("blaze_filter"));
    }

    // optimizer.* — run-level outcome stats plus the optimizer's own
    // pass counters when present.
    auto &opt = statsRoot.subgroup("optimizer");
    opt.add(&st.tracesOptimizedCount);
    opt.addFormula("static_uop_reduction", [this] {
        return st.tracesOptimizedCount.value() == 0
            ? 0.0
            : st.sumUopReduction / st.tracesOptimizedCount.value();
    });
    opt.addFormula("static_dep_reduction", [this] {
        return st.tracesOptimizedCount.value() == 0
            ? 0.0
            : st.sumDepReduction / st.tracesOptimizedCount.value();
    });
    opt.add(&st.optimizedTraceExecs);
    opt.addFormula("utilization", [this] {
        return st.tracesOptimizedCount.value() == 0
            ? 0.0
            : static_cast<double>(st.optimizedTraceExecs.value()) /
                  st.tracesOptimizedCount.value();
    });
    opt.add(&st.hotExecUops);
    opt.add(&st.hotExecOrigUops);
    opt.addFormula("dynamic_uop_reduction", [this] {
        return st.hotExecOrigUops.value() == 0
            ? 0.0
            : 1.0 - static_cast<double>(st.hotExecUops.value()) /
                        static_cast<double>(st.hotExecOrigUops.value());
    });
    if (cfg.hasOptimizer)
        traceOptimizer->regStats(opt.subgroup("unit"));

    // energy.* — joules under the per-core energy models. Leakage needs
    // the externally calibrated Pmax, which run() stores before any
    // snapshot is taken. Dynamic energy scales with the DVFS voltage
    // term f·V² per event — per-event counts already capture the f
    // factor (they are per cycle of the configured clock), so the
    // per-event scale is V². The nominal point multiplies by exactly
    // 1.0, keeping results bit-identical.
    auto &en = statsRoot.subgroup("energy");
    const double dvfs_volt = 0.6 + 0.4 * cfg.freqGHz;
    const double dyn_scale =
        cfg.freqGHz == 1.0 ? 1.0 : dvfs_volt * dvfs_volt;
    auto dynamic_fn = [this, dyn_scale] {
        return (coldAcct.dynamicEnergy(coldModel) +
                hotAcct.dynamicEnergy(hotModel)) * dyn_scale;
    };
    auto leak_model_fn = [this] {
        power::LeakageModel leak;
        leak.pmaxPerCycle = pmaxPerCycle;
        leak.l2MegaBytes = cfg.memory.l2MegaBytes();
        leak.coreAreaFactor = cfg.coreAreaFactor;
        leak.freqGHz = cfg.freqGHz;
        return leak;
    };
    auto leakage_saved_fn = [this, leak_model_fn] {
        double area_cycles = 0.0;
        for (const auto &g : gates)
            area_cycles += g.gatedAreaCycles();
        return leak_model_fn().leakageSaved(area_cycles);
    };
    auto leakage_fn = [this, leak_model_fn, leakage_saved_fn] {
        // Net leakage: the gross wall-time formula minus what
        // power-gated units saved while their rail was cut.
        return leak_model_fn().leakageEnergy(
                   static_cast<double>(cycle)) - leakage_saved_fn();
    };
    auto total_fn = [dynamic_fn, leakage_fn] {
        return dynamic_fn() + leakage_fn();
    };
    en.addFormula("dynamic", dynamic_fn);
    en.addFormula("leakage", leakage_fn);
    en.addFormula("leakage_saved", leakage_saved_fn);
    en.addFormula("total", total_fn);
    en.addFormula("per_cycle", [this, dynamic_fn] {
        return cycle == 0
            ? 0.0 : dynamic_fn() / static_cast<double>(cycle);
    });
    auto &unit = en.subgroup("unit");
    for (unsigned u = 0; u < power::numPowerUnits; ++u) {
        const auto pu = static_cast<power::PowerUnit>(u);
        if (pu == power::PowerUnit::Leakage) {
            unit.addFormula(power::powerUnitName(pu), leakage_fn);
            continue;
        }
        unit.addFormula(power::powerUnitName(pu), [this, u, dyn_scale] {
            return (coldAcct.unitBreakdown(coldModel)[u] +
                    hotAcct.unitBreakdown(hotModel)[u]) * dyn_scale;
        });
    }

    // power.* — the paper's power-awareness figure of merit plus the
    // gating counters. Undefined until work has happened (mid-run
    // window snapshots can observe the cycle-0 state);
    // cubicMipsPerWatt asserts on zero inputs.
    auto &pw = statsRoot.subgroup("power");
    pw.addFormula(
        "cmpw", [this, insts_fn, cycles_fn, total_fn] {
            const double insts = insts_fn();
            const double cycles = cycles_fn();
            const double total = total_fn();
            if (insts <= 0 || cycles <= 0 || total <= 0)
                return 0.0;
            return power::cubicMipsPerWatt(insts, cycles, total,
                                           cfg.freqGHz);
        });
    // Whole-machine gating aggregates (zero when gating is off), then
    // the per-unit counters under power.gate.<unit>.*.
    pw.addFormula("gated_cycles", [this] {
        double sum = 0.0;
        for (const auto &g : gates)
            sum += static_cast<double>(g.gatedCycles());
        return sum;
    });
    pw.addFormula("wake_stalls", [this] {
        double sum = 0.0;
        for (const auto &g : gates)
            sum += static_cast<double>(g.wakeStalls());
        return sum;
    });
    pw.addFormula("sleep_entries", [this] {
        double sum = 0.0;
        for (const auto &g : gates)
            sum += static_cast<double>(g.sleepEntries());
        return sum;
    });
    auto &gate_grp = pw.subgroup("gate");
    for (unsigned i = 0; i < power::numGatedUnits; ++i) {
        const auto u = static_cast<power::GatedUnit>(i);
        gates[i].regStats(gate_grp.subgroup(power::gatedUnitName(u)));
    }

    // cosim.* — oracle counters; zeros when the oracle is off so the
    // paths (and the materialized SimResult fields) always exist.
    auto &co = statsRoot.subgroup("cosim");
    co.addFormula("enabled", [this] { return cosim ? 1.0 : 0.0; });
    if (cosim) {
        cosim->regStats(co);
    } else {
        for (const char *name :
             {"cold_commits", "trace_commits", "uops_executed",
              "mismatches"}) {
            co.addFormula(name, [] { return 0.0; });
        }
    }
}

void
ParrotSimulator::refillLookahead(std::size_t target)
{
    // Fill ring slots in place: the source writes straight into the
    // buffer, so no 64-byte DynInst ever crosses a copy.
    while (lookahead.size() < target) {
        DynInst &slot = lookahead.emplaceBack();
        if (!source->next(slot)) {
            lookahead.popBack();
            // A finite recorded trace ran dry. With instructions still
            // in flight the simulation can finish on what it has; with
            // nothing left it would spin to the cycle cap and report a
            // silently-short run — fail loudly instead (SuiteRunner
            // retries/tombstones the cell).
            if (lookahead.empty() && target > 0) {
                throw std::runtime_error(
                    "workload source for '" + load.profile.name +
                    "' exhausted before the instruction budget; "
                    "re-record the trace with a larger budget");
            }
            break;
        }
    }
}

void
ParrotSimulator::recordFrontEndFetch(Addr pc)
{
    auto access = hierarchy->fetchInst(pc);
    coldAcct.record(PowerEvent::IcacheRead);
    if (!access.l1Hit) {
        coldAcct.record(PowerEvent::IcacheMiss);
        coldAcct.record(PowerEvent::L2Access);
        if (!access.l2Hit)
            coldAcct.record(PowerEvent::MemAccess);
        // Fetch stalls for the time beyond the pipelined L1 access.
        Cycle stall_end = cycle + access.latency - cfg.memory.l1i.hitLatency;
        resumeAt = std::max(resumeAt, stall_end);
    }
}

void
ParrotSimulator::stallOnToken(cpu::OooCore &core, cpu::UopToken token,
                              unsigned penalty)
{
    pendingResolve = PendingResolve{&core, token, penalty};
}

void
ParrotSimulator::markDirty(const isa::Uop &uop)
{
    auto mark = [&](RegId r) {
        if (r != invalidReg && !dirtySinceSwitch[r]) {
            dirtySinceSwitch[r] = true;
            ++dirtyCount;
        }
    };
    if (uop.hasDst())
        mark(uop.effectiveDst());
    if (uop.dst2 != invalidReg)
        mark(uop.dst2);
}

void
ParrotSimulator::chargeSideSwitch(Side side)
{
    if (!splitMode)
        return;
    if (lastSide != side && lastSide != Side::None) {
        // Forward every register written since the last switch to the
        // other core (§2.3's writer/reader tracking), a few per cycle.
        const unsigned transfer_width = 8;
        unsigned beats = (dirtyCount + transfer_width - 1) /
                         transfer_width;
        if (beats == 0)
            beats = 1;
        hotAcct.record(PowerEvent::StateSwitch, beats);
        resumeAt = std::max(resumeAt,
                            cycle + cfg.stateSwitchPenalty + beats - 1);
        dirtyCount = 0;
        std::fill(std::begin(dirtySinceSwitch),
                  std::end(dirtySinceSwitch), false);
    }
    lastSide = side;
}

void
ParrotSimulator::feedSelector(const DynInst &dyn)
{
    if (!cfg.hasTraceCache)
        return;
    selector->feed(dyn);
    TraceCandidate cand;
    while (selector->pop(cand))
        onCandidate(cand);
}

void
ParrotSimulator::onCandidate(const TraceCandidate &cand)
{
    auto &acct = hotAccount();
    st.candidateCount.add();

    // Continuous trace-predictor training on the committed TID stream.
    // Key on the two-back candidate: that is exactly the context the
    // fetch selector will have when this TID's start address comes up.
    tracePredictor->train(trainPrevPrevTid, cand.tid.startPc, cand.tid);
    acct.record(PowerEvent::TpUpdate);
    trainPrevPrevTid = trainPrevTid;
    trainPrevTid = cand.tid;

    // Gradual filtering: only TIDs that pass the hot filter are
    // constructed and inserted into the trace cache.
    unsigned count = hotFilter->bump(cand.tid);
    acct.record(PowerEvent::HotFilter);
    if (!hotFilter->promoted(count))
        return;
    if (traceCache->peek(cand.tid) != nullptr)
        return; // already cached

    Trace trace = tracecache::constructTrace(cand);
    acct.record(PowerEvent::TraceBuildUop, trace.uops.size());
    acct.record(PowerEvent::TcWrite, trace.uops.size());
    traceCache->insert(std::move(trace));
    hotFilter->reset(cand.tid);
    st.tracesInsertedCount.add();
}

void
ParrotSimulator::onTraceExecuted(Trace &trace)
{
    auto &acct = hotAccount();
    ++trace.execCount;
    st.traceExecutionsCount.add();
    st.hotExecUops.add(trace.uops.size());
    st.hotExecOrigUops.add(trace.originalUopCount);
    if (trace.optimized)
        st.optimizedTraceExecs.add();

    if (!cfg.hasOptimizer || trace.optimized)
        return;

    unsigned count = blazeFilter->bump(trace.tid);
    acct.record(PowerEvent::BlazeFilter);
    if (!blazeFilter->promoted(count))
        return;
    if (optJob.has_value())
        return; // optimizer busy; the trace stays blazing and retries

    // Copy the trace into the (non-pipelined) optimizer; the rewritten
    // version is written back when the modelled latency elapses.
    OptJob job;
    job.trace = trace;
    job.doneAt = cycle + cfg.optimizer.latencyCycles;
    optJob = std::move(job);
    blazeFilter->reset(trace.tid);
}

void
ParrotSimulator::processBackground()
{
    if (optJob.has_value() && cycle >= optJob->doneAt) {
        Trace trace = std::move(optJob->trace);
        optJob.reset();
        auto result = traceOptimizer->optimize(trace);
        auto &acct = hotAccount();
        acct.record(PowerEvent::OptimizerUop,
                    static_cast<Counter>(result.uopsBefore) *
                        result.passesRun);
        acct.record(PowerEvent::TcWrite, trace.uops.size());
        st.tracesOptimizedCount.add();
        st.sumUopReduction += result.uopReduction();
        st.sumDepReduction += result.depReduction();
        traceCache->insert(std::move(trace));
    }
}

bool
ParrotSimulator::tryStartHotTrace()
{
    if (!cfg.hasTraceCache || lookahead.empty())
        return false;

    auto &acct = hotAccount();
    const Addr pc = lookahead.front().pc();
    Tid predicted;
    acct.record(PowerEvent::TpLookup);
    st.tpLookupCount.add();
    if (!tracePredictor->predict(trainPrevTid, pc, predicted))
        return false;
    st.tpHitCount.add();

    if (psEnabled) {
        // The predictor wants a trace-cache read: wake the TC fetch
        // port if it slept through the cold stretch. The stream is
        // untouched, so once the wake stall elapses the very same
        // prediction is retried and proceeds to the lookup.
        unsigned stall = gate(power::GatedUnit::TcPort).demand(acct);
        if (stall > 0) {
            resumeAt = std::max(resumeAt, cycle + stall);
            return false;
        }
    }

    auto trace = traceCache->lookup(predicted);
    if (!trace) {
        st.tcMissAfterPredictCount.add();
        return false;
    }

    st.tracePredictionsMade.add();

    // Verify the predicted trace against the actual committed stream.
    const std::size_t path_len = trace->path.size();
    refillLookahead(std::max<std::size_t>(path_len + 8, 96));
    std::size_t match = 0;
    while (match < path_len && match < lookahead.size()) {
        const auto &ref = trace->path[match];
        const auto &dyn = lookahead[match];
        if (dyn.inst != ref.inst ||
            (ref.inst->isCti() && dyn.taken != ref.taken)) {
            break;
        }
        ++match;
    }

    activeTrace = trace;
    hotUopIdx = 0;
    mode = Mode::Hot;
    hotEndRedirect = false;
    hotEndBranchSeen = false;

    // Special case: everything matched except the *final* conditional
    // branch's direction (e.g. a loop exit). The trace still executes
    // and commits in full — only the subsequent fetch was mispredicted.
    if (match == path_len - 1) {
        const auto &ref = trace->path[match];
        const auto &dyn = lookahead[match];
        if (dyn.inst == ref.inst &&
            ref.inst->cti == isa::CtiType::CondBranch) {
            hotEndRedirect = true;
            st.traceEndRedirects.add();
            match = path_len;
        }
    }

    if (match == path_len) {
        // Full match: the trace executes and commits atomically.
        hotAborted = false;
        hotUopLimit = trace->uops.size();
        activeWindow.clear();
        for (std::size_t i = 0; i < path_len; ++i)
            activeWindow.push_back(lookahead[i]);
        lookahead.popFront(path_len);
    } else {
        // Assert failure: execute the poisoned prefix, then flush and
        // restore — the stream is *not* consumed; the cold pipeline
        // re-executes from the trace's start address.
        st.traceMispredictsSeen.add();
        tracePredictor->mispredict(trainPrevTid, pc);
        ++trace->abortCount;
        // A trace that keeps aborting embeds an unstable path; evict
        // it so the fetch selector stops gambling on it (it can
        // re-earn admission through the hot filter later).
        if (trace->abortCount >= 4 &&
            trace->abortCount * 2 >= trace->execCount) {
            traceCache->remove(trace->tid);
            hotFilter->reset(trace->tid);
        }
        hotAborted = true;
        activeWindow.clear();
        for (std::size_t i = 0; i < match; ++i)
            activeWindow.push_back(lookahead[i]);
        // The failing check is the assert carrying the diverging
        // instruction's direction. Work dispatched up to that point is
        // poisoned; everything younger is squashed at dispatch (it
        // never enters the machine). The abort resolves when the
        // failing assert executes.
        hotUopLimit = 0;
        for (std::size_t i = 0; i < trace->uops.size(); ++i) {
            if (static_cast<std::size_t>(trace->uops[i].instIdx) == match &&
                isa::isCti(trace->uops[i].uop.kind)) {
                hotUopLimit = i + 1;
                break;
            }
        }
        if (hotUopLimit == 0) {
            // Divergence without an assert (e.g. an inlined return
            // leaving for a different caller): charge the prefix up to
            // the diverging instruction.
            for (std::size_t i = 0; i < trace->uops.size(); ++i) {
                if (static_cast<std::size_t>(trace->uops[i].instIdx) <=
                        match) {
                    hotUopLimit = i + 1;
                }
            }
        }
        if (hotUopLimit == 0)
            hotUopLimit = std::min<std::size_t>(1, trace->uops.size());
    }
    return true;
}

void
ParrotSimulator::hotDispatchCycle()
{
    cpu::OooCore &core = hotCore();
    auto &acct = hotAccount();
    unsigned budget = core.config().width;

    if (hotUopIdx == 0) {
        chargeSideSwitch(Side::HotSide);
        if (cycle < resumeAt)
            return; // state transfer in progress
    }

    while (budget > 0 && hotUopIdx < hotUopLimit && core.canDispatch()) {
        const tracecache::TraceUop &tu = activeTrace->uops[hotUopIdx];
        Addr mem_addr = 0;
        if (tu.uop.kind == isa::UopKind::Load ||
            tu.uop.kind == isa::UopKind::Store) {
            const auto idx = static_cast<std::size_t>(tu.instIdx);
            if (idx < activeWindow.size()) {
                mem_addr = activeWindow[idx].memAddr[tu.uopIdx];
            } else {
                // Wrong-path access beyond the divergence point:
                // deterministic pseudo-address (cache pollution model).
                mem_addr = workload::dataRegionBase +
                           (mix64(tu.uop.imm + tu.instIdx * 64) &
                            0x3ffff & ~7ull);
            }
        }
        acct.record(PowerEvent::TcRead);
        if (splitMode)
            markDirty(tu.uop);
        lastHotToken = core.dispatch(tu.uop, mem_addr, false, hotAborted);
        if (hotEndRedirect && isa::isCti(tu.uop.kind) &&
            static_cast<std::size_t>(tu.instIdx) + 1 ==
                activeTrace->path.size()) {
            hotEndBranchToken = lastHotToken;
            hotEndBranchSeen = true;
        }
        ++hotUopIdx;
        --budget;
    }

    if (hotUopIdx < hotUopLimit)
        return; // continue next cycle

    // Dispatch finished: close out the trace.
    st.uopsFromTraceCacheDispatched.add(hotUopLimit);
    if (!hotAborted) {
        pendingTraceCommits.push_back(
            TraceCommit{lastHotToken, activeTrace->path.size()});
        st.instsFromTraceCache.add(activeTrace->path.size());
        if (cosim)
            cosim->onTraceCommit(*activeTrace, activeWindow);
        onTraceExecuted(*activeTrace);
        // Keep the cold front-end's return-address stack coherent with
        // the calls and returns the trace executed (otherwise every
        // cold return after a hot region would mispredict).
        for (const auto &ref : activeTrace->path) {
            if (ref.inst->cti == isa::CtiType::Call)
                branchPredictor->rasPush(ref.inst->nextPc());
            else if (ref.inst->cti == isa::CtiType::Return)
                branchPredictor->rasPop();
        }
        for (const auto &dyn : activeWindow)
            feedSelector(dyn);
        if (hotEndRedirect) {
            // Next-fetch misprediction: wait for the final branch to
            // resolve, then refill.
            cpu::UopToken token =
                hotEndBranchSeen ? hotEndBranchToken : lastHotToken;
            stallOnToken(core, token, core.config().mispredictPenalty);
        }
    } else {
        // Atomic abort: flush, restore, and redirect to cold.
        acct.record(PowerEvent::PipeFlush);
        stallOnToken(core, lastHotToken,
                     core.config().mispredictPenalty);
    }
    activeTrace = tracecache::TraceRef{};
    activeWindow.clear();
    mode = Mode::Cold;
}

void
ParrotSimulator::coldCycle()
{
    if (lookahead.empty())
        return;
    if (tryStartHotTrace()) {
        if (cycle >= resumeAt)
            hotDispatchCycle();
        return;
    }

    if (psEnabled) {
        if (cycle < resumeAt)
            return; // a TC-port wake stall was just scheduled
        // Cold fetch demands the whole cold front end (and, on the
        // split core, the cold backend): wake whatever slept through
        // the hot stretch, paying the slowest unit's latency once —
        // the wakes proceed in parallel.
        using power::GatedUnit;
        unsigned stall = gate(GatedUnit::Decoder).demand(coldAcct);
        stall = std::max(stall,
                         gate(GatedUnit::BranchPred).demand(coldAcct));
        stall = std::max(stall,
                         gate(GatedUnit::IcachePort).demand(coldAcct));
        if (splitMode) {
            stall = std::max(
                stall, gate(GatedUnit::ColdBackend).demand(coldAcct));
        }
        if (stall > 0) {
            resumeAt = std::max(resumeAt, cycle + stall);
            return;
        }
    }

    cpu::OooCore &core = coldCore();
    auto &acct = coldAcct;

    // Assemble this cycle's fetch group: up to decoder throughput,
    // ending at the first taken CTI. The window buffer is reused
    // across cycles (clear() keeps its capacity).
    fetchWindow.clear();
    for (std::size_t i = 0; i < lookahead.size(); ++i) {
        const auto &dyn = lookahead[i];
        fetchWindow.push_back(dyn.inst);
        if (fetchWindow.size() >= cfg.decoder.width * 2)
            break;
        if (dyn.isCti() && dyn.taken)
            break;
    }
    unsigned group = decoder->throughput(fetchWindow.data(),
                                         fetchWindow.size());

    Addr last_line = ~0ull;
    const unsigned line_bytes = cfg.memory.l1i.lineBytes;

    unsigned dispatched_insts = 0;
    unsigned uop_budget = core.config().width;

    while (dispatched_insts < group && !lookahead.empty()) {
        const DynInst dyn = lookahead.front();
        const isa::MacroInst &inst = *dyn.inst;
        const unsigned n_uops = inst.uops.size();

        if (n_uops > uop_budget || !core.canDispatch(n_uops))
            break; // rename width or window space exhausted

        // Instruction-cache access, once per line.
        Addr line = inst.pc / line_bytes;
        if (line != last_line) {
            recordFrontEndFetch(inst.pc);
            last_line = line;
            if (resumeAt > cycle)
                break; // I-cache miss: group ends, fetch stalls
        }

        acct.record(PowerEvent::DecodeWeight, inst.decodeWeight());
        if (splitMode && dispatched_insts == 0) {
            chargeSideSwitch(Side::ColdSide);
            if (cycle < resumeAt)
                break; // state transfer in progress
        }

        // Dispatch the whole instruction.
        cpu::UopToken branch_token = 0;
        bool have_branch_token = false;
        for (unsigned u = 0; u < n_uops; ++u) {
            const isa::Uop &uop = inst.uops[u];
            if (splitMode)
                markDirty(uop);
            cpu::UopToken tok =
                core.dispatch(uop, dyn.memAddr[u],
                              /*counts_as_inst=*/u + 1 == n_uops,
                              /*poisoned=*/false);
            if (isa::isCti(uop.kind)) {
                branch_token = tok;
                have_branch_token = true;
            }
        }
        uop_budget -= n_uops;
        st.uopsFromColdDispatched.add(n_uops);
        ++dispatched_insts;
        lookahead.popFront();
        if (cosim)
            cosim->onColdCommit(dyn);
        feedSelector(dyn);

        // Control handling on the cold pipeline.
        if (inst.isCondBranch()) {
            st.coldCondBranches.add();
            acct.record(PowerEvent::BpLookup);
            acct.record(PowerEvent::BpUpdate);
            bool pred = branchPredictor->predict(inst.pc);
            branchPredictor->update(inst.pc, dyn.taken);
            if (pred != dyn.taken) {
                st.coldBranchMispredicts.add();
                PARROT_ASSERT(have_branch_token, "branch without token");
                stallOnToken(core, branch_token,
                             core.config().mispredictPenalty);
                break;
            }
            if (dyn.taken) {
                acct.record(PowerEvent::BtbAccess);
                Addr target;
                if (!branchPredictor->btbLookup(inst.pc, target)) {
                    branchPredictor->btbInsert(inst.pc, inst.takenTarget);
                    resumeAt = std::max(resumeAt,
                                        cycle + cfg.btbMissBubble);
                    break;
                }
            }
        } else if (inst.cti == isa::CtiType::Jump) {
            acct.record(PowerEvent::BtbAccess);
            Addr target;
            if (!branchPredictor->btbLookup(inst.pc, target)) {
                branchPredictor->btbInsert(inst.pc, inst.takenTarget);
                resumeAt = std::max(resumeAt, cycle + cfg.btbMissBubble);
                break;
            }
        } else if (inst.cti == isa::CtiType::Call) {
            branchPredictor->rasPush(inst.nextPc());
            acct.record(PowerEvent::BtbAccess);
            Addr target;
            if (!branchPredictor->btbLookup(inst.pc, target)) {
                branchPredictor->btbInsert(inst.pc, inst.takenTarget);
                resumeAt = std::max(resumeAt, cycle + cfg.btbMissBubble);
                break;
            }
        } else if (inst.cti == isa::CtiType::Return) {
            Addr predicted = branchPredictor->rasPop();
            if (predicted != dyn.nextPc) {
                st.coldBranchMispredicts.add();
                PARROT_ASSERT(have_branch_token, "return without token");
                stallOnToken(core, branch_token,
                             core.config().mispredictPenalty);
                break;
            }
        } else if (inst.cti == isa::CtiType::JumpInd) {
            // Indirect jump: BTB provides the only target guess.
            acct.record(PowerEvent::BtbAccess);
            Addr target = 0;
            bool hit = branchPredictor->btbLookup(inst.pc, target);
            branchPredictor->btbInsert(inst.pc, dyn.nextPc);
            if (!hit || target != dyn.nextPc) {
                st.coldBranchMispredicts.add();
                PARROT_ASSERT(have_branch_token, "indirect without token");
                stallOnToken(core, branch_token,
                             core.config().mispredictPenalty);
                break;
            }
        }

        if (dyn.isCti() && dyn.taken)
            break; // taken CTI ends the fetch group
    }
}

void
ParrotSimulator::powerStateCycle()
{
    using power::GatedUnit;
    if (mode == Mode::Hot) {
        // Hot-trace fetch: the serial decoder, direction predictor and
        // I-cache port have nothing to do — the PARROT opportunity.
        gate(GatedUnit::Decoder).idleCycle(coldAcct);
        gate(GatedUnit::BranchPred).idleCycle(coldAcct);
        gate(GatedUnit::IcachePort).idleCycle(coldAcct);
        // Split core: once the cold backend drains during a hot
        // stretch, the whole cold core can sleep.
        if (splitMode && coldCore().drained())
            gate(GatedUnit::ColdBackend).idleCycle(coldAcct);
    } else {
        // Cold fetch: the trace-cache fetch port idles.
        gate(GatedUnit::TcPort).idleCycle(hotAccount());
    }
}

void
ParrotSimulator::reapTraceCommits()
{
    while (!pendingTraceCommits.empty() &&
           hotCore().retired(pendingTraceCommits.front().lastToken)) {
        hotInstsCommitted += pendingTraceCommits.front().insts;
        pendingTraceCommits.pop_front();
    }
}

void
ParrotSimulator::stepCycle()
{
    // Safe point for trace reclamation: no TraceRef is live outside an
    // active hot trace, so displaced (replaced/evicted/removed) traces
    // parked in limbo can be freed now.
    if (traceCache && mode == Mode::Cold && !activeTrace)
        traceCache->reclaimLimbo();

    refillLookahead();
    processBackground();

    // Resolve pending control stalls.
    if (pendingResolve.has_value()) {
        if (pendingResolve->core->completed(pendingResolve->token)) {
            resumeAt = std::max(resumeAt,
                                cycle + pendingResolve->penalty);
            pendingResolve.reset();
        }
    }

    if (psEnabled)
        powerStateCycle();

    if (!pendingResolve.has_value() && cycle >= resumeAt) {
        if (mode == Mode::Hot)
            hotDispatchCycle();
        else
            coldCycle();
    }

    coldCore().tick();
    if (splitMode)
        hotCorePtr->tick();
    ++cycle;
    reapTraceCommits();
}

/** Column schema of the sampled time-series. "w_"-prefixed columns
 * are per-window deltas; the rest are cumulative values at the window
 * boundary (so `coverage` ramps from 0 toward the run's final value). */
static const std::vector<std::string> kWindowColumns = {
    "cycle",          "w_cycles",        "w_insts",
    "w_ipc",          "insts",           "coverage",
    "w_coverage",     "w_uops_tc",       "w_uops_cold",
    "traces_inserted", "traces_optimized",
    "w_dynamic_energy", "dynamic_energy",
};

void
ParrotSimulator::sampleWindow(stats::Snapshot &prev,
                              stats::TimeSeries &series)
{
    stats::Snapshot snap = statsRoot.snapshot();
    const double w_cycles = snap.delta(prev, "perf.cycles");
    const double w_insts = snap.delta(prev, "perf.insts");
    const double w_insts_tc = snap.delta(prev, "trace.insts_from_tc");
    series.append({
        snap.get("perf.cycles"),
        w_cycles,
        w_insts,
        w_cycles == 0.0 ? 0.0 : w_insts / w_cycles,
        snap.get("perf.insts"),
        snap.get("trace.coverage"),
        w_insts == 0.0 ? 0.0 : w_insts_tc / w_insts,
        snap.delta(prev, "trace.uops_from_tc"),
        snap.delta(prev, "trace.uops_from_cold"),
        snap.get("trace.inserted"),
        snap.get("optimizer.traces"),
        snap.delta(prev, "energy.dynamic"),
        snap.get("energy.dynamic"),
    });
    prev = std::move(snap);
}

SimResult
ParrotSimulator::run(std::uint64_t inst_budget, double pmax_per_cycle,
                     std::uint64_t deadline_ms)
{
    PARROT_ASSERT(inst_budget > 0, "run: zero instruction budget");

    // The leakage/total-energy formulas read this member; it must be in
    // place before the first snapshot (window sampling included).
    pmaxPerCycle = pmax_per_cycle;

    const std::uint64_t cycle_cap = inst_budget * 40 + 200000;

    // Wall-clock watchdog. The cycle cap above bounds *simulated* time;
    // the deadline bounds *host* time, catching configurations that
    // burn host seconds per cycle. Sampled every kDeadlineStride cycles
    // at a commit boundary (stepCycle ends with reapTraceCommits) so
    // the abort leaves no half-committed trace state behind.
    using WallClock = std::chrono::steady_clock;
    constexpr std::uint64_t kDeadlineStride = 8192;
    const WallClock::time_point wall_start = WallClock::now();
    if (unsigned long stall = fault::attemptStallMs()) {
        // Injected slow cell (PARROT_FAULT_SLOW_CELL): burn host time
        // against the deadline without touching simulated state.
        std::this_thread::sleep_for(std::chrono::milliseconds(stall));
    }

    // Windowed sampling: diff successive tree snapshots every
    // statsInterval cycles. Purely observational — it reads the same
    // counters and formulas the final result is materialized from.
    const std::uint64_t interval = cfg.statsInterval;
    std::shared_ptr<stats::TimeSeries> series;
    stats::Snapshot prevWindow;
    if (interval > 0) {
        series = std::make_shared<stats::TimeSeries>(kWindowColumns);
        prevWindow = statsRoot.snapshot();
    }

    while (committedInsts() < inst_budget && cycle < cycle_cap) {
        stepCycle();
        if (deadline_ms > 0 && cycle % kDeadlineStride == 0 &&
            WallClock::now() - wall_start >=
                std::chrono::milliseconds(deadline_ms)) {
            throw DeadlineExceeded(cfg.name, load.profile.name,
                                   deadline_ms);
        }
        if (interval > 0 && cycle % interval == 0)
            sampleWindow(prevWindow, *series);
    }

    if (cycle >= cycle_cap)
        PARROT_WARN("model %s on %s hit the cycle cap (possible stall)",
                    cfg.name.c_str(), load.profile.name.c_str());

    // Drain in-flight work so commit counts are consistent.
    unsigned drain = 0;
    while ((!coldCore().drained() ||
            (splitMode && !hotCorePtr->drained())) &&
           drain++ < 4096) {
        coldCore().tick();
        if (splitMode)
            hotCorePtr->tick();
        ++cycle;
        reapTraceCommits();
    }

    // --- materialize the result from the stats tree ---
    SimResult r;
    r.model = cfg.name;
    r.app = load.profile.name;
    materializeResult(r, statsRoot.snapshot());
    if (interval > 0) {
        // Final (possibly partial) window, including the drain cycles.
        sampleWindow(prevWindow, *series);
        r.series = series;
    }
    return r;
}

} // namespace parrot::sim
