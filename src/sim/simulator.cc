#include "sim/simulator.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <thread>

#include "sim/checkpoint.hh"

#include "common/fault.hh"
#include "common/logging.hh"

namespace parrot::sim
{

using power::PowerEvent;
using tracecache::Tid;
using tracecache::Trace;
using tracecache::TraceCandidate;
using workload::DynInst;

Workload
loadWorkload(const workload::SuiteEntry &entry)
{
    Workload w;
    if (!entry.tracePath.empty()) {
        w.trace = workload::loadTraceFile(entry.tracePath);
        w.profile = workload::traceProfile(*w.trace);
        w.program = w.trace->program;
    } else {
        w.profile = entry.profile;
        w.program = workload::generateProgram(entry.profile);
    }
    return w;
}

ParrotSimulator::ParrotSimulator(const ModelConfig &config,
                                 const Workload &workload)
    : cfg(config), load(workload),
      coldModel(config.coldCore.scaling()),
      hotModel(config.splitCore ? config.hotCore.scaling()
                                : config.coldCore.scaling())
{
    cfg.validate();
    PARROT_ASSERT(load.program != nullptr, "simulator: missing program");

    // DVFS: DRAM does not speed up with the core clock, so the memory
    // latency *in cycles* stretches with frequency. Applied to the
    // simulator's own config copy before the hierarchy is built; the
    // guard keeps the nominal point bit-identical (no round-trip
    // through floating point).
    if (cfg.freqGHz != 1.0) {
        const double scaled = cfg.memory.memLatency * cfg.freqGHz;
        cfg.memory.memLatency =
            std::max(1u, static_cast<unsigned>(scaled + 0.5));
    }

    if (load.trace) {
        source =
            std::make_unique<workload::TraceReplaySource>(load.trace);
    } else {
        source = std::make_unique<workload::Executor>(*load.program,
                                                      load.profile);
    }
    hierarchy = std::make_unique<memory::Hierarchy>(cfg.memory);
    splitMode = cfg.splitCore;

    coldCorePtr = std::make_unique<cpu::OooCore>(cfg.coldCore,
                                                 hierarchy.get(),
                                                 &coldAcct);
    if (splitMode) {
        hotCorePtr = std::make_unique<cpu::OooCore>(cfg.hotCore,
                                                    hierarchy.get(),
                                                    &hotAcct);
    }

    branchPredictor =
        std::make_unique<frontend::BranchPredictor>(cfg.branchPredictor);
    decoder = std::make_unique<frontend::Decoder>(cfg.decoder);

    if (cfg.hasTraceCache) {
        selector = std::make_unique<tracecache::TraceSelector>();
        hotFilter = std::make_unique<tracecache::CounterFilter>(
            cfg.hotFilter);
        blazeFilter = std::make_unique<tracecache::CounterFilter>(
            cfg.blazeFilter);
        traceCache = std::make_unique<tracecache::TraceCache>(
            cfg.traceCache);
        tracePredictor = std::make_unique<tracecache::TracePredictor>(
            cfg.tracePredictor);
    }
    if (cfg.hasOptimizer) {
        traceOptimizer =
            std::make_unique<optimizer::TraceOptimizer>(cfg.optimizer);
    }

    const char *cosim_env = std::getenv("PARROT_COSIM");
    if (cfg.cosim ||
        (cosim_env && cosim_env[0] != '\0' && cosim_env[0] != '0')) {
        cosim = std::make_unique<verify::CosimOracle>();
    }

    // Power-state gates. Units the model does not have are forced Off
    // (no trace cache -> no TC port; unified core -> no separable cold
    // backend), so a blanket policy like --gate power stays valid on
    // every model. Area shares pro-rate the leakage a power-gated unit
    // saves; clock weights size the idle-clock charge.
    {
        using power::GatedUnit;
        power::PowerStateConfig ps = cfg.powerState;
        if (!cfg.hasTraceCache)
            ps.of(GatedUnit::TcPort) = power::GatePolicy{};
        if (!splitMode)
            ps.of(GatedUnit::ColdBackend) = power::GatePolicy{};
        psEnabled = ps.anyEnabled();
        gate(GatedUnit::Decoder)
            .configure(GatedUnit::Decoder, ps.of(GatedUnit::Decoder),
                       cfg.decoder.clockWeight(), 0.08);
        gate(GatedUnit::BranchPred)
            .configure(GatedUnit::BranchPred,
                       ps.of(GatedUnit::BranchPred),
                       cfg.branchPredictor.clockWeight(), 0.04);
        gate(GatedUnit::IcachePort)
            .configure(GatedUnit::IcachePort,
                       ps.of(GatedUnit::IcachePort), 2, 0.03);
        gate(GatedUnit::TcPort)
            .configure(GatedUnit::TcPort, ps.of(GatedUnit::TcPort),
                       cfg.traceCache.portClockWeight(), 0.05);
        gate(GatedUnit::ColdBackend)
            .configure(GatedUnit::ColdBackend,
                       ps.of(GatedUnit::ColdBackend),
                       cfg.coldCore.width * 2, 0.40);
    }

    regStats();
}

std::uint64_t
ParrotSimulator::committedInsts() const
{
    return coldCorePtr->committedInsts() + hotInstsCommitted;
}

std::uint64_t
ParrotSimulator::position() const
{
    return committedInsts() + ffInsts;
}

void
ParrotSimulator::checkDeadline() const
{
    if (runDeadlineMs == 0)
        return;
    if (std::chrono::steady_clock::now() - runWallStart >=
        std::chrono::milliseconds(runDeadlineMs)) {
        throw DeadlineExceeded(cfg.name, load.profile.name,
                               runDeadlineMs);
    }
}

void
ParrotSimulator::quiesce(std::uint64_t cycle_cap)
{
    // Finish the in-flight hot trace first: hot dispatch needs full
    // stepCycle()s (stall resolution included), and cold fetch never
    // runs while mode == Hot, so no new work enters the machine.
    while ((mode == Mode::Hot || activeTrace) && cycle < cycle_cap) {
        stepCycle();
        if (cycle % 1024 == 0)
            checkDeadline();
    }
    // Then drain what the cores hold to a commit boundary. Bounded:
    // with fetch stopped each core retires its window in far fewer
    // than 4096 cycles. The wall-clock watchdog keeps running — a
    // drain can start with almost no deadline budget left.
    unsigned drain = 0;
    while ((!coldCore().drained() ||
            (splitMode && !hotCorePtr->drained())) &&
           drain++ < 4096) {
        coldCore().tick();
        if (splitMode)
            hotCorePtr->tick();
        ++cycle;
        reapTraceCommits();
        if (drain % 128 == 0)
            checkDeadline();
    }
    reapTraceCommits();
}

void
ParrotSimulator::regStats()
{
    // perf.* — top-level derived metrics. The formulas reproduce the
    // exact floating-point expressions the pre-tree result assembly
    // used, so materialized SimResults stay bit-identical.
    auto &perf = statsRoot.subgroup("perf");
    auto insts_fn = [this] {
        return static_cast<double>(committedInsts());
    };
    auto uops_fn = [this] {
        return static_cast<double>(
            coldCore().committedUops() +
            (splitMode ? hotCorePtr->committedUops() : 0));
    };
    auto cycles_fn = [this] { return static_cast<double>(cycle); };
    perf.addFormula("insts", insts_fn);
    perf.addFormula("uops", uops_fn);
    perf.addFormula("cycles", cycles_fn);
    perf.addFormula("ipc", [this, insts_fn, cycles_fn] {
        return cycle == 0 ? 0.0 : insts_fn() / cycles_fn();
    });
    perf.addFormula("upc", [this, uops_fn, cycles_fn] {
        return cycle == 0 ? 0.0 : uops_fn() / cycles_fn();
    });

    // core.cold / core.hot — per-core retirement counters and raw
    // power-event counts.
    auto &core_group = statsRoot.subgroup("core");
    auto &cold_group = core_group.subgroup("cold");
    coldCorePtr->regStats(cold_group);
    coldAcct.regStats(cold_group);
    if (splitMode) {
        auto &hot_group = core_group.subgroup("hot");
        hotCorePtr->regStats(hot_group);
        hotAcct.regStats(hot_group);
    }

    // frontend.* — cold fetch-side counters plus the branch predictor.
    auto &fe = statsRoot.subgroup("frontend");
    fe.add(&st.coldCondBranches);
    fe.add(&st.coldBranchMispredicts);
    fe.addFormula("cold_mispredict_rate", [this] {
        return st.coldCondBranches.value() == 0
            ? 0.0
            : static_cast<double>(st.coldBranchMispredicts.value()) /
                  st.coldCondBranches.value();
    });
    fe.add(&st.tpLookupCount);
    fe.add(&st.tpHitCount);
    fe.add(&st.tcMissAfterPredictCount);
    fe.add(&st.candidateCount);
    branchPredictor->regStats(fe.subgroup("bp"));

    // memory.* — the cache hierarchy.
    hierarchy->regStats(statsRoot.subgroup("memory"));

    // trace.* — trace-unit counters; component subgroups exist only on
    // models that have the trace unit, but the simulator-owned scalars
    // (and so every SimResult path) exist on every model.
    auto &tr = statsRoot.subgroup("trace");
    tr.add(&st.uopsFromTraceCacheDispatched);
    tr.add(&st.uopsFromColdDispatched);
    tr.add(&st.instsFromTraceCache);
    tr.addFormula("coverage", [this, insts_fn] {
        return st.instsFromTraceCache.value() == 0
            ? 0.0
            : static_cast<double>(st.instsFromTraceCache.value()) /
                  insts_fn();
    });
    tr.add(&st.tracePredictionsMade);
    tr.add(&st.traceMispredictsSeen);
    tr.addFormula("abort_rate", [this] {
        return st.tracePredictionsMade.value() == 0
            ? 0.0
            : static_cast<double>(st.traceMispredictsSeen.value()) /
                  st.tracePredictionsMade.value();
    });
    tr.add(&st.traceEndRedirects);
    tr.add(&st.tracesInsertedCount);
    tr.add(&st.traceExecutionsCount);
    if (cfg.hasTraceCache) {
        traceCache->regStats(tr.subgroup("cache"));
        tracePredictor->regStats(tr.subgroup("predictor"));
        selector->regStats(tr.subgroup("selector"));
        hotFilter->regStats(tr.subgroup("hot_filter"));
        blazeFilter->regStats(tr.subgroup("blaze_filter"));
    }

    // optimizer.* — run-level outcome stats plus the optimizer's own
    // pass counters when present.
    auto &opt = statsRoot.subgroup("optimizer");
    opt.add(&st.tracesOptimizedCount);
    opt.addFormula("static_uop_reduction", [this] {
        return st.tracesOptimizedCount.value() == 0
            ? 0.0
            : st.sumUopReduction / st.tracesOptimizedCount.value();
    });
    opt.addFormula("static_dep_reduction", [this] {
        return st.tracesOptimizedCount.value() == 0
            ? 0.0
            : st.sumDepReduction / st.tracesOptimizedCount.value();
    });
    opt.add(&st.optimizedTraceExecs);
    opt.addFormula("utilization", [this] {
        return st.tracesOptimizedCount.value() == 0
            ? 0.0
            : static_cast<double>(st.optimizedTraceExecs.value()) /
                  st.tracesOptimizedCount.value();
    });
    opt.add(&st.hotExecUops);
    opt.add(&st.hotExecOrigUops);
    opt.addFormula("dynamic_uop_reduction", [this] {
        return st.hotExecOrigUops.value() == 0
            ? 0.0
            : 1.0 - static_cast<double>(st.hotExecUops.value()) /
                        static_cast<double>(st.hotExecOrigUops.value());
    });
    if (cfg.hasOptimizer)
        traceOptimizer->regStats(opt.subgroup("unit"));

    // energy.* — joules under the per-core energy models. Leakage needs
    // the externally calibrated Pmax, which run() stores before any
    // snapshot is taken. Dynamic energy scales with the DVFS voltage
    // term f·V² per event — per-event counts already capture the f
    // factor (they are per cycle of the configured clock), so the
    // per-event scale is V². The nominal point multiplies by exactly
    // 1.0, keeping results bit-identical.
    auto &en = statsRoot.subgroup("energy");
    const double dvfs_volt = 0.6 + 0.4 * cfg.freqGHz;
    const double dyn_scale =
        cfg.freqGHz == 1.0 ? 1.0 : dvfs_volt * dvfs_volt;
    auto dynamic_fn = [this, dyn_scale] {
        return (coldAcct.dynamicEnergy(coldModel) +
                hotAcct.dynamicEnergy(hotModel)) * dyn_scale;
    };
    auto leak_model_fn = [this] {
        power::LeakageModel leak;
        leak.pmaxPerCycle = pmaxPerCycle;
        leak.l2MegaBytes = cfg.memory.l2MegaBytes();
        leak.coreAreaFactor = cfg.coreAreaFactor;
        leak.freqGHz = cfg.freqGHz;
        return leak;
    };
    auto leakage_saved_fn = [this, leak_model_fn] {
        double area_cycles = 0.0;
        for (const auto &g : gates)
            area_cycles += g.gatedAreaCycles();
        return leak_model_fn().leakageSaved(area_cycles);
    };
    auto leakage_fn = [this, leak_model_fn, leakage_saved_fn] {
        // Net leakage: the gross wall-time formula minus what
        // power-gated units saved while their rail was cut.
        return leak_model_fn().leakageEnergy(
                   static_cast<double>(cycle)) - leakage_saved_fn();
    };
    auto total_fn = [dynamic_fn, leakage_fn] {
        return dynamic_fn() + leakage_fn();
    };
    en.addFormula("dynamic", dynamic_fn);
    en.addFormula("leakage", leakage_fn);
    en.addFormula("leakage_saved", leakage_saved_fn);
    en.addFormula("total", total_fn);
    en.addFormula("per_cycle", [this, dynamic_fn] {
        return cycle == 0
            ? 0.0 : dynamic_fn() / static_cast<double>(cycle);
    });
    auto &unit = en.subgroup("unit");
    for (unsigned u = 0; u < power::numPowerUnits; ++u) {
        const auto pu = static_cast<power::PowerUnit>(u);
        if (pu == power::PowerUnit::Leakage) {
            unit.addFormula(power::powerUnitName(pu), leakage_fn);
            continue;
        }
        unit.addFormula(power::powerUnitName(pu), [this, u, dyn_scale] {
            return (coldAcct.unitBreakdown(coldModel)[u] +
                    hotAcct.unitBreakdown(hotModel)[u]) * dyn_scale;
        });
    }

    // power.* — the paper's power-awareness figure of merit plus the
    // gating counters. Undefined until work has happened (mid-run
    // window snapshots can observe the cycle-0 state);
    // cubicMipsPerWatt asserts on zero inputs.
    auto &pw = statsRoot.subgroup("power");
    pw.addFormula(
        "cmpw", [this, insts_fn, cycles_fn, total_fn] {
            const double insts = insts_fn();
            const double cycles = cycles_fn();
            const double total = total_fn();
            if (insts <= 0 || cycles <= 0 || total <= 0)
                return 0.0;
            return power::cubicMipsPerWatt(insts, cycles, total,
                                           cfg.freqGHz);
        });
    // Whole-machine gating aggregates (zero when gating is off), then
    // the per-unit counters under power.gate.<unit>.*.
    pw.addFormula("gated_cycles", [this] {
        double sum = 0.0;
        for (const auto &g : gates)
            sum += static_cast<double>(g.gatedCycles());
        return sum;
    });
    pw.addFormula("wake_stalls", [this] {
        double sum = 0.0;
        for (const auto &g : gates)
            sum += static_cast<double>(g.wakeStalls());
        return sum;
    });
    pw.addFormula("sleep_entries", [this] {
        double sum = 0.0;
        for (const auto &g : gates)
            sum += static_cast<double>(g.sleepEntries());
        return sum;
    });
    auto &gate_grp = pw.subgroup("gate");
    for (unsigned i = 0; i < power::numGatedUnits; ++i) {
        const auto u = static_cast<power::GatedUnit>(i);
        gates[i].regStats(gate_grp.subgroup(power::gatedUnitName(u)));
    }

    // sample.* — sampled-simulation summary. Detailed runs report the
    // trivial values (0 windows, coverage 1, CI 0), so the paths — and
    // the materialized SimResult fields — exist on every run.
    auto &sa = statsRoot.subgroup("sample");
    sa.addFormula("windows", [this] {
        return static_cast<double>(sampleSt.windows);
    });
    sa.addFormula("coverage", [this] { return sampleSt.coverage; });
    sa.addFormula("ci_ipc", [this] { return sampleSt.ciIpc; });
    sa.addFormula("ci_energy", [this] { return sampleSt.ciEnergy; });

    // cosim.* — oracle counters; zeros when the oracle is off so the
    // paths (and the materialized SimResult fields) always exist.
    auto &co = statsRoot.subgroup("cosim");
    co.addFormula("enabled", [this] { return cosim ? 1.0 : 0.0; });
    if (cosim) {
        cosim->regStats(co);
    } else {
        for (const char *name :
             {"cold_commits", "trace_commits", "uops_executed",
              "mismatches"}) {
            co.addFormula(name, [] { return 0.0; });
        }
    }
}

void
ParrotSimulator::refillLookahead(std::size_t target)
{
    // A finite recorded trace ran dry. If the stream it delivered can
    // still reach the budget (every budgeted instruction was fetched
    // and is in the lookahead or in flight), an empty lookahead is
    // just a fetch stall while the tail commits. Only a stream that
    // genuinely cannot reach the budget fails loudly (SuiteRunner
    // retries/tombstones the cell) — otherwise the run would spin to
    // the cycle cap and report a silently-short result.
    auto budget_unreachable = [&] {
        return lookahead.empty() && target > 0 &&
               fetchedInsts < lastInstBudget;
    };
    if (sourceDry) {
        if (budget_unreachable()) {
            throw std::runtime_error(
                "workload source for '" + load.profile.name +
                "' exhausted before the instruction budget; "
                "re-record the trace with a larger budget");
        }
        return;
    }
    // Fill ring slots in place: the source writes straight into the
    // buffer, so no 64-byte DynInst ever crosses a copy.
    while (lookahead.size() < target) {
        DynInst &slot = lookahead.emplaceBack();
        if (!source->next(slot)) {
            lookahead.popBack();
            sourceDry = true;
            if (budget_unreachable()) {
                throw std::runtime_error(
                    "workload source for '" + load.profile.name +
                    "' exhausted before the instruction budget; "
                    "re-record the trace with a larger budget");
            }
            break;
        }
        ++fetchedInsts;
    }
}

void
ParrotSimulator::recordFrontEndFetch(Addr pc)
{
    auto access = hierarchy->fetchInst(pc);
    coldAcct.record(PowerEvent::IcacheRead);
    if (!access.l1Hit) {
        coldAcct.record(PowerEvent::IcacheMiss);
        coldAcct.record(PowerEvent::L2Access);
        if (!access.l2Hit)
            coldAcct.record(PowerEvent::MemAccess);
        // Fetch stalls for the time beyond the pipelined L1 access.
        Cycle stall_end = cycle + access.latency - cfg.memory.l1i.hitLatency;
        resumeAt = std::max(resumeAt, stall_end);
    }
}

void
ParrotSimulator::stallOnToken(cpu::OooCore &core, cpu::UopToken token,
                              unsigned penalty)
{
    pendingResolve = PendingResolve{&core, token, penalty};
}

void
ParrotSimulator::markDirty(const isa::Uop &uop)
{
    auto mark = [&](RegId r) {
        if (r != invalidReg && !dirtySinceSwitch[r]) {
            dirtySinceSwitch[r] = true;
            ++dirtyCount;
        }
    };
    if (uop.hasDst())
        mark(uop.effectiveDst());
    if (uop.dst2 != invalidReg)
        mark(uop.dst2);
}

void
ParrotSimulator::chargeSideSwitch(Side side)
{
    if (!splitMode)
        return;
    if (lastSide != side && lastSide != Side::None) {
        // Forward every register written since the last switch to the
        // other core (§2.3's writer/reader tracking), a few per cycle.
        const unsigned transfer_width = 8;
        unsigned beats = (dirtyCount + transfer_width - 1) /
                         transfer_width;
        if (beats == 0)
            beats = 1;
        hotAcct.record(PowerEvent::StateSwitch, beats);
        resumeAt = std::max(resumeAt,
                            cycle + cfg.stateSwitchPenalty + beats - 1);
        dirtyCount = 0;
        std::fill(std::begin(dirtySinceSwitch),
                  std::end(dirtySinceSwitch), false);
    }
    lastSide = side;
}

void
ParrotSimulator::feedSelector(const DynInst &dyn)
{
    if (!cfg.hasTraceCache)
        return;
    selector->feed(dyn);
    TraceCandidate cand;
    while (selector->pop(cand))
        onCandidate(cand);
}

void
ParrotSimulator::onCandidate(const TraceCandidate &cand)
{
    auto &acct = hotAccount();
    st.candidateCount.add();

    // Continuous trace-predictor training on the committed TID stream.
    // Key on the two-back candidate: that is exactly the context the
    // fetch selector will have when this TID's start address comes up.
    tracePredictor->train(trainPrevPrevTid, cand.tid.startPc, cand.tid);
    acct.record(PowerEvent::TpUpdate);
    trainPrevPrevTid = trainPrevTid;
    trainPrevTid = cand.tid;

    // Gradual filtering: only TIDs that pass the hot filter are
    // constructed and inserted into the trace cache.
    unsigned count = hotFilter->bump(cand.tid);
    acct.record(PowerEvent::HotFilter);
    if (!hotFilter->promoted(count))
        return;
    if (traceCache->peek(cand.tid) != nullptr)
        return; // already cached

    Trace trace = tracecache::constructTrace(cand);
    acct.record(PowerEvent::TraceBuildUop, trace.uops.size());
    acct.record(PowerEvent::TcWrite, trace.uops.size());
    traceCache->insert(std::move(trace));
    hotFilter->reset(cand.tid);
    st.tracesInsertedCount.add();
}

void
ParrotSimulator::onCandidateWarm(const TraceCandidate &cand)
{
    // Mirror of onCandidate for fast-forwarded instructions: the same
    // predictor training, filtering and trace construction so the warm
    // structures evolve as they would under detailed simulation, but
    // no power events and no simulator stats — fast-forwarded work is
    // extrapolated, never measured.
    tracePredictor->train(trainPrevPrevTid, cand.tid.startPc, cand.tid);
    trainPrevPrevTid = trainPrevTid;
    trainPrevTid = cand.tid;

    unsigned count = hotFilter->bump(cand.tid);
    if (!hotFilter->promoted(count))
        return;
    if (traceCache->peek(cand.tid) != nullptr)
        return;

    traceCache->insert(tracecache::constructTrace(cand));
    hotFilter->reset(cand.tid);
}

void
ParrotSimulator::warmInstruction(const DynInst &dyn, WarmCursor &cur)
{
    const isa::MacroInst &inst = *dyn.inst;

    // Warm the instruction and data tags (no hit/miss stats, no
    // latency — functional warming only). Instruction fetch warms per
    // cache LINE, not per instruction: consecutive instructions on one
    // line are a single fetch in the detailed machine too, and the
    // per-line skip is most of the fast-forward throughput.
    const Addr iline = inst.pc / cfg.memory.l1i.lineBytes;
    if (iline != cur.iline) {
        hierarchy->warmFetchInst(inst.pc);
        cur.iline = iline;
    }
    for (std::size_t u = 0; u < inst.uops.size(); ++u) {
        const isa::Uop &uop = inst.uops[u];
        const bool is_store = uop.kind == isa::UopKind::Store;
        if (uop.kind != isa::UopKind::Load && !is_store)
            continue;
        // A repeat access to the line just touched only re-marks it
        // MRU (no-op) unless it is the first store to it, which must
        // still set the dirty bit.
        const Addr dline = dyn.memAddr[u] / cfg.memory.l1d.lineBytes;
        if (dline == cur.dline && (!is_store || cur.dlineWritten))
            continue;
        hierarchy->warmAccessData(dyn.memAddr[u], is_store);
        cur.dline = dline;
        cur.dlineWritten = is_store;
    }

    // Train the cold front end: direction tables, BTB and RAS follow
    // the committed stream exactly like the detailed path would.
    if (inst.isCondBranch())
        branchPredictor->warmUpdate(inst.pc, dyn.taken);
    if (inst.cti == isa::CtiType::Call) {
        branchPredictor->rasPush(inst.nextPc());
    } else if (inst.cti == isa::CtiType::Return) {
        branchPredictor->rasPop();
    }
    if (dyn.isCti() && dyn.taken && inst.cti != isa::CtiType::Return)
        branchPredictor->btbInsert(inst.pc, dyn.nextPc);

    // Keep the differential oracle in lock step: a fast-forwarded
    // instruction commits architecturally like a cold commit.
    if (cosim)
        cosim->onColdCommit(dyn);

    // Trace selection continues across the gap so the trace cache,
    // filters and trace predictor stay warm.
    if (cfg.hasTraceCache) {
        selector->feed(dyn);
        TraceCandidate cand;
        while (selector->pop(cand))
            onCandidateWarm(cand);
    }
}

void
ParrotSimulator::fastForward(std::uint64_t n)
{
    workload::DynInst dyn;
    // Per-call so a fast-forward segment behaves identically whether
    // it runs after a checkpoint resume or mid-run: the first
    // instruction of every segment always warms its lines.
    WarmCursor cur;
    for (std::uint64_t i = 0; i < n; ++i) {
        if (!lookahead.empty()) {
            // Drain the already-fetched stream first so the source
            // cursor and the consumed stream stay contiguous.
            dyn = lookahead.front();
            lookahead.popFront();
        } else if (sourceDry || !source->next(dyn)) {
            sourceDry = true;
            return; // the next detailed step reports exhaustion
        } else {
            ++fetchedInsts;
        }
        warmInstruction(dyn, cur);
        ++ffInsts;
        if ((i & 0xffff) == 0xffff)
            checkDeadline();
    }
}

void
ParrotSimulator::onTraceExecuted(Trace &trace)
{
    auto &acct = hotAccount();
    ++trace.execCount;
    st.traceExecutionsCount.add();
    st.hotExecUops.add(trace.uops.size());
    st.hotExecOrigUops.add(trace.originalUopCount);
    if (trace.optimized)
        st.optimizedTraceExecs.add();

    if (!cfg.hasOptimizer || trace.optimized)
        return;

    unsigned count = blazeFilter->bump(trace.tid);
    acct.record(PowerEvent::BlazeFilter);
    if (!blazeFilter->promoted(count))
        return;
    if (optJob.has_value())
        return; // optimizer busy; the trace stays blazing and retries

    // Copy the trace into the (non-pipelined) optimizer; the rewritten
    // version is written back when the modelled latency elapses.
    OptJob job;
    job.trace = trace;
    job.doneAt = cycle + cfg.optimizer.latencyCycles;
    optJob = std::move(job);
    blazeFilter->reset(trace.tid);
}

void
ParrotSimulator::processBackground()
{
    if (optJob.has_value() && cycle >= optJob->doneAt) {
        Trace trace = std::move(optJob->trace);
        optJob.reset();
        auto result = traceOptimizer->optimize(trace);
        auto &acct = hotAccount();
        acct.record(PowerEvent::OptimizerUop,
                    static_cast<Counter>(result.uopsBefore) *
                        result.passesRun);
        acct.record(PowerEvent::TcWrite, trace.uops.size());
        st.tracesOptimizedCount.add();
        st.sumUopReduction += result.uopReduction();
        st.sumDepReduction += result.depReduction();
        traceCache->insert(std::move(trace));
    }
}

bool
ParrotSimulator::tryStartHotTrace()
{
    if (!cfg.hasTraceCache || lookahead.empty())
        return false;

    auto &acct = hotAccount();
    const Addr pc = lookahead.front().pc();
    Tid predicted;
    acct.record(PowerEvent::TpLookup);
    st.tpLookupCount.add();
    if (!tracePredictor->predict(trainPrevTid, pc, predicted))
        return false;
    st.tpHitCount.add();

    if (psEnabled) {
        // The predictor wants a trace-cache read: wake the TC fetch
        // port if it slept through the cold stretch. The stream is
        // untouched, so once the wake stall elapses the very same
        // prediction is retried and proceeds to the lookup.
        unsigned stall = gate(power::GatedUnit::TcPort).demand(acct);
        if (stall > 0) {
            resumeAt = std::max(resumeAt, cycle + stall);
            return false;
        }
    }

    auto trace = traceCache->lookup(predicted);
    if (!trace) {
        st.tcMissAfterPredictCount.add();
        return false;
    }

    st.tracePredictionsMade.add();

    // Verify the predicted trace against the actual committed stream.
    const std::size_t path_len = trace->path.size();
    refillLookahead(std::max<std::size_t>(path_len + 8, 96));
    std::size_t match = 0;
    while (match < path_len && match < lookahead.size()) {
        const auto &ref = trace->path[match];
        const auto &dyn = lookahead[match];
        if (dyn.inst != ref.inst ||
            (ref.inst->isCti() && dyn.taken != ref.taken)) {
            break;
        }
        ++match;
    }

    activeTrace = trace;
    hotUopIdx = 0;
    mode = Mode::Hot;
    hotEndRedirect = false;
    hotEndBranchSeen = false;

    // Special case: everything matched except the *final* conditional
    // branch's direction (e.g. a loop exit). The trace still executes
    // and commits in full — only the subsequent fetch was mispredicted.
    if (match == path_len - 1) {
        const auto &ref = trace->path[match];
        const auto &dyn = lookahead[match];
        if (dyn.inst == ref.inst &&
            ref.inst->cti == isa::CtiType::CondBranch) {
            hotEndRedirect = true;
            st.traceEndRedirects.add();
            match = path_len;
        }
    }

    if (match == path_len) {
        // Full match: the trace executes and commits atomically.
        hotAborted = false;
        hotUopLimit = trace->uops.size();
        activeWindow.clear();
        for (std::size_t i = 0; i < path_len; ++i)
            activeWindow.push_back(lookahead[i]);
        lookahead.popFront(path_len);
    } else {
        // Assert failure: execute the poisoned prefix, then flush and
        // restore — the stream is *not* consumed; the cold pipeline
        // re-executes from the trace's start address.
        st.traceMispredictsSeen.add();
        tracePredictor->mispredict(trainPrevTid, pc);
        ++trace->abortCount;
        // A trace that keeps aborting embeds an unstable path; evict
        // it so the fetch selector stops gambling on it (it can
        // re-earn admission through the hot filter later).
        if (trace->abortCount >= 4 &&
            trace->abortCount * 2 >= trace->execCount) {
            traceCache->remove(trace->tid);
            hotFilter->reset(trace->tid);
        }
        hotAborted = true;
        activeWindow.clear();
        for (std::size_t i = 0; i < match; ++i)
            activeWindow.push_back(lookahead[i]);
        // The failing check is the assert carrying the diverging
        // instruction's direction. Work dispatched up to that point is
        // poisoned; everything younger is squashed at dispatch (it
        // never enters the machine). The abort resolves when the
        // failing assert executes.
        hotUopLimit = 0;
        for (std::size_t i = 0; i < trace->uops.size(); ++i) {
            if (static_cast<std::size_t>(trace->uops[i].instIdx) == match &&
                isa::isCti(trace->uops[i].uop.kind)) {
                hotUopLimit = i + 1;
                break;
            }
        }
        if (hotUopLimit == 0) {
            // Divergence without an assert (e.g. an inlined return
            // leaving for a different caller): charge the prefix up to
            // the diverging instruction.
            for (std::size_t i = 0; i < trace->uops.size(); ++i) {
                if (static_cast<std::size_t>(trace->uops[i].instIdx) <=
                        match) {
                    hotUopLimit = i + 1;
                }
            }
        }
        if (hotUopLimit == 0)
            hotUopLimit = std::min<std::size_t>(1, trace->uops.size());
    }
    return true;
}

void
ParrotSimulator::hotDispatchCycle()
{
    cpu::OooCore &core = hotCore();
    auto &acct = hotAccount();
    unsigned budget = core.config().width;

    if (hotUopIdx == 0) {
        chargeSideSwitch(Side::HotSide);
        if (cycle < resumeAt)
            return; // state transfer in progress
    }

    while (budget > 0 && hotUopIdx < hotUopLimit && core.canDispatch()) {
        const tracecache::TraceUop &tu = activeTrace->uops[hotUopIdx];
        Addr mem_addr = 0;
        if (tu.uop.kind == isa::UopKind::Load ||
            tu.uop.kind == isa::UopKind::Store) {
            const auto idx = static_cast<std::size_t>(tu.instIdx);
            if (idx < activeWindow.size()) {
                mem_addr = activeWindow[idx].memAddr[tu.uopIdx];
            } else {
                // Wrong-path access beyond the divergence point:
                // deterministic pseudo-address (cache pollution model).
                mem_addr = workload::dataRegionBase +
                           (mix64(tu.uop.imm + tu.instIdx * 64) &
                            0x3ffff & ~7ull);
            }
        }
        acct.record(PowerEvent::TcRead);
        if (splitMode)
            markDirty(tu.uop);
        lastHotToken = core.dispatch(tu.uop, mem_addr, false, hotAborted);
        if (hotEndRedirect && isa::isCti(tu.uop.kind) &&
            static_cast<std::size_t>(tu.instIdx) + 1 ==
                activeTrace->path.size()) {
            hotEndBranchToken = lastHotToken;
            hotEndBranchSeen = true;
        }
        ++hotUopIdx;
        --budget;
    }

    if (hotUopIdx < hotUopLimit)
        return; // continue next cycle

    // Dispatch finished: close out the trace.
    st.uopsFromTraceCacheDispatched.add(hotUopLimit);
    if (!hotAborted) {
        pendingTraceCommits.push_back(
            TraceCommit{lastHotToken, activeTrace->path.size()});
        st.instsFromTraceCache.add(activeTrace->path.size());
        if (cosim)
            cosim->onTraceCommit(*activeTrace, activeWindow);
        onTraceExecuted(*activeTrace);
        // Keep the cold front-end's return-address stack coherent with
        // the calls and returns the trace executed (otherwise every
        // cold return after a hot region would mispredict).
        for (const auto &ref : activeTrace->path) {
            if (ref.inst->cti == isa::CtiType::Call)
                branchPredictor->rasPush(ref.inst->nextPc());
            else if (ref.inst->cti == isa::CtiType::Return)
                branchPredictor->rasPop();
        }
        for (const auto &dyn : activeWindow)
            feedSelector(dyn);
        if (hotEndRedirect) {
            // Next-fetch misprediction: wait for the final branch to
            // resolve, then refill.
            cpu::UopToken token =
                hotEndBranchSeen ? hotEndBranchToken : lastHotToken;
            stallOnToken(core, token, core.config().mispredictPenalty);
        }
    } else {
        // Atomic abort: flush, restore, and redirect to cold.
        acct.record(PowerEvent::PipeFlush);
        stallOnToken(core, lastHotToken,
                     core.config().mispredictPenalty);
    }
    activeTrace = tracecache::TraceRef{};
    activeWindow.clear();
    mode = Mode::Cold;
}

void
ParrotSimulator::coldCycle()
{
    if (lookahead.empty())
        return;
    if (tryStartHotTrace()) {
        if (cycle >= resumeAt)
            hotDispatchCycle();
        return;
    }

    if (psEnabled) {
        if (cycle < resumeAt)
            return; // a TC-port wake stall was just scheduled
        // Cold fetch demands the whole cold front end (and, on the
        // split core, the cold backend): wake whatever slept through
        // the hot stretch, paying the slowest unit's latency once —
        // the wakes proceed in parallel.
        using power::GatedUnit;
        unsigned stall = gate(GatedUnit::Decoder).demand(coldAcct);
        stall = std::max(stall,
                         gate(GatedUnit::BranchPred).demand(coldAcct));
        stall = std::max(stall,
                         gate(GatedUnit::IcachePort).demand(coldAcct));
        if (splitMode) {
            stall = std::max(
                stall, gate(GatedUnit::ColdBackend).demand(coldAcct));
        }
        if (stall > 0) {
            resumeAt = std::max(resumeAt, cycle + stall);
            return;
        }
    }

    cpu::OooCore &core = coldCore();
    auto &acct = coldAcct;

    // Assemble this cycle's fetch group: up to decoder throughput,
    // ending at the first taken CTI. The window buffer is reused
    // across cycles (clear() keeps its capacity).
    fetchWindow.clear();
    for (std::size_t i = 0; i < lookahead.size(); ++i) {
        const auto &dyn = lookahead[i];
        fetchWindow.push_back(dyn.inst);
        if (fetchWindow.size() >= cfg.decoder.width * 2)
            break;
        if (dyn.isCti() && dyn.taken)
            break;
    }
    unsigned group = decoder->throughput(fetchWindow.data(),
                                         fetchWindow.size());

    Addr last_line = ~0ull;
    const unsigned line_bytes = cfg.memory.l1i.lineBytes;

    unsigned dispatched_insts = 0;
    unsigned uop_budget = core.config().width;

    while (dispatched_insts < group && !lookahead.empty()) {
        const DynInst dyn = lookahead.front();
        const isa::MacroInst &inst = *dyn.inst;
        const unsigned n_uops = inst.uops.size();

        if (n_uops > uop_budget || !core.canDispatch(n_uops))
            break; // rename width or window space exhausted

        // Instruction-cache access, once per line.
        Addr line = inst.pc / line_bytes;
        if (line != last_line) {
            recordFrontEndFetch(inst.pc);
            last_line = line;
            if (resumeAt > cycle)
                break; // I-cache miss: group ends, fetch stalls
        }

        acct.record(PowerEvent::DecodeWeight, inst.decodeWeight());
        if (splitMode && dispatched_insts == 0) {
            chargeSideSwitch(Side::ColdSide);
            if (cycle < resumeAt)
                break; // state transfer in progress
        }

        // Dispatch the whole instruction.
        cpu::UopToken branch_token = 0;
        bool have_branch_token = false;
        for (unsigned u = 0; u < n_uops; ++u) {
            const isa::Uop &uop = inst.uops[u];
            if (splitMode)
                markDirty(uop);
            cpu::UopToken tok =
                core.dispatch(uop, dyn.memAddr[u],
                              /*counts_as_inst=*/u + 1 == n_uops,
                              /*poisoned=*/false);
            if (isa::isCti(uop.kind)) {
                branch_token = tok;
                have_branch_token = true;
            }
        }
        uop_budget -= n_uops;
        st.uopsFromColdDispatched.add(n_uops);
        ++dispatched_insts;
        lookahead.popFront();
        if (cosim)
            cosim->onColdCommit(dyn);
        feedSelector(dyn);

        // Control handling on the cold pipeline.
        if (inst.isCondBranch()) {
            st.coldCondBranches.add();
            acct.record(PowerEvent::BpLookup);
            acct.record(PowerEvent::BpUpdate);
            bool pred = branchPredictor->predict(inst.pc);
            branchPredictor->update(inst.pc, dyn.taken);
            if (pred != dyn.taken) {
                st.coldBranchMispredicts.add();
                PARROT_ASSERT(have_branch_token, "branch without token");
                stallOnToken(core, branch_token,
                             core.config().mispredictPenalty);
                break;
            }
            if (dyn.taken) {
                acct.record(PowerEvent::BtbAccess);
                Addr target;
                if (!branchPredictor->btbLookup(inst.pc, target)) {
                    branchPredictor->btbInsert(inst.pc, inst.takenTarget);
                    resumeAt = std::max(resumeAt,
                                        cycle + cfg.btbMissBubble);
                    break;
                }
            }
        } else if (inst.cti == isa::CtiType::Jump) {
            acct.record(PowerEvent::BtbAccess);
            Addr target;
            if (!branchPredictor->btbLookup(inst.pc, target)) {
                branchPredictor->btbInsert(inst.pc, inst.takenTarget);
                resumeAt = std::max(resumeAt, cycle + cfg.btbMissBubble);
                break;
            }
        } else if (inst.cti == isa::CtiType::Call) {
            branchPredictor->rasPush(inst.nextPc());
            acct.record(PowerEvent::BtbAccess);
            Addr target;
            if (!branchPredictor->btbLookup(inst.pc, target)) {
                branchPredictor->btbInsert(inst.pc, inst.takenTarget);
                resumeAt = std::max(resumeAt, cycle + cfg.btbMissBubble);
                break;
            }
        } else if (inst.cti == isa::CtiType::Return) {
            Addr predicted = branchPredictor->rasPop();
            if (predicted != dyn.nextPc) {
                st.coldBranchMispredicts.add();
                PARROT_ASSERT(have_branch_token, "return without token");
                stallOnToken(core, branch_token,
                             core.config().mispredictPenalty);
                break;
            }
        } else if (inst.cti == isa::CtiType::JumpInd) {
            // Indirect jump: BTB provides the only target guess.
            acct.record(PowerEvent::BtbAccess);
            Addr target = 0;
            bool hit = branchPredictor->btbLookup(inst.pc, target);
            branchPredictor->btbInsert(inst.pc, dyn.nextPc);
            if (!hit || target != dyn.nextPc) {
                st.coldBranchMispredicts.add();
                PARROT_ASSERT(have_branch_token, "indirect without token");
                stallOnToken(core, branch_token,
                             core.config().mispredictPenalty);
                break;
            }
        }

        if (dyn.isCti() && dyn.taken)
            break; // taken CTI ends the fetch group
    }
}

void
ParrotSimulator::powerStateCycle()
{
    using power::GatedUnit;
    if (mode == Mode::Hot) {
        // Hot-trace fetch: the serial decoder, direction predictor and
        // I-cache port have nothing to do — the PARROT opportunity.
        gate(GatedUnit::Decoder).idleCycle(coldAcct);
        gate(GatedUnit::BranchPred).idleCycle(coldAcct);
        gate(GatedUnit::IcachePort).idleCycle(coldAcct);
        // Split core: once the cold backend drains during a hot
        // stretch, the whole cold core can sleep.
        if (splitMode && coldCore().drained())
            gate(GatedUnit::ColdBackend).idleCycle(coldAcct);
    } else {
        // Cold fetch: the trace-cache fetch port idles.
        gate(GatedUnit::TcPort).idleCycle(hotAccount());
    }
}

void
ParrotSimulator::reapTraceCommits()
{
    while (!pendingTraceCommits.empty() &&
           hotCore().retired(pendingTraceCommits.front().lastToken)) {
        hotInstsCommitted += pendingTraceCommits.front().insts;
        pendingTraceCommits.pop_front();
    }
}

void
ParrotSimulator::stepCycle()
{
    // Safe point for trace reclamation: no TraceRef is live outside an
    // active hot trace, so displaced (replaced/evicted/removed) traces
    // parked in limbo can be freed now.
    if (traceCache && mode == Mode::Cold && !activeTrace)
        traceCache->reclaimLimbo();

    refillLookahead();
    processBackground();

    // Resolve pending control stalls.
    if (pendingResolve.has_value()) {
        if (pendingResolve->core->completed(pendingResolve->token)) {
            resumeAt = std::max(resumeAt,
                                cycle + pendingResolve->penalty);
            pendingResolve.reset();
        }
    }

    if (psEnabled)
        powerStateCycle();

    if (!pendingResolve.has_value() && cycle >= resumeAt) {
        if (mode == Mode::Hot)
            hotDispatchCycle();
        else
            coldCycle();
    }

    coldCore().tick();
    if (splitMode)
        hotCorePtr->tick();
    ++cycle;
    reapTraceCommits();
}

/** Column schema of the sampled time-series. "w_"-prefixed columns
 * are per-window deltas; the rest are cumulative values at the window
 * boundary (so `coverage` ramps from 0 toward the run's final value). */
static const std::vector<std::string> kWindowColumns = {
    "cycle",          "w_cycles",        "w_insts",
    "w_ipc",          "insts",           "coverage",
    "w_coverage",     "w_uops_tc",       "w_uops_cold",
    "traces_inserted", "traces_optimized",
    "w_dynamic_energy", "dynamic_energy",
};

void
ParrotSimulator::sampleWindow(stats::Snapshot &prev,
                              stats::TimeSeries &series)
{
    stats::Snapshot snap = statsRoot.snapshot();
    const double w_cycles = snap.delta(prev, "perf.cycles");
    const double w_insts = snap.delta(prev, "perf.insts");
    const double w_insts_tc = snap.delta(prev, "trace.insts_from_tc");
    series.append({
        snap.get("perf.cycles"),
        w_cycles,
        w_insts,
        w_cycles == 0.0 ? 0.0 : w_insts / w_cycles,
        snap.get("perf.insts"),
        snap.get("trace.coverage"),
        w_insts == 0.0 ? 0.0 : w_insts_tc / w_insts,
        snap.delta(prev, "trace.uops_from_tc"),
        snap.delta(prev, "trace.uops_from_cold"),
        snap.get("trace.inserted"),
        snap.get("optimizer.traces"),
        snap.delta(prev, "energy.dynamic"),
        snap.get("energy.dynamic"),
    });
    prev = std::move(snap);
}

/** Relative 95% confidence interval of a sample population: 1.96
 * standard errors over the mean. Zero when fewer than two samples (or
 * a zero mean) make the interval undefined. */
static double
relativeCi95(const std::vector<double> &xs)
{
    const std::size_t n = xs.size();
    if (n < 2)
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    const double mean = sum / static_cast<double>(n);
    if (mean == 0.0)
        return 0.0;
    double var = 0.0;
    for (double x : xs)
        var += (x - mean) * (x - mean);
    var /= static_cast<double>(n - 1);
    return 1.96 * std::sqrt(var / static_cast<double>(n)) /
           std::abs(mean);
}

SimResult
ParrotSimulator::run(std::uint64_t inst_budget, double pmax_per_cycle,
                     std::uint64_t deadline_ms)
{
    PARROT_ASSERT(inst_budget > 0, "run: zero instruction budget");

    // The leakage/total-energy formulas read this member; it must be in
    // place before the first snapshot (window sampling included).
    pmaxPerCycle = pmax_per_cycle;
    lastInstBudget = inst_budget;

    const std::uint64_t cycle_cap = inst_budget * 40 + 200000;

    // Wall-clock watchdog. The cycle cap above bounds *simulated* time;
    // the deadline bounds *host* time, catching configurations that
    // burn host seconds per cycle. Sampled every kDeadlineStride cycles
    // at a commit boundary (stepCycle ends with reapTraceCommits) so
    // the abort leaves no half-committed trace state behind.
    constexpr std::uint64_t kDeadlineStride = 8192;
    runWallStart = std::chrono::steady_clock::now();
    runDeadlineMs = deadline_ms;
    if (unsigned long stall = fault::attemptStallMs()) {
        // Injected slow cell (PARROT_FAULT_SLOW_CELL): burn host time
        // against the deadline without touching simulated state. Slept
        // in short slices so the watchdog fires on time even when the
        // injected stall dwarfs the deadline.
        unsigned long slept = 0;
        while (slept < stall) {
            const unsigned long chunk =
                std::min<unsigned long>(10, stall - slept);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(chunk));
            slept += chunk;
            checkDeadline();
        }
    }

    // Windowed sampling: diff successive tree snapshots every
    // statsInterval cycles. Purely observational — it reads the same
    // counters and formulas the final result is materialized from.
    const std::uint64_t interval = cfg.statsInterval;
    std::shared_ptr<stats::TimeSeries> series;
    stats::Snapshot prevWindow;
    if (interval > 0) {
        series = std::make_shared<stats::TimeSeries>(kWindowColumns);
        prevWindow = statsRoot.snapshot();
    }
    Cycle lastSeriesCycle = cycle;

    // One detailed stretch up to stream position `until`.
    auto run_detailed = [&](std::uint64_t until) {
        while (position() < until && cycle < cycle_cap) {
            stepCycle();
            if (deadline_ms > 0 && cycle % kDeadlineStride == 0)
                checkDeadline();
            if (interval > 0 && cycle % interval == 0) {
                sampleWindow(prevWindow, *series);
                lastSeriesCycle = cycle;
            }
        }
    };

    const bool sampled = cfg.sampleWindow > 0;
    std::vector<double> win_cpi; //!< per-window cycles per instruction
    std::vector<double> win_epi; //!< per-window dynamic energy per inst

    if (!sampled) {
        run_detailed(inst_budget);
    } else {
        // SMARTS-style systematic sampling: a detailed window of
        // sampleWindow instructions starts every sampleStride
        // instructions; the gap in between is covered by functional
        // fast-forward with warm-state updates. Every window closes
        // with a full quiesce so its CPI and energy-per-instruction
        // measurements end at a commit boundary.
        std::uint64_t next_start = position();
        while (position() < inst_budget && cycle < cycle_cap) {
            const std::uint64_t window_end =
                std::min(next_start + cfg.sampleWindow, inst_budget);
            const stats::Snapshot win_start = statsRoot.snapshot();
            run_detailed(window_end);
            quiesce(cycle_cap);
            const stats::Snapshot win_end = statsRoot.snapshot();
            const double w_insts =
                win_end.delta(win_start, "perf.insts");
            if (w_insts > 0.0) {
                win_cpi.push_back(
                    win_end.delta(win_start, "perf.cycles") / w_insts);
                win_epi.push_back(
                    win_end.delta(win_start, "energy.dynamic") /
                    w_insts);
            }
            next_start += cfg.sampleStride;
            const std::uint64_t ff_to =
                std::min(next_start, inst_budget);
            // The quiesce can overshoot past the next window start
            // (an atomic trace commits whole); then the next window
            // begins immediately. A source that runs dry mid-gap is
            // reported by the next detailed step, which knows whether
            // the budget was still reachable.
            if (position() < ff_to)
                fastForward(ff_to - position());
        }
    }

    if (cycle >= cycle_cap)
        PARROT_WARN("model %s on %s hit the cycle cap (possible stall)",
                    cfg.name.c_str(), load.profile.name.c_str());

    // Drain in-flight work so commit counts are consistent. The
    // wall-clock watchdog stays armed here: a drain can start with
    // almost no deadline budget left, and an unbounded one would hang
    // the worker past its deadline.
    unsigned drain = 0;
    while ((!coldCore().drained() ||
            (splitMode && !hotCorePtr->drained())) &&
           drain++ < 4096) {
        coldCore().tick();
        if (splitMode)
            hotCorePtr->tick();
        ++cycle;
        reapTraceCommits();
        if (drain % 128 == 0)
            checkDeadline();
    }

    // Sampled-run summary; the trivial defaults stand for detailed
    // runs. Must be final before the materializing snapshot below —
    // the sample.* formulas read these members.
    if (sampled) {
        sampleSt.windows = win_cpi.size();
        sampleSt.coverage = position() == 0
            ? 1.0
            : static_cast<double>(committedInsts()) /
                  static_cast<double>(position());
        sampleSt.ciIpc = relativeCi95(win_cpi);
        sampleSt.ciEnergy = relativeCi95(win_epi);
    }

    // --- materialize the result from the stats tree ---
    SimResult r;
    r.model = cfg.name;
    r.app = load.profile.name;
    materializeResult(r, statsRoot.snapshot());
    if (sampled && ffInsts > 0 && committedInsts() > 0) {
        // Extrapolate extensive metrics over the fast-forwarded gap:
        // detailed windows are an unbiased systematic sample, so each
        // extensive counter scales by total/measured instructions.
        // Intensive metrics (rates, IPC, CIs) stay as measured.
        extrapolateResult(r, static_cast<double>(position()) /
                                 static_cast<double>(committedInsts()));
    }
    if (interval > 0) {
        // Final (possibly partial) window, including the drain cycles
        // — but only when it has width. A run that ended exactly on a
        // sampling boundary with nothing left to drain already emitted
        // this row; appending another would duplicate it as an empty
        // window.
        if (cycle > lastSeriesCycle)
            sampleWindow(prevWindow, *series);
        r.series = series;
    }
    return r;
}

// --- checkpointing ---------------------------------------------------

namespace
{

/** Serialize one dynamic instruction (static payload by pc). */
void
saveDynInst(const DynInst &dyn, serial::Writer &out)
{
    out.u64(dyn.inst->pc);
    out.u64(dyn.seq);
    out.boolean(dyn.taken);
    out.u64(dyn.nextPc);
    for (std::size_t u = 0; u < dyn.inst->uops.size(); ++u)
        out.u64(dyn.memAddr[u]);
}

/** Mirror of saveDynInst; re-resolves the static instruction. */
DynInst
loadDynInst(serial::Reader &in, const workload::Program &prog)
{
    DynInst dyn;
    const Addr pc = in.u64();
    dyn.inst = prog.instAt(pc);
    if (dyn.inst == nullptr) {
        throw serial::Error(
            "checkpointed instruction references unknown pc");
    }
    dyn.seq = in.u64();
    dyn.taken = in.boolean();
    dyn.nextPc = in.u64();
    for (std::size_t u = 0; u < dyn.inst->uops.size(); ++u)
        dyn.memAddr[u] = in.u64();
    return dyn;
}

void
saveTid(const Tid &tid, serial::Writer &out)
{
    out.u64(tid.startPc);
    out.u64(tid.dirBits);
    out.u8(tid.numDirs);
}

Tid
loadTid(serial::Reader &in)
{
    Tid tid;
    tid.startPc = in.u64();
    tid.dirBits = in.u64();
    tid.numDirs = in.u8();
    return tid;
}

} // namespace

void
ParrotSimulator::saveStateBlob(serial::Writer &out) const
{
    // --- fetch-state machine ---
    out.u64(cycle);
    out.u64(resumeAt);
    out.u8(mode == Mode::Hot ? 1 : 0);
    out.u64(fetchedInsts);
    out.boolean(sourceDry);
    out.u64(ffInsts);

    out.boolean(pendingResolve.has_value());
    if (pendingResolve.has_value()) {
        out.u8(pendingResolve->core == coldCorePtr.get() ? 0 : 1);
        out.u64(pendingResolve->token);
        out.u32(pendingResolve->penalty);
    }

    // Active hot trace as a stable (slot | limbo-index) coordinate —
    // run() can stop mid-dispatch when the budget lands inside a
    // trace, so the reference must survive the round trip.
    if (!activeTrace) {
        out.u8(0);
        out.u64(0);
    } else if (int slot = traceCache->slotOf(activeTrace.get());
               slot >= 0) {
        out.u8(1);
        out.u64(static_cast<std::uint64_t>(slot));
    } else {
        const int limbo = traceCache->limboIndexOf(activeTrace.get());
        if (limbo < 0) {
            throw serial::Error(
                "active trace is neither cached nor in limbo");
        }
        out.u8(2);
        out.u64(static_cast<std::uint64_t>(limbo));
    }
    out.u32(static_cast<std::uint32_t>(activeWindow.size()));
    for (const DynInst &dyn : activeWindow)
        saveDynInst(dyn, out);
    out.u64(hotUopIdx);
    out.u64(hotUopLimit);
    out.boolean(hotAborted);
    out.boolean(hotEndRedirect);
    out.u64(hotEndBranchToken);
    out.boolean(hotEndBranchSeen);
    out.u64(lastHotToken);

    out.u32(static_cast<std::uint32_t>(pendingTraceCommits.size()));
    for (const TraceCommit &tc : pendingTraceCommits) {
        out.u64(tc.lastToken);
        out.u64(tc.insts);
    }
    out.u64(hotInstsCommitted);

    out.boolean(optJob.has_value());
    if (optJob.has_value()) {
        tracecache::saveTrace(optJob->trace, out);
        out.u64(optJob->doneAt);
    }

    saveTid(trainPrevTid, out);
    saveTid(trainPrevPrevTid, out);

    out.u8(static_cast<std::uint8_t>(lastSide));
    for (bool dirty : dirtySinceSwitch)
        out.boolean(dirty);
    out.u32(dirtyCount);

    out.u32(static_cast<std::uint32_t>(lookahead.size()));
    for (std::size_t i = 0; i < lookahead.size(); ++i)
        saveDynInst(lookahead[i], out);

    // --- simulator-owned stats ---
    out.u64(st.coldCondBranches.value());
    out.u64(st.coldBranchMispredicts.value());
    out.u64(st.tracePredictionsMade.value());
    out.u64(st.traceMispredictsSeen.value());
    out.u64(st.traceEndRedirects.value());
    out.u64(st.tpLookupCount.value());
    out.u64(st.tpHitCount.value());
    out.u64(st.tcMissAfterPredictCount.value());
    out.u64(st.candidateCount.value());
    out.u64(st.instsFromTraceCache.value());
    out.u64(st.uopsFromTraceCacheDispatched.value());
    out.u64(st.uopsFromColdDispatched.value());
    out.u64(st.tracesInsertedCount.value());
    out.u64(st.tracesOptimizedCount.value());
    out.u64(st.traceExecutionsCount.value());
    out.u64(st.optimizedTraceExecs.value());
    out.u64(st.hotExecUops.value());
    out.u64(st.hotExecOrigUops.value());
    out.f64(st.sumUopReduction);
    out.f64(st.sumDepReduction);

    out.u64(sampleSt.windows);
    out.f64(sampleSt.coverage);
    out.f64(sampleSt.ciIpc);
    out.f64(sampleSt.ciEnergy);

    // --- components ---
    source->saveState(out);
    hierarchy->saveState(out);
    branchPredictor->saveState(out);
    if (cfg.hasTraceCache) {
        selector->saveState(out);
        hotFilter->saveState(out);
        blazeFilter->saveState(out);
        traceCache->saveState(out);
        tracePredictor->saveState(out);
    }
    coldCorePtr->saveState(out);
    if (splitMode)
        hotCorePtr->saveState(out);
    for (const auto &g : gates)
        g.saveState(out);
    for (unsigned e = 0; e < power::numPowerEvents; ++e)
        out.u64(coldAcct.count(static_cast<PowerEvent>(e)));
    for (unsigned e = 0; e < power::numPowerEvents; ++e)
        out.u64(hotAcct.count(static_cast<PowerEvent>(e)));
    out.boolean(cosim != nullptr);
    if (cosim)
        cosim->saveState(out);
}

void
ParrotSimulator::loadStateBlob(serial::Reader &in)
{
    // --- fetch-state machine ---
    cycle = in.u64();
    resumeAt = in.u64();
    mode = in.u8() == 1 ? Mode::Hot : Mode::Cold;
    fetchedInsts = in.u64();
    sourceDry = in.boolean();
    ffInsts = in.u64();

    pendingResolve.reset();
    if (in.boolean()) {
        PendingResolve pr;
        const std::uint8_t which = in.u8();
        if (which == 0) {
            pr.core = coldCorePtr.get();
        } else if (which == 1 && splitMode) {
            pr.core = hotCorePtr.get();
        } else {
            throw serial::Error(
                "checkpoint names a core this model does not have");
        }
        pr.token = in.u64();
        pr.penalty = in.u32();
        pendingResolve = pr;
    }

    // Active-trace coordinate; resolved after the trace cache loads.
    const std::uint8_t trace_kind = in.u8();
    const std::uint64_t trace_idx = in.u64();
    if (trace_kind != 0 && !cfg.hasTraceCache)
        throw serial::Error("checkpoint holds a trace but this model "
                            "has no trace cache");

    activeWindow.clear();
    const std::uint32_t n_window = in.u32();
    for (std::uint32_t i = 0; i < n_window; ++i)
        activeWindow.push_back(loadDynInst(in, *load.program));
    hotUopIdx = in.u64();
    hotUopLimit = in.u64();
    hotAborted = in.boolean();
    hotEndRedirect = in.boolean();
    hotEndBranchToken = in.u64();
    hotEndBranchSeen = in.boolean();
    lastHotToken = in.u64();

    pendingTraceCommits.clear();
    const std::uint32_t n_commits = in.u32();
    for (std::uint32_t i = 0; i < n_commits; ++i) {
        TraceCommit tc;
        tc.lastToken = in.u64();
        tc.insts = in.u64();
        pendingTraceCommits.push_back(tc);
    }
    hotInstsCommitted = in.u64();

    const auto resolve = [this](Addr pc) {
        return load.program->instAt(pc);
    };

    optJob.reset();
    if (in.boolean()) {
        OptJob job;
        job.trace = tracecache::loadTrace(in, resolve);
        job.doneAt = in.u64();
        optJob = std::move(job);
    }

    trainPrevTid = loadTid(in);
    trainPrevPrevTid = loadTid(in);

    const std::uint8_t side = in.u8();
    if (side > 2)
        throw serial::Error("checkpoint side-switch state is invalid");
    lastSide = static_cast<Side>(side);
    for (bool &dirty : dirtySinceSwitch)
        dirty = in.boolean();
    dirtyCount = in.u32();

    lookahead.clear();
    const std::uint32_t n_lookahead = in.u32();
    for (std::uint32_t i = 0; i < n_lookahead; ++i)
        lookahead.pushBack(loadDynInst(in, *load.program));

    // --- simulator-owned stats ---
    st.coldCondBranches.restore(in.u64());
    st.coldBranchMispredicts.restore(in.u64());
    st.tracePredictionsMade.restore(in.u64());
    st.traceMispredictsSeen.restore(in.u64());
    st.traceEndRedirects.restore(in.u64());
    st.tpLookupCount.restore(in.u64());
    st.tpHitCount.restore(in.u64());
    st.tcMissAfterPredictCount.restore(in.u64());
    st.candidateCount.restore(in.u64());
    st.instsFromTraceCache.restore(in.u64());
    st.uopsFromTraceCacheDispatched.restore(in.u64());
    st.uopsFromColdDispatched.restore(in.u64());
    st.tracesInsertedCount.restore(in.u64());
    st.tracesOptimizedCount.restore(in.u64());
    st.traceExecutionsCount.restore(in.u64());
    st.optimizedTraceExecs.restore(in.u64());
    st.hotExecUops.restore(in.u64());
    st.hotExecOrigUops.restore(in.u64());
    st.sumUopReduction = in.f64();
    st.sumDepReduction = in.f64();

    sampleSt.windows = in.u64();
    sampleSt.coverage = in.f64();
    sampleSt.ciIpc = in.f64();
    sampleSt.ciEnergy = in.f64();

    // --- components ---
    source->loadState(in);
    hierarchy->loadState(in);
    branchPredictor->loadState(in);
    if (cfg.hasTraceCache) {
        selector->loadState(in, resolve);
        hotFilter->loadState(in);
        blazeFilter->loadState(in);
        traceCache->loadState(in, resolve);
        tracePredictor->loadState(in);
    }
    coldCorePtr->loadState(in);
    if (splitMode)
        hotCorePtr->loadState(in);
    for (auto &g : gates)
        g.loadState(in);
    for (unsigned e = 0; e < power::numPowerEvents; ++e)
        coldAcct.restore(static_cast<PowerEvent>(e), in.u64());
    for (unsigned e = 0; e < power::numPowerEvents; ++e)
        hotAcct.restore(static_cast<PowerEvent>(e), in.u64());
    const bool had_cosim = in.boolean();
    if (had_cosim != (cosim != nullptr)) {
        throw serial::Error(
            "checkpoint cosim mode does not match this run");
    }
    if (cosim)
        cosim->loadState(in);

    // Re-materialize the active-trace reference now that the trace
    // cache holds its contents again.
    if (trace_kind == 0) {
        activeTrace = tracecache::TraceRef{};
    } else if (trace_kind == 1) {
        activeTrace = traceCache->refAtSlot(trace_idx);
    } else if (trace_kind == 2) {
        activeTrace = traceCache->refInLimbo(trace_idx);
    } else {
        throw serial::Error("checkpoint active-trace kind is invalid");
    }
    if (trace_kind != 0 && hotUopLimit > activeTrace->uops.size())
        throw serial::Error("checkpoint hot-dispatch cursor is out of "
                            "range for its trace");
}

void
ParrotSimulator::saveCheckpoint(const std::string &path) const
{
    serial::Writer w;
    saveStateBlob(w);
    CheckpointMeta meta;
    meta.model = cfg.name;
    meta.app = load.profile.name;
    meta.seed = load.profile.seed;
    meta.position = position();
    meta.instBudget = lastInstBudget;
    writeCheckpointFile(path, meta, w.takeBytes());
}

void
ParrotSimulator::loadCheckpoint(const std::string &path)
{
    std::string state;
    const CheckpointMeta meta = readCheckpointFile(path, state);
    if (meta.model != cfg.name) {
        throw CheckpointFormatError(
            CheckpointError::ModelMismatch,
            "checkpoint was saved by model '" + meta.model +
                "', not '" + cfg.name + "'");
    }
    if (meta.app != load.profile.name) {
        throw CheckpointFormatError(
            CheckpointError::AppMismatch,
            "checkpoint was saved for application '" + meta.app +
                "', not '" + load.profile.name + "'");
    }
    try {
        serial::Reader in(state);
        loadStateBlob(in);
        if (!in.atEnd())
            throw serial::Error("bytes remain after the state blob");
    } catch (const serial::Error &e) {
        throw CheckpointFormatError(
            CheckpointError::BadState,
            std::string("checkpoint state does not fit this model: ") +
                e.what());
    }
}

} // namespace parrot::sim

