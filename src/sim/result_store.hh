/**
 * @file
 * Durable, concurrency-safe memo of simulation results keyed by
 * (model, app, instruction budget) — the persistence substrate shared
 * by the figure benches and the multi-process campaign runner.
 *
 * Durability model (single process, PR 5): every completed cell is
 * appended to an O_APPEND + fsync journal the moment it finishes, so a
 * `kill -9` mid-suite loses at most the in-flight cells; on clean
 * destruction the file is compacted (atomic write-temp/fsync/rename in
 * sorted key order), making an interrupted-then-resumed run's cache
 * byte-identical to an uninterrupted one.
 *
 * Concurrency model (multi-process, this layer):
 *
 *  - Appends and compactions share an flock(2) on `<path>.lock`:
 *    appends take it shared, compaction exclusive, so a compactor's
 *    read-merge-replace cycle can neither tear a row nor race another
 *    compactor.
 *  - Compaction RE-READS the on-disk cache under the lock and merges
 *    rows journaled by other processes since load() instead of
 *    rewriting from in-memory state alone — two processes pointed at
 *    the same cache file no longer clobber each other's rows at
 *    destruction time.
 *  - After another process's compaction renames the file away, the
 *    journal detects the orphaned inode and reopens before the next
 *    append (AppendJournal::reopenIfRenamed).
 *  - Campaign workers journal into per-worker shards
 *    (`<path>.w<N>`, same wire format); mergeShards() folds every
 *    shard plus the main file into the memo under the exclusive lock,
 *    republishes atomically in canonical key order, and removes the
 *    shards. Serial, threaded and multi-process runs all converge to
 *    byte-identical cache files.
 *
 * Merge policy everywhere: an on-disk row for an unknown key is
 * adopted; for a known key the in-memory result wins unless it is a
 * tombstone and the disk row is healthy (another process's retry
 * succeeded). Deterministic, so merge order never changes the bytes.
 *
 * Any persistence failure (read-only dir, ENOSPC) is detected, warned
 * about once, and disables caching for the rest of the run instead of
 * silently dropping rows. Set PARROT_BENCH_NO_CACHE=1 to opt out.
 */

#ifndef PARROT_SIM_RESULT_STORE_HH
#define PARROT_SIM_RESULT_STORE_HH

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/atomic_file.hh"
#include "sim/runner.hh"
#include "workload/apps.hh"

namespace parrot::sim
{

class ResultStore
{
  public:
    /** Opens (and loads) the cache file; `opts` configures the
     * embedded SuiteRunner that computes uncached cells. */
    explicit ResultStore(const std::string &path, RunOptions opts = {});

    /** Merge-compacts the cache (atomic rewrite in canonical order)
     * when this run added or discarded anything. */
    ~ResultStore();

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    /** Fetch or compute one result. */
    SimResult get(const std::string &model,
                  const workload::SuiteEntry &entry);

    /**
     * Fetch or compute the full suite for one model. Uncached entries
     * run concurrently on the runner's worker pool and are journaled
     * as they complete; results (and the compacted cache file) are
     * identical to serial runs.
     */
    std::vector<SimResult> getSuite(
        const std::string &model,
        const std::vector<workload::SuiteEntry> &suite);

    /** The calibrated Pmax (cached like any other result). */
    double pmax();

    /** Is this (model, app) cell already memoized (healthy OR
     * tombstoned) at the store's instruction budget? */
    bool cached(const std::string &model, const std::string &app) const;

    /** Peek at a memoized cell without computing it; nullptr when
     * absent. */
    const SimResult *peek(const std::string &model,
                          const std::string &app) const;

    /** The canonical memo key for a cell at this store's budget. */
    std::string cellKey(const std::string &model,
                        const std::string &app) const;

    /**
     * Fold every per-worker journal shard (`<path>.w*`) plus any rows
     * other processes appended to the main file into the memo, then
     * compact atomically and delete the merged shards — all under the
     * exclusive file lock. The campaign coordinator calls this after
     * each worker round (and once at startup to adopt shards left by
     * a killed campaign). Returns the number of rows newly adopted.
     */
    std::size_t mergeShards();

    /** Shard journal path for worker `index` of this store's cache. */
    std::string shardPath(unsigned index) const;

    /** True when any memoized cell (loaded or just computed) is a
     * tombstone — some figure cells render as "-". */
    bool hadFailures() const;

    /** Number of memoized tombstone cells. */
    std::size_t tombstoneCount() const;

    /**
     * What a figure driver's main() should return: 0 when every cell
     * is healthy, 3 (cli::kExitDegraded) when any cell is a tombstone
     * — distinct from the usage-error exit 2 and the cosim-mismatch
     * exit 1, so CI can tell "figures degraded" from "binary crashed".
     */
    int exitCode() const;

    const RunOptions &options() const { return runner.options(); }

  private:
    void load();
    void append(const std::string &key, const SimResult &r);
    /** Warn once and stop persisting for the rest of the run. */
    void disableCache(const std::string &reason);
    /** Merge-compact under the exclusive lock; when `merge_shards` is
     * set, shard files are folded in and deleted too. Returns rows
     * newly adopted from disk. */
    std::size_t compact(bool merge_shards);
    /** Discover existing `<path>.w*` shard files, sorted. */
    std::vector<std::string> findShards() const;

    std::string path;
    bool enabled = true;
    std::size_t discardedLines = 0; //!< malformed lines seen by load()
    std::size_t appendedRows = 0;   //!< journal rows this run
    std::mutex storeMutex;          //!< workers append concurrently
    atomic_file::AppendJournal journal;
    atomic_file::FileLock fileLock; //!< cross-process append/compact lock
    std::map<std::string, SimResult> memo;
    SuiteRunner runner;
    bool pmaxReady = false;
    double pmaxValue = 0.0;
};

} // namespace parrot::sim

#endif // PARROT_SIM_RESULT_STORE_HH
