#include "sim/config_file.hh"

#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>

#include "common/logging.hh"
#include "power/power_state.hh"

namespace parrot::sim
{

namespace
{

/** Trim leading/trailing whitespace. */
std::string
trim(const std::string &s)
{
    auto begin = s.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    auto end = s.find_last_not_of(" \t\r");
    return s.substr(begin, end - begin + 1);
}

unsigned
parseUnsigned(const std::string &value, const std::string &key,
              const std::string &origin)
{
    char *end = nullptr;
    unsigned long v = std::strtoul(value.c_str(), &end, 0);
    if (end == value.c_str() || *end != '\0')
        PARROT_FATAL("%s: bad unsigned value '%s' for key '%s'",
                     origin.c_str(), value.c_str(), key.c_str());
    return static_cast<unsigned>(v);
}

double
parseDouble(const std::string &value, const std::string &key,
            const std::string &origin)
{
    char *end = nullptr;
    double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0')
        PARROT_FATAL("%s: bad number '%s' for key '%s'", origin.c_str(),
                     value.c_str(), key.c_str());
    return v;
}

bool
parseBool(const std::string &value, const std::string &key,
          const std::string &origin)
{
    if (value == "true" || value == "yes" || value == "1")
        return true;
    if (value == "false" || value == "no" || value == "0")
        return false;
    PARROT_FATAL("%s: bad boolean '%s' for key '%s'", origin.c_str(),
                 value.c_str(), key.c_str());
}

power::GateMode
parseGateModeOrDie(const std::string &value, const std::string &key,
                   const std::string &origin)
{
    power::GateMode mode;
    if (!power::parseGateMode(value, mode))
        PARROT_FATAL("%s: bad gate mode '%s' for key '%s' "
                     "(expected off|clock|power)",
                     origin.c_str(), value.c_str(), key.c_str());
    return mode;
}

/** The key table: one entry per settable field. */
using Setter = std::function<void(ModelConfig &, const std::string &,
                                  const std::string &,
                                  const std::string &)>;

const std::map<std::string, Setter> &
keyTable()
{
    static const std::map<std::string, Setter> table = [] {
        std::map<std::string, Setter> t = {
        {"name",
         [](ModelConfig &c, const std::string &v, const std::string &,
            const std::string &) { c.name = v; }},

        // Feature switches.
        {"trace_cache.enabled",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) { c.hasTraceCache = parseBool(v, k, o); }},
        {"optimizer.enabled",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) { c.hasOptimizer = parseBool(v, k, o); }},
        {"split_core",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) { c.splitCore = parseBool(v, k, o); }},
        {"cosim",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) { c.cosim = parseBool(v, k, o); }},
        {"stats_interval",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) {
             c.statsInterval = parseUnsigned(v, k, o);
         }},
        {"trace_file",
         [](ModelConfig &c, const std::string &v, const std::string &,
            const std::string &) { c.traceFile = v; }},
        {"sample.window",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) {
             c.sampleWindow = parseUnsigned(v, k, o);
         }},
        {"sample.stride",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) {
             c.sampleStride = parseUnsigned(v, k, o);
         }},

        // Cold (or unified) core.
        {"core.width",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) {
             c.coldCore.width = parseUnsigned(v, k, o);
             c.coldCore.issueWidth = c.coldCore.width;
         }},
        {"core.rob",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) { c.coldCore.robSize = parseUnsigned(v, k, o); }},
        {"core.iq",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) { c.coldCore.iqSize = parseUnsigned(v, k, o); }},
        {"core.alu",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) { c.coldCore.numAlu = parseUnsigned(v, k, o); }},
        {"core.fp",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) { c.coldCore.numFp = parseUnsigned(v, k, o); }},
        {"core.mem_ports",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) { c.coldCore.numMem = parseUnsigned(v, k, o); }},
        {"core.muldiv",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) { c.coldCore.numMulDiv = parseUnsigned(v, k, o); }},
        {"core.mshrs",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) { c.coldCore.numMshrs = parseUnsigned(v, k, o); }},
        {"core.mispredict_penalty",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) {
             c.coldCore.mispredictPenalty = parseUnsigned(v, k, o);
         }},

        // Hot core (split configurations).
        {"hot_core.width",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) {
             c.hotCore.width = parseUnsigned(v, k, o);
             c.hotCore.issueWidth = c.hotCore.width;
         }},
        {"hot_core.rob",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) { c.hotCore.robSize = parseUnsigned(v, k, o); }},
        {"hot_core.iq",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) { c.hotCore.iqSize = parseUnsigned(v, k, o); }},

        // Front end.
        {"fetch.bytes",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) { c.decoder.fetchBytes = parseUnsigned(v, k, o); }},
        {"decode.width",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) { c.decoder.width = parseUnsigned(v, k, o); }},
        {"decode.weight_limit",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) { c.decoder.weightLimit = parseUnsigned(v, k, o); }},
        {"branch_predictor.entries",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) {
             c.branchPredictor.numEntries = parseUnsigned(v, k, o);
         }},
        {"btb.entries",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) {
             c.branchPredictor.btbEntries = parseUnsigned(v, k, o);
         }},

        // Trace unit.
        {"trace_cache.entries",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) { c.traceCache.numEntries = parseUnsigned(v, k, o); }},
        {"trace_cache.assoc",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) { c.traceCache.assoc = parseUnsigned(v, k, o); }},
        {"trace_predictor.entries",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) {
             c.tracePredictor.numEntries = parseUnsigned(v, k, o);
         }},
        {"hot_filter.entries",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) { c.hotFilter.entries = parseUnsigned(v, k, o); }},
        {"hot_filter.threshold",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) { c.hotFilter.threshold = parseUnsigned(v, k, o); }},
        {"blaze_filter.entries",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) { c.blazeFilter.entries = parseUnsigned(v, k, o); }},
        {"blaze_filter.threshold",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) { c.blazeFilter.threshold = parseUnsigned(v, k, o); }},
        {"optimizer.latency",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) {
             c.optimizer.latencyCycles = parseUnsigned(v, k, o);
         }},

        // Memory hierarchy.
        {"l1i.kb",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) {
             c.memory.l1i.sizeBytes = parseUnsigned(v, k, o) * 1024ull;
         }},
        {"l1d.kb",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) {
             c.memory.l1d.sizeBytes = parseUnsigned(v, k, o) * 1024ull;
         }},
        {"l2.kb",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) {
             c.memory.l2.sizeBytes = parseUnsigned(v, k, o) * 1024ull;
         }},
        {"l1d.prefetch",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) {
             c.memory.l1dNextLinePrefetch = parseBool(v, k, o);
         }},
        {"l1i.prefetch",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) {
             c.memory.l1iNextLinePrefetch = parseBool(v, k, o);
         }},
        {"mem.latency",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) { c.memory.memLatency = parseUnsigned(v, k, o); }},

        // Leakage.
        {"area_factor",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) { c.coreAreaFactor = parseDouble(v, k, o); }},

        // DVFS operating point.
        {"freq_ghz",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) { c.freqGHz = parseDouble(v, k, o); }},

        // Power gating, all units at once. "gate.mode" applies the
        // preset policy of that mode; threshold/wake_latency then
        // override (order matters, like every other key).
        {"gate.mode",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) {
             c.powerState.applyAll(parseGateModeOrDie(v, k, o));
         }},
        {"gate.threshold",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) {
             for (auto &p : c.powerState.unit)
                 p.sleepThreshold = parseUnsigned(v, k, o);
         }},
        {"gate.wake_latency",
         [](ModelConfig &c, const std::string &v, const std::string &k,
            const std::string &o) {
             for (auto &p : c.powerState.unit)
                 p.wakeLatency = parseUnsigned(v, k, o);
         }},
        };

        // Per-unit gate keys: gate.<unit>.{mode,threshold,wake_latency}.
        for (unsigned i = 0; i < power::numGatedUnits; ++i) {
            const auto u = static_cast<power::GatedUnit>(i);
            const std::string stem =
                std::string("gate.") + power::gatedUnitName(u) + ".";
            t.emplace(stem + "mode",
                      [u](ModelConfig &c, const std::string &v,
                          const std::string &k, const std::string &o) {
                          c.powerState.of(u) = power::defaultPolicyFor(
                              parseGateModeOrDie(v, k, o));
                      });
            t.emplace(stem + "threshold",
                      [u](ModelConfig &c, const std::string &v,
                          const std::string &k, const std::string &o) {
                          c.powerState.of(u).sleepThreshold =
                              parseUnsigned(v, k, o);
                      });
            t.emplace(stem + "wake_latency",
                      [u](ModelConfig &c, const std::string &v,
                          const std::string &k, const std::string &o) {
                          c.powerState.of(u).wakeLatency =
                              parseUnsigned(v, k, o);
                      });
        }
        return t;
    }();
    return table;
}

} // namespace

ModelConfig
parseModelConfig(const std::string &text, const std::string &origin)
{
    ModelConfig cfg = ModelConfig::make("N");
    bool first_directive = true;

    std::istringstream in(text);
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;

        auto eq = line.find('=');
        if (eq == std::string::npos)
            PARROT_FATAL("%s:%d: expected 'key = value', got '%s'",
                         origin.c_str(), line_no, line.c_str());
        std::string key = trim(line.substr(0, eq));
        std::string value = trim(line.substr(eq + 1));

        if (key == "base") {
            if (!first_directive)
                PARROT_FATAL("%s:%d: 'base' must be the first directive",
                             origin.c_str(), line_no);
            cfg = ModelConfig::make(value);
            first_directive = false;
            continue;
        }
        first_directive = false;

        auto it = keyTable().find(key);
        if (it == keyTable().end())
            PARROT_FATAL("%s:%d: unknown key '%s'", origin.c_str(),
                         line_no, key.c_str());
        it->second(cfg, value, key, origin);
    }

    cfg.validate();
    return cfg;
}

ModelConfig
loadModelConfig(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        PARROT_FATAL("cannot open config file '%s'", path.c_str());
    std::ostringstream text;
    text << in.rdbuf();
    return parseModelConfig(text.str(), path);
}

std::string
renderModelConfig(const ModelConfig &cfg)
{
    std::ostringstream out;
    out << "name = " << cfg.name << "\n";
    out << "trace_cache.enabled = "
        << (cfg.hasTraceCache ? "true" : "false") << "\n";
    out << "optimizer.enabled = "
        << (cfg.hasOptimizer ? "true" : "false") << "\n";
    out << "split_core = " << (cfg.splitCore ? "true" : "false") << "\n";
    out << "cosim = " << (cfg.cosim ? "true" : "false") << "\n";
    out << "stats_interval = " << cfg.statsInterval << "\n";
    if (!cfg.traceFile.empty())
        out << "trace_file = " << cfg.traceFile << "\n";
    if (cfg.sampleWindow > 0) {
        out << "sample.window = " << cfg.sampleWindow << "\n";
        out << "sample.stride = " << cfg.sampleStride << "\n";
    }
    out << "core.width = " << cfg.coldCore.width << "\n";
    out << "core.rob = " << cfg.coldCore.robSize << "\n";
    out << "core.iq = " << cfg.coldCore.iqSize << "\n";
    out << "core.alu = " << cfg.coldCore.numAlu << "\n";
    out << "core.fp = " << cfg.coldCore.numFp << "\n";
    out << "core.mem_ports = " << cfg.coldCore.numMem << "\n";
    out << "core.muldiv = " << cfg.coldCore.numMulDiv << "\n";
    out << "core.mshrs = " << cfg.coldCore.numMshrs << "\n";
    out << "core.mispredict_penalty = " << cfg.coldCore.mispredictPenalty
        << "\n";
    out << "hot_core.width = " << cfg.hotCore.width << "\n";
    out << "hot_core.rob = " << cfg.hotCore.robSize << "\n";
    out << "hot_core.iq = " << cfg.hotCore.iqSize << "\n";
    out << "fetch.bytes = " << cfg.decoder.fetchBytes << "\n";
    out << "decode.width = " << cfg.decoder.width << "\n";
    out << "decode.weight_limit = " << cfg.decoder.weightLimit << "\n";
    out << "branch_predictor.entries = "
        << cfg.branchPredictor.numEntries << "\n";
    out << "btb.entries = " << cfg.branchPredictor.btbEntries << "\n";
    if (cfg.hasTraceCache) {
        out << "trace_cache.entries = " << cfg.traceCache.numEntries
            << "\n";
        out << "trace_cache.assoc = " << cfg.traceCache.assoc << "\n";
        out << "trace_predictor.entries = "
            << cfg.tracePredictor.numEntries << "\n";
        out << "hot_filter.entries = " << cfg.hotFilter.entries << "\n";
        out << "hot_filter.threshold = " << cfg.hotFilter.threshold
            << "\n";
        out << "blaze_filter.entries = " << cfg.blazeFilter.entries
            << "\n";
        out << "blaze_filter.threshold = " << cfg.blazeFilter.threshold
            << "\n";
    }
    if (cfg.hasOptimizer)
        out << "optimizer.latency = " << cfg.optimizer.latencyCycles
            << "\n";
    out << "l1i.kb = " << cfg.memory.l1i.sizeBytes / 1024 << "\n";
    out << "l1d.kb = " << cfg.memory.l1d.sizeBytes / 1024 << "\n";
    out << "l2.kb = " << cfg.memory.l2.sizeBytes / 1024 << "\n";
    out << "l1d.prefetch = "
        << (cfg.memory.l1dNextLinePrefetch ? "true" : "false") << "\n";
    out << "l1i.prefetch = "
        << (cfg.memory.l1iNextLinePrefetch ? "true" : "false") << "\n";
    out << "mem.latency = " << cfg.memory.memLatency << "\n";
    out << "area_factor = " << cfg.coreAreaFactor << "\n";
    out << "freq_ghz = " << cfg.freqGHz << "\n";
    if (cfg.powerState.anyEnabled()) {
        for (unsigned i = 0; i < power::numGatedUnits; ++i) {
            const auto u = static_cast<power::GatedUnit>(i);
            const auto &p = cfg.powerState.of(u);
            if (!p.enabled())
                continue;
            const std::string stem =
                std::string("gate.") + power::gatedUnitName(u) + ".";
            out << stem << "mode = " << power::gateModeName(p.mode)
                << "\n";
            out << stem << "threshold = " << p.sleepThreshold << "\n";
            out << stem << "wake_latency = " << p.wakeLatency << "\n";
        }
    }
    return out.str();
}

} // namespace parrot::sim
