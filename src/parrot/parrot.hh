/**
 * @file
 * Umbrella header: the full public API of the PARROT reproduction.
 *
 * Typical use:
 * @code
 *   #include "parrot/parrot.hh"
 *
 *   auto entry = parrot::workload::findApp("swim");
 *   parrot::sim::SuiteRunner runner;
 *   auto result = runner.runOne("TON", entry);
 *   std::printf("IPC %.3f  energy %.3g\n", result.ipc,
 *               result.totalEnergy);
 * @endcode
 */

#ifndef PARROT_PARROT_HH
#define PARROT_PARROT_HH

#include "common/atomic_file.hh"
#include "common/bitutil.hh"
#include "common/counters.hh"
#include "common/fault.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/types.hh"

#include "stats/group.hh"
#include "stats/stats.hh"
#include "stats/table.hh"
#include "stats/timeseries.hh"

#include "isa/arch_state.hh"
#include "isa/inst.hh"
#include "isa/opcodes.hh"
#include "isa/registers.hh"
#include "isa/uop.hh"

#include "workload/apps.hh"
#include "workload/dyninst.hh"
#include "workload/executor.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"
#include "workload/program.hh"
#include "workload/source.hh"
#include "workload/trace_codec.hh"

#include "memory/cache.hh"
#include "memory/hierarchy.hh"

#include "frontend/branch_predictor.hh"
#include "frontend/decoder.hh"

#include "cpu/core_config.hh"
#include "cpu/ooo_core.hh"

#include "tracecache/constructor.hh"
#include "tracecache/filter.hh"
#include "tracecache/predictor.hh"
#include "tracecache/selector.hh"
#include "tracecache/tid.hh"
#include "tracecache/trace.hh"
#include "tracecache/trace_cache.hh"

#include "optimizer/dep_graph.hh"
#include "optimizer/equivalence.hh"
#include "optimizer/optimizer.hh"
#include "optimizer/passes.hh"

#include "verify/corpus.hh"
#include "verify/cosim.hh"
#include "verify/fuzzer.hh"
#include "verify/trace_fuzz.hh"

#include "power/account.hh"
#include "power/energy_model.hh"
#include "power/events.hh"

#include "sim/config_file.hh"
#include "sim/model_config.hh"
#include "sim/result.hh"
#include "sim/runner.hh"
#include "sim/simulator.hh"

#endif // PARROT_PARROT_HH
