/**
 * @file
 * The benchmark suite: the paper's 44 applications in five groups,
 * expressed as calibrated AppProfiles for the synthetic generator.
 */

#ifndef PARROT_WORKLOAD_APPS_HH
#define PARROT_WORKLOAD_APPS_HH

#include <string>
#include <vector>

#include "workload/profile.hh"

namespace parrot::workload
{

/** The full 44-application suite, grouped as in the paper (§3.4). */
std::vector<SuiteEntry> fullSuite();

/** Only the applications of one group. */
std::vector<SuiteEntry> groupSuite(BenchGroup group);

/**
 * A reduced suite (a few representative apps per group) for quick runs
 * and tests.
 */
std::vector<SuiteEntry> smallSuite();

/** Look up one application by name; fatal()s when unknown. */
SuiteEntry findApp(const std::string &name);

/** The paper's three "killer applications": flash, wupwise, perlbench. */
std::vector<SuiteEntry> killerApps();

} // namespace parrot::workload

#endif // PARROT_WORKLOAD_APPS_HH
