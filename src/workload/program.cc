#include "workload/program.hh"

namespace parrot::workload
{

std::size_t
Program::numStaticInsts() const
{
    std::size_t n = 0;
    for (const auto &proc : procs)
        for (const auto &block : proc.blocks)
            n += block.insts.size();
    return n;
}

std::size_t
Program::codeBytes() const
{
    std::size_t n = 0;
    for (const auto &proc : procs)
        for (const auto &block : proc.blocks)
            for (const auto &inst : block.insts)
                n += inst.length;
    return n;
}

std::size_t
Program::numStaticUops() const
{
    std::size_t n = 0;
    for (const auto &proc : procs)
        for (const auto &block : proc.blocks)
            for (const auto &inst : block.insts)
                n += inst.uops.size();
    return n;
}

const isa::MacroInst *
Program::instAt(Addr pc) const
{
    auto it = pcIndex.find(pc);
    return it == pcIndex.end() ? nullptr : it->second;
}

void
Program::buildIndex()
{
    pcIndex.clear();
    for (auto &proc : procs) {
        for (auto &block : proc.blocks) {
            for (auto &inst : block.insts) {
                // Memoize per-static-instruction decode metadata here,
                // before the program is shared (read-only) across
                // simulation threads: the decoder and power model then
                // never recompute it per dynamic instance.
                inst.cachedDecodeWeight =
                    static_cast<std::uint8_t>(inst.computeDecodeWeight());
                pcIndex.emplace(inst.pc, &inst);
            }
        }
    }
}

} // namespace parrot::workload
