/**
 * @file
 * The `.ptrace` recorded-trace format and its ingestion frontend.
 *
 * A `.ptrace` file is a self-describing, versioned, compressed binary
 * capture of one application's committed dynamic-instruction stream —
 * the L-trace idea (compressed branch/jump core traces decoded against
 * the static image) adapted to this simulator's synthetic ISA:
 *
 * ```
 *   bytes 0-3   magic "PTRC"
 *   bytes 4-5   u16 LE format version (currently 1)
 *   bytes 6-7   u16 LE reserved, must be 0
 *   section     HEADER    u32 LE payload length, u32 LE CRC32, payload
 *   section     PROGRAM   u32 LE payload length, u32 LE CRC32, payload
 *   sections    RECORDS   repeated [u32 LE length, u32 LE CRC32, payload]
 * ```
 *
 * The HEADER carries the application identity (name, group, seed), the
 * record count, the intended simulation budget and the stream's first
 * pc. The PROGRAM section is a full-fidelity varint/delta encoding of
 * the static program image (procedures, blocks, macro-instructions,
 * uops, block terminators), so the decoded program is deep-equal to the
 * recorded one. Each RECORDS block packs up to `recordsPerBlock`
 * dynamic records: because the committed stream is sequential (pc ==
 * previous nextPc), a record stores only a 2-bit next-pc class
 * (sequential | static taken target | explicit zigzag delta), zigzag
 * deltas for the data addresses of its load/store uops, and one bit in
 * the per-block branch-outcome bitstream when the instruction is a CTI.
 *
 * Every section is independently CRC-protected, and the decoder treats
 * the input as hostile: any structural violation raises a
 * TraceFormatError with a stable category (never a crash, hang,
 * over-allocation or silent mis-simulation) — the property the decoder
 * fuzzer (verify/trace_fuzz.hh) and the corrupt-input test matrix
 * enforce. Files are written through the crash-safe atomic-file layer.
 */

#ifndef PARROT_WORKLOAD_TRACE_CODEC_HH
#define PARROT_WORKLOAD_TRACE_CODEC_HH

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hh"
#include "workload/profile.hh"
#include "workload/program.hh"
#include "workload/source.hh"

namespace parrot::workload
{

/** Current `.ptrace` format version. */
inline constexpr std::uint16_t ptraceVersion = 1;

/** Default dynamic records per CRC-protected block. */
inline constexpr unsigned ptraceRecordsPerBlock = 4096;

/**
 * Safety margin appended past the intended simulation budget when
 * recording: the simulator's lookahead ring reads a bounded distance
 * past the last committed instruction, so a recording must carry a
 * little more stream than the budget it is meant to replay.
 */
inline constexpr std::uint64_t ptraceRecordMargin = 4096;

/**
 * Why a `.ptrace` input was rejected. Categories are stable across
 * releases (the rejection corpus keys on them); messages add detail.
 */
enum class TraceError : std::uint8_t
{
    Io,               //!< cannot read/write the file at all
    Empty,            //!< zero-length input
    BadMagic,         //!< leading bytes are not "PTRC"
    BadVersion,       //!< unsupported format version
    BadReserved,      //!< reserved header bytes are non-zero
    TruncatedHeader,  //!< input ends inside the fixed/header section
    TruncatedProgram, //!< input ends inside the program section
    TruncatedRecords, //!< mid-record EOF inside a record block
    HeaderCrc,        //!< header payload CRC mismatch
    ProgramCrc,       //!< program payload CRC mismatch
    RecordCrc,        //!< record block payload CRC mismatch
    VarintOverrun,    //!< varint continuation bytes never terminate
    BadHeader,        //!< header fields are structurally invalid
    BadProgram,       //!< program image is structurally invalid
    BadRecord,        //!< dynamic record inconsistent with the program
    CountMismatch,    //!< declares more records/uops than it contains
    TrailingBytes,    //!< bytes remain after the declared final block
    NumErrors
};

/** Stable category name ("BadMagic", ...). */
const char *traceErrorName(TraceError e);

/** Parse a category name; NumErrors when unknown. */
TraceError traceErrorFromName(const std::string &name);

/** Thrown by the decoder on any malformed `.ptrace` input. */
class TraceFormatError : public std::runtime_error
{
  public:
    TraceFormatError(TraceError category, const std::string &message)
        : std::runtime_error(message), cat(category)
    {}

    TraceError category() const { return cat; }

  private:
    TraceError cat;
};

/**
 * A fully decoded and validated trace: the reconstructed static
 * program plus the (still block-encoded) dynamic stream. Immutable and
 * shareable across concurrent simulations; every TraceReplaySource
 * keeps only its own cursor into the shared bytes.
 */
struct TraceData
{
    // --- identity (from the header) ---
    std::string appName;
    BenchGroup group = BenchGroup::SpecInt;
    std::uint64_t seed = 0;

    // --- stream shape (from the header, verified against the blocks) ---
    std::uint64_t numRecords = 0;     //!< dynamic macro-instructions
    std::uint64_t numUops = 0;        //!< dynamic uops
    std::uint64_t numCtis = 0;        //!< dynamic CTI instructions
    std::uint64_t intendedBudget = 0; //!< budget the recording targeted
    Addr firstPc = 0;                 //!< pc of the first record
    unsigned recordsPerBlock = ptraceRecordsPerBlock;

    /** Reconstructed static image (index built, decode weights memoized). */
    std::shared_ptr<Program> program;

    /** The complete validated file bytes (blocks are decoded lazily). */
    std::string bytes;

    /** One record block: offsets into `bytes`. */
    struct BlockRef
    {
        std::uint64_t recordsOff = 0; //!< first record byte
        std::uint64_t recordsLen = 0;
        std::uint64_t bitsOff = 0;    //!< branch-outcome bitstream
        std::uint64_t numRecords = 0;
        std::uint64_t numCtis = 0;
    };
    std::vector<BlockRef> blocks;
};

/**
 * Decode and fully validate an in-memory `.ptrace` image. Every block
 * is CRC-checked and every record is decoded once against the
 * reconstructed program, so a returned TraceData replays infallibly.
 * @throws TraceFormatError on any malformed input.
 */
std::shared_ptr<const TraceData> decodeTraceBytes(std::string bytes);

/** Read and decode a `.ptrace` file. @throws TraceFormatError. */
std::shared_ptr<const TraceData> loadTraceFile(const std::string &path);

/** Profile stub describing a trace workload (name/group/seed from the
 * header; the statistical knobs are irrelevant for replay). */
AppProfile traceProfile(const TraceData &trace);

/** Suite cell replaying `path` (budget = the recorded intended budget).
 * Fully validates the file. @throws TraceFormatError. */
SuiteEntry traceSuiteEntry(const std::string &path);

/**
 * Replay frontend: streams the recorded committed stream back out as
 * DynInsts whose inst pointers land in the reconstructed program.
 * Replaying a validated trace is infallible and bit-identical to the
 * executor stream it recorded.
 */
class TraceReplaySource : public WorkloadSource
{
  public:
    explicit TraceReplaySource(std::shared_ptr<const TraceData> trace);

    bool next(DynInst &out) override;
    void reset() override;

    /** Records produced so far. */
    std::uint64_t produced() const { return seq; }

    /** Total records in the backing trace. */
    std::uint64_t totalRecords() const { return data->numRecords; }

    /** Serialize the replay cursor (the shared TraceData itself is
     * reconstructed from the `.ptrace` file on resume). */
    void saveState(serial::Writer &out) const override;

    /** Restore a checkpointed cursor over the same trace. */
    void loadState(serial::Reader &in) override;

  private:
    std::shared_ptr<const TraceData> data;

    std::size_t blockIdx = 0;      //!< current block
    std::uint64_t recInBlock = 0;  //!< records consumed in this block
    std::uint64_t byteOff = 0;     //!< cursor into the block's records
    std::uint64_t ctiInBlock = 0;  //!< branch bits consumed in block
    Addr pc = 0;                   //!< pc of the next record
    Addr prevMemAddr = 0;          //!< delta base for data addresses
    std::uint64_t seq = 0;
};

/**
 * Streaming `.ptrace` encoder: construct over the static program and
 * identity metadata, append the committed stream in order, then
 * finish() to obtain the complete file image.
 */
class TraceWriter
{
  public:
    /**
     * @param program static image the appended stream executes over.
     * @param profile identity metadata (name, group, seed) stamped into
     *        the header.
     * @param intended_budget the simulation budget this recording is
     *        meant to serve (callers append a margin past it).
     */
    TraceWriter(const Program &program, const AppProfile &profile,
                std::uint64_t intended_budget,
                unsigned records_per_block = ptraceRecordsPerBlock);

    /** Append one committed instruction (must be stream-sequential). */
    void append(const DynInst &dyn);

    /** Seal the file and return its bytes. No appends after this. */
    std::string finish();

    std::uint64_t recordsAppended() const { return numRecords; }
    std::uint64_t uopsAppended() const { return numUops; }
    std::uint64_t ctisAppended() const { return numCtis; }

  private:
    void flushBlock();

    const Program &prog;
    AppProfile meta;
    std::uint64_t intendedBudget;
    unsigned recordsPerBlock;

    std::string programSection;
    std::string blockSections;   //!< finished, framed record blocks
    std::string blockRecords;    //!< open block: record bytes
    std::vector<bool> blockBits; //!< open block: branch outcomes
    std::uint64_t blockCount = 0;

    std::uint64_t numRecords = 0;
    std::uint64_t numUops = 0;
    std::uint64_t numCtis = 0;
    Addr firstPc = 0;
    Addr expectPc = 0;
    Addr prevMemAddr = 0;
    bool finished = false;
};

/** Summary returned by recordTrace (and printed by the tools). */
struct TraceRecordStats
{
    std::string path;
    std::uint64_t records = 0; //!< budget + margin
    std::uint64_t uops = 0;
    std::uint64_t ctis = 0;
    std::uint64_t fileBytes = 0;
    std::uint64_t intendedBudget = 0;
};

/**
 * Record a generator application to a `.ptrace` file: synthesize the
 * program, functionally execute `budget + ptraceRecordMargin`
 * instructions, encode, and publish via writeFileAtomic.
 * @throws TraceFormatError (category Io) when the file cannot be
 *         written.
 */
TraceRecordStats recordTrace(const SuiteEntry &entry,
                             std::uint64_t budget,
                             const std::string &path);

} // namespace parrot::workload

#endif // PARROT_WORKLOAD_TRACE_CODEC_HH
