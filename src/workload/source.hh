/**
 * @file
 * The workload-source abstraction: anything that can produce the
 * committed dynamic-instruction stream driving the trace-driven timing
 * simulators. Two backends exist today — the synthetic generator's
 * functional Executor and the recorded-trace replay frontend
 * (TraceReplaySource in trace_codec.hh) — and the simulator only ever
 * talks to this interface, so further backends (a live feed, a sampled
 * fast-forward stream) slot in without touching the machine model.
 */

#ifndef PARROT_WORKLOAD_SOURCE_HH
#define PARROT_WORKLOAD_SOURCE_HH

#include "common/serialize.hh"
#include "workload/dyninst.hh"

namespace parrot::workload
{

/**
 * Streaming producer of committed macro-instructions.
 *
 * Contract shared by every backend:
 *  - deterministic: the same source configuration always yields the
 *    identical stream (experiments are reproducible bit-for-bit);
 *  - sequential: each DynInst's pc equals the previous one's nextPc;
 *  - the DynInst::inst pointers stay valid for the lifetime of the
 *    Program the source was built over.
 */
class WorkloadSource
{
  public:
    virtual ~WorkloadSource() = default;

    /**
     * Produce the next committed macro-instruction.
     * @return false when the stream is exhausted (a finite recorded
     *         trace ran dry; the generator never exhausts).
     */
    virtual bool next(DynInst &out) = 0;

    /** Restart the stream from the beginning. */
    virtual void reset() = 0;

    /** @name Checkpoint hooks.
     * Backends that can serialize their position/state override both;
     * the default refuses, so a checkpoint over an unsupported backend
     * fails loudly instead of silently recording a resumable lie.
     * @{ */
    virtual void
    saveState(serial::Writer &) const
    {
        throw serial::Error(
            "this workload source does not support checkpointing");
    }

    virtual void
    loadState(serial::Reader &)
    {
        throw serial::Error(
            "this workload source does not support checkpointing");
    }
    /** @} */
};

} // namespace parrot::workload

#endif // PARROT_WORKLOAD_SOURCE_HH
