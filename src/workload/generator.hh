/**
 * @file
 * The synthetic program generator.
 *
 * Given an AppProfile, deterministically synthesizes a static Program
 * whose dynamic behaviour (under the companion Executor) reproduces the
 * profile's statistics: hot/cold concentration, branch predictability,
 * loop structure, instruction mix, memory locality and — critically for
 * the PARROT optimizer — *real* register dataflow with planted-but-
 * genuine optimization opportunities (dead code, foldable constant
 * chains, algebraically trivial operations, SIMDifiable pairs).
 */

#ifndef PARROT_WORKLOAD_GENERATOR_HH
#define PARROT_WORKLOAD_GENERATOR_HH

#include <memory>

#include "common/random.hh"
#include "workload/profile.hh"
#include "workload/program.hh"

namespace parrot::workload
{

/** Register conventions the generator plants at each procedure entry. */
namespace regconv
{
/** Scratch constant source (per-procedure random value). */
inline constexpr RegId regConst = 0;
/** Working-set address mask (power-of-two working set minus one). */
inline constexpr RegId regMask = 1;
/** Pointer-chase cursor (holds a data-region *offset*). */
inline constexpr RegId regChase = 14;
/** Stride-walk cursor (holds a data-region *offset*). */
inline constexpr RegId regStride = 15;
/** First/last general temp registers available to generated code. */
inline constexpr RegId firstTemp = 2;
inline constexpr RegId lastTemp = 11;
/** Scratch registers: written but never read by generated code, so
 * every non-final write to them is genuinely dead within a trace. */
inline constexpr RegId regScratch0 = 12;
inline constexpr RegId regScratch1 = 13;
} // namespace regconv

/** Base virtual address of the shared data region. */
inline constexpr Addr dataRegionBase = 0x10000000;

/** Base virtual address of the code segment. */
inline constexpr Addr codeRegionBase = 0x400000;

/**
 * Deterministic profile-driven program synthesizer.
 *
 * The same profile (including seed) always produces the identical
 * program, so every experiment is reproducible bit-for-bit.
 */
class ProgramGenerator
{
  public:
    explicit ProgramGenerator(const AppProfile &profile);

    /** Build the program (procedure 0 is the driver loop). */
    std::unique_ptr<Program> generate();

  private:
    struct BlockBuildState;

    /** Append the register-convention prologue to a procedure entry. */
    void emitPrologue(Block &block, Addr &pc, std::uint64_t ws_mask);

    /** Generate the straight-line body of one block. */
    void fillBlock(Block &block, Addr &pc, int n_insts, bool hot);

    /** Generate one non-CTI macro-instruction into the block. */
    void emitBodyInst(Block &block, Addr &pc, BlockBuildState &bbs,
                      bool hot);

    /** Append a Cmp/CmpImm + conditional-branch instruction pair. */
    void emitCondBranch(Block &block, Addr &pc, BlockBuildState &bbs);

    /** Append a single-uop CTI macro-instruction of the given type. */
    void emitCti(Block &block, Addr &pc, isa::CtiType type);

    /** Build one procedure (structured regions: runs, diamonds, loops). */
    Procedure buildProcedure(Addr &pc, bool hot, int num_callees,
                             int first_callee);

    /** Build the main driver procedure calling the others (needs the
     * already-built procedures to calibrate hot/cold call counts). */
    Procedure buildMain(Addr &pc, const std::vector<Procedure> &procs);

    /** Fix up CTI taken-target addresses once block layout is known. */
    void resolveTargets(Program &prog);

    /** Pick a source register with ILP-aware recency preference. */
    RegId pickSource(BlockBuildState &bbs);

    /** Pick a destination temp register. */
    RegId pickDest(BlockBuildState &bbs);

    /** Draw a macro-instruction byte length around the profile mean. */
    std::uint8_t drawInstLength(unsigned num_uops);

    /** Draw a strided or random 8-byte-aligned data offset. */
    std::int64_t drawDataOffset(BlockBuildState &bbs);

    const AppProfile prof;
    Rng rng;
    std::uint64_t wsMask = 0;
};

/** Convenience: generate the program for a profile. */
std::unique_ptr<Program> generateProgram(const AppProfile &profile);

} // namespace parrot::workload

#endif // PARROT_WORKLOAD_GENERATOR_HH
