/**
 * @file
 * The functional workload executor: walks a generated Program,
 * functionally executing every uop (real register and memory dataflow)
 * and resolving control statistically per the profile, producing the
 * committed dynamic-instruction stream that drives the trace-driven
 * timing simulators.
 */

#ifndef PARROT_WORKLOAD_EXECUTOR_HH
#define PARROT_WORKLOAD_EXECUTOR_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/random.hh"
#include "isa/arch_state.hh"
#include "workload/dyninst.hh"
#include "workload/profile.hh"
#include "workload/program.hh"
#include "workload/source.hh"

namespace parrot::workload
{

/**
 * Streaming executor over a static Program.
 *
 * Deterministic: the same (program, seed) pair always yields the same
 * dynamic stream. Branch directions come from per-branch bias or
 * pattern metadata; loop trip counts are drawn per loop entry; data
 * values flow through real uop semantics.
 */
class Executor : public WorkloadSource
{
  public:
    /**
     * @param program the static program (must outlive the executor).
     * @param profile the profile it was generated from (for the seed).
     */
    Executor(const Program &program, const AppProfile &profile);

    /**
     * Produce the next committed macro-instruction.
     * @return false when the program would leave main (never happens in
     *         generated programs; the caller stops at its budget).
     */
    bool next(DynInst &out) override;

    /** Restart execution from the beginning (state cleared). */
    void reset() override;

    /** Dynamic instructions executed so far. */
    std::uint64_t instsExecuted() const { return seq; }

    /** Dynamic uops executed so far. */
    std::uint64_t uopsExecuted() const { return uops; }

    /** Fraction of dynamic instructions executed in hot procedures. */
    double hotFraction() const;

    /** Read-only view of the architectural state (for tests). */
    const isa::ArchState &archState() const { return state; }

    /** Serialize the full execution state (position, RNG, registers,
     * memory, loop/pattern bookkeeping) to a checkpoint. */
    void saveState(serial::Writer &out) const override;

    /** Restore checkpointed execution state. */
    void loadState(serial::Reader &in) override;

  private:
    struct Frame
    {
        int proc;
        int block;
        /** Remaining trips for active loops, keyed by loop-branch
         * block index. */
        std::unordered_map<int, std::uint64_t> loopTrips;
    };

    /** Resolve the terminator of the current block; updates position. */
    void advance(const BlockTerm &term, bool &taken, Addr &next_pc);

    /** Address of the instruction that will execute next. */
    Addr upcomingPc() const;

    const Program &prog;
    const AppProfile prof;
    Rng rng;

    isa::ArchState state;
    std::vector<Frame> callStack;
    int curProc = 0;
    int curBlock = 0;
    std::size_t curInst = 0;

    /** Occurrence counters for pattern branches (keyed by branch pc). */
    std::unordered_map<Addr, std::uint32_t> patternPos;

    std::uint64_t seq = 0;
    std::uint64_t uops = 0;
    std::uint64_t hotInsts = 0;

    static constexpr std::size_t maxCallDepth = 48;
};

} // namespace parrot::workload

#endif // PARROT_WORKLOAD_EXECUTOR_HH
