#include "workload/trace_codec.hh"

#include <array>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "common/atomic_file.hh"
#include "common/logging.hh"
#include "isa/opcodes.hh"
#include "isa/registers.hh"
#include "workload/executor.hh"
#include "workload/generator.hh"

namespace parrot::workload
{

namespace
{

// ---------------------------------------------------------------------
// Category names.
// ---------------------------------------------------------------------

constexpr const char *kErrorNames[] = {
    "Io",             "Empty",           "BadMagic",
    "BadVersion",     "BadReserved",     "TruncatedHeader",
    "TruncatedProgram", "TruncatedRecords", "HeaderCrc",
    "ProgramCrc",     "RecordCrc",       "VarintOverrun",
    "BadHeader",      "BadProgram",      "BadRecord",
    "CountMismatch",  "TrailingBytes",
};
static_assert(sizeof(kErrorNames) / sizeof(kErrorNames[0]) ==
                  static_cast<unsigned>(TraceError::NumErrors),
              "kErrorNames out of sync with TraceError");

[[noreturn]] void
reject(TraceError cat, const std::string &message)
{
    throw TraceFormatError(cat, message);
}

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, the zlib polynomial).
// ---------------------------------------------------------------------

constexpr std::array<std::uint32_t, 256> kCrcTable = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
        t[i] = c;
    }
    return t;
}();

std::uint32_t
crc32(const char *data, std::size_t len)
{
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < len; ++i)
        c = kCrcTable[(c ^ static_cast<std::uint8_t>(data[i])) & 0xFFu] ^
            (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------------
// Little-endian primitives and varints.
// ---------------------------------------------------------------------

void
putU16(std::string &out, std::uint16_t v)
{
    out.push_back(static_cast<char>(v & 0xFF));
    out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void
putU64Raw(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint16_t
getU16(const std::string &bytes, std::size_t off)
{
    return static_cast<std::uint16_t>(
        static_cast<std::uint8_t>(bytes[off]) |
        (static_cast<std::uint8_t>(bytes[off + 1]) << 8));
}

std::uint32_t
getU32(const std::string &bytes, std::size_t off)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | static_cast<std::uint8_t>(bytes[off + i]);
    return v;
}

void
putVarint(std::string &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<char>((v & 0x7F) | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void
putZigzag(std::string &out, std::int64_t v)
{
    putVarint(out, zigzag(v));
}

/** Delta between two addresses as a wrapping signed value. */
std::int64_t
addrDelta(Addr to, Addr from)
{
    return static_cast<std::int64_t>(to - from);
}

/**
 * Bounded, hostile-input byte reader. Running off the end raises the
 * reader's truncation category; a varint whose continuation bits never
 * terminate raises VarintOverrun.
 */
struct ByteReader
{
    const std::uint8_t *p;
    const std::uint8_t *end;
    TraceError truncCat;
    const char *what;

    ByteReader(const std::string &bytes, std::size_t off, std::size_t len,
               TraceError trunc_cat, const char *what_section)
        : p(reinterpret_cast<const std::uint8_t *>(bytes.data()) + off),
          end(reinterpret_cast<const std::uint8_t *>(bytes.data()) + off +
              len),
          truncCat(trunc_cat), what(what_section)
    {}

    std::size_t remaining() const
    {
        return static_cast<std::size_t>(end - p);
    }

    std::uint8_t
    u8()
    {
        if (p >= end)
            reject(truncCat, std::string("input ends inside ") + what);
        return *p++;
    }

    std::uint64_t
    varint()
    {
        std::uint64_t v = 0;
        for (unsigned shift = 0; shift < 64; shift += 7) {
            std::uint8_t b = u8();
            v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
            if (!(b & 0x80))
                return v;
        }
        reject(TraceError::VarintOverrun,
               std::string("varint overruns its encoding in ") + what);
    }

    std::int64_t zig() { return unzigzag(varint()); }

    std::uint64_t
    u64Raw()
    {
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(u8()) << (8 * i);
        return v;
    }

    /**
     * Guard an element count drawn from untrusted bytes: every element
     * consumes at least one byte, so a count beyond the remaining bytes
     * is corrupt — reject it *before* any allocation sized by it.
     */
    void
    checkCount(std::uint64_t n, TraceError cat, const char *what_count)
    {
        if (n > remaining())
            reject(cat, std::string("declared ") + what_count +
                            " count exceeds the remaining bytes");
    }
};

/** Frame one [len][crc][payload] section; returns the payload offset. */
std::size_t
frameSection(const std::string &bytes, std::size_t &off,
             std::uint32_t &len_out, TraceError trunc_cat,
             TraceError crc_cat, const char *what)
{
    if (bytes.size() - off < 8)
        reject(trunc_cat,
               std::string("truncated ") + what + " section framing");
    const std::uint32_t len = getU32(bytes, off);
    const std::uint32_t crc = getU32(bytes, off + 4);
    off += 8;
    if (bytes.size() - off < len)
        reject(trunc_cat, std::string("truncated ") + what +
                              " section: declares " +
                              std::to_string(len) + " bytes, " +
                              std::to_string(bytes.size() - off) +
                              " remain");
    if (crc32(bytes.data() + off, len) != crc)
        reject(crc_cat, std::string(what) + " CRC mismatch");
    const std::size_t payload = off;
    off += len;
    len_out = len;
    return payload;
}

// ---------------------------------------------------------------------
// Program image encode/decode.
// ---------------------------------------------------------------------

void
encodeUop(std::string &out, const isa::Uop &u)
{
    out.push_back(static_cast<char>(u.kind));
    out.push_back(static_cast<char>(u.dst));
    out.push_back(static_cast<char>(u.src1));
    out.push_back(static_cast<char>(u.src2));
    putZigzag(out, u.imm);
    out.push_back(static_cast<char>(u.dst2));
    out.push_back(static_cast<char>(u.src1b));
    out.push_back(static_cast<char>(u.src2b));
    out.push_back(static_cast<char>(u.laneKind));
    putVarint(out, u.assertTarget);
}

void
encodeProgram(std::string &out, const Program &prog)
{
    putVarint(out, prog.procs.size());
    Addr prev_pc = 0;
    for (const auto &proc : prog.procs) {
        out.push_back(static_cast<char>(proc.isHot ? 1 : 0));
        putVarint(out, proc.blocks.size());
        for (const auto &block : proc.blocks) {
            putVarint(out, block.insts.size());
            for (const auto &inst : block.insts) {
                putZigzag(out, addrDelta(inst.pc, prev_pc));
                prev_pc = inst.pc;
                out.push_back(static_cast<char>(inst.length));
                out.push_back(static_cast<char>(inst.cti));
                putZigzag(out, addrDelta(inst.takenTarget, inst.pc));
                putVarint(out, inst.uops.size());
                for (const auto &uop : inst.uops)
                    encodeUop(out, uop);
            }
            const BlockTerm &t = block.term;
            out.push_back(static_cast<char>(t.kind));
            putZigzag(out, t.takenBlock);
            putZigzag(out, t.fallBlock);
            putZigzag(out, t.calleeProc);
            std::uint64_t bias_bits, trips_bits;
            std::memcpy(&bias_bits, &t.takenBias, 8);
            std::memcpy(&trips_bits, &t.avgTrips, 8);
            putU64Raw(out, bias_bits);
            putU64Raw(out, trips_bits);
            out.push_back(static_cast<char>(t.patternLen));
            out.push_back(static_cast<char>(t.patternBits));
            putVarint(out, t.switchTargets.size());
            for (int target : t.switchTargets)
                putZigzag(out, target);
        }
    }
}

bool
validReg(RegId r)
{
    return r == invalidReg || r < isa::numArchRegs;
}

isa::Uop
decodeUop(ByteReader &r)
{
    isa::Uop u;
    const std::uint8_t kind = r.u8();
    if (kind >= static_cast<std::uint8_t>(isa::UopKind::NumKinds))
        reject(TraceError::BadProgram, "uop kind out of range");
    u.kind = static_cast<isa::UopKind>(kind);
    u.dst = r.u8();
    u.src1 = r.u8();
    u.src2 = r.u8();
    u.imm = r.zig();
    u.dst2 = r.u8();
    u.src1b = r.u8();
    u.src2b = r.u8();
    const std::uint8_t lane = r.u8();
    if (lane >= static_cast<std::uint8_t>(isa::UopKind::NumKinds))
        reject(TraceError::BadProgram, "uop lane kind out of range");
    u.laneKind = static_cast<isa::UopKind>(lane);
    u.assertTarget = r.varint();
    if (!validReg(u.dst) || !validReg(u.src1) || !validReg(u.src2) ||
        !validReg(u.dst2) || !validReg(u.src1b) || !validReg(u.src2b))
        reject(TraceError::BadProgram, "uop register id out of range");
    return u;
}

/** Decode a block index reference in [-1, limit). */
int
decodeBlockRef(ByteReader &r, std::int64_t limit, const char *what)
{
    std::int64_t v = r.zig();
    if (v < -1 || v >= limit)
        reject(TraceError::BadProgram,
               std::string(what) + " block reference out of range");
    return static_cast<int>(v);
}

std::shared_ptr<Program>
decodeProgram(ByteReader &r)
{
    auto prog = std::make_shared<Program>();
    const std::uint64_t num_procs = r.varint();
    if (num_procs == 0)
        reject(TraceError::BadProgram, "program has no procedures");
    r.checkCount(num_procs, TraceError::BadProgram, "procedure");
    prog->procs.reserve(num_procs);

    Addr prev_pc = 0;
    std::unordered_set<Addr> seen_pcs;
    for (std::uint64_t pi = 0; pi < num_procs; ++pi) {
        Procedure proc;
        const std::uint8_t flags = r.u8();
        if (flags > 1)
            reject(TraceError::BadProgram, "bad procedure flags");
        proc.isHot = flags != 0;
        const std::uint64_t num_blocks = r.varint();
        if (num_blocks == 0)
            reject(TraceError::BadProgram, "procedure has no blocks");
        r.checkCount(num_blocks, TraceError::BadProgram, "block");
        proc.blocks.reserve(num_blocks);
        for (std::uint64_t bi = 0; bi < num_blocks; ++bi) {
            Block block;
            const std::uint64_t num_insts = r.varint();
            if (num_insts == 0)
                reject(TraceError::BadProgram, "block has no instructions");
            r.checkCount(num_insts, TraceError::BadProgram, "instruction");
            block.insts.reserve(num_insts);
            for (std::uint64_t ii = 0; ii < num_insts; ++ii) {
                isa::MacroInst inst;
                inst.pc = prev_pc + static_cast<Addr>(r.zig());
                prev_pc = inst.pc;
                if (!seen_pcs.insert(inst.pc).second)
                    reject(TraceError::BadProgram,
                           "duplicate instruction pc");
                inst.length = r.u8();
                if (inst.length < 1 || inst.length > isa::maxInstBytes)
                    reject(TraceError::BadProgram,
                           "instruction length out of range");
                const std::uint8_t cti = r.u8();
                if (cti > static_cast<std::uint8_t>(isa::CtiType::Return))
                    reject(TraceError::BadProgram,
                           "CTI type out of range");
                inst.cti = static_cast<isa::CtiType>(cti);
                inst.takenTarget =
                    inst.pc + static_cast<Addr>(r.zig());
                const std::uint64_t num_uops = r.varint();
                if (num_uops == 0 || num_uops > isa::maxUopsPerInst)
                    reject(TraceError::BadProgram,
                           "uop count out of range");
                inst.uops.reserve(num_uops);
                for (std::uint64_t ui = 0; ui < num_uops; ++ui)
                    inst.uops.push_back(decodeUop(r));
                block.insts.push_back(std::move(inst));
            }
            BlockTerm term;
            const std::uint8_t kind = r.u8();
            if (kind > static_cast<std::uint8_t>(TermKind::Ret))
                reject(TraceError::BadProgram,
                       "terminator kind out of range");
            term.kind = static_cast<TermKind>(kind);
            const auto block_limit = static_cast<std::int64_t>(num_blocks);
            term.takenBlock = decodeBlockRef(r, block_limit, "taken");
            term.fallBlock = decodeBlockRef(r, block_limit, "fall");
            const std::int64_t callee = r.zig();
            if (callee < -1 ||
                callee >= static_cast<std::int64_t>(num_procs))
                reject(TraceError::BadProgram,
                       "callee procedure out of range");
            term.calleeProc = static_cast<int>(callee);
            const std::uint64_t bias_bits = r.u64Raw();
            const std::uint64_t trips_bits = r.u64Raw();
            std::memcpy(&term.takenBias, &bias_bits, 8);
            std::memcpy(&term.avgTrips, &trips_bits, 8);
            if (!std::isfinite(term.takenBias) ||
                !std::isfinite(term.avgTrips))
                reject(TraceError::BadProgram,
                       "non-finite terminator statistics");
            term.patternLen = r.u8();
            term.patternBits = r.u8();
            const std::uint64_t num_targets = r.varint();
            r.checkCount(num_targets, TraceError::BadProgram,
                         "switch target");
            term.switchTargets.reserve(num_targets);
            for (std::uint64_t ti = 0; ti < num_targets; ++ti) {
                const std::int64_t target = r.zig();
                if (target < 0 || target >= block_limit)
                    reject(TraceError::BadProgram,
                           "switch target out of range");
                term.switchTargets.push_back(static_cast<int>(target));
            }
            block.term = std::move(term);
            proc.blocks.push_back(std::move(block));
        }
        prog->procs.push_back(std::move(proc));
    }
    if (r.remaining() != 0)
        reject(TraceError::BadProgram,
               "trailing bytes after the program image");
    prog->buildIndex();
    return prog;
}

// ---------------------------------------------------------------------
// Dynamic record stream.
// ---------------------------------------------------------------------

/** Next-pc encoding classes (control byte bits 0-1). */
enum NextPcClass : std::uint8_t
{
    kNextSequential = 0, //!< nextPc == inst.nextPc()
    kNextTakenTarget = 1, //!< nextPc == inst.takenTarget
    kNextExplicit = 2,    //!< zigzag delta from inst.nextPc() follows
};

/** Shared decode cursor over a TraceData's record blocks. */
struct Cursor
{
    std::size_t blockIdx = 0;
    std::uint64_t recInBlock = 0;
    std::uint64_t byteOff = 0; //!< relative to the block's recordsOff
    std::uint64_t ctiInBlock = 0;
    Addr pc = 0;
    Addr prevMemAddr = 0;
    std::uint64_t seq = 0;
};

/**
 * Decode the next record into `out`. Structural violations throw; on a
 * TraceData that already passed validation they are unreachable.
 * @return false when every record was produced.
 */
bool
nextRecord(const TraceData &d, Cursor &c, DynInst &out)
{
    if (c.seq >= d.numRecords)
        return false;

    // Advance to the next block once the current one is fully consumed,
    // checking that it was consumed *exactly*.
    while (c.blockIdx < d.blocks.size() &&
           c.recInBlock == d.blocks[c.blockIdx].numRecords) {
        const auto &blk = d.blocks[c.blockIdx];
        if (c.byteOff != blk.recordsLen)
            reject(TraceError::BadRecord,
                   "record block body size mismatch");
        if (c.ctiInBlock != blk.numCtis)
            reject(TraceError::BadRecord,
                   "branch bitstream count mismatch");
        ++c.blockIdx;
        c.recInBlock = 0;
        c.byteOff = 0;
        c.ctiInBlock = 0;
    }
    if (c.blockIdx >= d.blocks.size())
        reject(TraceError::CountMismatch,
               "trace declares " + std::to_string(d.numRecords) +
                   " records but the blocks end at " +
                   std::to_string(c.seq));

    const auto &blk = d.blocks[c.blockIdx];
    ByteReader r(d.bytes,
                 static_cast<std::size_t>(blk.recordsOff + c.byteOff),
                 static_cast<std::size_t>(blk.recordsLen - c.byteOff),
                 TraceError::TruncatedRecords, "a dynamic record");
    const std::uint8_t *record_start = r.p;

    const isa::MacroInst *inst = d.program->instAt(c.pc);
    if (inst == nullptr)
        reject(TraceError::BadRecord,
               "dynamic record " + std::to_string(c.seq) +
                   " references a pc outside the program");

    const std::uint8_t control = r.u8();
    if ((control & ~0x03u) != 0)
        reject(TraceError::BadRecord, "bad record control byte");

    out = DynInst{};
    out.inst = inst;
    out.seq = c.seq;

    switch (control & 0x03u) {
      case kNextSequential:
        out.nextPc = inst->nextPc();
        break;
      case kNextTakenTarget:
        out.nextPc = inst->takenTarget;
        break;
      case kNextExplicit:
        out.nextPc = inst->nextPc() + static_cast<Addr>(r.zig());
        break;
      default:
        reject(TraceError::BadRecord, "bad next-pc class");
    }

    if (inst->isCti()) {
        if (c.ctiInBlock >= blk.numCtis)
            reject(TraceError::BadRecord, "branch bitstream underrun");
        const std::uint64_t bit = c.ctiInBlock++;
        const std::uint8_t byte = static_cast<std::uint8_t>(
            d.bytes[static_cast<std::size_t>(blk.bitsOff + (bit >> 3))]);
        out.taken = (byte >> (bit & 7)) & 1;
    }

    for (std::size_t i = 0; i < inst->uops.size(); ++i) {
        const isa::UopKind k = inst->uops[i].kind;
        if (k == isa::UopKind::Load || k == isa::UopKind::Store) {
            c.prevMemAddr += static_cast<Addr>(r.zig());
            out.memAddr[i] = c.prevMemAddr;
        }
    }

    c.byteOff += static_cast<std::uint64_t>(r.p - record_start);
    c.pc = out.nextPc;
    ++c.recInBlock;
    ++c.seq;
    return true;
}

// ---------------------------------------------------------------------
// Header.
// ---------------------------------------------------------------------

void
encodeHeader(std::string &out, const TraceData &d)
{
    putVarint(out, d.appName.size());
    out += d.appName;
    out.push_back(static_cast<char>(d.group));
    putVarint(out, d.seed);
    putVarint(out, d.numRecords);
    putVarint(out, d.numUops);
    putVarint(out, d.numCtis);
    putVarint(out, d.intendedBudget);
    putVarint(out, d.firstPc);
    putVarint(out, d.recordsPerBlock);
}

void
decodeHeader(ByteReader &r, TraceData &d)
{
    const std::uint64_t name_len = r.varint();
    r.checkCount(name_len, TraceError::BadHeader, "application name");
    if (name_len == 0 || name_len > 256)
        reject(TraceError::BadHeader,
               "application name length out of range");
    d.appName.assign(reinterpret_cast<const char *>(r.p), name_len);
    r.p += name_len;
    const std::uint8_t group = r.u8();
    if (group >= static_cast<std::uint8_t>(BenchGroup::NumGroups))
        reject(TraceError::BadHeader, "benchmark group out of range");
    d.group = static_cast<BenchGroup>(group);
    d.seed = r.varint();
    d.numRecords = r.varint();
    d.numUops = r.varint();
    d.numCtis = r.varint();
    d.intendedBudget = r.varint();
    d.firstPc = r.varint();
    const std::uint64_t per_block = r.varint();
    if (d.numRecords == 0)
        reject(TraceError::BadHeader, "trace has no records");
    if (per_block == 0 || per_block > (1u << 20))
        reject(TraceError::BadHeader,
               "records-per-block out of range");
    d.recordsPerBlock = static_cast<unsigned>(per_block);
    if (d.intendedBudget == 0 || d.intendedBudget > d.numRecords)
        reject(TraceError::BadHeader,
               "intended budget outside the recorded stream");
    if (d.numCtis > d.numRecords || d.numUops < d.numRecords)
        reject(TraceError::BadHeader, "implausible stream counts");
    if (r.remaining() != 0)
        reject(TraceError::BadHeader,
               "trailing bytes after the header fields");
}

} // namespace

// ---------------------------------------------------------------------
// Public category helpers.
// ---------------------------------------------------------------------

const char *
traceErrorName(TraceError e)
{
    const auto idx = static_cast<unsigned>(e);
    PARROT_ASSERT(idx < static_cast<unsigned>(TraceError::NumErrors),
                  "traceErrorName: bad category %u", idx);
    return kErrorNames[idx];
}

TraceError
traceErrorFromName(const std::string &name)
{
    for (unsigned i = 0;
         i < static_cast<unsigned>(TraceError::NumErrors); ++i) {
        if (name == kErrorNames[i])
            return static_cast<TraceError>(i);
    }
    return TraceError::NumErrors;
}

// ---------------------------------------------------------------------
// Decode.
// ---------------------------------------------------------------------

std::shared_ptr<const TraceData>
decodeTraceBytes(std::string bytes_in)
{
    auto data = std::make_shared<TraceData>();
    data->bytes = std::move(bytes_in);
    const std::string &bytes = data->bytes;

    if (bytes.empty())
        reject(TraceError::Empty, "empty trace file");
    if (bytes.size() < 8)
        reject(TraceError::TruncatedHeader,
               "truncated header: fewer than 8 bytes");
    if (std::memcmp(bytes.data(), "PTRC", 4) != 0)
        reject(TraceError::BadMagic, "bad magic (not a .ptrace file)");
    const std::uint16_t version = getU16(bytes, 4);
    if (version != ptraceVersion)
        reject(TraceError::BadVersion,
               "unsupported trace version " + std::to_string(version) +
                   " (this build reads version " +
                   std::to_string(ptraceVersion) + ")");
    if (getU16(bytes, 6) != 0)
        reject(TraceError::BadReserved, "reserved header bytes not zero");

    std::size_t off = 8;
    std::uint32_t len = 0;

    // Header section.
    std::size_t payload = frameSection(bytes, off, len,
                                       TraceError::TruncatedHeader,
                                       TraceError::HeaderCrc, "header");
    {
        ByteReader r(bytes, payload, len, TraceError::BadHeader,
                     "the header fields");
        decodeHeader(r, *data);
    }

    // Program section.
    payload = frameSection(bytes, off, len, TraceError::TruncatedProgram,
                           TraceError::ProgramCrc, "program");
    {
        ByteReader r(bytes, payload, len, TraceError::TruncatedProgram,
                     "the program image");
        data->program = decodeProgram(r);
    }

    // Record blocks, until the declared record count is framed.
    std::uint64_t framed_records = 0;
    while (off < bytes.size() && framed_records < data->numRecords) {
        payload = frameSection(bytes, off, len,
                               TraceError::TruncatedRecords,
                               TraceError::RecordCrc, "record block");
        ByteReader r(bytes, payload, len, TraceError::TruncatedRecords,
                     "a record block header");
        TraceData::BlockRef blk;
        blk.numRecords = r.varint();
        blk.numCtis = r.varint();
        if (blk.numRecords == 0 ||
            blk.numRecords > data->recordsPerBlock)
            reject(TraceError::BadRecord,
                   "record block count out of range");
        if (blk.numCtis > blk.numRecords)
            reject(TraceError::BadRecord,
                   "record block declares more CTIs than records");
        const std::uint64_t records_len = r.varint();
        if (records_len > r.remaining())
            reject(TraceError::TruncatedRecords,
                   "mid-record EOF: record bytes overrun their block");
        blk.recordsOff =
            static_cast<std::uint64_t>(
                reinterpret_cast<const char *>(r.p) - bytes.data());
        blk.recordsLen = records_len;
        blk.bitsOff = blk.recordsOff + records_len;
        const std::uint64_t bits_len = (blk.numCtis + 7) / 8;
        if (r.remaining() - records_len != bits_len)
            reject(TraceError::BadRecord,
                   "record block size mismatch (records + bitstream != "
                   "payload)");
        if (blk.numCtis % 8 != 0 && bits_len > 0) {
            const auto last = static_cast<std::uint8_t>(
                bytes[static_cast<std::size_t>(blk.bitsOff + bits_len -
                                               1)]);
            if ((last >> (blk.numCtis % 8)) != 0)
                reject(TraceError::BadRecord,
                       "nonzero branch bitstream padding");
        }
        framed_records += blk.numRecords;
        data->blocks.push_back(blk);
    }
    if (framed_records != data->numRecords)
        reject(TraceError::CountMismatch,
               "trace declares " + std::to_string(data->numRecords) +
                   " records but its blocks contain " +
                   std::to_string(framed_records));
    if (off < bytes.size())
        reject(TraceError::TrailingBytes,
               "trailing bytes after the final record block");

    // Full validation walk: decode every record once against the
    // reconstructed program so replay can never fail (or mis-count)
    // later, and verify the declared dynamic totals.
    Cursor c;
    c.pc = data->firstPc;
    DynInst dyn;
    std::uint64_t uops = 0, ctis = 0;
    while (nextRecord(*data, c, dyn)) {
        uops += dyn.inst->uops.size();
        if (dyn.inst->isCti())
            ++ctis;
    }
    if (uops != data->numUops)
        reject(TraceError::CountMismatch,
               "trace declares " + std::to_string(data->numUops) +
                   " uops but its records contain " +
                   std::to_string(uops));
    if (ctis != data->numCtis)
        reject(TraceError::CountMismatch,
               "trace declares " + std::to_string(data->numCtis) +
                   " CTIs but its records contain " +
                   std::to_string(ctis));
    // The final partially-consumed state must close exactly too.
    if (!data->blocks.empty()) {
        const auto &last = data->blocks.back();
        if (c.byteOff != last.recordsLen)
            reject(TraceError::BadRecord,
                   "record block body size mismatch");
        if (c.ctiInBlock != last.numCtis)
            reject(TraceError::BadRecord,
                   "branch bitstream count mismatch");
    }
    return data;
}

std::shared_ptr<const TraceData>
loadTraceFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        reject(TraceError::Io, "cannot open trace file " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad())
        reject(TraceError::Io, "cannot read trace file " + path);
    try {
        return decodeTraceBytes(buf.str());
    } catch (const TraceFormatError &e) {
        throw TraceFormatError(e.category(),
                               path + ": " + e.what());
    }
}

AppProfile
traceProfile(const TraceData &trace)
{
    AppProfile p;
    p.name = trace.appName;
    p.group = trace.group;
    p.seed = trace.seed;
    return p;
}

SuiteEntry
traceSuiteEntry(const std::string &path)
{
    auto trace = loadTraceFile(path);
    SuiteEntry entry;
    entry.profile = traceProfile(*trace);
    entry.defaultInstBudget = trace->intendedBudget;
    entry.tracePath = path;
    return entry;
}

// ---------------------------------------------------------------------
// Replay source.
// ---------------------------------------------------------------------

TraceReplaySource::TraceReplaySource(
    std::shared_ptr<const TraceData> trace)
    : data(std::move(trace))
{
    PARROT_ASSERT(data != nullptr, "TraceReplaySource: null trace");
    reset();
}

void
TraceReplaySource::reset()
{
    blockIdx = 0;
    recInBlock = 0;
    byteOff = 0;
    ctiInBlock = 0;
    pc = data->firstPc;
    prevMemAddr = 0;
    seq = 0;
}

bool
TraceReplaySource::next(DynInst &out)
{
    Cursor c;
    c.blockIdx = blockIdx;
    c.recInBlock = recInBlock;
    c.byteOff = byteOff;
    c.ctiInBlock = ctiInBlock;
    c.pc = pc;
    c.prevMemAddr = prevMemAddr;
    c.seq = seq;
    if (!nextRecord(*data, c, out))
        return false;
    blockIdx = c.blockIdx;
    recInBlock = c.recInBlock;
    byteOff = c.byteOff;
    ctiInBlock = c.ctiInBlock;
    pc = c.pc;
    prevMemAddr = c.prevMemAddr;
    seq = c.seq;
    return true;
}

void
TraceReplaySource::saveState(serial::Writer &out) const
{
    out.u64(blockIdx);
    out.u64(recInBlock);
    out.u64(byteOff);
    out.u64(ctiInBlock);
    out.u64(pc);
    out.u64(prevMemAddr);
    out.u64(seq);
}

void
TraceReplaySource::loadState(serial::Reader &in)
{
    blockIdx = in.u64();
    recInBlock = in.u64();
    byteOff = in.u64();
    ctiInBlock = in.u64();
    pc = in.u64();
    prevMemAddr = in.u64();
    seq = in.u64();
    if (blockIdx > data->blocks.size() || seq > data->numRecords)
        throw serial::Error(
            "trace replay checkpoint: cursor out of range");
}

// ---------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------

TraceWriter::TraceWriter(const Program &program, const AppProfile &profile,
                         std::uint64_t intended_budget,
                         unsigned records_per_block)
    : prog(program), meta(profile), intendedBudget(intended_budget),
      recordsPerBlock(records_per_block)
{
    PARROT_ASSERT(intendedBudget > 0,
                  "TraceWriter: zero intended budget");
    PARROT_ASSERT(recordsPerBlock > 0 && recordsPerBlock <= (1u << 20),
                  "TraceWriter: bad records-per-block %u",
                  recordsPerBlock);
    encodeProgram(programSection, prog);
}

void
TraceWriter::append(const DynInst &dyn)
{
    PARROT_ASSERT(!finished, "TraceWriter: append after finish");
    PARROT_ASSERT(dyn.inst != nullptr, "TraceWriter: null inst");
    const isa::MacroInst &inst = *dyn.inst;
    if (numRecords == 0) {
        firstPc = inst.pc;
    } else {
        PARROT_ASSERT(inst.pc == expectPc,
                      "TraceWriter: non-sequential stream (pc 0x%llx, "
                      "expected 0x%llx)",
                      static_cast<unsigned long long>(inst.pc),
                      static_cast<unsigned long long>(expectPc));
    }
    expectPc = dyn.nextPc;

    std::uint8_t control;
    std::int64_t explicit_delta = 0;
    if (dyn.nextPc == inst.nextPc()) {
        control = kNextSequential;
    } else if (dyn.nextPc == inst.takenTarget) {
        control = kNextTakenTarget;
    } else {
        control = kNextExplicit;
        explicit_delta = addrDelta(dyn.nextPc, inst.nextPc());
    }
    blockRecords.push_back(static_cast<char>(control));
    if (control == kNextExplicit)
        putZigzag(blockRecords, explicit_delta);

    if (inst.isCti()) {
        blockBits.push_back(dyn.taken);
        ++numCtis;
    }

    for (std::size_t i = 0; i < inst.uops.size(); ++i) {
        const isa::UopKind k = inst.uops[i].kind;
        if (k == isa::UopKind::Load || k == isa::UopKind::Store) {
            putZigzag(blockRecords,
                      addrDelta(dyn.memAddr[i], prevMemAddr));
            prevMemAddr = dyn.memAddr[i];
        }
    }

    numUops += inst.uops.size();
    ++numRecords;
    if (++blockCount == recordsPerBlock)
        flushBlock();
}

void
TraceWriter::flushBlock()
{
    if (blockCount == 0)
        return;
    std::string payload;
    putVarint(payload, blockCount);
    putVarint(payload, blockBits.size());
    putVarint(payload, blockRecords.size());
    payload += blockRecords;
    std::string bits((blockBits.size() + 7) / 8, '\0');
    for (std::size_t i = 0; i < blockBits.size(); ++i) {
        if (blockBits[i])
            bits[i >> 3] |= static_cast<char>(1 << (i & 7));
    }
    payload += bits;

    putU32(blockSections, static_cast<std::uint32_t>(payload.size()));
    putU32(blockSections, crc32(payload.data(), payload.size()));
    blockSections += payload;

    blockRecords.clear();
    blockBits.clear();
    blockCount = 0;
}

std::string
TraceWriter::finish()
{
    PARROT_ASSERT(!finished, "TraceWriter: finish called twice");
    PARROT_ASSERT(numRecords > 0, "TraceWriter: empty stream");
    finished = true;
    flushBlock();

    TraceData d;
    d.appName = meta.name;
    d.group = meta.group;
    d.seed = meta.seed;
    d.numRecords = numRecords;
    d.numUops = numUops;
    d.numCtis = numCtis;
    d.intendedBudget = std::min(intendedBudget, numRecords);
    d.firstPc = firstPc;
    d.recordsPerBlock = recordsPerBlock;
    std::string header;
    encodeHeader(header, d);

    std::string out;
    out.reserve(8 + 16 + header.size() + programSection.size() +
                blockSections.size());
    out += "PTRC";
    putU16(out, ptraceVersion);
    putU16(out, 0);
    putU32(out, static_cast<std::uint32_t>(header.size()));
    putU32(out, crc32(header.data(), header.size()));
    out += header;
    putU32(out, static_cast<std::uint32_t>(programSection.size()));
    putU32(out, crc32(programSection.data(), programSection.size()));
    out += programSection;
    out += blockSections;
    return out;
}

// ---------------------------------------------------------------------
// Recording front door.
// ---------------------------------------------------------------------

TraceRecordStats
recordTrace(const SuiteEntry &entry, std::uint64_t budget,
            const std::string &path)
{
    PARROT_ASSERT(budget > 0, "recordTrace: zero budget");
    PARROT_ASSERT(entry.tracePath.empty(),
                  "recordTrace: cannot re-record a trace-file cell");
    auto prog = generateProgram(entry.profile);
    Executor ex(*prog, entry.profile);
    TraceWriter writer(*prog, entry.profile, budget);

    DynInst dyn;
    const std::uint64_t total = budget + ptraceRecordMargin;
    for (std::uint64_t i = 0; i < total; ++i) {
        const bool ok = ex.next(dyn);
        PARROT_ASSERT(ok, "recordTrace: generator stream ended");
        writer.append(dyn);
    }

    TraceRecordStats stats;
    stats.path = path;
    stats.records = writer.recordsAppended();
    stats.uops = writer.uopsAppended();
    stats.ctis = writer.ctisAppended();
    stats.intendedBudget = budget;

    const std::string bytes = writer.finish();
    stats.fileBytes = bytes.size();
    std::string err;
    if (!atomic_file::writeFileAtomic(path, bytes, &err))
        reject(TraceError::Io, "cannot write trace: " + err);
    return stats;
}

} // namespace parrot::workload
