/**
 * @file
 * The static program image: procedures of basic blocks with real uop
 * dataflow, plus the control-flow metadata the functional executor uses
 * to drive execution statistically.
 */

#ifndef PARROT_WORKLOAD_PROGRAM_HH
#define PARROT_WORKLOAD_PROGRAM_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "isa/inst.hh"

namespace parrot::workload
{

/** How a basic block transfers control when it finishes. */
enum class TermKind : std::uint8_t
{
    FallThrough, //!< no CTI; continue to the next block
    Cond,        //!< biased conditional branch (forward)
    LoopBack,    //!< backward conditional branch closing a loop
    Jump,        //!< unconditional direct jump
    Switch,      //!< indirect jump over a target table
    Call,        //!< call a procedure, then continue at fallBlock
    Ret          //!< return from the procedure
};

/** Control-flow metadata attached to a block's terminator. */
struct BlockTerm
{
    TermKind kind = TermKind::FallThrough;
    int takenBlock = -1;   //!< target block (Cond/LoopBack/Jump)
    int fallBlock = -1;    //!< fall-through block (-1: procedure end)
    int calleeProc = -1;   //!< callee (Call)
    double takenBias = 0.5; //!< P(taken) for Cond
    double avgTrips = 8.0;  //!< mean iterations for LoopBack
    std::vector<int> switchTargets; //!< candidate blocks for Switch

    /** For history-correlated Cond branches: a repeating direction
     * pattern of patternLen bits (LSB first); 0 means purely biased. */
    std::uint8_t patternLen = 0;
    std::uint8_t patternBits = 0;
};

/**
 * A basic block: straight-line macro-instructions, the last of which may
 * be a CTI whose behaviour is described by term.
 */
struct Block
{
    std::vector<isa::MacroInst> insts;
    BlockTerm term;

    /** Static address of the block's first instruction. */
    Addr startPc() const { return insts.front().pc; }
};

/** A procedure: blocks indexed from 0 (the entry block). */
struct Procedure
{
    std::vector<Block> blocks;
    bool isHot = false; //!< belongs to the intended hot working set

    /** Entry address. */
    Addr entryPc() const { return blocks.front().startPc(); }
};

/**
 * A complete static program. Procedure 0 is "main": an endless outer
 * loop of call sites through which the executor drives the run.
 */
class Program
{
  public:
    std::vector<Procedure> procs;

    /** Total static macro-instruction count. */
    std::size_t numStaticInsts() const;

    /** Total static code bytes (the instruction-cache footprint). */
    std::size_t codeBytes() const;

    /** Total static uop count. */
    std::size_t numStaticUops() const;

    /**
     * Look up the instruction at a code address.
     * @return nullptr when pc does not start an instruction.
     */
    const isa::MacroInst *instAt(Addr pc) const;

    /** (Re)build the pc -> instruction index after construction. */
    void buildIndex();

  private:
    std::unordered_map<Addr, const isa::MacroInst *> pcIndex;
};

} // namespace parrot::workload

#endif // PARROT_WORKLOAD_PROGRAM_HH
