#include "workload/executor.hh"

#include "common/logging.hh"

namespace parrot::workload
{

Executor::Executor(const Program &program, const AppProfile &profile)
    : prog(program), prof(profile), rng(profile.seed ^ 0xabcdef123456ull)
{
    PARROT_ASSERT(!prog.procs.empty(), "Executor: empty program");
    reset();
}

void
Executor::reset()
{
    state = isa::ArchState{};
    callStack.clear();
    callStack.push_back(Frame{0, 0, {}});
    curProc = 0;
    curBlock = 0;
    curInst = 0;
    patternPos.clear();
    seq = 0;
    uops = 0;
    hotInsts = 0;
    rng.reseed(prof.seed ^ 0xabcdef123456ull);
}

double
Executor::hotFraction() const
{
    return seq == 0 ? 0.0
                    : static_cast<double>(hotInsts) /
                          static_cast<double>(seq);
}

Addr
Executor::upcomingPc() const
{
    const Block &block = prog.procs[curProc].blocks[curBlock];
    return block.insts[curInst].pc;
}

void
Executor::advance(const BlockTerm &term, bool &taken, Addr &next_pc)
{
    const Procedure &proc = prog.procs[curProc];
    taken = false;

    auto goto_block = [&](int b) {
        curBlock = b;
        curInst = 0;
        next_pc = prog.procs[curProc].blocks[b].insts.front().pc;
    };

    switch (term.kind) {
      case TermKind::FallThrough:
        goto_block(term.fallBlock);
        break;

      case TermKind::Cond: {
        const isa::MacroInst &br = proc.blocks[curBlock].insts.back();
        if (term.patternLen > 0) {
            std::uint32_t pos = patternPos[br.pc]++;
            taken = (term.patternBits >> (pos % term.patternLen)) & 1;
        } else {
            taken = rng.chance(term.takenBias);
        }
        goto_block(taken ? term.takenBlock : term.fallBlock);
        break;
      }

      case TermKind::LoopBack: {
        Frame &frame = callStack.back();
        auto it = frame.loopTrips.find(curBlock);
        if (it == frame.loopTrips.end()) {
            // Most loop entries reuse the loop's static trip count;
            // data-dependent bounds re-draw with profile probability.
            std::uint64_t trips;
            if (term.avgTrips >= 1e9) {
                trips = static_cast<std::uint64_t>(term.avgTrips);
            } else if (rng.chance(prof.loopTripJitter)) {
                double cap = std::max(2.0, term.avgTrips * 4.0);
                trips = static_cast<std::uint64_t>(
                    rng.positiveAround(term.avgTrips,
                                       static_cast<int>(
                                           std::min(cap, 2.1e9))));
            } else {
                trips = static_cast<std::uint64_t>(
                    std::max(1.0, term.avgTrips + 0.5));
            }
            it = frame.loopTrips.emplace(curBlock, trips).first;
        }
        if (it->second > 1) {
            --it->second;
            taken = true;
            goto_block(term.takenBlock);
        } else {
            frame.loopTrips.erase(it);
            taken = false;
            goto_block(term.fallBlock);
        }
        break;
      }

      case TermKind::Jump:
        taken = true;
        goto_block(term.takenBlock);
        break;

      case TermKind::Switch: {
        taken = true;
        // Skewed target selection: the first case dominates.
        std::size_t n = term.switchTargets.size();
        std::size_t pick = rng.chance(0.7)
            ? 0 : 1 + rng.below(std::max<std::size_t>(1, n - 1));
        if (pick >= n)
            pick = n - 1;
        goto_block(term.switchTargets[pick]);
        break;
      }

      case TermKind::Call: {
        taken = true;
        if (callStack.size() >= maxCallDepth) {
            // Depth cap: skip the call, continue at the return point.
            goto_block(term.fallBlock);
            break;
        }
        callStack.back().block = term.fallBlock;
        callStack.push_back(Frame{term.calleeProc, 0, {}});
        curProc = term.calleeProc;
        curBlock = 0;
        curInst = 0;
        next_pc = prog.procs[curProc].blocks[0].insts.front().pc;
        break;
      }

      case TermKind::Ret: {
        taken = true;
        if (callStack.size() <= 1) {
            // Main returned (unreachable in generated programs):
            // restart main for robustness.
            callStack.clear();
            callStack.push_back(Frame{0, 0, {}});
            curProc = 0;
            curBlock = 0;
            curInst = 0;
            next_pc = prog.procs[0].blocks[0].insts.front().pc;
            break;
        }
        callStack.pop_back();
        curProc = callStack.back().proc;
        curBlock = callStack.back().block;
        curInst = 0;
        next_pc = prog.procs[curProc].blocks[curBlock].insts.front().pc;
        break;
      }

      default:
        PARROT_PANIC("Executor: bad terminator kind");
    }
}

bool
Executor::next(DynInst &out)
{
    const Procedure &proc = prog.procs[curProc];
    const Block &block = proc.blocks[curBlock];
    const isa::MacroInst &inst = block.insts[curInst];

    out = DynInst{};
    out.inst = &inst;
    out.seq = seq;

    // Functionally execute the uops, recording memory addresses.
    for (std::size_t i = 0; i < inst.uops.size(); ++i) {
        auto info = isa::executeUop(inst.uops[i], state);
        if (info.accessedMem)
            out.memAddr[i] = info.addr;
    }
    uops += inst.uops.size();
    if (proc.isHot)
        ++hotInsts;
    ++seq;

    // Resolve where execution goes next.
    const bool is_last = (curInst + 1 == block.insts.size());
    if (!is_last) {
        ++curInst;
        out.taken = false;
        out.nextPc = inst.nextPc();
    } else {
        bool taken = false;
        Addr next_pc = inst.nextPc();
        if (inst.isCti() || block.term.kind == TermKind::FallThrough) {
            advance(block.term, taken, next_pc);
        } else {
            // Block ends without a CTI and without explicit
            // fall-through metadata; treat as fall-through.
            BlockTerm ft;
            ft.kind = TermKind::FallThrough;
            ft.fallBlock = block.term.fallBlock;
            advance(ft, taken, next_pc);
        }
        out.taken = inst.isCti() ? taken : false;
        out.nextPc = (inst.isCti() && !taken) ? inst.nextPc() : next_pc;
        // For a not-taken CTI the stream continues at the fall-through
        // block, whose first instruction must sit at inst.nextPc().
    }
    return true;
}

void
Executor::saveState(serial::Writer &out) const
{
    for (unsigned i = 0; i < 4; ++i)
        out.u64(rng.stateWord(i));
    isa::saveArchState(state, out);
    out.u32(static_cast<std::uint32_t>(callStack.size()));
    for (const Frame &frame : callStack) {
        out.i64(frame.proc);
        out.i64(frame.block);
        std::vector<std::pair<int, std::uint64_t>> trips(
            frame.loopTrips.begin(), frame.loopTrips.end());
        std::sort(trips.begin(), trips.end());
        out.u32(static_cast<std::uint32_t>(trips.size()));
        for (const auto &[block, remaining] : trips) {
            out.i64(block);
            out.u64(remaining);
        }
    }
    out.i64(curProc);
    out.i64(curBlock);
    out.u64(curInst);
    std::vector<std::pair<Addr, std::uint32_t>> patterns(
        patternPos.begin(), patternPos.end());
    std::sort(patterns.begin(), patterns.end());
    out.u32(static_cast<std::uint32_t>(patterns.size()));
    for (const auto &[pc, pos] : patterns) {
        out.u64(pc);
        out.u32(pos);
    }
    out.u64(seq);
    out.u64(uops);
    out.u64(hotInsts);
}

void
Executor::loadState(serial::Reader &in)
{
    std::uint64_t s0 = in.u64(), s1 = in.u64();
    std::uint64_t s2 = in.u64(), s3 = in.u64();
    rng.restoreState(s0, s1, s2, s3);
    isa::loadArchState(state, in);
    callStack.clear();
    const std::uint32_t depth = in.u32();
    if (depth > maxCallDepth)
        throw serial::Error("executor checkpoint: call stack too deep");
    for (std::uint32_t i = 0; i < depth; ++i) {
        Frame frame;
        frame.proc = static_cast<int>(in.i64());
        frame.block = static_cast<int>(in.i64());
        const std::uint32_t n_trips = in.u32();
        for (std::uint32_t t = 0; t < n_trips; ++t) {
            const int block = static_cast<int>(in.i64());
            frame.loopTrips[block] = in.u64();
        }
        callStack.push_back(std::move(frame));
    }
    curProc = static_cast<int>(in.i64());
    curBlock = static_cast<int>(in.i64());
    curInst = in.u64();
    if (curProc < 0 ||
        static_cast<std::size_t>(curProc) >= prog.procs.size())
        throw serial::Error("executor checkpoint: position out of range");
    patternPos.clear();
    const std::uint32_t n_patterns = in.u32();
    for (std::uint32_t i = 0; i < n_patterns; ++i) {
        const Addr pc = in.u64();
        patternPos[pc] = in.u32();
    }
    seq = in.u64();
    uops = in.u64();
    hotInsts = in.u64();
}

} // namespace parrot::workload
