#include "workload/apps.hh"

#include <algorithm>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "common/random.hh"

namespace parrot::workload
{

namespace
{

/** Deterministic per-app seed derived from the application name. */
std::uint64_t
nameSeed(const std::string &name)
{
    std::uint64_t h = 0x51ed270b0a5e3ull;
    for (char c : name)
        h = hashCombine(h, static_cast<std::uint64_t>(c));
    return h | 1;
}

/** Apply a deterministic +-jitter of the given relative width. */
double
jitter(Rng &rng, double v, double rel)
{
    return v * (1.0 + rel * (rng.uniform() * 2.0 - 1.0));
}

/** Clamp helper for post-jitter probabilities. */
double
clamp01(double v)
{
    return std::clamp(v, 0.0, 0.98);
}

/** Base profile for a group; per-app jitter personalizes it. */
AppProfile
groupTemplate(BenchGroup g)
{
    AppProfile p;
    p.group = g;
    switch (g) {
      case BenchGroup::SpecInt:
        p.numHotProcs = 3;
        p.numColdProcs = 30;
        p.blocksPerProc = 14;
        p.avgBlockInsts = 5.0;
        p.avgInstBytes = 3.2;
        p.hotness = 0.87;
        p.branchBias = 0.78;
        p.patternFraction = 0.25;
        p.loopFraction = 0.50;
        p.avgLoopTrips = 14.0;
        p.loopTripJitter = 0.22;
        p.steadyBranchFraction = 0.78;
        p.callFraction = 0.08;
        p.indirectFraction = 0.02;
        p.loadRatio = 0.24;
        p.storeRatio = 0.11;
        p.fpRatio = 0.0;
        p.mulDivRatio = 0.03;
        p.dataKb = 128.0;
        p.strideRatio = 0.60;
        p.pointerChaseRatio = 0.06;
        p.ilp = 2.6;
        p.deadCodeRatio = 0.04;
        p.constChainRatio = 0.04;
        p.trivialOpRatio = 0.03;
        p.simdPairRatio = 0.01;
        break;
      case BenchGroup::SpecFp:
        p.numHotProcs = 3;
        p.numColdProcs = 14;
        p.blocksPerProc = 10;
        p.avgBlockInsts = 8.0;
        p.avgInstBytes = 4.0;
        p.hotness = 0.95;
        p.branchBias = 0.95;
        p.patternFraction = 0.60;
        p.loopFraction = 0.70;
        p.avgLoopTrips = 48.0;
        p.loopTripJitter = 0.05;
        p.steadyBranchFraction = 0.92;
        p.callFraction = 0.03;
        p.indirectFraction = 0.002;
        p.loadRatio = 0.26;
        p.storeRatio = 0.10;
        p.fpRatio = 0.50;
        p.mulDivRatio = 0.02;
        p.dataKb = 1024.0;
        p.strideRatio = 0.93;
        p.pointerChaseRatio = 0.01;
        p.ilp = 3.6;
        p.deadCodeRatio = 0.04;
        p.constChainRatio = 0.03;
        p.trivialOpRatio = 0.02;
        p.simdPairRatio = 0.10;
        break;
      case BenchGroup::Office:
        p.numHotProcs = 3;
        p.numColdProcs = 36;
        p.blocksPerProc = 16;
        p.avgBlockInsts = 5.5;
        p.avgInstBytes = 3.4;
        p.hotness = 0.87;
        p.branchBias = 0.82;
        p.patternFraction = 0.30;
        p.loopFraction = 0.48;
        p.avgLoopTrips = 16.0;
        p.loopTripJitter = 0.18;
        p.steadyBranchFraction = 0.80;
        p.callFraction = 0.10;
        p.indirectFraction = 0.02;
        p.loadRatio = 0.25;
        p.storeRatio = 0.12;
        p.fpRatio = 0.02;
        p.mulDivRatio = 0.02;
        p.dataKb = 192.0;
        p.strideRatio = 0.65;
        p.pointerChaseRatio = 0.05;
        p.ilp = 2.6;
        p.deadCodeRatio = 0.045;
        p.constChainRatio = 0.045;
        p.trivialOpRatio = 0.03;
        p.simdPairRatio = 0.02;
        break;
      case BenchGroup::Multimedia:
        p.numHotProcs = 3;
        p.numColdProcs = 18;
        p.blocksPerProc = 12;
        p.avgBlockInsts = 7.0;
        p.avgInstBytes = 3.8;
        p.hotness = 0.93;
        p.branchBias = 0.88;
        p.patternFraction = 0.50;
        p.loopFraction = 0.68;
        p.avgLoopTrips = 30.0;
        p.loopTripJitter = 0.08;
        p.steadyBranchFraction = 0.85;
        p.callFraction = 0.05;
        p.indirectFraction = 0.01;
        p.loadRatio = 0.24;
        p.storeRatio = 0.12;
        p.fpRatio = 0.30;
        p.mulDivRatio = 0.08;
        p.dataKb = 256.0;
        p.strideRatio = 0.85;
        p.pointerChaseRatio = 0.02;
        p.ilp = 3.4;
        p.deadCodeRatio = 0.045;
        p.constChainRatio = 0.04;
        p.trivialOpRatio = 0.025;
        p.simdPairRatio = 0.08;
        break;
      case BenchGroup::DotNet:
        p.numHotProcs = 3;
        p.numColdProcs = 24;
        p.blocksPerProc = 12;
        p.avgBlockInsts = 5.0;
        p.avgInstBytes = 3.3;
        p.hotness = 0.88;
        p.branchBias = 0.80;
        p.patternFraction = 0.35;
        p.loopFraction = 0.55;
        p.avgLoopTrips = 18.0;
        p.loopTripJitter = 0.16;
        p.steadyBranchFraction = 0.78;
        p.callFraction = 0.12;
        p.indirectFraction = 0.03;
        p.loadRatio = 0.25;
        p.storeRatio = 0.11;
        p.fpRatio = 0.15;
        p.mulDivRatio = 0.04;
        p.dataKb = 192.0;
        p.strideRatio = 0.65;
        p.pointerChaseRatio = 0.05;
        p.ilp = 2.8;
        p.deadCodeRatio = 0.06;   // JIT-compiled code leaves more slack
        p.constChainRatio = 0.055;
        p.trivialOpRatio = 0.035;
        p.simdPairRatio = 0.025;
        break;
      default:
        PARROT_PANIC("groupTemplate: bad group");
    }
    return p;
}

/** Build one application: group template + deterministic jitter. */
SuiteEntry
makeApp(const std::string &name, BenchGroup g)
{
    AppProfile p = groupTemplate(g);
    p.name = name;
    p.seed = nameSeed(name);
    Rng rng(p.seed ^ 0x5eedf00dull);

    p.blocksPerProc = std::max(6, static_cast<int>(
        jitter(rng, p.blocksPerProc, 0.25)));
    p.avgBlockInsts = std::clamp(jitter(rng, p.avgBlockInsts, 0.2),
                                 3.0, 14.0);
    p.hotness = std::clamp(jitter(rng, p.hotness, 0.06), 0.5, 0.97);
    p.branchBias = std::clamp(jitter(rng, p.branchBias, 0.06), 0.55, 0.97);
    p.patternFraction = clamp01(jitter(rng, p.patternFraction, 0.2));
    p.loopFraction = clamp01(jitter(rng, p.loopFraction, 0.15));
    p.avgLoopTrips = std::max(2.0, jitter(rng, p.avgLoopTrips, 0.3));
    p.loadRatio = std::clamp(jitter(rng, p.loadRatio, 0.12), 0.05, 0.4);
    p.storeRatio = std::clamp(jitter(rng, p.storeRatio, 0.12), 0.02, 0.25);
    p.fpRatio = clamp01(jitter(rng, p.fpRatio, 0.2));
    p.dataKb = std::clamp(jitter(rng, p.dataKb, 0.5), 16.0, 8192.0);
    p.strideRatio = clamp01(jitter(rng, p.strideRatio, 0.15));
    p.pointerChaseRatio = clamp01(jitter(rng, p.pointerChaseRatio, 0.3));
    p.ilp = std::clamp(jitter(rng, p.ilp, 0.2), 1.2, 4.5);
    p.deadCodeRatio = clamp01(jitter(rng, p.deadCodeRatio, 0.25));
    p.constChainRatio = clamp01(jitter(rng, p.constChainRatio, 0.25));
    p.trivialOpRatio = clamp01(jitter(rng, p.trivialOpRatio, 0.25));
    p.simdPairRatio = clamp01(jitter(rng, p.simdPairRatio, 0.25));

    SuiteEntry entry;
    entry.profile = p;
    entry.defaultInstBudget = 300000;
    return entry;
}

/** Per-app flavor adjustments for the notable applications. */
void
personalize(AppProfile &p)
{
    if (p.name == "gcc") {
        // Huge static footprint, comparatively flat profile.
        p.numColdProcs = 45;
        p.blocksPerProc = 20;
        p.hotness = 0.74;
        p.avgLoopTrips = 8.0;
    } else if (p.name == "perlbench") {
        // Killer app: interpreter dispatch loop — very hot, branchy,
        // rich in removable work once traces linearize the dispatch.
        p.hotness = 0.93;
        p.avgLoopTrips = 20.0;
        p.indirectFraction = 0.02;
        p.deadCodeRatio = 0.08;
        p.constChainRatio = 0.08;
        p.trivialOpRatio = 0.05;
    } else if (p.name == "swim") {
        // The paper's peak-power application: wide FP loops streaming
        // through a large working set.
        p.fpRatio = 0.60;
        p.dataKb = 4096.0;
        p.avgLoopTrips = 96.0;
        p.hotness = 0.97;
        p.simdPairRatio = 0.13;
        p.ilp = 3.6;
    } else if (p.name == "wupwise") {
        // Killer app: dense FP kernels, massive SIMD/fusion headroom.
        p.hotness = 0.96;
        p.avgLoopTrips = 64.0;
        p.simdPairRatio = 0.14;
        p.deadCodeRatio = 0.07;
        p.constChainRatio = 0.06;
        p.ilp = 3.4;
    } else if (p.name == "flash") {
        // Killer app: multimedia interpreter with hot render kernels.
        p.hotness = 0.95;
        p.avgLoopTrips = 40.0;
        p.deadCodeRatio = 0.09;
        p.constChainRatio = 0.075;
        p.trivialOpRatio = 0.055;
        p.simdPairRatio = 0.11;
    } else if (p.name == "art") {
        p.dataKb = 3072.0;  // cache-hostile neural simulation
        p.strideRatio = 0.6;
    } else if (p.name == "crafty") {
        p.mulDivRatio = 0.05; // bitboard population work
        p.ilp = 2.4;
    } else if (p.name == "vpr" || p.name == "twolf") {
        p.pointerChaseRatio = 0.10; // placement graph walking
    } else if (p.name == "virusscan") {
        p.loadRatio = 0.30; // scanning streams
        p.strideRatio = 0.85;
    }
}

const char *const specIntNames[] = {
    "bzip", "crafty", "eon", "gap", "gcc", "gzip", "parser", "perlbench",
    "twolf", "vortex", "vpr",
};
const char *const specFpNames[] = {
    "ammp", "apsi", "art", "equake", "facerec", "fma3d", "lucas", "mesa",
    "sixtrack", "swim", "wupwise",
};
const char *const officeNames[] = {
    "excel", "office", "powerpoint", "virusscan", "winzip", "word",
};
const char *const multimediaNames[] = {
    "flash", "photoshop", "dragon", "lightwave", "quake3",
    "3dsmax-light", "3dsmax-aniso", "3dsmax-raster", "3dsmax-geom",
    "flask-mpeg4-a", "flask-mpeg4-b",
};
const char *const dotnetNames[] = {
    "dotnet-image", "dotnet-num-a", "dotnet-num-b", "dotnet-phong-a",
    "dotnet-phong-b",
};

void
appendGroup(std::vector<SuiteEntry> &out, BenchGroup g,
            const char *const *names, std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i) {
        SuiteEntry entry = makeApp(names[i], g);
        personalize(entry.profile);
        entry.profile.validate();
        out.push_back(std::move(entry));
    }
}

} // namespace

std::vector<SuiteEntry>
fullSuite()
{
    std::vector<SuiteEntry> out;
    appendGroup(out, BenchGroup::SpecInt, specIntNames,
                std::size(specIntNames));
    appendGroup(out, BenchGroup::SpecFp, specFpNames,
                std::size(specFpNames));
    appendGroup(out, BenchGroup::Office, officeNames,
                std::size(officeNames));
    appendGroup(out, BenchGroup::Multimedia, multimediaNames,
                std::size(multimediaNames));
    appendGroup(out, BenchGroup::DotNet, dotnetNames,
                std::size(dotnetNames));
    return out;
}

std::vector<SuiteEntry>
groupSuite(BenchGroup group)
{
    std::vector<SuiteEntry> out;
    for (auto &entry : fullSuite()) {
        if (entry.profile.group == group)
            out.push_back(std::move(entry));
    }
    return out;
}

std::vector<SuiteEntry>
smallSuite()
{
    static const char *const names[] = {
        "gcc", "perlbench", "swim", "wupwise", "word", "flash",
        "dotnet-num-a",
    };
    std::vector<SuiteEntry> out;
    for (const char *name : names)
        out.push_back(findApp(name));
    return out;
}

SuiteEntry
findApp(const std::string &name)
{
    for (auto &entry : fullSuite()) {
        if (entry.profile.name == name)
            return entry;
    }
    PARROT_FATAL("unknown application '%s'", name.c_str());
}

std::vector<SuiteEntry>
killerApps()
{
    return {findApp("flash"), findApp("wupwise"), findApp("perlbench")};
}

} // namespace parrot::workload
