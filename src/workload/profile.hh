/**
 * @file
 * Application profiles: the statistical knobs from which the synthetic
 * workload generator builds each benchmark.
 *
 * The paper evaluates 44 IA32 application traces in five groups
 * (SpecInt, SpecFP, Office, Multimedia, DotNet). We cannot ship those
 * traces, so each application is described by the statistical properties
 * that drive the paper's results — hot/cold concentration, branch
 * predictability, basic-block size, ILP, memory behaviour and
 * optimization opportunity — and a seeded generator synthesizes a
 * program with real dataflow exhibiting those properties.
 */

#ifndef PARROT_WORKLOAD_PROFILE_HH
#define PARROT_WORKLOAD_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace parrot::workload
{

/** Benchmark group, exactly the paper's five classes. */
enum class BenchGroup : std::uint8_t
{
    SpecInt,
    SpecFp,
    Office,
    Multimedia,
    DotNet,
    NumGroups
};

/** Human-readable group name ("SpecInt", ...). */
const char *benchGroupName(BenchGroup g);

/**
 * The statistical description of one application.
 *
 * All probabilities are in [0,1]; structural counts are positive.
 */
struct AppProfile
{
    std::string name;                    //!< e.g. "gcc", "swim"
    BenchGroup group = BenchGroup::SpecInt;
    std::uint64_t seed = 1;              //!< generator + executor seed

    // --- static program shape ---
    int numHotProcs = 4;        //!< procedures carrying the hot code
    int numColdProcs = 24;      //!< procedures carrying the cold tail
    int blocksPerProc = 12;     //!< basic blocks per procedure (mean)
    double avgBlockInsts = 6.0; //!< macro-instructions per block (mean)
    double avgInstBytes = 3.5;  //!< macro-instruction length (mean)

    // --- dynamic behaviour ---
    double hotness = 0.90;      //!< fraction of execution in hot procs
    double branchBias = 0.85;   //!< mean taken-direction bias of branches
    double patternFraction = 0.3; //!< branches following a fixed pattern
    double loopFraction = 0.5;  //!< fraction of blocks inside loops
    double avgLoopTrips = 12.0; //!< mean loop trip count
    /** Probability a loop entry re-draws its trip count instead of
     * using the loop's static one (data-dependent loop bounds). */
    double loopTripJitter = 0.2;
    /** Fraction of conditional branches that are near-deterministic
     * (taken or not taken ~97% of the time), as in real code. */
    double steadyBranchFraction = 0.55;
    double callFraction = 0.06; //!< fraction of blocks ending in a call
    double indirectFraction = 0.01; //!< blocks ending in indirect jumps

    // --- instruction mix ---
    double loadRatio = 0.22;    //!< fraction of uops that are loads
    double storeRatio = 0.10;   //!< fraction of uops that are stores
    double fpRatio = 0.0;       //!< fraction of ALU work that is FP
    double mulDivRatio = 0.04;  //!< fraction of ALU work that is mul/div

    // --- memory behaviour ---
    double dataKb = 64.0;       //!< data working set (KB)
    double strideRatio = 0.6;   //!< fraction of strided (vs random) access
    double pointerChaseRatio = 0.05; //!< loads whose result feeds a base

    // --- dataflow shape ---
    double ilp = 2.0;           //!< target independent chains per block

    // --- optimization opportunity (planted, as real code) ---
    double deadCodeRatio = 0.10;   //!< dynamically dead computation
    double constChainRatio = 0.10; //!< foldable immediate chains
    double trivialOpRatio = 0.06;  //!< algebraically simplifiable ops
    double simdPairRatio = 0.08;   //!< adjacent independent same-op pairs

    /** Validate ranges; fatal()s on nonsense configurations. */
    void validate() const;
};

/** Identifier for the per-group sub-suites. */
struct SuiteEntry
{
    AppProfile profile;
    std::uint64_t defaultInstBudget; //!< paper: 30M or 100M; scaled here

    /** When non-empty, the cell replays this recorded `.ptrace` file
     * instead of running the synthetic generator. */
    std::string tracePath;
};

} // namespace parrot::workload

#endif // PARROT_WORKLOAD_PROFILE_HH
