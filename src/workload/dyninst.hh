/**
 * @file
 * The dynamic-instruction record flowing from the workload executor into
 * the timing simulator (the "trace" of trace-driven simulation).
 */

#ifndef PARROT_WORKLOAD_DYNINST_HH
#define PARROT_WORKLOAD_DYNINST_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "isa/inst.hh"

namespace parrot::workload
{

/**
 * One committed macro-instruction with its resolved dynamic behaviour.
 *
 * The static payload (uops, length, CTI class) is reached through the
 * inst pointer, which stays valid for the lifetime of the Program.
 */
struct DynInst
{
    const isa::MacroInst *inst = nullptr;

    /** Dynamic sequence number (0-based). */
    std::uint64_t seq = 0;

    /** Resolved direction for conditional CTIs; true for taken CTIs. */
    bool taken = false;

    /** Address of the next dynamic instruction. */
    Addr nextPc = 0;

    /** Per-uop effective addresses (valid for Load/Store uops). */
    std::array<Addr, isa::maxUopsPerInst> memAddr = {};

    Addr pc() const { return inst->pc; }
    bool isCti() const { return inst->isCti(); }
    unsigned numUops() const { return inst->uops.size(); }
};

} // namespace parrot::workload

#endif // PARROT_WORKLOAD_DYNINST_HH
