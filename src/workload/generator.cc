#include "workload/generator.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "isa/registers.hh"

namespace parrot::workload
{

using isa::CtiType;
using isa::MacroInst;
using isa::Uop;
using isa::UopKind;

namespace
{

/** Round up to the next power of two. */
std::uint64_t
nextPow2(std::uint64_t x)
{
    std::uint64_t p = 1;
    while (p < x)
        p <<= 1;
    return p;
}

} // namespace

const char *
benchGroupName(BenchGroup g)
{
    switch (g) {
      case BenchGroup::SpecInt:    return "SpecInt";
      case BenchGroup::SpecFp:     return "SpecFP";
      case BenchGroup::Office:     return "Office";
      case BenchGroup::Multimedia: return "Multimedia";
      case BenchGroup::DotNet:     return "DotNet";
      default:                     return "<bad>";
    }
}

void
AppProfile::validate() const
{
    auto in01 = [](double v) { return v >= 0.0 && v <= 1.0; };
    if (name.empty())
        PARROT_FATAL("AppProfile: empty name");
    if (numHotProcs < 1 || numColdProcs < 1 || blocksPerProc < 3)
        PARROT_FATAL("AppProfile %s: bad structural counts", name.c_str());
    if (avgBlockInsts < 2.0 || avgBlockInsts > 24.0)
        PARROT_FATAL("AppProfile %s: avgBlockInsts out of range",
                     name.c_str());
    if (!in01(hotness) || !in01(branchBias) || !in01(patternFraction) ||
        !in01(loopFraction) || !in01(callFraction) ||
        !in01(indirectFraction) || !in01(loadRatio) || !in01(storeRatio) ||
        !in01(fpRatio) || !in01(mulDivRatio) || !in01(strideRatio) ||
        !in01(pointerChaseRatio) || !in01(deadCodeRatio) ||
        !in01(constChainRatio) || !in01(trivialOpRatio) ||
        !in01(simdPairRatio)) {
        PARROT_FATAL("AppProfile %s: probability out of [0,1]",
                     name.c_str());
    }
    if (loadRatio + storeRatio > 0.7)
        PARROT_FATAL("AppProfile %s: memory ratios too large", name.c_str());
    if (dataKb < 1.0 || dataKb > 64 * 1024.0)
        PARROT_FATAL("AppProfile %s: dataKb out of range", name.c_str());
    if (ilp < 1.0 || ilp > 8.0)
        PARROT_FATAL("AppProfile %s: ilp out of range", name.c_str());
    if (avgLoopTrips < 1.0)
        PARROT_FATAL("AppProfile %s: avgLoopTrips < 1", name.c_str());
}

/** Per-block generation bookkeeping. */
struct ProgramGenerator::BlockBuildState
{
    /** Most recently written integer temps (newest last). */
    std::vector<RegId> recentInt;
    /** Most recently written FP regs (newest last). */
    std::vector<RegId> recentFp;
    /** Which scratch register the next dead write should target. */
    bool scratchToggle = false;
    /** Static strided-base offset assigned to this block. */
    std::int64_t blockDataOffset = 0;
    /** Running sub-offset for consecutive strided accesses. */
    std::int64_t strideCursor = 0;

    void
    noteIntWrite(RegId r)
    {
        recentInt.push_back(r);
        if (recentInt.size() > 8)
            recentInt.erase(recentInt.begin());
    }

    void
    noteFpWrite(RegId r)
    {
        recentFp.push_back(r);
        if (recentFp.size() > 6)
            recentFp.erase(recentFp.begin());
    }
};

ProgramGenerator::ProgramGenerator(const AppProfile &profile)
    : prof(profile), rng(profile.seed)
{
    prof.validate();
    wsMask = nextPow2(static_cast<std::uint64_t>(prof.dataKb * 1024.0)) - 1;
}

std::unique_ptr<Program>
ProgramGenerator::generate()
{
    auto prog = std::make_unique<Program>();
    Addr pc = codeRegionBase;

    const int num_procs = 1 + prof.numHotProcs + prof.numColdProcs;
    prog->procs.reserve(num_procs);

    // Procedure 0 (main) is built last because it needs the callee list,
    // but it must occupy index 0; reserve a placeholder.
    prog->procs.emplace_back();

    // The last 40% of cold procedures are call-free leaves; everyone
    // else calls only leaves. This keeps per-call work bounded (no
    // exponential call cascades) so the hot/cold work calibration in
    // buildMain stays solvable.
    const int num_leaves = std::max(1, (prof.numColdProcs * 2) / 5);
    const int first_leaf =
        1 + prof.numHotProcs + (prof.numColdProcs - num_leaves);

    // Hot procedures: indices [1, numHotProcs]. They call only later
    // hot procedures (a chain bounded by the small hot set), so hot
    // time stays hot.
    for (int i = 0; i < prof.numHotProcs; ++i) {
        int idx = 1 + i;
        int callees = prof.numHotProcs - i - 1;
        prog->procs.push_back(
            buildProcedure(pc, true, callees, idx + 1));
    }
    // Cold procedures: indices [numHotProcs+1, end).
    for (int i = 0; i < prof.numColdProcs; ++i) {
        int idx = 1 + prof.numHotProcs + i;
        bool is_leaf = idx >= first_leaf;
        prog->procs.push_back(
            buildProcedure(pc, false, is_leaf ? 0 : num_leaves,
                           first_leaf));
    }

    prog->procs[0] = buildMain(pc, prog->procs);

    resolveTargets(*prog);
    prog->buildIndex();
    return prog;
}

void
ProgramGenerator::emitPrologue(Block &block, Addr &pc, std::uint64_t ws_mask)
{
    auto emit_movi = [&](RegId dst, std::int64_t imm) {
        MacroInst inst;
        inst.pc = pc;
        inst.uops.push_back(isa::makeMovImm(dst, imm));
        inst.length = drawInstLength(1);
        pc += inst.length;
        block.insts.push_back(std::move(inst));
    };
    emit_movi(regconv::regMask, static_cast<std::int64_t>(ws_mask & ~7ull));
    emit_movi(regconv::regConst,
              static_cast<std::int64_t>(rng.below((ws_mask >> 1) + 1) & ~7ull));
    emit_movi(regconv::regChase,
              static_cast<std::int64_t>(rng.below(ws_mask + 1) & ~7ull));
    emit_movi(regconv::regStride,
              static_cast<std::int64_t>(rng.below(ws_mask + 1) & ~7ull));
}

RegId
ProgramGenerator::pickSource(BlockBuildState &bbs)
{
    // With probability 1/ilp chain on the most recent write (serial
    // dataflow); otherwise draw an arbitrary live temp.
    if (!bbs.recentInt.empty() && rng.chance(1.0 / prof.ilp))
        return bbs.recentInt.back();
    if (!bbs.recentInt.empty() && rng.chance(0.7))
        return bbs.recentInt[rng.below(bbs.recentInt.size())];
    // Fall back to the stable per-procedure constant register.
    return regconv::regConst;
}

RegId
ProgramGenerator::pickDest(BlockBuildState &bbs)
{
    RegId r = static_cast<RegId>(
        regconv::firstTemp +
        rng.below(regconv::lastTemp - regconv::firstTemp + 1));
    bbs.noteIntWrite(r);
    return r;
}

std::uint8_t
ProgramGenerator::drawInstLength(unsigned num_uops)
{
    double mean = prof.avgInstBytes + 2.0 * (num_uops > 1 ? num_uops - 1 : 0);
    int len = rng.positiveAround(mean, isa::maxInstBytes);
    return static_cast<std::uint8_t>(std::clamp(len, 1,
        static_cast<int>(isa::maxInstBytes)));
}

std::int64_t
ProgramGenerator::drawDataOffset(BlockBuildState &bbs)
{
    if (rng.chance(prof.strideRatio)) {
        // Strided: walk 8-byte words from the block's static offset.
        std::int64_t off = (bbs.blockDataOffset + bbs.strideCursor) &
                           static_cast<std::int64_t>(wsMask & ~7ull);
        bbs.strideCursor += 8;
        return off;
    }
    return static_cast<std::int64_t>(rng.below((wsMask >> 1) + 1) & ~7ull);
}

void
ProgramGenerator::emitBodyInst(Block &block, Addr &pc, BlockBuildState &bbs,
                               bool hot)
{
    MacroInst inst;
    inst.pc = pc;

    const double u = rng.uniform();
    double acc = 0.0;
    auto in_band = [&](double p) {
        acc += p;
        return u < acc;
    };

    const bool fp_app = prof.fpRatio > 0.0;
    // Hot code carries slightly more planted optimization opportunity:
    // the blazing traces are exactly where the paper's optimizer works.
    const double opt_boost = hot ? 1.0 : 0.5;

    if (in_band(prof.loadRatio * prof.pointerChaseRatio)) {
        // Pointer-chase step: ld r14, [r14 + base]; and r14, r14, mask.
        inst.uops.push_back(isa::makeLoad(
            regconv::regChase, regconv::regChase,
            static_cast<std::int64_t>(dataRegionBase)));
        Uop mask = isa::makeAlu(UopKind::And, regconv::regChase,
                                regconv::regChase, regconv::regMask);
        inst.uops.push_back(mask);
        bbs.noteIntWrite(regconv::regChase);
    } else if (in_band(prof.loadRatio * prof.strideRatio * 0.4)) {
        // Stride walk: addi r15, r15, 8; and r15, r15, mask.
        inst.uops.push_back(isa::makeAluImm(UopKind::AddImm,
                                            regconv::regStride,
                                            regconv::regStride, 8));
        inst.uops.push_back(isa::makeAlu(UopKind::And, regconv::regStride,
                                         regconv::regStride,
                                         regconv::regMask));
    } else if (in_band(prof.loadRatio * 0.75)) {
        // Plain load, possibly into an FP register for FP apps.
        bool to_fp = fp_app && rng.chance(prof.fpRatio);
        RegId dst;
        if (to_fp) {
            dst = static_cast<RegId>(isa::firstFpReg +
                                     rng.below(isa::numFpRegs));
            bbs.noteFpWrite(dst);
        } else {
            dst = pickDest(bbs);
        }
        RegId base = rng.chance(0.5) ? regconv::regStride
                                     : regconv::regConst;
        if (rng.chance(prof.pointerChaseRatio))
            base = regconv::regChase;
        inst.uops.push_back(isa::makeLoad(
            dst, base,
            static_cast<std::int64_t>(dataRegionBase) +
                drawDataOffset(bbs)));
        // Occasionally a CISC load-op: fold a dependent ALU op in.
        if (!to_fp && rng.chance(0.3)) {
            RegId dst2 = pickDest(bbs);
            inst.uops.push_back(isa::makeAlu(UopKind::Add, dst2, dst,
                                             pickSource(bbs)));
        }
    } else if (in_band(prof.storeRatio)) {
        RegId val;
        if (fp_app && !bbs.recentFp.empty() && rng.chance(prof.fpRatio))
            val = bbs.recentFp.back();
        else
            val = bbs.recentInt.empty() ? regconv::regConst
                                        : bbs.recentInt.back();
        RegId base = rng.chance(0.5) ? regconv::regStride
                                     : regconv::regConst;
        inst.uops.push_back(isa::makeStore(
            val, base,
            static_cast<std::int64_t>(dataRegionBase) +
                drawDataOffset(bbs)));
    } else if (fp_app && in_band(prof.fpRatio * 0.55)) {
        // FP arithmetic; pairs of independent ops model SIMDifiable and
        // fusable (mul+add) sequences.
        auto pick_fp = [&]() -> RegId {
            if (!bbs.recentFp.empty() && rng.chance(0.7))
                return bbs.recentFp[rng.below(bbs.recentFp.size())];
            return static_cast<RegId>(isa::firstFpReg +
                                      rng.below(isa::numFpRegs));
        };
        double k = rng.uniform();
        UopKind kind = k < 0.45 ? UopKind::FpAdd
                     : k < 0.85 ? UopKind::FpMul
                     : k < 0.90 ? UopKind::FpDiv
                                : UopKind::FpMov;
        RegId dst = static_cast<RegId>(isa::firstFpReg +
                                       rng.below(isa::numFpRegs));
        inst.uops.push_back(isa::makeFp(kind, dst, pick_fp(), pick_fp()));
        bbs.noteFpWrite(dst);
        if (rng.chance(prof.simdPairRatio * opt_boost * 2.0) &&
            (kind == UopKind::FpAdd || kind == UopKind::FpMul)) {
            // Emit the independent twin as a second macro-instruction.
            block.insts.push_back(inst);
            inst.length = drawInstLength(inst.uops.size());
            block.insts.back().length = inst.length;
            pc += inst.length;

            MacroInst twin;
            twin.pc = pc;
            RegId dst2 = static_cast<RegId>(isa::firstFpReg +
                                            rng.below(isa::numFpRegs));
            while (dst2 == dst) {
                dst2 = static_cast<RegId>(isa::firstFpReg +
                                          rng.below(isa::numFpRegs));
            }
            twin.uops.push_back(isa::makeFp(kind, dst2, pick_fp(),
                                            pick_fp()));
            bbs.noteFpWrite(dst2);
            twin.length = drawInstLength(1);
            pc += twin.length;
            block.insts.push_back(std::move(twin));
            return;
        }
    } else if (in_band(prof.mulDivRatio)) {
        UopKind kind = rng.chance(0.8) ? UopKind::Mul : UopKind::Div;
        inst.uops.push_back(isa::makeAlu(kind, pickDest(bbs),
                                         pickSource(bbs), pickSource(bbs)));
    } else if (in_band(prof.constChainRatio * opt_boost)) {
        // Foldable chain: movi tA, c1; addi tB, tA, c2 (+ optional xor).
        RegId a = pickDest(bbs);
        inst.uops.push_back(isa::makeMovImm(a, rng.range(1, 4096)));
        inst.length = drawInstLength(1);
        pc += inst.length;
        block.insts.push_back(inst);

        MacroInst second;
        second.pc = pc;
        RegId b = pickDest(bbs);
        second.uops.push_back(isa::makeAluImm(UopKind::AddImm, b, a,
                                              rng.range(1, 256)));
        second.length = drawInstLength(1);
        pc += second.length;
        block.insts.push_back(std::move(second));

        if (rng.chance(0.5)) {
            MacroInst third;
            third.pc = pc;
            RegId c = pickDest(bbs);
            third.uops.push_back(isa::makeAlu(UopKind::Xor, c, a, b));
            third.length = drawInstLength(1);
            pc += third.length;
            block.insts.push_back(std::move(third));
        }
        return;
    } else if (in_band(prof.trivialOpRatio * opt_boost)) {
        // Algebraically trivial patterns the optimizer can simplify.
        double k = rng.uniform();
        if (k < 0.35) {
            // xor t, s, s  ->  movi t, 0
            RegId s = pickSource(bbs);
            inst.uops.push_back(isa::makeAlu(UopKind::Xor, pickDest(bbs),
                                             s, s));
        } else if (k < 0.6) {
            // and t, s, s  ->  mov t, s
            RegId s = pickSource(bbs);
            inst.uops.push_back(isa::makeAlu(UopKind::And, pickDest(bbs),
                                             s, s));
        } else if (k < 0.8) {
            // addi t, s, 0  ->  mov t, s
            inst.uops.push_back(isa::makeAluImm(UopKind::AddImm,
                                                pickDest(bbs),
                                                pickSource(bbs), 0));
        } else {
            // shli t, s, 0  ->  mov t, s
            inst.uops.push_back(isa::makeAluImm(UopKind::ShlImm,
                                                pickDest(bbs),
                                                pickSource(bbs), 0));
        }
    } else if (in_band(prof.deadCodeRatio * opt_boost)) {
        // Dead computation: scratch registers are never read, so all but
        // the trace-final write to them is removable.
        RegId scratch = bbs.scratchToggle ? regconv::regScratch1
                                          : regconv::regScratch0;
        bbs.scratchToggle = !bbs.scratchToggle;
        UopKind kind = rng.chance(0.5) ? UopKind::Add : UopKind::Xor;
        inst.uops.push_back(isa::makeAlu(kind, scratch, pickSource(bbs),
                                         pickSource(bbs)));
    } else if (in_band(prof.simdPairRatio * opt_boost)) {
        // Independent same-op integer pair (SIMDifiable).
        UopKind kind = rng.chance(0.5) ? UopKind::Add : UopKind::Xor;
        RegId d1 = pickDest(bbs);
        RegId s1 = pickSource(bbs);
        RegId s2 = pickSource(bbs);
        inst.uops.push_back(isa::makeAlu(kind, d1, s1, s2));
        inst.length = drawInstLength(1);
        pc += inst.length;
        block.insts.push_back(inst);

        MacroInst twin;
        twin.pc = pc;
        RegId d2 = pickDest(bbs);
        while (d2 == d1)
            d2 = pickDest(bbs);
        RegId s3 = pickSource(bbs);
        RegId s4 = pickSource(bbs);
        twin.uops.push_back(isa::makeAlu(kind, d2, s3, s4));
        twin.length = drawInstLength(1);
        pc += twin.length;
        block.insts.push_back(std::move(twin));
        return;
    } else {
        // Plain integer ALU operation.
        static const UopKind alu_kinds[] = {
            UopKind::Add, UopKind::Sub, UopKind::And, UopKind::Or,
            UopKind::Xor, UopKind::Lea,
        };
        UopKind kind = alu_kinds[rng.below(std::size(alu_kinds))];
        if (rng.chance(0.25)) {
            UopKind ik = rng.chance(0.6) ? UopKind::AddImm
                        : rng.chance(0.5) ? UopKind::ShlImm
                                          : UopKind::ShrImm;
            inst.uops.push_back(isa::makeAluImm(ik, pickDest(bbs),
                                                pickSource(bbs),
                                                rng.range(1, 31)));
        } else if (kind == UopKind::Lea) {
            inst.uops.push_back(isa::makeLea(pickDest(bbs), pickSource(bbs),
                                             pickSource(bbs),
                                             rng.range(0, 64)));
        } else {
            inst.uops.push_back(isa::makeAlu(kind, pickDest(bbs),
                                             pickSource(bbs),
                                             pickSource(bbs)));
        }
    }

    PARROT_ASSERT(!inst.uops.empty() &&
                  inst.uops.size() <= isa::maxUopsPerInst,
                  "generated bad uop count");
    inst.length = drawInstLength(inst.uops.size());
    pc += inst.length;
    block.insts.push_back(std::move(inst));
}

void
ProgramGenerator::fillBlock(Block &block, Addr &pc, int n_insts, bool hot)
{
    BlockBuildState bbs;
    bbs.blockDataOffset = static_cast<std::int64_t>(
        rng.below(wsMask + 1) & ~7ull);
    for (int i = 0; i < n_insts; ++i)
        emitBodyInst(block, pc, bbs, hot);
}

void
ProgramGenerator::emitCondBranch(Block &block, Addr &pc,
                                 BlockBuildState &bbs)
{
    MacroInst cmp;
    cmp.pc = pc;
    cmp.uops.push_back(isa::makeCmpImm(pickSource(bbs), rng.range(0, 64)));
    cmp.length = drawInstLength(1);
    pc += cmp.length;
    block.insts.push_back(std::move(cmp));

    MacroInst br;
    br.pc = pc;
    br.cti = CtiType::CondBranch;
    br.uops.push_back(isa::makeBranch());
    br.length = static_cast<std::uint8_t>(rng.range(2, 6));
    pc += br.length;
    block.insts.push_back(std::move(br));
}

void
ProgramGenerator::emitCti(Block &block, Addr &pc, CtiType type)
{
    MacroInst inst;
    inst.pc = pc;
    inst.cti = type;
    switch (type) {
      case CtiType::Jump:
        inst.uops.push_back(isa::makeJump());
        break;
      case CtiType::JumpInd:
        inst.uops.push_back(isa::makeJumpInd(regconv::regConst));
        break;
      case CtiType::Call:
        inst.uops.push_back(isa::makeCall());
        break;
      case CtiType::Return:
        inst.uops.push_back(isa::makeReturn());
        break;
      default:
        PARROT_PANIC("emitCti: bad type");
    }
    inst.length = static_cast<std::uint8_t>(rng.range(1, 5));
    pc += inst.length;
    block.insts.push_back(std::move(inst));
}

Procedure
ProgramGenerator::buildProcedure(Addr &pc, bool hot, int num_callees,
                                 int first_callee)
{
    Procedure proc;
    proc.isHot = hot;
    const Addr proc_start = pc;

    auto draw_bias = [&]() {
        double b;
        if (rng.chance(prof.steadyBranchFraction)) {
            // Near-deterministic branch (error paths, range checks...):
            // the majority case in real code, and the reason traces
            // repeat identically enough to be worth caching.
            b = 0.96 + rng.uniform() * 0.035;
        } else {
            double center = prof.branchBias;
            b = 0.5 + (center - 0.5) * (0.5 + rng.uniform());
            b = std::clamp(b, 0.02, 0.98);
        }
        // Half the branches are biased toward fall-through instead.
        if (rng.chance(0.5))
            b = 1.0 - b;
        return b;
    };

    auto configure_cond = [&](BlockTerm &term) {
        term.kind = TermKind::Cond;
        term.takenBias = draw_bias();
        if (rng.chance(prof.patternFraction)) {
            term.patternLen = static_cast<std::uint8_t>(rng.range(2, 6));
            term.patternBits = static_cast<std::uint8_t>(
                rng.below(1u << term.patternLen));
        }
    };

    auto block_len = [&]() {
        return rng.positiveAround(prof.avgBlockInsts, 20);
    };

    int remaining = prof.blocksPerProc + static_cast<int>(rng.below(5));
    while (remaining > 0) {
        double u = rng.uniform();
        if (u < prof.loopFraction * 0.45 && remaining >= 2) {
            // Loop: head..body blocks, the last one looping back.
            int body_blocks = static_cast<int>(rng.range(1, 3));
            body_blocks = std::min(body_blocks, remaining);
            int head = static_cast<int>(proc.blocks.size());
            for (int b = 0; b < body_blocks; ++b) {
                Block block;
                fillBlock(block, pc, block_len(), hot);
                BlockBuildState bbs;
                if (b + 1 < body_blocks) {
                    // Internal block: biased forward branch into the
                    // next block (target == fall-through distinct blocks
                    // would need a diamond; keep a plain fall-through or
                    // a highly biased skip of one block when room).
                    block.term.kind = TermKind::FallThrough;
                    block.term.fallBlock = head + b + 1;
                } else {
                    emitCondBranch(block, pc, bbs);
                    block.term.kind = TermKind::LoopBack;
                    block.term.takenBlock = head;
                    block.term.fallBlock = head + body_blocks;
                    // Each static loop gets its own (mostly stable)
                    // trip count drawn around the profile mean.
                    double mean = std::max(1.0, prof.avgLoopTrips *
                                                    (hot ? 1.0 : 0.35));
                    int cap = static_cast<int>(4.0 * mean) + 2;
                    block.term.avgTrips =
                        rng.positiveAround(mean, cap);
                }
                proc.blocks.push_back(std::move(block));
            }
            remaining -= body_blocks;
        } else if (u < prof.loopFraction * 0.45 + 0.18 && remaining >= 3) {
            // Diamond: A cond-> C (skipping B); B falls into C.
            int a = static_cast<int>(proc.blocks.size());
            Block blk_a;
            fillBlock(blk_a, pc, block_len(), hot);
            BlockBuildState bbs;
            emitCondBranch(blk_a, pc, bbs);
            configure_cond(blk_a.term);
            blk_a.term.takenBlock = a + 2;
            blk_a.term.fallBlock = a + 1;
            proc.blocks.push_back(std::move(blk_a));

            Block blk_b;
            fillBlock(blk_b, pc, std::max(2, block_len() / 2), hot);
            blk_b.term.kind = TermKind::FallThrough;
            blk_b.term.fallBlock = a + 2;
            proc.blocks.push_back(std::move(blk_b));

            Block blk_c;
            fillBlock(blk_c, pc, block_len(), hot);
            blk_c.term.kind = TermKind::FallThrough;
            blk_c.term.fallBlock = a + 3;
            proc.blocks.push_back(std::move(blk_c));
            remaining -= 3;
        } else if (u < prof.loopFraction * 0.45 + 0.18 +
                           prof.callFraction &&
                   num_callees > 0 && remaining >= 1) {
            // Call block.
            Block block;
            fillBlock(block, pc, std::max(2, block_len() / 2), hot);
            emitCti(block, pc, CtiType::Call);
            block.term.kind = TermKind::Call;
            block.term.calleeProc =
                first_callee + static_cast<int>(rng.below(num_callees));
            block.term.fallBlock =
                static_cast<int>(proc.blocks.size()) + 1;
            proc.blocks.push_back(std::move(block));
            remaining -= 1;
        } else if (u < prof.loopFraction * 0.45 + 0.18 +
                           prof.callFraction + prof.indirectFraction &&
                   remaining >= 4) {
            // Switch: indirect jump to one of 2-3 case blocks, each of
            // which jumps to the common join block.
            int cases = static_cast<int>(rng.range(2, 3));
            int sw = static_cast<int>(proc.blocks.size());
            Block block;
            fillBlock(block, pc, std::max(2, block_len() / 2), hot);
            emitCti(block, pc, CtiType::JumpInd);
            block.term.kind = TermKind::Switch;
            for (int c = 0; c < cases; ++c)
                block.term.switchTargets.push_back(sw + 1 + c);
            proc.blocks.push_back(std::move(block));
            for (int c = 0; c < cases; ++c) {
                Block case_block;
                fillBlock(case_block, pc, std::max(2, block_len() / 2),
                          hot);
                emitCti(case_block, pc, CtiType::Jump);
                case_block.term.kind = TermKind::Jump;
                case_block.term.takenBlock = sw + 1 + cases;
                proc.blocks.push_back(std::move(case_block));
            }
            Block join;
            fillBlock(join, pc, block_len(), hot);
            join.term.kind = TermKind::FallThrough;
            join.term.fallBlock = sw + cases + 2;
            proc.blocks.push_back(std::move(join));
            remaining -= cases + 2;
        } else {
            // Plain block ending in a biased forward conditional branch
            // to the next block's successor (a skip of nothing: both
            // edges reach the next block) — realistic cmp/jcc density
            // without changing the path; or a pure fall-through.
            Block block;
            fillBlock(block, pc, block_len(), hot);
            if (rng.chance(0.4) &&
                static_cast<int>(proc.blocks.size()) + 1 < remaining +
                    static_cast<int>(proc.blocks.size())) {
                BlockBuildState bbs;
                emitCondBranch(block, pc, bbs);
                configure_cond(block.term);
                int next = static_cast<int>(proc.blocks.size()) + 1;
                block.term.takenBlock = next;
                block.term.fallBlock = next;
            } else {
                block.term.kind = TermKind::FallThrough;
                block.term.fallBlock =
                    static_cast<int>(proc.blocks.size()) + 1;
            }
            proc.blocks.push_back(std::move(block));
            remaining -= 1;
        }
    }

    // Prepend the prologue to the entry block (addresses are re-laid
    // out for the whole procedure below).
    {
        Block &entry = proc.blocks.front();
        Block with_prologue;
        with_prologue.term = entry.term;
        Addr dummy_pc = 0;
        emitPrologue(with_prologue, dummy_pc, wsMask);
        for (auto &inst : entry.insts)
            with_prologue.insts.push_back(std::move(inst));
        entry = std::move(with_prologue);
    }

    // Terminal return block.
    Block ret_block;
    {
        BlockBuildState bbs;
        fillBlock(ret_block, pc, 2, hot);
        emitCti(ret_block, pc, CtiType::Return);
        ret_block.term.kind = TermKind::Ret;
    }
    // Fix dangling fall-through edges (any fallBlock beyond the last
    // block funnels into the return block).
    int ret_idx = static_cast<int>(proc.blocks.size());
    proc.blocks.push_back(std::move(ret_block));
    for (auto &block : proc.blocks) {
        auto clampIdx = [&](int idx) {
            return (idx < 0 || idx > ret_idx) ? ret_idx : idx;
        };
        block.term.fallBlock = clampIdx(block.term.fallBlock);
        if (block.term.kind == TermKind::Cond ||
            block.term.kind == TermKind::LoopBack ||
            block.term.kind == TermKind::Jump) {
            block.term.takenBlock = clampIdx(block.term.takenBlock);
        }
        for (auto &t : block.term.switchTargets)
            t = clampIdx(t);
    }

    // Lay out the whole procedure contiguously from its start address.
    Addr cursor = proc_start;
    for (auto &block : proc.blocks) {
        for (auto &inst : block.insts) {
            inst.pc = cursor;
            cursor += inst.length;
        }
    }
    pc = cursor;
    return proc;
}

Procedure
ProgramGenerator::buildMain(Addr &pc, const std::vector<Procedure> &procs)
{
    Procedure proc;
    proc.isHot = true;

    // Exact expected work per call of every already-built procedure:
    // loop bodies execute avgTrips times and callees contribute their
    // own work. Procedures only call higher-indexed procedures, so one
    // reverse sweep resolves call chains exactly. Main (index 0) is a
    // placeholder at this point and is skipped.
    std::vector<double> work(procs.size(), 0.0);
    for (std::size_t p = procs.size(); p-- > 1;) {
        const Procedure &callee_proc = procs[p];
        std::vector<double> weight(callee_proc.blocks.size(), 1.0);
        for (std::size_t b = 0; b < callee_proc.blocks.size(); ++b) {
            const BlockTerm &term = callee_proc.blocks[b].term;
            if (term.kind == TermKind::LoopBack) {
                for (int k = term.takenBlock;
                     k <= static_cast<int>(b); ++k) {
                    weight[k] *= std::max(1.0, term.avgTrips);
                }
            }
        }
        for (std::size_t b = 0; b < callee_proc.blocks.size(); ++b) {
            const Block &block = callee_proc.blocks[b];
            work[p] += weight[b] * block.insts.size();
            if (block.term.kind == TermKind::Call)
                work[p] += weight[b] * work[block.term.calleeProc];
        }
    }

    double hot_work_per_call = 0.0;
    double cold_work_total = 0.0;
    for (int i = 0; i < prof.numHotProcs; ++i)
        hot_work_per_call += work[1 + i];
    hot_work_per_call /= std::max(1, prof.numHotProcs);
    for (int i = 0; i < prof.numColdProcs; ++i)
        cold_work_total += work[1 + prof.numHotProcs + i];

    // Solve hot_calls*hotWork / (hot_calls*hotWork + coldWork) =
    // hotness, with every cold procedure called once per outer-loop
    // iteration of main.
    double target = prof.hotness / std::max(1e-6, 1.0 - prof.hotness);
    int hot_sites = static_cast<int>(std::ceil(
        target * cold_work_total / std::max(1.0, hot_work_per_call)));
    hot_sites = std::clamp(hot_sites, 2 * prof.numHotProcs, 1024);

    std::vector<int> schedule;
    for (int i = 0; i < hot_sites; ++i)
        schedule.push_back(1 + static_cast<int>(
            rng.below(prof.numHotProcs)));
    for (int i = 0; i < prof.numColdProcs; ++i)
        schedule.push_back(1 + prof.numHotProcs + i);
    // Deterministic shuffle so hot and cold calls interleave.
    for (std::size_t i = schedule.size(); i > 1; --i)
        std::swap(schedule[i - 1], schedule[rng.below(i)]);

    // Entry block: prologue only.
    {
        Block entry;
        Addr entry_pc = pc;
        emitPrologue(entry, entry_pc, wsMask);
        pc = entry_pc;
        entry.term.kind = TermKind::FallThrough;
        entry.term.fallBlock = 1;
        proc.blocks.push_back(std::move(entry));
    }

    for (std::size_t i = 0; i < schedule.size(); ++i) {
        Block block;
        fillBlock(block, pc, 2, false);
        emitCti(block, pc, CtiType::Call);
        block.term.kind = TermKind::Call;
        block.term.calleeProc = schedule[i];
        block.term.fallBlock = static_cast<int>(proc.blocks.size()) + 1;
        proc.blocks.push_back(std::move(block));
    }

    // Closing block: loop back to the first call site, effectively
    // forever (the executor's instruction budget ends the run).
    {
        Block block;
        fillBlock(block, pc, 2, false);
        BlockBuildState bbs;
        emitCondBranch(block, pc, bbs);
        block.term.kind = TermKind::LoopBack;
        block.term.takenBlock = 1;
        block.term.fallBlock = static_cast<int>(proc.blocks.size()) + 1;
        block.term.avgTrips = 1e12;
        proc.blocks.push_back(std::move(block));
    }
    // Unreached return block keeps the procedure well-formed.
    {
        Block ret_block;
        fillBlock(ret_block, pc, 1, false);
        emitCti(ret_block, pc, CtiType::Return);
        ret_block.term.kind = TermKind::Ret;
        proc.blocks.push_back(std::move(ret_block));
    }
    return proc;
}

void
ProgramGenerator::resolveTargets(Program &prog)
{
    for (auto &proc : prog.procs) {
        for (auto &block : proc.blocks) {
            auto &term = block.term;
            isa::MacroInst &last = block.insts.back();
            switch (term.kind) {
              case TermKind::Cond:
              case TermKind::LoopBack:
                PARROT_ASSERT(last.cti == CtiType::CondBranch,
                              "terminator mismatch (cond)");
                last.takenTarget =
                    proc.blocks[term.takenBlock].insts.front().pc;
                break;
              case TermKind::Jump:
                PARROT_ASSERT(last.cti == CtiType::Jump,
                              "terminator mismatch (jump)");
                last.takenTarget =
                    proc.blocks[term.takenBlock].insts.front().pc;
                break;
              case TermKind::Call:
                PARROT_ASSERT(last.cti == CtiType::Call,
                              "terminator mismatch (call)");
                last.takenTarget =
                    prog.procs[term.calleeProc].entryPc();
                break;
              case TermKind::Switch:
              case TermKind::Ret:
              case TermKind::FallThrough:
                break;
            }
        }
    }
}

std::unique_ptr<Program>
generateProgram(const AppProfile &profile)
{
    return ProgramGenerator(profile).generate();
}

} // namespace parrot::workload
