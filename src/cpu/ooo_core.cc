#include "cpu/ooo_core.hh"

#include "common/logging.hh"

namespace parrot::cpu
{

using power::PowerEvent;

UnitPool
poolOf(isa::ExecClass cls)
{
    switch (cls) {
      case isa::ExecClass::IntAlu:
      case isa::ExecClass::Ctrl:
      case isa::ExecClass::Nop:
        return UnitPool::Alu;
      case isa::ExecClass::IntMul:
      case isa::ExecClass::IntDiv:
        return UnitPool::MulDiv;
      case isa::ExecClass::FpAdd:
      case isa::ExecClass::FpMul:
      case isa::ExecClass::FpDiv:
      case isa::ExecClass::Simd:
        return UnitPool::Fp;
      case isa::ExecClass::MemLoad:
      case isa::ExecClass::MemStore:
        return UnitPool::Mem;
      default:
        PARROT_PANIC("poolOf: bad exec class");
    }
}

CoreConfig
CoreConfig::narrow()
{
    CoreConfig cfg;
    cfg.name = "narrow";
    cfg.width = 4;
    cfg.issueWidth = 4;
    cfg.robSize = 128;
    cfg.iqSize = 32;
    cfg.numAlu = 3;
    cfg.numMulDiv = 1;
    cfg.numFp = 2;
    cfg.numMem = 2;
    cfg.mispredictPenalty = 12;
    return cfg;
}

CoreConfig
CoreConfig::wide()
{
    // The paper's W is a *straightforward* 8-wide extension: every
    // pipeline stage is widened and the unit mix grows ~1.5x, but the
    // instruction window, memory ports and cache hierarchy stay as in
    // N — which is exactly why its performance saturates while its
    // energy balloons.
    CoreConfig cfg;
    cfg.name = "wide";
    cfg.width = 8;
    cfg.issueWidth = 8;
    cfg.robSize = 128;
    cfg.iqSize = 32;
    cfg.numAlu = 5;
    cfg.numMulDiv = 2;
    cfg.numFp = 3;
    cfg.numMem = 2;
    cfg.numMshrs = 12;
    cfg.mispredictPenalty = 14; // deeper wide machine refills slower
    return cfg;
}

OooCore::OooCore(const CoreConfig &config, memory::Hierarchy *hierarchy,
                 power::EnergyAccount *account)
    : cfg(config), mem(hierarchy), energy(account)
{
    cfg.validate();
    PARROT_ASSERT(mem != nullptr && energy != nullptr,
                  "OooCore: hierarchy and account are required");
    rob.resize(cfg.robSize);
    readyBits.assign((cfg.robSize + 63) / 64, 0);
}

bool
OooCore::canDispatch(unsigned n) const
{
    return robOccupancy() + n <= cfg.robSize && iqCount + n <= cfg.iqSize;
}

UopToken
OooCore::dispatch(const isa::Uop &uop, Addr mem_addr, bool counts_as_inst,
                  bool poisoned)
{
    PARROT_ASSERT(canDispatch(), "dispatch without capacity check");

    UopToken seq = tailSeq++;
    Entry &entry = entryOf(seq);
    entry = Entry{};
    entry.uop = uop;
    entry.memAddr = mem_addr;
    entry.countsAsInst = counts_as_inst;
    entry.poisoned = poisoned;
    ++iqCount;

    // Rename: resolve source operands against in-flight writers.
    RegId srcs[4];
    unsigned n_srcs = uop.sources(srcs);
    for (unsigned i = 0; i < n_srcs; ++i) {
        RegId r = srcs[i];
        if (!lastWriterValid[r])
            continue;
        UopToken writer = lastWriter[r];
        if (writer < headSeq)
            continue; // producer already committed
        Entry &prod = entryOf(writer);
        if (prod.state == State::Completed)
            continue;
        std::int32_t node = depPool.acquire();
        depPool.at(node).tok = seq;
        if (prod.depTail < 0)
            prod.depHead = node;
        else
            depPool.at(prod.depTail).next = node;
        prod.depTail = node;
        ++entry.depsOutstanding;
    }
    entry.state =
        (entry.depsOutstanding == 0) ? State::Ready : State::Waiting;
    if (entry.state == State::Ready)
        setReady(seq);

    // Claim destination registers.
    if (uop.hasDst()) {
        RegId d = uop.effectiveDst();
        lastWriter[d] = seq;
        lastWriterValid[d] = true;
    }
    if (uop.dst2 != invalidReg) {
        lastWriter[uop.dst2] = seq;
        lastWriterValid[uop.dst2] = true;
    }

    energy->record(PowerEvent::Rename);
    energy->record(PowerEvent::RobWrite);
    energy->record(PowerEvent::IqInsert);
    return seq;
}

bool
OooCore::completed(UopToken token) const
{
    if (token >= tailSeq)
        return false;
    if (token < headSeq)
        return true; // already committed
    return entryOf(token).state == State::Completed;
}

void
OooCore::completePhase()
{
    while (!completions.empty() && completions.top().first <= curCycle) {
        UopToken seq = completions.top().second;
        completions.pop();
        Entry &entry = entryOf(seq);
        entry.state = State::Completed;
        if (entry.holdsMshr) {
            PARROT_ASSERT(outstandingMisses > 0, "MSHR underflow");
            --outstandingMisses;
            entry.holdsMshr = false;
        }
        if (entry.uop.hasDst())
            energy->record(PowerEvent::RegWrite);
        if (entry.uop.dst2 != invalidReg)
            energy->record(PowerEvent::RegWrite);
        // Wake dependents, in dispatch order (tail-appended list).
        for (std::int32_t n = entry.depHead; n >= 0;) {
            const UopToken dep = depPool.at(n).tok;
            const std::int32_t next = depPool.at(n).next;
            depPool.release(n);
            n = next;
            if (dep < headSeq || dep >= tailSeq)
                continue;
            Entry &consumer = entryOf(dep);
            if (consumer.state != State::Waiting)
                continue;
            energy->record(PowerEvent::IqWakeup);
            PARROT_ASSERT(consumer.depsOutstanding > 0,
                          "wakeup underflow");
            if (--consumer.depsOutstanding == 0) {
                consumer.state = State::Ready;
                setReady(dep);
            }
        }
        entry.depHead = entry.depTail = -1;
    }
}

void
OooCore::issuePhase()
{
    unsigned issued = 0;
    unsigned pool_used[static_cast<unsigned>(UnitPool::NumPools)] = {};

    // Oldest-first select: walk ready bits in circular slot order
    // starting at the ROB head, which is exactly ascending-token order
    // (the window never exceeds robSize). Two linear passes handle the
    // wrap; within each pass countr_zero jumps straight to the next
    // ready entry.
    const std::size_t n_slots = cfg.robSize;
    const std::size_t head_slot =
        static_cast<std::size_t>(headSeq % cfg.robSize);

    auto scan = [&](std::size_t lo, std::size_t hi, UopToken tok_base) {
        std::size_t wi = lo >> 6;
        const std::size_t w_last = (hi - 1) >> 6;
        for (; wi <= w_last && issued < cfg.issueWidth; ++wi) {
            std::uint64_t word = readyBits[wi];
            const std::size_t word_lo = wi << 6;
            if (word_lo < lo)
                word &= ~std::uint64_t{0} << (lo - word_lo);
            if (word_lo + 64 > hi)
                word &= ~std::uint64_t{0} >> (word_lo + 64 - hi);
            while (word != 0 && issued < cfg.issueWidth) {
                const std::size_t slot =
                    word_lo +
                    static_cast<std::size_t>(std::countr_zero(word));
                word &= word - 1;
                tryIssueSlot(slot, tok_base + (slot - lo), issued,
                             pool_used);
            }
        }
    };

    scan(head_slot, n_slots, headSeq);
    if (head_slot > 0 && issued < cfg.issueWidth)
        scan(0, head_slot, headSeq + (n_slots - head_slot));
}

void
OooCore::tryIssueSlot(std::size_t slot, UopToken seq, unsigned &issued,
                      unsigned *pool_used)
{
    {
        Entry &entry = rob[slot];
        PARROT_ASSERT(entry.state == State::Ready && seq >= headSeq &&
                          seq < tailSeq,
                      "stale ready bit");

        const isa::ExecClass cls = entry.uop.execClass();
        const UnitPool pool = poolOf(cls);
        const unsigned pool_idx = static_cast<unsigned>(pool);
        if (pool_used[pool_idx] >= cfg.poolSize(pool))
            return; // structural hazard; stays ready for younger slots
        if (cls == isa::ExecClass::MemLoad &&
            outstandingMisses >= cfg.numMshrs &&
            !mem->l1d().contains(entry.memAddr)) {
            return; // all MSHRs busy: the load must wait
        }

        ++pool_used[pool_idx];
        ++issued;
        nIssuedUops.add();
        clearReady(slot);
        --iqCount;
        entry.state = State::Issued;

        // Energy: select, operand reads, the operation itself.
        energy->record(PowerEvent::IqSelect);
        energy->record(PowerEvent::RegRead, entry.uop.numSources());
        switch (cls) {
          case isa::ExecClass::IntAlu:
            energy->record(PowerEvent::AluOp);
            break;
          case isa::ExecClass::IntMul:
            energy->record(PowerEvent::MulOp);
            break;
          case isa::ExecClass::IntDiv:
            energy->record(PowerEvent::DivOp);
            break;
          case isa::ExecClass::FpAdd:
          case isa::ExecClass::FpMul:
          case isa::ExecClass::FpDiv:
            energy->record(PowerEvent::FpOp);
            break;
          case isa::ExecClass::Simd:
            energy->record(PowerEvent::SimdOp);
            break;
          case isa::ExecClass::Ctrl:
            energy->record(PowerEvent::CtrlOp);
            break;
          default:
            break;
        }

        unsigned latency = isa::uopLatency(entry.uop);
        if (cls == isa::ExecClass::MemLoad) {
            energy->record(PowerEvent::AguOp);
            auto access = mem->accessData(entry.memAddr, false);
            energy->record(PowerEvent::DcacheRead);
            if (!access.l1Hit) {
                energy->record(PowerEvent::DcacheMiss);
                energy->record(PowerEvent::L2Access);
                if (!access.l2Hit)
                    energy->record(PowerEvent::MemAccess);
                entry.holdsMshr = true;
                ++outstandingMisses;
            }
            latency += access.latency;
        } else if (cls == isa::ExecClass::MemStore) {
            // Stores compute their address now; the cache write happens
            // at commit (store buffer semantics).
            energy->record(PowerEvent::AguOp);
        }

        completions.emplace(curCycle + latency, seq);
    }
}

void
OooCore::commitPhase()
{
    unsigned committed = 0;
    while (headSeq < tailSeq && committed < cfg.width) {
        Entry &entry = entryOf(headSeq);
        if (entry.state != State::Completed)
            break;

        // Wrong-path (poisoned) stores are squashed without touching
        // the memory system; poisoned loads already polluted the cache
        // at issue, as real speculative loads do.
        if (entry.uop.kind == isa::UopKind::Store && !entry.poisoned) {
            auto access = mem->accessData(entry.memAddr, true);
            energy->record(PowerEvent::DcacheWrite);
            if (!access.l1Hit) {
                energy->record(PowerEvent::DcacheMiss);
                energy->record(PowerEvent::L2Access);
                if (!access.l2Hit)
                    energy->record(PowerEvent::MemAccess);
            }
        }

        energy->record(PowerEvent::Commit);
        energy->record(PowerEvent::RobRead);
        if (!entry.poisoned) {
            nCommittedUops.add();
            if (entry.countsAsInst)
                nCommittedInsts.add();
        }
        ++headSeq;
        ++committed;
    }
}

void
OooCore::tick()
{
    // Idle detection for power-state modeling: a drained backend does
    // no work this cycle. The counter is what gating policies (and the
    // TOS cold-backend sleep state in particular) key their savings on.
    if (drained())
        nIdleCycles.add();
    ++curCycle;
    completePhase();
    issuePhase();
    commitPhase();
}

} // namespace parrot::cpu
