/**
 * @file
 * Structural configuration of an out-of-order execution core.
 */

#ifndef PARROT_CPU_CORE_CONFIG_HH
#define PARROT_CPU_CORE_CONFIG_HH

#include <string>

#include "common/logging.hh"
#include "isa/opcodes.hh"
#include "power/energy_model.hh"

namespace parrot::cpu
{

/** Functional-unit pools a uop can issue to. */
enum class UnitPool : std::uint8_t
{
    Alu,    //!< integer ALUs and branch units
    MulDiv, //!< integer multiply/divide
    Fp,     //!< floating point and SIMD
    Mem,    //!< load/store ports
    NumPools
};

/** The pool a given execution class issues to. */
UnitPool poolOf(isa::ExecClass cls);

/** Core structural parameters. */
struct CoreConfig
{
    std::string name = "core";
    unsigned width = 4;          //!< rename/dispatch/commit per cycle
    unsigned issueWidth = 4;     //!< issues per cycle
    unsigned robSize = 128;
    unsigned iqSize = 32;
    unsigned numAlu = 3;
    unsigned numMulDiv = 1;
    unsigned numFp = 2;
    unsigned numMem = 2;
    /** Outstanding L1D-miss capacity (MSHRs): bounds the memory-level
     * parallelism the core can exploit. */
    unsigned numMshrs = 8;
    unsigned mispredictPenalty = 12; //!< front-end refill cycles

    /** Units in a pool. */
    unsigned
    poolSize(UnitPool pool) const
    {
        switch (pool) {
          case UnitPool::Alu:    return numAlu;
          case UnitPool::MulDiv: return numMulDiv;
          case UnitPool::Fp:     return numFp;
          case UnitPool::Mem:    return numMem;
          default:
            PARROT_PANIC("poolSize: bad pool");
        }
    }

    /** Power-model scaling parameters for this core. */
    power::CoreScaling
    scaling() const
    {
        return power::CoreScaling{width, robSize, iqSize};
    }

    void
    validate() const
    {
        if (width < 1 || issueWidth < 1)
            PARROT_FATAL("core %s: width must be >= 1", name.c_str());
        if (robSize < 2 * width || iqSize < width)
            PARROT_FATAL("core %s: ROB/IQ too small for width",
                         name.c_str());
        if (numAlu < 1 || numMem < 1 || numMulDiv < 1 || numFp < 1)
            PARROT_FATAL("core %s: every unit pool needs >= 1 unit",
                         name.c_str());
    }

    /** The paper's standard 4-wide reference core (model N). */
    static CoreConfig narrow();

    /** The theoretical 8-wide core (model W). */
    static CoreConfig wide();
};

} // namespace parrot::cpu

#endif // PARROT_CPU_CORE_CONFIG_HH
