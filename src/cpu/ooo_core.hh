/**
 * @file
 * A cycle-level out-of-order execution backend.
 *
 * The core consumes micro-operations in program order (dispatch) and
 * models renaming, a unified issue queue with oldest-first select,
 * per-pool functional units, data-cache access latency and in-order
 * commit. Because the surrounding simulators are trace-driven, there is
 * no wrong-path execution: control mispredictions are modelled by the
 * caller stalling dispatch until the branch uop completes plus a
 * front-end refill penalty.
 *
 * The same class instantiates the cold and hot cores of every PARROT
 * configuration (the paper's "generic execution core class", §3.1);
 * only the CoreConfig differs.
 */

#ifndef PARROT_CPU_OOO_CORE_HH
#define PARROT_CPU_OOO_CORE_HH

#include <bit>
#include <cstdint>
#include <queue>
#include <vector>

#include "common/arena.hh"
#include "common/serialize.hh"
#include "common/types.hh"
#include "cpu/core_config.hh"
#include "isa/registers.hh"
#include "isa/uop.hh"
#include "memory/hierarchy.hh"
#include "power/account.hh"
#include "stats/group.hh"
#include "stats/stats.hh"

namespace parrot::cpu
{

/** Token identifying a dispatched uop (monotonic sequence number). */
using UopToken = std::uint64_t;

/**
 * The out-of-order backend.
 */
class OooCore
{
  public:
    /**
     * @param config structural parameters (validated here).
     * @param hierarchy the data-side memory hierarchy (not owned).
     * @param account power-event sink for this core (not owned).
     */
    OooCore(const CoreConfig &config, memory::Hierarchy *hierarchy,
            power::EnergyAccount *account);

    /** True when ROB and IQ have room for n more uops. */
    bool canDispatch(unsigned n = 1) const;

    /**
     * Dispatch one uop (rename + ROB/IQ insert).
     *
     * @param uop the micro-operation.
     * @param mem_addr effective address for Load/Store uops.
     * @param counts_as_inst true on the last uop of a macro-instruction
     *        whose commit should increment the instruction count.
     * @param poisoned true for uops belonging to an aborted atomic
     *        trace: they execute and retire (consuming time and energy)
     *        but do not count as committed work.
     * @return a token to query completion with.
     */
    UopToken dispatch(const isa::Uop &uop, Addr mem_addr,
                      bool counts_as_inst, bool poisoned);

    /** Advance one cycle: complete, wake, issue, commit. */
    void tick();

    /** True when the uop has finished execution (written back). */
    bool completed(UopToken token) const;

    /** True when the uop has committed (left the ROB). */
    bool retired(UopToken token) const { return token < headSeq; }

    /** True when no uops are in flight. */
    bool drained() const { return headSeq == tailSeq; }

    /** Current cycle (incremented by tick()). */
    Cycle now() const { return curCycle; }

    /** In-flight uop count. */
    unsigned robOccupancy() const
    {
        return static_cast<unsigned>(tailSeq - headSeq);
    }

    /** @name Retirement statistics. @{ */
    Counter committedUops() const { return nCommittedUops.value(); }
    Counter committedInsts() const { return nCommittedInsts.value(); }
    Counter issuedUops() const { return nIssuedUops.value(); }
    /** Cycles the backend spent fully drained (no uop in flight). */
    Counter idleCycles() const { return nIdleCycles.value(); }
    /** @} */

    /** Register retirement counters into a stats-tree group. */
    void
    regStats(stats::Group &group)
    {
        group.add(&nCommittedUops);
        group.add(&nCommittedInsts);
        group.add(&nIssuedUops);
        group.add(&nIdleCycles);
    }

    const CoreConfig &config() const { return cfg; }

    /**
     * Serialize the core at a drained boundary. Only quiesced state is
     * written (sequence counters, rename table, stats): a drained core
     * has no ROB/IQ/MSHR residue by definition, which is what makes
     * the checkpoint format independent of the core's internal pools.
     * @pre drained().
     */
    void
    saveState(serial::Writer &out) const
    {
        PARROT_ASSERT(drained() && completions.empty(),
                      "core checkpoint requires a drained boundary");
        out.u64(headSeq);
        out.u64(tailSeq);
        out.u64(curCycle);
        for (unsigned r = 0; r < isa::numArchRegs; ++r) {
            out.u64(lastWriter[r]);
            out.boolean(lastWriterValid[r]);
        }
        out.u64(nCommittedUops.value());
        out.u64(nCommittedInsts.value());
        out.u64(nIssuedUops.value());
        out.u64(nIdleCycles.value());
    }

    /** Restore a drained-boundary checkpoint. @pre drained(). */
    void
    loadState(serial::Reader &in)
    {
        PARROT_ASSERT(drained() && completions.empty(),
                      "core checkpoint restore requires a fresh core");
        headSeq = in.u64();
        tailSeq = in.u64();
        if (headSeq != tailSeq)
            throw serial::Error("core checkpoint was not drained");
        curCycle = in.u64();
        for (unsigned r = 0; r < isa::numArchRegs; ++r) {
            lastWriter[r] = in.u64();
            lastWriterValid[r] = in.boolean();
        }
        nCommittedUops.restore(in.u64());
        nCommittedInsts.restore(in.u64());
        nIssuedUops.restore(in.u64());
        nIdleCycles.restore(in.u64());
    }

  private:
    enum class State : std::uint8_t
    {
        Waiting,   //!< has outstanding source operands
        Ready,     //!< all sources available, not yet selected
        Issued,    //!< executing
        Completed  //!< written back, awaiting commit
    };

    /** One link of a ROB entry's dependence list. Nodes live in the
     * core's arena-backed pool; `next` doubles as freelist linkage. */
    struct DepNode
    {
        UopToken tok = 0;
        std::int32_t next = -1;
    };

    struct Entry
    {
        isa::Uop uop;
        Addr memAddr = 0;
        State state = State::Waiting;
        Cycle completeAt = 0;
        std::uint8_t depsOutstanding = 0;
        bool countsAsInst = false;
        bool poisoned = false;
        bool holdsMshr = false; //!< outstanding L1D miss in flight
        /** Head/tail of the consumer list (indices into depPool;
         * tail-append keeps wakeup in dispatch order, exactly like the
         * vector this replaces). */
        std::int32_t depHead = -1;
        std::int32_t depTail = -1;
    };

    Entry &entryOf(UopToken seq) { return rob[seq % cfg.robSize]; }
    const Entry &entryOf(UopToken seq) const
    {
        return rob[seq % cfg.robSize];
    }

    /** Process all completions due at the current cycle. */
    void completePhase();

    /** Select and issue ready uops, oldest first. */
    void issuePhase();

    /** Attempt to issue the ready uop in `slot` (token `seq`) given
     * this cycle's pool usage; bumps `issued` on success. */
    void tryIssueSlot(std::size_t slot, UopToken seq, unsigned &issued,
                      unsigned *pool_used);

    /** In-order retirement of completed uops. */
    void commitPhase();

    /** Mark a ROB slot's occupant ready to issue. */
    void
    setReady(UopToken tok)
    {
        const std::size_t slot = tok % cfg.robSize;
        readyBits[slot >> 6] |= std::uint64_t{1} << (slot & 63);
    }

    /** Clear a slot's ready bit (at issue). */
    void
    clearReady(std::size_t slot)
    {
        readyBits[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
    }

    CoreConfig cfg;
    memory::Hierarchy *mem;
    power::EnergyAccount *energy;

    /** Per-core arena: dependence-node pool and IQ ring storage. */
    Arena arena;
    NodePool<DepNode> depPool{arena, 512};

    std::vector<Entry> rob;
    UopToken headSeq = 0; //!< oldest in-flight uop
    UopToken tailSeq = 0; //!< next sequence number to assign

    /** One bit per ROB slot, set while that slot's occupant sits in
     * the issue queue with every source available. issuePhase walks
     * set bits in age order (countr_zero from the ROB head), so select
     * cost scales with the ready population — never with queue depth
     * or tombstones. iqCount tracks total IQ occupancy (Waiting +
     * Ready) for canDispatch. */
    std::vector<std::uint64_t> readyBits;
    unsigned iqCount = 0;

    /** Last in-flight writer of each architectural register. */
    UopToken lastWriter[isa::numArchRegs];
    bool lastWriterValid[isa::numArchRegs] = {};

    /** Completion events: (cycle, token) min-heap. */
    using CompletionEvent = std::pair<Cycle, UopToken>;
    std::priority_queue<CompletionEvent, std::vector<CompletionEvent>,
                        std::greater<CompletionEvent>> completions;

    Cycle curCycle = 0;
    unsigned outstandingMisses = 0;

    stats::Scalar nCommittedUops{"committed_uops"};
    stats::Scalar nCommittedInsts{"committed_insts"};
    stats::Scalar nIssuedUops{"issued_uops"};
    stats::Scalar nIdleCycles{"idle_cycles"};
};

} // namespace parrot::cpu

#endif // PARROT_CPU_OOO_CORE_HH
