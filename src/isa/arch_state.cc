#include "isa/arch_state.hh"

#include <limits>

#include "common/logging.hh"

namespace parrot::isa
{

namespace
{

/** Sign of a - b as -1 / 0 / +1 (the flags encoding). */
std::int64_t
compareValues(std::int64_t a, std::int64_t b)
{
    return (a < b) ? -1 : (a > b) ? 1 : 0;
}

/** Two's-complement wrap-around arithmetic (machine semantics; signed
 * overflow is UB in C++, so compute in unsigned and cast back). */
std::int64_t
wrapAdd(std::int64_t a, std::int64_t b)
{
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                     static_cast<std::uint64_t>(b));
}

std::int64_t
wrapSub(std::int64_t a, std::int64_t b)
{
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                     static_cast<std::uint64_t>(b));
}

std::int64_t
wrapMul(std::int64_t a, std::int64_t b)
{
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                     static_cast<std::uint64_t>(b));
}

std::int64_t
wrapDiv(std::int64_t a, std::int64_t b)
{
    // Division by zero and INT64_MIN / -1 (the one overflowing case)
    // are defined to produce zero.
    if (b == 0 || (b == -1 && a == std::numeric_limits<std::int64_t>::min()))
        return 0;
    return a / b;
}

/** Apply a two-source scalar operation. */
std::int64_t
applyScalar(UopKind kind, std::int64_t a, std::int64_t b, std::int64_t imm)
{
    switch (kind) {
      case UopKind::Add:    return wrapAdd(a, b);
      case UopKind::AddImm: return wrapAdd(a, imm);
      case UopKind::Sub:    return wrapSub(a, b);
      case UopKind::And:    return a & b;
      case UopKind::Or:     return a | b;
      case UopKind::Xor:    return a ^ b;
      case UopKind::ShlImm:
        return static_cast<std::int64_t>(
            static_cast<std::uint64_t>(a) << (imm & 63));
      case UopKind::ShrImm:
        return static_cast<std::int64_t>(
            static_cast<std::uint64_t>(a) >> (imm & 63));
      case UopKind::Mov:    return a;
      case UopKind::MovImm: return imm;
      case UopKind::Lea:    return wrapAdd(wrapAdd(a, b), imm);
      case UopKind::Mul:    return wrapMul(a, b);
      case UopKind::Div:    return wrapDiv(a, b);
      // FP semantics are modelled on the integer bits: exactness is what
      // matters for equivalence checking, not IEEE behaviour.
      case UopKind::FpAdd:  return wrapAdd(a, b);
      case UopKind::FpMul:  return wrapMul(a, b);
      case UopKind::FpDiv:  return wrapDiv(a, b);
      case UopKind::FpMov:  return a;
      default:
        PARROT_PANIC("applyScalar: bad kind %s", uopKindName(kind));
    }
}

} // namespace

UopExecInfo
executeUop(const Uop &uop, ArchState &state)
{
    UopExecInfo info;
    switch (uop.kind) {
      case UopKind::Nop:
      case UopKind::Branch:
      case UopKind::Jump:
      case UopKind::JumpInd:
      case UopKind::Call:
      case UopKind::Return:
      case UopKind::AssertTaken:
      case UopKind::AssertNotTaken:
        break;

      case UopKind::Cmp:
        state.setReg(regFlags,
                     compareValues(state.reg(uop.src1), state.reg(uop.src2)));
        break;
      case UopKind::CmpImm:
        state.setReg(regFlags, compareValues(state.reg(uop.src1), uop.imm));
        break;

      // Fused compare+assert: the comparison result feeds the assert
      // check only; architectural flags are not written (the optimizer
      // fuses only when flags are provably dead afterwards).
      case UopKind::AssertCmpTaken:
      case UopKind::AssertCmpNotTaken:
        break;

      case UopKind::Load: {
        info.accessedMem = true;
        info.addr = static_cast<Addr>(wrapAdd(state.reg(uop.src1), uop.imm));
        state.setReg(uop.dst, state.mem.read(info.addr));
        break;
      }
      case UopKind::Store: {
        info.accessedMem = true;
        info.isStore = true;
        info.addr = static_cast<Addr>(wrapAdd(state.reg(uop.src2), uop.imm));
        state.mem.write(info.addr, state.reg(uop.src1));
        break;
      }

      case UopKind::FpMulAdd:
        state.setReg(uop.dst,
                     wrapAdd(wrapMul(state.reg(uop.src1),
                                     state.reg(uop.src2)),
                             state.reg(uop.src1b)));
        break;

      case UopKind::SimdInt:
      case UopKind::SimdFp: {
        // Lane 0 then lane 1; lanes are independent by construction.
        std::int64_t a0 =
            (uop.src1 == invalidReg) ? 0 : state.reg(uop.src1);
        std::int64_t b0 =
            (uop.src2 == invalidReg) ? 0 : state.reg(uop.src2);
        std::int64_t r0 = applyScalar(uop.laneKind, a0, b0, uop.imm);
        std::int64_t a1 =
            (uop.src1b == invalidReg) ? 0 : state.reg(uop.src1b);
        std::int64_t b1 =
            (uop.src2b == invalidReg) ? 0 : state.reg(uop.src2b);
        std::int64_t r1 = applyScalar(uop.laneKind, a1, b1, uop.imm);
        state.setReg(uop.dst, r0);
        state.setReg(uop.dst2, r1);
        break;
      }

      default:
        state.setReg(uop.dst,
                     applyScalar(uop.kind,
                                 uop.src1 == invalidReg
                                     ? 0 : state.reg(uop.src1),
                                 uop.src2 == invalidReg
                                     ? 0 : state.reg(uop.src2),
                                 uop.imm));
        break;
    }
    return info;
}

} // namespace parrot::isa
