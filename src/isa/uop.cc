#include "isa/uop.hh"

#include <cstdio>

#include "common/logging.hh"

namespace parrot::isa
{

std::string
Uop::toString() const
{
    char buf[128];
    auto reg_name = [](RegId r) -> std::string {
        if (r == invalidReg)
            return "-";
        if (r == regFlags)
            return "fl";
        if (isFpReg(r))
            return "f" + std::to_string(r - firstFpReg);
        return "r" + std::to_string(r);
    };
    std::snprintf(buf, sizeof(buf), "%s %s, %s, %s, #%lld", uopKindName(kind),
                  reg_name(dst).c_str(), reg_name(src1).c_str(),
                  reg_name(src2).c_str(), static_cast<long long>(imm));
    return buf;
}

Uop
makeNop()
{
    return Uop{};
}

Uop
makeAlu(UopKind kind, RegId dst, RegId src1, RegId src2)
{
    Uop u;
    u.kind = kind;
    u.dst = dst;
    u.src1 = src1;
    u.src2 = src2;
    return u;
}

Uop
makeAluImm(UopKind kind, RegId dst, RegId src1, std::int64_t imm)
{
    Uop u;
    u.kind = kind;
    u.dst = dst;
    u.src1 = src1;
    u.imm = imm;
    return u;
}

Uop
makeMov(RegId dst, RegId src)
{
    Uop u;
    u.kind = UopKind::Mov;
    u.dst = dst;
    u.src1 = src;
    return u;
}

Uop
makeMovImm(RegId dst, std::int64_t imm)
{
    Uop u;
    u.kind = UopKind::MovImm;
    u.dst = dst;
    u.imm = imm;
    return u;
}

Uop
makeLea(RegId dst, RegId src1, RegId src2, std::int64_t imm)
{
    Uop u;
    u.kind = UopKind::Lea;
    u.dst = dst;
    u.src1 = src1;
    u.src2 = src2;
    u.imm = imm;
    return u;
}

Uop
makeCmp(RegId src1, RegId src2)
{
    Uop u;
    u.kind = UopKind::Cmp;
    u.src1 = src1;
    u.src2 = src2;
    return u;
}

Uop
makeCmpImm(RegId src1, std::int64_t imm)
{
    Uop u;
    u.kind = UopKind::CmpImm;
    u.src1 = src1;
    u.imm = imm;
    return u;
}

Uop
makeLoad(RegId dst, RegId base, std::int64_t offset)
{
    Uop u;
    u.kind = UopKind::Load;
    u.dst = dst;
    u.src1 = base;
    u.imm = offset;
    return u;
}

Uop
makeStore(RegId value, RegId base, std::int64_t offset)
{
    Uop u;
    u.kind = UopKind::Store;
    u.src1 = value;
    u.src2 = base;
    u.imm = offset;
    return u;
}

Uop
makeBranch()
{
    Uop u;
    u.kind = UopKind::Branch;
    u.src1 = regFlags;
    return u;
}

Uop
makeJump()
{
    Uop u;
    u.kind = UopKind::Jump;
    return u;
}

Uop
makeJumpInd(RegId target)
{
    Uop u;
    u.kind = UopKind::JumpInd;
    u.src1 = target;
    return u;
}

Uop
makeCall()
{
    Uop u;
    u.kind = UopKind::Call;
    return u;
}

Uop
makeReturn()
{
    Uop u;
    u.kind = UopKind::Return;
    return u;
}

Uop
makeFp(UopKind kind, RegId dst, RegId src1, RegId src2)
{
    PARROT_ASSERT(kind == UopKind::FpAdd || kind == UopKind::FpMul ||
                  kind == UopKind::FpDiv || kind == UopKind::FpMov,
                  "makeFp: not an FP kind");
    Uop u;
    u.kind = kind;
    u.dst = dst;
    u.src1 = src1;
    u.src2 = (kind == UopKind::FpMov) ? invalidReg : src2;
    return u;
}

Uop
makeAssert(bool taken, Addr target)
{
    Uop u;
    u.kind = taken ? UopKind::AssertTaken : UopKind::AssertNotTaken;
    u.src1 = regFlags;
    u.assertTarget = target;
    return u;
}

Uop
makeAssertCmp(bool taken, RegId src1, RegId src2, Addr target)
{
    Uop u;
    u.kind = taken ? UopKind::AssertCmpTaken : UopKind::AssertCmpNotTaken;
    u.src1 = src1;
    u.src2 = src2;
    u.assertTarget = target;
    return u;
}

Uop
makeFpMulAdd(RegId dst, RegId mul1, RegId mul2, RegId addend)
{
    Uop u;
    u.kind = UopKind::FpMulAdd;
    u.dst = dst;
    u.src1 = mul1;
    u.src2 = mul2;
    u.src1b = addend;
    return u;
}

Uop
makeSimdPair(UopKind lane_kind, const Uop &a, const Uop &b)
{
    PARROT_ASSERT(a.kind == lane_kind && b.kind == lane_kind,
                  "makeSimdPair: lane kinds disagree");
    bool fp = execClassOf(lane_kind) == ExecClass::FpAdd ||
              execClassOf(lane_kind) == ExecClass::FpMul;
    Uop u;
    u.kind = fp ? UopKind::SimdFp : UopKind::SimdInt;
    u.laneKind = lane_kind;
    u.dst = a.dst;
    u.src1 = a.src1;
    u.src2 = a.src2;
    u.imm = a.imm;
    u.dst2 = b.dst;
    u.src1b = b.src1;
    u.src2b = b.src2;
    return u;
}

} // namespace parrot::isa
