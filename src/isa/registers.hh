/**
 * @file
 * Architectural register file layout of the synthetic ISA.
 */

#ifndef PARROT_ISA_REGISTERS_HH
#define PARROT_ISA_REGISTERS_HH

#include "common/types.hh"

namespace parrot::isa
{

/** Number of integer general-purpose registers. */
inline constexpr unsigned numIntRegs = 16;

/** Number of floating-point registers. */
inline constexpr unsigned numFpRegs = 8;

/** First FP register id (FP ids follow the integer ids). */
inline constexpr RegId firstFpReg = numIntRegs;

/** The (renamed) flags register, written by Cmp, read by Branch. */
inline constexpr RegId regFlags = numIntRegs + numFpRegs;

/** Total architectural registers (ints + fps + flags). */
inline constexpr unsigned numArchRegs = numIntRegs + numFpRegs + 1;

/** True when r names an FP register. */
constexpr bool
isFpReg(RegId r)
{
    return r >= firstFpReg && r < firstFpReg + numFpRegs;
}

/** True when r names an integer register. */
constexpr bool
isIntReg(RegId r)
{
    return r < numIntRegs;
}

} // namespace parrot::isa

#endif // PARROT_ISA_REGISTERS_HH
