/**
 * @file
 * Variable-length macro-instruction record.
 *
 * A macro-instruction is the ISA-visible unit (what the instruction
 * cache holds and the decoder chews through); it decodes into 1-4 uops.
 * Variable instruction length (1-15 bytes) preserves the serial-decode
 * property of IA32 that motivates PARROT's decoded trace cache.
 */

#ifndef PARROT_ISA_INST_HH
#define PARROT_ISA_INST_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/uop.hh"

namespace parrot::isa
{

/** Classification of a macro-instruction's control-transfer behaviour. */
enum class CtiType : std::uint8_t
{
    None,       //!< falls through
    CondBranch, //!< conditional direct branch
    Jump,       //!< unconditional direct jump
    JumpInd,    //!< indirect jump
    Call,       //!< direct procedure call
    Return      //!< procedure return
};

/** Maximum uops a single macro-instruction may decode into. */
inline constexpr unsigned maxUopsPerInst = 4;

/** Maximum macro-instruction length in bytes (as in IA32). */
inline constexpr unsigned maxInstBytes = 15;

/**
 * A static macro-instruction. Instances are owned by the workload's
 * static program image; the pipeline refers to them by pointer.
 */
struct MacroInst
{
    /** Static code address of the first byte. */
    Addr pc = 0;

    /** Encoded length in bytes (1..15). */
    std::uint8_t length = 4;

    /** Control-transfer classification. */
    CtiType cti = CtiType::None;

    /** Static taken-target address (direct CTIs; 0 otherwise). */
    Addr takenTarget = 0;

    /** Decoded micro-operations (1..4). */
    std::vector<Uop> uops;

    /** Memoized decodeWeight() (0 = not yet computed). Filled eagerly
     * by Program::buildIndex before the program is shared across
     * simulation threads; a dynamic instance then never recomputes it. */
    std::uint8_t cachedDecodeWeight = 0;

    /** Address of the sequentially next instruction. */
    Addr nextPc() const { return pc + length; }

    /** True when this instruction may redirect the instruction stream. */
    bool isCti() const { return cti != CtiType::None; }

    /** True for conditional direct branches. */
    bool isCondBranch() const { return cti == CtiType::CondBranch; }

    /**
     * Decode complexity weight used by the timing and power models:
     * longer instructions and multi-uop instructions are more expensive
     * to decode, reflecting the serial length-marking problem.
     */
    unsigned
    decodeWeight() const
    {
        return cachedDecodeWeight ? cachedDecodeWeight
                                  : computeDecodeWeight();
    }

    /** The underlying weight formula (memoized by buildIndex). */
    unsigned
    computeDecodeWeight() const
    {
        return 1 + (length > 7 ? 1 : 0) + (uops.size() > 1 ? 1 : 0);
    }
};

} // namespace parrot::isa

#endif // PARROT_ISA_INST_HH
