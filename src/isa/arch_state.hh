/**
 * @file
 * Architectural state and functional uop semantics.
 *
 * The functional layer is what makes the reproduction's optimizer
 * testable: an optimized trace must compute the same architectural
 * results as the original. Memory is a sparse map whose untouched
 * locations read as a deterministic hash of their address, so two
 * executions over the same addresses always agree while still exercising
 * non-trivial values.
 */

#ifndef PARROT_ISA_ARCH_STATE_HH
#define PARROT_ISA_ARCH_STATE_HH

#include <cstdint>
#include <unordered_map>

#include "common/bitutil.hh"
#include "common/types.hh"
#include "isa/registers.hh"
#include "isa/uop.hh"

namespace parrot::isa
{

/**
 * Sparse 64-bit-word memory. Reads of never-written locations return
 * mix64(addr) — deterministic, address-dependent, rarely zero — which
 * keeps functional comparisons meaningful without materializing memory.
 */
class SparseMemory
{
  public:
    /** Read the word at addr (word-aligned internally by addr value). */
    std::int64_t
    read(Addr addr) const
    {
        auto it = words.find(addr);
        if (it != words.end())
            return it->second;
        return static_cast<std::int64_t>(mix64(addr));
    }

    /** Write the word at addr. */
    void write(Addr addr, std::int64_t value) { words[addr] = value; }

    /** Number of distinct written locations. */
    std::size_t writtenWords() const { return words.size(); }

    /** Discard all written state. */
    void clear() { words.clear(); }

    /** Access the raw written-word map (tests and store comparison). */
    const std::unordered_map<Addr, std::int64_t> &raw() const
    {
        return words;
    }

  private:
    std::unordered_map<Addr, std::int64_t> words;
};

/** Full architectural state: registers (incl. flags) and memory. */
struct ArchState
{
    std::int64_t regs[numArchRegs] = {};
    SparseMemory mem;

    std::int64_t reg(RegId r) const { return regs[r]; }
    void setReg(RegId r, std::int64_t v) { regs[r] = v; }
};

/** Side information produced by functionally executing one uop. */
struct UopExecInfo
{
    bool accessedMem = false;   //!< Load or Store executed
    bool isStore = false;       //!< the access was a store
    Addr addr = 0;              //!< effective address when accessedMem
};

/**
 * Functionally execute one uop against the given state.
 *
 * Control-transfer uops do not modify state (direction decisions live in
 * the workload executor); Cmp writes the flags register with the sign of
 * the comparison.
 *
 * @return memory-access side information (for the cache model).
 */
UopExecInfo executeUop(const Uop &uop, ArchState &state);

} // namespace parrot::isa

#endif // PARROT_ISA_ARCH_STATE_HH
