/**
 * @file
 * Architectural state and functional uop semantics.
 *
 * The functional layer is what makes the reproduction's optimizer
 * testable: an optimized trace must compute the same architectural
 * results as the original. Memory is a sparse map whose untouched
 * locations read as a deterministic hash of their address, so two
 * executions over the same addresses always agree while still exercising
 * non-trivial values.
 */

#ifndef PARROT_ISA_ARCH_STATE_HH
#define PARROT_ISA_ARCH_STATE_HH

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bitutil.hh"
#include "common/serialize.hh"
#include "common/types.hh"
#include "isa/registers.hh"
#include "isa/uop.hh"

namespace parrot::isa
{

/**
 * Sparse 64-bit-word memory. Reads of never-written locations return
 * mix64(addr) — deterministic, address-dependent, rarely zero — which
 * keeps functional comparisons meaningful without materializing memory.
 *
 * Storage is paged (64 words per page, one written-bit per word) with a
 * one-entry page cache, so the load/store fast path in executeUop is a
 * shift-compare instead of a hash lookup on every access; the per-word
 * written bits keep the unwritten-read hash semantics exact even inside
 * a partially written page.
 */
class SparseMemory
{
  public:
    SparseMemory() = default;

    // The page cache points into this object's own map, so it must not
    // travel across copies or moves.
    SparseMemory(const SparseMemory &other)
        : pages(other.pages), numWritten(other.numWritten)
    {
    }

    SparseMemory(SparseMemory &&other) noexcept
        : pages(std::move(other.pages)), numWritten(other.numWritten)
    {
        other.clear();
    }

    SparseMemory &
    operator=(const SparseMemory &other)
    {
        pages = other.pages;
        numWritten = other.numWritten;
        lastKey = kNoPage;
        lastPage = nullptr;
        return *this;
    }

    SparseMemory &
    operator=(SparseMemory &&other) noexcept
    {
        pages = std::move(other.pages);
        numWritten = other.numWritten;
        lastKey = kNoPage;
        lastPage = nullptr;
        other.clear();
        return *this;
    }

    /** Read the word at addr (word-aligned internally by addr value). */
    std::int64_t
    read(Addr addr) const
    {
        const Page *p = findPage(addr >> kPageShift);
        if (p) {
            const unsigned slot =
                static_cast<unsigned>(addr & kSlotMask);
            if (p->written & (std::uint64_t{1} << slot))
                return p->vals[slot];
        }
        return static_cast<std::int64_t>(mix64(addr));
    }

    /** Write the word at addr. */
    void
    write(Addr addr, std::int64_t value)
    {
        Page &p = pageFor(addr >> kPageShift);
        const unsigned slot = static_cast<unsigned>(addr & kSlotMask);
        const std::uint64_t bit = std::uint64_t{1} << slot;
        if (!(p.written & bit)) {
            p.written |= bit;
            ++numWritten;
        }
        p.vals[slot] = value;
    }

    /** Number of distinct written locations. */
    std::size_t writtenWords() const { return numWritten; }

    /** Discard all written state. */
    void
    clear()
    {
        pages.clear();
        numWritten = 0;
        lastKey = kNoPage;
        lastPage = nullptr;
    }

    /**
     * All written (address, value) pairs in ascending address order
     * (serialization and store comparison).
     */
    std::vector<std::pair<Addr, std::int64_t>>
    writtenEntries() const
    {
        std::vector<std::pair<Addr, std::int64_t>> out;
        out.reserve(numWritten);
        for (const auto &[key, page] : pages) {
            std::uint64_t bits = page.written;
            while (bits) {
                const unsigned slot = static_cast<unsigned>(
                    std::countr_zero(bits));
                bits &= bits - 1;
                out.emplace_back((key << kPageShift) | slot,
                                 page.vals[slot]);
            }
        }
        std::sort(out.begin(), out.end());
        return out;
    }

  private:
    static constexpr unsigned kPageShift = 6; //!< 64 words per page
    static constexpr Addr kSlotMask = (Addr{1} << kPageShift) - 1;
    static constexpr Addr kNoPage = ~Addr{0};

    struct Page
    {
        std::uint64_t written = 0; //!< one bit per word slot
        std::int64_t vals[std::size_t{1} << kPageShift] = {};
    };

    // unordered_map references stay valid across inserts (node-based),
    // so caching the last page touched is safe; only clear() drops it.
    const Page *
    findPage(Addr key) const
    {
        if (key == lastKey)
            return lastPage;
        auto it = pages.find(key);
        if (it == pages.end())
            return nullptr;
        lastKey = key;
        lastPage = const_cast<Page *>(&it->second);
        return lastPage;
    }

    Page &
    pageFor(Addr key)
    {
        if (key == lastKey)
            return *lastPage;
        Page &p = pages[key];
        lastKey = key;
        lastPage = &p;
        return p;
    }

    std::unordered_map<Addr, Page> pages;
    std::size_t numWritten = 0;
    mutable Addr lastKey = kNoPage;
    mutable Page *lastPage = nullptr;
};

/** Full architectural state: registers (incl. flags) and memory. */
struct ArchState
{
    std::int64_t regs[numArchRegs] = {};
    SparseMemory mem;

    std::int64_t reg(RegId r) const { return regs[r]; }
    void setReg(RegId r, std::int64_t v) { regs[r] = v; }
};

/** Serialize an architectural state. Written memory words go out in
 * sorted address order so identical states always produce identical
 * bytes regardless of hash-map history. */
inline void
saveArchState(const ArchState &state, serial::Writer &out)
{
    for (unsigned r = 0; r < numArchRegs; ++r)
        out.i64(state.regs[r]);
    const auto words = state.mem.writtenEntries();
    out.u64(words.size());
    for (const auto &[addr, value] : words) {
        out.u64(addr);
        out.i64(value);
    }
}

/** Restore a serialized architectural state (replaces all content). */
inline void
loadArchState(ArchState &state, serial::Reader &in)
{
    for (unsigned r = 0; r < numArchRegs; ++r)
        state.regs[r] = in.i64();
    state.mem.clear();
    const std::uint64_t n = in.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        const Addr addr = in.u64();
        state.mem.write(addr, in.i64());
    }
}

/** Side information produced by functionally executing one uop. */
struct UopExecInfo
{
    bool accessedMem = false;   //!< Load or Store executed
    bool isStore = false;       //!< the access was a store
    Addr addr = 0;              //!< effective address when accessedMem
};

/**
 * Functionally execute one uop against the given state.
 *
 * Control-transfer uops do not modify state (direction decisions live in
 * the workload executor); Cmp writes the flags register with the sign of
 * the comparison.
 *
 * @return memory-access side information (for the cache model).
 */
UopExecInfo executeUop(const Uop &uop, ArchState &state);

} // namespace parrot::isa

#endif // PARROT_ISA_ARCH_STATE_HH
