/**
 * @file
 * Micro-operation opcodes and execution classes for the synthetic
 * CISC-like ISA used throughout the PARROT reproduction.
 *
 * The ISA deliberately mirrors the properties of IA32 that matter to the
 * paper: variable-length macro-instructions (1-15 bytes) that decode into
 * one or more fixed-format micro-operations (uops), an expensive serial
 * decode, and a uop vocabulary rich enough for the dynamic optimizer to
 * perform real transformations (constant propagation, dead-code
 * elimination, fusion, SIMDification).
 */

#ifndef PARROT_ISA_OPCODES_HH
#define PARROT_ISA_OPCODES_HH

#include <cstdint>

#include "common/logging.hh"

namespace parrot::isa
{

/** Micro-operation opcode. */
enum class UopKind : std::uint8_t
{
    Nop,

    // Integer ALU.
    Add,        //!< dst = src1 + src2
    AddImm,     //!< dst = src1 + imm
    Sub,        //!< dst = src1 - src2
    And,        //!< dst = src1 & src2
    Or,         //!< dst = src1 | src2
    Xor,        //!< dst = src1 ^ src2
    ShlImm,     //!< dst = src1 << (imm & 63)
    ShrImm,     //!< dst = src1 >> (imm & 63) (logical)
    Mov,        //!< dst = src1
    MovImm,     //!< dst = imm
    Lea,        //!< dst = src1 + src2 + imm (address arithmetic)
    Cmp,        //!< flags = sign(src1 - src2)
    CmpImm,     //!< flags = sign(src1 - imm)

    // Long-latency integer.
    Mul,        //!< dst = src1 * src2
    Div,        //!< dst = src1 / src2 (src2==0 yields 0)

    // Memory.
    Load,       //!< dst = mem[src1 + imm]
    Store,      //!< mem[src2 + imm] = src1

    // Control transfer (always the last uop of a CTI macro-instruction).
    Branch,     //!< conditional branch, reads flags (src1)
    Jump,       //!< unconditional direct jump
    JumpInd,    //!< indirect jump (reads src1)
    Call,       //!< procedure call (pushes return address)
    Return,     //!< procedure return

    // Floating point.
    FpAdd,      //!< dst = src1 + src2 (modelled on integer bits)
    FpMul,      //!< dst = src1 * src2
    FpDiv,      //!< dst = src1 / src2 (src2==0 yields 0)
    FpMov,      //!< dst = src1

    // Optimizer-introduced uops (never produced by the decoder).
    AssertTaken,    //!< trace-internal branch promoted: must be taken
    AssertNotTaken, //!< trace-internal branch promoted: must fall through
    AssertCmpTaken,     //!< fused Cmp+AssertTaken
    AssertCmpNotTaken,  //!< fused Cmp+AssertNotTaken
    FpMulAdd,   //!< dst = src1 * src2 + src1b (fused multiply-add)
    SimdInt,    //!< two packed integer lanes of the same operation
    SimdFp,     //!< two packed FP lanes of the same operation

    NumKinds
};

/** Functional-unit class a uop executes on; also keys timing and power. */
enum class ExecClass : std::uint8_t
{
    IntAlu,
    IntMul,
    IntDiv,
    FpAdd,
    FpMul,
    FpDiv,
    MemLoad,
    MemStore,
    Ctrl,
    Simd,
    Nop,
    NumClasses
};

namespace detail
{

/** Per-kind metadata, indexed by UopKind. The simulation kernel reads
 * these several times per dispatched uop, so they are flat constexpr
 * tables behind inline accessors rather than out-of-line switches; the
 * accessors keep a bounds check because fuzzer-mutated inputs can carry
 * arbitrary kind bytes. */
inline constexpr std::uint8_t kNumKinds =
    static_cast<std::uint8_t>(UopKind::NumKinds);

inline constexpr ExecClass kExecClass[kNumKinds] = {
    ExecClass::Nop,      // Nop
    ExecClass::IntAlu,   // Add
    ExecClass::IntAlu,   // AddImm
    ExecClass::IntAlu,   // Sub
    ExecClass::IntAlu,   // And
    ExecClass::IntAlu,   // Or
    ExecClass::IntAlu,   // Xor
    ExecClass::IntAlu,   // ShlImm
    ExecClass::IntAlu,   // ShrImm
    ExecClass::IntAlu,   // Mov
    ExecClass::IntAlu,   // MovImm
    ExecClass::IntAlu,   // Lea
    ExecClass::IntAlu,   // Cmp
    ExecClass::IntAlu,   // CmpImm
    ExecClass::IntMul,   // Mul
    ExecClass::IntDiv,   // Div
    ExecClass::MemLoad,  // Load
    ExecClass::MemStore, // Store
    ExecClass::Ctrl,     // Branch
    ExecClass::Ctrl,     // Jump
    ExecClass::Ctrl,     // JumpInd
    ExecClass::Ctrl,     // Call
    ExecClass::Ctrl,     // Return
    ExecClass::FpAdd,    // FpAdd
    ExecClass::FpMul,    // FpMul
    ExecClass::FpDiv,    // FpDiv
    ExecClass::FpAdd,    // FpMov
    ExecClass::Ctrl,     // AssertTaken
    ExecClass::Ctrl,     // AssertNotTaken
    ExecClass::Ctrl,     // AssertCmpTaken
    ExecClass::Ctrl,     // AssertCmpNotTaken
    ExecClass::FpMul,    // FpMulAdd
    ExecClass::Simd,     // SimdInt
    ExecClass::Simd,     // SimdFp
};

/** Bit set per kind: 1<<0 cti, 1<<1 assert, 1<<2 writes flags,
 * 1<<3 reads flags. */
inline constexpr std::uint8_t kKindFlags[kNumKinds] = {
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, // Nop..Lea
    1 << 2,          // Cmp
    1 << 2,          // CmpImm
    0, 0, 0, 0,      // Mul, Div, Load, Store
    (1 << 0) | (1 << 3), // Branch
    1 << 0,          // Jump
    1 << 0,          // JumpInd
    1 << 0,          // Call
    1 << 0,          // Return
    0, 0, 0, 0,      // FpAdd, FpMul, FpDiv, FpMov
    (1 << 0) | (1 << 1) | (1 << 3), // AssertTaken
    (1 << 0) | (1 << 1) | (1 << 3), // AssertNotTaken
    (1 << 0) | (1 << 1),            // AssertCmpTaken
    (1 << 0) | (1 << 1),            // AssertCmpNotTaken
    0, 0, 0,         // FpMulAdd, SimdInt, SimdFp
};

inline constexpr std::uint8_t kNumClasses =
    static_cast<std::uint8_t>(ExecClass::NumClasses);

inline constexpr unsigned kExecLatency[kNumClasses] = {
    1,  // IntAlu
    3,  // IntMul
    12, // IntDiv
    3,  // FpAdd
    4,  // FpMul
    16, // FpDiv
    1,  // MemLoad (plus cache access time)
    1,  // MemStore
    1,  // Ctrl
    2,  // Simd
    1,  // Nop
};

} // namespace detail

/** Map a uop kind onto its execution class. */
inline ExecClass
execClassOf(UopKind kind)
{
    const auto idx = static_cast<std::uint8_t>(kind);
    if (idx >= detail::kNumKinds)
        PARROT_PANIC("execClassOf: bad uop kind %d", static_cast<int>(idx));
    return detail::kExecClass[idx];
}

/** Execution latency (cycles) of a class, excluding cache misses. */
inline unsigned
execLatency(ExecClass cls)
{
    const auto idx = static_cast<std::uint8_t>(cls);
    if (idx >= detail::kNumClasses)
        PARROT_PANIC("execLatency: bad class %d", static_cast<int>(idx));
    return detail::kExecLatency[idx];
}

/** Human-readable opcode mnemonic. */
const char *uopKindName(UopKind kind);

/** Human-readable execution-class name. */
const char *execClassName(ExecClass cls);

/** True for the control-transfer uops (including asserts). */
inline bool
isCti(UopKind kind)
{
    const auto idx = static_cast<std::uint8_t>(kind);
    return idx < detail::kNumKinds && (detail::kKindFlags[idx] & (1 << 0));
}

/** True for optimizer assert uops (trace-internal promoted branches). */
inline bool
isAssert(UopKind kind)
{
    const auto idx = static_cast<std::uint8_t>(kind);
    return idx < detail::kNumKinds && (detail::kKindFlags[idx] & (1 << 1));
}

/** True when the uop writes the flags register instead of a GPR. */
inline bool
writesFlags(UopKind kind)
{
    const auto idx = static_cast<std::uint8_t>(kind);
    return idx < detail::kNumKinds && (detail::kKindFlags[idx] & (1 << 2));
}

/** True when the uop reads the flags register. */
inline bool
readsFlags(UopKind kind)
{
    const auto idx = static_cast<std::uint8_t>(kind);
    return idx < detail::kNumKinds && (detail::kKindFlags[idx] & (1 << 3));
}

} // namespace parrot::isa

#endif // PARROT_ISA_OPCODES_HH
