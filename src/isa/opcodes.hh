/**
 * @file
 * Micro-operation opcodes and execution classes for the synthetic
 * CISC-like ISA used throughout the PARROT reproduction.
 *
 * The ISA deliberately mirrors the properties of IA32 that matter to the
 * paper: variable-length macro-instructions (1-15 bytes) that decode into
 * one or more fixed-format micro-operations (uops), an expensive serial
 * decode, and a uop vocabulary rich enough for the dynamic optimizer to
 * perform real transformations (constant propagation, dead-code
 * elimination, fusion, SIMDification).
 */

#ifndef PARROT_ISA_OPCODES_HH
#define PARROT_ISA_OPCODES_HH

#include <cstdint>

namespace parrot::isa
{

/** Micro-operation opcode. */
enum class UopKind : std::uint8_t
{
    Nop,

    // Integer ALU.
    Add,        //!< dst = src1 + src2
    AddImm,     //!< dst = src1 + imm
    Sub,        //!< dst = src1 - src2
    And,        //!< dst = src1 & src2
    Or,         //!< dst = src1 | src2
    Xor,        //!< dst = src1 ^ src2
    ShlImm,     //!< dst = src1 << (imm & 63)
    ShrImm,     //!< dst = src1 >> (imm & 63) (logical)
    Mov,        //!< dst = src1
    MovImm,     //!< dst = imm
    Lea,        //!< dst = src1 + src2 + imm (address arithmetic)
    Cmp,        //!< flags = sign(src1 - src2)
    CmpImm,     //!< flags = sign(src1 - imm)

    // Long-latency integer.
    Mul,        //!< dst = src1 * src2
    Div,        //!< dst = src1 / src2 (src2==0 yields 0)

    // Memory.
    Load,       //!< dst = mem[src1 + imm]
    Store,      //!< mem[src2 + imm] = src1

    // Control transfer (always the last uop of a CTI macro-instruction).
    Branch,     //!< conditional branch, reads flags (src1)
    Jump,       //!< unconditional direct jump
    JumpInd,    //!< indirect jump (reads src1)
    Call,       //!< procedure call (pushes return address)
    Return,     //!< procedure return

    // Floating point.
    FpAdd,      //!< dst = src1 + src2 (modelled on integer bits)
    FpMul,      //!< dst = src1 * src2
    FpDiv,      //!< dst = src1 / src2 (src2==0 yields 0)
    FpMov,      //!< dst = src1

    // Optimizer-introduced uops (never produced by the decoder).
    AssertTaken,    //!< trace-internal branch promoted: must be taken
    AssertNotTaken, //!< trace-internal branch promoted: must fall through
    AssertCmpTaken,     //!< fused Cmp+AssertTaken
    AssertCmpNotTaken,  //!< fused Cmp+AssertNotTaken
    FpMulAdd,   //!< dst = src1 * src2 + src1b (fused multiply-add)
    SimdInt,    //!< two packed integer lanes of the same operation
    SimdFp,     //!< two packed FP lanes of the same operation

    NumKinds
};

/** Functional-unit class a uop executes on; also keys timing and power. */
enum class ExecClass : std::uint8_t
{
    IntAlu,
    IntMul,
    IntDiv,
    FpAdd,
    FpMul,
    FpDiv,
    MemLoad,
    MemStore,
    Ctrl,
    Simd,
    Nop,
    NumClasses
};

/** Map a uop kind onto its execution class. */
ExecClass execClassOf(UopKind kind);

/** Execution latency (cycles) of a class, excluding cache misses. */
unsigned execLatency(ExecClass cls);

/** Human-readable opcode mnemonic. */
const char *uopKindName(UopKind kind);

/** Human-readable execution-class name. */
const char *execClassName(ExecClass cls);

/** True for the control-transfer uops (including asserts). */
bool isCti(UopKind kind);

/** True for optimizer assert uops (trace-internal promoted branches). */
bool isAssert(UopKind kind);

/** True when the uop writes the flags register instead of a GPR. */
bool writesFlags(UopKind kind);

/** True when the uop reads the flags register. */
bool readsFlags(UopKind kind);

} // namespace parrot::isa

#endif // PARROT_ISA_OPCODES_HH
