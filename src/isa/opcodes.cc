#include "isa/opcodes.hh"

#include "common/logging.hh"

namespace parrot::isa
{

const char *
uopKindName(UopKind kind)
{
    switch (kind) {
      case UopKind::Nop:               return "nop";
      case UopKind::Add:               return "add";
      case UopKind::AddImm:            return "addi";
      case UopKind::Sub:               return "sub";
      case UopKind::And:               return "and";
      case UopKind::Or:                return "or";
      case UopKind::Xor:               return "xor";
      case UopKind::ShlImm:            return "shli";
      case UopKind::ShrImm:            return "shri";
      case UopKind::Mov:               return "mov";
      case UopKind::MovImm:            return "movi";
      case UopKind::Lea:               return "lea";
      case UopKind::Cmp:               return "cmp";
      case UopKind::CmpImm:            return "cmpi";
      case UopKind::Mul:               return "mul";
      case UopKind::Div:               return "div";
      case UopKind::Load:              return "ld";
      case UopKind::Store:             return "st";
      case UopKind::Branch:            return "br";
      case UopKind::Jump:              return "jmp";
      case UopKind::JumpInd:           return "jmpi";
      case UopKind::Call:              return "call";
      case UopKind::Return:            return "ret";
      case UopKind::FpAdd:             return "fadd";
      case UopKind::FpMul:             return "fmul";
      case UopKind::FpDiv:             return "fdiv";
      case UopKind::FpMov:             return "fmov";
      case UopKind::AssertTaken:       return "assert.t";
      case UopKind::AssertNotTaken:    return "assert.nt";
      case UopKind::AssertCmpTaken:    return "assertcmp.t";
      case UopKind::AssertCmpNotTaken: return "assertcmp.nt";
      case UopKind::FpMulAdd:          return "fmuladd";
      case UopKind::SimdInt:           return "simd.i";
      case UopKind::SimdFp:            return "simd.f";
      default:                         return "<bad>";
    }
}

const char *
execClassName(ExecClass cls)
{
    switch (cls) {
      case ExecClass::IntAlu:   return "IntAlu";
      case ExecClass::IntMul:   return "IntMul";
      case ExecClass::IntDiv:   return "IntDiv";
      case ExecClass::FpAdd:    return "FpAdd";
      case ExecClass::FpMul:    return "FpMul";
      case ExecClass::FpDiv:    return "FpDiv";
      case ExecClass::MemLoad:  return "MemLoad";
      case ExecClass::MemStore: return "MemStore";
      case ExecClass::Ctrl:     return "Ctrl";
      case ExecClass::Simd:     return "Simd";
      case ExecClass::Nop:      return "Nop";
      default:                  return "<bad>";
    }
}

} // namespace parrot::isa
