#include "isa/opcodes.hh"

#include "common/logging.hh"

namespace parrot::isa
{

ExecClass
execClassOf(UopKind kind)
{
    switch (kind) {
      case UopKind::Nop:
        return ExecClass::Nop;
      case UopKind::Add:
      case UopKind::AddImm:
      case UopKind::Sub:
      case UopKind::And:
      case UopKind::Or:
      case UopKind::Xor:
      case UopKind::ShlImm:
      case UopKind::ShrImm:
      case UopKind::Mov:
      case UopKind::MovImm:
      case UopKind::Lea:
      case UopKind::Cmp:
      case UopKind::CmpImm:
        return ExecClass::IntAlu;
      case UopKind::Mul:
        return ExecClass::IntMul;
      case UopKind::Div:
        return ExecClass::IntDiv;
      case UopKind::Load:
        return ExecClass::MemLoad;
      case UopKind::Store:
        return ExecClass::MemStore;
      case UopKind::Branch:
      case UopKind::Jump:
      case UopKind::JumpInd:
      case UopKind::Call:
      case UopKind::Return:
      case UopKind::AssertTaken:
      case UopKind::AssertNotTaken:
      case UopKind::AssertCmpTaken:
      case UopKind::AssertCmpNotTaken:
        return ExecClass::Ctrl;
      case UopKind::FpAdd:
      case UopKind::FpMov:
        return ExecClass::FpAdd;
      case UopKind::FpMul:
      case UopKind::FpMulAdd:
        return ExecClass::FpMul;
      case UopKind::FpDiv:
        return ExecClass::FpDiv;
      case UopKind::SimdInt:
      case UopKind::SimdFp:
        return ExecClass::Simd;
      default:
        PARROT_PANIC("execClassOf: bad uop kind %d", static_cast<int>(kind));
    }
}

unsigned
execLatency(ExecClass cls)
{
    switch (cls) {
      case ExecClass::IntAlu:   return 1;
      case ExecClass::IntMul:   return 3;
      case ExecClass::IntDiv:   return 12;
      case ExecClass::FpAdd:    return 3;
      case ExecClass::FpMul:    return 4;
      case ExecClass::FpDiv:    return 16;
      case ExecClass::MemLoad:  return 1;  // plus cache access time
      case ExecClass::MemStore: return 1;
      case ExecClass::Ctrl:     return 1;
      case ExecClass::Simd:     return 2;
      case ExecClass::Nop:      return 1;
      default:
        PARROT_PANIC("execLatency: bad class %d", static_cast<int>(cls));
    }
}

const char *
uopKindName(UopKind kind)
{
    switch (kind) {
      case UopKind::Nop:               return "nop";
      case UopKind::Add:               return "add";
      case UopKind::AddImm:            return "addi";
      case UopKind::Sub:               return "sub";
      case UopKind::And:               return "and";
      case UopKind::Or:                return "or";
      case UopKind::Xor:               return "xor";
      case UopKind::ShlImm:            return "shli";
      case UopKind::ShrImm:            return "shri";
      case UopKind::Mov:               return "mov";
      case UopKind::MovImm:            return "movi";
      case UopKind::Lea:               return "lea";
      case UopKind::Cmp:               return "cmp";
      case UopKind::CmpImm:            return "cmpi";
      case UopKind::Mul:               return "mul";
      case UopKind::Div:               return "div";
      case UopKind::Load:              return "ld";
      case UopKind::Store:             return "st";
      case UopKind::Branch:            return "br";
      case UopKind::Jump:              return "jmp";
      case UopKind::JumpInd:           return "jmpi";
      case UopKind::Call:              return "call";
      case UopKind::Return:            return "ret";
      case UopKind::FpAdd:             return "fadd";
      case UopKind::FpMul:             return "fmul";
      case UopKind::FpDiv:             return "fdiv";
      case UopKind::FpMov:             return "fmov";
      case UopKind::AssertTaken:       return "assert.t";
      case UopKind::AssertNotTaken:    return "assert.nt";
      case UopKind::AssertCmpTaken:    return "assertcmp.t";
      case UopKind::AssertCmpNotTaken: return "assertcmp.nt";
      case UopKind::FpMulAdd:          return "fmuladd";
      case UopKind::SimdInt:           return "simd.i";
      case UopKind::SimdFp:            return "simd.f";
      default:                         return "<bad>";
    }
}

const char *
execClassName(ExecClass cls)
{
    switch (cls) {
      case ExecClass::IntAlu:   return "IntAlu";
      case ExecClass::IntMul:   return "IntMul";
      case ExecClass::IntDiv:   return "IntDiv";
      case ExecClass::FpAdd:    return "FpAdd";
      case ExecClass::FpMul:    return "FpMul";
      case ExecClass::FpDiv:    return "FpDiv";
      case ExecClass::MemLoad:  return "MemLoad";
      case ExecClass::MemStore: return "MemStore";
      case ExecClass::Ctrl:     return "Ctrl";
      case ExecClass::Simd:     return "Simd";
      case ExecClass::Nop:      return "Nop";
      default:                  return "<bad>";
    }
}

bool
isCti(UopKind kind)
{
    switch (kind) {
      case UopKind::Branch:
      case UopKind::Jump:
      case UopKind::JumpInd:
      case UopKind::Call:
      case UopKind::Return:
      case UopKind::AssertTaken:
      case UopKind::AssertNotTaken:
      case UopKind::AssertCmpTaken:
      case UopKind::AssertCmpNotTaken:
        return true;
      default:
        return false;
    }
}

bool
isAssert(UopKind kind)
{
    switch (kind) {
      case UopKind::AssertTaken:
      case UopKind::AssertNotTaken:
      case UopKind::AssertCmpTaken:
      case UopKind::AssertCmpNotTaken:
        return true;
      default:
        return false;
    }
}

bool
writesFlags(UopKind kind)
{
    return kind == UopKind::Cmp || kind == UopKind::CmpImm;
}

bool
readsFlags(UopKind kind)
{
    return kind == UopKind::Branch || kind == UopKind::AssertTaken ||
           kind == UopKind::AssertNotTaken;
}

} // namespace parrot::isa
