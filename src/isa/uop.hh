/**
 * @file
 * The micro-operation (uop) record: the unit of execution, optimization
 * and power accounting in the PARROT machine.
 */

#ifndef PARROT_ISA_UOP_HH
#define PARROT_ISA_UOP_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "isa/opcodes.hh"
#include "isa/registers.hh"

namespace parrot::isa
{

/**
 * A fixed-format micro-operation.
 *
 * The layout carries a second register lane (dst2/src1b/src2b) used only
 * by optimizer-created SIMD pair uops and by the fused multiply-add
 * (which reads a third source through src1b). All other uops leave the
 * second lane invalid.
 */
struct Uop
{
    UopKind kind = UopKind::Nop;

    RegId dst = invalidReg;
    RegId src1 = invalidReg;
    RegId src2 = invalidReg;
    std::int64_t imm = 0;

    /** Second SIMD lane (SimdInt/SimdFp), or the addend source of
     * FpMulAdd (src1b only). */
    RegId dst2 = invalidReg;
    RegId src1b = invalidReg;
    RegId src2b = invalidReg;

    /** For SIMD pairs: the scalar operation applied to both lanes. */
    UopKind laneKind = UopKind::Nop;

    /** For asserts: the static taken-target recorded for recovery. */
    Addr assertTarget = 0;

    /** Execution class (derived from kind; cached for speed). */
    ExecClass execClass() const { return execClassOf(kind); }

    /** True when this uop produces a register value. */
    bool
    hasDst() const
    {
        return dst != invalidReg || writesFlags(kind);
    }

    /** Destination register including the implicit flags destination. */
    RegId
    effectiveDst() const
    {
        return writesFlags(kind) ? regFlags : dst;
    }

    /** Collect source registers into out[]; returns the count (<= 4).
     * Inline: the renamer calls this for every dispatched uop. */
    unsigned
    sources(RegId out[4]) const
    {
        unsigned n = 0;
        if (src1 != invalidReg)
            out[n++] = src1;
        if (src2 != invalidReg)
            out[n++] = src2;
        if (src1b != invalidReg)
            out[n++] = src1b;
        if (src2b != invalidReg)
            out[n++] = src2b;
        return n;
    }

    /** Number of source registers read (for power accounting). */
    unsigned
    numSources() const
    {
        RegId tmp[4];
        return sources(tmp);
    }

    /** Debug string, e.g. "add r3, r1, r2". */
    std::string toString() const;
};

/**
 * Execution latency of one uop: the class latency, except that SIMD
 * pair uops take their *lane* operation's latency (a two-lane unit is
 * as deep as its scalar datapath, not a fixed depth).
 */
inline unsigned
uopLatency(const Uop &uop)
{
    if (uop.kind == UopKind::SimdInt || uop.kind == UopKind::SimdFp)
        return execLatency(execClassOf(uop.laneKind));
    return execLatency(uop.execClass());
}

/** @name Uop builders
 * Convenience constructors used by the workload generator, the
 * optimizer and the tests.
 * @{ */
Uop makeNop();
Uop makeAlu(UopKind kind, RegId dst, RegId src1, RegId src2);
Uop makeAluImm(UopKind kind, RegId dst, RegId src1, std::int64_t imm);
Uop makeMov(RegId dst, RegId src);
Uop makeMovImm(RegId dst, std::int64_t imm);
Uop makeLea(RegId dst, RegId src1, RegId src2, std::int64_t imm);
Uop makeCmp(RegId src1, RegId src2);
Uop makeCmpImm(RegId src1, std::int64_t imm);
Uop makeLoad(RegId dst, RegId base, std::int64_t offset);
Uop makeStore(RegId value, RegId base, std::int64_t offset);
Uop makeBranch();
Uop makeJump();
Uop makeJumpInd(RegId target);
Uop makeCall();
Uop makeReturn();
Uop makeFp(UopKind kind, RegId dst, RegId src1, RegId src2);
Uop makeAssert(bool taken, Addr target);
Uop makeAssertCmp(bool taken, RegId src1, RegId src2, Addr target);
Uop makeFpMulAdd(RegId dst, RegId mul1, RegId mul2, RegId addend);
Uop makeSimdPair(UopKind lane_kind, const Uop &a, const Uop &b);
/** @} */

} // namespace parrot::isa

#endif // PARROT_ISA_UOP_HH
