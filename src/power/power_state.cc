#include "power/power_state.hh"

#include "common/logging.hh"

namespace parrot::power
{

const char *
gateModeName(GateMode m)
{
    switch (m) {
      case GateMode::Off:       return "off";
      case GateMode::ClockGate: return "clock";
      case GateMode::PowerGate: return "power";
      default:                  return "<bad>";
    }
}

bool
parseGateMode(const std::string &text, GateMode &out)
{
    if (text == "off") {
        out = GateMode::Off;
    } else if (text == "clock") {
        out = GateMode::ClockGate;
    } else if (text == "power") {
        out = GateMode::PowerGate;
    } else {
        return false;
    }
    return true;
}

const char *
gatedUnitName(GatedUnit u)
{
    switch (u) {
      case GatedUnit::Decoder:     return "decoder";
      case GatedUnit::BranchPred:  return "branch_pred";
      case GatedUnit::IcachePort:  return "icache_port";
      case GatedUnit::TcPort:      return "tc_port";
      case GatedUnit::ColdBackend: return "cold_backend";
      default:                     return "<bad>";
    }
}

bool
parseGatedUnit(const std::string &text, GatedUnit &out)
{
    for (unsigned i = 0; i < numGatedUnits; ++i) {
        auto u = static_cast<GatedUnit>(i);
        if (text == gatedUnitName(u)) {
            out = u;
            return true;
        }
    }
    return false;
}

void
GatePolicy::validate(const char *unit_name) const
{
    if (!enabled())
        return;
    if (sleepThreshold == 0) {
        PARROT_FATAL("gate.%s: sleep threshold must be >= 1 "
                     "(a unit cannot sleep the cycle it is used)",
                     unit_name);
    }
    if (sleepThreshold > 1u << 20 || wakeLatency > 1u << 20) {
        PARROT_FATAL("gate.%s: implausible threshold/latency "
                     "(threshold %u, wake %u)",
                     unit_name, sleepThreshold, wakeLatency);
    }
    if (mode == GateMode::ClockGate && wakeLatency > 16) {
        PARROT_FATAL("gate.%s: clock gating wakes in a few cycles; "
                     "wake latency %u belongs to a power-gated state",
                     unit_name, wakeLatency);
    }
}

GatePolicy
defaultPolicyFor(GateMode mode)
{
    switch (mode) {
      case GateMode::Off:
        return GatePolicy{};
      case GateMode::ClockGate:
        // Clock trees restart almost instantly: gate eagerly, wake fast.
        return GatePolicy{GateMode::ClockGate, 2, 1};
      case GateMode::PowerGate:
        // Rail recharge is slow and the wake energy is large: demand a
        // longer idle run before committing, pay more to come back.
        return GatePolicy{GateMode::PowerGate, 8, 6};
      default:
        PARROT_PANIC("defaultPolicyFor: bad mode %d",
                     static_cast<int>(mode));
    }
}

bool
PowerStateConfig::anyEnabled() const
{
    for (const auto &p : unit) {
        if (p.enabled())
            return true;
    }
    return false;
}

void
PowerStateConfig::applyAll(GateMode mode)
{
    unit.fill(defaultPolicyFor(mode));
}

void
PowerStateConfig::validate() const
{
    for (unsigned i = 0; i < numGatedUnits; ++i)
        unit[i].validate(gatedUnitName(static_cast<GatedUnit>(i)));
}

void
PowerGate::configure(GatedUnit u, const GatePolicy &p,
                     unsigned clock_weight, double area_share)
{
    PARROT_ASSERT(clock_weight >= 1 && area_share >= 0.0 &&
                  area_share < 1.0,
                  "PowerGate: bad clock weight / area share");
    unitId = u;
    policy = p;
    clockWeight = clock_weight;
    areaShare = area_share;
    idleRun = 0;
    sleeping = false;
    waking = false;
}

void
PowerGate::idleCycle(EnergyAccount &acct)
{
    if (!policy.enabled())
        return;
    nIdleCycles.add();
    if (sleeping) {
        nGatedCycles.add();
        return;
    }
    // Awake but idle: the clock tree still toggles. This charge is the
    // power a sleep state then saves.
    acct.record(PowerEvent::GateIdleClock, clockWeight);
    // A freshly woken unit must be used before it may re-arm: the wake
    // stall itself looks idle to the caller, and letting it count
    // toward the threshold can re-gate the unit before the demand that
    // woke it ever lands (a fetch livelock for the TC port).
    if (waking)
        return;
    if (++idleRun >= policy.sleepThreshold) {
        sleeping = true;
        idleRun = 0;
        nSleepEntries.add();
    }
}

void
PowerGate::activeCycle()
{
    if (!policy.enabled())
        return;
    PARROT_ASSERT(!sleeping,
                  "PowerGate(%s): active while asleep — caller skipped "
                  "demand()", gatedUnitName(unitId));
    idleRun = 0;
    waking = false;
}

unsigned
PowerGate::demand(EnergyAccount &acct)
{
    if (!policy.enabled())
        return 0;
    waking = false;
    idleRun = 0;
    if (!sleeping)
        return 0;
    sleeping = false;
    waking = true;
    acct.record(policy.mode == GateMode::PowerGate
                    ? PowerEvent::GatePowerWake
                    : PowerEvent::GateClockWake);
    nWakeStalls.add(policy.wakeLatency);
    return policy.wakeLatency;
}

double
PowerGate::gatedAreaCycles() const
{
    if (policy.mode != GateMode::PowerGate)
        return 0.0;
    return areaShare * static_cast<double>(nGatedCycles.value());
}

void
PowerGate::regStats(stats::Group &group)
{
    group.add(&nIdleCycles);
    group.add(&nGatedCycles);
    group.add(&nWakeStalls);
    group.add(&nSleepEntries);
}

} // namespace parrot::power
