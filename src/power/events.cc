#include "power/events.hh"

#include "common/logging.hh"

namespace parrot::power
{

const char *
powerEventName(PowerEvent e)
{
    switch (e) {
      case PowerEvent::IcacheRead:    return "icache_read";
      case PowerEvent::IcacheMiss:    return "icache_miss";
      case PowerEvent::BpLookup:      return "bp_lookup";
      case PowerEvent::BpUpdate:      return "bp_update";
      case PowerEvent::BtbAccess:     return "btb_access";
      case PowerEvent::DecodeWeight:  return "decode_weight";
      case PowerEvent::TcRead:        return "tc_read";
      case PowerEvent::TcWrite:       return "tc_write";
      case PowerEvent::TpLookup:      return "tp_lookup";
      case PowerEvent::TpUpdate:      return "tp_update";
      case PowerEvent::HotFilter:     return "hot_filter";
      case PowerEvent::BlazeFilter:   return "blaze_filter";
      case PowerEvent::TraceBuildUop: return "trace_build_uop";
      case PowerEvent::OptimizerUop:  return "optimizer_uop";
      case PowerEvent::Rename:        return "rename";
      case PowerEvent::RobWrite:      return "rob_write";
      case PowerEvent::RobRead:       return "rob_read";
      case PowerEvent::IqInsert:      return "iq_insert";
      case PowerEvent::IqWakeup:      return "iq_wakeup";
      case PowerEvent::IqSelect:      return "iq_select";
      case PowerEvent::RegRead:       return "reg_read";
      case PowerEvent::RegWrite:      return "reg_write";
      case PowerEvent::AluOp:         return "alu_op";
      case PowerEvent::MulOp:         return "mul_op";
      case PowerEvent::DivOp:         return "div_op";
      case PowerEvent::FpOp:          return "fp_op";
      case PowerEvent::SimdOp:        return "simd_op";
      case PowerEvent::CtrlOp:        return "ctrl_op";
      case PowerEvent::AguOp:         return "agu_op";
      case PowerEvent::DcacheRead:    return "dcache_read";
      case PowerEvent::DcacheWrite:   return "dcache_write";
      case PowerEvent::DcacheMiss:    return "dcache_miss";
      case PowerEvent::L2Access:      return "l2_access";
      case PowerEvent::MemAccess:     return "mem_access";
      case PowerEvent::Commit:        return "commit";
      case PowerEvent::PipeFlush:     return "pipe_flush";
      case PowerEvent::StateSwitch:   return "state_switch";
      case PowerEvent::GateIdleClock: return "gate_idle_clock";
      case PowerEvent::GateClockWake: return "gate_clock_wake";
      case PowerEvent::GatePowerWake: return "gate_power_wake";
      default:                        return "<bad>";
    }
}

const char *
powerUnitName(PowerUnit u)
{
    switch (u) {
      case PowerUnit::FrontEnd:  return "front-end";
      case PowerUnit::TraceUnit: return "trace-unit";
      case PowerUnit::Rename:    return "rename";
      case PowerUnit::Window:    return "window";
      case PowerUnit::RegFile:   return "regfile";
      case PowerUnit::Exec:      return "exec";
      case PowerUnit::RobCommit: return "rob+commit";
      case PowerUnit::L1D:       return "l1d";
      case PowerUnit::L2:        return "l2";
      case PowerUnit::Leakage:   return "leakage";
      default:                   return "<bad>";
    }
}

PowerUnit
unitOf(PowerEvent e)
{
    switch (e) {
      case PowerEvent::IcacheRead:
      case PowerEvent::IcacheMiss:
      case PowerEvent::BpLookup:
      case PowerEvent::BpUpdate:
      case PowerEvent::BtbAccess:
      case PowerEvent::DecodeWeight:
      // Gating overheads report against the front end: the gated units
      // are overwhelmingly fetch-side, and a finer split would need a
      // per-unit account the flat event vocabulary doesn't carry.
      case PowerEvent::GateIdleClock:
      case PowerEvent::GateClockWake:
      case PowerEvent::GatePowerWake:
        return PowerUnit::FrontEnd;

      case PowerEvent::TcRead:
      case PowerEvent::TcWrite:
      case PowerEvent::TpLookup:
      case PowerEvent::TpUpdate:
      case PowerEvent::HotFilter:
      case PowerEvent::BlazeFilter:
      case PowerEvent::TraceBuildUop:
      case PowerEvent::OptimizerUop:
        return PowerUnit::TraceUnit;

      case PowerEvent::Rename:
        return PowerUnit::Rename;

      case PowerEvent::IqInsert:
      case PowerEvent::IqWakeup:
      case PowerEvent::IqSelect:
        return PowerUnit::Window;

      case PowerEvent::RegRead:
      case PowerEvent::RegWrite:
        return PowerUnit::RegFile;

      case PowerEvent::AluOp:
      case PowerEvent::MulOp:
      case PowerEvent::DivOp:
      case PowerEvent::FpOp:
      case PowerEvent::SimdOp:
      case PowerEvent::CtrlOp:
      case PowerEvent::AguOp:
        return PowerUnit::Exec;

      case PowerEvent::RobWrite:
      case PowerEvent::RobRead:
      case PowerEvent::Commit:
      case PowerEvent::PipeFlush:
      case PowerEvent::StateSwitch:
        return PowerUnit::RobCommit;

      case PowerEvent::DcacheRead:
      case PowerEvent::DcacheWrite:
      case PowerEvent::DcacheMiss:
        return PowerUnit::L1D;

      case PowerEvent::L2Access:
      case PowerEvent::MemAccess:
        return PowerUnit::L2;

      default:
        PARROT_PANIC("unitOf: bad event %d", static_cast<int>(e));
    }
}

} // namespace parrot::power
