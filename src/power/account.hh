/**
 * @file
 * Event-count accumulation and energy summation.
 */

#ifndef PARROT_POWER_ACCOUNT_HH
#define PARROT_POWER_ACCOUNT_HH

#include <array>

#include "common/types.hh"
#include "power/energy_model.hh"
#include "power/events.hh"
#include "stats/group.hh"

namespace parrot::power
{

/**
 * A flat array of event counters. The timing simulator records events
 * here; the energy model turns counts into joules at reporting time.
 * Separate accounts can be kept per core (split-core designs) and
 * evaluated against different EnergyModels.
 */
class EnergyAccount
{
  public:
    EnergyAccount() { counts.fill(0); }

    // Non-copyable, non-movable: regStats() hands the stats tree
    // closures that capture `this`, so a relocated account (e.g. inside
    // a resized vector) would leave the tree reading freed memory. Keep
    // accounts at stable addresses and merge() between them instead.
    EnergyAccount(const EnergyAccount &) = delete;
    EnergyAccount &operator=(const EnergyAccount &) = delete;
    EnergyAccount(EnergyAccount &&) = delete;
    EnergyAccount &operator=(EnergyAccount &&) = delete;

    /** Record n occurrences of an event. */
    void
    record(PowerEvent e, Counter n = 1)
    {
        counts[static_cast<unsigned>(e)] += n;
    }

    /** Count of one event. */
    Counter
    count(PowerEvent e) const
    {
        return counts[static_cast<unsigned>(e)];
    }

    /** Total dynamic energy under the given model (model pJ). */
    double
    dynamicEnergy(const EnergyModel &model) const
    {
        double total = 0.0;
        for (unsigned i = 0; i < numPowerEvents; ++i) {
            total += static_cast<double>(counts[i]) *
                     model.energyOf(static_cast<PowerEvent>(i));
        }
        return total;
    }

    /** Dynamic energy grouped by reporting unit (Figure 4.11). */
    std::array<double, numPowerUnits>
    unitBreakdown(const EnergyModel &model) const
    {
        std::array<double, numPowerUnits> out{};
        for (unsigned i = 0; i < numPowerEvents; ++i) {
            auto e = static_cast<PowerEvent>(i);
            out[static_cast<unsigned>(unitOf(e))] +=
                static_cast<double>(counts[i]) * model.energyOf(e);
        }
        return out;
    }

    /** Merge another account into this one. */
    void
    merge(const EnergyAccount &other)
    {
        for (unsigned i = 0; i < numPowerEvents; ++i)
            counts[i] += other.counts[i];
    }

    /** Zero all counters. */
    void reset() { counts.fill(0); }

    /** Restore one checkpointed event count (checkpoint resume). */
    void
    restore(PowerEvent e, Counter n)
    {
        counts[static_cast<unsigned>(e)] = n;
    }

    /** Register one formula per power event under an "events" child
     * group (the raw counts; joules are derived by the owner, which
     * knows which EnergyModel prices this account). */
    void
    regStats(stats::Group &group)
    {
        auto &events = group.subgroup("events");
        for (unsigned i = 0; i < numPowerEvents; ++i) {
            const auto e = static_cast<PowerEvent>(i);
            events.addFormula(powerEventName(e), [this, e] {
                return static_cast<double>(count(e));
            });
        }
    }

  private:
    std::array<Counter, numPowerEvents> counts;
};

} // namespace parrot::power

#endif // PARROT_POWER_ACCOUNT_HH
