/**
 * @file
 * Unit-level power-state modeling: clock gating and power gating for
 * the structures the PARROT fetch organization leaves idle.
 *
 * The paper's central power opportunity is that while the machine
 * fetches from the trace cache, the entire cold front end (serial CISC
 * decoder, branch direction predictor, I-cache fetch port) does nothing
 * — and on the split-core TOS design the whole cold backend drains and
 * sits empty. The baseline energy accounting only *measures* that (idle
 * units record no events); this layer lets the machine *act* on it, in
 * the style of link low-power states: a unit that has been idle for a
 * configurable number of consecutive cycles enters a sleep state, and
 * the next demand on it pays a configurable wake latency that the
 * timing simulator models as a real fetch stall.
 *
 * Two sleep depths are modeled per unit:
 *  - clock gating: stops the unit's clock tree. Cheap to enter/leave
 *    (small wake energy, ~1-cycle wake), saves the idle clock power.
 *  - power gating: cuts the rail. Expensive wake (energy + latency),
 *    saves the idle clock power *and* the unit's share of core leakage
 *    (the 0.4*K term of the paper's leakage formula, pro-rated by the
 *    unit's area share for the cycles it spent gated).
 *
 * Refinement contract: when every unit's policy is Off this layer does
 * nothing at all — no events, no stalls, no stats movement — so
 * disabled runs stay bit-identical to a build without it. When any
 * policy is enabled, idle-but-ungated cycles charge an explicit
 * per-unit clock-tree event (GateIdleClock x clockWeight); this is the
 * idle power that gating then saves, and it is deliberately *added*
 * energy relative to the baseline accounting (which prices idle clocks
 * at zero). Comparisons between gating policies must therefore be made
 * within power-state-enabled runs, never against a policy-Off run; see
 * DESIGN.md §13.
 */

#ifndef PARROT_POWER_POWER_STATE_HH
#define PARROT_POWER_POWER_STATE_HH

#include <array>
#include <string>

#include "common/serialize.hh"
#include "common/types.hh"
#include "power/account.hh"
#include "power/events.hh"
#include "stats/group.hh"
#include "stats/stats.hh"

namespace parrot::power
{

/** Sleep depth a gated unit may enter. */
enum class GateMode : std::uint8_t
{
    Off,       //!< no gating: the unit is never put to sleep
    ClockGate, //!< stop the clock tree while asleep
    PowerGate, //!< cut the rail: also saves the unit's leakage share
};

/** Human-readable mode name ("off" / "clock" / "power"). */
const char *gateModeName(GateMode m);

/** Parse a mode name; false on unknown input. */
bool parseGateMode(const std::string &text, GateMode &out);

/**
 * The units the simulator exposes to gating. Each maps onto a concrete
 * idle condition the fetch organization already knows (DESIGN.md §13).
 */
enum class GatedUnit : std::uint8_t
{
    Decoder,     //!< serial CISC decoder; idle during hot-trace fetch
    BranchPred,  //!< direction predictor; idle during hot-trace fetch
    IcachePort,  //!< I-cache fetch port; idle during hot-trace fetch
    TcPort,      //!< trace-cache fetch port; idle during cold fetch
    ColdBackend, //!< split-core cold core, once drained in hot mode
    NumUnits
};

/** Number of gateable units. */
inline constexpr unsigned numGatedUnits =
    static_cast<unsigned>(GatedUnit::NumUnits);

/** Config/stats name of a unit ("decoder", "tc_port", ...). */
const char *gatedUnitName(GatedUnit u);

/** Parse a unit name; false on unknown input. */
bool parseGatedUnit(const std::string &text, GatedUnit &out);

/** Per-unit gating policy. */
struct GatePolicy
{
    GateMode mode = GateMode::Off;
    /** Consecutive idle cycles before the unit enters its sleep state. */
    unsigned sleepThreshold = 4;
    /** Stall cycles a demand pays to wake a sleeping unit. */
    unsigned wakeLatency = 2;

    bool enabled() const { return mode != GateMode::Off; }

    /** Reject degenerate values (fatal); unit_name labels the error. */
    void validate(const char *unit_name) const;
};

/** Mode-appropriate default policy (Off / clock / power presets). */
GatePolicy defaultPolicyFor(GateMode mode);

/** The full per-unit policy set carried by a ModelConfig. */
struct PowerStateConfig
{
    std::array<GatePolicy, numGatedUnits> unit{};

    GatePolicy &of(GatedUnit u) { return unit[static_cast<unsigned>(u)]; }
    const GatePolicy &of(GatedUnit u) const
    {
        return unit[static_cast<unsigned>(u)];
    }

    /** True when any unit has a non-Off policy (the simulator's master
     * switch: false means the power-state layer is fully inert). */
    bool anyEnabled() const;

    /** Apply one mode (with its preset threshold/latency) to every
     * unit — the common CLI/sweep entry point. */
    void applyAll(GateMode mode);

    void validate() const;
};

/**
 * Runtime sleep/wake state machine for one gated unit.
 *
 * The owning simulator calls idleCycle() on every cycle its idle
 * condition holds for the unit, and demand() whenever the unit is
 * about to do work — demand doubles as the activity signal (it resets
 * the idle run), so a unit that is used every cycle never progresses
 * toward sleep. activeCycle() is an explicit in-use marker for callers
 * without a natural demand site; a unit must be demanded awake before
 * it may be marked active. All three are no-ops when the policy is
 * Off. Counters are stats::Scalars registered under
 * power.gate.<unit>.* in the simulation stats tree.
 */
class PowerGate
{
  public:
    /**
     * Bind a unit and policy.
     * @param u which unit this gate models (stats labeling and wake
     *        event selection).
     * @param p the policy (validated by the config layer).
     * @param clock_weight GateIdleClock events charged per idle-ungated
     *        cycle — the unit's relative clock-tree size.
     * @param area_share the unit's fraction of core area, pro-rating
     *        the leakage the power-gated state saves.
     */
    void configure(GatedUnit u, const GatePolicy &p,
                   unsigned clock_weight, double area_share);

    bool enabled() const { return policy.enabled(); }
    bool asleep() const { return sleeping; }

    /**
     * One cycle with the unit idle. Charges the idle clock while
     * ungated, advances the sleep-entry countdown, counts gated
     * cycles once asleep.
     */
    void idleCycle(EnergyAccount &acct);

    /** One cycle with the unit in use (resets the idle run). */
    void activeCycle();

    /**
     * The unit is demanded. Wakes it when sleeping and returns the
     * stall (in cycles) the caller must model; 0 when already awake.
     * The wake itself charges GateClockWake / GatePowerWake. A fresh
     * wake also suppresses sleep re-entry until the unit has actually
     * been used (see `waking`), so a long wake stall cannot lapse
     * straight back into sleep and livelock fetch.
     */
    unsigned demand(EnergyAccount &acct);

    /** @name Counters (also exposed as stats). @{ */
    Counter idleCycles() const { return nIdleCycles.value(); }
    Counter gatedCycles() const { return nGatedCycles.value(); }
    Counter wakeStalls() const { return nWakeStalls.value(); }
    Counter sleepEntries() const { return nSleepEntries.value(); }
    /** @} */

    /** Area-weighted gated cycles feeding the leakage-savings term:
     * areaShare x gatedCycles under PowerGate, 0 otherwise. */
    double gatedAreaCycles() const;

    /** Register the per-unit counters into `group` (the caller passes
     * the power.gate.<unit> subgroup). */
    void regStats(stats::Group &group);

    /** Serialize the sleep/wake machine state and counters. */
    void
    saveState(serial::Writer &out) const
    {
        out.u32(idleRun);
        out.boolean(sleeping);
        out.boolean(waking);
        out.u64(nIdleCycles.value());
        out.u64(nGatedCycles.value());
        out.u64(nWakeStalls.value());
        out.u64(nSleepEntries.value());
    }

    /** Restore checkpointed sleep/wake state. */
    void
    loadState(serial::Reader &in)
    {
        idleRun = in.u32();
        sleeping = in.boolean();
        waking = in.boolean();
        nIdleCycles.restore(in.u64());
        nGatedCycles.restore(in.u64());
        nWakeStalls.restore(in.u64());
        nSleepEntries.restore(in.u64());
    }

  private:
    GatePolicy policy{};
    GatedUnit unitId = GatedUnit::Decoder;
    unsigned clockWeight = 1;
    double areaShare = 0.0;

    unsigned idleRun = 0;   //!< consecutive idle cycles while awake
    bool sleeping = false;
    bool waking = false;    //!< woke but not yet used: no re-sleep

    stats::Scalar nIdleCycles{"idle_cycles"};
    stats::Scalar nGatedCycles{"gated_cycles"};
    stats::Scalar nWakeStalls{"wake_stalls"};
    stats::Scalar nSleepEntries{"sleep_entries"};
};

} // namespace parrot::power

#endif // PARROT_POWER_POWER_STATE_HH
